package phasetune

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"phasetune/internal/dist"
	"phasetune/internal/sim"
)

// This file is the public surface of the distributed sweep fabric
// (internal/dist): campaigns shard across worker processes and merge
// byte-identically to a single-process Sweep. Serve runs a coordinator,
// Work runs a worker, and Session.SweepSharded runs the whole fabric
// in-process (no sockets) — the cheap way to put idle cores behind a
// campaign while keeping the distributed code path exercised.

// ErrNeedQueues reports a spec that cannot cross a process boundary;
// SweepSharded and Serve wrap it per offending spec (match with
// errors.Is).
var ErrNeedQueues = fmt.Errorf("distributed sweeps need serializable specs: set RunSpec.Queues (a WorkloadSpec), not a built Workload")

// campaign lowers run specs onto the wire format: the session environment
// plus one serializable spec per run, with session policy defaults
// resolved exactly as RunContext resolves them — which is why the fabric's
// merged output is byte-identical to a local Sweep of the same specs.
func (s *Session) campaign(specs []RunSpec) (dist.Campaign, error) {
	camp := dist.Campaign{
		Env: dist.EnvSpec{Version: dist.SpecVersion, Machine: *s.machine, Cost: s.cost,
			Sched: s.sched, Typing: s.typing},
	}
	camp.Specs = make([]dist.Spec, len(specs))
	for i, spec := range specs {
		queues := spec.Queues
		if spec.Arrivals != nil {
			if spec.Workload != nil || queues != nil {
				return dist.Campaign{}, fmt.Errorf("spec %d: RunSpec.Arrivals is mutually exclusive with Workload and Queues", i)
			}
			// Arrivals specs are serializable by construction: lower them to
			// the same wire form RunContext resolves them to.
			queues = &WorkloadSpec{Seed: spec.Seed, Arrivals: spec.Arrivals}
		}
		if spec.Workload != nil || queues == nil {
			return dist.Campaign{}, fmt.Errorf("spec %d: %w", i, ErrNeedQueues)
		}
		mode, params, tcfg, ocfg, pcfg := s.resolve(spec)
		camp.Specs[i] = dist.Spec{
			Queues:      *queues,
			DurationSec: spec.DurationSec,
			Mode:        mode,
			Params:      params,
			Tuning:      tcfg,
			Online:      ocfg,
			Placement:   pcfg,
			TypingError: spec.TypingError,
			Seed:        spec.Seed,
		}
	}
	return camp, nil
}

// SweepSharded is Sweep through the distributed fabric, entirely
// in-process: the grid is lowered to the wire format, sharded across
// `shards` workers (each with its own artifact cache, as separate worker
// processes would have), and merged deterministically. The result slice is
// byte-identical to Sweep's — the property the fabric's tests pin down.
// Specs must be serializable (Queues, not Workload).
func (s *Session) SweepSharded(ctx context.Context, specs []RunSpec, shards int) ([]*RunResult, error) {
	camp, err := s.campaign(specs)
	if err != nil {
		return nil, err
	}
	return dist.RunLocal(ctx, camp, dist.LocalOptions{Workers: shards})
}

// ServeOptions configures a fabric coordinator.
type ServeOptions struct {
	// Addr is the TCP listen address (default "127.0.0.1:7077"; use an
	// ":0" port to let the kernel pick and read it back via OnListen).
	Addr string
	// ChunkSize is how many specs one lease grants (default 1).
	ChunkSize int
	// LeaseTTL is how long a worker may go without heartbeating before
	// its uncommitted specs are re-dispatched (default 30s).
	LeaseTTL time.Duration
	// OnResult streams each completed run with its input index, as commits
	// land (concurrently with other commits).
	OnResult func(index int, res *RunResult)
	// OnListen reports the bound listen address before serving begins.
	OnListen func(addr string)
}

// Serve runs a sweep campaign as a distributed-fabric coordinator: it
// serves the grid to workers (phasetune.Work, or `sweepd -worker`) over
// HTTP/JSON, re-dispatches work lost to dead workers, and blocks until
// every spec has committed — returning results in input order,
// byte-identical to Sweep on the same session. Cancel ctx to abort.
func Serve(ctx context.Context, sess *Session, specs []RunSpec, opts ServeOptions) ([]*RunResult, error) {
	camp, err := sess.campaign(specs)
	if err != nil {
		return nil, err
	}
	var onResult func(int, *sim.Result)
	if opts.OnResult != nil {
		onResult = func(i int, res *sim.Result) { opts.OnResult(i, res) }
	}
	coord, err := dist.NewCoordinator(camp, dist.Options{
		ChunkSize: opts.ChunkSize, LeaseTTL: opts.LeaseTTL, OnResult: onResult,
	})
	if err != nil {
		return nil, err
	}

	addr := opts.Addr
	if addr == "" {
		addr = "127.0.0.1:7077"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: dist.NewHandler(coord)}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	if opts.OnListen != nil {
		opts.OnListen(ln.Addr().String())
	}

	results, err := coord.Wait(ctx)
	// Keep answering polls briefly so workers hear "done" and exit clean
	// instead of dying on a closed socket.
	quiesce := time.Now().Add(3 * time.Second)
	for !coord.Quiesced() && time.Now().Before(quiesce) && ctx.Err() == nil {
		time.Sleep(20 * time.Millisecond)
	}
	return results, err
}

// WorkOptions configures a fabric worker.
type WorkOptions struct {
	// Name labels the worker in coordinator-assigned IDs.
	Name string
	// RegisterWait bounds how long registration retries while the
	// coordinator is not up yet (default 30s).
	RegisterWait time.Duration
}

// Work runs a fabric worker against a coordinator URL until the campaign
// completes. The worker rebuilds the whole session environment — machine,
// cost model, scheduler, typing, benchmark suite — from the coordinator's
// serialized environment spec, and keeps one artifact cache warm across
// every lease it executes.
func Work(ctx context.Context, coordinatorURL string, opts WorkOptions) error {
	w := &dist.Worker{
		Name:      opts.Name,
		Transport: &dist.Client{BaseURL: coordinatorURL, RegisterWait: opts.RegisterWait},
	}
	return w.Run(ctx)
}
