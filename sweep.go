package phasetune

import (
	"context"
	"fmt"

	"phasetune/internal/sim"
)

// Sweep executes a grid of run specs across the session's bounded worker
// pool and returns results in input order. Results are deterministic: each
// run is a pure function of its spec and the session environment, so the
// returned slice is bit-identical to calling RunContext on each spec
// sequentially — regardless of worker count or completion order. All runs
// share the session artifact cache, so each distinct (benchmark, technique)
// pair is instrumented exactly once per sweep campaign.
//
// The first error (among observed failures, lowest input index) cancels
// outstanding work and is returned.
//
// Session event hooks (WithEvents) fire from each run's worker goroutine,
// so during a sweep they run concurrently and carry no run identity; hooks
// must be safe for concurrent use. For per-run attribution use SweepFunc.
func (s *Session) Sweep(ctx context.Context, specs []RunSpec) ([]*RunResult, error) {
	return s.SweepFunc(ctx, specs, nil)
}

// SweepFunc is Sweep with a completion callback: done fires after each run
// finishes (from the worker's goroutine), with the spec's input index. Use
// it for progress reporting over long grids.
func (s *Session) SweepFunc(ctx context.Context, specs []RunSpec,
	done func(index int, res *RunResult, err error)) ([]*RunResult, error) {

	grid := make([]sim.RunConfig, len(specs))
	for i, spec := range specs {
		cfg, err := s.runConfig(spec)
		if err != nil {
			return nil, fmt.Errorf("spec %d: %w", i, err)
		}
		grid[i] = cfg
	}
	return sim.Sweep(ctx, grid, sim.SweepOptions{Workers: s.workers, OnDone: done})
}
