package phasetune_test

import (
	"context"
	"testing"

	"phasetune"
)

// TestSessionMemoInvisibleAndWarm pins the public memo contract: sessions
// memoize by default, results are byte-identical with the memo off, warm
// reruns replay from cache, and a memo shared across sessions (with the
// image cache that anchors its lanes) carries its outcomes over.
func TestSessionMemoInvisibleAndWarm(t *testing.T) {
	suite, err := phasetune.Suite()
	if err != nil {
		t.Fatal(err)
	}
	specs := sweepGrid(t, suite)
	ctx := context.Background()

	bare := phasetune.NewSession(phasetune.WithoutSegmentMemo(), phasetune.WithWorkers(2))
	if bare.Memo() != nil {
		t.Fatal("WithoutSegmentMemo left a memo attached")
	}
	want, err := bare.Sweep(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}

	sess := phasetune.NewSession(phasetune.WithWorkers(2))
	if sess.Memo() == nil {
		t.Fatal("default session carries no memo")
	}
	cold, err := sess.Sweep(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sess.Sweep(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		ref := encode(t, want[i])
		if got := encode(t, cold[i]); string(got) != string(ref) {
			t.Errorf("spec %d: cold memoized result differs from memo-off run", i)
		}
		if got := encode(t, warm[i]); string(got) != string(ref) {
			t.Errorf("spec %d: warm memoized result differs from memo-off run", i)
		}
	}
	stats := sess.MemoStats()
	if stats.Hits == 0 || stats.ReplayedSteps == 0 {
		t.Errorf("warm sweep never replayed: %+v", stats)
	}
	if stats.HitRate() <= 0 {
		t.Errorf("hit rate = %v, want > 0", stats.HitRate())
	}

	// A session adopting the first session's memo and image cache starts
	// warm: its first sweep replays outcomes recorded by the other session.
	adopted := phasetune.NewSession(
		phasetune.WithSegmentMemo(sess.Memo()),
		phasetune.WithCache(sess.Cache()),
		phasetune.WithWorkers(2),
	)
	before := sess.Memo().Stats().Hits
	again, err := adopted.Sweep(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if got := encode(t, again[i]); string(got) != string(encode(t, want[i])) {
			t.Errorf("spec %d: adopted-memo result differs", i)
		}
	}
	if after := adopted.MemoStats().Hits; after <= before {
		t.Errorf("adopted memo gained no hits (%d -> %d)", before, after)
	}
}
