package phasetune_test

import (
	"testing"

	"phasetune"
)

// TestPublicPipeline exercises the full public API end to end: build a
// program, instrument it, run baseline-vs-tuned on a workload, and compute
// the paper's metrics.
func TestPublicPipeline(t *testing.T) {
	b := phasetune.NewProgram("api-demo")
	main := b.Proc("main")
	main.Loop(30, func(pb *phasetune.ProcBuilder) {
		pb.Straight(phasetune.BlockMix{IntALU: 2})
		pb.Loop(200, func(pb *phasetune.ProcBuilder) {
			pb.Straight(phasetune.BlockMix{IntALU: 30, IntMul: 8})
			pb.Straight(phasetune.BlockMix{IntALU: 16})
		})
		pb.Loop(80, func(pb *phasetune.ProcBuilder) {
			pb.Straight(phasetune.BlockMix{Load: 18, Store: 8, IntALU: 6, WorkingSetKB: 3072, Locality: 0.94})
			pb.Straight(phasetune.BlockMix{Load: 10, Store: 4, IntALU: 4, WorkingSetKB: 2048, Locality: 0.95})
		})
	})
	main.Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	img, stats, err := phasetune.Instrument(p, phasetune.BestParams(), phasetune.DefaultTyping(), phasetune.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Marks == 0 {
		t.Fatal("no phase marks for a two-phase program")
	}
	if img.NumMarks() != stats.Marks {
		t.Error("image mark table inconsistent with stats")
	}
	if stats.SpaceOverhead <= 0 {
		t.Error("no space overhead recorded")
	}
}

func TestPublicSuiteAndWorkload(t *testing.T) {
	suite, err := phasetune.Suite()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 15 {
		t.Fatalf("suite has %d members", len(suite))
	}
	w := phasetune.NewWorkload(suite, 4, 8, 1)
	res, err := phasetune.Run(phasetune.RunConfig{Workload: w, DurationSec: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) < 4 {
		t.Errorf("only %d tasks spawned", len(res.Tasks))
	}
	if res.TotalInstructions == 0 {
		t.Error("no instructions committed")
	}
	_ = phasetune.AvgProcessTime(res.Tasks)
	_ = phasetune.MaxFlow(res.Tasks)
}

func TestPublicSelect(t *testing.T) {
	m := phasetune.QuadAMP()
	// Memory-bound signature: slow core wins by more than delta.
	if got := phasetune.Select(m, []float64{0.3, 0.45}, 0.06); int(got) != 1 {
		t.Errorf("Select = %d, want slow (1)", got)
	}
	// Compute signature: tie goes to fast.
	if got := phasetune.Select(m, []float64{2.2, 2.2}, 0.06); int(got) != 0 {
		t.Errorf("Select = %d, want fast (0)", got)
	}
}

func TestPublicMachines(t *testing.T) {
	for _, m := range []*phasetune.Machine{
		phasetune.QuadAMP(), phasetune.ThreeCoreAMP(), phasetune.SymmetricMachine(4, 2.0),
	} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestDefaultExperimentsConfig(t *testing.T) {
	cfg, err := phasetune.DefaultExperiments()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Slots != 18 || cfg.DurationSec != 800 {
		t.Errorf("default experiments config: slots=%d duration=%g", cfg.Slots, cfg.DurationSec)
	}
	if len(cfg.Suite) != 15 {
		t.Errorf("suite size %d", len(cfg.Suite))
	}
}
