package phasetune

import (
	"phasetune/internal/exec"
	"phasetune/internal/sim"
)

// Staged static pipeline.
//
// The one-shot Instrument helper re-runs every stage per call. The staged
// API splits it into the technique-independent front half (Analyze: CFGs,
// call graph, k-means typing) and the technique-dependent back half
// (Analysis.Instrument: summarization, transition planning, rewriting),
// and makes the products cacheable: an ImageCache keyed on program content
// plus every pipeline input serves repeated preparations without recompute.
type (
	// Analysis is the reusable front half of the static pipeline; one
	// Analysis can be instrumented under many technique variants.
	Analysis = sim.Analysis
	// Artifact is a prepared executable image plus its statistics.
	// Artifacts are immutable and safe to share across concurrent runs.
	Artifact = sim.Artifact
	// ImageCache is a content-keyed, concurrency-safe cache of Artifacts.
	ImageCache = sim.ImageCache
	// ImageSpec identifies one image preparation in the cache.
	ImageSpec = sim.ImageSpec
	// CacheStats reports cache effectiveness (Misses counts static
	// pipeline executions, Hits requests served without one).
	CacheStats = sim.CacheStats
	// SegmentMemo is a content-keyed, concurrency-safe cache of segment
	// outcomes: runs of interpreter steps whose deltas replay in O(1).
	// Memoization is invisible — a memoized run's Result is byte-identical
	// to an unmemoized one (see DESIGN.md §13).
	SegmentMemo = exec.SegmentMemo
	// MemoStats reports segment-memo effectiveness (lookup hits/misses and
	// interpreter steps replayed from cache versus stepped natively while
	// recording).
	MemoStats = exec.MemoStats
)

// Analyze runs the technique-independent front half of the static pipeline:
// CFG construction, call-graph construction, and k-means block typing.
// Instrument the result under one or more techniques with
// Analysis.Instrument.
func Analyze(p *Program, topts TypingOptions) (*Analysis, error) {
	return sim.Analyze(p, withTypingDefaults(topts), 0, 1)
}

// NewImageCache returns an empty artifact cache. Pass it to sessions with
// WithCache to share prepared images across an experiment campaign.
func NewImageCache() *ImageCache { return sim.NewImageCache() }

// NewSegmentMemo returns an empty segment memo bounded to maxChunks cached
// chunks (<=0 uses DefaultMemoChunks). Pass it to sessions with
// WithSegmentMemo to share memoized segment outcomes across a campaign.
func NewSegmentMemo(maxChunks int) *SegmentMemo { return exec.NewSegmentMemo(maxChunks) }

// DefaultMemoChunks is the default segment-memo size bound.
const DefaultMemoChunks = exec.DefaultMemoChunks

// withTypingDefaults fills the zero-value typing options the way Run does.
func withTypingDefaults(topts TypingOptions) TypingOptions {
	if topts.K == 0 {
		topts.K = 2
	}
	if topts.MinBlockInstrs == 0 {
		topts.MinBlockInstrs = 5
	}
	return topts
}
