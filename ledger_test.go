package phasetune_test

import (
	"bytes"
	"context"
	"testing"

	"phasetune"
)

// ledgerSession mirrors traceSession with accounting instead of tracing:
// open arrivals, overcommit, hybrid policy — the configuration exercising
// every charge site (marks, monitoring, migration, slicing, queueing).
func ledgerSession(machine *phasetune.Machine, on bool) *phasetune.Session {
	opts := []phasetune.SessionOption{
		phasetune.WithMachine(machine),
		phasetune.WithOvercommit(phasetune.OvercommitConfig{Enabled: true}),
	}
	if on {
		opts = append(opts, phasetune.WithLedger())
	}
	return phasetune.NewSession(opts...)
}

// TestLedgerRunByteIdenticalToUnaccounted is the accounting layer's
// load-bearing contract, the exact analogue of the tracer's: enabling the
// ledger never perturbs the simulation. An accounted run's Result, with the
// Ledger field stripped, must encode to the same canonical bytes the
// unaccounted run commits — charge sites never feed back into execution.
func TestLedgerRunByteIdenticalToUnaccounted(t *testing.T) {
	machine := phasetune.QuadAMP()
	spec := traceSpec(machine)

	plain, err := ledgerSession(machine, false).RunContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Ledger != nil {
		t.Fatal("ledger-off run carries a Ledger")
	}
	accounted, err := ledgerSession(machine, true).RunContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if accounted.Ledger == nil {
		t.Fatal("ledger-on run carries no Ledger")
	}
	if err := accounted.Ledger.Verify(); err != nil {
		t.Error(err)
	}

	stripped := *accounted
	stripped.Ledger = nil
	if !bytes.Equal(encode(t, plain), encode(t, &stripped)) {
		t.Error("accounted run's Result differs from unaccounted run — the ledger perturbed the simulation")
	}

	// The omitempty contract: a nil Ledger leaves the canonical encoding
	// free of the field entirely, so ledger-off commits are byte-identical
	// to pre-ledger builds of the same run.
	if bytes.Contains(encode(t, plain), []byte(`"ledger"`)) {
		t.Error(`ledger-off Result encoding contains a "ledger" key`)
	}
}

// TestLedgerServingDecomposition pins the serving rollup: an open
// overcommitted run's stats carry a non-degenerate queueing/service split,
// and the slicing tax is visible whenever the proportional-share dispatcher
// actually shortened slices.
func TestLedgerServingDecomposition(t *testing.T) {
	machine := phasetune.QuadAMP()
	res, err := ledgerSession(machine, true).RunContext(context.Background(), traceSpec(machine))
	if err != nil {
		t.Fatal(err)
	}
	l := res.Ledger
	if l == nil {
		t.Fatal("no ledger")
	}
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}

	st := phasetune.SummarizeServing(res)
	if !st.HasLedger {
		t.Fatal("serving stats did not pick up the ledger")
	}
	if st.QueueingSec <= 0 || st.ServiceSec <= 0 {
		t.Errorf("degenerate sojourn decomposition: queueing=%v service=%v", st.QueueingSec, st.ServiceSec)
	}
	if res.OvercommitSlices > 0 && l.Total.SlicingPs == 0 {
		t.Error("overcommit shortened slices but no slicing tax was charged")
	}
}
