package phasetune_test

import (
	"context"
	"encoding/json"
	"testing"

	"phasetune"
)

// sweepGrid is a small but representative spec grid: two seeds, baseline
// plus two technique families, exercising shared-workload comparisons and
// distinct artifacts.
func sweepGrid(t testing.TB, suite []*phasetune.Benchmark) []phasetune.RunSpec {
	t.Helper()
	loop45 := phasetune.BestParams()
	bb15 := phasetune.TechniqueParams{Technique: phasetune.BasicBlock, MinSize: 15, PropagateThroughUntyped: true}
	var specs []phasetune.RunSpec
	for _, seed := range []uint64{1, 2} {
		w := phasetune.NewWorkload(suite, 4, 8, seed)
		specs = append(specs,
			phasetune.RunSpec{Workload: w, DurationSec: 15, Mode: phasetune.Baseline, Seed: seed},
			phasetune.RunSpec{Workload: w, DurationSec: 15, Mode: phasetune.Tuned, Params: loop45, Seed: seed},
			phasetune.RunSpec{Workload: w, DurationSec: 15, Mode: phasetune.Tuned, Params: bb15, Seed: seed},
		)
	}
	return specs
}

// encode canonicalizes a run result for byte comparison (JSON encodes maps
// with sorted keys, so identical results give identical bytes).
func encode(t testing.TB, res *phasetune.RunResult) []byte {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSweepMatchesSequentialRun asserts the acceptance property of the
// sweep engine: for a fixed grid, Sweep over a concurrent worker pool with
// a shared artifact cache returns results byte-identical to the equivalent
// sequential loop over the compatibility wrapper Run (which shares nothing
// and re-runs the static pipeline every time).
func TestSweepMatchesSequentialRun(t *testing.T) {
	suite, err := phasetune.Suite()
	if err != nil {
		t.Fatal(err)
	}
	specs := sweepGrid(t, suite)

	// Sequential reference: the old one-shot API, no cache.
	var want [][]byte
	for _, spec := range specs {
		tuning := phasetune.DefaultTuning()
		res, err := phasetune.Run(phasetune.RunConfig{
			Workload: spec.Workload, DurationSec: spec.DurationSec,
			Mode: spec.Mode, Params: spec.Params, Tuning: tuning,
			TypingOpts: phasetune.DefaultTyping(), Seed: spec.Seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, encode(t, res))
	}

	// Concurrent sweep with artifact sharing.
	sess := phasetune.NewSession(phasetune.WithWorkers(4))
	results, err := sess.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) {
		t.Fatalf("sweep returned %d results for %d specs", len(results), len(specs))
	}
	for i, res := range results {
		if got := encode(t, res); string(got) != string(want[i]) {
			t.Errorf("spec %d: sweep result differs from sequential run", i)
		}
	}

	// A second sweep of the same grid must be deterministic too (and now
	// fully cache-served).
	again, err := sess.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range again {
		if got := encode(t, res); string(got) != string(want[i]) {
			t.Errorf("spec %d: repeated sweep result differs", i)
		}
	}
}

// TestSweepInstrumentsOncePerBenchmarkTechnique asserts the cache
// guarantee: across a whole sweep campaign, the static pipeline runs
// exactly once per distinct (benchmark, image spec) pair, no matter how
// many runs and seeds consume the artifacts.
func TestSweepInstrumentsOncePerBenchmarkTechnique(t *testing.T) {
	suite, err := phasetune.Suite()
	if err != nil {
		t.Fatal(err)
	}
	specs := sweepGrid(t, suite)

	// Expected pipeline executions: distinct (benchmark, kind) pairs over
	// the grid, where kind is baseline or the technique params. Error
	// injection is off, so seeds do not split artifacts.
	type pairKey struct {
		bench  string
		params phasetune.TechniqueParams
		base   bool
	}
	distinct := map[pairKey]bool{}
	requests := 0
	for _, spec := range specs {
		seen := map[string]bool{}
		for _, slot := range spec.Workload.Slots {
			for _, b := range slot {
				if seen[b.Name()] {
					continue
				}
				seen[b.Name()] = true
				requests++
				distinct[pairKey{b.Name(), spec.Params, spec.Mode == phasetune.Baseline}] = true
			}
		}
	}

	sess := phasetune.NewSession(phasetune.WithWorkers(8))
	if _, err := sess.Sweep(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	stats := sess.CacheStats()
	if int(stats.Misses) != len(distinct) {
		t.Errorf("static pipeline ran %d times, want one per distinct pair = %d",
			stats.Misses, len(distinct))
	}
	if int(stats.Hits) != requests-len(distinct) {
		t.Errorf("cache hits = %d, want %d (of %d image requests)",
			stats.Hits, requests-len(distinct), requests)
	}

	// Replaying the whole campaign must add zero pipeline runs.
	if _, err := sess.Sweep(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if after := sess.CacheStats(); after.Misses != stats.Misses {
		t.Errorf("replay ran the pipeline %d more times", after.Misses-stats.Misses)
	}
}

// TestRunContextCancellation asserts a cancelled context aborts a run.
func TestRunContextCancellation(t *testing.T) {
	suite, err := phasetune.Suite()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sess := phasetune.NewSession()
	_, err = sess.RunContext(ctx, phasetune.RunSpec{
		Workload: phasetune.NewWorkload(suite, 4, 8, 1), DurationSec: 1000, Seed: 1,
	})
	if err != context.Canceled {
		t.Fatalf("RunContext with cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestStagedPipelineMatchesInstrument asserts the staged API composes to
// the one-shot wrapper.
func TestStagedPipelineMatchesInstrument(t *testing.T) {
	suite, err := phasetune.Suite()
	if err != nil {
		t.Fatal(err)
	}
	p := suite[0].Prog
	cost := phasetune.DefaultCost()

	img, stats, err := phasetune.Instrument(p, phasetune.BestParams(), phasetune.DefaultTyping(), cost)
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := phasetune.Analyze(p, phasetune.DefaultTyping())
	if err != nil {
		t.Fatal(err)
	}
	art, err := analysis.Instrument(phasetune.BestParams(), cost)
	if err != nil {
		t.Fatal(err)
	}
	if art.Stats != stats {
		t.Errorf("staged stats %+v != one-shot stats %+v", art.Stats, stats)
	}
	if art.Image.NumMarks() != img.NumMarks() {
		t.Errorf("staged image has %d marks, one-shot %d", art.Image.NumMarks(), img.NumMarks())
	}

	// One analysis serves multiple techniques.
	bb, err := analysis.Instrument(phasetune.TechniqueParams{
		Technique: phasetune.BasicBlock, MinSize: 15, PropagateThroughUntyped: true,
	}, cost)
	if err != nil {
		t.Fatal(err)
	}
	if bb.Stats == art.Stats {
		t.Error("distinct techniques produced identical stats (suspicious)")
	}
}
