#!/bin/sh
# doclint: flag dangling DESIGN.md section cross-references.
#
# DESIGN.md's "Time scale" section has been renumbered by nearly every PR
# that inserted a section before it, and each renumbering has left stale
# "§N" pointers behind in package docs. This script makes that class of rot
# a CI failure: it extracts the set of real "## N." headings from DESIGN.md
# and then checks every Arabic-numbered reference to them —
#
#   - bare "§N" references inside DESIGN.md itself, and
#   - "DESIGN.md §N" references anywhere in the repo's Go sources and
#     markdown docs.
#
# Roman-numeral references (§V, §IV-B3, ...) are citations into the source
# paper, not DESIGN.md sections, and are ignored; so are section references
# qualified by other works ("Muchnick §7.4"), which never match the
# "DESIGN.md §N" form. Range references like "§4–5" check their first
# number (the grep matches the leading digits only).
set -eu
cd "$(dirname "$0")/.."

sections=$(grep -oE '^## [0-9]+' DESIGN.md | tr -dc '0-9\n')
if [ -z "$sections" ]; then
    echo "doclint: no numbered '## N.' headings found in DESIGN.md" >&2
    exit 1
fi

valid() {
    echo "$sections" | grep -qx "$1"
}

fail=0

# Bare §N references inside DESIGN.md.
refs=$(grep -noE '§[0-9]+' DESIGN.md || true)
for r in $refs; do
    line=${r%%:*}
    n=${r##*§}
    if ! valid "$n"; then
        echo "DESIGN.md:$line: dangling section reference §$n (no '## $n.' heading)" >&2
        fail=1
    fi
done

# DESIGN.md §N references repo-wide.
refs=$(grep -rnoE 'DESIGN\.md §[0-9]+' \
    --include='*.go' --include='*.md' --include='*.sh' \
    --exclude-dir='.git' . || true)
oldIFS=$IFS
IFS='
'
for r in $refs; do
    loc=${r%:DESIGN.md *}
    n=$(echo "$r" | grep -oE '[0-9]+$')
    if ! valid "$n"; then
        echo "$loc: dangling reference DESIGN.md §$n (no '## $n.' heading)" >&2
        fail=1
    fi
done
IFS=$oldIFS

if [ "$fail" -ne 0 ]; then
    echo "doclint: stale section references found — renumbering DESIGN.md requires updating every §N pointer" >&2
    exit 1
fi
echo "doclint: all DESIGN.md section references resolve"
