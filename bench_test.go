// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per artifact), plus ablations and micro-benchmarks of the
// core components. Results are reported through b.ReportMetric so
// `go test -bench=. -benchmem` prints the reproduced quantities alongside
// timing. The workload dimensions are scaled down (8 slots, 200 simulated
// seconds, one seed) so a full -bench pass stays in the minutes range;
// cmd/experiments runs the full-size versions.
package phasetune_test

import (
	"testing"

	"phasetune"
	"phasetune/internal/amp"
	"phasetune/internal/cfg"
	"phasetune/internal/exec"
	"phasetune/internal/experiments"
	"phasetune/internal/phase"
	"phasetune/internal/rng"
	"phasetune/internal/sim"
	"phasetune/internal/transition"
	"phasetune/internal/workload"
)

// benchConfig returns the scaled experiment configuration: the paper's
// smallest workload size (18 slots) over a halved window and a single seed.
// Smaller slot counts change the queueing regime qualitatively (pinning
// needs statistical multiplexing to pay off), so the slot count is not
// scaled down.
func benchConfig(b *testing.B) experiments.Config {
	b.Helper()
	cfg, err := experiments.Default()
	if err != nil {
		b.Fatal(err)
	}
	return cfg.Scale(18, 400, []uint64{5})
}

// BenchmarkFig3SpaceOverhead regenerates the space-overhead boxes (paper
// Fig. 3: best technique < 4%).
func BenchmarkFig3SpaceOverhead(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig3SpaceOverhead(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Variant == "Loop[45]" {
				b.ReportMetric(100*r.Box.Max, "loop45-max-overhead-%")
				b.ReportMetric(r.MeanMarks, "loop45-marks/bench")
			}
		}
	}
}

// BenchmarkFig4TimeOverhead regenerates the all-cores time overhead (paper
// Fig. 4: as low as 0.14%).
func BenchmarkFig4TimeOverhead(b *testing.B) {
	cfg := benchConfig(b)
	best := []transition.Params{experiments.BestParams()}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig4TimeOverhead(cfg, best)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].OverheadPct, "loop45-overhead-%")
	}
}

// BenchmarkTable1Switches regenerates per-benchmark switch counts (paper
// Table 1).
func BenchmarkTable1Switches(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1Switches(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Benchmark {
			case "183.equake":
				b.ReportMetric(float64(r.Switches), "equake-switches")
			case "459.GemsFDTD":
				b.ReportMetric(float64(r.Switches), "gems-switches")
			}
		}
	}
}

// BenchmarkFig5CyclesPerSwitch regenerates the amortization figure (paper
// Fig. 5: every switching benchmark amortizes its ~1000-cycle switches).
func BenchmarkFig5CyclesPerSwitch(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1Switches(cfg)
		if err != nil {
			b.Fatal(err)
		}
		min := 0.0
		for _, r := range rows {
			if r.CyclesPerSwitch > 0 && (min == 0 || r.CyclesPerSwitch < min) {
				min = r.CyclesPerSwitch
			}
		}
		b.ReportMetric(min, "min-cycles/switch")
		b.ReportMetric(float64(cfg.Sched.CoreSwitchCycles), "switch-cost-cycles")
	}
}

// BenchmarkFig6ThresholdSweep regenerates the δ sweep (paper Fig. 6:
// extremes degrade, optimum in between).
func BenchmarkFig6ThresholdSweep(b *testing.B) {
	cfg := benchConfig(b)
	deltas := []float64{0, 0.06, 0.4}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6Thresholds(cfg, deltas)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].ImprovementPct, "tput-at-delta0-%")
		b.ReportMetric(rows[1].ImprovementPct, "tput-at-mid-%")
		b.ReportMetric(rows[2].ImprovementPct, "tput-at-high-%")
	}
}

// BenchmarkFig7ClusteringError regenerates the error-robustness sweep
// (paper Fig. 7: little loss at 10%, some gain left at 20%).
func BenchmarkFig7ClusteringError(b *testing.B) {
	cfg := benchConfig(b)
	errs := []float64{0, 0.2}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7ClusteringError(cfg, errs)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].ImprovementPct, "tput-err0-%")
		b.ReportMetric(rows[1].ImprovementPct, "tput-err20-%")
	}
}

// BenchmarkTable2Fairness regenerates the fairness comparison for the best
// variant (paper Table 2 best row: 12.04 / 20.41 / 35.95).
func BenchmarkTable2Fairness(b *testing.B) {
	cfg := benchConfig(b)
	best := []transition.Params{experiments.BestParams()}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2Fairness(cfg, best)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].AvgTimePct, "avg-time-decrease-%")
		b.ReportMetric(rows[0].MaxFlowPct, "max-flow-decrease-%")
		b.ReportMetric(rows[0].MaxStretchPct, "max-stretch-decrease-%")
	}
}

// BenchmarkFig8Tradeoff regenerates the speedup-vs-fairness scatter for a
// small variant subset (paper Fig. 8).
func BenchmarkFig8Tradeoff(b *testing.B) {
	cfg := benchConfig(b)
	variants := []transition.Params{
		{Technique: transition.BasicBlock, MinSize: 15, PropagateThroughUntyped: true},
		experiments.BestParams(),
	}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8Tradeoff(cfg, variants)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].AvgTimePct, "loop45-avg-time-%")
	}
}

// BenchmarkCoreSwitchCost regenerates the §IV-B3 micro-measurement.
func BenchmarkCoreSwitchCost(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.SwitchCost(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.DescaledCycles, "descaled-cycles/switch")
	}
}

// BenchmarkTypingAccuracy regenerates the §II-A3 typing-accuracy check
// (paper: ~15% misclassified).
func BenchmarkTypingAccuracy(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.TypingAccuracy(cfg, 0.06)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(1-r.Agreement), "misclassified-%")
	}
}

// BenchmarkThreeCoreSetup regenerates the §VII future-work configuration.
func BenchmarkThreeCoreSetup(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.ThreeCore(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgTimePct, "avg-time-decrease-%")
	}
}

// Ablations (DESIGN.md §5, "Experiment drivers").

func BenchmarkAblationPinMode(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationPinMode(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].AvgTimePct, "pin-type-avg-%")
		b.ReportMetric(rows[1].AvgTimePct, "pin-core-avg-%")
	}
}

func BenchmarkAblationMonitorBound(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationMonitorBound(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].AvgTimePct, "bounded-avg-%")
		b.ReportMetric(rows[1].AvgTimePct, "mark-only-avg-%")
	}
}

func BenchmarkAblationLookahead(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		for _, la := range []int{0, 2} {
			params := transition.Params{
				Technique: transition.BasicBlock, MinSize: 15, Lookahead: la,
				PropagateThroughUntyped: true,
			}
			marks := 0
			for _, bench := range cfg.Suite {
				_, stats, err := sim.PrepareImage(bench.Prog, params, cfg.Typing, 0, 1, cfg.Cost)
				if err != nil {
					b.Fatal(err)
				}
				marks += stats.Marks
			}
			if la == 0 {
				b.ReportMetric(float64(marks), "marks-lookahead0")
			} else {
				b.ReportMetric(float64(marks), "marks-lookahead2")
			}
		}
	}
}

func BenchmarkAblationTemporal(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationTemporal(cfg, 50000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].AvgTimePct, "positional-avg-%")
		b.ReportMetric(rows[1].AvgTimePct, "temporal-avg-%")
	}
}

// Micro-benchmarks of the core components.

func BenchmarkCFGConstruction(b *testing.B) {
	suite, err := phasetune.Suite()
	if err != nil {
		b.Fatal(err)
	}
	p := suite[0].Prog
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.BuildAll(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhaseTyping(b *testing.B) {
	suite, err := phasetune.Suite()
	if err != nil {
		b.Fatal(err)
	}
	p := suite[0].Prog
	graphs, err := cfg.BuildAll(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phase.ClusterBlocks(p, graphs, phase.Options{K: 2, MinBlockInstrs: 5, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInstrumentPipeline(b *testing.B) {
	suite, err := phasetune.Suite()
	if err != nil {
		b.Fatal(err)
	}
	p := suite[0].Prog
	cost := exec.DefaultCostModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sim.PrepareImage(p, experiments.BestParams(),
			phase.Options{K: 2, MinBlockInstrs: 5}, 0, 1, cost); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpreterSteps(b *testing.B) {
	machine := amp.Quad2Fast2Slow()
	cost := exec.DefaultCostModel()
	suite, err := workload.Suite(cost, machine)
	if err != nil {
		b.Fatal(err)
	}
	img, err := exec.NewImage(suite[0].Prog, nil, cost)
	if err != nil {
		b.Fatal(err)
	}
	pars := exec.ParamsFor(cost, machine)
	r := rng.New(1)
	p := exec.NewProcess(1, img, &cost, r.Uint64(), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.Exited() {
			p = exec.NewProcess(1, img, &cost, r.Uint64(), nil)
		}
		p.Step(&pars[0], 0, 4096)
	}
}

func BenchmarkWorkloadSecond(b *testing.B) {
	// Cost of simulating one loaded second (8 slots, baseline).
	suite, err := phasetune.Suite()
	if err != nil {
		b.Fatal(err)
	}
	w := workload.BuildWorkload(suite, 8, 64, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.RunConfig{Workload: w, DurationSec: 1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
