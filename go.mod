module phasetune

go 1.22
