// Command sweepd runs the distributed sweep fabric: a coordinator that
// serves an experiment campaign to workers over HTTP/JSON, and workers
// that lease, execute, and commit runs. The merged output is byte-identical
// to executing the same campaign sequentially in one process — sweepd can
// prove it to itself with -verify.
//
// Coordinator:
//
//	sweepd -coordinator [-addr 127.0.0.1:7077]
//	       [-campaign showdown|grid|window|breakdown|serving]
//	       [-machine quad|tri|hex]
//	       [-quick] [-slots N] [-duration SEC] [-seeds a,b,c]
//	       [-chunk N] [-lease-ttl 30s] [-spawn N] [-verify] [-out FILE]
//
// Worker:
//
//	sweepd -worker -connect http://127.0.0.1:7077 [-name NAME]
//	       [-cpuprofile FILE] [-memprofile FILE]
//
// -cpuprofile and -memprofile write Go pprof profiles of the worker
// process — the process that actually burns the simulation cycles, so
// that is where profiling answers "where does fabric wall-time go". Both
// paths are validated up front (like -out) and both flags are rejected
// in coordinator mode, whose process only shuffles JSON.
//
// -spawn N forks N worker subprocesses of this same binary against the
// coordinator, so a one-machine fleet is a single command:
//
//	sweepd -coordinator -campaign showdown -quick -spawn 3 -verify
//
// -verify reruns the campaign sequentially in-process after the fabric
// finishes and compares the canonical encodings byte for byte; any
// mismatch exits non-zero. Workers may also run on other machines —
// everything a run needs crosses the wire as plain JSON.
//
// While a campaign runs, the coordinator serves read-only introspection:
// GET /status returns campaign progress plus one row per worker (heartbeat
// age, commits, throughput), and GET /metrics exports the same counters in
// Prometheus text format — curl either to watch a fleet live.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	osexec "os/exec"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"phasetune/internal/amp"
	"phasetune/internal/dist"
	"phasetune/internal/experiments"
	"phasetune/internal/sim"
)

func main() {
	var (
		coordinator = flag.Bool("coordinator", false, "run as coordinator")
		worker      = flag.Bool("worker", false, "run as worker")
		addr        = flag.String("addr", "127.0.0.1:7077", "coordinator listen address")
		connect     = flag.String("connect", "", "coordinator URL (worker mode)")
		name        = flag.String("name", "", "worker label")
		campaign    = flag.String("campaign", "showdown", "campaign to serve: showdown|grid|window|breakdown|serving")
		machineFlag = flag.String("machine", "quad", "campaign machine: quad|tri|hex")
		quick       = flag.Bool("quick", false, "shrink workloads for a fast pass")
		slots       = flag.Int("slots", 0, "workload slots (0 = default)")
		duration    = flag.Float64("duration", 0, "workload duration in simulated seconds (0 = default)")
		seedsFlag   = flag.String("seeds", "", "comma-separated workload seeds")
		chunk       = flag.Int("chunk", 1, "specs per lease")
		leaseTTL    = flag.Duration("lease-ttl", 30*time.Second, "lease lifetime without a heartbeat")
		spawn       = flag.Int("spawn", 0, "fork N local worker subprocesses")
		verify      = flag.Bool("verify", false, "rerun sequentially and require byte-identical results")
		out         = flag.String("out", "", "write merged results JSON to this path")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the worker process to this path")
		memprofile  = flag.String("memprofile", "", "write a heap profile of the worker process at exit to this path")
	)
	flag.Parse()

	var err error
	switch {
	case (*cpuprofile != "" || *memprofile != "") && !*worker:
		err = fmt.Errorf("-cpuprofile/-memprofile only apply in -worker mode (the worker process runs the simulations)")
	case *coordinator && !*worker:
		err = runCoordinator(coordOpts{
			addr: *addr, campaign: *campaign, machine: *machineFlag,
			quick: *quick, slots: *slots, duration: *duration, seeds: *seedsFlag,
			chunk: *chunk, leaseTTL: *leaseTTL, spawn: *spawn, verify: *verify, out: *out,
		})
	case *worker && !*coordinator:
		if *connect == "" {
			err = fmt.Errorf("-worker needs -connect URL")
		} else {
			err = runWorker(*connect, *name, *cpuprofile, *memprofile)
		}
	default:
		err = fmt.Errorf("pick exactly one of -coordinator or -worker")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

type coordOpts struct {
	addr, campaign, machine, seeds, out string
	quick                               bool
	slots                               int
	duration                            float64
	chunk, spawn                        int
	leaseTTL                            time.Duration
	verify                              bool
}

// config assembles the experiment configuration the campaign is cut from.
func config(o coordOpts) (experiments.Config, error) {
	cfg, err := experiments.Default()
	if err != nil {
		return cfg, err
	}
	if o.quick {
		cfg = cfg.Scale(8, 200, []uint64{5})
	}
	if o.slots > 0 {
		cfg.Slots = o.slots
	}
	if o.duration > 0 {
		cfg.DurationSec = o.duration
	}
	if o.seeds != "" {
		var seeds []uint64
		for _, s := range strings.Split(o.seeds, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("bad seed %q: %w", s, err)
			}
			seeds = append(seeds, v)
		}
		cfg.Seeds = seeds
	}
	return cfg, nil
}

// parseMachine resolves the -machine flag.
func parseMachine(name string) (*amp.Machine, error) {
	switch name {
	case "quad":
		return amp.Quad2Fast2Slow(), nil
	case "tri":
		return amp.ThreeCore2Fast1Slow(), nil
	case "hex":
		return amp.Hex2Big2Medium2Little(), nil
	}
	return nil, fmt.Errorf("unknown machine %q (want quad|tri|hex)", name)
}

// buildCampaign cuts the selected campaign from the configuration.
func buildCampaign(o coordOpts, cfg experiments.Config) (dist.Campaign, error) {
	switch o.campaign {
	case "showdown":
		m, err := parseMachine(o.machine)
		if err != nil {
			return dist.Campaign{}, err
		}
		return experiments.ShowdownCampaign(cfg, m), nil
	case "grid":
		return experiments.TechniqueCampaign(cfg), nil
	case "window":
		return experiments.WindowCampaign(cfg, nil, nil), nil
	case "breakdown":
		m, err := parseMachine(o.machine)
		if err != nil {
			return dist.Campaign{}, err
		}
		return experiments.BreakdownCampaign(cfg, m, nil, nil), nil
	case "serving":
		m, err := parseMachine(o.machine)
		if err != nil {
			return dist.Campaign{}, err
		}
		return experiments.ServingCampaign(cfg, m), nil
	case "contention":
		m, err := parseMachine(o.machine)
		if err != nil {
			return dist.Campaign{}, err
		}
		return experiments.ContentionCampaign(cfg, m), nil
	}
	return dist.Campaign{}, fmt.Errorf("unknown campaign %q (want showdown|grid|window|breakdown|serving|contention)", o.campaign)
}

func runCoordinator(o coordOpts) error {
	cfg, err := config(o)
	if err != nil {
		return err
	}
	camp, err := buildCampaign(o, cfg)
	if err != nil {
		return err
	}
	total := len(camp.Specs)
	coord, err := dist.NewCoordinator(camp, dist.Options{
		ChunkSize: o.chunk,
		LeaseTTL:  o.leaseTTL,
		OnResult: func(index int, res *sim.Result) {
			fmt.Printf("sweepd: spec %d/%d committed (%d tasks)\n", index+1, total, len(res.Tasks))
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: dist.NewHandler(coord)}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	url := "http://" + ln.Addr().String()
	fmt.Printf("sweepd: coordinating %q (%d specs) on %s\n", o.campaign, total, url)
	fmt.Printf("sweepd: introspection at %s/status (JSON) and %s/metrics (Prometheus text)\n", url, url)

	var workers []*osexec.Cmd
	if o.spawn > 0 {
		exe, err := os.Executable()
		if err != nil {
			return err
		}
		for i := 0; i < o.spawn; i++ {
			cmd := osexec.Command(exe, "-worker", "-connect", url, "-name", fmt.Sprintf("spawn-%d", i))
			cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
			if err := cmd.Start(); err != nil {
				return fmt.Errorf("spawn worker %d: %w", i, err)
			}
			workers = append(workers, cmd)
		}
	}

	if _, err := coord.Wait(context.Background()); err != nil {
		return err
	}
	// Keep serving until every registered worker heard "done" (bounded),
	// then collect spawned subprocesses.
	quiesce := time.Now().Add(10 * time.Second)
	for !coord.Quiesced() && time.Now().Before(quiesce) {
		time.Sleep(20 * time.Millisecond)
	}
	for i, cmd := range workers {
		if err := cmd.Wait(); err != nil {
			return fmt.Errorf("spawned worker %d: %w", i, err)
		}
	}
	raws, err := coord.RawResults()
	if err != nil {
		return err
	}
	p := coord.Progress()
	fmt.Printf("sweepd: campaign complete: %d specs, %d workers, %d expired leases, %d duplicate commits\n",
		p.Done, p.Workers, p.ExpiredLeases, p.DuplicateCommits)

	if o.out != "" {
		blob, err := json.MarshalIndent(raws, "", " ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("sweepd: wrote %s\n", o.out)
	}
	if o.verify {
		return verifyAgainstSequential(camp, raws)
	}
	return nil
}

// verifyAgainstSequential reruns the campaign in-process and demands the
// fabric's committed bytes match the sequential encodings exactly — the
// deterministic-merge contract, checked end to end.
func verifyAgainstSequential(camp dist.Campaign, raws []json.RawMessage) error {
	suite, err := camp.Env.Suite()
	if err != nil {
		return err
	}
	cache := sim.NewImageCache()
	for i, sp := range camp.Specs {
		cfg, err := camp.Env.RunConfig(sp, suite, cache)
		if err != nil {
			return fmt.Errorf("verify spec %d: %w", i, err)
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return fmt.Errorf("verify spec %d: %w", i, err)
		}
		want, err := dist.EncodeResult(res)
		if err != nil {
			return err
		}
		if !bytes.Equal(want, raws[i]) {
			return fmt.Errorf("verify spec %d: fabric result differs from sequential run", i)
		}
	}
	fmt.Printf("sweepd: verified %d fabric results byte-identical to sequential runs\n", len(raws))
	return nil
}

func runWorker(url, name, cpuprofile, memprofile string) error {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if memprofile != "" {
		// Validate the path now so a typo fails before the campaign, not
		// after it; the real profile is written at exit.
		f, err := os.Create(memprofile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		f.Close()
		defer writeHeapProfile(memprofile)
	}
	w := &dist.Worker{Name: name, Transport: &dist.Client{BaseURL: url}}
	fmt.Printf("sweepd: worker %q connecting to %s\n", name, url)
	if err := w.Run(context.Background()); err != nil {
		return err
	}
	fmt.Printf("sweepd: worker %q done\n", name)
	return nil
}

// writeHeapProfile snapshots the heap after a final GC. Failures are
// reported, not fatal: the campaign's results already committed.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd: -memprofile:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd: -memprofile:", err)
	}
}
