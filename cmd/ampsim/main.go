// Command ampsim runs one workload on the simulated asymmetric multicore
// under the baseline scheduler, phase-based tuning, or overhead-measurement
// mode, and prints the run's metrics.
//
// Usage:
//
//	ampsim [-mode baseline|tuned|overhead] [-slots 18] [-duration 400]
//	       [-seed 5] [-machine quad|tri] [-delta 0.06] [-technique loop]
//	       [-min 45]
package main

import (
	"flag"
	"fmt"
	"os"

	"phasetune/internal/amp"
	"phasetune/internal/exec"
	"phasetune/internal/metrics"
	"phasetune/internal/osched"
	"phasetune/internal/phase"
	"phasetune/internal/sim"
	"phasetune/internal/textplot"
	"phasetune/internal/transition"
	"phasetune/internal/tuning"
	"phasetune/internal/workload"
)

func main() {
	mode := flag.String("mode", "tuned", "baseline, tuned, or overhead")
	slots := flag.Int("slots", 18, "workload slots")
	duration := flag.Float64("duration", 400, "duration in simulated seconds")
	seed := flag.Uint64("seed", 5, "workload seed")
	machineFlag := flag.String("machine", "quad", "quad or tri")
	delta := flag.Float64("delta", 0.06, "IPC threshold")
	technique := flag.String("technique", "loop", "bb, interval, or loop")
	minSize := flag.Int("min", 45, "minimum section size")
	flag.Parse()

	if err := run(*mode, *slots, *duration, *seed, *machineFlag, *delta, *technique, *minSize); err != nil {
		fmt.Fprintln(os.Stderr, "ampsim:", err)
		os.Exit(1)
	}
}

func run(modeName string, slots int, duration float64, seed uint64, machineName string, delta float64, technique string, minSize int) error {
	var machine *amp.Machine
	switch machineName {
	case "quad":
		machine = amp.Quad2Fast2Slow()
	case "tri":
		machine = amp.ThreeCore2Fast1Slow()
	default:
		return fmt.Errorf("unknown machine %q", machineName)
	}
	var mode sim.Mode
	switch modeName {
	case "baseline":
		mode = sim.Baseline
	case "tuned":
		mode = sim.Tuned
	case "overhead":
		mode = sim.Overhead
	default:
		return fmt.Errorf("unknown mode %q", modeName)
	}
	var tech transition.Technique
	switch technique {
	case "bb":
		tech = transition.BasicBlock
	case "interval":
		tech = transition.Interval
	case "loop":
		tech = transition.Loop
	default:
		return fmt.Errorf("unknown technique %q", technique)
	}

	cost := exec.DefaultCostModel()
	suite, err := workload.Suite(cost, machine)
	if err != nil {
		return err
	}
	w := workload.BuildWorkload(suite, slots, 256, seed)
	tcfg := tuning.DefaultConfig()
	tcfg.Delta = delta
	res, err := sim.Run(sim.RunConfig{
		Machine:     machine,
		Cost:        &cost,
		Workload:    w,
		DurationSec: duration,
		Mode:        mode,
		Params: transition.Params{
			Technique: tech, MinSize: minSize, PropagateThroughUntyped: true,
		},
		Tuning:     tcfg,
		TypingOpts: phase.Options{K: 2, MinBlockInstrs: 5},
		Seed:       seed,
	})
	if err != nil {
		return err
	}

	migrations, marks := 0, uint64(0)
	for _, t := range res.Tasks {
		migrations += t.Migrations
		marks += t.MarksExecuted
	}
	tput := metrics.ThroughputOver(res.Samples, 0, duration)

	t := textplot.NewTable("metric", "value")
	t.AddRow("machine", machine.Name)
	t.AddRow("mode", mode.String())
	t.AddRow("slots", fmt.Sprintf("%d", slots))
	t.AddRow("duration", fmt.Sprintf("%.0fs", duration))
	t.AddRow("jobs spawned", fmt.Sprintf("%d", len(res.Tasks)))
	t.AddRow("jobs completed", fmt.Sprintf("%d", metrics.CompletedCount(res.Tasks)))
	t.AddRow("avg process time", fmt.Sprintf("%.2fs", metrics.AvgProcessTime(res.Tasks)))
	t.AddRow("max flow", fmt.Sprintf("%.2fs", metrics.MaxFlow(res.Tasks)))
	t.AddRow("throughput", fmt.Sprintf("%.4g instr/s", tput))
	t.AddRow("core switches", fmt.Sprintf("%d", migrations))
	t.AddRow("marks executed", fmt.Sprintf("%d", marks))
	t.AddRow("counter deferrals", fmt.Sprintf("%d", res.CounterDefers))
	fmt.Print(t.String())
	_ = osched.DefaultConfig
	return nil
}
