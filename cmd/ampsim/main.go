// Command ampsim runs one workload on the simulated asymmetric multicore
// under a selected placement policy — the stock scheduler, the paper's
// static phase marks, the online dynamic detector, the marks+windows
// hybrid, the perfect-knowledge oracle, or overhead-measurement mode — and
// prints the run's metrics.
//
// Usage:
//
//	ampsim [-policy none|static|dynamic|oracle|hybrid] [-mode overhead]
//	       [-online greedy|probe] [-spill] [-drift 0.05] [-slots 18]
//	       [-duration 400] [-seed 5] [-machine quad|tri|hex] [-delta 0.06]
//	       [-technique loop] [-min 45] [-window 8000] [-alt N]
//	       [-arrivals poisson|bursty|diurnal] [-load 1.0] [-progress]
//	       [-trace out.json] [-ledger out.json]
//
// -policy selects the placement policy (default static). -spill enables
// capacity-aware spill arbitration in the static runtime (the shared
// placement engine's ablation). -drift sets the hybrid's re-decision
// damping threshold ε (0 re-decides on every accepted window). -alt N
// replaces the suite workload with the anchored alternation fleet at N
// alternations (workload.Spec.Materialize) — the breakdown experiment's
// rate axis, one point at a time. -mode overhead is the legacy all-cores
// overhead methodology and overrides -policy.
//
// -arrivals switches the run to the open-system serving form: serving-fleet
// jobs arrive under the selected process at -load times machine capacity
// (admission stops at 75% of -duration so the tail can drain), the
// overcommit dispatcher time-multiplexes oversubscribed core types, and
// the report adds sojourn-time percentiles (p50/p95/p99/p999). All flag
// combinations are validated up front — a bad one fails with a message
// instead of silently running zero jobs.
//
// -trace writes a deterministic Chrome trace-event JSON timeline of the
// run (per-core burst spans, per-task lifetimes, placement-decision
// instants, runnable-depth counters) for Perfetto or chrome://tracing.
// The path is created up front so a bad path fails before the run, and
// tracing never perturbs the simulation: a traced run produces the same
// Result as an untraced one.
//
// -ledger writes the run's conserved cycle ledger (every core-cycle
// attributed to useful/asymmetry/spill/overhead/idle categories, with
// per-task, per-phase, and per-core rollups) as JSON. Like -trace, the
// path is validated up front and accounting never perturbs the run. The
// file diffs against another run with `runcmp -a one.json -b other.json`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"phasetune"
	"phasetune/internal/metrics"
	"phasetune/internal/textplot"
	"phasetune/internal/transition"
)

func main() {
	policy := flag.String("policy", "static", "placement policy: none, static, dynamic, oracle, or hybrid")
	mode := flag.String("mode", "", "legacy mode override: baseline, tuned, overhead")
	onlinePolicy := flag.String("online", "probe", "dynamic reassignment policy: greedy or probe")
	spill := flag.Bool("spill", false, "capacity-aware spill in the static runtime (shared engine)")
	slots := flag.Int("slots", 18, "workload slots")
	duration := flag.Float64("duration", 400, "duration in simulated seconds")
	seed := flag.Uint64("seed", 5, "workload seed")
	machineFlag := flag.String("machine", "quad", "quad, tri, or hex")
	delta := flag.Float64("delta", 0.06, "IPC threshold")
	technique := flag.String("technique", "loop", "bb, interval, or loop")
	minSize := flag.Int("min", 45, "minimum section size")
	window := flag.Uint64("window", 0, "online detection window in instructions (0 = default)")
	drift := flag.Float64("drift", 0, "hybrid re-decision damping threshold ε (0 = undamped)")
	alt := flag.Int("alt", 0, "run the synthetic alternator at N alternations instead of the suite (0 = suite)")
	arrivals := flag.String("arrivals", "", "open-system serving: arrival process kind (poisson, bursty, or diurnal)")
	load := flag.Float64("load", 1.0, "serving offered load in multiples of machine capacity (with -arrivals)")
	progress := flag.Bool("progress", false, "print simulated-time progress")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON timeline of the run to this path")
	ledgerPath := flag.String("ledger", "", "write the run's conserved cycle ledger JSON to this path")
	flag.Parse()

	loadSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "load" {
			loadSet = true
		}
	})

	if err := run(options{
		policy: *policy, mode: *mode, onlinePolicy: *onlinePolicy, spill: *spill,
		slots: *slots, duration: *duration, seed: *seed,
		machine: *machineFlag, delta: *delta, technique: *technique,
		minSize: *minSize, window: *window, drift: *drift, alt: *alt,
		arrivals: *arrivals, load: *load, loadSet: loadSet,
		progress: *progress, trace: *tracePath, ledger: *ledgerPath,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "ampsim:", err)
		os.Exit(1)
	}
}

type options struct {
	policy, mode, onlinePolicy string
	spill                      bool
	slots                      int
	duration                   float64
	seed                       uint64
	machine, technique         string
	delta                      float64
	minSize                    int
	window                     uint64
	drift                      float64
	alt                        int
	arrivals                   string
	load                       float64
	loadSet                    bool
	progress                   bool
	trace                      string
	ledger                     string
}

// validate rejects flag combinations that would otherwise run zero jobs (or
// nonsense) silently, with a message naming the offending flag.
func (o options) validate() error {
	if !(o.duration > 0) {
		return fmt.Errorf("-duration must be positive (a zero-duration run admits no jobs)")
	}
	if o.trace != "" && o.mode == "overhead" {
		return fmt.Errorf("-trace does not support -mode overhead (isolation runs are untraced); pick a -policy instead")
	}
	if o.ledger != "" && o.mode == "overhead" {
		return fmt.Errorf("-ledger does not support -mode overhead (isolation runs are unaccounted); pick a -policy instead")
	}
	if o.arrivals != "" {
		if _, err := phasetune.ParseArrivalKind(o.arrivals); err != nil {
			return fmt.Errorf("-arrivals: %w", err)
		}
		if !(o.load > 0) {
			return fmt.Errorf("-load must be positive (got %g): it is the offered load in multiples of machine capacity", o.load)
		}
		if o.alt > 0 {
			return fmt.Errorf("-arrivals and -alt are mutually exclusive: the serving fleet replaces the alternator workload")
		}
		if o.mode == "overhead" {
			return fmt.Errorf("-arrivals does not support -mode overhead (overhead is a closed all-cores methodology); pick a -policy instead")
		}
		return nil
	}
	if o.loadSet {
		return fmt.Errorf("-load only applies with -arrivals (closed slot-queue workloads have no offered load)")
	}
	if o.slots <= 0 {
		return fmt.Errorf("-slots must be positive (got %d)", o.slots)
	}
	return nil
}

func run(o options) error {
	if err := o.validate(); err != nil {
		return err
	}
	// Validate the trace path up front: create/truncate it now so a bad
	// path (missing directory, permissions) fails in milliseconds, not
	// after minutes of simulation.
	if o.trace != "" {
		f, err := os.Create(o.trace)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		f.Close()
	}
	if o.ledger != "" {
		f, err := os.Create(o.ledger)
		if err != nil {
			return fmt.Errorf("-ledger: %w", err)
		}
		f.Close()
	}
	var machine *phasetune.Machine
	switch o.machine {
	case "quad":
		machine = phasetune.QuadAMP()
	case "tri":
		machine = phasetune.ThreeCoreAMP()
	case "hex":
		machine = phasetune.TriTypeAMP()
	default:
		return fmt.Errorf("unknown machine %q (want quad|tri|hex)", o.machine)
	}

	spec := phasetune.RunSpec{DurationSec: o.duration, Seed: o.seed}
	label := ""
	switch o.mode {
	case "":
		pol, err := phasetune.ParsePolicy(o.policy)
		if err != nil {
			return err
		}
		spec.Policy = pol
		label = pol.String()
	case "baseline":
		spec.Policy = phasetune.PolicyNone
		label = "baseline"
	case "tuned":
		spec.Policy = phasetune.PolicyStatic
		label = "tuned"
	case "overhead":
		spec.Mode = phasetune.Overhead
		label = "overhead"
	default:
		return fmt.Errorf("unknown mode %q", o.mode)
	}

	var tech transition.Technique
	switch o.technique {
	case "bb":
		tech = transition.BasicBlock
	case "interval":
		tech = transition.Interval
	case "loop":
		tech = transition.Loop
	default:
		return fmt.Errorf("unknown technique %q", o.technique)
	}
	spec.Params = phasetune.TechniqueParams{
		Technique: tech, MinSize: o.minSize, PropagateThroughUntyped: true,
	}

	cost := phasetune.DefaultCost()
	if o.arrivals != "" {
		kind, err := phasetune.ParseArrivalKind(o.arrivals)
		if err != nil {
			return err
		}
		arr := phasetune.ServingArrivals(machine, kind, o.load, 0.75*o.duration)
		spec.Arrivals = &arr
	} else if o.alt > 0 {
		// The synthetic alternation-rate axis: the anchored alternation
		// fleet (alternator + antiphase rotation + stable anchors),
		// materialized by the session.
		spec.Queues = &phasetune.WorkloadSpec{
			Slots: o.slots, QueueLen: 256, Seed: o.seed, Alternations: o.alt,
		}
	} else {
		suite, err := phasetune.SuiteFor(cost, machine)
		if err != nil {
			return err
		}
		spec.Workload = phasetune.NewWorkload(suite, o.slots, 256, o.seed)
	}

	tcfg := phasetune.DefaultTuning()
	tcfg.Delta = o.delta
	tcfg.Spill = o.spill
	ocfg := phasetune.DefaultOnline()
	ocfg.Delta = o.delta
	if o.window > 0 {
		ocfg.WindowInstrs = o.window
	}
	if o.drift != 0 {
		ocfg.Hybrid.Drift = o.drift
	}
	switch o.onlinePolicy {
	case "greedy":
		ocfg.Policy = phasetune.OnlineGreedy
	case "probe":
		ocfg.Policy = phasetune.OnlineProbe
	default:
		return fmt.Errorf("unknown online policy %q", o.onlinePolicy)
	}

	var events phasetune.Events
	if o.progress {
		events.OnProgress = func(simSec float64) {
			fmt.Fprintf(os.Stderr, "\rt=%.0fs", simSec)
		}
		events.OnImage = func(bench string, stats phasetune.ImageStats, cached bool) {
			src := "prepared"
			if cached {
				src = "cached"
			}
			fmt.Fprintf(os.Stderr, "image %-14s %s (%d marks)\n", bench, src, stats.Marks)
		}
	}

	// Ctrl-C cancels the simulation mid-run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sessOpts := []phasetune.SessionOption{
		phasetune.WithMachine(machine),
		phasetune.WithCost(cost),
		phasetune.WithTuning(tcfg),
		phasetune.WithOnline(ocfg),
		phasetune.WithEvents(events),
	}
	if o.arrivals != "" {
		// Open systems run oversubscribed by design.
		sessOpts = append(sessOpts, phasetune.WithOvercommit(phasetune.OvercommitConfig{Enabled: true}))
	}
	var tracer *phasetune.Tracer
	if o.trace != "" {
		tracer = phasetune.NewTracer()
		sessOpts = append(sessOpts, phasetune.WithTrace(tracer))
	}
	if o.ledger != "" {
		sessOpts = append(sessOpts, phasetune.WithLedger())
	}
	sess := phasetune.NewSession(sessOpts...)
	res, err := sess.RunContext(ctx, spec)
	if o.progress {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}

	migrations, marks := 0, uint64(0)
	for _, t := range res.Tasks {
		migrations += t.Migrations
		marks += t.MarksExecuted
	}
	tput := metrics.ThroughputOver(res.Samples, 0, o.duration)

	t := textplot.NewTable("metric", "value")
	t.AddRow("machine", machine.Name)
	t.AddRow("policy", label)
	if label == "dynamic" {
		t.AddRow("online policy", ocfg.Policy.String())
	}
	if o.alt > 0 {
		t.AddRow("workload", fmt.Sprintf("alt.x%d anchored fleet", o.alt))
	}
	if spec.Arrivals != nil {
		t.AddRow("arrivals", fmt.Sprintf("%s @ %.2fx load (%.2f jobs/s)",
			o.arrivals, o.load, spec.Arrivals.RatePerSec))
	} else {
		t.AddRow("slots", fmt.Sprintf("%d", o.slots))
	}
	t.AddRow("duration", fmt.Sprintf("%.0fs", o.duration))
	t.AddRow("jobs spawned", fmt.Sprintf("%d", len(res.Tasks)))
	t.AddRow("jobs completed", fmt.Sprintf("%d", metrics.CompletedCount(res.Tasks)))
	t.AddRow("avg process time", fmt.Sprintf("%.2fs", metrics.AvgProcessTime(res.Tasks)))
	t.AddRow("max flow", fmt.Sprintf("%.2fs", metrics.MaxFlow(res.Tasks)))
	t.AddRow("throughput", fmt.Sprintf("%.4g instr/s", tput))
	if spec.Arrivals != nil {
		st := phasetune.SummarizeServing(res)
		if st.Empty() {
			t.AddRow("sojourn", "n/a (no jobs completed)")
		} else {
			t.AddRow("sojourn p50", fmt.Sprintf("%.2fs", st.P50))
			t.AddRow("sojourn p95", fmt.Sprintf("%.2fs", st.P95))
			t.AddRow("sojourn p99", fmt.Sprintf("%.2fs", st.P99))
			t.AddRow("sojourn p999", fmt.Sprintf("%.2fs", st.P999))
			t.AddRow("sojourn mean", fmt.Sprintf("%.2fs", st.MeanSojournSec))
		}
		t.AddRow("peak runnable", fmt.Sprintf("%d (on %d cores)", st.PeakRunnable, len(machine.Cores)))
		t.AddRow("overcommit slices", fmt.Sprintf("%d", st.OvercommitSlices))
	}
	t.AddRow("core switches", fmt.Sprintf("%d", migrations))
	t.AddRow("marks executed", fmt.Sprintf("%d", marks))
	t.AddRow("counter deferrals", fmt.Sprintf("%d", res.CounterDefers))
	if res.Online != nil {
		t.AddRow("detection windows", fmt.Sprintf("%d (+%d discarded)", res.Online.Windows, res.Online.Discarded))
		t.AddRow("phases detected", fmt.Sprintf("%d", res.Online.Phases))
		t.AddRow("probe decisions", fmt.Sprintf("%d", res.Online.Decisions))
		t.AddRow("monitor cycles", fmt.Sprintf("%d", res.Online.ChargedCycles))
		t.AddRow("online switches", fmt.Sprintf("%d", res.Online.Switches))
		if label == "hybrid" {
			t.AddRow("decision refreshes", fmt.Sprintf("%d", res.Online.Refreshes))
			t.AddRow("damped refreshes", fmt.Sprintf("%d", res.Online.Damped))
		}
	}
	fmt.Print(t.String())

	if tracer != nil {
		if err := tracer.WriteFile(o.trace); err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		fmt.Printf("\n%s\nwrote %d trace events to %s (open in Perfetto / chrome://tracing)\n",
			tracer.Summary(), tracer.Len(), o.trace)
	}
	if o.ledger != "" {
		l := res.Ledger
		if l == nil {
			return fmt.Errorf("-ledger: run produced no ledger")
		}
		if err := l.Verify(); err != nil {
			return fmt.Errorf("-ledger: %w", err)
		}
		blob, err := json.MarshalIndent(l, "", "  ")
		if err != nil {
			return fmt.Errorf("-ledger: %w", err)
		}
		if err := os.WriteFile(o.ledger, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("-ledger: %w", err)
		}
		fmt.Printf("\nwrote conserved cycle ledger to %s (%d tasks, %d cores; diff with runcmp)\n",
			o.ledger, len(l.PerTask), l.Cores)
	}
	return nil
}
