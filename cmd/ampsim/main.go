// Command ampsim runs one workload on the simulated asymmetric multicore
// under the baseline scheduler, phase-based tuning, or overhead-measurement
// mode, and prints the run's metrics.
//
// Usage:
//
//	ampsim [-mode baseline|tuned|overhead] [-slots 18] [-duration 400]
//	       [-seed 5] [-machine quad|tri] [-delta 0.06] [-technique loop]
//	       [-min 45] [-progress]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"phasetune"
	"phasetune/internal/metrics"
	"phasetune/internal/textplot"
	"phasetune/internal/transition"
)

func main() {
	mode := flag.String("mode", "tuned", "baseline, tuned, or overhead")
	slots := flag.Int("slots", 18, "workload slots")
	duration := flag.Float64("duration", 400, "duration in simulated seconds")
	seed := flag.Uint64("seed", 5, "workload seed")
	machineFlag := flag.String("machine", "quad", "quad or tri")
	delta := flag.Float64("delta", 0.06, "IPC threshold")
	technique := flag.String("technique", "loop", "bb, interval, or loop")
	minSize := flag.Int("min", 45, "minimum section size")
	progress := flag.Bool("progress", false, "print simulated-time progress")
	flag.Parse()

	if err := run(*mode, *slots, *duration, *seed, *machineFlag, *delta, *technique, *minSize, *progress); err != nil {
		fmt.Fprintln(os.Stderr, "ampsim:", err)
		os.Exit(1)
	}
}

func run(modeName string, slots int, duration float64, seed uint64, machineName string, delta float64, technique string, minSize int, progress bool) error {
	var machine *phasetune.Machine
	switch machineName {
	case "quad":
		machine = phasetune.QuadAMP()
	case "tri":
		machine = phasetune.ThreeCoreAMP()
	default:
		return fmt.Errorf("unknown machine %q", machineName)
	}
	var mode phasetune.RunMode
	switch modeName {
	case "baseline":
		mode = phasetune.Baseline
	case "tuned":
		mode = phasetune.Tuned
	case "overhead":
		mode = phasetune.Overhead
	default:
		return fmt.Errorf("unknown mode %q", modeName)
	}
	var tech transition.Technique
	switch technique {
	case "bb":
		tech = transition.BasicBlock
	case "interval":
		tech = transition.Interval
	case "loop":
		tech = transition.Loop
	default:
		return fmt.Errorf("unknown technique %q", technique)
	}

	cost := phasetune.DefaultCost()
	suite, err := phasetune.SuiteFor(cost, machine)
	if err != nil {
		return err
	}
	w := phasetune.NewWorkload(suite, slots, 256, seed)
	tcfg := phasetune.DefaultTuning()
	tcfg.Delta = delta

	var events phasetune.Events
	if progress {
		events.OnProgress = func(simSec float64) {
			fmt.Fprintf(os.Stderr, "\rt=%.0fs", simSec)
		}
		events.OnImage = func(bench string, stats phasetune.ImageStats, cached bool) {
			src := "prepared"
			if cached {
				src = "cached"
			}
			fmt.Fprintf(os.Stderr, "image %-14s %s (%d marks)\n", bench, src, stats.Marks)
		}
	}

	// Ctrl-C cancels the simulation mid-run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sess := phasetune.NewSession(
		phasetune.WithMachine(machine),
		phasetune.WithCost(cost),
		phasetune.WithTuning(tcfg),
		phasetune.WithEvents(events),
	)
	res, err := sess.RunContext(ctx, phasetune.RunSpec{
		Workload:    w,
		DurationSec: duration,
		Mode:        mode,
		Params: phasetune.TechniqueParams{
			Technique: tech, MinSize: minSize, PropagateThroughUntyped: true,
		},
		Seed: seed,
	})
	if progress {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}

	migrations, marks := 0, uint64(0)
	for _, t := range res.Tasks {
		migrations += t.Migrations
		marks += t.MarksExecuted
	}
	tput := metrics.ThroughputOver(res.Samples, 0, duration)

	t := textplot.NewTable("metric", "value")
	t.AddRow("machine", machine.Name)
	t.AddRow("mode", mode.String())
	t.AddRow("slots", fmt.Sprintf("%d", slots))
	t.AddRow("duration", fmt.Sprintf("%.0fs", duration))
	t.AddRow("jobs spawned", fmt.Sprintf("%d", len(res.Tasks)))
	t.AddRow("jobs completed", fmt.Sprintf("%d", metrics.CompletedCount(res.Tasks)))
	t.AddRow("avg process time", fmt.Sprintf("%.2fs", metrics.AvgProcessTime(res.Tasks)))
	t.AddRow("max flow", fmt.Sprintf("%.2fs", metrics.MaxFlow(res.Tasks)))
	t.AddRow("throughput", fmt.Sprintf("%.4g instr/s", tput))
	t.AddRow("core switches", fmt.Sprintf("%d", migrations))
	t.AddRow("marks executed", fmt.Sprintf("%d", marks))
	t.AddRow("counter deferrals", fmt.Sprintf("%d", res.CounterDefers))
	fmt.Print(t.String())
	return nil
}
