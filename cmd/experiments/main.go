// Command experiments regenerates every table and figure of the paper's
// evaluation section on the simulated platform.
//
// Usage:
//
//	experiments [-run all|fig3|fig4|table1|fig5|fig6|fig7|table2|fig8|
//	             switchcost|typing|threecore|showdown|window|breakdown|
//	             serving|contention|ablations]
//	            [-slots N] [-duration SEC] [-seeds a,b,c] [-quick]
//	            [-workers N] [-shards N] [-cachestats] [-ledger]
//	            [-alts a,b,c] [-windows a,b,c] [-benchout FILE]
//	            [-cpuprofile FILE] [-memprofile FILE]
//
// Each experiment prints a paper-style table plus the paper's reported
// numbers where applicable. -quick shrinks workload sizes for a fast pass.
// All drivers run on the concurrent sweep engine with one shared artifact
// cache for the whole invocation: -workers bounds the pool (0 = GOMAXPROCS)
// and -cachestats reports how often the static pipeline was actually run.
// -shards N routes every sweep through the distributed fabric with N local
// workers instead of the in-process pool — results are byte-identical, and
// the same campaigns can be served to real worker processes with
// cmd/sweepd.
//
// -run breakdown maps the misprediction cost of reactive detection: the
// synthetic alternation-rate axis (-alts, alternation counts) against the
// detector window sizes (-windows), rendered as a dynamic-vs-static delta
// heatmap with the break-even frontier marked. -benchout appends the map
// as a `breakdown` entry to the measurement history (BENCH_sweep.json),
// where `benchjson -history` charts it alongside the timing trajectory.
//
// -run serving is the open-system experiment: Poisson arrivals at offered
// loads 0.5×–1.5× of machine capacity, overcommit scheduling, and the
// sojourn-time tail (p50/p95/p99/p999) per placement policy on the quad
// and hex machines. -benchout appends it as a `serving` entry. -trace
// additionally re-runs one representative cell (first machine, hybrid
// policy, load 1.0×) with the deterministic tracer attached and writes
// the Chrome trace-event JSON timeline to the given path — one traced
// run, outside the sweep, because concurrent cells would interleave
// events nondeterministically. The path is validated (created) up front.
//
// -run contention is the shared-cache herding experiment: the
// memory-antagonist fleet on the hex and quad machines, every placement
// policy unpriced (measuring how IPC-only arbitration herds the
// antagonists onto one cache group) and every engine-backed policy
// contention-priced (measuring the separation and recovered throughput).
// The table's max-share column is the hottest cache group's share of
// memory-bound core time: 1.0 is fully herded, 1/groups a perfect spread.
// -benchout appends the rows as a `contention` entry.
//
// -ledger enables conserved cycle accounting on every run: the showdown,
// serving, and breakdown tables grow attribution columns decomposing each
// cell's machine time (useful work, asymmetry loss, capacity spill,
// instrumentation overhead, idle), and `-run showdown -ledger -benchout`
// additionally appends the per-policy rollup as a `ledger` history entry
// that `benchjson -history` renders as stacked bars. Accounting never
// perturbs a run, so the timing columns are unchanged.
//
// -cpuprofile and -memprofile write pprof profiles of the whole invocation
// (the CPU profile spans every sweep; the heap profile is taken after a
// final GC at exit). Both paths are validated (created) up front, matching
// -trace, so a bad path fails in milliseconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"phasetune/internal/benchhist"
	"phasetune/internal/experiments"
	"phasetune/internal/textplot"
	"phasetune/internal/trace"
	"phasetune/internal/workload"
)

// breakdownOpts carries the breakdown map's flag-selected axes.
var breakdownOpts struct {
	alts    []int
	windows []uint64
	out     string
}

// servingOpts carries the serving experiment's trace destination.
var servingOpts struct {
	trace string
}

func main() {
	runFlag := flag.String("run", "all", "experiment to run")
	slots := flag.Int("slots", 0, "workload slots (0 = default 18)")
	duration := flag.Float64("duration", 0, "workload duration in simulated seconds (0 = default 800)")
	seedsFlag := flag.String("seeds", "", "comma-separated workload seeds (default 5,42,99)")
	quick := flag.Bool("quick", false, "shrink workloads for a fast pass")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "route sweeps through the distributed fabric with N local workers")
	cachestats := flag.Bool("cachestats", false, "print artifact cache statistics at exit")
	altsFlag := flag.String("alts", "", "breakdown: comma-separated alternation counts (default 4,16,64,256,1024,4096)")
	windowsFlag := flag.String("windows", "", "breakdown: comma-separated window sizes in instructions (default 2000,4000,8000,16000,32000)")
	benchout := flag.String("benchout", "", "breakdown: append the map to this measurement history (e.g. BENCH_sweep.json)")
	traceFlag := flag.String("trace", "", "serving: write a Chrome trace-event JSON timeline of one representative serving run to this path")
	ledgerFlag := flag.Bool("ledger", false, "enable conserved cycle accounting and print attribution columns")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole invocation to this path")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (after final GC) to this path")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(fmt.Errorf("-cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(fmt.Errorf("-cpuprofile: %w", err))
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		// Validate the path up front like -trace; the profile itself is
		// taken at exit, when the heap reflects the whole invocation.
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(fmt.Errorf("-memprofile: %w", err))
		}
		f.Close()
		defer writeMemProfile(*memprofile)
	}

	if *traceFlag != "" {
		if *runFlag != "serving" {
			fatal(fmt.Errorf("-trace only applies to -run serving (a tracer serves one run; sweeps run cells concurrently)"))
		}
		// Validate the trace path up front: create/truncate it now so a
		// bad path fails in milliseconds, not after the whole sweep.
		f, err := os.Create(*traceFlag)
		if err != nil {
			fatal(fmt.Errorf("-trace: %w", err))
		}
		f.Close()
		servingOpts.trace = *traceFlag
	}

	cfg, err := experiments.Default()
	if err != nil {
		fatal(err)
	}
	if *quick {
		cfg = cfg.Scale(8, 200, []uint64{5})
	}
	if *slots > 0 {
		cfg.Slots = *slots
	}
	if *duration > 0 {
		cfg.DurationSec = *duration
	}
	cfg.Workers = *workers
	cfg.Shards = *shards
	cfg.Ledger = *ledgerFlag
	if *seedsFlag != "" {
		var seeds []uint64
		for _, s := range strings.Split(*seedsFlag, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad seed %q: %w", s, err))
			}
			seeds = append(seeds, v)
		}
		cfg.Seeds = seeds
	}
	if *altsFlag != "" {
		for _, s := range strings.Split(*altsFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 {
				fatal(fmt.Errorf("bad alternation count %q", s))
			}
			breakdownOpts.alts = append(breakdownOpts.alts, v)
		}
	}
	if *windowsFlag != "" {
		for _, s := range strings.Split(*windowsFlag, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
			if err != nil || v == 0 {
				fatal(fmt.Errorf("bad window size %q", s))
			}
			breakdownOpts.windows = append(breakdownOpts.windows, v)
		}
	}
	breakdownOpts.out = *benchout

	all := *runFlag == "all"
	ran := false
	for _, exp := range []struct {
		name string
		fn   func(experiments.Config) error
	}{
		{"fig3", fig3},
		{"fig4", fig4},
		{"table1", table1},
		{"fig5", fig5},
		{"fig6", fig6},
		{"fig7", fig7},
		{"table2", table2},
		{"fig8", fig8},
		{"switchcost", switchcost},
		{"typing", typing},
		{"threecore", threecore},
		{"showdown", showdown},
		{"window", window},
		{"breakdown", breakdown},
		{"serving", serving},
		{"contention", contention},
		{"ablations", ablations},
	} {
		if all || *runFlag == exp.name {
			ran = true
			if err := exp.fn(cfg); err != nil {
				fatal(fmt.Errorf("%s: %w", exp.name, err))
			}
		}
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *runFlag))
	}
	if *cachestats {
		s := cfg.Cache.Stats()
		fmt.Printf("\nartifact cache: %d entries, %d pipeline runs, %d hits\n",
			s.Entries, s.Misses, s.Hits)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

// writeMemProfile records the heap after a final GC, so the profile shows
// live retention rather than transient sweep garbage.
func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: -memprofile:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: -memprofile:", err)
	}
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n\n", title)
}

func fig3(cfg experiments.Config) error {
	header("Fig. 3 — space overhead per technique (paper: best Loop[45] < 4%)")
	rows, err := experiments.Fig3SpaceOverhead(cfg)
	if err != nil {
		return err
	}
	var names []string
	var mins, q1s, meds, q3s, maxs []float64
	t := textplot.NewTable("variant", "min%", "q1%", "median%", "q3%", "max%", "marks/bench")
	for _, r := range rows {
		t.AddRow(r.Variant,
			fmt.Sprintf("%.2f", 100*r.Box.Min),
			fmt.Sprintf("%.2f", 100*r.Box.Q1),
			fmt.Sprintf("%.2f", 100*r.Box.Median),
			fmt.Sprintf("%.2f", 100*r.Box.Q3),
			fmt.Sprintf("%.2f", 100*r.Box.Max),
			fmt.Sprintf("%.2f", r.MeanMarks))
		names = append(names, r.Variant)
		mins = append(mins, 100*r.Box.Min)
		q1s = append(q1s, 100*r.Box.Q1)
		meds = append(meds, 100*r.Box.Median)
		q3s = append(q3s, 100*r.Box.Q3)
		maxs = append(maxs, 100*r.Box.Max)
	}
	fmt.Print(t.String())
	fmt.Println()
	fmt.Print(textplot.BoxPlot(names, mins, q1s, meds, q3s, maxs, 48))
	return nil
}

func fig4(cfg experiments.Config) error {
	header("Fig. 4 — time overhead, all-cores mode (paper: as low as 0.14%)")
	rows, err := experiments.Fig4TimeOverhead(cfg, nil)
	if err != nil {
		return err
	}
	t := textplot.NewTable("variant", "overhead%", "marks executed")
	for _, r := range rows {
		t.AddRow(r.Variant, fmt.Sprintf("%.3f", r.OverheadPct), fmt.Sprintf("%d", r.MarksExecuted))
	}
	fmt.Print(t.String())
	return nil
}

func table1(cfg experiments.Config) error {
	header(fmt.Sprintf("Table 1 — switches per benchmark, Loop[45] (paper values scaled by 1/%d)", workload.ScaleDivisor))
	rows, err := experiments.Table1Switches(cfg)
	if err != nil {
		return err
	}
	t := textplot.NewTable("benchmark", "switches", "paper/20", "runtime(s)", "paper(s)/20")
	for _, r := range rows {
		t.AddRow(r.Benchmark,
			fmt.Sprintf("%d", r.Switches),
			fmt.Sprintf("%d", r.PaperSwitches/workload.ScaleDivisor),
			fmt.Sprintf("%.1f", r.RuntimeSec),
			fmt.Sprintf("%.1f", r.PaperRuntimeSec/workload.ScaleDivisor))
	}
	fmt.Print(t.String())
	return nil
}

func fig5(cfg experiments.Config) error {
	header("Fig. 5 — average cycles per core switch, log scale")
	rows, err := experiments.Table1Switches(cfg)
	if err != nil {
		return err
	}
	var names []string
	var vals []float64
	for _, r := range rows {
		names = append(names, r.Benchmark)
		vals = append(vals, r.CyclesPerSwitch)
	}
	fmt.Print(textplot.LogBars(names, vals, 48))
	return nil
}

func fig6(cfg experiments.Config) error {
	header("Fig. 6 — throughput vs IPC threshold, BB[15,0] (paper: optimum between extremes)")
	rows, err := experiments.Fig6Thresholds(cfg, nil)
	if err != nil {
		return err
	}
	var xs, ys []float64
	for _, r := range rows {
		xs = append(xs, r.Delta)
		ys = append(ys, r.ImprovementPct)
	}
	fmt.Print(textplot.Series("delta", "tput +%", xs, ys, 36))
	return nil
}

func fig7(cfg experiments.Config) error {
	header("Fig. 7 — throughput vs clustering error, BB[15,0] (paper: robust to 20%)")
	rows, err := experiments.Fig7ClusteringError(cfg, nil)
	if err != nil {
		return err
	}
	var xs, ys []float64
	for _, r := range rows {
		xs = append(xs, r.ErrorPct)
		ys = append(ys, r.ImprovementPct)
	}
	fmt.Print(textplot.Series("error %", "tput +%", xs, ys, 36))
	return nil
}

func table2(cfg experiments.Config) error {
	header("Table 2 — fairness vs stock Linux, % decrease (paper best Loop[45]: 12.04/20.41/35.95)")
	rows, err := experiments.Table2Fairness(cfg, nil)
	if err != nil {
		return err
	}
	printFairness(rows)
	return nil
}

func printFairness(rows []experiments.FairnessRow) {
	t := textplot.NewTable("variant", "max-flow%", "max-stretch%", "avg-time%", "matched-avg%", "tput%")
	for _, r := range rows {
		t.AddRow(r.Variant,
			fmt.Sprintf("%+.2f", r.MaxFlowPct),
			fmt.Sprintf("%+.2f", r.MaxStretchPct),
			fmt.Sprintf("%+.2f", r.AvgTimePct),
			fmt.Sprintf("%+.2f", r.MatchedAvgPct),
			fmt.Sprintf("%+.2f", r.ThroughputPct))
	}
	fmt.Print(t.String())
}

func fig8(cfg experiments.Config) error {
	header("Fig. 8 — speedup vs fairness trade-off (avg time vs max stretch)")
	rows, err := experiments.Fig8Tradeoff(cfg, nil)
	if err != nil {
		return err
	}
	t := textplot.NewTable("variant", "x=max-stretch%", "y=avg-time%")
	for _, r := range rows {
		t.AddRow(r.Variant, fmt.Sprintf("%+.2f", r.MaxStretchPct), fmt.Sprintf("%+.2f", r.AvgTimePct))
	}
	fmt.Print(t.String())
	return nil
}

func printAblation(rows []experiments.AblationRow) {
	t := textplot.NewTable("variant", "avg-time%", "tput%", "max-stretch%")
	for _, r := range rows {
		t.AddRow(r.Name,
			fmt.Sprintf("%+.2f", r.AvgTimePct),
			fmt.Sprintf("%+.2f", r.ThroughputPct),
			fmt.Sprintf("%+.2f", r.MaxStretchPct))
	}
	fmt.Print(t.String())
}

func switchcost(cfg experiments.Config) error {
	header("§IV-B3 — core switch cost (paper: ~1000 cycles)")
	r, err := experiments.SwitchCost(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("measured: %.0f cycles/switch (scaled clock), %.0f cycles descaled; %d switches\n",
		r.CyclesPerSwitch, r.DescaledCycles, r.Switches)
	return nil
}

func typing(cfg experiments.Config) error {
	header("§II-A3 — static typing accuracy (paper: ~15% misclassified)")
	r, err := experiments.TypingAccuracy(cfg, 0.06)
	if err != nil {
		return err
	}
	fmt.Printf("agreement with IPC oracle: %.1f%% over %d blocks (misclassified %.1f%%)\n",
		100*r.Agreement, r.Blocks, 100*(1-r.Agreement))
	return nil
}

func threecore(cfg experiments.Config) error {
	header("§VII — 3-core (2 fast, 1 slow) machine (paper: ~32% speedup)")
	r, err := experiments.ThreeCore(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("avg process time decrease: %+.2f%% (matched %+.2f%%), throughput: %+.2f%%\n",
		r.AvgTimePct, r.MatchedAvgPct, r.ThroughputPct)
	return nil
}

func showdown(cfg experiments.Config) error {
	header("§V showdown — static marks vs dynamic online detection vs oracle (paper's central claim)")
	rows, err := experiments.Showdown(cfg, nil)
	if err != nil {
		return err
	}
	t := textplot.NewTable("machine", "policy", "tput", "tput%", "avg-time%", "matched%",
		"switches", "marks", "windows", "monitor%", "refresh", "damped", "defers")
	for _, r := range rows {
		t.AddRow(r.Machine, r.Policy.String(),
			fmt.Sprintf("%.4g", r.Throughput),
			fmt.Sprintf("%+.2f", r.ThroughputPct),
			fmt.Sprintf("%+.2f", r.AvgTimePct),
			fmt.Sprintf("%+.2f", r.MatchedAvgPct),
			fmt.Sprintf("%.0f", r.Switches),
			fmt.Sprintf("%.0f", r.MarksExecuted),
			fmt.Sprintf("%.0f", r.MonitorWindows),
			fmt.Sprintf("%.3f", r.MonitorPct),
			fmt.Sprintf("%.0f", r.Refreshes),
			fmt.Sprintf("%.0f", r.Damped),
			fmt.Sprintf("%.0f", r.CounterDefers))
	}
	fmt.Print(t.String())

	if len(rows) > 0 && rows[0].HasLedger {
		fmt.Println("\ncycle attribution — % of machine time (cores × horizon), conserved to 100%")
		lt := textplot.NewTable("machine", "policy", "useful%", "asym%", "spill%", "ovh%", "idle%")
		var ledgerRows []benchhist.LedgerRow
		for _, r := range rows {
			lt.AddRow(r.Machine, r.Policy.String(),
				fmt.Sprintf("%.2f", r.UsefulPct),
				fmt.Sprintf("%.2f", r.AsymmetryPct),
				fmt.Sprintf("%.2f", r.SpillPct),
				fmt.Sprintf("%.2f", r.OverheadPct),
				fmt.Sprintf("%.2f", r.IdlePct))
			ledgerRows = append(ledgerRows, benchhist.LedgerRow{
				Machine: r.Machine, Policy: r.Policy.String(),
				UsefulPct: r.UsefulPct, AsymmetryPct: r.AsymmetryPct,
				SpillPct: r.SpillPct, OverheadPct: r.OverheadPct, IdlePct: r.IdlePct,
			})
		}
		fmt.Print(lt.String())

		if breakdownOpts.out != "" {
			err := benchhist.Append(breakdownOpts.out, benchhist.Entry{
				Kind:      benchhist.KindLedger,
				Timestamp: time.Now().UTC().Format(time.RFC3339),
				GoVersion: runtime.Version(),
				MaxProcs:  runtime.GOMAXPROCS(0),
				Ledger:    ledgerRows,
			})
			if err != nil {
				return err
			}
			fmt.Printf("\nappended ledger entry to %s\n", breakdownOpts.out)
		}
	}

	fmt.Println()
	cc, err := experiments.ShowdownCounterContention(cfg, 4)
	if err != nil {
		return err
	}
	fmt.Printf("dynamic/probe with 4 bounded event sets: %d deferrals, %d windows, tput %+.2f%%\n",
		cc.Defers, cc.Windows, cc.ThroughputPct)
	return nil
}

func window(cfg experiments.Config) error {
	header("Window-size sweep — online WindowInstrs vs throughput and switches (dynamic Fig. 6 analogue)")
	rows, err := experiments.WindowSweep(cfg, nil, nil)
	if err != nil {
		return err
	}
	t := textplot.NewTable("window", "policy", "tput%", "online-switches", "windows", "monitor%")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.WindowInstrs), r.Policy.String(),
			fmt.Sprintf("%+.2f", r.ThroughputPct),
			fmt.Sprintf("%.0f", r.OnlineSwitches),
			fmt.Sprintf("%.0f", r.Windows),
			fmt.Sprintf("%.3f", r.MonitorPct))
	}
	fmt.Print(t.String())
	return nil
}

func breakdown(cfg experiments.Config) error {
	header("Misprediction-cost breakdown map — alternation rate × window size (§V, quantitative)")
	res, err := experiments.Breakdown(cfg, nil, breakdownOpts.alts, breakdownOpts.windows)
	if err != nil {
		return err
	}

	t := textplot.NewTable("machine", "alt", "rate/Binstr", "window", "static-ref", "static%", "dynamic%", "hybrid%", "oracle%", "delta", "dyn-switches")
	for _, r := range res.Rows {
		t.AddRow(r.Machine,
			fmt.Sprintf("%d", r.Alternations),
			fmt.Sprintf("%.0f", r.Rate),
			fmt.Sprintf("%d", r.WindowInstrs),
			r.StaticPolicy.String(),
			fmt.Sprintf("%+.2f", r.StaticPct),
			fmt.Sprintf("%+.2f", r.DynamicPct),
			fmt.Sprintf("%+.2f", r.HybridPct),
			fmt.Sprintf("%+.2f", r.OraclePct),
			fmt.Sprintf("%+.2f", r.DeltaPct),
			fmt.Sprintf("%.0f", r.DynSwitches))
	}
	fmt.Print(t.String())

	if len(res.Rows) > 0 && res.Rows[0].HasLedger {
		fmt.Println("\nmisprediction attribution — % of machine time lost to slow-core placement (asym+spill)")
		lt := textplot.NewTable("machine", "alt", "window", "static-asym%", "dyn-asym%", "dyn-monitor%")
		for _, r := range res.Rows {
			lt.AddRow(r.Machine,
				fmt.Sprintf("%d", r.Alternations),
				fmt.Sprintf("%d", r.WindowInstrs),
				fmt.Sprintf("%.2f", r.StaticAsymmetryPct),
				fmt.Sprintf("%.2f", r.DynAsymmetryPct),
				fmt.Sprintf("%.3f", r.DynMonitorPct))
		}
		fmt.Print(lt.String())
	}

	// One heatmap per machine: rows = rates, cols = windows, cell =
	// dynamic − static throughput delta in percentage points.
	var colLabels []string
	for _, w := range res.Windows {
		colLabels = append(colLabels, fmt.Sprintf("%d", w))
	}
	var entries []benchhist.Breakdown
	for _, machine := range machinesOf(res) {
		bd := benchhist.Breakdown{Machine: machine, WindowInstrs: res.Windows,
			TolerancePct: experiments.BreakdownTolerancePct}
		var rowLabels []string
		var grid [][]float64
		for _, f := range res.Frontier {
			if f.Machine != machine {
				continue
			}
			bd.Alternations = append(bd.Alternations, f.Alternations)
			bd.Rates = append(bd.Rates, f.Rate)
			bd.BreakEvenWindow = append(bd.BreakEvenWindow, f.BreakEvenWindow)
			rowLabels = append(rowLabels, fmt.Sprintf("alt.x%d", f.Alternations))
			var row []float64
			for _, r := range res.Rows {
				if r.Machine == machine && r.Alternations == f.Alternations {
					row = append(row, r.DeltaPct)
				}
			}
			grid = append(grid, row)
		}
		bd.DeltaPct = grid
		entries = append(entries, bd)

		fmt.Printf("\n%s — dynamic−static tput delta (pp) by (alternation rate × window)\n", machine)
		fmt.Print(textplot.Heatmap("rate\\win", rowLabels, colLabels, grid, experiments.BreakdownTolerancePct))
		ft := textplot.NewTable("rate", "alternations", "break-even window")
		for _, f := range res.Frontier {
			if f.Machine != machine {
				continue
			}
			be := "none (dynamic loses at every window)"
			if f.BreakEvenWindow > 0 {
				be = fmt.Sprintf("%d", f.BreakEvenWindow)
			}
			ft.AddRow(fmt.Sprintf("%.0f", f.Rate), fmt.Sprintf("%d", f.Alternations), be)
		}
		fmt.Print(ft.String())
	}

	if breakdownOpts.out != "" {
		err := benchhist.Append(breakdownOpts.out, benchhist.Entry{
			Kind:      benchhist.KindBreakdown,
			Timestamp: time.Now().UTC().Format(time.RFC3339),
			GoVersion: runtime.Version(),
			MaxProcs:  runtime.GOMAXPROCS(0),
			Breakdown: entries,
		})
		if err != nil {
			return err
		}
		fmt.Printf("\nappended breakdown entry to %s\n", breakdownOpts.out)
	}
	return nil
}

func serving(cfg experiments.Config) error {
	header("Open-system serving — sojourn-time tail by offered load × placement policy")
	rows, err := experiments.Serving(cfg, nil)
	if err != nil {
		return err
	}

	t := textplot.NewTable("machine", "load", "rate/s", "policy", "admitted", "done",
		"p50", "p95", "p99", "p999", "mean", "peak-run", "oc-slices")
	for _, r := range rows {
		t.AddRow(r.Machine,
			fmt.Sprintf("%.2f", r.Load),
			fmt.Sprintf("%.2f", r.RatePerSec),
			r.Policy.String(),
			fmt.Sprintf("%.0f", r.Admitted),
			fmt.Sprintf("%.0f", r.Completed),
			fmt.Sprintf("%.2f", r.P50),
			fmt.Sprintf("%.2f", r.P95),
			fmt.Sprintf("%.2f", r.P99),
			fmt.Sprintf("%.2f", r.P999),
			fmt.Sprintf("%.2f", r.MeanSojournSec),
			fmt.Sprintf("%d", r.PeakRunnable),
			fmt.Sprintf("%.0f", r.OvercommitSlices))
	}
	fmt.Print(t.String())

	if len(rows) > 0 && rows[0].HasLedger {
		fmt.Println("\nsojourn decomposition — summed task-seconds per seed: queueing vs service vs slicing")
		lt := textplot.NewTable("machine", "load", "policy", "queueing(s)", "service(s)", "slicing(s)", "queue/service")
		for _, r := range rows {
			ratio := "-"
			if r.ServiceSec > 0 {
				ratio = fmt.Sprintf("%.2f", r.QueueingSec/r.ServiceSec)
			}
			lt.AddRow(r.Machine,
				fmt.Sprintf("%.2f", r.Load),
				r.Policy.String(),
				fmt.Sprintf("%.1f", r.QueueingSec),
				fmt.Sprintf("%.1f", r.ServiceSec),
				fmt.Sprintf("%.2f", r.SlicingSec),
				ratio)
		}
		fmt.Print(lt.String())
	}

	// One quantile strip per (machine, load): the policies' latency tails
	// on a shared axis, where the separation at load >= 1x is visible.
	loads, policies := experiments.ServingLoads(), experiments.ServingPolicies()
	byCell := map[string]experiments.ServingRow{}
	var machines []string
	seen := map[string]bool{}
	for _, r := range rows {
		byCell[fmt.Sprintf("%s/%.2f/%s", r.Machine, r.Load, r.Policy)] = r
		if !seen[r.Machine] {
			seen[r.Machine] = true
			machines = append(machines, r.Machine)
		}
	}
	var entries []benchhist.Serving
	for _, machine := range machines {
		entry := benchhist.Serving{Machine: machine, Loads: loads}
		for _, p := range policies {
			entry.Policies = append(entry.Policies, p.String())
		}
		for _, load := range loads {
			var names []string
			var p50s, p95s, p99s, p999s []float64
			peak := 0
			for _, p := range policies {
				r := byCell[fmt.Sprintf("%s/%.2f/%s", machine, load, p)]
				names = append(names, p.String())
				p50s = append(p50s, r.P50)
				p95s = append(p95s, r.P95)
				p99s = append(p99s, r.P99)
				p999s = append(p999s, r.P999)
				if r.PeakRunnable > peak {
					peak = r.PeakRunnable
				}
			}
			// History rows go through JSON, which rejects NaN; starved
			// cells are recorded as benchhist.NoData instead.
			entry.P50Sec = append(entry.P50Sec, benchhist.SanitizeNaNs(p50s))
			entry.P99Sec = append(entry.P99Sec, benchhist.SanitizeNaNs(p99s))
			entry.P999Sec = append(entry.P999Sec, benchhist.SanitizeNaNs(p999s))
			entry.PeakRunnable = append(entry.PeakRunnable, peak)
			fmt.Printf("\n%s @ load %.2fx — sojourn quantiles (s), peak runnable %d\n", machine, load, peak)
			fmt.Print(textplot.QuantileStrip(names, p50s, p95s, p99s, p999s, 48))
		}
		entries = append(entries, entry)
	}

	if breakdownOpts.out != "" {
		err := benchhist.Append(breakdownOpts.out, benchhist.Entry{
			Kind:      benchhist.KindServing,
			Timestamp: time.Now().UTC().Format(time.RFC3339),
			GoVersion: runtime.Version(),
			MaxProcs:  runtime.GOMAXPROCS(0),
			Serving:   entries,
		})
		if err != nil {
			return err
		}
		fmt.Printf("\nappended serving entry to %s\n", breakdownOpts.out)
	}

	if servingOpts.trace != "" {
		tr := trace.New()
		st, err := experiments.ServingTraceRun(cfg, tr)
		if err != nil {
			return err
		}
		if err := tr.WriteFile(servingOpts.trace); err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		fmt.Printf("\ntraced representative run (hybrid, load 1.00x): %d admitted, %d completed\n",
			st.Admitted, st.Completed)
		fmt.Printf("wrote %d trace events to %s (open in Perfetto / chrome://tracing)\n",
			tr.Len(), servingOpts.trace)
	}
	return nil
}

func contention(cfg experiments.Config) error {
	header("Shared-cache contention — antagonist herding vs contention-priced placement")
	rows, err := experiments.Contention(cfg, nil)
	if err != nil {
		return err
	}

	t := textplot.NewTable("machine", "policy", "priced", "tput", "tput%",
		"max-share", "groups", "mem-tasks", "switches", "shares")
	var hist []benchhist.ContentionRow
	for _, r := range rows {
		priced := "-"
		if r.Priced {
			priced = "yes"
		}
		var shares []string
		for _, s := range r.MemShare {
			shares = append(shares, fmt.Sprintf("%.2f", s))
		}
		t.AddRow(r.Machine, r.Policy.String(), priced,
			fmt.Sprintf("%.4g", r.Throughput),
			fmt.Sprintf("%+.2f", r.ThroughputPct),
			fmt.Sprintf("%.3f", r.MaxMemShare),
			fmt.Sprintf("%.1f", r.GroupsUsed),
			fmt.Sprintf("%.1f", r.MemTasks),
			fmt.Sprintf("%.0f", r.Switches),
			strings.Join(shares, "/"))
		hist = append(hist, benchhist.ContentionRow{
			Machine: r.Machine, Policy: r.Policy.String(), Priced: r.Priced,
			Throughput: r.Throughput, ThroughputPct: r.ThroughputPct,
			MemShare: r.MemShare, MaxMemShare: r.MaxMemShare,
			GroupsUsed: r.GroupsUsed, MemTasks: r.MemTasks,
		})
	}
	fmt.Print(t.String())

	// One bar chart per machine: the herding signature by policy, unpriced
	// vs priced side by side.
	var machines []string
	seen := map[string]bool{}
	for _, r := range rows {
		if !seen[r.Machine] {
			seen[r.Machine] = true
			machines = append(machines, r.Machine)
		}
	}
	for _, machine := range machines {
		var names []string
		var vals []float64
		for _, r := range rows {
			if r.Machine != machine {
				continue
			}
			label := r.Policy.String()
			if r.Priced {
				label += "+price"
			}
			names = append(names, label)
			vals = append(vals, r.MaxMemShare)
		}
		fmt.Printf("\n%s — hottest cache group's share of memory-bound time (1.0 = herded)\n", machine)
		fmt.Print(textplot.Bars(names, vals, 48))
	}

	if breakdownOpts.out != "" {
		err := benchhist.Append(breakdownOpts.out, benchhist.Entry{
			Kind:       benchhist.KindContention,
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			GoVersion:  runtime.Version(),
			MaxProcs:   runtime.GOMAXPROCS(0),
			Contention: hist,
		})
		if err != nil {
			return err
		}
		fmt.Printf("\nappended contention entry to %s\n", breakdownOpts.out)
	}
	return nil
}

// machinesOf lists the machines of a breakdown result in first-appearance
// order.
func machinesOf(res *experiments.BreakdownResult) []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range res.Rows {
		if !seen[r.Machine] {
			seen[r.Machine] = true
			out = append(out, r.Machine)
		}
	}
	return out
}

func ablations(cfg experiments.Config) error {
	header("Ablation — pin to core type vs single core")
	rows, err := experiments.AblationPinMode(cfg)
	if err != nil {
		return err
	}
	printAblation(rows)

	header("Ablation — bounded monitoring vs mark-only monitoring")
	rows, err = experiments.AblationMonitorBound(cfg)
	if err != nil {
		return err
	}
	printAblation(rows)

	header("Ablation — positional (phase marks) vs temporal (interval resampling)")
	rows, err = experiments.AblationTemporal(cfg, 50000)
	if err != nil {
		return err
	}
	printAblation(rows)

	header("Ablation — static marks: propagation vs naive edge rule")
	rows, err = experiments.AblationPropagation(cfg)
	if err != nil {
		return err
	}
	t := textplot.NewTable("variant", "total static marks")
	for _, r := range rows {
		t.AddRow(r.Name, fmt.Sprintf("%.0f", r.AvgTimePct))
	}
	fmt.Print(t.String())

	header("Ablation — counter contention with 4 bounded event sets")
	cc, err := experiments.CounterContentionCheck(cfg, 4)
	if err != nil {
		return err
	}
	fmt.Printf("monitoring deferrals: %d (marks executed: %d)\n", cc.Defers, cc.Marks)
	return nil
}
