// Command benchjson runs the repository's headline performance benchmarks
// and appends them to a machine-readable history (default BENCH_sweep.json),
// so the performance trajectory accumulates PR-over-PR instead of living
// only in transient `go test -bench` output.
//
// Usage:
//
//	benchjson [-out BENCH_sweep.json] [-reps 3] [-shards N]
//	benchjson -history [-out BENCH_sweep.json] [-regression 10]
//
// -history renders the recorded trajectory instead of running benchmarks:
// one ASCII series per benchmark name (ns/op over entries) plus a
// last-vs-previous comparison table. The history is shared with other
// producers (internal/benchhist): `breakdown` entries appended by
// `cmd/experiments -run breakdown -benchout` render as misprediction-cost
// heatmaps after the timing series, `serving` entries appended by
// `cmd/experiments -run serving -benchout` render as latency quantile
// strips, `ledger` entries appended by `cmd/experiments -run showdown
// -ledger -benchout` render as per-policy cycle-attribution stacked bars,
// `contention` entries appended by `cmd/experiments -run contention
// -benchout` render as a shared-cache herding table,
// and entries of kinds this build does not know are called out by
// kind and count rather than silently skipped. The regression gate
// compares the last two *timing* entries, so appending a breakdown map, a
// serving summary, an attribution rollup, or a herding table never masks
// (or fakes) a benchmark regression. It exits
// non-zero when any benchmark regressed by more than -regression percent —
// CI wires it as a soft-fail step so the performance trajectory is
// inspected on every push without blocking unrelated work.
//
// Timings recorded, mirroring the root bench harness:
//
//   - grid_sequential: the legacy one-shot Run loop over the technique
//     grid (no artifact sharing);
//   - grid_sweep: the identical grid through Session.Sweep (bounded worker
//     pool + shared image cache);
//   - grid_sweep_sharded (with -shards N): the identical grid through the
//     distributed fabric (Session.SweepSharded) with N local workers —
//     wire-format specs, per-worker caches, deterministic merge. Note the
//     protocols differ on repetition: grid_sweep reuses one session, so
//     reps after the first run cache-warm, while every sharded rep builds
//     fresh per-worker caches (workers live per call). Compare both
//     against grid_sequential (always cold), not against each other;
//   - workload_second_baseline / workload_second_dynamic: the cost of
//     simulating one loaded second under the stock scheduler and under the
//     online phase detector (the dynamic subsystem's overhead on the
//     simulator hot path).
//
// Each benchmark runs -reps times and reports the minimum (the standard
// noise-rejection choice for wall-clock microbenchmarks). Every timing
// benchmark additionally records its heap allocation count for the fastest
// rep (metric allocs_per_op, the `-benchmem` analogue), and grid_sweep
// records the session's segment-memo counters (memo_hits plus the derived
// memo_hit_rate): with -reps >= 2 the later reps replay memoized segment
// outcomes, so a zero warm hit rate is a memo regression.
//
// The output file is a history (schema phasetune-bench-history/v1): each
// invocation appends one timestamped entry. A pre-history file holding a
// single phasetune-bench/v1 report is absorbed as the first entry.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"phasetune"
	"phasetune/internal/benchhist"
	"phasetune/internal/textplot"
)

func main() {
	out := flag.String("out", "BENCH_sweep.json", "output path (history is appended)")
	reps := flag.Int("reps", 3, "repetitions per benchmark (minimum is reported)")
	shards := flag.Int("shards", 0, "also time the grid through the distributed fabric with N local workers")
	history := flag.Bool("history", false, "render the recorded history and check for regressions instead of running")
	regression := flag.Float64("regression", 10, "history mode: fail when a benchmark slowed by more than this percent vs the previous entry")
	flag.Parse()
	var err error
	if *history {
		err = runHistory(*out, *regression)
	} else {
		err = run(*out, *reps, *shards)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// runHistory renders the recorded trajectory and gates on regressions:
// every benchmark's ns/op is plotted over the timing entries, the latest
// breakdown entry (if any) renders as heatmaps, and the newest timing
// entry is compared against the one before it.
func runHistory(path string, regressionPct float64) error {
	hist := benchhist.Load(path)
	if len(hist.Entries) == 0 {
		return fmt.Errorf("%s holds no history entries", path)
	}

	// Partition by kind: timings chart as series, the latest breakdown
	// charts as heatmaps, the latest serving entry as quantile strips,
	// anything newer than this build is surfaced.
	var timings []benchhist.Entry
	var lastBreakdown, lastServing, lastLedger, lastContention *benchhist.Entry
	unknown := map[string]int{}
	for i := range hist.Entries {
		e := hist.Entries[i]
		switch e.Kind {
		case benchhist.KindBench:
			timings = append(timings, e)
		case benchhist.KindBreakdown:
			lastBreakdown = &hist.Entries[i]
		case benchhist.KindServing:
			lastServing = &hist.Entries[i]
		case benchhist.KindLedger:
			lastLedger = &hist.Entries[i]
		case benchhist.KindContention:
			lastContention = &hist.Entries[i]
		default:
			unknown[e.Kind]++
		}
	}
	fmt.Printf("%s: %d entries (%d timing, oldest first)\n", path, len(hist.Entries), len(timings))
	for kind, n := range unknown {
		fmt.Printf("note: %d entries of kind %q recorded by a newer producer — not charted by this build\n", n, kind)
	}

	// Collect per-benchmark series in first-appearance order.
	var names []string
	series := map[string][]float64{} // parallel to timing indices; -1 marks absent
	for _, e := range timings {
		for _, b := range e.Benchmarks {
			if _, ok := series[b.Name]; !ok {
				series[b.Name] = nil
				names = append(names, b.Name)
			}
		}
	}
	for _, name := range names {
		for _, e := range timings {
			v := -1.0
			for _, b := range e.Benchmarks {
				if b.Name == name {
					v = float64(b.NsPerOp) / 1e6 // ms
				}
			}
			series[name] = append(series[name], v)
		}
	}
	for _, name := range names {
		var xs, ys []float64
		for i, v := range series[name] {
			if v >= 0 {
				xs = append(xs, float64(i))
				ys = append(ys, v)
			}
		}
		if len(xs) < 2 {
			continue
		}
		fmt.Printf("\n%s (ms/op over entries)\n", name)
		fmt.Print(textplot.Series("entry", "ms/op", xs, ys, 40))
	}

	if lastBreakdown != nil {
		fmt.Printf("\nmisprediction-cost breakdown (recorded %s): dynamic−static tput delta (pp)\n",
			lastBreakdown.Timestamp)
		for _, bd := range lastBreakdown.Breakdown {
			var cols []string
			for _, w := range bd.WindowInstrs {
				cols = append(cols, fmt.Sprintf("%d", w))
			}
			var rows []string
			for _, a := range bd.Alternations {
				rows = append(rows, fmt.Sprintf("alt.x%d", a))
			}
			fmt.Printf("\n%s\n", bd.Machine)
			fmt.Print(textplot.Heatmap("rate\\win", rows, cols, bd.DeltaPct, bd.TolerancePct))
		}
	}

	if lastServing != nil {
		fmt.Printf("\nopen-system serving (recorded %s): sojourn quantiles by load × policy\n",
			lastServing.Timestamp)
		for _, sv := range lastServing.Serving {
			for li, load := range sv.Loads {
				if li >= len(sv.P50Sec) {
					break
				}
				peak := 0
				if li < len(sv.PeakRunnable) {
					peak = sv.PeakRunnable[li]
				}
				fmt.Printf("\n%s @ load %.2fx (peak runnable %d)\n", sv.Machine, load, peak)
				// The entry stores p50/p99/p999; reuse p99 for the strip's
				// p95 slot so the markers stay ordered.
				fmt.Print(textplot.QuantileStrip(sv.Policies,
					sv.P50Sec[li], sv.P99Sec[li], sv.P99Sec[li], sv.P999Sec[li], 48))
			}
		}
	}

	if lastLedger != nil {
		fmt.Printf("\ncycle attribution (recorded %s): %% of machine time by policy\n",
			lastLedger.Timestamp)
		segments := []string{"useful", "asymmetry", "spill", "overhead", "idle"}
		var machines []string
		seen := map[string]bool{}
		for _, r := range lastLedger.Ledger {
			if !seen[r.Machine] {
				seen[r.Machine] = true
				machines = append(machines, r.Machine)
			}
		}
		for _, machine := range machines {
			var names []string
			var vals [][]float64
			for _, r := range lastLedger.Ledger {
				if r.Machine != machine {
					continue
				}
				names = append(names, r.Policy)
				vals = append(vals, []float64{
					r.UsefulPct, r.AsymmetryPct, r.SpillPct, r.OverheadPct, r.IdlePct})
			}
			fmt.Printf("\n%s\n", machine)
			fmt.Print(textplot.StackedBars(names, segments, vals, 48))
		}
	}

	if lastContention != nil {
		fmt.Printf("\nshared-cache contention (recorded %s): hottest-group share of memory-bound time\n",
			lastContention.Timestamp)
		t := textplot.NewTable("machine", "policy", "priced", "max-share", "groups", "tput%")
		for _, r := range lastContention.Contention {
			priced := "-"
			if r.Priced {
				priced = "yes"
			}
			t.AddRow(r.Machine, r.Policy, priced,
				fmt.Sprintf("%.3f", r.MaxMemShare),
				fmt.Sprintf("%.1f", r.GroupsUsed),
				fmt.Sprintf("%+.2f", r.ThroughputPct))
		}
		fmt.Print(t.String())
	}

	if len(timings) < 2 {
		fmt.Println("\nfewer than two timing entries: nothing to compare")
		return nil
	}
	prev, last := timings[len(timings)-2], timings[len(timings)-1]
	prevNs := map[string]int64{}
	for _, b := range prev.Benchmarks {
		prevNs[b.Name] = b.NsPerOp
	}
	t := textplot.NewTable("benchmark", "prev ms", "last ms", "delta%")
	var regressed []string
	for _, b := range last.Benchmarks {
		p, ok := prevNs[b.Name]
		if !ok || p == 0 {
			continue
		}
		deltaPct := 100 * (float64(b.NsPerOp) - float64(p)) / float64(p)
		t.AddRow(b.Name,
			fmt.Sprintf("%.1f", float64(p)/1e6),
			fmt.Sprintf("%.1f", float64(b.NsPerOp)/1e6),
			fmt.Sprintf("%+.1f", deltaPct))
		if deltaPct > regressionPct {
			regressed = append(regressed, fmt.Sprintf("%s (%+.1f%%)", b.Name, deltaPct))
		}
	}
	fmt.Println()
	fmt.Print(t.String())

	// Derived metrics and allocation counts of the newest entry: speedups,
	// the segment-memo hit rate, and allocs/op per benchmark.
	if len(last.Derived) > 0 {
		keys := make([]string, 0, len(last.Derived))
		for k := range last.Derived {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Println("\nlatest derived metrics:")
		for _, k := range keys {
			fmt.Printf("  %s = %.3f\n", k, last.Derived[k])
		}
	}
	var seqNs, shdNs int64
	for _, b := range last.Benchmarks {
		switch b.Name {
		case "grid_sequential":
			seqNs = b.NsPerOp
		case "grid_sweep_sharded":
			shdNs = b.NsPerOp
		}
		if a, ok := b.Metrics["allocs_per_op"]; ok {
			fmt.Printf("  %s allocs/op = %.0f\n", b.Name, a)
		}
	}
	// Flag the sharded-vs-sequential inversion explicitly: at this grid
	// size the fabric's per-rep worker lifecycle, cold per-worker caches,
	// and JSON transport outweigh the parallelism, and that is a finding,
	// not a charting artifact (EXPERIMENTS.md, "Why the sharded grid is
	// slower than the sequential loop").
	if shdNs > 0 && seqNs > 0 && shdNs > seqNs {
		fmt.Printf("\nnote: grid_sweep_sharded (%.1f ms) is SLOWER than grid_sequential (%.1f ms): the distributed fabric's per-rep overhead dominates cells this small — see EXPERIMENTS.md\n",
			float64(shdNs)/1e6, float64(seqNs)/1e6)
	}

	if len(regressed) > 0 {
		return fmt.Errorf("regression over %.0f%% vs previous entry: %s",
			regressionPct, strings.Join(regressed, ", "))
	}
	fmt.Printf("\nno benchmark regressed more than %.0f%% vs the previous entry\n", regressionPct)
	return nil
}

// timeMin runs f reps times and returns the minimum wall-clock duration
// plus the heap allocation count of that fastest rep (the `-benchmem`
// analogue for this wall-clock harness).
func timeMin(reps int, f func() error) (time.Duration, uint64, error) {
	var best time.Duration
	var bestAllocs uint64
	for i := 0; i < reps; i++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := f(); err != nil {
			return 0, 0, err
		}
		d := time.Since(start)
		runtime.ReadMemStats(&after)
		if i == 0 || d < best {
			best = d
			bestAllocs = after.Mallocs - before.Mallocs
		}
	}
	return best, bestAllocs, nil
}

// gridSpecs mirrors the root sweep benchmark: 3 technique variants x 2
// seeds, 4-slot workloads, 10 simulated seconds. Workloads are described
// as Queues so the identical grid also runs through the fabric.
func gridSpecs() []phasetune.RunSpec {
	variants := []phasetune.TechniqueParams{
		phasetune.BestParams(),
		{Technique: phasetune.BasicBlock, MinSize: 15, PropagateThroughUntyped: true},
		{Technique: phasetune.Interval, MinSize: 45, PropagateThroughUntyped: true},
	}
	var specs []phasetune.RunSpec
	for _, seed := range []uint64{1, 2} {
		q := &phasetune.WorkloadSpec{Slots: 4, QueueLen: 8, Seed: seed}
		for _, params := range variants {
			specs = append(specs, phasetune.RunSpec{
				Queues: q, DurationSec: 10, Mode: phasetune.Tuned,
				Params: params, Seed: seed,
			})
		}
	}
	return specs
}

func run(out string, reps, shards int) error {
	suite, err := phasetune.Suite()
	if err != nil {
		return err
	}
	specs := gridSpecs()
	entry := benchhist.Entry{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		MaxProcs:  runtime.GOMAXPROCS(0),
		Shards:    shards,
		Derived:   map[string]float64{},
	}

	seq, seqAllocs, err := timeMin(reps, func() error {
		for _, spec := range specs {
			w := phasetune.NewWorkload(suite, spec.Queues.Slots, spec.Queues.QueueLen, spec.Queues.Seed)
			if _, err := phasetune.Run(phasetune.RunConfig{
				Workload: w, DurationSec: spec.DurationSec,
				Mode: spec.Mode, Params: spec.Params,
				Tuning:     phasetune.DefaultTuning(),
				TypingOpts: phasetune.DefaultTyping(), Seed: spec.Seed,
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	entry.Benchmarks = append(entry.Benchmarks, benchhist.Benchmark{
		Name: "grid_sequential", NsPerOp: seq.Nanoseconds(), Reps: reps,
		Metrics: map[string]float64{"allocs_per_op": float64(seqAllocs)},
	})

	sess := phasetune.NewSession()
	swp, swpAllocs, err := timeMin(reps, func() error {
		_, err := sess.Sweep(context.Background(), specs)
		return err
	})
	if err != nil {
		return err
	}
	stats := sess.CacheStats()
	memo := sess.MemoStats()
	entry.Benchmarks = append(entry.Benchmarks, benchhist.Benchmark{
		Name: "grid_sweep", NsPerOp: swp.Nanoseconds(), Reps: reps,
		Metrics: map[string]float64{
			"pipeline_runs": float64(stats.Misses),
			"cache_hits":    float64(stats.Hits),
			"allocs_per_op": float64(swpAllocs),
			"memo_hits":     float64(memo.Hits),
		},
	})
	if swp > 0 {
		entry.Derived["sweep_speedup"] = float64(seq) / float64(swp)
	}
	entry.Derived["memo_hit_rate"] = memo.HitRate()

	if shards > 1 {
		shardSess := phasetune.NewSession()
		shd, shdAllocs, err := timeMin(reps, func() error {
			_, err := shardSess.SweepSharded(context.Background(), specs, shards)
			return err
		})
		if err != nil {
			return err
		}
		entry.Benchmarks = append(entry.Benchmarks, benchhist.Benchmark{
			Name: "grid_sweep_sharded", NsPerOp: shd.Nanoseconds(), Reps: reps,
			Metrics: map[string]float64{
				"shards":        float64(shards),
				"allocs_per_op": float64(shdAllocs),
			},
		})
		if shd > 0 {
			entry.Derived["sharded_speedup"] = float64(seq) / float64(shd)
		}
	}

	w := phasetune.NewWorkload(suite, 8, 64, 1)
	for _, bench := range []struct {
		name   string
		policy phasetune.Policy
	}{
		{"workload_second_baseline", phasetune.PolicyNone},
		{"workload_second_dynamic", phasetune.PolicyDynamic},
	} {
		sess := phasetune.NewSession()
		d, dAllocs, err := timeMin(reps, func() error {
			_, err := sess.Run(phasetune.RunSpec{
				Workload: w, DurationSec: 1, Seed: 1, Policy: bench.policy,
			})
			return err
		})
		if err != nil {
			return err
		}
		entry.Benchmarks = append(entry.Benchmarks, benchhist.Benchmark{
			Name: bench.name, NsPerOp: d.Nanoseconds(), Reps: reps,
			Metrics: map[string]float64{"allocs_per_op": float64(dAllocs)},
		})
	}

	hist := benchhist.Load(out)
	hist.Entries = append(hist.Entries, entry)
	if err := benchhist.Save(out, hist); err != nil {
		return err
	}
	fmt.Printf("wrote %s (entry %d, %d benchmarks, sweep speedup %.2fx)\n",
		out, len(hist.Entries), len(entry.Benchmarks), entry.Derived["sweep_speedup"])
	return nil
}
