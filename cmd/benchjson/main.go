// Command benchjson runs the repository's headline performance benchmarks
// and writes them as machine-readable JSON (default BENCH_sweep.json), so
// the performance trajectory is tracked PR-over-PR instead of living only
// in transient `go test -bench` output.
//
// Usage:
//
//	benchjson [-out BENCH_sweep.json] [-reps 3]
//
// Three timings are recorded, mirroring the root bench harness:
//
//   - grid_sequential: the legacy one-shot Run loop over the technique
//     grid (no artifact sharing);
//   - grid_sweep: the identical grid through Session.Sweep (bounded worker
//     pool + shared image cache);
//   - workload_second_baseline / workload_second_dynamic: the cost of
//     simulating one loaded second under the stock scheduler and under the
//     online phase detector (the dynamic subsystem's overhead on the
//     simulator hot path).
//
// Each benchmark runs -reps times and reports the minimum (the standard
// noise-rejection choice for wall-clock microbenchmarks).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"phasetune"
)

// Benchmark is one recorded measurement.
type Benchmark struct {
	Name    string             `json:"name"`
	NsPerOp int64              `json:"ns_per_op"`
	Reps    int                `json:"reps"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file format (schema phasetune-bench/v1).
type Report struct {
	Schema     string             `json:"schema"`
	GoVersion  string             `json:"go_version"`
	MaxProcs   int                `json:"gomaxprocs"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_sweep.json", "output path")
	reps := flag.Int("reps", 3, "repetitions per benchmark (minimum is reported)")
	flag.Parse()
	if err := run(*out, *reps); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// timeMin runs f reps times and returns the minimum wall-clock duration.
func timeMin(reps int, f func() error) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(start); i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// gridSpecs mirrors the root sweep benchmark: 3 technique variants x 2
// seeds, 4-slot workloads, 10 simulated seconds.
func gridSpecs(suite []*phasetune.Benchmark) []phasetune.RunSpec {
	variants := []phasetune.TechniqueParams{
		phasetune.BestParams(),
		{Technique: phasetune.BasicBlock, MinSize: 15, PropagateThroughUntyped: true},
		{Technique: phasetune.Interval, MinSize: 45, PropagateThroughUntyped: true},
	}
	var specs []phasetune.RunSpec
	for _, seed := range []uint64{1, 2} {
		w := phasetune.NewWorkload(suite, 4, 8, seed)
		for _, params := range variants {
			specs = append(specs, phasetune.RunSpec{
				Workload: w, DurationSec: 10, Mode: phasetune.Tuned,
				Params: params, Seed: seed,
			})
		}
	}
	return specs
}

func run(out string, reps int) error {
	suite, err := phasetune.Suite()
	if err != nil {
		return err
	}
	specs := gridSpecs(suite)
	report := Report{
		Schema:    "phasetune-bench/v1",
		GoVersion: runtime.Version(),
		MaxProcs:  runtime.GOMAXPROCS(0),
		Derived:   map[string]float64{},
	}

	seq, err := timeMin(reps, func() error {
		for _, spec := range specs {
			if _, err := phasetune.Run(phasetune.RunConfig{
				Workload: spec.Workload, DurationSec: spec.DurationSec,
				Mode: spec.Mode, Params: spec.Params,
				Tuning:     phasetune.DefaultTuning(),
				TypingOpts: phasetune.DefaultTyping(), Seed: spec.Seed,
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	report.Benchmarks = append(report.Benchmarks, Benchmark{
		Name: "grid_sequential", NsPerOp: seq.Nanoseconds(), Reps: reps,
	})

	sess := phasetune.NewSession()
	swp, err := timeMin(reps, func() error {
		_, err := sess.Sweep(context.Background(), specs)
		return err
	})
	if err != nil {
		return err
	}
	stats := sess.CacheStats()
	report.Benchmarks = append(report.Benchmarks, Benchmark{
		Name: "grid_sweep", NsPerOp: swp.Nanoseconds(), Reps: reps,
		Metrics: map[string]float64{
			"pipeline_runs": float64(stats.Misses),
			"cache_hits":    float64(stats.Hits),
		},
	})
	if swp > 0 {
		report.Derived["sweep_speedup"] = float64(seq) / float64(swp)
	}

	w := phasetune.NewWorkload(suite, 8, 64, 1)
	for _, bench := range []struct {
		name   string
		policy phasetune.Policy
	}{
		{"workload_second_baseline", phasetune.PolicyNone},
		{"workload_second_dynamic", phasetune.PolicyDynamic},
	} {
		sess := phasetune.NewSession()
		d, err := timeMin(reps, func() error {
			_, err := sess.Run(phasetune.RunSpec{
				Workload: w, DurationSec: 1, Seed: 1, Policy: bench.policy,
			})
			return err
		})
		if err != nil {
			return err
		}
		report.Benchmarks = append(report.Benchmarks, Benchmark{
			Name: bench.name, NsPerOp: d.Nanoseconds(), Reps: reps,
		})
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks, sweep speedup %.2fx)\n",
		out, len(report.Benchmarks), report.Derived["sweep_speedup"])
	return nil
}
