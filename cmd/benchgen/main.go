// Command benchgen generates the synthetic SPEC-like benchmark suite and
// prints each member's personality, static shape, and designed runtime.
//
// Usage:
//
//	benchgen [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"phasetune"
	"phasetune/internal/cfg"
	"phasetune/internal/prog"
	"phasetune/internal/textplot"
)

func main() {
	verbose := flag.Bool("v", false, "also print per-procedure shapes")
	dump := flag.String("dump", "", "write each benchmark image to DIR/<name>.ptprog")
	flag.Parse()
	if err := run(*verbose, *dump); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run(verbose bool, dump string) error {
	suite, err := phasetune.Suite()
	if err != nil {
		return err
	}
	if dump != "" {
		if err := os.MkdirAll(dump, 0o755); err != nil {
			return err
		}
		for _, b := range suite {
			path := filepath.Join(dump, b.Name()+".ptprog")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := prog.Encode(f, b.Prog); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
		}
	}

	// The rate column derives alternations per billion estimated dynamic
	// instructions — the same unit as the breakdown experiment's rate axis
	// (workload.BenchSpec.AltRate), so this table places each suite member
	// against the misprediction-cost frontier directly.
	cost := phasetune.DefaultCost()
	machine := phasetune.QuadAMP()
	t := textplot.NewTable("benchmark", "phases", "alternations", "rate/Binstr", "target(s)", "paper(s)", "instrs", "bytes")
	for _, b := range suite {
		phases := ""
		for i, ph := range b.Spec.Phases() {
			if i > 0 {
				phases += "+"
			}
			phases += ph.Kind.String()
		}
		rate := "-"
		if r := b.Spec.AltRate(cost, machine); r > 0 {
			rate = fmt.Sprintf("%.0f", r)
		}
		t.AddRow(b.Name(),
			phases,
			fmt.Sprintf("%d", b.Spec.Alternations),
			rate,
			fmt.Sprintf("%.1f", b.Spec.TargetSec),
			fmt.Sprintf("%.0f", b.Spec.PaperRuntimeSec),
			fmt.Sprintf("%d", b.Prog.NumInstrs()),
			fmt.Sprintf("%d", b.Prog.SizeBytes()))
	}
	fmt.Print(t.String())

	if verbose {
		for _, b := range suite {
			fmt.Printf("\n%s:\n", b.Name())
			graphs, err := cfg.BuildAll(b.Prog)
			if err != nil {
				return err
			}
			pt := textplot.NewTable("procedure", "instrs", "blocks", "loops")
			for pi, g := range graphs {
				pt.AddRow(b.Prog.Procs[pi].Name,
					fmt.Sprintf("%d", len(b.Prog.Procs[pi].Instrs)),
					fmt.Sprintf("%d", len(g.Blocks)),
					fmt.Sprintf("%d", len(g.NaturalLoops())))
			}
			fmt.Print(pt.String())
		}
	}
	return nil
}
