// Command runcmp diffs two runs' cycle ledgers category by category — the
// where-did-the-cycles-go answer to "why is policy A faster than policy B
// here". Each side is either a showdown policy name (the run is executed
// on the selected machine with accounting on) or a path to a result JSON
// file (as committed by the dist fabric or written by `ampsim -ledger`),
// so the same tool compares policy-vs-policy and file-vs-file — two
// commits' saved results, two machines, two seeds.
//
// Usage:
//
//	runcmp [-a static] [-b hybrid] [-machine quad|tri|hex]
//	       [-slots N] [-duration SEC] [-seed N] [-quick] [-width N]
//	runcmp -a old-result.json -b new-result.json
//
// Output: both sides' conservation check (every ledger must verify before
// it is compared), a per-category table in milliseconds of machine time,
// and a waterfall of the deltas (B − A) around a zero axis. Positive bars
// are cycles B spends that A does not.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"phasetune/internal/amp"
	"phasetune/internal/experiments"
	"phasetune/internal/ledger"
	"phasetune/internal/osched"
	"phasetune/internal/sim"
	"phasetune/internal/textplot"
)

func main() {
	aFlag := flag.String("a", "static", "side A: showdown policy name or result-JSON path")
	bFlag := flag.String("b", "hybrid", "side B: showdown policy name or result-JSON path")
	machineFlag := flag.String("machine", "hex", "machine for policy sides: quad|tri|hex (or a full machine name)")
	slots := flag.Int("slots", 0, "workload slots for policy sides (0 = default 18)")
	duration := flag.Float64("duration", 0, "duration in simulated seconds for policy sides (0 = default 800)")
	seed := flag.Uint64("seed", 5, "workload seed for policy sides")
	quick := flag.Bool("quick", false, "shrink policy-side workloads for a fast pass")
	width := flag.Int("width", 60, "waterfall width in characters")
	flag.Parse()

	la, descA, err := resolveSide(*aFlag, *machineFlag, *slots, *duration, *seed, *quick)
	if err != nil {
		fatal(fmt.Errorf("-a %s: %w", *aFlag, err))
	}
	lb, descB, err := resolveSide(*bFlag, *machineFlag, *slots, *duration, *seed, *quick)
	if err != nil {
		fatal(fmt.Errorf("-b %s: %w", *bFlag, err))
	}

	for _, side := range []struct {
		name string
		l    *ledger.Ledger
	}{{"A", la}, {"B", lb}} {
		if err := side.l.Verify(); err != nil {
			fatal(fmt.Errorf("side %s failed conservation: %w", side.name, err))
		}
	}

	fmt.Printf("A: %s  (%d cores, horizon %.2fs, machine time %.1f ms)\n",
		descA, la.Cores, osched.PsToSec(la.HorizonPs), ms(int64(la.Cores)*la.HorizonPs))
	fmt.Printf("B: %s  (%d cores, horizon %.2fs, machine time %.1f ms)\n",
		descB, lb.Cores, osched.PsToSec(lb.HorizonPs), ms(int64(lb.Cores)*lb.HorizonPs))
	fmt.Println("both ledgers verified: categories sum exactly to cores x horizon")
	fmt.Println()

	cats := ledger.Categories()
	va, vb := la.Total.Values(), lb.Total.Values()
	totalA := float64(int64(la.Cores) * la.HorizonPs)

	t := textplot.NewTable("category", "A (ms)", "B (ms)", "delta (ms)", "delta (% of A time)")
	deltas := make([]float64, len(cats))
	for i, c := range cats {
		d := vb[i] - va[i]
		deltas[i] = ms(d)
		t.AddRow(c,
			fmt.Sprintf("%.1f", ms(va[i])),
			fmt.Sprintf("%.1f", ms(vb[i])),
			fmt.Sprintf("%+.1f", ms(d)),
			fmt.Sprintf("%+.2f", 100*float64(d)/totalA))
	}
	fmt.Print(t.String())

	fmt.Println("\nwaterfall — B − A per category (cycles B spends that A does not)")
	fmt.Print(textplot.Waterfall(cats, deltas, "ms", *width))
}

// ms converts simulated picoseconds to milliseconds.
func ms(ps int64) float64 { return float64(ps) / 1e9 }

// resolveSide materializes one side of the diff: an existing file loads as
// a committed result (its run must have carried a ledger); anything else
// parses as a showdown policy and runs on the selected machine with
// accounting forced on.
func resolveSide(arg, machineName string, slots int, duration float64, seed uint64, quick bool) (*ledger.Ledger, string, error) {
	if _, err := os.Stat(arg); err == nil {
		data, err := os.ReadFile(arg)
		if err != nil {
			return nil, "", err
		}
		var res sim.Result
		if err := json.Unmarshal(data, &res); err != nil {
			// Not a bare Result? Accept a bare Ledger document too (the
			// form `ampsim -ledger` writes).
			var l ledger.Ledger
			if err2 := json.Unmarshal(data, &l); err2 == nil && l.Cores > 0 {
				return &l, arg, nil
			}
			return nil, "", fmt.Errorf("not a result or ledger JSON: %w", err)
		}
		if res.Ledger == nil {
			// A bare Ledger also decodes into sim.Result with a nil Ledger
			// field; retry before giving up.
			var l ledger.Ledger
			if json.Unmarshal(data, &l) == nil && l.Cores > 0 {
				return &l, arg, nil
			}
			return nil, "", fmt.Errorf("result carries no ledger (rerun with accounting enabled)")
		}
		return res.Ledger, arg, nil
	}

	p, err := experiments.ParseShowdownPolicy(arg)
	if err != nil {
		return nil, "", err
	}
	machine, err := pickMachine(machineName)
	if err != nil {
		return nil, "", err
	}
	cfg, err := experiments.Default()
	if err != nil {
		return nil, "", err
	}
	if quick {
		cfg = cfg.Scale(8, 200, cfg.Seeds)
	}
	if slots > 0 {
		cfg.Slots = slots
	}
	if duration > 0 {
		cfg.DurationSec = duration
	}
	cfg.Machine = machine
	res, err := experiments.LedgerCell(cfg, p, seed)
	if err != nil {
		return nil, "", err
	}
	desc := fmt.Sprintf("%s on %s (seed %d, %d slots, %.0fs)",
		p, machine.Name, seed, cfg.Slots, cfg.DurationSec)
	return res.Ledger, desc, nil
}

// pickMachine resolves a machine by short or full name.
func pickMachine(name string) (*amp.Machine, error) {
	for _, m := range []*amp.Machine{
		amp.Quad2Fast2Slow(), amp.ThreeCore2Fast1Slow(), amp.Hex2Big2Medium2Little(),
	} {
		if m.Name == name {
			return m, nil
		}
	}
	switch name {
	case "quad":
		return amp.Quad2Fast2Slow(), nil
	case "tri":
		return amp.ThreeCore2Fast1Slow(), nil
	case "hex":
		return amp.Hex2Big2Medium2Little(), nil
	}
	return nil, fmt.Errorf("unknown machine %q (want quad|tri|hex)", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "runcmp:", err)
	os.Exit(1)
}
