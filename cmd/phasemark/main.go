// Command phasemark runs the static side of phase-based tuning on one suite
// benchmark: CFG construction, block typing, transition analysis, and
// instrumentation, reporting the plan and the space overhead.
//
// Usage:
//
//	phasemark [-bench 401.bzip2] [-technique loop|interval|bb]
//	          [-min 45] [-lookahead 0] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"phasetune"
	"phasetune/internal/phase"
	"phasetune/internal/prog"
	"phasetune/internal/textplot"
	"phasetune/internal/transition"
)

func main() {
	bench := flag.String("bench", "401.bzip2", "suite benchmark name")
	load := flag.String("load", "", "analyze a saved .ptprog image instead of a suite benchmark")
	technique := flag.String("technique", "loop", "bb, interval, or loop")
	minSize := flag.Int("min", 45, "minimum section size in instructions")
	lookahead := flag.Int("lookahead", 0, "BB lookahead depth")
	verbose := flag.Bool("v", false, "list every mark site")
	flag.Parse()

	if err := run(*bench, *load, *technique, *minSize, *lookahead, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "phasemark:", err)
		os.Exit(1)
	}
}

func run(bench, load, technique string, minSize, lookahead int, verbose bool) error {
	var image *prog.Program
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return err
		}
		defer f.Close()
		image, err = prog.Decode(f)
		if err != nil {
			return err
		}
	} else {
		suite, err := phasetune.Suite()
		if err != nil {
			return err
		}
		for _, b := range suite {
			if b.Name() == bench {
				image = b.Prog
			}
		}
		if image == nil {
			return fmt.Errorf("unknown benchmark %q (try cmd/benchgen for the list)", bench)
		}
	}

	var tech transition.Technique
	switch technique {
	case "bb":
		tech = transition.BasicBlock
	case "interval":
		tech = transition.Interval
	case "loop":
		tech = transition.Loop
	default:
		return fmt.Errorf("unknown technique %q", technique)
	}
	params := transition.Params{
		Technique: tech, MinSize: minSize, Lookahead: lookahead,
		PropagateThroughUntyped: true,
	}

	// The staged public API: the analysis (CFGs, call graph, typing) is
	// computed once and could be instrumented under any number of variants.
	p := image
	analysis, err := phasetune.Analyze(p, phasetune.DefaultTyping())
	if err != nil {
		return err
	}
	art, err := analysis.Instrument(params, phasetune.DefaultCost())
	if err != nil {
		return err
	}

	blocks, loops := 0, 0
	for _, g := range analysis.Graphs {
		blocks += len(g.Blocks)
		loops += len(g.NaturalLoops())
	}
	stats := phase.ComputeStats(analysis.Typing)

	t := textplot.NewTable("property", "value")
	t.AddRow("benchmark", p.Name)
	t.AddRow("variant", params.Name())
	t.AddRow("procedures", fmt.Sprintf("%d", len(p.Procs)))
	t.AddRow("static instructions", fmt.Sprintf("%d", p.NumInstrs()))
	t.AddRow("basic blocks", fmt.Sprintf("%d", blocks))
	t.AddRow("natural loops", fmt.Sprintf("%d", loops))
	t.AddRow("typed blocks", fmt.Sprintf("%d", stats.TypedBlocks))
	t.AddRow("phase types", fmt.Sprintf("%d", analysis.Typing.K))
	t.AddRow("marks", fmt.Sprintf("%d", art.Stats.Marks))
	t.AddRow("binary bytes", fmt.Sprintf("%d -> %d", art.Stats.OrigBytes, art.Stats.NewBytes))
	t.AddRow("space overhead", fmt.Sprintf("%.3f%%", 100*art.Stats.SpaceOverhead))
	fmt.Print(t.String())

	if verbose {
		fmt.Println()
		mt := textplot.NewTable("mark", "proc", "edge", "kind", "type")
		for _, m := range art.Image.Marks {
			kind := "inline"
			if m.Stub {
				kind = "stub"
			}
			mt.AddRow(fmt.Sprintf("%d", m.ID),
				p.Procs[m.Site.Proc].Name,
				fmt.Sprintf("%d->%d", m.Site.From, m.Site.To),
				kind,
				fmt.Sprintf("%d", m.Type))
		}
		fmt.Print(mt.String())
	}
	return nil
}
