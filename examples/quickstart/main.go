// Quickstart: build a small two-phase program with the public API,
// instrument it with phase marks, and watch phase-based tuning place its
// compute phase on a fast core and its memory phase on a slow core.
package main

import (
	"fmt"
	"log"

	"phasetune"
)

func main() {
	// A program that alternates a compute-bound loop and a DRAM-bound loop,
	// 40 times — the phase behavior the paper's technique exploits.
	b := phasetune.NewProgram("demo")
	main := b.Proc("main")
	main.Loop(40, func(pb *phasetune.ProcBuilder) {
		pb.Straight(phasetune.BlockMix{IntALU: 2}) // distinct outer-loop header
		pb.Loop(400, func(pb *phasetune.ProcBuilder) {
			pb.Straight(phasetune.BlockMix{IntALU: 40, IntMul: 8})
			pb.Straight(phasetune.BlockMix{IntALU: 12, IntMul: 4})
		})
		pb.Loop(120, func(pb *phasetune.ProcBuilder) {
			pb.Straight(phasetune.BlockMix{
				Load: 20, Store: 8, IntALU: 6,
				WorkingSetKB: 3072, Locality: 0.94,
			})
			pb.Straight(phasetune.BlockMix{
				Load: 12, Store: 6, IntALU: 4,
				WorkingSetKB: 2048, Locality: 0.95,
			})
		})
	})
	main.Ret()
	p, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Staged static pipeline: the analysis (CFGs, call graph, k-means
	// typing) runs once; instrumenting it under another technique later
	// reuses every stage up to transition planning.
	cost := phasetune.DefaultCost()
	analysis, err := phasetune.Analyze(p, phasetune.DefaultTyping())
	if err != nil {
		log.Fatal(err)
	}
	art, err := analysis.Instrument(phasetune.BestParams(), cost)
	if err != nil {
		log.Fatal(err)
	}
	img, stats := art.Image, art.Stats
	fmt.Printf("instrumented %q: %d phase marks, %.2f%% space overhead, %d phase types\n",
		p.Name, stats.Marks, 100*stats.SpaceOverhead, stats.EffectiveK)
	fmt.Printf("static size: %d -> %d bytes\n", stats.OrigBytes, stats.NewBytes)

	fmt.Println("\nmark sites (edge -> phase type):")
	for _, m := range img.Marks {
		kind := "inline"
		if m.Stub {
			kind = "stub"
		}
		fmt.Printf("  mark %d: proc %d edge %d->%d (%s) type %d\n",
			m.ID, m.Site.Proc, m.Site.From, m.Site.To, kind, m.Type)
	}
}
