// Customamp reproduces the paper's future-work configuration (§VII): the
// same tuned binaries, unchanged, on a 3-core machine with 2 fast and 1
// slow core — "tune once, run anywhere". The paper reports ~32% speedup
// there.
package main

import (
	"context"
	"fmt"
	"log"

	"phasetune"
)

func main() {
	machine := phasetune.ThreeCoreAMP()
	cost := phasetune.DefaultCost()
	suite, err := phasetune.SuiteFor(cost, machine)
	if err != nil {
		log.Fatal(err)
	}
	// A single slow core serves the DRAM-bound phases on this machine, so
	// keep the workload lighter than the quad experiments.
	w := phasetune.NewWorkload(suite, 8, 256, 11)
	const duration = 400

	// A session pinned to the 3-core machine; the binaries themselves are
	// machine-independent, so a cache shared with a quad session would
	// serve the same artifacts there.
	sess := phasetune.NewSession(
		phasetune.WithMachine(machine),
		phasetune.WithCost(cost),
	)
	run := func(mode phasetune.RunMode) *phasetune.RunResult {
		res, err := sess.RunContext(context.Background(), phasetune.RunSpec{
			Workload: w, DurationSec: duration, Mode: mode,
			Params: phasetune.BestParams(), Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run(phasetune.Baseline)
	tuned := run(phasetune.Tuned)

	bAvg := phasetune.AvgProcessTime(base.Tasks)
	tAvg := phasetune.AvgProcessTime(tuned.Tasks)
	fmt.Printf("machine: %s (2 fast + 1 slow, no second slow core)\n", machine.Name)
	fmt.Printf("baseline avg process time: %.2fs\n", bAvg)
	fmt.Printf("tuned    avg process time: %.2fs\n", tAvg)
	fmt.Printf("speedup: %.1f%% (paper reports ~32%% for this setup)\n", 100*(bAvg-tAvg)/bAvg)
	fmt.Printf("throughput: %.3g -> %.3g instructions\n",
		float64(base.TotalInstructions), float64(tuned.TotalInstructions))
	fmt.Println("\nThe binaries are identical to the quad-machine ones: the dynamic")
	fmt.Println("analysis discovered the new asymmetry at run time (tune once, run anywhere).")
}
