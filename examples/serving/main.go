// Serving runs the open-system form of the paper's comparison through the
// public API: jobs arrive by a seeded Poisson process instead of refilling
// a fixed slot count, the overcommit dispatcher time-multiplexes whatever
// is runnable onto the machine, and the metric is the per-job sojourn-time
// tail. One offered load below saturation and one above, under the stock
// scheduler and each phase-aware policy, with p50/p95/p99/p999 columns.
package main

import (
	"context"
	"fmt"
	"log"

	"phasetune"
)

func main() {
	machine := phasetune.QuadAMP()
	sess := phasetune.NewSession(
		phasetune.WithMachine(machine),
		phasetune.WithOvercommit(phasetune.OvercommitConfig{Enabled: true}),
	)

	const (
		horizon  = 45.0 // admissions stop here...
		duration = 60.0 // ...so the backlog has time to drain
		seed     = 7
	)
	loads := []float64{0.75, 1.25}
	policies := []phasetune.Policy{
		phasetune.PolicyNone, phasetune.PolicyStatic,
		phasetune.PolicyDynamic, phasetune.PolicyHybrid,
	}
	labels := []string{"none", "static", "dynamic/probe", "hybrid"}

	var specs []phasetune.RunSpec
	for _, load := range loads {
		for _, policy := range policies {
			arr := phasetune.ServingArrivals(machine, phasetune.ArrivalPoisson, load, horizon)
			specs = append(specs, phasetune.RunSpec{
				Arrivals: &arr, DurationSec: duration, Policy: policy, Seed: seed,
			})
		}
	}

	results, err := sess.Sweep(context.Background(), specs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("quad AMP, capacity %.2f fast-core equivalents, Poisson arrivals, seed %d\n\n",
		phasetune.MachineCapacity(machine), seed)
	fmt.Printf("%5s  %-14s %8s %6s %7s %7s %7s %7s %9s\n",
		"load", "policy", "admitted", "done", "p50", "p95", "p99", "p999", "peak-run")
	for i, res := range results {
		st := phasetune.SummarizeServing(res)
		fmt.Printf("%4.2fx  %-14s %8d %6d %7.2f %7.2f %7.2f %7.2f %9d\n",
			loads[i/len(policies)], labels[i%len(policies)],
			st.Admitted, st.Completed, st.P50, st.P95, st.P99, st.P999, st.PeakRunnable)
	}
	fmt.Println("\nBelow saturation the policies bunch; past it they separate — and the")
	fmt.Println("peak-run column shows the overcommit dispatcher multiplexing far more")
	fmt.Println("runnable jobs than the machine has cores.")
}
