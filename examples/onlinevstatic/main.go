// Onlinevstatic runs the paper's central comparison end to end through the
// public API: the same workload under no tuning, the static phase-mark
// runtime, the online dynamic detector (both reassignment policies), the
// marks+windows hybrid, and the perfect-knowledge oracle — all swept
// concurrently through one session — and prints throughput, switch counts,
// and the runtime detectors' monitoring bills.
package main

import (
	"context"
	"fmt"
	"log"

	"phasetune"
)

func main() {
	sess := phasetune.NewSession()
	suite, err := phasetune.Suite()
	if err != nil {
		log.Fatal(err)
	}
	const (
		slots    = 18
		duration = 100.0
		seed     = 5
	)
	w := phasetune.NewWorkload(suite, slots, 256, seed)

	greedy := phasetune.DefaultOnline()
	greedy.Policy = phasetune.OnlineGreedy

	specs := []phasetune.RunSpec{
		{Workload: w, DurationSec: duration, Seed: seed, Policy: phasetune.PolicyNone},
		{Workload: w, DurationSec: duration, Seed: seed, Policy: phasetune.PolicyStatic},
		{Workload: w, DurationSec: duration, Seed: seed, Policy: phasetune.PolicyDynamic, Online: &greedy},
		{Workload: w, DurationSec: duration, Seed: seed, Policy: phasetune.PolicyDynamic},
		{Workload: w, DurationSec: duration, Seed: seed, Policy: phasetune.PolicyHybrid},
		{Workload: w, DurationSec: duration, Seed: seed, Policy: phasetune.PolicyOracle},
	}
	labels := []string{"none", "static", "dynamic/greedy", "dynamic/probe", "hybrid", "oracle"}

	results, err := sess.Sweep(context.Background(), specs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d slots, %.0f simulated seconds, quad AMP\n\n", slots, duration)
	fmt.Printf("%-15s %14s %8s %10s %10s %12s\n",
		"policy", "instr/s", "tput%", "switches", "windows", "monitor cyc")
	base := throughput(results[0], duration)
	for i, res := range results {
		tput := throughput(res, duration)
		switches := 0
		for _, t := range res.Tasks {
			switches += t.Migrations
		}
		windows, cycles := uint64(0), uint64(0)
		if res.Online != nil {
			windows, cycles = res.Online.Windows, res.Online.ChargedCycles
		}
		fmt.Printf("%-15s %14.4g %+7.2f%% %10d %10d %12d\n",
			labels[i], tput, 100*(tput-base)/base, switches, windows, cycles)
	}
	fmt.Println("\nThe paper's claim is the ranking: static beats dynamic (no monitoring,")
	fmt.Println("no misprediction), dynamic still beats the asymmetry-unaware baseline.")
}

func throughput(res *phasetune.RunResult, duration float64) float64 {
	if len(res.Samples) < 2 {
		return 0
	}
	// Committed instructions per second over the run window.
	first, last := res.Samples[0], res.Samples[len(res.Samples)-1]
	if last.AtSec <= first.AtSec {
		return 0
	}
	return float64(last.Instructions-first.Instructions) / (last.AtSec - first.AtSec)
}
