// Counters demonstrates the measurement substrate directly: it executes one
// memory-bound and one compute-bound phase on each core type of the paper's
// machine and shows the IPC signal that drives Algorithm 2 — memory-bound
// code has visibly higher IPC on the slow cores, compute-bound code does
// not, and the Select threshold turns that into a core assignment.
//
// Measurement goes through the staged Session API: images are prepared once
// through the session cache and Session.MeasureIPC runs them isolated on
// each core type, so the example exercises the same pipeline every run and
// sweep uses.
package main

import (
	"fmt"
	"log"

	"phasetune"
)

func main() {
	machine := phasetune.QuadAMP()
	sess := phasetune.NewSession(phasetune.WithMachine(machine))

	build := func(name string, mix phasetune.BlockMix) *phasetune.Program {
		b := phasetune.NewProgram(name)
		b.Proc("main").Loop(3000, func(pb *phasetune.ProcBuilder) {
			pb.Straight(mix)
		}).Ret()
		return mustBuild(b)
	}
	compute := build("compute", phasetune.BlockMix{IntALU: 30, IntMul: 6})
	memory := build("memory", phasetune.BlockMix{
		Load: 16, Store: 8, IntALU: 8, WorkingSetKB: 3072, Locality: 0.94,
	})

	fmt.Printf("%-10s %12s %12s %10s\n", "phase", "IPC fast", "IPC slow", "gap")
	results := map[string][]float64{}
	for _, prog := range []*phasetune.Program{compute, memory} {
		ipcs, err := sess.MeasureIPC(prog, 42)
		if err != nil {
			log.Fatal(err)
		}
		results[prog.Name] = ipcs
		fmt.Printf("%-10s %12.3f %12.3f %10.3f\n", prog.Name, ipcs[0], ipcs[1], ipcs[1]-ipcs[0])
	}

	delta := phasetune.DefaultTuning().Delta
	fmt.Printf("\nAlgorithm 2 with delta = %.2f:\n", delta)
	for name, ipcs := range results {
		target := phasetune.Select(machine, ipcs, delta)
		fmt.Printf("  %-10s -> %s cores\n", name, machine.Types[target].Name)
	}
}

func mustBuild(b *phasetune.ProgramBuilder) *phasetune.Program {
	p, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return p
}
