// Specmix runs the paper's headline comparison on a mixed workload: the
// SPEC-like suite in an 18-slot constant-size workload, stock scheduler
// versus phase-based tuning (Loop[45]), reporting the Table 2 metrics.
//
// The two runs go through one Session.Sweep: they execute concurrently,
// share the session's artifact cache, and come back in input order.
package main

import (
	"context"
	"fmt"
	"log"

	"phasetune"
)

func main() {
	suite, err := phasetune.Suite()
	if err != nil {
		log.Fatal(err)
	}
	w := phasetune.NewWorkload(suite, 18, 256, 5)
	const duration = 400

	sess := phasetune.NewSession()
	results, err := sess.Sweep(context.Background(), []phasetune.RunSpec{
		{Workload: w, DurationSec: duration, Mode: phasetune.Baseline, Seed: 7},
		{Workload: w, DurationSec: duration, Mode: phasetune.Tuned,
			Params: phasetune.BestParams(), Seed: 7},
	})
	if err != nil {
		log.Fatal(err)
	}
	base, tuned := results[0], results[1]

	bAvg := phasetune.AvgProcessTime(base.Tasks)
	tAvg := phasetune.AvgProcessTime(tuned.Tasks)
	fmt.Printf("workload: 18 slots, %ds window, shared queues\n\n", duration)
	fmt.Printf("%-22s %12s %12s\n", "metric", "baseline", "tuned")
	fmt.Printf("%-22s %12.2f %12.2f\n", "avg process time (s)", bAvg, tAvg)
	fmt.Printf("%-22s %12.2f %12.2f\n", "max flow (s)",
		phasetune.MaxFlow(base.Tasks), phasetune.MaxFlow(tuned.Tasks))
	fmt.Printf("%-22s %12d %12d\n", "jobs completed",
		completed(base.Tasks), completed(tuned.Tasks))
	fmt.Printf("%-22s %12d %12d\n", "instructions (M)",
		base.TotalInstructions/1e6, tuned.TotalInstructions/1e6)

	switches := 0
	for _, t := range tuned.Tasks {
		switches += t.Migrations
	}
	fmt.Printf("\ntuned run made %d core switches; avg process time improved %.1f%%\n",
		switches, 100*(bAvg-tAvg)/bAvg)
}

func completed(tasks []phasetune.TaskStat) int {
	n := 0
	for _, t := range tasks {
		if t.Completed() {
			n++
		}
	}
	return n
}
