// Package phasetune is a library reproduction of "Phase-based tuning for
// better utilization of performance-asymmetric multicore processors"
// (Sondag & Rajan, CGO 2011).
//
// It provides the complete stack the paper builds and evaluates on:
//
//   - a synthetic program representation with a structured builder
//     (NewProgram), standing in for the x86 binaries the paper instruments;
//   - the static phase-transition analysis: basic-block typing by k-means
//     over instruction-mix and reuse-distance features, Allen-interval and
//     inter-procedural loop summarization (the paper's Algorithm 1), and
//     transition marking with minimum-size and lookahead filters;
//   - a binary instrumenter that places phase marks (≤78 bytes each) inline
//     on fallthrough edges and in jump stubs on taken edges;
//   - a performance-asymmetric multicore simulator: frequency-asymmetric
//     cores sharing L2 caches, an O(1)-style scheduler with affinity, and
//     virtualized performance counters;
//   - the dynamic tuning runtime: representative-section IPC monitoring and
//     the paper's Algorithm 2 section-to-core assignment (Select);
//   - the paper's benchmark-suite personalities, workload construction,
//     metrics (throughput, max-flow, max-stretch, average process time),
//     and one experiment driver per table and figure in the evaluation.
//
// The public API is organized around three layers:
//
//   - the staged static pipeline (Analyze -> Analysis.Instrument) producing
//     cacheable Artifact values, with a content-keyed ImageCache so repeated
//     preparations of the same (program, technique, typing) are free;
//   - Session, a configured environment built with functional options
//     (NewSession(WithMachine(...), WithCost(...), ...)) whose RunContext
//     executes one cancellable run through the session cache, under a
//     selectable placement Policy — none, the paper's static marks, the
//     online dynamic detector, or the perfect-knowledge oracle;
//   - Session.Sweep, which fans a grid of RunSpecs across a bounded worker
//     pool with deterministic, input-ordered results;
//   - the distributed sweep fabric (Serve, Work, Session.SweepSharded, and
//     the cmd/sweepd binary), which shards a campaign of serializable
//     specs (RunSpec.Queues) across worker processes — leases, heartbeats,
//     crash re-dispatch — and merges results byte-identically to a
//     single-process Sweep.
//
// The quickest way in:
//
//	suite, _ := phasetune.Suite()
//	w := phasetune.NewWorkload(suite, 18, 256, 1)
//	sess := phasetune.NewSession()
//	results, _ := sess.Sweep(ctx, []phasetune.RunSpec{
//	    {Workload: w, DurationSec: 400, Seed: 7},
//	    {Workload: w, DurationSec: 400, Seed: 7, Mode: phasetune.Tuned,
//	     Params: phasetune.BestParams()},
//	})
//
// The one-shot Run and Instrument helpers remain as thin wrappers over the
// same machinery.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package phasetune

import (
	"phasetune/internal/amp"
	"phasetune/internal/exec"
	"phasetune/internal/experiments"
	"phasetune/internal/instrument"
	"phasetune/internal/ledger"
	"phasetune/internal/metrics"
	"phasetune/internal/online"
	"phasetune/internal/osched"
	"phasetune/internal/phase"
	"phasetune/internal/place"
	"phasetune/internal/prog"
	"phasetune/internal/serve"
	"phasetune/internal/sim"
	"phasetune/internal/trace"
	"phasetune/internal/transition"
	"phasetune/internal/tuning"
	"phasetune/internal/workload"
)

// Program construction.
type (
	// Program is a synthetic program image (the analog of a binary).
	Program = prog.Program
	// ProgramBuilder builds programs from structured control flow.
	ProgramBuilder = prog.Builder
	// ProcBuilder builds one procedure.
	ProcBuilder = prog.ProcBuilder
	// BlockMix specifies a straight-line instruction mix.
	BlockMix = prog.BlockMix
)

// NewProgram starts building a program.
func NewProgram(name string) *ProgramBuilder { return prog.NewBuilder(name) }

// Machines and cost model.
type (
	// Machine describes an asymmetric multicore.
	Machine = amp.Machine
	// CostModel fixes shared microarchitectural constants.
	CostModel = exec.CostModel
	// SchedulerConfig holds OS scheduler constants.
	SchedulerConfig = osched.Config
)

// QuadAMP returns the paper's evaluation machine: 2x2.4 GHz + 2x1.6 GHz,
// same-frequency pairs sharing an L2.
func QuadAMP() *Machine { return amp.Quad2Fast2Slow() }

// ThreeCoreAMP returns the paper's future-work machine: 2 fast + 1 slow.
func ThreeCoreAMP() *Machine { return amp.ThreeCore2Fast1Slow() }

// TriTypeAMP returns the three-type big/medium/little machine (2+2+2
// cores) — the §VI-C generalization beyond two core types.
func TriTypeAMP() *Machine { return amp.Hex2Big2Medium2Little() }

// SymmetricMachine returns an n-core symmetric control machine.
func SymmetricMachine(n int, ghz float64) *Machine { return amp.Symmetric(n, ghz) }

// DefaultCost returns the calibrated cost model.
func DefaultCost() CostModel { return exec.DefaultCostModel() }

// DefaultScheduler returns the scheduler configuration used by the
// experiments.
func DefaultScheduler() SchedulerConfig { return osched.DefaultConfig() }

// Static analysis and instrumentation.
type (
	// TechniqueParams selects a marking technique and its parameters.
	TechniqueParams = transition.Params
	// TypingOptions configures static block typing.
	TypingOptions = phase.Options
	// Binary is an instrumented program image.
	Binary = instrument.Binary
	// Image is an executable (optionally instrumented) program.
	Image = exec.Image
	// ImageStats summarizes instrumentation of one program.
	ImageStats = sim.ImageStats
)

// Technique constants (the paper's three granularities).
const (
	// BasicBlock is the BB[minSize, lookahead] family.
	BasicBlock = transition.BasicBlock
	// Interval is the Int[minSize] family.
	Interval = transition.Interval
	// Loop is the Loop[minSize] family.
	Loop = transition.Loop
)

// BestParams returns the paper's best variant, Loop[45].
func BestParams() TechniqueParams { return experiments.BestParams() }

// DefaultTyping returns the standard typing options (k = 2 phase types).
func DefaultTyping() TypingOptions { return phase.Options{K: 2, MinBlockInstrs: 5} }

// Instrument runs the full static pipeline — CFG construction, phase typing,
// summarization, transition marking, binary rewriting — and returns an
// executable image plus instrumentation statistics.
//
// It is a one-shot compatibility wrapper over the staged API: Analyze
// followed by Analysis.Instrument, with no caching. Repeated preparations
// should go through a Session (or an ImageCache) instead.
func Instrument(p *Program, params TechniqueParams, topts TypingOptions, cost CostModel) (*Image, ImageStats, error) {
	return sim.PrepareImage(p, params, topts, 0, 1, cost)
}

// Dynamic tuning.
type (
	// TuningConfig parameterizes the static-mark runtime (δ threshold,
	// sampling).
	TuningConfig = tuning.Config
	// OnlineConfig parameterizes the online phase detector (window size,
	// tick period, classification threshold, reassignment policy) used by
	// PolicyDynamic runs.
	OnlineConfig = online.Config
	// OnlineStats reports what the online detector did during a run
	// (windows sampled, monitoring cycles charged, switches); see
	// RunResult.Online.
	OnlineStats = online.Stats
	// OnlinePolicyKind selects the dynamic reassignment policy.
	OnlinePolicyKind = online.PolicyKind
	// PlacementConfig parameterizes the shared placement engine's capacity
	// arbitration (spill band, hysteresis) — the unified Algorithm-2/
	// capacity core every placement policy funnels through
	// (internal/place).
	PlacementConfig = place.Config
	// ContentionConfig prices shared-L2 occupancy and DRAM bandwidth into
	// the engine's arbitration (PlacementConfig.Contention). Nil — the
	// default — keeps every placement bit-identical to unpriced builds.
	ContentionConfig = place.ContentionConfig
)

// Online reassignment policies (OnlineConfig.Policy).
const (
	// OnlineGreedy ranks tasks by smoothed IPC and grants fast-core slots
	// to the highest ranks.
	OnlineGreedy = online.Greedy
	// OnlineProbe measures each detected phase on every core type and fixes
	// its placement with Algorithm 2 — the mark-free temporal analogue of
	// the static runtime.
	OnlineProbe = online.Probe
)

// DefaultTuning returns the headline tuning configuration.
func DefaultTuning() TuningConfig { return tuning.DefaultConfig() }

// DefaultOnline returns the online detector's showdown operating point.
func DefaultOnline() OnlineConfig { return online.DefaultConfig() }

// DefaultPlacement returns the placement engine's default arbitration
// parameters (spill band 1, hysteresis 5%).
func DefaultPlacement() PlacementConfig { return place.DefaultConfig() }

// Select is the paper's Algorithm 2: choose the core type for a phase given
// per-type measured IPC and threshold delta. The single implementation
// lives in the unified placement engine (internal/place).
func Select(m *Machine, ipcPerType []float64, delta float64) amp.CoreTypeID {
	return place.Select(m, ipcPerType, delta)
}

// Workloads and simulation.
type (
	// Benchmark is a generated suite member.
	Benchmark = workload.Benchmark
	// Workload is a constant-size slot-queue workload.
	Workload = workload.Workload
	// WorkloadSpec describes a workload by its construction parameters
	// (slots, queue length, seed) — the serializable identity a session
	// resolves against its own suite. Distributed sweeps require it.
	WorkloadSpec = workload.Spec
	// RunConfig configures one simulation run.
	RunConfig = sim.RunConfig
	// RunResult is the outcome of a run.
	RunResult = sim.Result
	// TaskStat is one job's record.
	TaskStat = metrics.TaskStat
	// RunMode selects baseline, tuned, or overhead-measurement execution.
	RunMode = sim.Mode
)

// Run modes.
const (
	// Baseline runs uninstrumented programs under the stock scheduler.
	Baseline = sim.Baseline
	// Tuned runs instrumented programs with the tuning runtime.
	Tuned = sim.Tuned
	// Overhead runs instrumented programs in all-cores mode.
	Overhead = sim.Overhead
)

// Suite generates the 15 SPEC-like benchmark personalities of the paper's
// Table 1 on the default machine and cost model.
func Suite() ([]*Benchmark, error) {
	return workload.Suite(exec.DefaultCostModel(), amp.Quad2Fast2Slow())
}

// SuiteFor generates the suite for a specific machine and cost model.
func SuiteFor(cost CostModel, m *Machine) ([]*Benchmark, error) {
	return workload.Suite(cost, m)
}

// NewWorkload draws a slot-queue workload from the suite (the paper's
// §IV-A2 construction). The same seed always yields the same queues.
func NewWorkload(suite []*Benchmark, slots, queueLen int, seed uint64) *Workload {
	return workload.BuildWorkload(suite, slots, queueLen, seed)
}

// Run executes one workload simulation. It is a compatibility wrapper: new
// code should prefer Session.RunContext, which adds cancellation, progress
// hooks, and artifact caching (see the migration note in README.md).
func Run(cfg RunConfig) (*RunResult, error) { return sim.Run(cfg) }

// Metrics.

// AvgProcessTime returns the mean flow time of completed jobs.
func AvgProcessTime(tasks []TaskStat) float64 { return metrics.AvgProcessTime(tasks) }

// MaxFlow returns the longest flow time (Bender et al. fairness metric).
func MaxFlow(tasks []TaskStat) float64 { return metrics.MaxFlow(tasks) }

// MaxStretch returns the largest flow/isolation ratio.
func MaxStretch(tasks []TaskStat, isolationSec map[string]float64) (float64, error) {
	return metrics.MaxStretch(tasks, isolationSec)
}

// Open-system serving.
type (
	// ArrivalSpec describes an open-system arrival process (kind, rate,
	// horizon); set it on RunSpec.Arrivals to run a serving workload.
	ArrivalSpec = workload.ArrivalSpec
	// ArrivalKind selects the arrival process family.
	ArrivalKind = workload.ArrivalKind
	// OvercommitConfig configures the scheduler's proportional-share
	// overcommit dispatcher (see WithOvercommit).
	OvercommitConfig = osched.OvercommitConfig
	// ServingStats summarizes a serving run: admission/completion counts,
	// exact sojourn quantiles, and overcommit evidence.
	ServingStats = serve.Stats
	// Tracer is the deterministic event sink attached with WithTrace: it
	// records spans, instants, and counter tracks stamped in simulated
	// time and exports Chrome/Perfetto trace-event JSON (WriteFile /
	// WriteJSON) or a plain-text timeline (Summary). A nil *Tracer is the
	// disabled state; tracing never perturbs a run.
	Tracer = trace.Tracer
)

// NewTracer returns an enabled run tracer (see WithTrace).
func NewTracer() *Tracer { return trace.New() }

// Cycle accounting.
type (
	// Ledger is a run's conserved cycle accounting (RunResult.Ledger,
	// enabled with WithLedger): the machine's total core time decomposed
	// into exhaustive categories with per-core, per-task, and per-phase
	// rollups, summing exactly to cores × horizon (Ledger.Verify).
	Ledger = ledger.Ledger
	// LedgerBreakdown is one accounting scope's category decomposition in
	// simulated picoseconds.
	LedgerBreakdown = ledger.Breakdown
)

// LedgerCategories lists the accounting category names in display order,
// matching LedgerBreakdown.Values.
func LedgerCategories() []string { return ledger.Categories() }

// Arrival process kinds (ArrivalSpec.Kind).
const (
	// ArrivalPoisson is a homogeneous Poisson process.
	ArrivalPoisson = workload.Poisson
	// ArrivalBursty is a Markov-modulated on/off process: quiet floor,
	// burst spikes, same long-run rate.
	ArrivalBursty = workload.Bursty
	// ArrivalDiurnal is a sinusoidally-modulated rate (a compressed
	// day/night trace), realized by thinning.
	ArrivalDiurnal = workload.Diurnal
)

// ParseArrivalKind resolves an arrival-kind name (as accepted by
// cmd/ampsim -arrivals).
func ParseArrivalKind(s string) (ArrivalKind, error) { return workload.ParseArrivalKind(s) }

// MachineCapacity returns the machine's processing rate in fast-core
// equivalents — the denominator of "offered load 1.0×".
func MachineCapacity(m *Machine) float64 { return serve.Capacity(m) }

// ServingArrivals builds the arrival spec realizing a load multiple of
// machine capacity over an admission horizon, against the serving fleet's
// mean service time. Run it with DurationSec comfortably past horizonSec.
func ServingArrivals(m *Machine, kind ArrivalKind, load, horizonSec float64) ArrivalSpec {
	return serve.Arrivals(m, kind, load, horizonSec)
}

// SummarizeServing condenses a serving run result into latency statistics.
func SummarizeServing(res *RunResult) ServingStats { return serve.Summarize(res) }

// SojournTimes returns completed jobs' sojourn (flow) times in seconds, the
// sample stream serving quantiles are computed over.
func SojournTimes(tasks []TaskStat) []float64 { return metrics.SojournTimes(tasks) }

// Quantile returns the exact nearest-rank q-quantile of xs (NaN when
// empty); Quantiles computes several at once, sorting only once.
func Quantile(xs []float64, q float64) float64 { return metrics.Quantile(xs, q) }

// Quantiles returns exact nearest-rank quantiles of xs at each q.
func Quantiles(xs []float64, qs ...float64) []float64 { return metrics.Quantiles(xs, qs...) }

// Experiments.
type (
	// ExperimentConfig is the shared experiment environment.
	ExperimentConfig = experiments.Config
)

// DefaultExperiments returns the configuration behind EXPERIMENTS.md.
func DefaultExperiments() (ExperimentConfig, error) { return experiments.Default() }
