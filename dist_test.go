package phasetune_test

import (
	"context"
	"sync"
	"testing"

	"phasetune"
)

// shardedGrid mirrors sweepGrid in serializable form: Queues instead of a
// built Workload, plus dynamic- and hybrid-policy cells so policy
// resolution (and the placement engine) crosses the wire too.
func shardedGrid() []phasetune.RunSpec {
	loop45 := phasetune.BestParams()
	var specs []phasetune.RunSpec
	for _, seed := range []uint64{1, 2} {
		q := &phasetune.WorkloadSpec{Slots: 3, QueueLen: 4, Seed: seed}
		specs = append(specs,
			phasetune.RunSpec{Queues: q, DurationSec: 5, Policy: phasetune.PolicyNone, Seed: seed},
			phasetune.RunSpec{Queues: q, DurationSec: 5, Policy: phasetune.PolicyStatic, Params: loop45, Seed: seed},
			phasetune.RunSpec{Queues: q, DurationSec: 5, Policy: phasetune.PolicyDynamic, Seed: seed},
			phasetune.RunSpec{Queues: q, DurationSec: 5, Policy: phasetune.PolicyHybrid, Seed: seed},
		)
	}
	return specs
}

// TestSweepShardedMatchesSweep is the public fabric contract: the sharded
// sweep (wire specs, per-worker caches, deterministic merge) returns
// results byte-identical to the local Sweep of the same specs.
func TestSweepShardedMatchesSweep(t *testing.T) {
	specs := shardedGrid()
	sess := phasetune.NewSession()
	want, err := sess.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3} {
		got, err := phasetune.NewSession().SweepSharded(context.Background(), specs, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d results, want %d", shards, len(got), len(want))
		}
		for i := range got {
			if string(encode(t, got[i])) != string(encode(t, want[i])) {
				t.Errorf("shards=%d: spec %d differs from Sweep", shards, i)
			}
		}
	}
}

// TestHybridShardedCampaignGolden is the golden contract for the new
// policy: a PolicyHybrid campaign sharded across the fabric — per-worker
// caches, wire-format specs, placement engines rebuilt on each worker —
// merges byte-identically to running the same specs sequentially through
// RunContext. The hybrid runtime spans both hook planes (marks and the
// kernel monitor), so this pins that the whole engine-backed path is a
// pure function of its spec.
func TestHybridShardedCampaignGolden(t *testing.T) {
	var specs []phasetune.RunSpec
	for _, seed := range []uint64{3, 9} {
		specs = append(specs, phasetune.RunSpec{
			Queues:      &phasetune.WorkloadSpec{Slots: 4, QueueLen: 4, Seed: seed},
			DurationSec: 8, Policy: phasetune.PolicyHybrid, Seed: seed,
		})
	}
	sess := phasetune.NewSession(phasetune.WithMachine(phasetune.TriTypeAMP()))
	var want []string
	for _, spec := range specs {
		res, err := sess.RunContext(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, string(encode(t, res)))
	}
	for _, shards := range []int{2, 3} {
		got, err := phasetune.NewSession(phasetune.WithMachine(phasetune.TriTypeAMP())).
			SweepSharded(context.Background(), specs, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for i := range got {
			if string(encode(t, got[i])) != want[i] {
				t.Errorf("shards=%d: hybrid spec %d differs from sequential run", shards, i)
			}
		}
	}
}

// TestServingShardedCampaignGolden pins the open-system serving form's
// fabric contract: Arrivals specs — fleet, arrival schedule, and per-job
// seeds regenerated on each worker, overcommit dispatcher rebuilt from the
// environment — shard and merge byte-identically to sequential RunContext
// runs of the same specs. This is what lets sweepd workers split a serving
// campaign.
func TestServingShardedCampaignGolden(t *testing.T) {
	machine := phasetune.QuadAMP()
	newSess := func() *phasetune.Session {
		return phasetune.NewSession(
			phasetune.WithMachine(machine),
			phasetune.WithOvercommit(phasetune.OvercommitConfig{Enabled: true}),
		)
	}
	var specs []phasetune.RunSpec
	for _, seed := range []uint64{3, 9} {
		for _, policy := range []phasetune.Policy{phasetune.PolicyNone, phasetune.PolicyHybrid} {
			arr := phasetune.ServingArrivals(machine, phasetune.ArrivalPoisson, 1.2, 6)
			specs = append(specs, phasetune.RunSpec{
				Arrivals: &arr, DurationSec: 8, Policy: policy, Seed: seed,
			})
		}
	}
	sess := newSess()
	var want []string
	overcommitted := false
	for _, spec := range specs {
		res, err := sess.RunContext(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.PeakRunnable > len(machine.Cores) {
			overcommitted = true
		}
		want = append(want, string(encode(t, res)))
	}
	if !overcommitted {
		t.Error("no serving run ever exceeded the core count at 1.2x load")
	}
	for _, shards := range []int{2, 3} {
		got, err := newSess().SweepSharded(context.Background(), specs, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for i := range got {
			if string(encode(t, got[i])) != want[i] {
				t.Errorf("shards=%d: serving spec %d differs from sequential run", shards, i)
			}
		}
	}
}

// TestSweepShardedRejectsBuiltWorkloads: specs that cannot cross a process
// boundary are rejected up front.
func TestSweepShardedRejectsBuiltWorkloads(t *testing.T) {
	suite, err := phasetune.Suite()
	if err != nil {
		t.Fatal(err)
	}
	sess := phasetune.NewSession()
	_, err = sess.SweepSharded(context.Background(), []phasetune.RunSpec{
		{Workload: phasetune.NewWorkload(suite, 2, 2, 1), DurationSec: 1, Seed: 1},
	}, 2)
	if err == nil {
		t.Fatal("SweepSharded accepted a built *Workload")
	}
	_, err = sess.SweepSharded(context.Background(), []phasetune.RunSpec{
		{DurationSec: 1, Seed: 1},
	}, 2)
	if err == nil {
		t.Fatal("SweepSharded accepted a spec with no workload at all")
	}
}

// TestQueuesSpecsRunLocally: Queues-based specs work through the plain
// local path too (RunContext builds the workload from the session suite),
// and give the same bytes as the equivalent built-Workload spec.
func TestQueuesSpecsRunLocally(t *testing.T) {
	suite, err := phasetune.Suite()
	if err != nil {
		t.Fatal(err)
	}
	sess := phasetune.NewSession()
	viaQueues, err := sess.Run(phasetune.RunSpec{
		Queues: &phasetune.WorkloadSpec{Slots: 2, QueueLen: 2, Seed: 7}, DurationSec: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	viaWorkload, err := sess.Run(phasetune.RunSpec{
		Workload: phasetune.NewWorkload(suite, 2, 2, 7), DurationSec: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(encode(t, viaQueues)) != string(encode(t, viaWorkload)) {
		t.Error("Queues-based run differs from built-Workload run")
	}
}

// TestServeAndWorkLoopback drives the full public fabric over loopback
// HTTP: Serve coordinates, two Work goroutines execute, and the merged
// results match a local Sweep byte for byte.
func TestServeAndWorkLoopback(t *testing.T) {
	specs := shardedGrid()
	want, err := phasetune.NewSession().Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan string, 1)
	type serveOut struct {
		results []*phasetune.RunResult
		err     error
	}
	serveCh := make(chan serveOut, 1)
	go func() {
		results, err := phasetune.Serve(ctx, phasetune.NewSession(), specs, phasetune.ServeOptions{
			Addr:     "127.0.0.1:0",
			OnListen: func(addr string) { addrCh <- addr },
		})
		serveCh <- serveOut{results, err}
	}()
	addr := <-addrCh

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := phasetune.Work(ctx, "http://"+addr, phasetune.WorkOptions{Name: "t"}); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	out := <-serveCh
	wg.Wait()
	if out.err != nil {
		t.Fatal(out.err)
	}
	if len(out.results) != len(want) {
		t.Fatalf("%d results, want %d", len(out.results), len(want))
	}
	for i := range out.results {
		if string(encode(t, out.results[i])) != string(encode(t, want[i])) {
			t.Errorf("spec %d: fabric result differs from Sweep", i)
		}
	}
}
