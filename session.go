package phasetune

import (
	"context"

	"phasetune/internal/sim"
)

// Session is a configured simulation environment: machine, cost model,
// scheduler, typing and tuning defaults, a shared artifact cache, and a
// worker budget. Sessions are cheap to create, and one session can execute
// any number of runs and sweeps — every image prepared along the way lands
// in the session cache and is reused by later runs, so a 15-benchmark
// workload is instrumented once per technique across an entire campaign.
//
// A Session is safe for concurrent use.
type Session struct {
	machine *Machine
	cost    CostModel
	sched   SchedulerConfig
	typing  TypingOptions
	tuning  TuningConfig
	cache   *ImageCache
	workers int
	events  Events
}

// Events holds optional per-run observation hooks (see sim.Events).
type Events = sim.Events

// SessionOption configures a Session.
type SessionOption func(*Session)

// WithMachine sets the hardware (default: the paper's quad AMP).
func WithMachine(m *Machine) SessionOption { return func(s *Session) { s.machine = m } }

// WithCost sets the cost model (default: DefaultCost).
func WithCost(c CostModel) SessionOption { return func(s *Session) { s.cost = c } }

// WithScheduler sets the scheduler configuration (default: DefaultScheduler).
func WithScheduler(sc SchedulerConfig) SessionOption { return func(s *Session) { s.sched = sc } }

// WithTyping sets the static typing options (default: DefaultTyping).
func WithTyping(t TypingOptions) SessionOption {
	return func(s *Session) { s.typing = withTypingDefaults(t) }
}

// WithTuning sets the default runtime tuning configuration (default:
// DefaultTuning). Individual runs may override it via RunSpec.Tuning.
func WithTuning(t TuningConfig) SessionOption { return func(s *Session) { s.tuning = t } }

// WithCache shares an existing artifact cache (default: a fresh cache).
// Pass the same cache to several sessions to share prepared images across
// machines — images depend only on program content and the cost model.
func WithCache(c *ImageCache) SessionOption { return func(s *Session) { s.cache = c } }

// WithWorkers bounds the sweep worker pool (default: GOMAXPROCS).
func WithWorkers(n int) SessionOption { return func(s *Session) { s.workers = n } }

// WithEvents installs per-run progress hooks.
func WithEvents(e Events) SessionOption { return func(s *Session) { s.events = e } }

// NewSession builds a session from functional options:
//
//	sess := phasetune.NewSession(
//	    phasetune.WithMachine(phasetune.QuadAMP()),
//	    phasetune.WithTuning(phasetune.DefaultTuning()),
//	)
func NewSession(opts ...SessionOption) *Session {
	s := &Session{
		machine: QuadAMP(),
		cost:    DefaultCost(),
		sched:   DefaultScheduler(),
		typing:  DefaultTyping(),
		tuning:  DefaultTuning(),
		cache:   NewImageCache(),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Cache returns the session's artifact cache (for stats or sharing).
func (s *Session) Cache() *ImageCache { return s.cache }

// CacheStats reports the session cache's hit/miss counters.
func (s *Session) CacheStats() CacheStats { return s.cache.Stats() }

// RunSpec configures one run within a session. Zero values inherit the
// session defaults; only what varies per run needs to be set.
type RunSpec struct {
	// Workload supplies the slot queues (required).
	Workload *Workload
	// DurationSec is the run length in simulated seconds.
	DurationSec float64
	// Mode selects baseline/tuned/overhead (default Baseline).
	Mode RunMode
	// Params is the marking technique (used when Mode != Baseline).
	Params TechniqueParams
	// Tuning overrides the session tuning configuration when non-nil.
	Tuning *TuningConfig
	// TypingError injects clustering error (Fig. 7 methodology).
	TypingError float64
	// Seed drives workload process seeds and error injection.
	Seed uint64
}

// runConfig lowers a spec onto the session environment.
func (s *Session) runConfig(spec RunSpec) sim.RunConfig {
	tcfg := s.tuning
	if spec.Tuning != nil {
		tcfg = *spec.Tuning
	}
	cost := s.cost
	sched := s.sched
	return sim.RunConfig{
		Machine: s.machine, Cost: &cost, Sched: &sched,
		Workload:    spec.Workload,
		DurationSec: spec.DurationSec,
		Mode:        spec.Mode,
		Params:      spec.Params,
		Tuning:      tcfg,
		TypingOpts:  s.typing,
		TypingError: spec.TypingError,
		Seed:        spec.Seed,
		Cache:       s.cache,
		Events:      s.events,
	}
}

// RunContext executes one run with cancellation: the simulation polls ctx
// as it advances and returns ctx.Err() if it fires mid-run. Identical specs
// on identical sessions give bit-identical results, whether or not the
// session cache already holds the images.
func (s *Session) RunContext(ctx context.Context, spec RunSpec) (*RunResult, error) {
	return sim.RunContext(ctx, s.runConfig(spec))
}

// Run is RunContext without cancellation.
func (s *Session) Run(spec RunSpec) (*RunResult, error) {
	return s.RunContext(context.Background(), spec)
}

// Instrument prepares one program's image under the session environment,
// through the session cache. It is the session-scoped equivalent of the
// package-level Instrument helper.
func (s *Session) Instrument(p *Program, params TechniqueParams) (*Artifact, error) {
	return s.cache.Get(p, ImageSpec{Params: params, Typing: s.typing}, s.cost)
}
