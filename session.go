package phasetune

import (
	"context"
	"fmt"
	"sync"

	"phasetune/internal/exec"
	"phasetune/internal/perfcnt"
	"phasetune/internal/sim"
	"phasetune/internal/workload"
)

// Policy selects how a run places processes on the asymmetric cores — the
// axis of the paper's central comparison (§I, §V).
type Policy int

const (
	// PolicyDefault inherits the session's policy (or, when the session has
	// none, defers to the spec's legacy Mode field).
	PolicyDefault Policy = iota
	// PolicyNone runs unmodified binaries under the stock asymmetry-unaware
	// scheduler (the baseline).
	PolicyNone
	// PolicyStatic runs instrumented binaries with the paper's static phase
	// marks and the Algorithm 2 runtime.
	PolicyStatic
	// PolicyDynamic runs unmodified binaries under the online phase
	// detector: periodic counter sampling, window-signature classification,
	// and runtime reassignment (internal/online).
	PolicyDynamic
	// PolicyOracle runs instrumented binaries with perfect-knowledge
	// placement — zero monitoring, zero misprediction; the upper bound both
	// techniques chase.
	PolicyOracle
	// PolicyHybrid runs instrumented binaries under the marks+windows
	// hybrid: marks define phase boundaries, monitor windows keep the
	// per-phase IPC estimates fresh, and the shared placement engine
	// re-arbitrates at boundaries (the paper's §VI-B feedback mechanism
	// grown into a full policy).
	PolicyHybrid
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyDefault:
		return "default"
	case PolicyNone:
		return "none"
	case PolicyStatic:
		return "static"
	case PolicyDynamic:
		return "dynamic"
	case PolicyOracle:
		return "oracle"
	case PolicyHybrid:
		return "hybrid"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy resolves a policy name (as accepted by cmd/ampsim -policy).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "none", "baseline":
		return PolicyNone, nil
	case "static", "tuned":
		return PolicyStatic, nil
	case "dynamic", "online":
		return PolicyDynamic, nil
	case "oracle":
		return PolicyOracle, nil
	case "hybrid":
		return PolicyHybrid, nil
	}
	return PolicyDefault, fmt.Errorf("unknown policy %q (want none|static|dynamic|oracle|hybrid)", s)
}

// mode lowers a policy onto the simulator run mode.
func (p Policy) mode() RunMode {
	switch p {
	case PolicyStatic:
		return sim.Tuned
	case PolicyDynamic:
		return sim.Dynamic
	case PolicyOracle:
		return sim.Oracle
	case PolicyHybrid:
		return sim.Hybrid
	}
	return sim.Baseline
}

// Session is a configured simulation environment: machine, cost model,
// scheduler, typing and tuning defaults, a shared artifact cache, and a
// worker budget. Sessions are cheap to create, and one session can execute
// any number of runs and sweeps — every image prepared along the way lands
// in the session cache and is reused by later runs, so a 15-benchmark
// workload is instrumented once per technique across an entire campaign.
//
// A Session is safe for concurrent use.
type Session struct {
	machine   *Machine
	cost      CostModel
	sched     SchedulerConfig
	typing    TypingOptions
	tuning    TuningConfig
	online    OnlineConfig
	placement PlacementConfig
	policy    Policy
	cache     *ImageCache
	memo      *SegmentMemo
	memoOff   bool
	memoSize  int
	workers   int
	events    Events
	tracer    *Tracer
	ledger    bool

	// suiteOnce lazily generates the benchmark suite for (cost, machine),
	// shared by every run whose spec describes its workload as Queues.
	suiteOnce sync.Once
	suite     []*Benchmark
	suiteErr  error
}

// Events holds optional per-run observation hooks (see sim.Events).
type Events = sim.Events

// SessionOption configures a Session.
type SessionOption func(*Session)

// WithMachine sets the hardware (default: the paper's quad AMP).
func WithMachine(m *Machine) SessionOption { return func(s *Session) { s.machine = m } }

// WithCost sets the cost model (default: DefaultCost).
func WithCost(c CostModel) SessionOption { return func(s *Session) { s.cost = c } }

// WithScheduler sets the scheduler configuration (default: DefaultScheduler).
func WithScheduler(sc SchedulerConfig) SessionOption { return func(s *Session) { s.sched = sc } }

// WithOvercommit configures the scheduler's proportional-share overcommit
// dispatcher (off by default). Open-system serving runs (RunSpec.Arrivals)
// usually want it enabled so oversubscribed core types time-multiplex
// fractional shares instead of starving the run queue tail:
//
//	sess := phasetune.NewSession(
//	    phasetune.WithOvercommit(phasetune.OvercommitConfig{Enabled: true}),
//	)
func WithOvercommit(oc OvercommitConfig) SessionOption {
	return func(s *Session) { s.sched.Overcommit = oc }
}

// WithTyping sets the static typing options (default: DefaultTyping).
func WithTyping(t TypingOptions) SessionOption {
	return func(s *Session) { s.typing = withTypingDefaults(t) }
}

// WithTuning sets the default runtime tuning configuration (default:
// DefaultTuning). Individual runs may override it via RunSpec.Tuning.
func WithTuning(t TuningConfig) SessionOption { return func(s *Session) { s.tuning = t } }

// WithPolicy sets the session's default placement policy, used by every run
// whose spec leaves Policy at PolicyDefault. A spec's own Policy always
// wins; a spec that sets the legacy Mode field (non-Baseline) also wins.
func WithPolicy(p Policy) SessionOption { return func(s *Session) { s.policy = p } }

// WithOnline sets the default online-detector configuration used by
// PolicyDynamic and PolicyHybrid runs (default: DefaultOnline). Individual
// runs may override it via RunSpec.Online.
func WithOnline(c OnlineConfig) SessionOption { return func(s *Session) { s.online = c } }

// WithPlacement sets the default shared-placement-engine configuration —
// capacity spill band and hysteresis — used by every engine-backed run
// (PolicyDynamic, PolicyHybrid, and static runs with TuningConfig.Spill).
// Individual runs may override it via RunSpec.Placement.
func WithPlacement(c PlacementConfig) SessionOption { return func(s *Session) { s.placement = c } }

// WithCache shares an existing artifact cache (default: a fresh cache).
// Pass the same cache to several sessions to share prepared images across
// machines — images depend only on program content and the cost model.
func WithCache(c *ImageCache) SessionOption { return func(s *Session) { s.cache = c } }

// WithSegmentMemo shares an existing segment memo (default: a fresh memo
// per session). Pass the same memo to several sessions so campaigns over
// the same images replay each other's segment outcomes; the memo is safe
// for concurrent use and invisible to results.
func WithSegmentMemo(m *SegmentMemo) SessionOption { return func(s *Session) { s.memo = m } }

// WithSegmentMemoSize bounds the session's segment memo to maxChunks
// cached chunks (default DefaultMemoChunks). When full, the memo stops
// recording but keeps serving hits. Ignored when WithSegmentMemo supplies
// a memo built elsewhere.
func WithSegmentMemoSize(maxChunks int) SessionOption {
	return func(s *Session) { s.memoSize = maxChunks }
}

// WithoutSegmentMemo disables segment memoization for the session's runs.
// Results are byte-identical either way — the switch exists for memory-
// constrained environments and for A/B-testing the memo itself.
func WithoutSegmentMemo() SessionOption { return func(s *Session) { s.memoOff = true } }

// WithWorkers bounds the sweep worker pool (default: GOMAXPROCS).
func WithWorkers(n int) SessionOption { return func(s *Session) { s.workers = n } }

// WithEvents installs per-run progress hooks.
func WithEvents(e Events) SessionOption { return func(s *Session) { s.events = e } }

// WithTrace attaches a deterministic event tracer to the session's runs:
// scheduler bursts, placement decisions with their rationale, online
// window closes, mark boundaries, and per-task lifetime spans, stamped in
// simulated time. Tracing never perturbs a run — a traced run's Result is
// bit-identical to an untraced one. Export with Tracer.WriteFile
// (Chrome/Perfetto trace-event JSON) or Tracer.Summary (plain text).
//
// One tracer should observe one run at a time: concurrent sweep runs
// sharing a tracer interleave their events nondeterministically, so
// attach a tracer to sessions used for single Run calls.
func WithTrace(tr *Tracer) SessionOption { return func(s *Session) { s.tracer = tr } }

// WithLedger enables conserved cycle accounting on the session's runs: each
// RunResult carries a Ledger decomposing every simulated core-picosecond
// into useful work, asymmetry and spill loss, instrumentation taxes, and
// idle time, with per-core/per-task/per-phase rollups that sum exactly to
// cores × horizon (Ledger.Verify). Like tracing, accounting never perturbs
// a run — an accounted run's Result is bit-identical to an unaccounted one
// once the Ledger field is stripped.
func WithLedger() SessionOption { return func(s *Session) { s.ledger = true } }

// NewSession builds a session from functional options:
//
//	sess := phasetune.NewSession(
//	    phasetune.WithMachine(phasetune.QuadAMP()),
//	    phasetune.WithTuning(phasetune.DefaultTuning()),
//	)
func NewSession(opts ...SessionOption) *Session {
	s := &Session{
		machine:   QuadAMP(),
		cost:      DefaultCost(),
		sched:     DefaultScheduler(),
		typing:    DefaultTyping(),
		tuning:    DefaultTuning(),
		online:    DefaultOnline(),
		placement: DefaultPlacement(),
		cache:     NewImageCache(),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.memoOff {
		s.memo = nil
	} else if s.memo == nil {
		// Memoization is on by default: it is invisible to results and
		// collapses the redundant re-execution inside campaign grids.
		s.memo = exec.NewSegmentMemo(s.memoSize)
	}
	return s
}

// Cache returns the session's artifact cache (for stats or sharing).
func (s *Session) Cache() *ImageCache { return s.cache }

// CacheStats reports the session cache's hit/miss counters.
func (s *Session) CacheStats() CacheStats { return s.cache.Stats() }

// Memo returns the session's segment memo (nil when disabled), for stats
// or sharing across sessions.
func (s *Session) Memo() *SegmentMemo { return s.memo }

// MemoStats reports the segment memo's lane/chunk counts and hit rates.
// The zero value is returned when memoization is disabled.
func (s *Session) MemoStats() MemoStats { return s.memo.Stats() }

// RunSpec configures one run within a session. Zero values inherit the
// session defaults; only what varies per run needs to be set.
type RunSpec struct {
	// Workload supplies the slot queues. Exactly one of Workload and
	// Queues must be set; Workload wins when both are.
	Workload *Workload
	// Queues describes the workload by its construction parameters
	// (slots, queue length, seed) instead of a built queue set; the
	// session builds it against its own suite. Queues-based specs are
	// serializable, which is what distributed sweeps (Serve, SweepSharded)
	// require.
	Queues *WorkloadSpec
	// Arrivals switches the run to the open-system serving form: instead of
	// constant-size slot queues, jobs from the serving fleet arrive under
	// the described process (Poisson, bursty, diurnal) and the run reports
	// per-job sojourn times. Mutually exclusive with Workload and Queues;
	// Seed drives both the arrival schedule and per-job process seeds.
	// Arrivals-based specs are serializable, so they shard (Serve,
	// SweepSharded) like Queues-based ones. Open systems usually want the
	// overcommit dispatcher on — see WithOvercommit.
	Arrivals *ArrivalSpec
	// DurationSec is the run length in simulated seconds. For arrivals
	// runs, keep it comfortably past ArrivalSpec.HorizonSec so admitted
	// jobs can drain.
	DurationSec float64
	// Policy selects the placement policy (none/static/dynamic/oracle).
	// PolicyDefault inherits the session policy; when the session has none
	// either, the legacy Mode field decides.
	Policy Policy
	// Mode selects baseline/tuned/overhead (default Baseline). Ignored when
	// this spec or the session resolves to an explicit Policy.
	Mode RunMode
	// Params is the marking technique, used by instrumented runs (static
	// marks, overhead mode, oracle). Policy-selected runs with zero Params
	// default to BestParams.
	Params TechniqueParams
	// Tuning overrides the session tuning configuration when non-nil.
	Tuning *TuningConfig
	// Online overrides the session online-detector configuration when
	// non-nil (PolicyDynamic and PolicyHybrid runs).
	Online *OnlineConfig
	// Placement overrides the session placement-engine configuration when
	// non-nil (engine-backed runs: dynamic, hybrid, static with spill).
	Placement *PlacementConfig
	// TypingError injects clustering error (Fig. 7 methodology).
	TypingError float64
	// Seed drives workload process seeds and error injection.
	Seed uint64
}

// resolve lowers a spec's policy and per-run overrides onto concrete run
// parameters: the spec's Policy wins, then an explicit legacy Mode, then
// the session policy, then legacy Baseline.
func (s *Session) resolve(spec RunSpec) (mode RunMode, params TechniqueParams, tcfg TuningConfig, ocfg OnlineConfig, pcfg PlacementConfig) {
	tcfg = s.tuning
	if spec.Tuning != nil {
		tcfg = *spec.Tuning
	}
	ocfg = s.online
	if spec.Online != nil {
		ocfg = *spec.Online
	}
	pcfg = s.placement
	if spec.Placement != nil {
		pcfg = *spec.Placement
	}
	mode = spec.Mode
	policy := spec.Policy
	if policy == PolicyDefault && mode == Baseline {
		policy = s.policy
	}
	params = spec.Params
	if policy != PolicyDefault {
		mode = policy.mode()
		if params == (TechniqueParams{}) && (policy == PolicyStatic || policy == PolicyOracle || policy == PolicyHybrid) {
			params = BestParams()
		}
	}
	return mode, params, tcfg, ocfg, pcfg
}

// Suite returns the benchmark suite for the session's cost model and
// machine, generated once per session and reused. Queues-based run specs
// build their workloads against it.
func (s *Session) Suite() ([]*Benchmark, error) {
	s.suiteOnce.Do(func() {
		s.suite, s.suiteErr = workload.Suite(s.cost, s.machine)
	})
	return s.suite, s.suiteErr
}

// runConfig lowers a spec onto the session environment.
func (s *Session) runConfig(spec RunSpec) (sim.RunConfig, error) {
	mode, params, tcfg, ocfg, pcfg := s.resolve(spec)
	w := spec.Workload
	var stream *workload.Stream
	queues := spec.Queues
	if spec.Arrivals != nil {
		if w != nil || queues != nil {
			return sim.RunConfig{}, fmt.Errorf("phasetune: RunSpec.Arrivals is mutually exclusive with Workload and Queues")
		}
		queues = &WorkloadSpec{Seed: spec.Seed, Arrivals: spec.Arrivals}
	}
	if w == nil && queues != nil && queues.Arrivals != nil {
		var err error
		stream, err = queues.MaterializeOpen(s.cost, s.machine)
		if err != nil {
			return sim.RunConfig{}, err
		}
	} else if w == nil && queues != nil {
		// Alternation-axis specs (Queues.Alternations > 0) generate the
		// synthetic alternator and never touch the suite.
		var suite []*Benchmark
		if queues.Alternations <= 0 {
			var err error
			suite, err = s.Suite()
			if err != nil {
				return sim.RunConfig{}, err
			}
		}
		var err error
		w, err = queues.Materialize(suite, s.cost, s.machine)
		if err != nil {
			return sim.RunConfig{}, err
		}
	}

	cost := s.cost
	sched := s.sched
	return sim.RunConfig{
		Machine: s.machine, Cost: &cost, Sched: &sched,
		Workload:    w,
		Stream:      stream,
		DurationSec: spec.DurationSec,
		Mode:        mode,
		Params:      params,
		Tuning:      tcfg,
		Online:      ocfg,
		Placement:   pcfg,
		TypingOpts:  s.typing,
		TypingError: spec.TypingError,
		Seed:        spec.Seed,
		Cache:       s.cache,
		Memo:        s.memo,
		Events:      s.events,
		Trace:       s.tracer,
		Ledger:      s.ledger,
	}, nil
}

// RunContext executes one run with cancellation: the simulation polls ctx
// as it advances and returns ctx.Err() if it fires mid-run. Identical specs
// on identical sessions give bit-identical results, whether or not the
// session cache already holds the images.
func (s *Session) RunContext(ctx context.Context, spec RunSpec) (*RunResult, error) {
	cfg, err := s.runConfig(spec)
	if err != nil {
		return nil, err
	}
	return sim.RunContext(ctx, cfg)
}

// Run is RunContext without cancellation.
func (s *Session) Run(spec RunSpec) (*RunResult, error) {
	return s.RunContext(context.Background(), spec)
}

// Instrument prepares one program's image under the session environment,
// through the session cache. It is the session-scoped equivalent of the
// package-level Instrument helper.
func (s *Session) Instrument(p *Program, params TechniqueParams) (*Artifact, error) {
	return s.cache.Get(p, ImageSpec{Params: params, Typing: s.typing}, s.cost)
}

// MeasureIPC runs the program to completion alone on each of the session
// machine's core types (full cache share, no instrumentation) and returns
// the measured IPC per type — the signal Algorithm 2 consumes. The image is
// prepared through the session cache; seed drives branch outcomes, so equal
// seeds give bit-identical measurements.
func (s *Session) MeasureIPC(p *Program, seed uint64) ([]float64, error) {
	art, err := s.cache.Get(p, ImageSpec{Baseline: true}, s.cost)
	if err != nil {
		return nil, err
	}
	cost := s.cost
	pars := exec.ParamsFor(cost, s.machine)
	ipcs := make([]float64, len(pars))
	for t := range pars {
		coreID := 0
		if ids := s.machine.CoresOfType(pars[t].Type); len(ids) > 0 {
			coreID = ids[0]
		}
		proc := exec.NewProcess(1, art.Image, &cost, seed, nil)
		es := perfcnt.Start(&proc.Counters)
		proc.RunIsolated(&pars[t], coreID, s.machine.L2s[0].SizeKB, 0)
		instrs, cycles := es.Stop(&proc.Counters)
		ipcs[t] = perfcnt.IPC(instrs, cycles)
	}
	return ipcs, nil
}
