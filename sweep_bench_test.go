// Benchmarks comparing the legacy sequential experiment loop (one-shot Run,
// no artifact sharing) against the sweep engine (bounded worker pool plus
// content-keyed image cache) on the same technique grid, so BENCH_*.json
// tracks the win. The grid is the shape every experiment driver has: a few
// technique variants by a few workload seeds over one suite.
package phasetune_test

import (
	"context"
	"testing"

	"phasetune"
)

// benchSweepSpecs builds the shared grid: 3 technique variants x 2 seeds,
// 4-slot workloads over the full suite, 10 simulated seconds.
func benchSweepSpecs(b *testing.B) []phasetune.RunSpec {
	b.Helper()
	suite, err := phasetune.Suite()
	if err != nil {
		b.Fatal(err)
	}
	variants := []phasetune.TechniqueParams{
		phasetune.BestParams(),
		{Technique: phasetune.BasicBlock, MinSize: 15, PropagateThroughUntyped: true},
		{Technique: phasetune.Interval, MinSize: 45, PropagateThroughUntyped: true},
	}
	var specs []phasetune.RunSpec
	for _, seed := range []uint64{1, 2} {
		w := phasetune.NewWorkload(suite, 4, 8, seed)
		for _, params := range variants {
			specs = append(specs, phasetune.RunSpec{
				Workload: w, DurationSec: 10, Mode: phasetune.Tuned,
				Params: params, Seed: seed,
			})
		}
	}
	return specs
}

// BenchmarkGridSequential is the pre-sweep architecture: every run calls
// the one-shot Run wrapper, which re-executes the full static pipeline for
// every benchmark in every run.
func BenchmarkGridSequential(b *testing.B) {
	specs := benchSweepSpecs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			_, err := phasetune.Run(phasetune.RunConfig{
				Workload: spec.Workload, DurationSec: spec.DurationSec,
				Mode: spec.Mode, Params: spec.Params,
				Tuning:     phasetune.DefaultTuning(),
				TypingOpts: phasetune.DefaultTyping(), Seed: spec.Seed,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkGridSweep runs the identical grid through Session.Sweep: the
// runs fan across the worker pool and each distinct (benchmark, technique)
// artifact is prepared once per session — later sweeps of the campaign do
// no static-pipeline work at all.
func BenchmarkGridSweep(b *testing.B) {
	specs := benchSweepSpecs(b)
	sess := phasetune.NewSession()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Sweep(context.Background(), specs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	stats := sess.CacheStats()
	b.ReportMetric(float64(stats.Misses), "pipeline-runs")
	b.ReportMetric(float64(stats.Hits), "cache-hits")
	// The session's segment memo records the first iteration and replays
	// the rest: from b.N >= 2 the hit rate is the fraction of chunk
	// lookups served without re-stepping the interpreter.
	memo := sess.MemoStats()
	b.ReportMetric(memo.HitRate(), "memo-hit-rate")
	b.ReportMetric(float64(memo.ReplayedSteps), "memo-replayed-steps")
}
