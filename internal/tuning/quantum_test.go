package tuning

import (
	"testing"

	"phasetune/internal/amp"
	"phasetune/internal/exec"
	"phasetune/internal/perfcnt"
	"phasetune/internal/phase"
)

// TestOnQuantumClosesLongSections verifies the bounded-monitoring extension:
// a section that never reaches another mark still yields samples and a
// decision via end-of-quantum callbacks.
func TestOnQuantumClosesLongSections(t *testing.T) {
	m := amp.Quad2Fast2Slow()
	hw := perfcnt.NewHardware(0)
	cfg := DefaultConfig()
	cfg.SamplesPerType = 1
	cfg.MinSectionInstrs = 10
	cfg.MaxMonitorCycles = 1000
	tu := NewTuner(cfg, m, hw, fakeMarks{0: 0})
	p := &exec.Process{}

	// One mark starts monitoring; the section then runs "forever" with only
	// quantum callbacks.
	act := tu.OnMark(p, 0, 0)
	if act.Mask == 0 {
		t.Fatal("no probe mask")
	}
	for i := 0; i < 10 && !tu.Decided(0); i++ {
		// Simulate a quantum of compute-ish execution (equal IPC per type).
		p.Counters.Add(2000, 2000)
		tu.OnQuantum(p, 0)
	}
	if !tu.Decided(0) {
		t.Fatal("quantum-closed sections never produced a decision")
	}
	if got := tu.Decisions[phase.Type(0)]; got != amp.FastType {
		t.Errorf("compute-like section assigned to %d, want fast", got)
	}
	if hw.InUse() != 0 {
		t.Error("event set leaked after decision")
	}
}

// TestOnQuantumRespectsBound verifies short sections are left alone.
func TestOnQuantumRespectsBound(t *testing.T) {
	m := amp.Quad2Fast2Slow()
	cfg := DefaultConfig()
	cfg.MaxMonitorCycles = 1000000
	tu := NewTuner(cfg, m, perfcnt.NewHardware(0), fakeMarks{0: 0})
	p := &exec.Process{}
	tu.OnMark(p, 0, 0)
	p.Counters.Add(100, 100) // far below the bound
	if act := tu.OnQuantum(p, 0); act.Mask != 0 {
		t.Error("quantum closed a section below the bound")
	}
	if tu.SamplesTaken != 0 {
		t.Error("sample recorded below the bound")
	}
}

// TestOnQuantumDisabled verifies MaxMonitorCycles=0 reverts to the strict
// paper reading.
func TestOnQuantumDisabled(t *testing.T) {
	m := amp.Quad2Fast2Slow()
	cfg := DefaultConfig()
	cfg.MaxMonitorCycles = 0
	tu := NewTuner(cfg, m, perfcnt.NewHardware(0), fakeMarks{0: 0})
	p := &exec.Process{}
	tu.OnMark(p, 0, 0)
	p.Counters.Add(1e9, 1e9)
	if act := tu.OnQuantum(p, 0); act.Mask != 0 {
		t.Error("disabled bound still acted")
	}
}

// TestOnQuantumSteersDecidedSections verifies that after the decision the
// quantum hook pins the remainder of the current section.
func TestOnQuantumSteersDecidedSections(t *testing.T) {
	m := amp.Quad2Fast2Slow()
	cfg := DefaultConfig()
	cfg.SamplesPerType = 1
	cfg.MinSectionInstrs = 10
	cfg.MaxMonitorCycles = 1000
	tu := NewTuner(cfg, m, perfcnt.NewHardware(0), fakeMarks{0: 0})
	p := &exec.Process{}
	tu.OnMark(p, 0, 0)
	var lastMask uint64
	for i := 0; i < 10; i++ {
		// Memory-like: higher IPC when probed on the slow type.
		if tu.mon.active && tu.mon.coreType == amp.SlowType {
			p.Counters.Add(2000, 4100) // IPC ~0.49
		} else {
			p.Counters.Add(2000, 6000) // IPC ~0.33
		}
		if act := tu.OnQuantum(p, 0); act.Mask != 0 {
			lastMask = act.Mask
		}
	}
	if !tu.Decided(0) {
		t.Fatal("no decision")
	}
	if tu.Decisions[phase.Type(0)] != amp.SlowType {
		t.Errorf("memory-like section assigned %d, want slow", tu.Decisions[phase.Type(0)])
	}
	if lastMask != m.TypeMask(amp.SlowType) {
		t.Errorf("last steering mask = %b, want slow type mask", lastMask)
	}
}
