package tuning

import (
	"testing"

	"phasetune/internal/amp"
	"phasetune/internal/exec"
	"phasetune/internal/perfcnt"
	"phasetune/internal/phase"
	"phasetune/internal/place"
)

// fakeMarks is a markTable over a fixed mapping.
type fakeMarks map[int]phase.Type

func (f fakeMarks) MarkType(id int) phase.Type { return f[id] }

func quad() *amp.Machine { return amp.Quad2Fast2Slow() }

func TestSelectMemoryBoundPicksSlow(t *testing.T) {
	m := quad()
	// f[fast]=0.4, f[slow]=0.7: gap 0.3 > δ=0.15 -> slow.
	got := place.Select(m, []float64{0.4, 0.7}, 0.15)
	if got != amp.SlowType {
		t.Errorf("Select = %d, want slow", got)
	}
}

func TestSelectComputeBoundTiePicksFast(t *testing.T) {
	m := quad()
	// Equal IPC: tie-break puts the faster type first; no jump happens.
	got := place.Select(m, []float64{0.9, 0.9}, 0.15)
	if got != amp.FastType {
		t.Errorf("Select = %d, want fast on IPC tie", got)
	}
}

func TestSelectSmallGapStays(t *testing.T) {
	m := quad()
	// Gap below δ: stay at the lowest-IPC candidate (fast here).
	got := place.Select(m, []float64{0.8, 0.9}, 0.15)
	if got != amp.FastType {
		t.Errorf("Select = %d, want fast (gap 0.1 < 0.15)", got)
	}
}

func TestSelectHugeDeltaNeverJumps(t *testing.T) {
	m := quad()
	got := place.Select(m, []float64{0.2, 0.9}, 10)
	if got != amp.FastType {
		t.Errorf("Select = %d, want fast (δ too large to jump)", got)
	}
}

func TestSelectZeroDeltaAlwaysMax(t *testing.T) {
	m := quad()
	got := place.Select(m, []float64{0.5, 0.500001}, 0)
	if got != amp.SlowType {
		t.Errorf("Select = %d, want slow (any gap clears δ=0)", got)
	}
}

func TestSelectMonotoneInDelta(t *testing.T) {
	// As δ grows, the selected candidate's IPC can only go down (fewer
	// jumps are allowed).
	m := quad()
	f := []float64{0.4, 0.7}
	prev := 1e9
	for _, d := range []float64{0, 0.1, 0.2, 0.3, 0.5} {
		sel := place.Select(m, f, d)
		if f[sel] > prev {
			t.Errorf("δ=%g selected higher-IPC candidate than smaller δ", d)
		}
		prev = f[sel]
	}
}

func TestSelectEmpty(t *testing.T) {
	if got := place.Select(quad(), nil, 0.1); got != 0 {
		t.Errorf("Select(empty) = %d, want 0", got)
	}
}

// runMark drives the tuner with a synthetic process that accumulates the
// given per-section counters. The process's image is irrelevant to the
// tuner; only counters matter.
func newProc() *exec.Process {
	return &exec.Process{}
}

func TestTunerDecidesAfterSampling(t *testing.T) {
	m := quad()
	hw := perfcnt.NewHardware(8)
	marks := fakeMarks{0: 0, 1: 1}
	cfg := DefaultConfig()
	cfg.SamplesPerType = 1
	cfg.MinSectionInstrs = 10
	tu := NewTuner(cfg, m, hw, marks)
	p := newProc()

	// First mark of type 0: tuner should steer to some core type and start
	// monitoring.
	act := tu.OnMark(p, 0, 0)
	if act.Mask == 0 {
		t.Fatal("no steering mask on first encounter")
	}
	// Simulate a compute section: equal IPC on both types. Section 1 runs
	// on whatever type was probed; feed counters accordingly.
	p.Counters.Add(1000, 1000) // IPC 1.0

	// Next mark (type 1) closes the section and records a sample.
	act = tu.OnMark(p, 1, 0)
	if act.Mask == 0 {
		t.Fatal("no steering mask for second phase type")
	}
	p.Counters.Add(1000, 2500) // IPC 0.4 for the type-1 section

	// Alternate until both types are decided.
	for i := 0; i < 20 && (!tu.Decided(0) || !tu.Decided(1)); i++ {
		tu.OnMark(p, 0, 0)
		p.Counters.Add(1000, 1000)
		tu.OnMark(p, 1, 0)
		p.Counters.Add(1000, 2500)
	}
	if !tu.Decided(0) || !tu.Decided(1) {
		t.Fatalf("tuner never decided: 0=%v 1=%v after sampling", tu.Decided(0), tu.Decided(1))
	}
	if tu.SamplesTaken < 4 {
		t.Errorf("samples taken = %d, want >= 4 (2 types x 2 core types)", tu.SamplesTaken)
	}
}

func TestTunerDecidedMarksJustSwitch(t *testing.T) {
	m := quad()
	hw := perfcnt.NewHardware(8)
	marks := fakeMarks{0: 0, 1: 1}
	cfg := DefaultConfig()
	cfg.SamplesPerType = 1
	cfg.MinSectionInstrs = 10
	tu := NewTuner(cfg, m, hw, marks)
	p := newProc()
	for i := 0; i < 30 && (!tu.Decided(0) || !tu.Decided(1)); i++ {
		tu.OnMark(p, 0, 0)
		p.Counters.Add(1000, 1000)
		tu.OnMark(p, 1, 0)
		p.Counters.Add(1000, 2500)
	}
	if !tu.Decided(0) {
		t.Fatal("type 0 undecided")
	}
	// After decisions, event sets must all be released.
	if hw.InUse() != 0 {
		t.Errorf("event sets still held after decisions: %d", hw.InUse())
	}
	// A decided mark returns the decision mask without acquiring counters.
	before := hw.Defers()
	act := tu.OnMark(p, 0, 0)
	if act.Mask == 0 {
		t.Error("decided mark did not return a mask")
	}
	if hw.InUse() != 0 || hw.Defers() != before {
		t.Error("decided mark touched counter hardware")
	}
}

func TestTunerComputePinsFastMemoryPinsSlow(t *testing.T) {
	m := quad()
	hw := perfcnt.NewHardware(8)
	marks := fakeMarks{0: 0, 1: 1}
	cfg := DefaultConfig()
	cfg.SamplesPerType = 1
	cfg.MinSectionInstrs = 10
	cfg.Delta = 0.15
	tu := NewTuner(cfg, m, hw, marks)
	p := newProc()
	// Compute section: IPC 1.0 on both types. Memory section: IPC 0.4 fast,
	// 0.7 slow. The probe order is internal; feed IPC by probed type.
	feed := func(pt phase.Type) {
		probed := tu.mon.coreType
		switch {
		case pt == 0:
			p.Counters.Add(1000, 1000)
		case probed == amp.FastType:
			p.Counters.Add(1000, 2500) // 0.4
		default:
			p.Counters.Add(1000, 1429) // ~0.7
		}
	}
	cur := phase.Type(0)
	for i := 0; i < 40 && (!tu.Decided(0) || !tu.Decided(1)); i++ {
		tu.OnMark(p, int(cur), 0)
		feed(cur)
		cur = 1 - cur
	}
	if got := tu.Decisions[0]; got != amp.FastType {
		t.Errorf("compute phase assigned to %d, want fast", got)
	}
	if got := tu.Decisions[1]; got != amp.SlowType {
		t.Errorf("memory phase assigned to %d, want slow", got)
	}
	// Masks: type pin by default.
	if tbl := tu.tables[0]; tbl.mask != m.TypeMask(amp.FastType) {
		t.Errorf("compute mask = %b, want fast type mask", tbl.mask)
	}
}

func TestTunerPinSingleCore(t *testing.T) {
	m := quad()
	hw := perfcnt.NewHardware(8)
	cfg := DefaultConfig()
	cfg.SamplesPerType = 1
	cfg.MinSectionInstrs = 10
	cfg.PinSingleCore = true
	tu := NewTuner(cfg, m, hw, fakeMarks{0: 0, 1: 1})
	p := newProc()
	for i := 0; i < 30 && !tu.Decided(0); i++ {
		tu.OnMark(p, 0, 0)
		p.Counters.Add(1000, 1000)
		tu.OnMark(p, 1, 0)
		p.Counters.Add(1000, 1000)
	}
	tbl := tu.tables[0]
	if n := len(amp.MaskCores(tbl.mask, m.NumCores())); n != 1 {
		t.Errorf("single-core pin selected %d cores", n)
	}
}

func TestAllCoresMode(t *testing.T) {
	m := quad()
	hw := perfcnt.NewHardware(8)
	cfg := DefaultConfig()
	cfg.Mode = ModeAllCores
	tu := NewTuner(cfg, m, hw, fakeMarks{0: 0, 1: 1})
	p := newProc()
	for i := 0; i < 10; i++ {
		act := tu.OnMark(p, i%2, 0)
		if act.Mask != m.AllMask() {
			t.Fatalf("all-cores mode returned mask %b, want all", act.Mask)
		}
	}
	if hw.InUse() != 0 || tu.SamplesTaken != 0 {
		t.Error("all-cores mode monitored")
	}
	if tu.SwitchRequests != 10 {
		t.Errorf("switch requests = %d, want 10 (every mark issues the API call)", tu.SwitchRequests)
	}
}

func TestOffMode(t *testing.T) {
	m := quad()
	cfg := DefaultConfig()
	cfg.Mode = ModeOff
	tu := NewTuner(cfg, m, perfcnt.NewHardware(8), fakeMarks{0: 0})
	p := newProc()
	if act := tu.OnMark(p, 0, 0); act.Mask != 0 {
		t.Error("off mode returned a mask")
	}
}

func TestSameTypeMarkIsNoop(t *testing.T) {
	m := quad()
	cfg := DefaultConfig()
	cfg.SamplesPerType = 1
	cfg.MinSectionInstrs = 10
	tu := NewTuner(cfg, m, perfcnt.NewHardware(8), fakeMarks{0: 0, 1: 0})
	p := newProc()
	tu.OnMark(p, 0, 0)
	p.Counters.Add(1000, 1000)
	req := tu.SwitchRequests
	// Mark 1 has the same phase type: it must not issue a new affinity call
	// (it does close the monitoring section).
	if act := tu.OnMark(p, 1, 0); act.Mask != 0 {
		t.Error("same-type mark issued an affinity call")
	}
	if tu.SwitchRequests != req {
		t.Error("same-type mark counted as switch request")
	}
}

func TestShortSectionsRejected(t *testing.T) {
	m := quad()
	cfg := DefaultConfig()
	cfg.SamplesPerType = 1
	cfg.MinSectionInstrs = 1000
	tu := NewTuner(cfg, m, perfcnt.NewHardware(8), fakeMarks{0: 0, 1: 1})
	p := newProc()
	tu.OnMark(p, 0, 0)
	p.Counters.Add(10, 10) // far below MinSectionInstrs
	tu.OnMark(p, 1, 0)
	if tu.SamplesTaken != 0 {
		t.Error("short section accepted as sample")
	}
}

func TestCounterContentionDefersMonitoring(t *testing.T) {
	m := quad()
	hw := perfcnt.NewHardware(1)
	if !hw.TryAcquire() { // hog the only slot
		t.Fatal("setup: could not hog slot")
	}
	cfg := DefaultConfig()
	cfg.SamplesPerType = 1
	cfg.MinSectionInstrs = 10
	tu := NewTuner(cfg, m, hw, fakeMarks{0: 0, 1: 1})
	p := newProc()
	act := tu.OnMark(p, 0, 0)
	if act.Mask == 0 {
		t.Error("deferred monitoring still must steer the section")
	}
	p.Counters.Add(1000, 1000)
	tu.OnMark(p, 1, 0)
	if tu.SamplesTaken != 0 {
		t.Error("sample recorded without a counter slot")
	}
	if hw.Defers() == 0 {
		t.Error("contention not recorded")
	}
	hw.Release()
}

func TestOnExitReleasesEventSet(t *testing.T) {
	m := quad()
	hw := perfcnt.NewHardware(4)
	cfg := DefaultConfig()
	cfg.SamplesPerType = 1
	cfg.MinSectionInstrs = 10
	tu := NewTuner(cfg, m, hw, fakeMarks{0: 0})
	p := newProc()
	tu.OnMark(p, 0, 0)
	if hw.InUse() != 1 {
		t.Fatalf("monitoring did not acquire a slot")
	}
	p.Counters.Add(5000, 5000)
	tu.OnExit(p)
	if hw.InUse() != 0 {
		t.Error("OnExit leaked the event set")
	}
	if tu.SamplesTaken != 1 {
		t.Error("exit-closed section not recorded as sample")
	}
}

func TestModeString(t *testing.T) {
	if ModeTune.String() != "tune" || ModeAllCores.String() != "all-cores" || ModeOff.String() != "off" {
		t.Error("mode strings wrong")
	}
}

// driveMemDecision alternates a tuner between two phase types until both
// decide, feeding memory-bound counters (higher IPC on the slow type) for
// type 0 and compute counters for type 1.
func driveMemDecision(t *testing.T, tu *Tuner, p *exec.Process) {
	t.Helper()
	cur := phase.Type(0)
	for i := 0; i < 40 && (!tu.Decided(0) || !tu.Decided(1)); i++ {
		tu.OnMark(p, int(cur), 0)
		if cur == 0 {
			if tu.mon.coreType == amp.FastType {
				p.Counters.Add(1000, 2500) // 0.4
			} else {
				p.Counters.Add(1000, 1429) // ~0.7
			}
		} else {
			p.Counters.Add(1000, 1000)
		}
		cur = 1 - cur
	}
	if !tu.Decided(0) || !tu.Decided(1) {
		t.Fatal("tuner never decided both phase types")
	}
}

// TestTunerSpillArbitratesHerd is the capacity-aware static runtime: three
// processes whose memory phase all prefers the quad's slow pair share one
// placement engine, and the engine must spill one of them to the idle fast
// cores (quota for 3 tasks is fast 2 / slow 1, band 1) instead of herding
// all three onto the slow type as the plain pin-to-type runtime does.
func TestTunerSpillArbitratesHerd(t *testing.T) {
	m := quad()
	hw := perfcnt.NewHardware(16)
	marks := fakeMarks{0: 0, 1: 1}
	cfg := DefaultConfig()
	cfg.SamplesPerType = 1
	cfg.MinSectionInstrs = 10
	cfg.Delta = 0.15
	cfg.Spill = true
	eng := place.NewEngine(m, cfg.Delta, place.Config{})

	slowMask := m.TypeMask(amp.SlowType)
	masks := map[uint64]int{}
	for pid := 1; pid <= 3; pid++ {
		tu := NewTuner(cfg, m, hw, marks)
		tu.SetEngine(eng)
		p := &exec.Process{PID: pid}
		driveMemDecision(t, tu, p)
		if tu.Decisions[0] != amp.SlowType {
			t.Fatalf("pid %d: memory phase decision %d, want slow", pid, tu.Decisions[0])
		}
		// Land the process in its memory phase (via the compute phase, so
		// the mark is a real transition) and read the arbitrated mask.
		tu.OnMark(p, 1, 0)
		act := tu.OnMark(p, 0, 0)
		if act.Mask == 0 {
			t.Fatalf("pid %d: decided mark returned no mask", pid)
		}
		masks[act.Mask]++
	}
	if masks[slowMask] == 3 {
		t.Fatalf("all three memory tasks herded onto the slow pair despite spill: %v", masks)
	}
	if masks[m.TypeMask(amp.FastType)] == 0 {
		t.Fatalf("no task spilled to the idle fast cores: %v", masks)
	}
}

// TestTunerWithoutSpillHerds is the control: the plain runtime pins every
// memory phase to the slow type (the herding the spill ablation fixes).
func TestTunerWithoutSpillHerds(t *testing.T) {
	m := quad()
	hw := perfcnt.NewHardware(16)
	marks := fakeMarks{0: 0, 1: 1}
	cfg := DefaultConfig()
	cfg.SamplesPerType = 1
	cfg.MinSectionInstrs = 10
	cfg.Delta = 0.15
	slowMask := m.TypeMask(amp.SlowType)
	for pid := 1; pid <= 3; pid++ {
		tu := NewTuner(cfg, m, hw, marks)
		p := &exec.Process{PID: pid}
		driveMemDecision(t, tu, p)
		tu.OnMark(p, 1, 0)
		if act := tu.OnMark(p, 0, 0); act.Mask != slowMask {
			t.Fatalf("pid %d: plain runtime mask %b, want slow herd %b", pid, act.Mask, slowMask)
		}
	}
}
