// Package tuning implements the paper's dynamic analysis and section-to-core
// assignment (§II-B): the runtime logic embedded in phase marks.
//
// Each process carries one Tuner (the paper's marks are inlined into the
// binary; the Tuner is their shared state). The first executions of each
// phase type are *representative sections*: the tuner steers them across
// core types and measures their IPC through the performance-counter
// interface. Once every core type has enough samples for a phase type, the
// assignment is fixed with Algorithm 2 and every later mark of that type
// reduces to an affinity switch — no further monitoring, which is where the
// paper's "negligible overhead" comes from.
package tuning

import (
	"fmt"

	"phasetune/internal/amp"
	"phasetune/internal/exec"
	"phasetune/internal/perfcnt"
	"phasetune/internal/phase"
	"phasetune/internal/place"
	"phasetune/internal/trace"
)

// Mode selects the runtime behavior of phase marks.
type Mode int

const (
	// ModeTune is normal operation: monitor representatives, then switch.
	ModeTune Mode = iota
	// ModeAllCores makes every mark issue an affinity call naming *all*
	// cores — the paper's time-overhead measurement (§IV-B2): marks run,
	// affinity API is exercised, but placement never changes.
	ModeAllCores
	// ModeOff executes marks with their cost but takes no action.
	ModeOff
)

// Config parameterizes the tuner.
type Config struct {
	// Delta is the paper's IPC threshold δ in Algorithm 2.
	Delta float64
	// SamplesPerType is how many representative sections are measured per
	// (phase type, core type) before deciding.
	SamplesPerType int
	// MinSectionInstrs discards monitoring samples shorter than this many
	// instructions (too short to estimate IPC).
	MinSectionInstrs uint64
	// MaxMonitorCycles bounds one monitoring window: a section still being
	// monitored after this many cycles yields its sample early, and the
	// tuner moves on to probing the next core type within the same section
	// (long sections contain many representative sub-sections). Zero
	// disables the bound — the strict reading of the paper, where samples
	// close only at the next phase mark.
	MaxMonitorCycles uint64
	// Mode selects behavior.
	Mode Mode
	// PinSingleCore pins decided phase types to the single chosen core
	// instead of all cores of its type. The paper's Algorithm 2 returns one
	// core; pinning to the core's *type* lets the OS balance within the
	// type (see DESIGN.md). The type pin is the default; the ablation
	// benchmark compares both.
	PinSingleCore bool
	// Spill enables capacity-aware spill arbitration: decided phase types
	// register their measured per-type rates as claims with a shared
	// placement engine (one per kernel), and masks come from the engine's
	// capacity arbitration instead of a raw type pin. This is the ablation
	// that fixes static pin-to-type herding on memory-dominant workloads
	// (every task's Algorithm 2 choice lands on the slow cores while fast
	// cores idle); see place.Engine.Arbitrate. Implies type-level pinning
	// (PinSingleCore is ignored).
	Spill bool
}

// DefaultConfig is the headline configuration. The paper's Table 2 row uses
// δ = 0.15 on its hardware; our simulated platform's DRAM-bound IPC gap is
// ~0.15 uncontended but compresses to ~0.10 under shared-L2 contention, so
// the equivalent operating point (below the contended memory gap, above
// compute noise) is δ = 0.06. Fig. 6's sweep explores the whole range.
// One sample per core type suffices because Select treats near-ties
// robustly; more samples delay decisions past the last phase mark of
// low-alternation programs.
func DefaultConfig() Config {
	return Config{
		Delta:            0.06,
		SamplesPerType:   1,
		MinSectionInstrs: 200,
		MaxMonitorCycles: 40000,
	}
}

// typeTable is the per-phase-type measurement and decision state.
type typeTable struct {
	samples [][]float64 // per core type: measured IPCs
	counts  []int
	decided bool
	target  amp.CoreTypeID
	mask    uint64
	// dec is the engine decision when spill arbitration is on (nil
	// otherwise): masks then come from the shared engine, not mask.
	dec *place.Decision
}

// monitorState is an in-flight representative-section measurement.
type monitorState struct {
	active   bool
	ptype    phase.Type
	coreType amp.CoreTypeID
	es       perfcnt.EventSet
}

// Tuner is the per-process runtime. It implements exec.MarkHook.
type Tuner struct {
	cfg     Config
	machine *amp.Machine
	hw      *perfcnt.Hardware
	marks   markTable

	// engine is the shared placement engine (one per kernel) when spill
	// arbitration is on; nil reproduces the plain pin-to-type runtime.
	engine *place.Engine
	pid    int

	tables  map[phase.Type]*typeTable
	cur     phase.Type
	mon     monitorState
	allMask uint64
	tr      *trace.Tracer

	// SwitchRequests counts affinity calls issued (diagnostics; actual
	// migrations are counted by the kernel).
	SwitchRequests int
	// SamplesTaken counts accepted monitoring samples.
	SamplesTaken int
	// Decisions records the final core-type choice per phase type.
	Decisions map[phase.Type]amp.CoreTypeID
}

// markTable resolves mark IDs to phase types; exec.Image satisfies it.
type markTable interface {
	MarkType(id int) phase.Type
}

// SetTracer attaches a trace sink to this tuner (nil disables). The
// shared spill engine's tracer is attached by the run driver that owns
// the engine.
func (tu *Tuner) SetTracer(tr *trace.Tracer) { tu.tr = tr }

// NewTuner builds the runtime for one process.
func NewTuner(cfg Config, machine *amp.Machine, hw *perfcnt.Hardware, marks markTable) *Tuner {
	if cfg.SamplesPerType <= 0 {
		cfg.SamplesPerType = 1
	}
	return &Tuner{
		cfg:       cfg,
		machine:   machine,
		hw:        hw,
		marks:     marks,
		tables:    map[phase.Type]*typeTable{},
		cur:       phase.Untyped,
		allMask:   machine.AllMask(),
		Decisions: map[phase.Type]amp.CoreTypeID{},
	}
}

// SetEngine attaches the shared placement engine that capacity-aware spill
// (Config.Spill) arbitrates through. One engine serves every tuner of a
// kernel; the simulator wires it when the run config asks for spill.
func (tu *Tuner) SetEngine(e *place.Engine) { tu.engine = e }

// spilling reports whether masks come from shared-engine arbitration.
func (tu *Tuner) spilling() bool { return tu.engine != nil && tu.cfg.Spill }

// maskFor resolves a decided phase type's affinity mask: the engine's
// arbitrated mask under spill, the fixed pin otherwise. The ledger learns
// whether arbitration parked the process off its chosen type, so asymmetry
// loss under a knowing spill is charged to the spill category.
func (tu *Tuner) maskFor(p *exec.Process, tbl *typeTable) uint64 {
	if tu.spilling() && tbl.dec != nil {
		tu.engine.Enter(tu.pid, *tbl.dec)
		mask := tu.engine.MaskFor(tu.pid)
		p.SetSpilled(mask != tu.machine.TypeMask(tbl.dec.Choice))
		return mask
	}
	return tbl.mask
}

// table returns (allocating) the state for a phase type.
func (tu *Tuner) table(pt phase.Type) *typeTable {
	t, ok := tu.tables[pt]
	if !ok {
		n := len(tu.machine.Types)
		t = &typeTable{samples: make([][]float64, n), counts: make([]int, n)}
		tu.tables[pt] = t
	}
	return t
}

// OnMark implements exec.MarkHook: the executable payload of a phase mark.
func (tu *Tuner) OnMark(p *exec.Process, markID int, coreID int) exec.MarkAction {
	pt := tu.marks.MarkType(markID)
	tu.pid = p.PID

	// A mark ends the section being monitored, whatever its type.
	if tu.mon.active {
		tu.finishMonitor(p)
	}

	switch tu.cfg.Mode {
	case ModeOff:
		tu.cur = pt
		return exec.MarkAction{}
	case ModeAllCores:
		tu.cur = pt
		tu.SwitchRequests++
		return exec.MarkAction{Mask: tu.allMask}
	}

	if pt == tu.cur {
		return exec.MarkAction{} // no transition: nothing to do
	}
	tu.cur = pt
	tbl := tu.table(pt)

	if tbl.decided {
		tu.SwitchRequests++
		return exec.MarkAction{Mask: tu.maskFor(p, tbl)}
	}

	// Still sampling: steer this representative section to the core type
	// with the fewest samples and start monitoring there if a counter event
	// set is free. If none is free we still steer, and sample next time
	// (the paper waits on counters; the deferral is counted by perfcnt).
	// An undecided phase is not a capacity claim — probing overrides
	// arbitration until the decision lands.
	if tu.spilling() {
		tu.engine.Leave(p.PID)
		p.SetSpilled(false)
	}
	ct := tu.nextProbe(tbl, p.PID)
	mask := tu.machine.TypeMask(ct)
	if tu.hw.TryAcquire() {
		tu.mon = monitorState{active: true, ptype: pt, coreType: ct, es: perfcnt.Start(&p.Counters)}
	}
	tu.SwitchRequests++
	return exec.MarkAction{Mask: mask}
}

// nextProbe picks the core type with the fewest accepted samples. Ties
// resolve round-robin from a PID-derived offset so that concurrently
// monitoring processes spread their representative sections across core
// types instead of all probing type 0 first (which would herd every fresh
// process onto the fast pair).
func (tu *Tuner) nextProbe(tbl *typeTable, pid int) amp.CoreTypeID {
	n := len(tbl.counts)
	start := (pid + tu.SamplesTaken) % n
	if start < 0 {
		start = 0
	}
	best, bestN := start, int(^uint(0)>>1)
	for i := 0; i < n; i++ {
		ct := (start + i) % n
		if tbl.counts[ct] < bestN {
			best, bestN = ct, tbl.counts[ct]
		}
	}
	return amp.CoreTypeID(best)
}

// finishMonitor closes the active measurement and records the sample.
func (tu *Tuner) finishMonitor(p *exec.Process) {
	instrs, cycles := tu.mon.es.Stop(&p.Counters)
	tu.hw.Release()
	mon := tu.mon
	tu.mon = monitorState{}
	if instrs < tu.cfg.MinSectionInstrs || cycles == 0 {
		return // too short to be a representative measurement
	}
	tbl := tu.table(mon.ptype)
	if tbl.decided {
		return
	}
	ct := int(mon.coreType)
	tbl.samples[ct] = append(tbl.samples[ct], perfcnt.IPC(instrs, cycles))
	tbl.counts[ct]++
	tu.SamplesTaken++

	for _, n := range tbl.counts {
		if n < tu.cfg.SamplesPerType {
			return
		}
	}
	tu.decide(p, mon.ptype, tbl)
}

// decide fixes the section-to-core assignment for a phase type.
func (tu *Tuner) decide(p *exec.Process, pt phase.Type, tbl *typeTable) {
	f := make([]float64, len(tbl.samples))
	for ct, s := range tbl.samples {
		f[ct] = mean(s)
	}
	tbl.decided = true
	if tu.spilling() {
		dec := tu.engine.Decide(f)
		// Attach the image's shared-cache signature so contention-priced
		// arbitration can project crowding costs. Inert (never read) when
		// the engine's pricing is off.
		if p != nil && p.Img != nil {
			sig := p.Img.MemSignature()
			dec.Mem = &place.MemStats{L2RefsPerInstr: sig.L2RefsPerInstr, Profile: sig.Profile}
		}
		tbl.dec = &dec
		tbl.target = dec.Choice
	} else {
		tbl.target = place.Select(tu.machine, f, tu.cfg.Delta)
		if tu.cfg.PinSingleCore {
			cores := tu.machine.CoresOfType(tbl.target)
			tbl.mask = amp.CoreMask(cores[0])
		} else {
			tbl.mask = tu.machine.TypeMask(tbl.target)
		}
		// The spill path's decision is traced inside engine.Decide; the
		// plain pin-to-type path reports its rationale here.
		if tu.tr != nil {
			tu.tr.InstantNow("place", "decide", trace.PidTasks, tu.pid,
				trace.Arg{Key: "ipc", Value: append([]float64(nil), f...)},
				trace.Arg{Key: "choice", Value: tu.machine.Types[tbl.target].Name},
				trace.Arg{Key: "delta", Value: tu.cfg.Delta},
				trace.Arg{Key: "phase", Value: int(pt)})
		}
	}
	tu.Decisions[pt] = tbl.target
}

// OnExit implements exec.MarkHook: release any held event set and withdraw
// the process's capacity claim.
func (tu *Tuner) OnExit(p *exec.Process) {
	if tu.mon.active {
		tu.finishMonitor(p)
	}
	if tu.spilling() {
		tu.engine.Leave(p.PID)
	}
}

// OnQuantum implements exec.QuantumHook: bounded monitoring windows. When
// the active window has run long enough, its sample is recorded and — if the
// phase type is still undecided — the next core type is probed immediately,
// inside the same section. Once the decision lands, the section is steered
// to its assigned cores without waiting for the next phase mark.
func (tu *Tuner) OnQuantum(p *exec.Process, coreID int) exec.MarkAction {
	if tu.cfg.MaxMonitorCycles == 0 || !tu.mon.active || tu.cfg.Mode != ModeTune {
		return exec.MarkAction{}
	}
	_, cycles := tu.mon.es.Stop(&p.Counters)
	if cycles < tu.cfg.MaxMonitorCycles {
		return exec.MarkAction{}
	}
	pt := tu.mon.ptype
	tu.finishMonitor(p)
	tbl := tu.table(pt)
	if tbl.decided {
		tu.SwitchRequests++
		return exec.MarkAction{Mask: tu.maskFor(p, tbl)}
	}
	ct := tu.nextProbe(tbl, p.PID)
	if tu.hw.TryAcquire() {
		tu.mon = monitorState{active: true, ptype: pt, coreType: ct, es: perfcnt.Start(&p.Counters)}
	}
	tu.SwitchRequests++
	return exec.MarkAction{Mask: tu.machine.TypeMask(ct)}
}

// Decided reports whether the phase type has a fixed assignment.
func (tu *Tuner) Decided(pt phase.Type) bool {
	t, ok := tu.tables[pt]
	return ok && t.decided
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// String renders a mode for diagnostics.
func (m Mode) String() string {
	switch m {
	case ModeTune:
		return "tune"
	case ModeAllCores:
		return "all-cores"
	case ModeOff:
		return "off"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}
