// Package cache models contention on shared last-level caches.
//
// The paper's machine shares each L2 between a pair of cores (§IV-A1), so a
// process's effective cache capacity depends on who runs beside it. This
// model is deliberately analytic and cheap — it is consulted on every basic
// block execution: each L2 group tracks how many processes are currently
// running on its cores, and a process's effective share is the group's
// capacity divided by the occupant count. Combined with the reuse-distance
// profile of the executing block (internal/reuse), this yields the expected
// miss ratio used by the timing model.
package cache

import (
	"fmt"

	"phasetune/internal/amp"
)

// Model tracks per-L2-group occupancy.
type Model struct {
	groups []group
}

type group struct {
	sizeKB    float64
	occupants int
}

// New builds a model for the machine.
func New(m *amp.Machine) *Model {
	md := &Model{groups: make([]group, len(m.L2s))}
	for i, g := range m.L2s {
		md.groups[i] = group{sizeKB: g.SizeKB}
	}
	return md
}

// Attach records that a process began running on a core of the group.
func (m *Model) Attach(groupID int) {
	m.groups[groupID].occupants++
}

// Detach records that a process stopped running on a core of the group.
// It panics if the group has no occupants — that is always a simulator
// accounting bug worth failing loudly on.
func (m *Model) Detach(groupID int) {
	g := &m.groups[groupID]
	if g.occupants <= 0 {
		panic(fmt.Sprintf("cache: detach from empty L2 group %d", groupID))
	}
	g.occupants--
}

// ShareKB returns the effective capacity available to one process running
// on a core of the group: the capacity divided equally among current
// occupants (at least one — the querying process itself).
func (m *Model) ShareKB(groupID int) float64 {
	g := m.groups[groupID]
	n := g.occupants
	if n < 1 {
		n = 1
	}
	return g.sizeKB / float64(n)
}

// Occupants returns the current occupant count of the group (diagnostics).
func (m *Model) Occupants(groupID int) int { return m.groups[groupID].occupants }
