package cache

import (
	"sync"
	"testing"

	"phasetune/internal/amp"
)

func TestShareDividesByOccupants(t *testing.T) {
	m := New(amp.Quad2Fast2Slow())
	if got := m.ShareKB(0); got != 4096 {
		t.Errorf("empty group share = %g, want full 4096", got)
	}
	m.Attach(0)
	if got := m.ShareKB(0); got != 4096 {
		t.Errorf("single occupant share = %g, want 4096", got)
	}
	m.Attach(0)
	if got := m.ShareKB(0); got != 2048 {
		t.Errorf("two occupants share = %g, want 2048", got)
	}
	m.Detach(0)
	if got := m.ShareKB(0); got != 4096 {
		t.Errorf("after detach share = %g, want 4096", got)
	}
}

func TestGroupsIndependent(t *testing.T) {
	m := New(amp.Quad2Fast2Slow())
	m.Attach(0)
	m.Attach(0)
	if m.ShareKB(1) != 4096 {
		t.Error("group 1 affected by group 0 occupancy")
	}
	if m.Occupants(0) != 2 || m.Occupants(1) != 0 {
		t.Errorf("occupants = %d, %d; want 2, 0", m.Occupants(0), m.Occupants(1))
	}
}

func TestDetachEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Detach on empty group did not panic")
		}
	}()
	New(amp.Quad2Fast2Slow()).Detach(0)
}

func TestDifferentGroupSizes(t *testing.T) {
	m := New(amp.ThreeCore2Fast1Slow())
	if m.ShareKB(0) != 4096 || m.ShareKB(1) != 2048 {
		t.Errorf("shares = %g, %g; want 4096, 2048", m.ShareKB(0), m.ShareKB(1))
	}
}

func TestDetachUnderflowIsPerGroup(t *testing.T) {
	// Occupancy elsewhere must not mask an underflow: detaching group 1
	// while only group 0 is occupied is an accounting bug and must panic.
	m := New(amp.Quad2Fast2Slow())
	m.Attach(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Detach on empty group 1 did not panic despite group 0 occupancy")
		}
	}()
	m.Detach(1)
}

func TestDetachExactBalancePanicsOnExtra(t *testing.T) {
	m := New(amp.Hex2Big2Medium2Little())
	for i := 0; i < 3; i++ {
		m.Attach(2)
	}
	for i := 0; i < 3; i++ {
		m.Detach(2)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Detach past exact balance did not panic")
		}
	}()
	m.Detach(2)
}

func TestConcurrentModelsIndependent(t *testing.T) {
	// Concurrent sweep runs each own a Model built from one shared machine
	// description; under -race this pins that New only reads the machine
	// and models never share mutable state.
	machine := amp.Hex2Big2Medium2Little()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := New(machine)
			for i := 0; i < 1000; i++ {
				g := i % len(machine.L2s)
				m.Attach(g)
				if m.ShareKB(g) <= 0 {
					t.Error("non-positive share")
					return
				}
				m.Detach(g)
			}
		}()
	}
	wg.Wait()
}
