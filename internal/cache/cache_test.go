package cache

import (
	"testing"

	"phasetune/internal/amp"
)

func TestShareDividesByOccupants(t *testing.T) {
	m := New(amp.Quad2Fast2Slow())
	if got := m.ShareKB(0); got != 4096 {
		t.Errorf("empty group share = %g, want full 4096", got)
	}
	m.Attach(0)
	if got := m.ShareKB(0); got != 4096 {
		t.Errorf("single occupant share = %g, want 4096", got)
	}
	m.Attach(0)
	if got := m.ShareKB(0); got != 2048 {
		t.Errorf("two occupants share = %g, want 2048", got)
	}
	m.Detach(0)
	if got := m.ShareKB(0); got != 4096 {
		t.Errorf("after detach share = %g, want 4096", got)
	}
}

func TestGroupsIndependent(t *testing.T) {
	m := New(amp.Quad2Fast2Slow())
	m.Attach(0)
	m.Attach(0)
	if m.ShareKB(1) != 4096 {
		t.Error("group 1 affected by group 0 occupancy")
	}
	if m.Occupants(0) != 2 || m.Occupants(1) != 0 {
		t.Errorf("occupants = %d, %d; want 2, 0", m.Occupants(0), m.Occupants(1))
	}
}

func TestDetachEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Detach on empty group did not panic")
		}
	}()
	New(amp.Quad2Fast2Slow()).Detach(0)
}

func TestDifferentGroupSizes(t *testing.T) {
	m := New(amp.ThreeCore2Fast1Slow())
	if m.ShareKB(0) != 4096 || m.ShareKB(1) != 2048 {
		t.Errorf("shares = %g, %g; want 4096, 2048", m.ShareKB(0), m.ShareKB(1))
	}
}
