// Package perfcnt simulates hardware performance counters and the PAPI-like
// interface the paper's dynamic analysis reads IPC through (§III).
//
// Two pieces mirror the real stack:
//
//   - Counters: per-process virtualized instruction/cycle counts, advanced
//     by the interpreter while the process runs (PAPI's per-thread
//     virtualized counting);
//   - Hardware: the finite pool of counter event sets. The paper notes "to
//     deal with limitations that may be imposed by the number of counters or
//     APIs, we require programs to wait for access to the counters"; here a
//     monitoring request that finds no free slot is deferred (the caller
//     retries at the next phase mark) and the contention is counted, so the
//     "processes seldom have to wait" claim is checkable.
package perfcnt

// Counters is a process's virtualized counter state: instructions retired,
// unhalted cycles, and memory references, accumulated only while the process
// runs. MemRefs is the load/store event the online phase detector reads for
// its instruction-mix signature (real PMUs expose it as MEM_INST_RETIRED).
type Counters struct {
	Instructions uint64
	Cycles       uint64
	MemRefs      uint64
}

// Add accumulates a block execution.
func (c *Counters) Add(instrs, cycles uint64) {
	c.Instructions += instrs
	c.Cycles += cycles
}

// AddMem accumulates retired memory references.
func (c *Counters) AddMem(refs uint64) { c.MemRefs += refs }

// AddBatch accumulates a whole run of block executions in one flush. The
// segment memo uses it to replay a cached chunk's counter deltas in O(1);
// because the fields are plain integer totals, a batched add is exactly the
// sum of the per-block adds it replaces.
func (c *Counters) AddBatch(instrs, cycles, memRefs uint64) {
	c.Instructions += instrs
	c.Cycles += cycles
	c.MemRefs += memRefs
}

// IPC returns instructions per cycle for a counter delta; zero cycles yield
// zero (the paper's metric: IPC = instructions retired / cycles, §III).
func IPC(instrs, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(instrs) / float64(cycles)
}

// Hardware is the bounded pool of counter event sets.
type Hardware struct {
	slots  int
	inUse  int
	defers uint64
	peak   int
}

// NewHardware returns a pool with the given number of concurrently usable
// event sets. Non-positive slots mean unlimited.
func NewHardware(slots int) *Hardware {
	return &Hardware{slots: slots}
}

// TryAcquire claims an event set, reporting success. On failure the
// contention counter is incremented.
func (h *Hardware) TryAcquire() bool {
	if h.slots > 0 && h.inUse >= h.slots {
		h.defers++
		return false
	}
	h.inUse++
	if h.inUse > h.peak {
		h.peak = h.inUse
	}
	return true
}

// Release returns an event set to the pool. It panics on over-release,
// which is always a simulator accounting bug.
func (h *Hardware) Release() {
	if h.inUse <= 0 {
		panic("perfcnt: release without acquire")
	}
	h.inUse--
}

// Defers returns how many monitoring requests found no free event set.
func (h *Hardware) Defers() uint64 { return h.defers }

// InUse returns the number of currently held event sets.
func (h *Hardware) InUse() int { return h.inUse }

// Peak returns the maximum simultaneous event sets ever held.
func (h *Hardware) Peak() int { return h.peak }

// EventSet is one active measurement: a snapshot of a process's counters.
type EventSet struct {
	startInstr, startCycles, startMem uint64
}

// Start snapshots the counters, beginning a measurement.
func Start(c *Counters) EventSet {
	return EventSet{startInstr: c.Instructions, startCycles: c.Cycles, startMem: c.MemRefs}
}

// Stop returns the instruction and cycle deltas since Start.
func (es EventSet) Stop(c *Counters) (instrs, cycles uint64) {
	return c.Instructions - es.startInstr, c.Cycles - es.startCycles
}

// StopFull returns the instruction, cycle, and memory-reference deltas since
// Start (the online detector's window read; Stop keeps the two-counter shape
// the static tuner uses).
func (es EventSet) StopFull(c *Counters) (instrs, cycles, memRefs uint64) {
	return c.Instructions - es.startInstr, c.Cycles - es.startCycles, c.MemRefs - es.startMem
}
