package perfcnt

import (
	"math"
	"testing"
)

func TestCountersAdd(t *testing.T) {
	var c Counters
	c.Add(100, 250)
	c.Add(50, 50)
	if c.Instructions != 150 || c.Cycles != 300 {
		t.Errorf("counters = %+v, want 150/300", c)
	}
}

func TestIPC(t *testing.T) {
	if got := IPC(300, 200); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("IPC = %g, want 1.5", got)
	}
	if got := IPC(10, 0); got != 0 {
		t.Errorf("IPC with zero cycles = %g, want 0", got)
	}
}

func TestEventSetDeltas(t *testing.T) {
	var c Counters
	c.Add(100, 200)
	es := Start(&c)
	c.Add(40, 160)
	i, cy := es.Stop(&c)
	if i != 40 || cy != 160 {
		t.Errorf("deltas = %d/%d, want 40/160", i, cy)
	}
}

func TestEventSetFullDeltas(t *testing.T) {
	var c Counters
	c.Add(100, 200)
	c.AddMem(30)
	es := Start(&c)
	c.Add(40, 160)
	c.AddMem(12)
	i, cy, m := es.StopFull(&c)
	if i != 40 || cy != 160 || m != 12 {
		t.Errorf("full deltas = %d/%d/%d, want 40/160/12", i, cy, m)
	}
	// Stop on the same event set must agree with StopFull.
	i2, cy2 := es.Stop(&c)
	if i2 != i || cy2 != cy {
		t.Errorf("Stop disagrees with StopFull: %d/%d vs %d/%d", i2, cy2, i, cy)
	}
}

func TestHardwareBoundedSlots(t *testing.T) {
	h := NewHardware(2)
	if !h.TryAcquire() || !h.TryAcquire() {
		t.Fatal("could not acquire 2 slots")
	}
	if h.TryAcquire() {
		t.Fatal("third acquire succeeded with 2 slots")
	}
	if h.Defers() != 1 {
		t.Errorf("defers = %d, want 1", h.Defers())
	}
	h.Release()
	if !h.TryAcquire() {
		t.Error("acquire after release failed")
	}
	if h.Peak() != 2 {
		t.Errorf("peak = %d, want 2", h.Peak())
	}
}

func TestHardwareUnlimited(t *testing.T) {
	h := NewHardware(0)
	for i := 0; i < 100; i++ {
		if !h.TryAcquire() {
			t.Fatal("unlimited hardware refused acquire")
		}
	}
	if h.InUse() != 100 {
		t.Errorf("in use = %d, want 100", h.InUse())
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	NewHardware(1).Release()
}
