package reuse

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMissRatioMonotoneInCapacity(t *testing.T) {
	err := quick.Check(func(ws, c1, c2 float64) bool {
		ws = math.Abs(ws)
		c1, c2 = math.Abs(c1), math.Abs(c2)
		if c1 > c2 {
			c1, c2 = c2, c1
		}
		p := Profile{WorkingSetKB: ws}
		return p.MissRatio(c2) <= p.MissRatio(c1)+1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMissRatioMonotoneInWorkingSet(t *testing.T) {
	err := quick.Check(func(ws1, ws2, c float64) bool {
		ws1, ws2, c = math.Abs(ws1), math.Abs(ws2), math.Abs(c)
		if ws1 > ws2 {
			ws1, ws2 = ws2, ws1
		}
		a := Profile{WorkingSetKB: ws1}
		b := Profile{WorkingSetKB: ws2}
		return a.MissRatio(c) <= b.MissRatio(c)+1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMissRatioBounds(t *testing.T) {
	p := Profile{WorkingSetKB: 100}
	if r := p.MissRatio(0); r != 1 {
		t.Errorf("MissRatio(0) = %g, want 1", r)
	}
	if r := (Profile{}).MissRatio(64); r != 0 {
		t.Errorf("zero working set MissRatio = %g, want 0", r)
	}
	for _, c := range []float64{1, 10, 100, 1000} {
		r := p.MissRatio(c)
		if r < 0 || r > 1 {
			t.Errorf("MissRatio(%g) = %g outside [0,1]", c, r)
		}
	}
}

func TestL1MissFractionClamps(t *testing.T) {
	if f := (Profile{Locality: 1.5}).L1MissFraction(); f != 0 {
		t.Errorf("L1MissFraction with locality > 1 = %g, want 0", f)
	}
	if f := (Profile{Locality: -0.5}).L1MissFraction(); f != 1 {
		t.Errorf("L1MissFraction with locality < 0 = %g, want 1", f)
	}
	if f := (Profile{Locality: 0.25}).L1MissFraction(); math.Abs(f-0.75) > 1e-12 {
		t.Errorf("L1MissFraction = %g, want 0.75", f)
	}
}

func TestCombineWeights(t *testing.T) {
	a := Profile{WorkingSetKB: 100, Locality: 1}
	b := Profile{WorkingSetKB: 300, Locality: 0}
	c := Combine(a, 1, b, 3)
	if math.Abs(c.WorkingSetKB-250) > 1e-9 {
		t.Errorf("combined working set = %g, want 250", c.WorkingSetKB)
	}
	if math.Abs(c.Locality-0.25) > 1e-9 {
		t.Errorf("combined locality = %g, want 0.25", c.Locality)
	}
	if got := Combine(a, 0, b, 0); got != (Profile{}) {
		t.Errorf("Combine with zero counts = %+v, want zero", got)
	}
}

func TestStackDistanceSequential(t *testing.T) {
	// Repeated sweep over N lines: second sweep sees distance N-1.
	sd := NewStackDist(64)
	const n = 8
	for i := 0; i < n; i++ {
		if d := sd.Access(uint64(i * 64)); d != -1 {
			t.Fatalf("cold access %d had distance %d", i, d)
		}
	}
	for i := 0; i < n; i++ {
		if d := sd.Access(uint64(i * 64)); d != n-1 {
			t.Errorf("second sweep access %d distance = %d, want %d", i, d, n-1)
		}
	}
}

func TestStackDistanceImmediateReuse(t *testing.T) {
	sd := NewStackDist(64)
	sd.Access(0)
	if d := sd.Access(0); d != 0 {
		t.Errorf("immediate reuse distance = %d, want 0", d)
	}
	if d := sd.Access(8); d != 0 {
		t.Errorf("same-line access distance = %d, want 0", d)
	}
}

func TestStackDistanceLineGranularity(t *testing.T) {
	sd := NewStackDist(64)
	sd.Access(0)
	sd.Access(64)
	if d := sd.Access(0); d != 1 {
		t.Errorf("distance after one intervening line = %d, want 1", d)
	}
}

func TestMissRatioFromTraceLRU(t *testing.T) {
	// Cyclic sweep over 8 lines with capacity 4: everything misses (classic
	// LRU worst case).
	var trace []uint64
	for rep := 0; rep < 4; rep++ {
		for i := 0; i < 8; i++ {
			trace = append(trace, uint64(i*64))
		}
	}
	if r := MissRatioFromTrace(trace, 64, 4); r != 1 {
		t.Errorf("cyclic overflow miss ratio = %g, want 1", r)
	}
	// Capacity 8 holds everything: only cold misses.
	if r := MissRatioFromTrace(trace, 64, 8); math.Abs(r-8.0/32.0) > 1e-9 {
		t.Errorf("fitting-cache miss ratio = %g, want 0.25", r)
	}
	if r := MissRatioFromTrace(nil, 64, 4); r != 0 {
		t.Errorf("empty trace miss ratio = %g, want 0", r)
	}
}

func TestFitProfileSeparatesPopulations(t *testing.T) {
	// 60% near reuses (distance 0), 40% far (distance 64 lines = 4 KiB).
	var dists []int
	for i := 0; i < 60; i++ {
		dists = append(dists, 0)
	}
	for i := 0; i < 40; i++ {
		dists = append(dists, 64)
	}
	p := FitProfile(dists, 0, 64, 8)
	if math.Abs(p.Locality-0.6) > 1e-9 {
		t.Errorf("fitted locality = %g, want 0.6", p.Locality)
	}
	if math.Abs(p.WorkingSetKB-4) > 1e-9 {
		t.Errorf("fitted working set = %g KiB, want 4", p.WorkingSetKB)
	}
}

func TestFitProfileEmpty(t *testing.T) {
	if p := FitProfile(nil, 0, 64, 8); p != (Profile{}) {
		t.Errorf("FitProfile(empty) = %+v, want zero", p)
	}
}

func TestAnalyticMatchesTraceShape(t *testing.T) {
	// The analytic exponential model and an exact LRU simulation must agree
	// on ordering: bigger cache -> fewer misses, for a random-ish trace with
	// geometric reuse.
	var trace []uint64
	x := uint64(12345)
	for i := 0; i < 4000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		line := x % 256 // footprint 256 lines = 16 KiB
		trace = append(trace, line*64)
	}
	small := MissRatioFromTrace(trace, 64, 32)
	large := MissRatioFromTrace(trace, 64, 128)
	if small < large {
		t.Errorf("trace miss ratios not monotone: cap32=%g cap128=%g", small, large)
	}
	p := Profile{WorkingSetKB: 16}
	if p.MissRatio(2) < p.MissRatio(8) {
		t.Error("analytic miss ratios not monotone")
	}
}

func TestMissRatioEmptyProfilePrecedence(t *testing.T) {
	// A zero working set means "no shared-cache reuse to lose" and must win
	// over the zero-capacity rule: cache-neutral work never misses, even at
	// a degenerate zero share. This is what keeps compute-bound claims
	// inert under contention pricing.
	empty := Profile{}
	for _, kb := range []float64{0, 1, 4096, -5} {
		if got := empty.MissRatio(kb); got != 0 {
			t.Errorf("empty profile MissRatio(%g) = %g, want 0", kb, got)
		}
	}
	// A real working set at zero (or negative) capacity always misses.
	p := Profile{WorkingSetKB: 512, Locality: 0.9}
	if got := p.MissRatio(0); got != 1 {
		t.Errorf("MissRatio(0) = %g, want 1", got)
	}
	if got := p.MissRatio(-1); got != 1 {
		t.Errorf("MissRatio(-1) = %g, want 1", got)
	}
}

func TestCombineEmptyStreams(t *testing.T) {
	// Zero references on both sides yields the zero profile, not NaN.
	z := Combine(Profile{}, 0, Profile{}, 0)
	if z != (Profile{}) {
		t.Errorf("Combine of empty streams = %+v, want zero profile", z)
	}
	// A zero-count side contributes nothing.
	p := Profile{WorkingSetKB: 256, Locality: 0.5}
	if got := Combine(p, 10, Profile{WorkingSetKB: 9999, Locality: 1}, 0); got != p {
		t.Errorf("Combine with zero-count side = %+v, want %+v", got, p)
	}
}
