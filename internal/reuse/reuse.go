// Package reuse models cache behavior from reuse distances.
//
// The paper's static block typing uses "a rough estimate of cache behavior
// (computation based on reuse distances)" (§II-A3, citing Beyls &
// D'Hollander, "Reuse distance as a metric for cache behavior"). Two pieces
// are provided:
//
//   - Profile: an analytic reuse-distance profile attached to code (derived
//     from the working-set/locality descriptors on memory instructions) that
//     yields an expected miss ratio for any effective cache capacity. The
//     simulator's shared-L2 model and the static cache-behavior feature both
//     evaluate it.
//   - StackDist: an exact Mattson LRU stack-distance calculator over address
//     traces, used by tests to validate the analytic profile's shape and by
//     the typing-accuracy experiment.
package reuse

import (
	"math"
	"sort"
)

// Profile is an analytic reuse-distance profile for a stream of memory
// references. References fall in two populations: a fraction Locality with
// near-zero reuse distance (absorbed by the private L1), and the remainder
// with reuse distances distributed exponentially over a working set of
// WorkingSetKB. The exponential reuse CDF is the standard single-parameter
// fit for steady-state streaming/looping access patterns.
type Profile struct {
	// WorkingSetKB is the mean reuse footprint in KiB of non-L1 references.
	WorkingSetKB float64
	// Locality is the fraction of references absorbed by the L1, in [0,1].
	Locality float64
}

// L1MissFraction returns the fraction of references that miss the private L1
// and are exposed to the shared cache.
func (p Profile) L1MissFraction() float64 {
	l := p.Locality
	if l < 0 {
		l = 0
	} else if l > 1 {
		l = 1
	}
	return 1 - l
}

// MissRatio returns the expected miss ratio of the *L1-missing* references in
// a shared cache of effectiveKB capacity: P(reuse distance > C) under the
// exponential reuse model, exp(-C/WS). A zero working set never misses; a
// zero-capacity cache always misses.
func (p Profile) MissRatio(effectiveKB float64) float64 {
	if p.WorkingSetKB <= 0 {
		return 0
	}
	if effectiveKB <= 0 {
		return 1
	}
	return math.Exp(-effectiveKB / p.WorkingSetKB)
}

// Combine merges two profiles weighted by their reference counts, producing
// the profile of the concatenated stream. Used to aggregate instruction-level
// descriptors into block- and section-level profiles.
func Combine(a Profile, na int, b Profile, nb int) Profile {
	if na+nb == 0 {
		return Profile{}
	}
	wa := float64(na) / float64(na+nb)
	wb := 1 - wa
	return Profile{
		WorkingSetKB: wa*a.WorkingSetKB + wb*b.WorkingSetKB,
		Locality:     wa*a.Locality + wb*b.Locality,
	}
}

// StackDist computes exact LRU stack distances (Mattson et al. 1970) over an
// address trace. Distances are measured in distinct cache lines touched since
// the previous access to the same line.
type StackDist struct {
	lineShift uint
	stack     []uint64 // most recent first
	pos       map[uint64]int
}

// NewStackDist returns a calculator with the given cache-line size in bytes
// (rounded down to a power of two; 64 if non-positive).
func NewStackDist(lineBytes int) *StackDist {
	if lineBytes <= 0 {
		lineBytes = 64
	}
	shift := uint(0)
	for (1 << (shift + 1)) <= lineBytes {
		shift++
	}
	return &StackDist{lineShift: shift, pos: map[uint64]int{}}
}

// Access records a reference to byte address addr and returns its stack
// distance: the number of distinct lines referenced since the last access to
// addr's line, or -1 for a cold (first) access.
//
// The implementation is the simple O(n) list walk; traces used in tests and
// experiments are small enough that the asymptotically faster tree variants
// are not warranted.
func (s *StackDist) Access(addr uint64) int {
	line := addr >> s.lineShift
	idx, seen := s.pos[line]
	if !seen {
		s.stack = append([]uint64{line}, s.stack...)
		for l, i := range s.pos {
			s.pos[l] = i + 1
		}
		s.pos[line] = 0
		return -1
	}
	// Move to front.
	copy(s.stack[1:idx+1], s.stack[0:idx])
	s.stack[0] = line
	for l, i := range s.pos {
		if i < idx {
			s.pos[l] = i + 1
		}
	}
	s.pos[line] = 0
	return idx
}

// Histogram runs the calculator over a trace and returns the multiset of
// stack distances (cold misses excluded) plus the cold-miss count.
func Histogram(trace []uint64, lineBytes int) (dists []int, cold int) {
	sd := NewStackDist(lineBytes)
	for _, a := range trace {
		d := sd.Access(a)
		if d < 0 {
			cold++
		} else {
			dists = append(dists, d)
		}
	}
	return dists, cold
}

// MissRatioFromTrace returns the fraction of accesses in the trace that miss
// a fully-associative LRU cache of capacityLines lines (cold misses count as
// misses).
func MissRatioFromTrace(trace []uint64, lineBytes, capacityLines int) float64 {
	if len(trace) == 0 {
		return 0
	}
	dists, cold := Histogram(trace, lineBytes)
	misses := cold
	for _, d := range dists {
		if d >= capacityLines {
			misses++
		}
	}
	return float64(misses) / float64(len(trace))
}

// FitProfile fits an exponential Profile to an observed stack-distance
// multiset: Locality is the fraction of distances below l1Lines, and
// WorkingSetKB is the mean distance of the rest converted to KiB.
func FitProfile(dists []int, cold int, lineBytes, l1Lines int) Profile {
	total := len(dists) + cold
	if total == 0 {
		return Profile{}
	}
	near := 0
	var far []int
	for _, d := range dists {
		if d < l1Lines {
			near++
		} else {
			far = append(far, d)
		}
	}
	sort.Ints(far)
	loc := float64(near) / float64(total)
	if len(far) == 0 && cold == 0 {
		return Profile{Locality: loc}
	}
	sum := 0.0
	for _, d := range far {
		sum += float64(d)
	}
	// Cold misses behave like infinite distances; approximate them with the
	// maximum observed distance (or l1Lines when none observed).
	maxd := float64(l1Lines)
	if len(far) > 0 {
		maxd = float64(far[len(far)-1])
	}
	sum += float64(cold) * maxd
	mean := sum / float64(len(far)+cold)
	return Profile{
		WorkingSetKB: mean * float64(lineBytes) / 1024,
		Locality:     loc,
	}
}
