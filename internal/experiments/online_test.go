package experiments

import (
	"testing"

	"phasetune/internal/amp"
)

// showdownConfig returns a scaled config: paper workload width (18 slots)
// over a 100-second window and one seed. All runs are deterministic, so the
// assertions below are exact reproductions, not statistical checks.
func showdownConfig(t *testing.T, seed uint64) Config {
	t.Helper()
	cfg, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	return cfg.Scale(18, 100, []uint64{seed})
}

// rowOf extracts one policy's row for a machine.
func rowOf(t *testing.T, rows []ShowdownRow, machine string, p ShowdownPolicy) ShowdownRow {
	t.Helper()
	for _, r := range rows {
		if r.Machine == machine && r.Policy == p {
			return r
		}
	}
	t.Fatalf("no row for %s/%s", machine, p)
	return ShowdownRow{}
}

// TestShowdownStaticBeatsDynamicOnPhaseStableWorkloads reproduces the
// paper's central claim (§I, §V) as an executable assertion. The suite
// workloads are phase-stable — every program's phases have consistent,
// recurrent behavior (several alternate too quickly for windowed detection
// to track, which is exactly the regime the paper argues static marks win
// in) — and on them:
//
//   - static marks beat online dynamic detection (on these workloads), and
//   - dynamic detection still beats the asymmetry-unaware scheduler on
//     every workload, so the claim is a ranking, not a strawman.
//
// Margins at this operating point (quad, 18 slots, 100 s): static is
// +5-12% over dynamic/probe; dynamic/probe is +3-5% over none.
func TestShowdownStaticBeatsDynamicOnPhaseStableWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-policy workload sweep")
	}
	quad := amp.Quad2Fast2Slow()
	staticWins := 0
	for _, seed := range []uint64{5, 7} {
		cfg := showdownConfig(t, seed)
		rows, err := Showdown(cfg, []*amp.Machine{quad})
		if err != nil {
			t.Fatal(err)
		}
		none := rowOf(t, rows, quad.Name, ShowdownNone)
		static := rowOf(t, rows, quad.Name, ShowdownStatic)
		probe := rowOf(t, rows, quad.Name, ShowdownDynamicProbe)

		if probe.Throughput <= none.Throughput {
			t.Errorf("seed %d: dynamic/probe throughput %.4g does not beat no-tuning %.4g",
				seed, probe.Throughput, none.Throughput)
		}
		if static.Throughput >= probe.Throughput {
			staticWins++
		}

		// The dynamic rows must carry their own cost accounting: monitoring
		// volume, charged overhead, and reassignment counts.
		if probe.MonitorWindows == 0 || probe.MonitorCycles == 0 {
			t.Errorf("seed %d: dynamic/probe row reports no monitoring (windows %.0f cycles %.0f)",
				seed, probe.MonitorWindows, probe.MonitorCycles)
		}
		if probe.OnlineSwitches == 0 || probe.Switches == 0 {
			t.Errorf("seed %d: dynamic/probe row reports no switches (online %.0f, core %.0f)",
				seed, probe.OnlineSwitches, probe.Switches)
		}
	}
	if staticWins == 0 {
		t.Errorf("static marks beat dynamic detection on none of the phase-stable workloads (paper claims at least some)")
	}
}

// TestShowdownDynamicBeatsNoneOnTri extends the dynamic-beats-no-tuning
// assertion to the second AMP machine (§VII tri-core).
func TestShowdownDynamicBeatsNoneOnTri(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-policy workload sweep")
	}
	tri := amp.ThreeCore2Fast1Slow()
	cfg := showdownConfig(t, 5)
	rows, err := Showdown(cfg, []*amp.Machine{tri})
	if err != nil {
		t.Fatal(err)
	}
	none := rowOf(t, rows, tri.Name, ShowdownNone)
	for _, p := range []ShowdownPolicy{ShowdownDynamicGreedy, ShowdownDynamicProbe} {
		r := rowOf(t, rows, tri.Name, p)
		if r.Throughput <= none.Throughput {
			t.Errorf("%s throughput %.4g does not beat no-tuning %.4g", p, r.Throughput, none.Throughput)
		}
	}
}

// TestShowdownCounterContention covers the deferral path at the driver
// level: a tiny bounded pool must defer most window-open attempts while the
// detector still samples.
func TestShowdownCounterContention(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweep")
	}
	cfg := showdownConfig(t, 5)
	res, err := ShowdownCounterContention(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Defers == 0 {
		t.Errorf("expected deferrals with 4 event sets over 18 slots")
	}
	if res.Windows == 0 {
		t.Errorf("detector sampled no windows under contention")
	}
}

// TestShowdownHybridAtLeastStaticOnTriType pins the unified engine's
// headline: on the three-type big/medium/little machine — where static
// pin-to-type herds onto too few cores — the marks+windows hybrid must
// deliver at least static throughput (it shares static's exact boundaries
// but refreshes estimates and spills over capacity).
func TestShowdownHybridAtLeastStaticOnTriType(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-policy workload sweep")
	}
	hex := amp.Hex2Big2Medium2Little()
	cfg := showdownConfig(t, 5)
	rows, err := Showdown(cfg, []*amp.Machine{hex})
	if err != nil {
		t.Fatal(err)
	}
	static := rowOf(t, rows, hex.Name, ShowdownStatic)
	hybrid := rowOf(t, rows, hex.Name, ShowdownHybrid)
	if hybrid.Throughput < static.Throughput {
		t.Errorf("hybrid throughput %.4g below static %.4g on the tri-type machine",
			hybrid.Throughput, static.Throughput)
	}
	// The hybrid row must carry the runtime's own accounting: windows
	// sampled, decisions refreshed, reassignments issued.
	if hybrid.MonitorWindows == 0 || hybrid.OnlineSwitches == 0 {
		t.Errorf("hybrid row reports no monitoring (windows %.0f, switches %.0f)",
			hybrid.MonitorWindows, hybrid.OnlineSwitches)
	}
	// Hybrid executes marks (it is instrumented), unlike the dynamic rows.
	if hybrid.MarksExecuted == 0 {
		t.Errorf("hybrid row executed no marks")
	}
}

// TestShowdownSpillLiftsStaticOnTri pins the herding fix: on the tri-core
// machine (one slow core), capacity-aware spill must lift static
// throughput — the plain runtime piles every memory phase onto the single
// slow core while a fast core idles.
func TestShowdownSpillLiftsStaticOnTri(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-policy workload sweep")
	}
	tri := amp.ThreeCore2Fast1Slow()
	cfg := showdownConfig(t, 5)
	rows, err := Showdown(cfg, []*amp.Machine{tri})
	if err != nil {
		t.Fatal(err)
	}
	static := rowOf(t, rows, tri.Name, ShowdownStatic)
	spill := rowOf(t, rows, tri.Name, ShowdownStaticSpill)
	if spill.Throughput <= static.Throughput {
		t.Errorf("static/spill throughput %.4g does not beat plain static %.4g on tri",
			spill.Throughput, static.Throughput)
	}
	// Spill must also cut the migration volume: arbitration damps the
	// per-mark ping-ponging between over-subscribed types.
	if spill.Switches >= static.Switches {
		t.Errorf("static/spill switches %.0f not below plain static %.0f", spill.Switches, static.Switches)
	}
}
