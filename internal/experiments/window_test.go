package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"phasetune/internal/online"
)

// windowConfig returns a small config for window-sweep assertions.
func windowConfig(t *testing.T) Config {
	t.Helper()
	cfg, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	return cfg.Scale(6, 60, []uint64{5})
}

// TestWindowSweepShape covers the driver: one row per (window, policy) in
// grid order, each with real monitoring activity behind it.
func TestWindowSweepShape(t *testing.T) {
	cfg := windowConfig(t)
	windows := []uint64{4000, 16000}
	policies := []online.PolicyKind{online.Greedy, online.Probe}
	rows, err := WindowSweep(cfg, windows, policies)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(windows)*len(policies) {
		t.Fatalf("%d rows, want %d", len(rows), len(windows)*len(policies))
	}
	i := 0
	for _, w := range windows {
		for _, p := range policies {
			r := rows[i]
			i++
			if r.WindowInstrs != w || r.Policy != p {
				t.Fatalf("row %d = (%d,%s), want (%d,%s)", i-1, r.WindowInstrs, r.Policy, w, p)
			}
			if r.Windows <= 0 {
				t.Errorf("%d/%s: no detection windows accepted", w, p)
			}
			if r.MonitorPct <= 0 {
				t.Errorf("%d/%s: no monitoring overhead charged", w, p)
			}
		}
	}
}

// TestSweepShardsMatchesLocalPool is the experiments-layer determinism
// check: the same grid through the fabric (Shards) and through the local
// worker pool yields byte-identical results.
func TestSweepShardsMatchesLocalPool(t *testing.T) {
	cfg := windowConfig(t)
	grid := windowGrid(cfg, []uint64{8000}, []online.PolicyKind{online.Probe})
	grid = append(grid, showdownGrid(cfg)[:2]...) // add none + static cells

	local := cfg
	want, err := local.sweep(grid)
	if err != nil {
		t.Fatal(err)
	}
	fabric := cfg
	fabric.Cache = nil // workers bring their own caches
	fabric.Shards = 2
	got, err := fabric.sweep(grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range got {
		w, err := json.Marshal(want[i])
		if err != nil {
			t.Fatal(err)
		}
		g, err := json.Marshal(got[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w, g) {
			t.Errorf("cell %d: fabric result differs from local pool", i)
		}
	}
}
