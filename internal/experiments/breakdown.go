package experiments

import (
	"phasetune/internal/amp"
	"phasetune/internal/dist"
	"phasetune/internal/metrics"
	"phasetune/internal/workload"
)

// ---------------------------------------------------------------------------
// Misprediction-cost breakdown map — the quantitative form of §V.
//
// The paper argues static marks beat reactive detection because fast
// phase alternation defeats any fixed monitoring window: a window longer
// than the phase period measures a blend of two behaviors and the detector
// fixes one compromise placement (183.equake's failure mode), while marks
// switch exactly at the boundary at any rate. The showdown shows the gap at
// one operating point; this driver maps it. It sweeps a synthetic
// constant-mix alternator (workload.AltSpec — the equake personality with
// only Alternations varying, so the instruction mix is held constant)
// against the detector's window size, and reports the dynamic-vs-static
// throughput delta over the full (rate × window) grid together with the
// break-even frontier — the largest window at which reactive detection
// still holds its own at each alternation rate. Window-independent policies
// (none, static, oracle) run once per rate; window-dependent ones
// (dynamic/probe, hybrid) run once per (rate, window). Everything flows
// through Config.sweep, so cfg.Shards routes the grid across the fabric
// with byte-identical results.

// breakdownFixed returns the window-independent reference columns of the
// map for a machine. The static reference is the machine's best realizable
// static variant, mirroring the showdown's findings: the plain pin on
// two-type machines (the anchored fleet keeps demand near capacity, so
// spill arbitration only costs), spill arbitration where types > 2 (the
// plain pin leaves the middle type idle and herding would drown the
// misprediction signal the map is after).
func breakdownFixed(machine *amp.Machine) []ShowdownPolicy {
	static := ShowdownStatic
	if len(machine.Types) > 2 {
		static = ShowdownStaticSpill
	}
	return []ShowdownPolicy{ShowdownNone, static, ShowdownOracle}
}

// breakdownSwept are the window-dependent detection policies of the map.
var breakdownSwept = []ShowdownPolicy{ShowdownDynamicProbe, ShowdownHybrid}

// BreakdownMachines returns the default machine set of the breakdown map:
// the paper's quad AMP and the three-type big/medium/little hex.
func BreakdownMachines() []*amp.Machine {
	return []*amp.Machine{amp.Quad2Fast2Slow(), amp.Hex2Big2Medium2Little()}
}

// BreakdownRow is one (machine, alternation rate, window) cell of the map,
// averaged over the configured seeds. The window-independent columns
// (static/spill, oracle) are repeated across a rate's rows for convenience.
type BreakdownRow struct {
	// Machine is the machine name.
	Machine string
	// Alternations is the alternator's outer-loop count (the swept knob).
	Alternations int
	// Rate is the alternation rate in alternations per billion estimated
	// dynamic instructions (workload.BenchSpec.AltRate) — the map's y axis
	// in the unit the benchgen suite table shares.
	Rate float64
	// WindowInstrs is the detection window size (the map's x axis).
	WindowInstrs uint64
	// StaticPolicy names the machine's static reference variant (plain pin
	// on two-type machines, spill arbitration beyond — see breakdownFixed).
	StaticPolicy ShowdownPolicy
	// StaticPct, DynamicPct, HybridPct, OraclePct are throughput
	// improvements over the stock scheduler on the same (machine, rate)
	// workload, in percent.
	StaticPct, DynamicPct, HybridPct, OraclePct float64
	// DeltaPct is DynamicPct − StaticPct: negative means misprediction has
	// cost reactive detection more than monitoring-free marks gain.
	DeltaPct float64
	// DynSwitches is the dynamic detector's mean reassignment count —
	// rising switch volume as windows blend is the misprediction mechanism.
	DynSwitches float64
	// HasLedger reports whether the campaign carried cycle ledgers
	// (Config.Ledger); the attribution columns below are zero without it.
	HasLedger bool
	// StaticAsymmetryPct and DynAsymmetryPct are the percent of total core
	// time lost to slow-core placement (asymmetry plus capacity spill) under
	// the static reference and the dynamic detector, and DynMonitorPct is
	// the detector's charged sampling overhead on the same scale. They turn
	// the map's throughput delta into its mechanism: rising DynAsymmetryPct
	// at a fixed window is misprediction cost measured directly rather than
	// inferred.
	StaticAsymmetryPct, DynAsymmetryPct, DynMonitorPct float64
}

// BreakdownTolerancePct is the break-even tolerance of the frontier, in
// throughput percentage points: dynamic "holds" a (rate, window) cell
// when its delta against the static reference is within this budget —
// the same half-point budget the hybrid damping trade is held to.
const BreakdownTolerancePct = 0.5

// BreakdownFrontierRow is one rate's break-even point on a machine: the
// largest swept window at which dynamic detection still holds its own
// against static marks (DeltaPct >= -BreakdownTolerancePct).
// BreakEvenWindow 0 means dynamic fell past the tolerance at every swept
// window — the rate is past the frontier entirely.
type BreakdownFrontierRow struct {
	Machine         string
	Alternations    int
	Rate            float64
	BreakEvenWindow uint64
}

// BreakdownResult is the full map plus its frontier.
type BreakdownResult struct {
	// Rows come back machine-major, then rate-major, in window order.
	Rows []BreakdownRow
	// Frontier holds one row per (machine, rate).
	Frontier []BreakdownFrontierRow
	// Windows echoes the swept window axis.
	Windows []uint64
}

// breakdownRunCfg builds one wire spec: a showdown policy cell re-pointed
// at the alternation-axis workload, with the detection window overridden
// for the window-swept policies.
func breakdownRunCfg(cfg Config, p ShowdownPolicy, alternations int, window uint64, seed uint64) dist.Spec {
	sp := showdownRunCfg(cfg, p, seed)
	sp.Queues.Alternations = alternations
	if window > 0 {
		sp.Online.WindowInstrs = window
	}
	return sp
}

// breakdownGrid builds one machine's full grid in wire form: per rate, the
// window-independent reference cells, then the (window × swept-policy)
// detection cells — each over every seed.
func breakdownGrid(cfg Config, alts []int, windows []uint64) []dist.Spec {
	fixed := breakdownFixed(cfg.Machine)
	perRate := (len(fixed) + len(windows)*len(breakdownSwept)) * len(cfg.Seeds)
	grid := make([]dist.Spec, 0, len(alts)*perRate)
	for _, a := range alts {
		for _, p := range fixed {
			for _, seed := range cfg.Seeds {
				grid = append(grid, breakdownRunCfg(cfg, p, a, 0, seed))
			}
		}
		for _, w := range windows {
			for _, p := range breakdownSwept {
				for _, seed := range cfg.Seeds {
					grid = append(grid, breakdownRunCfg(cfg, p, a, w, seed))
				}
			}
		}
	}
	return grid
}

// BreakdownCampaign packages one machine's breakdown grid as a
// distributable campaign (cmd/sweepd -campaign breakdown).
func BreakdownCampaign(cfg Config, machine *amp.Machine, alts []int, windows []uint64) dist.Campaign {
	if alts == nil {
		alts = workload.DefaultAltAlternations()
	}
	if windows == nil {
		windows = DefaultWindowGrid()
	}
	mcfg := cfg
	mcfg.Machine = machine
	return dist.Campaign{Env: mcfg.Env(), Specs: breakdownGrid(mcfg, alts, windows)}
}

// Breakdown runs the misprediction-cost map on the given machines
// (default: BreakdownMachines — quad and three-type hex). Every
// improvement is relative to the stock scheduler on the same (machine,
// rate) workload; compared runs share the alternator workload exactly, per
// the paper's protocol.
func Breakdown(cfg Config, machines []*amp.Machine, alts []int, windows []uint64) (*BreakdownResult, error) {
	if machines == nil {
		machines = BreakdownMachines()
	}
	if alts == nil {
		alts = workload.DefaultAltAlternations()
	}
	if windows == nil {
		windows = DefaultWindowGrid()
	}
	out := &BreakdownResult{Windows: windows}
	for _, machine := range machines {
		mcfg := cfg
		mcfg.Machine = machine
		results, err := mcfg.sweep(breakdownGrid(mcfg, alts, windows))
		if err != nil {
			return nil, err
		}

		// tput averages one policy's cells over seeds; i walks the grid in
		// build order.
		i := 0
		tput := func() float64 {
			var v float64
			for range mcfg.Seeds {
				v += metrics.ThroughputOver(results[i].Samples, 0, mcfg.DurationSec)
				i++
			}
			return v / float64(len(mcfg.Seeds))
		}
		onlineSwitches := func(at int) float64 {
			var v float64
			for k := 0; k < len(mcfg.Seeds); k++ {
				if res := results[at+k]; res.Online != nil {
					v += float64(res.Online.Switches)
				}
			}
			return v / float64(len(mcfg.Seeds))
		}
		// ledgerPcts averages one policy's placement loss (asymmetry + spill)
		// and monitoring overhead over seeds, as percents of total core time.
		ledgerPcts := func(at int) (asym, mon float64, has bool) {
			for k := 0; k < len(mcfg.Seeds); k++ {
				if l := results[at+k].Ledger; l != nil && l.HorizonPs > 0 {
					has = true
					total := float64(l.Cores) * float64(l.HorizonPs)
					asym += 100 * float64(l.Total.AsymmetryPs+l.Total.SpillPs) / total
					mon += 100 * float64(l.Total.MonitorPs) / total
				}
			}
			n := float64(len(mcfg.Seeds))
			return asym / n, mon / n, has
		}

		for _, a := range alts {
			rate := workload.AltSpec(a).AltRate(mcfg.Cost, machine)
			base := tput()
			staticAt := i
			static := tput()
			oracle := tput()
			staticAsym, _, hasLedger := ledgerPcts(staticAt)
			pct := func(v float64) float64 { return metrics.PercentIncrease(base, v) }

			frontier := BreakdownFrontierRow{Machine: machine.Name, Alternations: a, Rate: rate}
			for _, w := range windows {
				dynAt := i
				dynamic := tput()
				hybrid := tput()
				row := BreakdownRow{
					Machine:      machine.Name,
					Alternations: a,
					Rate:         rate,
					WindowInstrs: w,
					StaticPolicy: breakdownFixed(machine)[1],
					StaticPct:    pct(static),
					DynamicPct:   pct(dynamic),
					HybridPct:    pct(hybrid),
					OraclePct:    pct(oracle),
					DeltaPct:     pct(dynamic) - pct(static),
					DynSwitches:  onlineSwitches(dynAt),
				}
				if hasLedger {
					dynAsym, dynMon, _ := ledgerPcts(dynAt)
					row.HasLedger = true
					row.StaticAsymmetryPct = staticAsym
					row.DynAsymmetryPct = dynAsym
					row.DynMonitorPct = dynMon
				}
				if row.DeltaPct >= -BreakdownTolerancePct && w > frontier.BreakEvenWindow {
					frontier.BreakEvenWindow = w
				}
				out.Rows = append(out.Rows, row)
			}
			out.Frontier = append(out.Frontier, frontier)
		}
	}
	return out, nil
}
