package experiments

import (
	"math"

	"phasetune/internal/amp"
	"phasetune/internal/dist"
	"phasetune/internal/metrics"
	"phasetune/internal/osched"
	"phasetune/internal/serve"
	"phasetune/internal/sim"
	"phasetune/internal/trace"
	"phasetune/internal/workload"
)

// ---------------------------------------------------------------------------
// Open-system serving — offered load × placement policy × machine.
//
// Every other experiment is a closed batch; this one is the open system the
// paper's production pitch implies: jobs arrive under a Poisson process,
// demand can exceed core supply (the overcommit dispatcher time-multiplexes
// the excess), and the reported metric is the sojourn-time tail. The axis
// crossing closed-batch intuition: static marks place a job correctly from
// its first mark — admission costs nothing — while the dynamic detector
// pays a warm-up window per admitted job before it can place it, a per-job
// cost that recurs at the arrival rate instead of amortizing over a long
// batch. All percentile math goes through metrics.Quantiles (exact
// nearest-rank), the shared quantile helper.

// ServingPolicies returns the serving policy columns: the stock scheduler,
// the paper's static marks, the online detector (probe placement), the
// marks+windows hybrid, and the perfect-knowledge oracle.
func ServingPolicies() []ShowdownPolicy {
	return []ShowdownPolicy{
		ShowdownNone, ShowdownStatic, ShowdownDynamicProbe,
		ShowdownHybrid, ShowdownOracle,
	}
}

// ServingLoads returns the offered-load axis in multiples of machine
// capacity: under-provisioned through 1.5× overload.
func ServingLoads() []float64 { return []float64{0.5, 0.75, 1.0, 1.25, 1.5} }

// ServingMachines returns the serving machine set: the paper's quad AMP
// and the three-type big/medium/little hex.
func ServingMachines() []*amp.Machine {
	return []*amp.Machine{amp.Quad2Fast2Slow(), amp.Hex2Big2Medium2Little()}
}

// ServingHorizonSec is the admission horizon for a run duration: arrivals
// stop at 75% of the duration so the admitted tail can drain before the
// run ends (completed-job quantiles otherwise censor the slowest jobs).
func ServingHorizonSec(durationSec float64) float64 { return 0.75 * durationSec }

// ServingRow is one (machine, load, policy) cell. Sojourn quantiles pool
// completed jobs across the configured seeds — tail percentiles need the
// sample mass, and the seeds share the same arrival-process family.
type ServingRow struct {
	// Machine is the machine name.
	Machine string
	// Load is the offered load in multiples of machine capacity.
	Load float64
	// RatePerSec is the realized arrival rate.
	RatePerSec float64
	// Policy is the placement policy column.
	Policy ShowdownPolicy
	// Admitted and Completed are mean per-seed job counts.
	Admitted, Completed float64
	// P50, P95, P99, P999 are exact sojourn-time quantiles in seconds,
	// pooled across seeds. NaN when no seed completed a job at this cell.
	P50, P95, P99, P999 float64
	// MeanSojournSec is the pooled mean sojourn time, NaN when no job
	// completed — matching the quantiles, a starved cell must not read as
	// a zero-latency one.
	MeanSojournSec float64
	// PeakRunnable is the maximum simultaneously live task count across
	// seeds — above the core count, the cell exercised overcommit.
	PeakRunnable int
	// OvercommitSlices is the mean count of proportional-share-shortened
	// dispatch slices.
	OvercommitSlices float64
	// HasLedger reports whether the campaign carried cycle ledgers
	// (Config.Ledger); the sojourn decomposition below is zero without it.
	HasLedger bool
	// QueueingSec, ServiceSec, and SlicingSec decompose where admitted jobs'
	// time went (mean per seed, simulated seconds, summed across jobs):
	// waiting in run queues, occupying a core, and paying the overcommit
	// slicing tax. A cell whose queueing dwarfs its service lost to convoys,
	// not to slow execution — the oracle-convoy signature at overload.
	QueueingSec, ServiceSec, SlicingSec float64
}

// servingConfig specializes the shared config to one serving machine:
// overcommit on (open systems run oversubscribed by design) and the
// machine swapped in.
func servingConfig(cfg Config, machine *amp.Machine) Config {
	mcfg := cfg
	mcfg.Machine = machine
	mcfg.Sched.Overcommit.Enabled = true
	return mcfg
}

// servingRunCfg builds one wire spec: the showdown policy lowering with
// the workload swapped for the open-system arrival form.
func servingRunCfg(cfg Config, p ShowdownPolicy, load float64, seed uint64) dist.Spec {
	rc := showdownRunCfg(cfg, p, seed)
	arr := serve.Arrivals(cfg.Machine, workload.Poisson, load, ServingHorizonSec(cfg.DurationSec))
	rc.Queues = workload.Spec{Seed: seed, Arrivals: &arr}
	return rc
}

// servingGrid builds one machine's (load × policy × seed) grid, load-major
// (cfg must already be specialized via servingConfig).
func servingGrid(cfg Config) []dist.Spec {
	loads, policies := ServingLoads(), ServingPolicies()
	grid := make([]dist.Spec, 0, len(loads)*len(policies)*len(cfg.Seeds))
	for _, load := range loads {
		for _, p := range policies {
			for _, seed := range cfg.Seeds {
				grid = append(grid, servingRunCfg(cfg, p, load, seed))
			}
		}
	}
	return grid
}

// ServingCampaign packages one machine's serving grid as a distributable
// campaign (cmd/sweepd serves it to workers). The environment carries the
// overcommit-enabled scheduler, so workers reproduce the open-system
// semantics from the wire form alone.
func ServingCampaign(cfg Config, machine *amp.Machine) dist.Campaign {
	mcfg := servingConfig(cfg, machine)
	return dist.Campaign{Env: mcfg.Env(), Specs: servingGrid(mcfg)}
}

// ServingTraceRun re-runs one representative serving cell — the first
// serving machine, the hybrid policy, offered load 1.0× — with the given
// tracer attached. It runs outside the sweep because a tracer serves one
// run: concurrent sweep cells would interleave their events
// nondeterministically. The cell itself is deterministic (same wire spec
// as the sweep's), so the returned summary matches the sweep's seed-0
// cell and the trace is byte-stable across invocations.
func ServingTraceRun(cfg Config, tr *trace.Tracer) (serve.Stats, error) {
	machine := ServingMachines()[0]
	mcfg := servingConfig(cfg, machine)
	spec := servingRunCfg(mcfg, ShowdownHybrid, 1.0, mcfg.Seeds[0])
	rc, err := mcfg.Env().RunConfig(spec, mcfg.Suite, nil)
	if err != nil {
		return serve.Stats{}, err
	}
	rc.Trace = tr
	res, err := sim.Run(rc)
	if err != nil {
		return serve.Stats{}, err
	}
	return serve.Summarize(res), nil
}

// Serving runs the offered-load × policy latency sweep on the given
// machines (default: ServingMachines — quad and hex). Rows come back
// machine-major, then load-major in ServingLoads order, then policy in
// ServingPolicies order.
func Serving(cfg Config, machines []*amp.Machine) ([]ServingRow, error) {
	if machines == nil {
		machines = ServingMachines()
	}
	loads, policies := ServingLoads(), ServingPolicies()
	var rows []ServingRow
	for _, machine := range machines {
		mcfg := servingConfig(cfg, machine)
		results, err := mcfg.sweep(servingGrid(mcfg))
		if err != nil {
			return nil, err
		}
		nSeeds := len(mcfg.Seeds)
		cell := func(li, pi, si int) int { return (li*len(policies)+pi)*nSeeds + si }
		for li, load := range loads {
			for pi, p := range policies {
				row := ServingRow{
					Machine:    machine.Name,
					Load:       load,
					RatePerSec: serve.OfferedRate(machine, load),
					Policy:     p,
				}
				var pooled []float64
				for si := 0; si < nSeeds; si++ {
					res := results[cell(li, pi, si)]
					row.Admitted += float64(len(res.Tasks))
					soj := metrics.SojournTimes(res.Tasks)
					row.Completed += float64(len(soj))
					pooled = append(pooled, soj...)
					if res.PeakRunnable > row.PeakRunnable {
						row.PeakRunnable = res.PeakRunnable
					}
					row.OvercommitSlices += float64(res.OvercommitSlices)
					if l := res.Ledger; l != nil {
						row.HasLedger = true
						var queuePs, busyPs, slicePs int64
						for _, t := range l.PerTask {
							queuePs += t.QueuePs
							busyPs += t.BusyPs()
							slicePs += t.SlicingPs
						}
						row.QueueingSec += osched.PsToSec(queuePs)
						row.ServiceSec += osched.PsToSec(busyPs - slicePs)
						row.SlicingSec += osched.PsToSec(slicePs)
					}
				}
				n := float64(nSeeds)
				row.Admitted /= n
				row.Completed /= n
				row.OvercommitSlices /= n
				row.QueueingSec /= n
				row.ServiceSec /= n
				row.SlicingSec /= n
				qs := metrics.Quantiles(pooled, 0.50, 0.95, 0.99, 0.999)
				row.P50, row.P95, row.P99, row.P999 = qs[0], qs[1], qs[2], qs[3]
				row.MeanSojournSec = math.NaN()
				if len(pooled) > 0 {
					row.MeanSojournSec = metrics.Mean(pooled)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}
