package experiments

import (
	"testing"

	"phasetune/internal/transition"
)

// quickConfig shrinks everything so the whole experiment surface can be
// smoke-tested in CI time.
func quickConfig(t *testing.T) Config {
	t.Helper()
	cfg, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	return cfg.Scale(6, 60, []uint64{5})
}

func TestTechniqueGridShape(t *testing.T) {
	grid := TechniqueGrid()
	if len(grid) != 18 {
		t.Fatalf("grid has %d variants, want 18 (paper Table 2)", len(grid))
	}
	names := map[string]bool{}
	for _, p := range grid {
		names[p.Name()] = true
	}
	for _, want := range []string{"BB[10,0]", "BB[15,2]", "BB[20,3]", "Int[45]", "Loop[45]", "Loop[60]"} {
		if !names[want] {
			t.Errorf("grid missing %s", want)
		}
	}
}

func TestFig3SpaceOverheadShape(t *testing.T) {
	cfg := quickConfig(t)
	rows, err := Fig3SpaceOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]SpaceRow{}
	for _, r := range rows {
		byName[r.Variant] = r
		if r.Box.Min < 0 || r.Box.Max > 1 {
			t.Errorf("%s: overhead box out of range: %+v", r.Variant, r.Box)
		}
		if len(r.Overheads) != len(cfg.Suite) {
			t.Errorf("%s: %d overhead points", r.Variant, len(r.Overheads))
		}
	}
	// Paper's headline: the loop technique stays under 4%.
	if best := byName["Loop[45]"]; best.Box.Max >= 0.04 {
		t.Errorf("Loop[45] max overhead = %.3f, want < 0.04", best.Box.Max)
	}
	// Larger min size must not increase the median overhead (Fig. 3 trend).
	if byName["BB[20,0]"].Box.Median > byName["BB[10,0]"].Box.Median {
		t.Error("BB median overhead not decreasing with min size")
	}
}

func TestTable1SwitchShape(t *testing.T) {
	if testing.Short() {
		t.Skip("isolation runs")
	}
	cfg := quickConfig(t)
	rows, err := Table1Switches(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SwitchRow{}
	for _, r := range rows {
		byName[r.Benchmark] = r
	}
	// Zero-phase benchmarks never switch (paper: 459, 473).
	if byName["459.GemsFDTD"].Switches != 0 {
		t.Errorf("GemsFDTD switched %d times, want 0", byName["459.GemsFDTD"].Switches)
	}
	if byName["473.astar"].Switches != 0 {
		t.Errorf("astar switched %d times, want 0", byName["473.astar"].Switches)
	}
	// The heavy alternators dominate the switch counts (paper: equake,
	// bzip2, swim, mgrid at the top).
	if byName["183.equake"].Switches < 10*byName["181.mcf"].Switches {
		t.Errorf("equake (%d) not clearly above mcf (%d)",
			byName["183.equake"].Switches, byName["181.mcf"].Switches)
	}
	// Every switching benchmark amortizes: cycles per switch far above the
	// configured switch cost (Fig. 5's conclusion).
	for _, r := range rows {
		if r.Switches == 0 {
			continue
		}
		if r.CyclesPerSwitch < 5*float64(cfg.Sched.CoreSwitchCycles) {
			t.Errorf("%s: %.0f cycles/switch does not amortize cost %d",
				r.Benchmark, r.CyclesPerSwitch, cfg.Sched.CoreSwitchCycles)
		}
	}
}

func TestFig4OverheadSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("workload runs")
	}
	cfg := quickConfig(t)
	rows, err := Fig4TimeOverhead(cfg, []transition.Params{BestParams()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Loop-technique time overhead must be small (paper < 0.2%; allow a few
	// percent at this tiny scale where noise dominates).
	if rows[0].OverheadPct > 3 {
		t.Errorf("Loop[45] time overhead = %.2f%%, want small", rows[0].OverheadPct)
	}
	if rows[0].MarksExecuted == 0 {
		t.Error("no marks executed in overhead mode")
	}
}

func TestSwitchCostMeasurement(t *testing.T) {
	cfg := quickConfig(t)
	r, err := SwitchCost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Switches == 0 {
		t.Fatal("probe never switched")
	}
	// The measured cost must be within a small factor of the configured
	// cost (the probe methodology is approximate, like the paper's).
	configured := float64(cfg.Sched.CoreSwitchCycles + cfg.Sched.ContextSwitchCycles)
	if r.CyclesPerSwitch < 0.3*configured || r.CyclesPerSwitch > 10*configured {
		t.Errorf("measured %.0f cycles/switch vs configured %.0f", r.CyclesPerSwitch, configured)
	}
	if r.DescaledCycles < r.CyclesPerSwitch {
		t.Error("descaled cost not larger than scaled")
	}
}

func TestTypingAccuracy(t *testing.T) {
	cfg := quickConfig(t)
	r, err := TypingAccuracy(cfg, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	if r.Blocks == 0 {
		t.Fatal("no blocks compared")
	}
	// Paper: ~15% misclassified; require clearly-better-than-chance.
	if r.Agreement < 0.7 {
		t.Errorf("typing agreement = %.2f, want >= 0.7", r.Agreement)
	}
}

func TestFig6And7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweeps")
	}
	cfg := quickConfig(t)
	rows, err := Fig6Thresholds(cfg, []float64{0.06})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("fig6 rows = %d", len(rows))
	}
	erows, err := Fig7ClusteringError(cfg, []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(erows) != 2 {
		t.Fatalf("fig7 rows = %d", len(erows))
	}
	if erows[0].ErrorPct != 0 || erows[1].ErrorPct != 30 {
		t.Errorf("error percentages = %v, %v", erows[0].ErrorPct, erows[1].ErrorPct)
	}
}

func TestIsolationTimesComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("isolation runs")
	}
	cfg := quickConfig(t)
	iso, err := IsolationTimes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range cfg.Suite {
		if iso[b.Name()] <= 0 {
			t.Errorf("%s: no isolation time", b.Name())
		}
	}
}

func TestScale(t *testing.T) {
	cfg, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	s := cfg.Scale(4, 100, []uint64{1, 2})
	if s.Slots != 4 || s.DurationSec != 100 || len(s.Seeds) != 2 {
		t.Errorf("Scale produced %+v", s)
	}
	// Original unchanged (value semantics).
	if cfg.Slots == 4 {
		t.Error("Scale mutated the receiver")
	}
}

func TestBestParamsIsLoop45(t *testing.T) {
	p := BestParams()
	if p.Name() != "Loop[45]" {
		t.Errorf("BestParams = %s, want Loop[45]", p.Name())
	}
}
