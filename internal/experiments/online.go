package experiments

import (
	"fmt"

	"phasetune/internal/amp"
	"phasetune/internal/dist"
	"phasetune/internal/metrics"
	"phasetune/internal/online"
	"phasetune/internal/sim"
	"phasetune/internal/transition"
	"phasetune/internal/workload"
)

// ---------------------------------------------------------------------------
// §V showdown — static marks vs dynamic online detection vs oracle.
//
// The paper's central claim is comparative: static phase marks beat purely
// dynamic detection because they avoid runtime monitoring and misprediction,
// and both beat the asymmetry-unaware scheduler. The paper asserts this
// against the literature; this driver measures it, running the same
// workloads under every placement policy on both AMP machines.

// ShowdownPolicy identifies one column of the showdown.
type ShowdownPolicy int

const (
	// ShowdownNone is the stock scheduler baseline.
	ShowdownNone ShowdownPolicy = iota
	// ShowdownStatic is the paper's technique (phase marks, Loop[45]).
	ShowdownStatic
	// ShowdownStaticSpill is the paper's technique with capacity-aware
	// spill arbitration (tuning.Config.Spill through the shared placement
	// engine) — the ablation that fixes static pin-to-type herding on
	// memory-dominant mixes.
	ShowdownStaticSpill
	// ShowdownDynamicGreedy is online detection with greedy IPC placement.
	ShowdownDynamicGreedy
	// ShowdownDynamicProbe is online detection with the sampling probe and
	// Algorithm 2 placement.
	ShowdownDynamicProbe
	// ShowdownHybrid is the marks+windows hybrid: mark boundaries, window-
	// refreshed IPC estimates, shared-engine arbitration.
	ShowdownHybrid
	// ShowdownHybridDamped is the hybrid with re-decision drift damping
	// (online.HybridConfig.Drift at online.DefaultDrift): refreshed
	// estimates re-enter Algorithm 2 only when the per-phase means moved
	// more than ε — the switch-volume-vs-throughput trade as a column.
	ShowdownHybridDamped
	// ShowdownOracle is perfect-knowledge placement (upper bound).
	ShowdownOracle
)

// String names the policy column.
func (p ShowdownPolicy) String() string {
	switch p {
	case ShowdownNone:
		return "none"
	case ShowdownStatic:
		return "static"
	case ShowdownStaticSpill:
		return "static/spill"
	case ShowdownDynamicGreedy:
		return "dynamic/greedy"
	case ShowdownDynamicProbe:
		return "dynamic/probe"
	case ShowdownHybrid:
		return "hybrid"
	case ShowdownHybridDamped:
		return "hybrid/damped"
	case ShowdownOracle:
		return "oracle"
	}
	return fmt.Sprintf("showdown(%d)", int(p))
}

// ShowdownPolicies returns the full column set in display order.
func ShowdownPolicies() []ShowdownPolicy {
	return []ShowdownPolicy{
		ShowdownNone, ShowdownStatic, ShowdownStaticSpill,
		ShowdownDynamicGreedy, ShowdownDynamicProbe,
		ShowdownHybrid, ShowdownHybridDamped, ShowdownOracle,
	}
}

// ShowdownRow is one (machine, policy) cell of the showdown table, averaged
// over the configured seeds.
type ShowdownRow struct {
	// Machine is the machine name (quad-2f2s, tri-2f1s).
	Machine string
	// Policy is the placement policy.
	Policy ShowdownPolicy
	// Throughput is mean committed instructions per second.
	Throughput float64
	// ThroughputPct is the throughput improvement over ShowdownNone on the
	// same machine, in percent.
	ThroughputPct float64
	// AvgTimePct and MatchedAvgPct are average-process-time decreases versus
	// ShowdownNone (raw and instance-matched).
	AvgTimePct, MatchedAvgPct float64
	// Switches is the mean core-switch count across the run.
	Switches float64
	// MarksExecuted is the mean dynamic phase-mark count (instrumented
	// policies only).
	MarksExecuted float64
	// MonitorWindows, MonitorCycles and MonitorPct report the dynamic
	// detector's sampling volume and charged overhead (MonitorPct is charged
	// cycles relative to total committed cycles); zero for mark-based rows.
	MonitorWindows float64
	MonitorCycles  float64
	MonitorPct     float64
	// OnlineSwitches is the mean number of detector-requested reassignments.
	OnlineSwitches float64
	// Refreshes and Damped report the hybrid's re-decision traffic: mean
	// post-fix Algorithm 2 re-entries, and mean re-entries suppressed by the
	// drift threshold (hybrid/damped column only).
	Refreshes float64
	Damped    float64
	// CounterDefers is the mean number of monitoring requests that found no
	// free counter event set.
	CounterDefers float64
	// HasLedger reports whether the campaign ran with cycle accounting
	// (Config.Ledger); the attribution columns below are zero without it.
	HasLedger bool
	// UsefulPct, AsymmetryPct, SpillPct, OverheadPct, and IdlePct decompose
	// the machine's total core time (cores × horizon) in percent, averaged
	// over seeds: work at the fastest clock, loss to mispredicted slow-core
	// placement, loss to knowing capacity spills, the sum of the
	// instrumentation taxes (marks, monitoring, migration, context switch,
	// overcommit slicing), and unclaimed core time. The five columns sum to
	// 100 up to rounding — the where-did-the-cycles-go answer per policy.
	UsefulPct, AsymmetryPct, SpillPct, OverheadPct, IdlePct float64
}

// ParseShowdownPolicy maps a policy column name (the String form, e.g.
// "static" or "hybrid/damped") back to its ShowdownPolicy — the CLI entry
// point cmd/runcmp uses to diff two named policies.
func ParseShowdownPolicy(name string) (ShowdownPolicy, error) {
	for _, p := range ShowdownPolicies() {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown showdown policy %q (want one of %v)", name, ShowdownPolicies())
}

// showdownRunCfg builds one wire spec for a policy on a machine-specific
// config (cfg.Machine and cfg.Suite must already match).
func showdownRunCfg(cfg Config, p ShowdownPolicy, seed uint64) dist.Spec {
	mode := sim.Baseline
	params := transition.Params{}
	ocfg := online.Config{}
	tcfg := cfg.Tuning
	switch p {
	case ShowdownStatic:
		mode, params = sim.Tuned, BestParams()
	case ShowdownStaticSpill:
		mode, params = sim.Tuned, BestParams()
		tcfg.Spill = true
	case ShowdownDynamicGreedy:
		mode = sim.Dynamic
		ocfg = online.DefaultConfig()
		ocfg.Policy = online.Greedy
		ocfg.Delta = cfg.Tuning.Delta
	case ShowdownDynamicProbe:
		mode = sim.Dynamic
		ocfg = online.DefaultConfig()
		ocfg.Policy = online.Probe
		ocfg.Delta = cfg.Tuning.Delta
	case ShowdownHybrid:
		mode, params = sim.Hybrid, BestParams()
		ocfg = online.DefaultConfig()
		ocfg.Delta = cfg.Tuning.Delta
	case ShowdownHybridDamped:
		mode, params = sim.Hybrid, BestParams()
		ocfg = online.DefaultConfig()
		ocfg.Delta = cfg.Tuning.Delta
		ocfg.Hybrid.Drift = online.DefaultDrift
	case ShowdownOracle:
		mode, params = sim.Oracle, BestParams()
	}
	rc := cfg.runCfg(mode, params, tcfg, 0, seed, cfg.DurationSec)
	rc.Online = ocfg
	return rc
}

// ShowdownMachines returns the default showdown machine set: the paper's
// quad AMP, the §VII tri-core, and the three-type big/medium/little hex —
// the §VI-C generalization that makes the campaign genuinely large.
func ShowdownMachines() []*amp.Machine {
	return []*amp.Machine{amp.Quad2Fast2Slow(), amp.ThreeCore2Fast1Slow(), amp.Hex2Big2Medium2Little()}
}

// showdownGrid builds one machine's full (policy x seed) grid in wire form
// (cfg.Machine must already be set to that machine).
func showdownGrid(cfg Config) []dist.Spec {
	policies := ShowdownPolicies()
	grid := make([]dist.Spec, 0, len(policies)*len(cfg.Seeds))
	for _, p := range policies {
		for _, seed := range cfg.Seeds {
			grid = append(grid, showdownRunCfg(cfg, p, seed))
		}
	}
	return grid
}

// ShowdownCampaign packages one machine's showdown grid as a distributable
// campaign (cmd/sweepd serves it to workers).
func ShowdownCampaign(cfg Config, machine *amp.Machine) dist.Campaign {
	mcfg := cfg
	mcfg.Machine = machine
	return dist.Campaign{Env: mcfg.Env(), Specs: showdownGrid(mcfg)}
}

// Showdown runs the full static-vs-dynamic-vs-oracle comparison on the
// given machines (default: ShowdownMachines — the paper's quad AMP, the
// §VII tri-core, and the three-type hex). Rows come back machine-major in
// ShowdownPolicies order; every improvement column is relative to the same
// machine's ShowdownNone row. All runs of a machine share workload queues
// per seed (the paper's comparison protocol) and sweep concurrently over
// the shared artifact cache — or across the fabric when cfg.Shards > 1.
func Showdown(cfg Config, machines []*amp.Machine) ([]ShowdownRow, error) {
	if machines == nil {
		machines = ShowdownMachines()
	}
	policies := ShowdownPolicies()
	var rows []ShowdownRow
	for _, machine := range machines {
		mcfg := cfg
		mcfg.Machine = machine
		suite, err := workload.Suite(mcfg.Cost, machine)
		if err != nil {
			return nil, err
		}
		mcfg.Suite = suite

		results, err := mcfg.sweep(showdownGrid(mcfg))
		if err != nil {
			return nil, err
		}
		cell := func(pi, si int) *sim.Result { return results[pi*len(mcfg.Seeds)+si] }

		for pi, p := range policies {
			row := ShowdownRow{Machine: machine.Name, Policy: p}
			var tputs, tputPcts, avgPcts, matchedPcts []float64
			for si := range mcfg.Seeds {
				base, res := cell(0, si), cell(pi, si)
				bt := metrics.ThroughputOver(base.Samples, 0, mcfg.DurationSec)
				rt := metrics.ThroughputOver(res.Samples, 0, mcfg.DurationSec)
				tputs = append(tputs, rt)
				tputPcts = append(tputPcts, metrics.PercentIncrease(bt, rt))
				avgPcts = append(avgPcts, metrics.PercentDecrease(
					metrics.AvgProcessTime(base.Tasks), metrics.AvgProcessTime(res.Tasks)))
				matchedPcts = append(matchedPcts, matchedAvgImprovement(base.Tasks, res.Tasks))

				var switches int
				var marks, cycles uint64
				for _, t := range res.Tasks {
					switches += t.Migrations
					marks += t.MarksExecuted
					cycles += t.Cycles
				}
				row.Switches += float64(switches)
				row.MarksExecuted += float64(marks)
				row.CounterDefers += float64(res.CounterDefers)
				if res.Online != nil {
					row.MonitorWindows += float64(res.Online.Windows)
					row.MonitorCycles += float64(res.Online.ChargedCycles)
					row.OnlineSwitches += float64(res.Online.Switches)
					row.Refreshes += float64(res.Online.Refreshes)
					row.Damped += float64(res.Online.Damped)
					if cycles > 0 {
						row.MonitorPct += 100 * float64(res.Online.ChargedCycles) / float64(cycles)
					}
				}
				if l := res.Ledger; l != nil && l.HorizonPs > 0 {
					row.HasLedger = true
					total := float64(l.Cores) * float64(l.HorizonPs)
					overheadPs := l.Total.MarksPs + l.Total.MonitorPs +
						l.Total.MigrationPs + l.Total.CtxSwitchPs + l.Total.SlicingPs
					row.UsefulPct += 100 * float64(l.Total.UsefulPs) / total
					row.AsymmetryPct += 100 * float64(l.Total.AsymmetryPs) / total
					row.SpillPct += 100 * float64(l.Total.SpillPs) / total
					row.OverheadPct += 100 * float64(overheadPs) / total
					row.IdlePct += 100 * float64(l.Total.IdlePs) / total
				}
			}
			n := float64(len(mcfg.Seeds))
			row.Throughput = metrics.Mean(tputs)
			row.ThroughputPct = metrics.Mean(tputPcts)
			row.AvgTimePct = metrics.Mean(avgPcts)
			row.MatchedAvgPct = metrics.Mean(matchedPcts)
			row.Switches /= n
			row.MarksExecuted /= n
			row.MonitorWindows /= n
			row.MonitorCycles /= n
			row.MonitorPct /= n
			row.OnlineSwitches /= n
			row.Refreshes /= n
			row.Damped /= n
			row.CounterDefers /= n
			row.UsefulPct /= n
			row.AsymmetryPct /= n
			row.SpillPct /= n
			row.OverheadPct /= n
			row.IdlePct /= n
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// LedgerCell runs one showdown cell — one (machine, policy, seed) — with
// cycle accounting forced on and returns the full result, ledger included.
// cmd/runcmp uses it to rebuild the two sides of a policy diff without
// sweeping the whole grid; cfg.Machine selects the machine and cfg.Suite
// may be nil (it is regenerated here).
func LedgerCell(cfg Config, p ShowdownPolicy, seed uint64) (*sim.Result, error) {
	mcfg := cfg
	mcfg.Ledger = true
	suite, err := workload.Suite(mcfg.Cost, mcfg.Machine)
	if err != nil {
		return nil, err
	}
	mcfg.Suite = suite
	results, err := mcfg.sweep([]dist.Spec{showdownRunCfg(mcfg, p, seed)})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// ShowdownContention reruns the probe showdown cell with a small bounded
// counter pool, reporting how the dynamic detector degrades when event sets
// are scarce (the perfcnt deferral path under periodic sampling).
type ShowdownContentionResult struct {
	// Slots is the bounded pool size.
	Slots int
	// Defers counts monitoring requests that found no free event set.
	Defers uint64
	// Windows counts detection windows still accepted.
	Windows uint64
	// ThroughputPct is the throughput improvement over baseline.
	ThroughputPct float64
}

// ShowdownCounterContention measures the dynamic detector under counter
// scarcity on the config machine.
func ShowdownCounterContention(cfg Config, slots int) (ShowdownContentionResult, error) {
	sched := cfg.Sched
	sched.CounterSlots = slots
	c := cfg
	c.Sched = sched
	seed := c.Seeds[0]
	grid := []dist.Spec{
		showdownRunCfg(c, ShowdownNone, seed),
		showdownRunCfg(c, ShowdownDynamicProbe, seed),
	}
	results, err := c.sweep(grid)
	if err != nil {
		return ShowdownContentionResult{}, err
	}
	base, dyn := results[0], results[1]
	out := ShowdownContentionResult{
		Slots:  slots,
		Defers: dyn.CounterDefers,
		ThroughputPct: metrics.PercentIncrease(
			metrics.ThroughputOver(base.Samples, 0, c.DurationSec),
			metrics.ThroughputOver(dyn.Samples, 0, c.DurationSec)),
	}
	if dyn.Online != nil {
		out.Windows = dyn.Online.Windows
	}
	return out, nil
}
