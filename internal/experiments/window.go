package experiments

import (
	"phasetune/internal/dist"
	"phasetune/internal/metrics"
	"phasetune/internal/online"
	"phasetune/internal/sim"
	"phasetune/internal/transition"
)

// ---------------------------------------------------------------------------
// Window-size sweep — the dynamic analogue of Fig. 6's δ sweep.
//
// The online detector's WindowInstrs is its central latency-vs-evidence
// knob: small windows classify on thin evidence (fast reaction, more
// misprediction and monitoring overhead per retired instruction), large
// windows smear short phases into blended signatures (183.equake's failure
// mode) but settle long ones cheaply. The paper sweeps δ for the static
// runtime; this driver sweeps the window for the dynamic one, per policy.

// DefaultWindowGrid is the swept window-size axis, log-spaced around the
// showdown operating point (8000).
func DefaultWindowGrid() []uint64 {
	return []uint64{2000, 4000, 8000, 16000, 32000}
}

// WindowRow is one (window, policy) cell, averaged over seeds.
type WindowRow struct {
	// WindowInstrs is the detection window size.
	WindowInstrs uint64
	// Policy is the dynamic reassignment policy.
	Policy online.PolicyKind
	// ThroughputPct is throughput improvement over the stock-scheduler
	// baseline, in percent.
	ThroughputPct float64
	// OnlineSwitches is the mean detector-requested reassignment count.
	OnlineSwitches float64
	// Windows is the mean accepted detection-window count.
	Windows float64
	// MonitorPct is charged monitoring cycles relative to total committed
	// cycles, in percent.
	MonitorPct float64
}

// windowGrid builds the (window x policy x seed) dynamic grid in wire form.
func windowGrid(cfg Config, windows []uint64, policies []online.PolicyKind) []dist.Spec {
	grid := make([]dist.Spec, 0, len(windows)*len(policies)*len(cfg.Seeds))
	for _, wsize := range windows {
		for _, pol := range policies {
			for _, seed := range cfg.Seeds {
				sp := cfg.runCfg(sim.Dynamic, transition.Params{}, cfg.Tuning, 0, seed, cfg.DurationSec)
				ocfg := online.DefaultConfig()
				ocfg.Policy = pol
				ocfg.Delta = cfg.Tuning.Delta
				ocfg.WindowInstrs = wsize
				sp.Online = ocfg
				grid = append(grid, sp)
			}
		}
	}
	return grid
}

// WindowCampaign packages the window sweep's dynamic grid as a
// distributable campaign (cmd/sweepd -campaign window).
func WindowCampaign(cfg Config, windows []uint64, policies []online.PolicyKind) dist.Campaign {
	if windows == nil {
		windows = DefaultWindowGrid()
	}
	if policies == nil {
		policies = []online.PolicyKind{online.Greedy, online.Probe}
	}
	return dist.Campaign{Env: cfg.Env(), Specs: windowGrid(cfg, windows, policies)}
}

// WindowSweep sweeps the online detector's window size per policy against
// per-seed baselines. The whole grid runs on the sweep engine, so
// cfg.Shards fans it across fabric workers unchanged.
func WindowSweep(cfg Config, windows []uint64, policies []online.PolicyKind) ([]WindowRow, error) {
	if windows == nil {
		windows = DefaultWindowGrid()
	}
	if policies == nil {
		policies = []online.PolicyKind{online.Greedy, online.Probe}
	}
	bases, err := cfg.baselines(cfg.DurationSec)
	if err != nil {
		return nil, err
	}
	results, err := cfg.sweep(windowGrid(cfg, windows, policies))
	if err != nil {
		return nil, err
	}

	rows := make([]WindowRow, 0, len(windows)*len(policies))
	i := 0
	for _, wsize := range windows {
		for _, pol := range policies {
			row := WindowRow{WindowInstrs: wsize, Policy: pol}
			var tputs []float64
			for _, seed := range cfg.Seeds {
				res := results[i]
				i++
				base := bases[seed]
				bt := metrics.ThroughputOver(base.Samples, 0, cfg.DurationSec)
				rt := metrics.ThroughputOver(res.Samples, 0, cfg.DurationSec)
				tputs = append(tputs, metrics.PercentIncrease(bt, rt))
				if res.Online == nil {
					continue
				}
				row.OnlineSwitches += float64(res.Online.Switches)
				row.Windows += float64(res.Online.Windows)
				var cycles uint64
				for _, t := range res.Tasks {
					cycles += t.Cycles
				}
				if cycles > 0 {
					row.MonitorPct += 100 * float64(res.Online.ChargedCycles) / float64(cycles)
				}
			}
			n := float64(len(cfg.Seeds))
			row.ThroughputPct = metrics.Mean(tputs)
			row.OnlineSwitches /= n
			row.Windows /= n
			row.MonitorPct /= n
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// TechniqueCampaign packages the Table 2 tuned grid (every technique
// variant x seed over the configured duration) as a distributable campaign
// (cmd/sweepd -campaign grid).
func TechniqueCampaign(cfg Config) dist.Campaign {
	variants := TechniqueGrid()
	grid := make([]dist.Spec, 0, len(variants)*len(cfg.Seeds))
	for _, params := range variants {
		for _, seed := range cfg.Seeds {
			grid = append(grid, cfg.runCfg(sim.Tuned, params, cfg.Tuning, 0, seed, cfg.DurationSec))
		}
	}
	return dist.Campaign{Env: cfg.Env(), Specs: grid}
}
