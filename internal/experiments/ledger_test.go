package experiments

import (
	"bytes"
	"context"
	"testing"

	"phasetune/internal/amp"
	"phasetune/internal/dist"
	"phasetune/internal/sim"
	"phasetune/internal/workload"
)

// ledgerConfig returns a small scaled config with cycle accounting on: four
// slots over a 20-second window and one seed — enough to exercise every
// charge path (marks, monitoring, migrations, spills, slicing) without the
// showdown's full width.
func ledgerConfig(t *testing.T) Config {
	t.Helper()
	cfg, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	cfg = cfg.Scale(4, 20, []uint64{3})
	cfg.Ledger = true
	return cfg
}

// ledgerPolicies is the conservation test's policy axis: the stock
// scheduler, both paper techniques, a pure dynamic detector, and the
// oracle — every distinct charge-site combination (no instrumentation;
// marks; marks+windows; windows+probes; perfect knowledge).
func ledgerPolicies() []ShowdownPolicy {
	return []ShowdownPolicy{
		ShowdownNone, ShowdownStatic, ShowdownDynamicProbe,
		ShowdownHybrid, ShowdownOracle,
	}
}

// TestLedgerConservation property-checks the ledger's integer identity —
// Σ categories == cores × horizon, per core and machine-wide — across every
// policy, all three machines, and both system modes (closed batch and open
// serving under overcommit). Conservation is structural, so one seed per
// cell suffices: there is no statistical escape hatch for a leak.
func TestLedgerConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("policy x machine x mode grid")
	}
	machines := []*amp.Machine{
		amp.Quad2Fast2Slow(), amp.ThreeCore2Fast1Slow(), amp.Hex2Big2Medium2Little(),
	}
	for _, machine := range machines {
		for _, mode := range []string{"closed", "open"} {
			mcfg := ledgerConfig(t)
			mcfg.Machine = machine
			if mode == "open" {
				mcfg = servingConfig(mcfg, machine)
			}
			suite, err := workload.Suite(mcfg.Cost, machine)
			if err != nil {
				t.Fatal(err)
			}
			mcfg.Suite = suite
			for _, p := range ledgerPolicies() {
				spec := showdownRunCfg(mcfg, p, mcfg.Seeds[0])
				if mode == "open" {
					// 1.25x capacity so admission outruns the cores and the
					// overcommit dispatcher's slicing path gets charged.
					spec = servingRunCfg(mcfg, p, 1.25, mcfg.Seeds[0])
				}
				rc, err := mcfg.Env().RunConfig(spec, mcfg.Suite, nil)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.Run(rc)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", machine.Name, mode, p, err)
				}
				l := res.Ledger
				if l == nil {
					t.Fatalf("%s/%s/%s: Ledger enabled but Result.Ledger is nil", machine.Name, mode, p)
				}
				if err := l.Verify(); err != nil {
					t.Errorf("%s/%s/%s: %v", machine.Name, mode, p, err)
				}
				if got, want := l.Total.Total(), int64(l.Cores)*l.HorizonPs; got != want {
					t.Errorf("%s/%s/%s: total %d ps, want cores x horizon = %d ps",
						machine.Name, mode, p, got, want)
				}
				if l.Total.UsefulPs <= 0 {
					t.Errorf("%s/%s/%s: no useful work attributed", machine.Name, mode, p)
				}
			}
		}
	}
}

// TestLedgerShardedMergeByteIdentical pins the fabric contract for the new
// Result field: a campaign with cycle accounting on merges byte-identically
// whether it runs sequentially or sharded across local workers — the ledger
// is plain data inside Result, so EncodeResult covers it for free.
func TestLedgerShardedMergeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("duplicate sweep")
	}
	mcfg := ledgerConfig(t)
	mcfg.Machine = amp.Quad2Fast2Slow()
	suite, err := workload.Suite(mcfg.Cost, mcfg.Machine)
	if err != nil {
		t.Fatal(err)
	}
	mcfg.Suite = suite
	grid := []dist.Spec{
		showdownRunCfg(mcfg, ShowdownStatic, mcfg.Seeds[0]),
		showdownRunCfg(mcfg, ShowdownHybrid, mcfg.Seeds[0]),
	}
	camp := dist.Campaign{Env: mcfg.Env(), Specs: grid}

	var seq []*sim.Result
	for _, sp := range grid {
		rc, err := camp.Env.RunConfig(sp, mcfg.Suite, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(rc)
		if err != nil {
			t.Fatal(err)
		}
		seq = append(seq, res)
	}
	sharded, err := dist.RunLocal(context.Background(), camp, dist.LocalOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range grid {
		if seq[i].Ledger == nil || sharded[i].Ledger == nil {
			t.Fatalf("spec %d: ledger missing (seq=%v sharded=%v)",
				i, seq[i].Ledger != nil, sharded[i].Ledger != nil)
		}
		a, err := dist.EncodeResult(seq[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := dist.EncodeResult(sharded[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("spec %d: sharded result bytes differ from sequential", i)
		}
	}
}
