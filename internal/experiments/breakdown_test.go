package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"phasetune/internal/amp"
	"phasetune/internal/dist"
	"phasetune/internal/metrics"
)

// TestBreakdownShape covers the driver plumbing on a tiny grid: row order
// (machine-major, rate-major, window order), the repeated reference
// columns, per-machine static references, and one frontier row per
// (machine, rate).
func TestBreakdownShape(t *testing.T) {
	cfg, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	cfg = cfg.Scale(4, 40, []uint64{5})
	machines := []*amp.Machine{amp.Quad2Fast2Slow(), amp.Hex2Big2Medium2Little()}
	alts := []int{8, 512}
	windows := []uint64{4000, 16000}
	res, err := Breakdown(cfg, machines, alts, windows)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(machines) * len(alts) * len(windows); len(res.Rows) != want {
		t.Fatalf("%d rows, want %d", len(res.Rows), want)
	}
	if want := len(machines) * len(alts); len(res.Frontier) != want {
		t.Fatalf("%d frontier rows, want %d", len(res.Frontier), want)
	}
	i := 0
	for _, m := range machines {
		wantStatic := ShowdownStatic
		if len(m.Types) > 2 {
			wantStatic = ShowdownStaticSpill
		}
		for _, a := range alts {
			for _, w := range windows {
				r := res.Rows[i]
				i++
				if r.Machine != m.Name || r.Alternations != a || r.WindowInstrs != w {
					t.Fatalf("row %d = (%s,%d,%d), want (%s,%d,%d)",
						i-1, r.Machine, r.Alternations, r.WindowInstrs, m.Name, a, w)
				}
				if r.StaticPolicy != wantStatic {
					t.Errorf("row %d static reference %s, want %s", i-1, r.StaticPolicy, wantStatic)
				}
				if r.Rate <= 0 {
					t.Errorf("row %d carries no alternation rate", i-1)
				}
				if r.DeltaPct != r.DynamicPct-r.StaticPct {
					t.Errorf("row %d delta %.3f != dynamic %.3f - static %.3f",
						i-1, r.DeltaPct, r.DynamicPct, r.StaticPct)
				}
			}
		}
	}
}

// TestBreakdownGridShardsByteIdentical is the breakdown's determinism pin:
// the same grid through the fabric (Config.Shards) and through the local
// worker pool commits byte-identical results — the alternation-axis specs
// (workload regenerated from (cost, machine) on the worker) included.
func TestBreakdownGridShardsByteIdentical(t *testing.T) {
	cfg, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	cfg = cfg.Scale(4, 30, []uint64{5})
	grid := breakdownGrid(cfg, []int{16, 1024}, []uint64{8000})

	local := cfg
	want, err := local.sweep(grid)
	if err != nil {
		t.Fatal(err)
	}
	fabric := cfg
	fabric.Cache = nil // workers bring their own caches
	fabric.Shards = 2
	got, err := fabric.sweep(grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range got {
		w, err := json.Marshal(want[i])
		if err != nil {
			t.Fatal(err)
		}
		g, err := json.Marshal(got[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w, g) {
			t.Errorf("cell %d: fabric result differs from local pool", i)
		}
	}
}

// TestBreakdownDynamicDegradesPastWindow pins the map's monotone segment —
// the paper's §V claim in one inequality: at a fixed window, the
// dynamic-vs-static delta at an alternation rate whose phase period has
// shrunk to the window's scale is strictly worse than at a rate the window
// tracks comfortably. (The delta is non-monotone at the axis extremes —
// past ~10^5 alternations/Binstr positional tracking pays switch storms
// and both schemes collapse toward the baseline — so the pin is on the
// tracked-vs-blended segment, not the whole axis.)
func TestBreakdownDynamicDegradesPastWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-policy workload sweep at the claim regime")
	}
	cfg, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	cfg = cfg.Scale(18, 100, []uint64{5, 42})
	res, err := Breakdown(cfg, []*amp.Machine{amp.Quad2Fast2Slow()}, []int{4, 64}, []uint64{8000})
	if err != nil {
		t.Fatal(err)
	}
	slow, fast := res.Rows[0], res.Rows[1]
	if slow.Alternations != 4 || fast.Alternations != 64 {
		t.Fatalf("unexpected row order: %+v", res.Rows)
	}
	if fast.DeltaPct >= slow.DeltaPct {
		t.Errorf("dynamic delta did not degrade past the window: alt.x64 %+.2fpp vs alt.x4 %+.2fpp",
			fast.DeltaPct, slow.DeltaPct)
	}
}

// TestShowdownDampedHybridTrade pins the drift-damping acceptance
// criterion on the quad: at the showdown operating point the ε-damped
// hybrid must suppress re-decisions (Damped > 0, Refreshes strictly
// lower), never switch more, and stay within half a percentage point of
// the undamped hybrid's throughput.
func TestShowdownDampedHybridTrade(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-policy workload sweep at the claim regime")
	}
	cfg := showdownConfig(t, 5)
	seed := cfg.Seeds[0]
	grid := []dist.Spec{
		showdownRunCfg(cfg, ShowdownNone, seed),
		showdownRunCfg(cfg, ShowdownHybrid, seed),
		showdownRunCfg(cfg, ShowdownHybridDamped, seed),
	}
	results, err := cfg.sweep(grid)
	if err != nil {
		t.Fatal(err)
	}
	base, hybrid, damped := results[0], results[1], results[2]
	if hybrid.Online == nil || damped.Online == nil {
		t.Fatal("hybrid runs carry no online stats")
	}
	if damped.Online.Damped == 0 {
		t.Error("damped hybrid suppressed no re-decisions at the showdown operating point")
	}
	if damped.Online.Refreshes >= hybrid.Online.Refreshes {
		t.Errorf("damped refreshes %d not below undamped %d",
			damped.Online.Refreshes, hybrid.Online.Refreshes)
	}
	if damped.Online.Switches > hybrid.Online.Switches {
		t.Errorf("damping raised switch volume: %d > %d",
			damped.Online.Switches, hybrid.Online.Switches)
	}
	bt := metrics.ThroughputOver(base.Samples, 0, cfg.DurationSec)
	ht := metrics.PercentIncrease(bt, metrics.ThroughputOver(hybrid.Samples, 0, cfg.DurationSec))
	dt := metrics.PercentIncrease(bt, metrics.ThroughputOver(damped.Samples, 0, cfg.DurationSec))
	if ht-dt > 0.5 {
		t.Errorf("damping cost %.2fpp throughput (hybrid %+.2f%%, damped %+.2f%%), budget 0.5pp",
			ht-dt, ht, dt)
	}
}
