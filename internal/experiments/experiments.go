// Package experiments contains one driver per table and figure of the
// paper's evaluation (§IV), plus the ablations called out in DESIGN.md.
// Each driver is a pure function of its Config and returns typed rows; the
// cmd/experiments binary renders them as paper-style tables and the root
// bench harness replays them under testing.B.
package experiments

import (
	"fmt"

	"phasetune/internal/amp"
	"phasetune/internal/exec"
	"phasetune/internal/metrics"
	"phasetune/internal/osched"
	"phasetune/internal/phase"
	"phasetune/internal/sim"
	"phasetune/internal/transition"
	"phasetune/internal/tuning"
	"phasetune/internal/workload"
)

// Config holds the shared experiment environment.
type Config struct {
	// Machine is the platform (defaults to the paper's quad AMP).
	Machine *amp.Machine
	// Cost is the timing model.
	Cost exec.CostModel
	// Sched is the scheduler configuration.
	Sched osched.Config
	// Suite is the benchmark suite.
	Suite []*workload.Benchmark
	// Slots is the workload size (paper: 18-84).
	Slots int
	// QueueLen is the per-slot queue length.
	QueueLen int
	// DurationSec is the workload horizon (Table 2: 800 s; Figs. 6-7
	// measure the first 400 s).
	DurationSec float64
	// Seeds are the workload seeds; results aggregate over them.
	Seeds []uint64
	// Typing configures static block typing.
	Typing phase.Options
	// Tuning is the runtime configuration (δ etc.).
	Tuning tuning.Config
}

// Default returns the configuration used throughout EXPERIMENTS.md.
func Default() (Config, error) {
	machine := amp.Quad2Fast2Slow()
	cost := exec.DefaultCostModel()
	suite, err := workload.Suite(cost, machine)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Machine:     machine,
		Cost:        cost,
		Sched:       osched.DefaultConfig(),
		Suite:       suite,
		Slots:       18,
		QueueLen:    256,
		DurationSec: 800,
		Seeds:       []uint64{5, 42, 99},
		Typing:      phase.Options{K: 2, MinBlockInstrs: 5},
		Tuning:      tuning.DefaultConfig(),
	}, nil
}

// Scale shrinks the workload dimensions for quick runs (benchmarks use it
// so `go test -bench` stays fast). factor 1 keeps defaults.
func (c Config) Scale(slots int, durationSec float64, seeds []uint64) Config {
	c.Slots = slots
	c.DurationSec = durationSec
	c.Seeds = seeds
	return c
}

// TechniqueGrid returns the paper's 18 technique variants (Table 2, Figs.
// 3-4): BB[10/15/20 x lookahead 0-3], Int[30/45/60], Loop[30/45/60].
func TechniqueGrid() []transition.Params {
	var grid []transition.Params
	for _, min := range []int{10, 15, 20} {
		for la := 0; la <= 3; la++ {
			grid = append(grid, transition.Params{
				Technique: transition.BasicBlock, MinSize: min, Lookahead: la,
				PropagateThroughUntyped: true,
			})
		}
	}
	for _, min := range []int{30, 45, 60} {
		grid = append(grid, transition.Params{
			Technique: transition.Interval, MinSize: min, PropagateThroughUntyped: true,
		})
	}
	for _, min := range []int{30, 45, 60} {
		grid = append(grid, transition.Params{
			Technique: transition.Loop, MinSize: min, PropagateThroughUntyped: true,
		})
	}
	return grid
}

// BestParams is the paper's best variant: Loop[45].
func BestParams() transition.Params {
	return transition.Params{Technique: transition.Loop, MinSize: 45, PropagateThroughUntyped: true}
}

// ---------------------------------------------------------------------------
// Fig. 3 — space overhead box plots per technique variant.

// SpaceRow is one box in Fig. 3.
type SpaceRow struct {
	// Variant is the paper-style name (BB[10,0], Loop[45], ...).
	Variant string
	// Overheads holds the per-benchmark fractional size increases.
	Overheads []float64
	// Box summarizes them.
	Box metrics.Box
	// MeanMarks is the mean static mark count per benchmark (paper: 20.24
	// for Loop[45]).
	MeanMarks float64
}

// Fig3SpaceOverhead measures instrumented-binary growth for every variant.
func Fig3SpaceOverhead(cfg Config) ([]SpaceRow, error) {
	var rows []SpaceRow
	for _, params := range TechniqueGrid() {
		row := SpaceRow{Variant: params.Name()}
		marks := 0
		for _, b := range cfg.Suite {
			_, stats, err := sim.PrepareImage(b.Prog, params, cfg.Typing, 0, 1, cfg.Cost)
			if err != nil {
				return nil, fmt.Errorf("fig3 %s %s: %w", params.Name(), b.Name(), err)
			}
			row.Overheads = append(row.Overheads, stats.SpaceOverhead)
			marks += stats.Marks
		}
		row.Box = metrics.BoxStats(row.Overheads)
		row.MeanMarks = float64(marks) / float64(len(cfg.Suite))
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Fig. 4 — time overhead (all-cores mode) per technique variant.

// TimeOverheadRow is one bar of Fig. 4.
type TimeOverheadRow struct {
	Variant string
	// OverheadPct is the throughput loss of the instrumented all-cores run
	// versus the unmodified baseline, in percent (paper: as low as 0.14%).
	OverheadPct float64
	// MarksExecuted counts dynamic mark executions across the run.
	MarksExecuted uint64
}

// Fig4TimeOverhead compares baseline and all-cores instrumented runs on the
// same workload (paper: workload size 84).
func Fig4TimeOverhead(cfg Config, variants []transition.Params) ([]TimeOverheadRow, error) {
	if variants == nil {
		variants = TechniqueGrid()
	}
	var rows []TimeOverheadRow
	for _, params := range variants {
		var overheads []float64
		var marks uint64
		for _, seed := range cfg.Seeds {
			w := workload.BuildWorkload(cfg.Suite, cfg.Slots, cfg.QueueLen, seed)
			base, err := sim.Run(sim.RunConfig{
				Machine: cfg.Machine, Cost: &cfg.Cost, Sched: &cfg.Sched,
				Workload: w, DurationSec: cfg.DurationSec, Mode: sim.Baseline, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			over, err := sim.Run(sim.RunConfig{
				Machine: cfg.Machine, Cost: &cfg.Cost, Sched: &cfg.Sched,
				Workload: w, DurationSec: cfg.DurationSec, Mode: sim.Overhead,
				Params: params, TypingOpts: cfg.Typing, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			loss := -metrics.PercentIncrease(float64(base.TotalInstructions), float64(over.TotalInstructions))
			overheads = append(overheads, loss)
			for _, t := range over.Tasks {
				marks += t.MarksExecuted
			}
		}
		rows = append(rows, TimeOverheadRow{
			Variant:       params.Name(),
			OverheadPct:   metrics.Mean(overheads),
			MarksExecuted: marks,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Table 1 + Fig. 5 — switches per benchmark and cycles per switch.

// SwitchRow is one row of Table 1 / one bar of Fig. 5.
type SwitchRow struct {
	// Benchmark is the suite member name.
	Benchmark string
	// Switches is the measured core-switch count in a tuned isolation run.
	Switches int
	// RuntimeSec is the isolation runtime.
	RuntimeSec float64
	// PaperSwitches and PaperRuntimeSec echo the paper's Table 1 (switch
	// counts scale with workload.ScaleDivisor).
	PaperSwitches   int
	PaperRuntimeSec float64
	// CyclesPerSwitch is total cycles over switches (Fig. 5, log scale);
	// 0 when the benchmark never switches.
	CyclesPerSwitch float64
}

// Table1Switches runs every benchmark alone under the best technique.
func Table1Switches(cfg Config) ([]SwitchRow, error) {
	iso, err := sim.Isolation(cfg.Suite, cfg.Machine, cfg.Cost, cfg.Sched,
		sim.Tuned, BestParams(), cfg.Tuning, cfg.Typing, 1)
	if err != nil {
		return nil, err
	}
	var rows []SwitchRow
	for _, b := range cfg.Suite {
		r := iso[b.Name()]
		row := SwitchRow{
			Benchmark:       b.Name(),
			Switches:        r.Migrations,
			RuntimeSec:      r.RuntimeSec,
			PaperSwitches:   b.Spec.PaperSwitches,
			PaperRuntimeSec: b.Spec.PaperRuntimeSec,
		}
		if r.Migrations > 0 {
			row.CyclesPerSwitch = float64(r.Cycles) / float64(r.Migrations)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Fig. 6 — throughput vs. IPC threshold δ.

// ThresholdRow is one point of Fig. 6.
type ThresholdRow struct {
	// Delta is the IPC threshold.
	Delta float64
	// ImprovementPct is throughput improvement over baseline in the first
	// 400 s, in percent.
	ImprovementPct float64
}

// Fig6Thresholds sweeps δ with the basic-block strategy (paper: BB, min
// block size 15, lookahead 0).
func Fig6Thresholds(cfg Config, deltas []float64) ([]ThresholdRow, error) {
	if deltas == nil {
		deltas = []float64{0, 0.02, 0.04, 0.06, 0.1, 0.2, 0.4}
	}
	params := transition.Params{Technique: transition.BasicBlock, MinSize: 15, PropagateThroughUntyped: true}
	var rows []ThresholdRow
	for _, d := range deltas {
		tcfg := cfg.Tuning
		tcfg.Delta = d
		imp, err := throughputImprovement(cfg, params, tcfg, 0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ThresholdRow{Delta: d, ImprovementPct: imp})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Fig. 7 — throughput vs. injected clustering error.

// ErrorRow is one point of Fig. 7.
type ErrorRow struct {
	// ErrorPct is the injected clustering error percentage.
	ErrorPct float64
	// ImprovementPct is throughput improvement over baseline.
	ImprovementPct float64
}

// Fig7ClusteringError sweeps injected typing error (paper: 0-30%, BB[15,0]).
func Fig7ClusteringError(cfg Config, errors []float64) ([]ErrorRow, error) {
	if errors == nil {
		errors = []float64{0, 0.1, 0.2, 0.3}
	}
	params := transition.Params{Technique: transition.BasicBlock, MinSize: 15, PropagateThroughUntyped: true}
	var rows []ErrorRow
	for _, e := range errors {
		imp, err := throughputImprovement(cfg, params, cfg.Tuning, e)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ErrorRow{ErrorPct: e * 100, ImprovementPct: imp})
	}
	return rows, nil
}

// throughputImprovement measures tuned-vs-baseline committed-instruction
// throughput over the first min(400, duration) seconds, averaged over seeds.
func throughputImprovement(cfg Config, params transition.Params, tcfg tuning.Config, errFrac float64) (float64, error) {
	window := cfg.DurationSec
	if window > 400 {
		window = 400
	}
	var imps []float64
	for _, seed := range cfg.Seeds {
		w := workload.BuildWorkload(cfg.Suite, cfg.Slots, cfg.QueueLen, seed)
		base, err := sim.Run(sim.RunConfig{
			Machine: cfg.Machine, Cost: &cfg.Cost, Sched: &cfg.Sched,
			Workload: w, DurationSec: window, Mode: sim.Baseline, Seed: seed,
		})
		if err != nil {
			return 0, err
		}
		tuned, err := sim.Run(sim.RunConfig{
			Machine: cfg.Machine, Cost: &cfg.Cost, Sched: &cfg.Sched,
			Workload: w, DurationSec: window, Mode: sim.Tuned,
			Params: params, Tuning: tcfg, TypingOpts: cfg.Typing,
			TypingError: errFrac, Seed: seed,
		})
		if err != nil {
			return 0, err
		}
		bt := metrics.ThroughputOver(base.Samples, 0, window)
		tt := metrics.ThroughputOver(tuned.Samples, 0, window)
		imps = append(imps, metrics.PercentIncrease(bt, tt))
	}
	return metrics.Mean(imps), nil
}

// ---------------------------------------------------------------------------
// Table 2 + Fig. 8 — fairness and the speedup/fairness trade-off.

// FairnessRow is one row of Table 2 (and one point of Fig. 8).
type FairnessRow struct {
	// Variant is the technique name.
	Variant string
	// MaxFlowPct, MaxStretchPct, AvgTimePct are percent decreases versus
	// the stock scheduler (positive = improvement), averaged over seeds.
	MaxFlowPct, MaxStretchPct, AvgTimePct float64
	// MatchedAvgPct is the instance-matched average-time decrease: the two
	// runs share workload queues, so a job is identified by (slot, queue
	// position); the mean flow over jobs completed in *both* runs is
	// compared. This removes the completion-composition bias that the raw
	// average carries under finite windows (a run that additionally
	// finishes long or late-arriving jobs is penalized by the raw metric).
	MatchedAvgPct float64
	// ThroughputPct is the throughput improvement (auxiliary).
	ThroughputPct float64
}

// matchedAvgImprovement compares mean flow times over the job instances
// completed in both runs. Compared runs share workload queues, so (slot,
// per-slot spawn ordinal) identifies the same job in both.
func matchedAvgImprovement(base, tuned []metrics.TaskStat) float64 {
	type key struct{ slot, ordinal int }
	collect := func(stats []metrics.TaskStat) map[key]float64 {
		next := map[int]int{}
		out := map[key]float64{}
		for _, t := range stats {
			k := key{t.Slot, next[t.Slot]}
			next[t.Slot]++
			if t.Completed() {
				out[k] = t.FlowSec()
			}
		}
		return out
	}
	b, tn := collect(base), collect(tuned)
	var bSum, tSum float64
	n := 0
	for k, bf := range b {
		tf, ok := tn[k]
		if !ok {
			continue
		}
		bSum += bf
		tSum += tf
		n++
	}
	if n == 0 || bSum == 0 {
		return 0
	}
	return (bSum - tSum) / bSum * 100
}

// Table2Fairness measures the full variant grid against baseline over the
// configured duration (paper: 800 s interval).
func Table2Fairness(cfg Config, variants []transition.Params) ([]FairnessRow, error) {
	if variants == nil {
		variants = TechniqueGrid()
	}
	isoSec, err := IsolationTimes(cfg)
	if err != nil {
		return nil, err
	}

	type baseRes struct {
		avg, maxFlow, maxStretch, tput float64
		tasks                          []metrics.TaskStat
	}
	bases := map[uint64]baseRes{}
	for _, seed := range cfg.Seeds {
		w := workload.BuildWorkload(cfg.Suite, cfg.Slots, cfg.QueueLen, seed)
		base, err := sim.Run(sim.RunConfig{
			Machine: cfg.Machine, Cost: &cfg.Cost, Sched: &cfg.Sched,
			Workload: w, DurationSec: cfg.DurationSec, Mode: sim.Baseline, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		ms, err := metrics.MaxStretch(base.Tasks, isoSec)
		if err != nil {
			return nil, err
		}
		bases[seed] = baseRes{
			avg:        metrics.AvgProcessTime(base.Tasks),
			maxFlow:    metrics.MaxFlow(base.Tasks),
			maxStretch: ms,
			tput:       float64(base.TotalInstructions),
			tasks:      base.Tasks,
		}
	}

	var rows []FairnessRow
	for _, params := range variants {
		var mf, mstr, avg, matched, tp []float64
		for _, seed := range cfg.Seeds {
			w := workload.BuildWorkload(cfg.Suite, cfg.Slots, cfg.QueueLen, seed)
			tuned, err := sim.Run(sim.RunConfig{
				Machine: cfg.Machine, Cost: &cfg.Cost, Sched: &cfg.Sched,
				Workload: w, DurationSec: cfg.DurationSec, Mode: sim.Tuned,
				Params: params, Tuning: cfg.Tuning, TypingOpts: cfg.Typing, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			ms, err := metrics.MaxStretch(tuned.Tasks, isoSec)
			if err != nil {
				return nil, err
			}
			b := bases[seed]
			mf = append(mf, metrics.PercentDecrease(b.maxFlow, metrics.MaxFlow(tuned.Tasks)))
			mstr = append(mstr, metrics.PercentDecrease(b.maxStretch, ms))
			avg = append(avg, metrics.PercentDecrease(b.avg, metrics.AvgProcessTime(tuned.Tasks)))
			matched = append(matched, matchedAvgImprovement(b.tasks, tuned.Tasks))
			tp = append(tp, metrics.PercentIncrease(b.tput, float64(tuned.TotalInstructions)))
		}
		rows = append(rows, FairnessRow{
			Variant:       params.Name(),
			MaxFlowPct:    metrics.Mean(mf),
			MaxStretchPct: metrics.Mean(mstr),
			AvgTimePct:    metrics.Mean(avg),
			MatchedAvgPct: metrics.Mean(matched),
			ThroughputPct: metrics.Mean(tp),
		})
	}
	return rows, nil
}

// IsolationTimes returns per-benchmark baseline isolation runtimes (the t_j
// of max-stretch).
func IsolationTimes(cfg Config) (map[string]float64, error) {
	iso, err := sim.Isolation(cfg.Suite, cfg.Machine, cfg.Cost, cfg.Sched,
		sim.Baseline, transition.Params{}, tuning.Config{}, cfg.Typing, 1)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(iso))
	for n, r := range iso {
		out[n] = r.RuntimeSec
	}
	return out, nil
}

// Fig8Tradeoff reuses Table 2 rows: x = max-stretch decrease, y = average
// time decrease. It exists as its own entry point for symmetry with the
// paper's figures.
func Fig8Tradeoff(cfg Config, variants []transition.Params) ([]FairnessRow, error) {
	return Table2Fairness(cfg, variants)
}
