// Package experiments contains one driver per table and figure of the
// paper's evaluation (§IV), plus the ablations called out in DESIGN.md.
// Each driver is a pure function of its Config and returns typed rows; the
// cmd/experiments binary renders them as paper-style tables and the root
// bench harness replays them under testing.B.
//
// Every driver runs on the sim.Sweep engine: run grids fan out across a
// bounded worker pool (Config.Workers) and all static-pipeline products are
// served by one shared artifact cache (Config.Cache), so an experiment
// campaign instruments each distinct (benchmark, technique) pair exactly
// once no matter how many runs, seeds, or drivers consume it. Results are
// independent of the worker count: each run is a pure function of its
// configuration.
package experiments

import (
	"context"
	"fmt"

	"phasetune/internal/amp"
	"phasetune/internal/dist"
	"phasetune/internal/exec"
	"phasetune/internal/metrics"
	"phasetune/internal/osched"
	"phasetune/internal/phase"
	"phasetune/internal/sim"
	"phasetune/internal/transition"
	"phasetune/internal/tuning"
	"phasetune/internal/workload"
)

// Config holds the shared experiment environment.
type Config struct {
	// Machine is the platform (defaults to the paper's quad AMP).
	Machine *amp.Machine
	// Cost is the timing model.
	Cost exec.CostModel
	// Sched is the scheduler configuration.
	Sched osched.Config
	// Suite is the benchmark suite.
	Suite []*workload.Benchmark
	// Slots is the workload size (paper: 18-84).
	Slots int
	// QueueLen is the per-slot queue length.
	QueueLen int
	// DurationSec is the workload horizon (Table 2: 800 s; Figs. 6-7
	// measure the first 400 s).
	DurationSec float64
	// Seeds are the workload seeds; results aggregate over them.
	Seeds []uint64
	// Typing configures static block typing.
	Typing phase.Options
	// Tuning is the runtime configuration (δ etc.).
	Tuning tuning.Config
	// Workers bounds concurrent runs in sweeps (<=0 uses GOMAXPROCS).
	Workers int
	// Shards, when > 1, routes every sweep through the distributed fabric
	// (internal/dist) with that many in-process workers instead of the
	// local worker pool. Results are byte-identical either way; the fabric
	// path additionally exercises spec serialization and gives each worker
	// its own artifact cache, exactly as separate processes would.
	Shards int
	// Cache is the shared artifact cache; every driver's image
	// preparations go through it.
	Cache *sim.ImageCache
	// Memo is the shared segment memo: repeated segment executions across
	// a campaign's policy columns and seeds replay in O(1). Invisible to
	// results, so memoized campaigns reproduce unmemoized ones byte for
	// byte. Sharded sweeps ignore it (workers attach their own).
	Memo *exec.SegmentMemo
	// Ledger enables conserved cycle accounting on every run of every
	// driver (sim.RunConfig.Ledger via the environment wire form). The
	// showdown and serving drivers then fill their attribution columns.
	Ledger bool
}

// Default returns the configuration used throughout EXPERIMENTS.md.
func Default() (Config, error) {
	machine := amp.Quad2Fast2Slow()
	cost := exec.DefaultCostModel()
	suite, err := workload.Suite(cost, machine)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Machine:     machine,
		Cost:        cost,
		Sched:       osched.DefaultConfig(),
		Suite:       suite,
		Slots:       18,
		QueueLen:    256,
		DurationSec: 800,
		Seeds:       []uint64{5, 42, 99},
		Typing:      phase.Options{K: 2, MinBlockInstrs: 5},
		Tuning:      tuning.DefaultConfig(),
		Cache:       sim.NewImageCache(),
		Memo:        exec.NewSegmentMemo(0),
	}, nil
}

// cache returns the campaign cache, building one on first use so
// zero-value Configs still share artifacts within a driver call.
func (c *Config) cache() *sim.ImageCache {
	if c.Cache == nil {
		c.Cache = sim.NewImageCache()
	}
	return c.Cache
}

// memo returns the campaign segment memo, building one on first use.
func (c *Config) memo() *exec.SegmentMemo {
	if c.Memo == nil {
		c.Memo = exec.NewSegmentMemo(0)
	}
	return c.Memo
}

// artifact fetches one benchmark's prepared image through the shared cache.
func (c *Config) artifact(b *workload.Benchmark, params transition.Params) (*sim.Artifact, error) {
	return c.cache().Get(b.Prog, sim.ImageSpec{Params: params, Typing: c.Typing}, c.Cost)
}

// Env is the wire form of the config environment — what fabric workers
// rebuild their stack (suite included) from. Config.Suite must be the
// canonical suite for (Cost, Machine), which Default and the machine-
// iterating drivers guarantee.
func (c *Config) Env() dist.EnvSpec {
	return dist.EnvSpec{Version: dist.SpecVersion, Machine: *c.Machine, Cost: c.Cost,
		Sched: c.Sched, Typing: c.Typing, Ledger: c.Ledger}
}

// runCfg assembles one sweep cell in the fabric's wire form: the workload
// travels as its construction parameters, so the same cell runs locally or
// on a remote worker with bit-identical results.
func (c *Config) runCfg(mode sim.Mode, params transition.Params, tcfg tuning.Config,
	errFrac float64, seed uint64, durationSec float64) dist.Spec {

	return dist.Spec{
		Queues:      workload.Spec{Slots: c.Slots, QueueLen: c.QueueLen, Seed: seed},
		DurationSec: durationSec, Mode: mode, Params: params, Tuning: tcfg,
		TypingError: errFrac, Seed: seed,
	}
}

// sweep executes the grid: through the distributed fabric when Shards > 1,
// otherwise across the local worker pool with the shared artifact cache.
// Results come back in input order and are byte-identical either way.
func (c *Config) sweep(grid []dist.Spec) ([]*sim.Result, error) {
	if c.Shards > 1 {
		return dist.RunLocal(context.Background(), dist.Campaign{Env: c.Env(), Specs: grid},
			dist.LocalOptions{Workers: c.Shards})
	}
	env := c.Env()
	cfgs := make([]sim.RunConfig, len(grid))
	for i := range grid {
		cfg, err := env.RunConfig(grid[i], c.Suite, nil)
		if err != nil {
			return nil, err
		}
		cfgs[i] = cfg
	}
	return sim.Sweep(context.Background(), cfgs, sim.SweepOptions{
		Workers: c.Workers,
		Cache:   c.cache(),
		Memo:    c.memo(),
	})
}

// baselines runs one baseline per seed (concurrently) and returns them
// keyed by seed. Baseline runs depend only on (workload seed, duration), so
// every driver that needs them builds the same grid.
func (c *Config) baselines(durationSec float64) (map[uint64]*sim.Result, error) {
	grid := make([]dist.Spec, len(c.Seeds))
	for i, seed := range c.Seeds {
		grid[i] = c.runCfg(sim.Baseline, transition.Params{}, tuning.Config{}, 0, seed, durationSec)
	}
	results, err := c.sweep(grid)
	if err != nil {
		return nil, err
	}
	out := make(map[uint64]*sim.Result, len(c.Seeds))
	for i, seed := range c.Seeds {
		out[seed] = results[i]
	}
	return out, nil
}

// Scale shrinks the workload dimensions for quick runs (benchmarks use it
// so `go test -bench` stays fast). factor 1 keeps defaults.
func (c Config) Scale(slots int, durationSec float64, seeds []uint64) Config {
	c.Slots = slots
	c.DurationSec = durationSec
	c.Seeds = seeds
	return c
}

// TechniqueGrid returns the paper's 18 technique variants (Table 2, Figs.
// 3-4): BB[10/15/20 x lookahead 0-3], Int[30/45/60], Loop[30/45/60].
func TechniqueGrid() []transition.Params {
	var grid []transition.Params
	for _, min := range []int{10, 15, 20} {
		for la := 0; la <= 3; la++ {
			grid = append(grid, transition.Params{
				Technique: transition.BasicBlock, MinSize: min, Lookahead: la,
				PropagateThroughUntyped: true,
			})
		}
	}
	for _, min := range []int{30, 45, 60} {
		grid = append(grid, transition.Params{
			Technique: transition.Interval, MinSize: min, PropagateThroughUntyped: true,
		})
	}
	for _, min := range []int{30, 45, 60} {
		grid = append(grid, transition.Params{
			Technique: transition.Loop, MinSize: min, PropagateThroughUntyped: true,
		})
	}
	return grid
}

// BestParams is the paper's best variant: Loop[45].
func BestParams() transition.Params {
	return transition.Params{Technique: transition.Loop, MinSize: 45, PropagateThroughUntyped: true}
}

// ---------------------------------------------------------------------------
// Fig. 3 — space overhead box plots per technique variant.

// SpaceRow is one box in Fig. 3.
type SpaceRow struct {
	// Variant is the paper-style name (BB[10,0], Loop[45], ...).
	Variant string
	// Overheads holds the per-benchmark fractional size increases.
	Overheads []float64
	// Box summarizes them.
	Box metrics.Box
	// MeanMarks is the mean static mark count per benchmark (paper: 20.24
	// for Loop[45]).
	MeanMarks float64
}

// Fig3SpaceOverhead measures instrumented-binary growth for every variant.
// The (variant x benchmark) grid is purely static, so it fans the artifact
// preparations straight across the worker pool.
func Fig3SpaceOverhead(cfg Config) ([]SpaceRow, error) {
	grid := TechniqueGrid()
	nb := len(cfg.Suite)
	stats := make([]sim.ImageStats, len(grid)*nb)
	err := sim.ForEach(context.Background(), len(stats), cfg.Workers, func(i int) error {
		params, b := grid[i/nb], cfg.Suite[i%nb]
		art, err := cfg.artifact(b, params)
		if err != nil {
			return fmt.Errorf("fig3 %s %s: %w", params.Name(), b.Name(), err)
		}
		stats[i] = art.Stats
		return nil
	})
	if err != nil {
		return nil, err
	}

	rows := make([]SpaceRow, len(grid))
	for vi, params := range grid {
		row := SpaceRow{Variant: params.Name()}
		marks := 0
		for bi := 0; bi < nb; bi++ {
			s := stats[vi*nb+bi]
			row.Overheads = append(row.Overheads, s.SpaceOverhead)
			marks += s.Marks
		}
		row.Box = metrics.BoxStats(row.Overheads)
		row.MeanMarks = float64(marks) / float64(nb)
		rows[vi] = row
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Fig. 4 — time overhead (all-cores mode) per technique variant.

// TimeOverheadRow is one bar of Fig. 4.
type TimeOverheadRow struct {
	Variant string
	// OverheadPct is the throughput loss of the instrumented all-cores run
	// versus the unmodified baseline, in percent (paper: as low as 0.14%).
	OverheadPct float64
	// MarksExecuted counts dynamic mark executions across the run.
	MarksExecuted uint64
}

// Fig4TimeOverhead compares baseline and all-cores instrumented runs on the
// same workload (paper: workload size 84). The per-seed baselines run once
// and are shared by every variant; the (variant x seed) overhead grid then
// sweeps concurrently.
func Fig4TimeOverhead(cfg Config, variants []transition.Params) ([]TimeOverheadRow, error) {
	if variants == nil {
		variants = TechniqueGrid()
	}
	bases, err := cfg.baselines(cfg.DurationSec)
	if err != nil {
		return nil, err
	}

	grid := make([]dist.Spec, 0, len(variants)*len(cfg.Seeds))
	for _, params := range variants {
		for _, seed := range cfg.Seeds {
			grid = append(grid, cfg.runCfg(sim.Overhead, params, tuning.Config{}, 0, seed, cfg.DurationSec))
		}
	}
	results, err := cfg.sweep(grid)
	if err != nil {
		return nil, err
	}

	rows := make([]TimeOverheadRow, len(variants))
	for vi, params := range variants {
		var overheads []float64
		var marks uint64
		for si, seed := range cfg.Seeds {
			base := bases[seed]
			over := results[vi*len(cfg.Seeds)+si]
			loss := -metrics.PercentIncrease(float64(base.TotalInstructions), float64(over.TotalInstructions))
			overheads = append(overheads, loss)
			for _, t := range over.Tasks {
				marks += t.MarksExecuted
			}
		}
		rows[vi] = TimeOverheadRow{
			Variant:       params.Name(),
			OverheadPct:   metrics.Mean(overheads),
			MarksExecuted: marks,
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Table 1 + Fig. 5 — switches per benchmark and cycles per switch.

// SwitchRow is one row of Table 1 / one bar of Fig. 5.
type SwitchRow struct {
	// Benchmark is the suite member name.
	Benchmark string
	// Switches is the measured core-switch count in a tuned isolation run.
	Switches int
	// RuntimeSec is the isolation runtime.
	RuntimeSec float64
	// PaperSwitches and PaperRuntimeSec echo the paper's Table 1 (switch
	// counts scale with workload.ScaleDivisor).
	PaperSwitches   int
	PaperRuntimeSec float64
	// CyclesPerSwitch is total cycles over switches (Fig. 5, log scale);
	// 0 when the benchmark never switches.
	CyclesPerSwitch float64
}

// Table1Switches runs every benchmark alone under the best technique,
// fanning the suite across the worker pool.
func Table1Switches(cfg Config) ([]SwitchRow, error) {
	iso, err := sim.IsolationContext(context.Background(), sim.IsolationSpec{
		Suite: cfg.Suite, Machine: cfg.Machine, Cost: cfg.Cost, Sched: cfg.Sched,
		Mode: sim.Tuned, Params: BestParams(), Tuning: cfg.Tuning, Typing: cfg.Typing,
		Seed: 1, Workers: cfg.Workers, Cache: cfg.cache(),
	})
	if err != nil {
		return nil, err
	}
	var rows []SwitchRow
	for _, b := range cfg.Suite {
		r := iso[b.Name()]
		row := SwitchRow{
			Benchmark:       b.Name(),
			Switches:        r.Migrations,
			RuntimeSec:      r.RuntimeSec,
			PaperSwitches:   b.Spec.PaperSwitches,
			PaperRuntimeSec: b.Spec.PaperRuntimeSec,
		}
		if r.Migrations > 0 {
			row.CyclesPerSwitch = float64(r.Cycles) / float64(r.Migrations)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Fig. 6 — throughput vs. IPC threshold δ.

// ThresholdRow is one point of Fig. 6.
type ThresholdRow struct {
	// Delta is the IPC threshold.
	Delta float64
	// ImprovementPct is throughput improvement over baseline in the first
	// 400 s, in percent.
	ImprovementPct float64
}

// Fig6Thresholds sweeps δ with the basic-block strategy (paper: BB, min
// block size 15, lookahead 0). All (δ x seed) tuned runs sweep concurrently
// against per-seed baselines that run once.
func Fig6Thresholds(cfg Config, deltas []float64) ([]ThresholdRow, error) {
	if deltas == nil {
		deltas = []float64{0, 0.02, 0.04, 0.06, 0.1, 0.2, 0.4}
	}
	params := transition.Params{Technique: transition.BasicBlock, MinSize: 15, PropagateThroughUntyped: true}
	specs := make([]tunedSpec, len(deltas))
	for i, d := range deltas {
		tcfg := cfg.Tuning
		tcfg.Delta = d
		specs[i] = tunedSpec{params: params, tuning: tcfg}
	}
	imps, err := throughputImprovements(cfg, specs)
	if err != nil {
		return nil, err
	}
	rows := make([]ThresholdRow, len(deltas))
	for i, d := range deltas {
		rows[i] = ThresholdRow{Delta: d, ImprovementPct: imps[i]}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Fig. 7 — throughput vs. injected clustering error.

// ErrorRow is one point of Fig. 7.
type ErrorRow struct {
	// ErrorPct is the injected clustering error percentage.
	ErrorPct float64
	// ImprovementPct is throughput improvement over baseline.
	ImprovementPct float64
}

// Fig7ClusteringError sweeps injected typing error (paper: 0-30%, BB[15,0]).
func Fig7ClusteringError(cfg Config, errors []float64) ([]ErrorRow, error) {
	if errors == nil {
		errors = []float64{0, 0.1, 0.2, 0.3}
	}
	params := transition.Params{Technique: transition.BasicBlock, MinSize: 15, PropagateThroughUntyped: true}
	specs := make([]tunedSpec, len(errors))
	for i, e := range errors {
		specs[i] = tunedSpec{params: params, tuning: cfg.Tuning, errFrac: e}
	}
	imps, err := throughputImprovements(cfg, specs)
	if err != nil {
		return nil, err
	}
	rows := make([]ErrorRow, len(errors))
	for i, e := range errors {
		rows[i] = ErrorRow{ErrorPct: e * 100, ImprovementPct: imps[i]}
	}
	return rows, nil
}

// tunedSpec is one tuned-run configuration in a throughput comparison grid.
type tunedSpec struct {
	params  transition.Params
	tuning  tuning.Config
	errFrac float64
}

// throughputImprovements measures tuned-vs-baseline committed-instruction
// throughput over the first min(400, duration) seconds for every spec,
// averaged over seeds. Baselines run once per seed; the (spec x seed) tuned
// grid sweeps concurrently.
func throughputImprovements(cfg Config, specs []tunedSpec) ([]float64, error) {
	window := cfg.DurationSec
	if window > 400 {
		window = 400
	}
	bases, err := cfg.baselines(window)
	if err != nil {
		return nil, err
	}
	grid := make([]dist.Spec, 0, len(specs)*len(cfg.Seeds))
	for _, s := range specs {
		for _, seed := range cfg.Seeds {
			grid = append(grid, cfg.runCfg(sim.Tuned, s.params, s.tuning, s.errFrac, seed, window))
		}
	}
	results, err := cfg.sweep(grid)
	if err != nil {
		return nil, err
	}

	out := make([]float64, len(specs))
	for si := range specs {
		var imps []float64
		for k, seed := range cfg.Seeds {
			bt := metrics.ThroughputOver(bases[seed].Samples, 0, window)
			tt := metrics.ThroughputOver(results[si*len(cfg.Seeds)+k].Samples, 0, window)
			imps = append(imps, metrics.PercentIncrease(bt, tt))
		}
		out[si] = metrics.Mean(imps)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Table 2 + Fig. 8 — fairness and the speedup/fairness trade-off.

// FairnessRow is one row of Table 2 (and one point of Fig. 8).
type FairnessRow struct {
	// Variant is the technique name.
	Variant string
	// MaxFlowPct, MaxStretchPct, AvgTimePct are percent decreases versus
	// the stock scheduler (positive = improvement), averaged over seeds.
	MaxFlowPct, MaxStretchPct, AvgTimePct float64
	// MatchedAvgPct is the instance-matched average-time decrease: the two
	// runs share workload queues, so a job is identified by (slot, queue
	// position); the mean flow over jobs completed in *both* runs is
	// compared. This removes the completion-composition bias that the raw
	// average carries under finite windows (a run that additionally
	// finishes long or late-arriving jobs is penalized by the raw metric).
	MatchedAvgPct float64
	// ThroughputPct is the throughput improvement (auxiliary).
	ThroughputPct float64
}

// matchedAvgImprovement compares mean flow times over the job instances
// completed in both runs. Compared runs share workload queues, so (slot,
// per-slot spawn ordinal) identifies the same job in both.
func matchedAvgImprovement(base, tuned []metrics.TaskStat) float64 {
	type key struct{ slot, ordinal int }
	collect := func(stats []metrics.TaskStat) map[key]float64 {
		next := map[int]int{}
		out := map[key]float64{}
		for _, t := range stats {
			k := key{t.Slot, next[t.Slot]}
			next[t.Slot]++
			if t.Completed() {
				out[k] = t.FlowSec()
			}
		}
		return out
	}
	b, tn := collect(base), collect(tuned)
	var bSum, tSum float64
	n := 0
	for k, bf := range b {
		tf, ok := tn[k]
		if !ok {
			continue
		}
		bSum += bf
		tSum += tf
		n++
	}
	if n == 0 || bSum == 0 {
		return 0
	}
	return (bSum - tSum) / bSum * 100
}

// Table2Fairness measures the full variant grid against baseline over the
// configured duration (paper: 800 s interval). Per-seed baselines run once;
// the full (variant x seed) tuned grid then sweeps concurrently over the
// shared artifact cache.
func Table2Fairness(cfg Config, variants []transition.Params) ([]FairnessRow, error) {
	if variants == nil {
		variants = TechniqueGrid()
	}
	isoSec, err := IsolationTimes(cfg)
	if err != nil {
		return nil, err
	}

	type baseRes struct {
		avg, maxFlow, maxStretch, tput float64
		tasks                          []metrics.TaskStat
	}
	baseRuns, err := cfg.baselines(cfg.DurationSec)
	if err != nil {
		return nil, err
	}
	bases := map[uint64]baseRes{}
	for seed, base := range baseRuns {
		ms, err := metrics.MaxStretch(base.Tasks, isoSec)
		if err != nil {
			return nil, err
		}
		bases[seed] = baseRes{
			avg:        metrics.AvgProcessTime(base.Tasks),
			maxFlow:    metrics.MaxFlow(base.Tasks),
			maxStretch: ms,
			tput:       float64(base.TotalInstructions),
			tasks:      base.Tasks,
		}
	}

	grid := make([]dist.Spec, 0, len(variants)*len(cfg.Seeds))
	for _, params := range variants {
		for _, seed := range cfg.Seeds {
			grid = append(grid, cfg.runCfg(sim.Tuned, params, cfg.Tuning, 0, seed, cfg.DurationSec))
		}
	}
	results, err := cfg.sweep(grid)
	if err != nil {
		return nil, err
	}

	rows := make([]FairnessRow, len(variants))
	for vi, params := range variants {
		var mf, mstr, avg, matched, tp []float64
		for si, seed := range cfg.Seeds {
			tuned := results[vi*len(cfg.Seeds)+si]
			ms, err := metrics.MaxStretch(tuned.Tasks, isoSec)
			if err != nil {
				return nil, err
			}
			b := bases[seed]
			mf = append(mf, metrics.PercentDecrease(b.maxFlow, metrics.MaxFlow(tuned.Tasks)))
			mstr = append(mstr, metrics.PercentDecrease(b.maxStretch, ms))
			avg = append(avg, metrics.PercentDecrease(b.avg, metrics.AvgProcessTime(tuned.Tasks)))
			matched = append(matched, matchedAvgImprovement(b.tasks, tuned.Tasks))
			tp = append(tp, metrics.PercentIncrease(b.tput, float64(tuned.TotalInstructions)))
		}
		rows[vi] = FairnessRow{
			Variant:       params.Name(),
			MaxFlowPct:    metrics.Mean(mf),
			MaxStretchPct: metrics.Mean(mstr),
			AvgTimePct:    metrics.Mean(avg),
			MatchedAvgPct: metrics.Mean(matched),
			ThroughputPct: metrics.Mean(tp),
		}
	}
	return rows, nil
}

// IsolationTimes returns per-benchmark baseline isolation runtimes (the t_j
// of max-stretch).
func IsolationTimes(cfg Config) (map[string]float64, error) {
	iso, err := sim.IsolationContext(context.Background(), sim.IsolationSpec{
		Suite: cfg.Suite, Machine: cfg.Machine, Cost: cfg.Cost, Sched: cfg.Sched,
		Mode: sim.Baseline, Typing: cfg.Typing, Seed: 1,
		Workers: cfg.Workers, Cache: cfg.cache(),
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(iso))
	for n, r := range iso {
		out[n] = r.RuntimeSec
	}
	return out, nil
}

// Fig8Tradeoff reuses Table 2 rows: x = max-stretch decrease, y = average
// time decrease. It exists as its own entry point for symmetry with the
// paper's figures.
func Fig8Tradeoff(cfg Config, variants []transition.Params) ([]FairnessRow, error) {
	return Table2Fairness(cfg, variants)
}
