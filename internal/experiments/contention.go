package experiments

import (
	"phasetune/internal/amp"
	"phasetune/internal/dist"
	"phasetune/internal/metrics"
	"phasetune/internal/place"
	"phasetune/internal/workload"
)

// ---------------------------------------------------------------------------
// Contention pricing — the shared-cache herding experiment.
//
// Every closed-batch experiment draws from the suite, whose members are
// modest L2 citizens; placement there is an IPC problem. This campaign runs
// the memory-antagonist fleet (workload.FleetAntagonist): half the slots
// stream DRAM with working sets sized to a whole L2 group, half anchor
// compute demand. IPC-only arbitration herds the antagonists — they all
// prefer the same core type, so they pile onto one cache group and thrash
// it while an equal group sits cold. The contention-priced engine sees the
// marginal cost of each co-location (place.ContentionConfig) and spreads
// them. The observable is the kernel's per-cache-group residency map
// (sim.Result.CacheStats): the fraction of memory-bound core time on the
// hottest group, which herding drives toward 1 and pricing pulls toward
// 1/groups. Every cell collects it — CacheStats is a pure observer, so
// unpriced cells measure the herding they demonstrate.

// ContentionPolicies returns the policy columns of the contention campaign:
// the stock scheduler for scale, then the engine-backed policies — the ones
// whose placements flow through place.Engine.Arbitrate and can therefore be
// contention-priced: static marks with spill arbitration, the online
// detector (probe placement), the marks+windows hybrid, and the
// perfect-knowledge oracle.
func ContentionPolicies() []ShowdownPolicy {
	return []ShowdownPolicy{
		ShowdownNone, ShowdownStaticSpill, ShowdownDynamicProbe,
		ShowdownHybrid, ShowdownOracle,
	}
}

// contentionPriceable reports whether a policy's placements flow through
// engine arbitration — the precondition for a priced variant of its cell.
func contentionPriceable(p ShowdownPolicy) bool {
	switch p {
	case ShowdownStaticSpill, ShowdownDynamicProbe, ShowdownHybrid, ShowdownOracle:
		return true
	}
	return false
}

// ContentionMachines returns the campaign machine set: the three-type hex is
// the headline platform (two same-size 4096 KB groups plus a small little
// group — herding has somewhere visible to go), the paper's quad AMP the
// sanity column (two groups, little slack).
func ContentionMachines() []*amp.Machine {
	return []*amp.Machine{amp.Hex2Big2Medium2Little(), amp.Quad2Fast2Slow()}
}

// ContentionCell is one (policy, priced) column of the campaign grid.
type ContentionCell struct {
	// Policy is the placement policy.
	Policy ShowdownPolicy
	// Priced reports whether the cell ran with contention pricing
	// (place.Config.Contention at defaults).
	Priced bool
}

// ContentionCells returns the campaign's cell axis: every policy unpriced
// (the herding measurement), then every engine-backed policy priced (the
// intervention).
func ContentionCells() []ContentionCell {
	var cells []ContentionCell
	for _, p := range ContentionPolicies() {
		cells = append(cells, ContentionCell{Policy: p})
	}
	for _, p := range ContentionPolicies() {
		if contentionPriceable(p) {
			cells = append(cells, ContentionCell{Policy: p, Priced: true})
		}
	}
	return cells
}

// ContentionRow is one (machine, policy, priced) cell aggregated over seeds.
type ContentionRow struct {
	// Machine is the machine name.
	Machine string
	// Policy is the placement policy.
	Policy ShowdownPolicy
	// Priced reports whether the engine ran contention-priced.
	Priced bool
	// Throughput is mean committed instructions per second.
	Throughput float64
	// ThroughputPct is the improvement over the same machine's unpriced
	// ShowdownNone row, in percent.
	ThroughputPct float64
	// MemShare is the per-cache-group share of memory-bound core time
	// (Σ = 1 when any antagonist ran), averaged over seeds, in machine
	// group order. The herding signature reads directly off it.
	MemShare []float64
	// MaxMemShare is the hottest group's share — 1.0 means every
	// memory-bound cycle ran on one cache group (fully herded); 1/groups
	// is a perfect spread.
	MaxMemShare float64
	// GroupsUsed is the mean number of cache groups that hosted any
	// memory-bound time.
	GroupsUsed float64
	// MemTasks is the mean number of tasks classified memory-bound.
	MemTasks float64
	// Switches is the mean core-switch count across the run.
	Switches float64
}

// contentionRunCfg builds one wire spec: the showdown policy lowering with
// the workload swapped for the antagonist fleet, the kernel's cache-group
// residency map enabled, and — for priced cells — the contention config at
// defaults.
func contentionRunCfg(cfg Config, cell ContentionCell, seed uint64) dist.Spec {
	sp := showdownRunCfg(cfg, cell.Policy, seed)
	sp.Queues.Fleet = workload.FleetAntagonist
	sp.CacheStats = true
	if cell.Priced {
		sp.Placement.Contention = &place.ContentionConfig{}
	}
	return sp
}

// contentionGrid builds one machine's (cell × seed) grid, cell-major
// (cfg.Machine must already be set).
func contentionGrid(cfg Config) []dist.Spec {
	cells := ContentionCells()
	grid := make([]dist.Spec, 0, len(cells)*len(cfg.Seeds))
	for _, cell := range cells {
		for _, seed := range cfg.Seeds {
			grid = append(grid, contentionRunCfg(cfg, cell, seed))
		}
	}
	return grid
}

// ContentionCampaign packages one machine's contention grid as a
// distributable campaign (cmd/sweepd serves it to workers).
func ContentionCampaign(cfg Config, machine *amp.Machine) dist.Campaign {
	mcfg := cfg
	mcfg.Machine = machine
	return dist.Campaign{Env: mcfg.Env(), Specs: contentionGrid(mcfg)}
}

// Contention runs the herding campaign on the given machines (default:
// ContentionMachines — hex then quad). Rows come back machine-major in
// ContentionCells order: every policy unpriced, then the engine-backed
// policies priced. The improvement column is relative to the same machine's
// unpriced ShowdownNone row.
func Contention(cfg Config, machines []*amp.Machine) ([]ContentionRow, error) {
	if machines == nil {
		machines = ContentionMachines()
	}
	cells := ContentionCells()
	var rows []ContentionRow
	for _, machine := range machines {
		mcfg := cfg
		mcfg.Machine = machine
		// The antagonist fleet regenerates from (cost, machine); the suite
		// still rides along in the environment for worker validation.
		suite, err := workload.Suite(mcfg.Cost, machine)
		if err != nil {
			return nil, err
		}
		mcfg.Suite = suite

		results, err := mcfg.sweep(contentionGrid(mcfg))
		if err != nil {
			return nil, err
		}
		nSeeds := len(mcfg.Seeds)

		for ci, cell := range cells {
			row := ContentionRow{Machine: machine.Name, Policy: cell.Policy, Priced: cell.Priced}
			var tputs, tputPcts []float64
			for si := 0; si < nSeeds; si++ {
				base, res := results[si], results[ci*nSeeds+si]
				bt := metrics.ThroughputOver(base.Samples, 0, mcfg.DurationSec)
				rt := metrics.ThroughputOver(res.Samples, 0, mcfg.DurationSec)
				tputs = append(tputs, rt)
				tputPcts = append(tputPcts, metrics.PercentIncrease(bt, rt))
				for _, t := range res.Tasks {
					row.Switches += float64(t.Migrations)
				}
				if cs := res.CacheStats; cs != nil {
					var totalMem int64
					for _, ps := range cs.GroupMemPs {
						totalMem += ps
					}
					if row.MemShare == nil {
						row.MemShare = make([]float64, len(cs.GroupMemPs))
					}
					if totalMem > 0 {
						for g, ps := range cs.GroupMemPs {
							row.MemShare[g] += float64(ps) / float64(totalMem)
						}
					}
					for _, ps := range cs.GroupMemPs {
						if ps > 0 {
							row.GroupsUsed++
						}
					}
					row.MemTasks += float64(cs.MemTasks)
				}
			}
			n := float64(nSeeds)
			row.Throughput = metrics.Mean(tputs)
			row.ThroughputPct = metrics.Mean(tputPcts)
			row.Switches /= n
			row.GroupsUsed /= n
			row.MemTasks /= n
			for g := range row.MemShare {
				row.MemShare[g] /= n
				if row.MemShare[g] > row.MaxMemShare {
					row.MaxMemShare = row.MemShare[g]
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
