package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"phasetune/internal/amp"
	"phasetune/internal/dist"
	"phasetune/internal/exec"
	"phasetune/internal/place"
	"phasetune/internal/sim"
	"phasetune/internal/workload"
)

// contentionTestConfig returns a scaled config for the antagonist campaign:
// 12 slots over 60 seconds and one seed — wide enough that the hex's three
// cache groups all see demand, short enough for CI.
func contentionTestConfig(t *testing.T) Config {
	t.Helper()
	cfg, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	return cfg.Scale(12, 60, []uint64{5})
}

func contentionRowOf(t *testing.T, rows []ContentionRow, p ShowdownPolicy, priced bool) ContentionRow {
	t.Helper()
	for _, r := range rows {
		if r.Policy == p && r.Priced == priced {
			return r
		}
	}
	t.Fatalf("no row for %s priced=%v", p, priced)
	return ContentionRow{}
}

// TestContentionSeparatesAntagonistsOnHex is the tentpole assertion: on the
// hex machine the antagonist fleet herds under unpriced placement — the
// clairvoyant oracle worst of all, since its static estimates send every
// antagonist to the same "best" type — and contention pricing separates the
// fleet onto distinct cache groups and recovers the lost throughput.
func TestContentionSeparatesAntagonistsOnHex(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-policy antagonist sweep")
	}
	cfg := contentionTestConfig(t)
	rows, err := Contention(cfg, []*amp.Machine{amp.Hex2Big2Medium2Little()})
	if err != nil {
		t.Fatal(err)
	}

	// Herding: the unpriced oracle concentrates essentially all antagonist
	// core time on one cache group.
	herd := contentionRowOf(t, rows, ShowdownOracle, false)
	if herd.MaxMemShare < 0.9 {
		t.Errorf("unpriced oracle max group share %.3f, want >= 0.9 (herding)", herd.MaxMemShare)
	}
	if herd.MemTasks == 0 {
		t.Fatalf("no tasks classified memory-bound; the antagonist fleet is broken")
	}

	// The fix: the priced oracle spreads antagonists over >= 2 groups and
	// recovers a large fraction of the herding loss.
	priced := contentionRowOf(t, rows, ShowdownOracle, true)
	if priced.MaxMemShare > 0.6 {
		t.Errorf("priced oracle max group share %.3f, want <= 0.6 (separated)", priced.MaxMemShare)
	}
	if priced.GroupsUsed < 2 {
		t.Errorf("priced oracle used %.1f cache groups, want >= 2", priced.GroupsUsed)
	}
	if priced.Throughput < 1.5*herd.Throughput {
		t.Errorf("priced oracle throughput %.4g, want >= 1.5x herded %.4g",
			priced.Throughput, herd.Throughput)
	}

	// Across the engine-backed policies, pricing lowers the mean hottest-
	// group share: the fleet ends up less concentrated than under IPC-only
	// arbitration on every-policy average (individual policies may trade a
	// few points as relief fights windowed re-estimates).
	var unpricedSum, pricedSum float64
	var n int
	for _, p := range ContentionPolicies() {
		if !contentionPriceable(p) {
			continue
		}
		unpricedSum += contentionRowOf(t, rows, p, false).MaxMemShare
		pricedSum += contentionRowOf(t, rows, p, true).MaxMemShare
		n++
	}
	if pricedSum/float64(n) >= unpricedSum/float64(n) {
		t.Errorf("mean priced max share %.3f not below unpriced %.3f",
			pricedSum/float64(n), unpricedSum/float64(n))
	}

	// Every row of the campaign carries the residency map it was run for.
	for _, r := range rows {
		if len(r.MemShare) != 3 {
			t.Errorf("%s priced=%v: MemShare has %d groups, want 3", r.Policy, r.Priced, len(r.MemShare))
		}
	}
}

// TestContentionLedgerConservationPriced extends the ledger's conservation
// property to contention-priced runs: relief moves and adjusted-rate spills
// reshuffle placements, but every cycle must still land in exactly one
// category — across the engine-backed policies, both campaign machines, and
// both system modes.
func TestContentionLedgerConservationPriced(t *testing.T) {
	if testing.Short() {
		t.Skip("policy x machine x mode grid")
	}
	for _, machine := range ContentionMachines() {
		for _, mode := range []string{"closed", "open"} {
			mcfg := ledgerConfig(t)
			mcfg.Machine = machine
			if mode == "open" {
				mcfg = servingConfig(mcfg, machine)
			}
			suite, err := workload.Suite(mcfg.Cost, machine)
			if err != nil {
				t.Fatal(err)
			}
			mcfg.Suite = suite
			for _, p := range ContentionPolicies() {
				if !contentionPriceable(p) {
					continue
				}
				var spec dist.Spec
				if mode == "open" {
					spec = servingRunCfg(mcfg, p, 1.25, mcfg.Seeds[0])
					spec.Placement.Contention = &place.ContentionConfig{}
					spec.CacheStats = true
				} else {
					spec = contentionRunCfg(mcfg, ContentionCell{Policy: p, Priced: true}, mcfg.Seeds[0])
				}
				rc, err := mcfg.Env().RunConfig(spec, mcfg.Suite, nil)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.Run(rc)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", machine.Name, mode, p, err)
				}
				l := res.Ledger
				if l == nil {
					t.Fatalf("%s/%s/%s: Result.Ledger is nil", machine.Name, mode, p)
				}
				if err := l.Verify(); err != nil {
					t.Errorf("%s/%s/%s: %v", machine.Name, mode, p, err)
				}
				if got, want := l.Total.Total(), int64(l.Cores)*l.HorizonPs; got != want {
					t.Errorf("%s/%s/%s: total %d ps, want cores x horizon = %d ps",
						machine.Name, mode, p, got, want)
				}
				if res.CacheStats == nil {
					t.Errorf("%s/%s/%s: CacheStats requested but nil", machine.Name, mode, p)
				}
			}
		}
	}
}

// TestContentionSpecWireCompat pins the wire-format contract of the v6
// fields: a spec not using contention pricing or cache stats encodes without
// the new keys — byte-identical to a v5 spec payload — while priced specs
// carry them.
func TestContentionSpecWireCompat(t *testing.T) {
	cfg := contentionTestConfig(t)
	plain := showdownRunCfg(cfg, ShowdownStaticSpill, 5)
	blob, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["cache_stats"]; ok {
		t.Errorf("unpriced spec encodes cache_stats: %s", blob)
	}
	var pl map[string]json.RawMessage
	if err := json.Unmarshal(m["placement"], &pl); err != nil {
		t.Fatal(err)
	}
	if _, ok := pl["contention"]; ok {
		t.Errorf("unpriced spec encodes placement.contention: %s", m["placement"])
	}
	var q map[string]json.RawMessage
	if err := json.Unmarshal(m["queues"], &q); err != nil {
		t.Fatal(err)
	}
	if _, ok := q["fleet"]; ok {
		t.Errorf("suite-draw spec encodes queues.fleet: %s", m["queues"])
	}

	priced := contentionRunCfg(cfg, ContentionCell{Policy: ShowdownStaticSpill, Priced: true}, 5)
	blob, err = json.Marshal(priced)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"cache_stats", "contention", "fleet"} {
		if !bytes.Contains(blob, []byte(`"`+key+`"`)) {
			t.Errorf("priced antagonist spec missing %q: %s", key, blob)
		}
	}
}

// TestContentionShardedMergeByteIdentical pins the fabric contract for the
// v6 fields: a contention-priced campaign cell — antagonist fleet, cache
// stats, priced placement — merges byte-identically whether it runs
// sequentially, sharded across local workers, or under the segment memo.
func TestContentionShardedMergeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("duplicate sweep")
	}
	cfg := contentionTestConfig(t)
	cfg = cfg.Scale(4, 20, []uint64{5})
	cfg.Machine = amp.Hex2Big2Medium2Little()
	cfg.Ledger = true
	suite, err := workload.Suite(cfg.Cost, cfg.Machine)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Suite = suite
	grid := []dist.Spec{
		contentionRunCfg(cfg, ContentionCell{Policy: ShowdownStaticSpill, Priced: true}, 5),
		contentionRunCfg(cfg, ContentionCell{Policy: ShowdownOracle, Priced: true}, 5),
	}
	camp := dist.Campaign{Env: cfg.Env(), Specs: grid}

	var seq [][]byte
	for _, sp := range grid {
		rc, err := camp.Env.RunConfig(sp, cfg.Suite, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(rc)
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheStats == nil {
			t.Fatal("sequential run dropped CacheStats")
		}
		blob, err := dist.EncodeResult(res)
		if err != nil {
			t.Fatal(err)
		}
		seq = append(seq, blob)
	}

	sharded, err := dist.RunLocal(context.Background(), camp, dist.LocalOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range grid {
		blob, err := dist.EncodeResult(sharded[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seq[i], blob) {
			t.Errorf("spec %d: sharded result bytes differ from sequential", i)
		}
	}

	// Memoized execution must be invisible to the priced path too.
	memo := exec.NewSegmentMemo(0)
	for i, sp := range grid {
		rc, err := camp.Env.RunConfig(sp, cfg.Suite, nil)
		if err != nil {
			t.Fatal(err)
		}
		rc.Memo = memo
		res, err := sim.Run(rc)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := dist.EncodeResult(res)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seq[i], blob) {
			t.Errorf("spec %d: memoized result bytes differ from plain", i)
		}
	}
}
