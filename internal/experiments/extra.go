package experiments

import (
	"phasetune/internal/amp"
	"phasetune/internal/cfg"
	"phasetune/internal/exec"
	"phasetune/internal/instrument"
	"phasetune/internal/isa"
	"phasetune/internal/metrics"
	"phasetune/internal/osched"
	"phasetune/internal/perfcnt"
	"phasetune/internal/phase"
	"phasetune/internal/place"
	"phasetune/internal/prog"
	"phasetune/internal/sim"
	"phasetune/internal/transition"
	"phasetune/internal/tuning"
	"phasetune/internal/workload"
)

// ---------------------------------------------------------------------------
// §IV-B3 — core-switch cost micro-measurement.

// SwitchCostResult reports the measured per-switch cost.
type SwitchCostResult struct {
	// CyclesPerSwitch is the measured cost under the scaled clock.
	CyclesPerSwitch float64
	// DescaledCycles multiplies by workload.ScaleDivisor for comparison
	// with the paper's ~1000 cycles.
	DescaledCycles float64
	// Switches is the number of migrations the probe performed.
	Switches int
}

// SwitchCost reproduces the paper's micro-methodology: "writing a program
// that alternates between cores and then counting the cycles of execution"
// — run the alternator, run a pinned control, divide the extra time by the
// switch count.
func SwitchCost(cfg Config) (SwitchCostResult, error) {
	alternations := 2000
	p := &prog.Program{
		Name: "switchprobe",
		Procs: []*prog.Procedure{{
			Name: "main",
			Instrs: []isa.Instruction{
				{Op: isa.PhaseMark, MarkID: 0, Bytes: 73},
				{Op: isa.IntALU}, {Op: isa.IntALU},
				{Op: isa.Branch, Target: 0, TripCount: int32(alternations), TakenProb: 0.99},
				{Op: isa.Ret},
			},
		}},
	}
	bin := &instrument.Binary{Prog: p, Marks: []instrument.Mark{{ID: 0, Type: 0}}}

	run := func(hook exec.MarkHook, affinity uint64) (int64, int, error) {
		kernel, err := osched.NewKernel(cfg.Machine, cfg.Cost, cfg.Sched)
		if err != nil {
			return 0, 0, err
		}
		img, err := exec.NewImage(p, bin, cfg.Cost)
		if err != nil {
			return 0, 0, err
		}
		proc := exec.NewProcess(kernel.NextPID(), img, &kernel.Cost, 1, hook)
		task := kernel.Spawn(proc, "probe", 0, affinity)
		if err := kernel.RunUntilDone(1e6); err != nil {
			return 0, 0, err
		}
		return task.CompletionPs - task.ArrivalPs, task.Migrations, nil
	}

	// Alternate between one fast and one slow core on every mark.
	alt := &alternator{masks: []uint64{amp.CoreMask(0), amp.CoreMask(cfg.Machine.NumCores() - 1)}}
	altPs, switches, err := run(alt, 0)
	if err != nil {
		return SwitchCostResult{}, err
	}
	pinPs, _, err := run(nil, amp.CoreMask(0))
	if err != nil {
		return SwitchCostResult{}, err
	}
	if switches == 0 {
		return SwitchCostResult{}, nil
	}
	// Convert the extra wall time to fast-core cycles. The alternator also
	// spends half its bursts on the slow core; the pinned control runs all
	// fast, so subtract the expected clock-ratio inflation first by running
	// the comparison in time and charging cycles at the fast clock. This is
	// the paper's level of precision ("more precise measurement could be
	// done, but this is sufficient").
	extraSec := osched.PsToSec(altPs - pinPs)
	cycles := extraSec * cfg.Machine.Types[0].CyclesPerSec / float64(switches)
	return SwitchCostResult{
		CyclesPerSwitch: cycles,
		DescaledCycles:  cycles * workload.ScaleDivisor,
		Switches:        switches,
	}, nil
}

type alternator struct {
	masks []uint64
	i     int
}

func (a *alternator) OnMark(p *exec.Process, markID, coreID int) exec.MarkAction {
	a.i++
	return exec.MarkAction{Mask: a.masks[a.i%len(a.masks)]}
}
func (a *alternator) OnExit(p *exec.Process) {}

// ---------------------------------------------------------------------------
// §II-A3 — static typing accuracy against observed behavior.

// TypingAccuracyResult reports agreement between the static k-means typing
// and an oracle typing built from observed per-core-type IPC (the paper:
// "this technique miss-classifies only about 15% of loops").
type TypingAccuracyResult struct {
	// Agreement is the fraction of blocks typed identically.
	Agreement float64
	// Blocks is the number of blocks compared.
	Blocks int
}

// TypingAccuracy profiles every large block of every suite benchmark on both
// core types in isolation and compares k-means types with the IPC-derived
// oracle.
func TypingAccuracy(cfg Config, ipcThreshold float64) (TypingAccuracyResult, error) {
	pars := exec.ParamsFor(cfg.Cost, cfg.Machine)
	totalCommon, totalAgree := 0, 0
	for _, b := range cfg.Suite {
		graphs, err := cfg2graphs(b.Prog)
		if err != nil {
			return TypingAccuracyResult{}, err
		}
		static, err := phase.ClusterBlocks(b.Prog, graphs, cfg.Typing)
		if err != nil {
			return TypingAccuracyResult{}, err
		}
		// Observed IPC per block per core type, from the block cost model
		// itself (execution in isolation with the full cache share).
		ipc := map[phase.BlockKey][]float64{}
		for pi, g := range graphs {
			for _, blk := range g.Blocks {
				key := phase.BlockKey{Proc: pi, Block: blk.ID}
				if static.TypeOf(key) == phase.Untyped {
					continue
				}
				var vals []float64
				for t := range pars {
					vals = append(vals, exec.BlockIPC(blk, &pars[t], cfg.Cost, cfg.Machine.L2s[0].SizeKB))
				}
				ipc[key] = vals
			}
		}
		oracle := phase.OracleTyping(ipc, ipcThreshold)
		for key, st := range static.Types {
			ot, ok := oracle.Types[key]
			if !ok {
				continue
			}
			totalCommon++
			// Compare on the memory-leaning axis: static type>0 means
			// memory-leaning cluster, oracle type 1 means slow-core-favored.
			if (st > 0) == (ot == 1) {
				totalAgree++
			}
		}
	}
	if totalCommon == 0 {
		return TypingAccuracyResult{}, nil
	}
	return TypingAccuracyResult{
		Agreement: float64(totalAgree) / float64(totalCommon),
		Blocks:    totalCommon,
	}, nil
}

func cfg2graphs(p *prog.Program) ([]*cfg.Graph, error) { return cfg.BuildAll(p) }

// ---------------------------------------------------------------------------
// §VII — the 3-core (2 fast, 1 slow) future-work configuration.

// ThreeCoreResult compares tuned and baseline average process time on the
// 3-core machine (paper: ~32% speedup).
type ThreeCoreResult struct {
	// AvgTimePct is the percent decrease in raw average process time.
	AvgTimePct float64
	// MatchedAvgPct is the instance-matched decrease (censoring-free).
	MatchedAvgPct float64
	// ThroughputPct is the throughput improvement.
	ThroughputPct float64
}

// ThreeCore runs the Table 2 headline comparison on the 3-core machine.
func ThreeCore(cfg Config) (ThreeCoreResult, error) {
	cfg.Machine = amp.ThreeCore2Fast1Slow()
	suite, err := workload.Suite(cfg.Cost, cfg.Machine)
	if err != nil {
		return ThreeCoreResult{}, err
	}
	cfg.Suite = suite
	rows, err := Table2Fairness(cfg, []transition.Params{BestParams()})
	if err != nil {
		return ThreeCoreResult{}, err
	}
	return ThreeCoreResult{
		AvgTimePct:    rows[0].AvgTimePct,
		MatchedAvgPct: rows[0].MatchedAvgPct,
		ThroughputPct: rows[0].ThroughputPct,
	}, nil
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5, "Experiment drivers").

// AblationRow is a generic named comparison row.
type AblationRow struct {
	Name          string
	AvgTimePct    float64
	ThroughputPct float64
	MaxStretchPct float64
}

// AblationPinMode compares pin-to-core-type (default) against pin-to-single-
// core (the paper's literal Algorithm 2 output) for the best technique.
func AblationPinMode(cfg Config) ([]AblationRow, error) {
	var rows []AblationRow
	for _, single := range []bool{false, true} {
		t := cfg.Tuning
		t.PinSingleCore = single
		c := cfg
		c.Tuning = t
		res, err := Table2Fairness(c, []transition.Params{BestParams()})
		if err != nil {
			return nil, err
		}
		name := "pin-type"
		if single {
			name = "pin-core"
		}
		rows = append(rows, AblationRow{
			Name:          name,
			AvgTimePct:    res[0].AvgTimePct,
			ThroughputPct: res[0].ThroughputPct,
			MaxStretchPct: res[0].MaxStretchPct,
		})
	}
	return rows, nil
}

// AblationMonitorBound compares bounded monitoring windows (default) against
// the strict paper reading (samples close only at marks).
func AblationMonitorBound(cfg Config) ([]AblationRow, error) {
	var rows []AblationRow
	for _, bound := range []uint64{cfg.Tuning.MaxMonitorCycles, 0} {
		t := cfg.Tuning
		t.MaxMonitorCycles = bound
		c := cfg
		c.Tuning = t
		res, err := Table2Fairness(c, []transition.Params{BestParams()})
		if err != nil {
			return nil, err
		}
		name := "bounded-monitor"
		if bound == 0 {
			name = "mark-only-monitor"
		}
		rows = append(rows, AblationRow{
			Name:          name,
			AvgTimePct:    res[0].AvgTimePct,
			ThroughputPct: res[0].ThroughputPct,
			MaxStretchPct: res[0].MaxStretchPct,
		})
	}
	return rows, nil
}

// AblationPropagation compares type propagation through untyped sections
// against the naive edge rule, in static mark counts.
func AblationPropagation(cfg Config) ([]AblationRow, error) {
	var rows []AblationRow
	for _, propagate := range []bool{true, false} {
		params := BestParams()
		params.PropagateThroughUntyped = propagate
		marks := 0
		for _, b := range cfg.Suite {
			art, err := cfg.artifact(b, params)
			if err != nil {
				return nil, err
			}
			marks += art.Stats.Marks
		}
		name := "propagate"
		if !propagate {
			name = "naive-edges"
		}
		rows = append(rows, AblationRow{Name: name, AvgTimePct: float64(marks)})
	}
	return rows, nil
}

// CounterContention reports event-set contention under a bounded counter
// pool (the paper's "processes seldom have to wait" claim, §III).
type CounterContentionResult struct {
	// Defers counts monitoring requests that found no free event set.
	Defers uint64
	// Samples counts accepted samples across all processes.
	Marks uint64
}

// CounterContentionCheck runs one tuned workload with a small bounded pool.
func CounterContentionCheck(cfg Config, slots int) (CounterContentionResult, error) {
	sched := cfg.Sched
	sched.CounterSlots = slots
	w := workload.BuildWorkload(cfg.Suite, cfg.Slots, cfg.QueueLen, cfg.Seeds[0])
	res, err := sim.Run(sim.RunConfig{
		Machine: cfg.Machine, Cost: &cfg.Cost, Sched: &sched,
		Workload: w, DurationSec: cfg.DurationSec, Mode: sim.Tuned,
		Params: BestParams(), Tuning: cfg.Tuning, TypingOpts: cfg.Typing, Seed: cfg.Seeds[0],
		Cache: cfg.cache(),
	})
	if err != nil {
		return CounterContentionResult{}, err
	}
	marks := uint64(0)
	for _, t := range res.Tasks {
		marks += t.MarksExecuted
	}
	return CounterContentionResult{Defers: res.CounterDefers, Marks: marks}, nil
}

// ---------------------------------------------------------------------------
// Temporal baseline (§V, Kumar et al.): resample every interval instead of
// positionally at phase marks.

// TemporalTuner is a time-driven adaptation baseline: every ResampleCycles
// it rotates the process across core types measuring IPC, then pins to the
// Algorithm 2 choice, and repeats forever. It ignores phase marks.
type TemporalTuner struct {
	cfg      tuning.Config
	machine  *amp.Machine
	resample uint64

	lastCycles uint64
	probing    int
	samples    []float64
	es         perfcnt.EventSet
	active     bool
}

// NewTemporalTuner builds the baseline hook.
func NewTemporalTuner(cfg tuning.Config, machine *amp.Machine, resampleCycles uint64) *TemporalTuner {
	return &TemporalTuner{cfg: cfg, machine: machine, resample: resampleCycles,
		samples: make([]float64, len(machine.Types))}
}

// OnMark ignores marks (charges only their cost).
func (t *TemporalTuner) OnMark(p *exec.Process, markID, coreID int) exec.MarkAction {
	return exec.MarkAction{}
}

// OnExit implements exec.MarkHook.
func (t *TemporalTuner) OnExit(p *exec.Process) {}

// OnQuantum drives the temporal sampling state machine.
func (t *TemporalTuner) OnQuantum(p *exec.Process, coreID int) exec.MarkAction {
	now := p.Counters.Cycles
	if !t.active {
		if now-t.lastCycles < t.resample {
			return exec.MarkAction{}
		}
		// Begin a sampling round on core type 0.
		t.active = true
		t.probing = 0
		t.es = perfcnt.Start(&p.Counters)
		return exec.MarkAction{Mask: t.machine.TypeMask(0)}
	}
	instrs, cycles := t.es.Stop(&p.Counters)
	if cycles < t.resample/8 {
		return exec.MarkAction{} // keep sampling this type a bit longer
	}
	t.samples[t.probing] = perfcnt.IPC(instrs, cycles)
	t.probing++
	if t.probing < len(t.machine.Types) {
		t.es = perfcnt.Start(&p.Counters)
		return exec.MarkAction{Mask: t.machine.TypeMask(amp.CoreTypeID(t.probing))}
	}
	// Round complete: pin to the Algorithm 2 choice until next resample.
	t.active = false
	t.lastCycles = now
	target := place.Select(t.machine, t.samples, t.cfg.Delta)
	return exec.MarkAction{Mask: t.machine.TypeMask(target)}
}

// AblationTemporal compares positional (phase-mark) adaptation with the
// temporal resampling baseline.
func AblationTemporal(cfg Config, resampleCycles uint64) ([]AblationRow, error) {
	rows, err := Table2Fairness(cfg, []transition.Params{BestParams()})
	if err != nil {
		return nil, err
	}
	out := []AblationRow{{
		Name:          "positional(loop45)",
		AvgTimePct:    rows[0].AvgTimePct,
		ThroughputPct: rows[0].ThroughputPct,
		MaxStretchPct: rows[0].MaxStretchPct,
	}}

	isoSec, err := IsolationTimes(cfg)
	if err != nil {
		return nil, err
	}
	bases, err := cfg.baselines(cfg.DurationSec)
	if err != nil {
		return nil, err
	}
	var avgs, tputs, mss []float64
	for _, seed := range cfg.Seeds {
		w := workload.BuildWorkload(cfg.Suite, cfg.Slots, cfg.QueueLen, seed)
		base := bases[seed]
		temporal, err := runTemporal(cfg, w, seed, resampleCycles)
		if err != nil {
			return nil, err
		}
		bms, err := metrics.MaxStretch(base.Tasks, isoSec)
		if err != nil {
			return nil, err
		}
		tms, err := metrics.MaxStretch(temporal.Tasks, isoSec)
		if err != nil {
			return nil, err
		}
		avgs = append(avgs, metrics.PercentDecrease(metrics.AvgProcessTime(base.Tasks), metrics.AvgProcessTime(temporal.Tasks)))
		tputs = append(tputs, metrics.PercentIncrease(float64(base.TotalInstructions), float64(temporal.TotalInstructions)))
		mss = append(mss, metrics.PercentDecrease(bms, tms))
	}
	out = append(out, AblationRow{
		Name:          "temporal(kumar)",
		AvgTimePct:    metrics.Mean(avgs),
		ThroughputPct: metrics.Mean(tputs),
		MaxStretchPct: metrics.Mean(mss),
	})
	return out, nil
}

// runTemporal mirrors sim.Run with TemporalTuner hooks on uninstrumented
// images.
func runTemporal(cfg Config, w *workload.Workload, seed uint64, resampleCycles uint64) (*sim.Result, error) {
	return sim.RunWithHook(sim.RunConfig{
		Machine: cfg.Machine, Cost: &cfg.Cost, Sched: &cfg.Sched,
		Workload: w, DurationSec: cfg.DurationSec, Mode: sim.Baseline, Seed: seed,
		Cache: cfg.cache(),
	}, func(k *osched.Kernel, img *exec.Image) exec.MarkHook {
		return NewTemporalTuner(cfg.Tuning, cfg.Machine, resampleCycles)
	})
}
