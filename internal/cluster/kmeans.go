// Package cluster implements k-means clustering (MacQueen 1967), the
// grouping algorithm the paper uses to classify basic blocks into phase
// types from their static features (§II-A3: "the blocks are then grouped
// using the k-means clustering algorithm").
package cluster

import (
	"errors"
	"fmt"
	"math"

	"phasetune/internal/rng"
)

// Point is a feature vector. All points handed to KMeans must share one
// dimensionality.
type Point []float64

// sqDist returns the squared Euclidean distance between two points.
func sqDist(a, b Point) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Result is the outcome of a k-means run.
type Result struct {
	// Centroids are the final cluster centers, len K.
	Centroids []Point
	// Assign maps each input point to its cluster index in [0, K).
	Assign []int
	// Inertia is the sum of squared distances from points to their centroid.
	Inertia float64
	// Iters is the number of Lloyd iterations performed.
	Iters int
}

// ErrNoPoints is returned when the input is empty.
var ErrNoPoints = errors.New("cluster: no points")

// KMeans clusters points into k groups using k-means++ seeding followed by
// Lloyd iterations, stopping at convergence or maxIter. The run is
// deterministic given r. If fewer than k distinct points exist, the extra
// clusters are left empty (their centroids duplicate existing points) —
// callers typically use small k (two core types: paper §VI-C).
func KMeans(points []Point, k int, r *rng.Source, maxIter int) (*Result, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	if k <= 0 {
		return nil, fmt.Errorf("cluster: k = %d, want > 0", k)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	if maxIter <= 0 {
		maxIter = 100
	}

	centroids := seedPlusPlus(points, k, r)
	assign := make([]int, len(points))
	counts := make([]int, k)
	res := &Result{}

	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, ct := range centroids {
				if d := sqDist(p, ct); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best || iter == 0 {
				assign[i] = best
				changed = true
			}
		}
		res.Iters = iter + 1
		if !changed {
			break
		}
		// Recompute centroids.
		for c := range centroids {
			counts[c] = 0
			for d := range centroids[c] {
				centroids[c][d] = 0
			}
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d := range p {
				centroids[c][d] += p[d]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Empty cluster: re-seed on the farthest point from its
				// centroid to avoid dead centers.
				far, farD := 0, -1.0
				for i, p := range points {
					if d := sqDist(p, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(centroids[c], points[far])
				continue
			}
			inv := 1 / float64(counts[c])
			for d := range centroids[c] {
				centroids[c][d] *= inv
			}
		}
	}

	res.Centroids = centroids
	res.Assign = assign
	for i, p := range points {
		res.Inertia += sqDist(p, centroids[assign[i]])
	}
	return res, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting
// (Arthur & Vassilvitskii 2007): the first uniformly, each next with
// probability proportional to its squared distance from the nearest chosen
// centroid.
func seedPlusPlus(points []Point, k int, r *rng.Source) []Point {
	centroids := make([]Point, 0, k)
	first := points[r.Intn(len(points))]
	centroids = append(centroids, clonePoint(first))

	d2 := make([]float64, len(points))
	for len(centroids) < k {
		total := 0.0
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with existing centroids; duplicate one.
			centroids = append(centroids, clonePoint(points[r.Intn(len(points))]))
			continue
		}
		target := r.Float64() * total
		acc := 0.0
		pick := len(points) - 1
		for i, w := range d2 {
			acc += w
			if acc >= target {
				pick = i
				break
			}
		}
		centroids = append(centroids, clonePoint(points[pick]))
	}
	return centroids
}

func clonePoint(p Point) Point {
	c := make(Point, len(p))
	copy(c, p)
	return c
}

// Nearest returns the index of the centroid nearest to p.
func Nearest(centroids []Point, p Point) int {
	best, bestD := 0, math.Inf(1)
	for c, ct := range centroids {
		if d := sqDist(p, ct); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}
