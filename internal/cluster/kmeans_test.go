package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"phasetune/internal/rng"
)

// twoBlobs returns points in two well-separated clusters.
func twoBlobs(n int, seed uint64) []Point {
	r := rng.New(seed)
	pts := make([]Point, 0, 2*n)
	for i := 0; i < n; i++ {
		pts = append(pts, Point{0.1 + 0.05*r.Float64(), 0.1 + 0.05*r.Float64()})
	}
	for i := 0; i < n; i++ {
		pts = append(pts, Point{0.9 + 0.05*r.Float64(), 0.9 + 0.05*r.Float64()})
	}
	return pts
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	pts := twoBlobs(50, 1)
	res, err := KMeans(pts, 2, rng.New(2), 0)
	if err != nil {
		t.Fatalf("KMeans: %v", err)
	}
	// All points of each blob must share a label, and the blobs must differ.
	first, second := res.Assign[0], res.Assign[50]
	if first == second {
		t.Fatalf("blobs merged: labels %d, %d", first, second)
	}
	for i := 0; i < 50; i++ {
		if res.Assign[i] != first {
			t.Errorf("blob A point %d labeled %d, want %d", i, res.Assign[i], first)
		}
		if res.Assign[50+i] != second {
			t.Errorf("blob B point %d labeled %d, want %d", i, res.Assign[50+i], second)
		}
	}
}

func TestAssignmentsAreNearestCentroid(t *testing.T) {
	pts := twoBlobs(40, 3)
	res, err := KMeans(pts, 3, rng.New(4), 0)
	if err != nil {
		t.Fatalf("KMeans: %v", err)
	}
	for i, p := range pts {
		if n := Nearest(res.Centroids, p); n != res.Assign[i] {
			// Equal distances may tie; accept only exact-distance ties.
			dn, da := sqDist(p, res.Centroids[n]), sqDist(p, res.Centroids[res.Assign[i]])
			if math.Abs(dn-da) > 1e-12 {
				t.Errorf("point %d assigned to %d (d=%g) but nearest is %d (d=%g)", i, res.Assign[i], da, n, dn)
			}
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	pts := twoBlobs(30, 5)
	a, err := KMeans(pts, 2, rng.New(7), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(pts, 2, rng.New(7), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("same seed produced different assignment at %d", i)
		}
	}
	if a.Inertia != b.Inertia {
		t.Errorf("same seed produced different inertia: %g vs %g", a.Inertia, b.Inertia)
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, 2, rng.New(1), 0); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := KMeans([]Point{{1}}, 0, rng.New(1), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans([]Point{{1, 2}, {1}}, 1, rng.New(1), 0); err == nil {
		t.Error("mismatched dimensions accepted")
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	pts := []Point{{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}}
	res, err := KMeans(pts, 2, rng.New(9), 0)
	if err != nil {
		t.Fatalf("KMeans on identical points: %v", err)
	}
	if res.Inertia != 0 {
		t.Errorf("inertia = %g, want 0", res.Inertia)
	}
}

func TestKMeansSinglePointPerCluster(t *testing.T) {
	pts := []Point{{0}, {10}}
	res, err := KMeans(pts, 2, rng.New(11), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] == res.Assign[1] {
		t.Error("two distant points share a cluster with k=2")
	}
	if res.Inertia > 1e-12 {
		t.Errorf("inertia = %g, want 0", res.Inertia)
	}
}

func TestInertiaNonNegativeAndLabelsInRange(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		pts := twoBlobs(20, seed)
		res, err := KMeans(pts, 4, rng.New(seed+1), 0)
		if err != nil {
			return false
		}
		if res.Inertia < 0 {
			return false
		}
		for _, a := range res.Assign {
			if a < 0 || a >= 4 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMoreClustersNeverWorse(t *testing.T) {
	// Inertia with k=2 should be no worse than k=1 on separated blobs.
	pts := twoBlobs(40, 13)
	r1, err := KMeans(pts, 1, rng.New(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := KMeans(pts, 2, rng.New(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Inertia > r1.Inertia {
		t.Errorf("k=2 inertia %g > k=1 inertia %g", r2.Inertia, r1.Inertia)
	}
}
