// Package rng provides a small, fast, deterministic pseudo-random number
// source used throughout the simulator. Every consumer receives an explicit
// *Source; there is no global state, so any experiment is a pure function of
// its configuration seeds and results are bit-for-bit reproducible.
//
// The generator is splitmix64 (Steele, Lea, Flood; JDK SplittableRandom),
// which passes BigCrush when used as a 64-bit stream and is trivially
// splittable: deriving independent child streams for sub-components (one per
// process, one per workload slot, ...) keeps components decoupled so adding
// randomness in one place does not perturb another.
package rng

import "math"

// Source is a deterministic stream of pseudo-random numbers.
// The zero value is a valid stream (seed 0); prefer New.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// State exposes the raw generator state. splitmix64 keeps its entire
// stream position in one word, which is what makes execution state
// snapshot/restore (and content-keying cached segment outcomes on the
// stream position) exact: two sources with equal State produce identical
// streams forever.
func (s *Source) State() uint64 { return s.state }

// SetState restores a position previously captured with State.
func (s *Source) SetState(v uint64) { s.state = v }

// golden gamma, the splitmix64 state increment.
const gamma = 0x9e3779b97f4a7c15

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	s.state += gamma
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives an independent child stream. The child's sequence does not
// overlap the parent's for any practical stream length, and advancing the
// child does not advance the parent.
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64()}
}

// Float64 returns a uniformly distributed value in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high-quality bits -> [0,1) with full double precision.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method, bias-free.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	al, ah := a&mask, a>>32
	bl, bh := b&mask, b>>32
	t := ah*bl + (al*bl)>>32
	lo = a * b
	hi = ah*bh + (t >> 32) + (al*bh+t&mask)>>32
	return hi, lo
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normally distributed value (mean 0,
// stddev 1) using the Marsaglia polar method.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Geometric returns a sample from a geometric distribution with success
// probability p, counting the number of failures before the first success
// (support {0, 1, 2, ...}, mean (1-p)/p). It panics unless 0 < p <= 1.
func (s *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric called with p outside (0, 1]")
	}
	if p == 1 {
		return 0
	}
	u := s.Float64()
	// Inversion: floor(ln(1-u) / ln(1-p)).
	return int(math.Log1p(-u) / math.Log1p(-p))
}
