package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Advancing the child must not perturb the parent relative to a fresh
	// parent that also split once.
	ref := New(7)
	ref.Split()
	for i := 0; i < 100; i++ {
		child.Uint64()
	}
	for i := 0; i < 100; i++ {
		if parent.Uint64() != ref.Uint64() {
			t.Fatalf("parent stream perturbed by child at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(1)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g, want [0,1)", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	err := quick.Check(func(seed uint64, n int) bool {
		if n <= 0 {
			n = -n + 1
		}
		n = n%1000 + 1
		s := New(seed)
		for i := 0; i < 100; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(3)
	const n, iters = 10, 100000
	counts := make([]int, n)
	for i := 0; i < iters; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(iters) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want about %.0f", v, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPerm(t *testing.T) {
	s := New(9)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %g, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %g, want about 1", variance)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(13)
	const p, n = 0.25, 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Geometric(p)
	}
	mean := float64(sum) / n
	want := (1 - p) / p // 3.0
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("geometric mean = %g, want about %g", mean, want)
	}
}

func TestGeometricOne(t *testing.T) {
	s := New(17)
	for i := 0; i < 100; i++ {
		if v := s.Geometric(1); v != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", v)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(19)
	vals := make([]int, 30)
	for i := range vals {
		vals[i] = i
	}
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make([]bool, 30)
	for _, v := range vals {
		if seen[v] {
			t.Fatalf("shuffle dropped/duplicated values: %v", vals)
		}
		seen[v] = true
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}
