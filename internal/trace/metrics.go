package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Metrics is an ordered counter/gauge/histogram registry — the same
// primitive the tracer's counter tracks are built from, reused by the
// dist fabric's /metrics endpoint. Names are registered on first touch
// (histograms on DescribeHistogram) and snapshots preserve registration
// order, so exported text is deterministic for a deterministic workload.
type Metrics struct {
	mu        sync.Mutex
	order     []string
	vals      map[string]int64
	help      map[string]string
	histOrder []string
	hists     map[string]*histogram
}

// MetricValue is one named value in a snapshot.
type MetricValue struct {
	Name  string
	Value int64
	Help  string
}

// histogram is one fixed-bound distribution. counts has one slot per
// bound plus a final overflow slot (+Inf); sum and count accumulate the
// raw observations.
type histogram struct {
	help   string
	bounds []int64
	counts []int64
	sum    int64
	count  int64
}

// HistogramValue is one histogram in a snapshot. Counts are per-bucket
// (not cumulative) and parallel to Bounds, with one extra overflow slot
// at the end for observations above every bound.
type HistogramValue struct {
	Name   string
	Help   string
	Bounds []int64
	Counts []int64
	Sum    int64
	Count  int64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		vals:  make(map[string]int64),
		help:  make(map[string]string),
		hists: make(map[string]*histogram),
	}
}

// Describe attaches help text to a metric (registering it at zero if
// new). First call per name wins.
func (m *Metrics) Describe(name, help string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.touch(name)
	if m.help[name] == "" {
		m.help[name] = help
	}
}

func (m *Metrics) touch(name string) {
	if _, ok := m.vals[name]; !ok {
		m.vals[name] = 0
		m.order = append(m.order, name)
	}
}

// Inc adds delta to the named counter.
func (m *Metrics) Inc(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.touch(name)
	m.vals[name] += delta
	m.mu.Unlock()
}

// Set stores an absolute gauge value.
func (m *Metrics) Set(name string, v int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.touch(name)
	m.vals[name] = v
	m.mu.Unlock()
}

// Get reads the named value (0 if never touched or on nil).
func (m *Metrics) Get(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.vals[name]
}

// DescribeHistogram registers a histogram with fixed bucket bounds
// (upper-inclusive, ascending; an implicit +Inf bucket is appended).
// Bounds are fixed at registration so two runs of the same workload
// export byte-identical bucket lines. First call per name wins; the
// bounds slice is copied and sorted defensively.
func (m *Metrics) DescribeHistogram(name, help string, bounds []int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.hists[name]; ok {
		return
	}
	bs := append([]int64(nil), bounds...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	m.hists[name] = &histogram{help: help, bounds: bs, counts: make([]int64, len(bs)+1)}
	m.histOrder = append(m.histOrder, name)
}

// Observe records one value into the named histogram. Unlike counters,
// histograms need bounds, so observing a name never registered by
// DescribeHistogram is a no-op.
func (m *Metrics) Observe(name string, v int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hists[name]
	if !ok {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.sum += v
	h.count++
}

// Snapshot returns every value in registration order.
func (m *Metrics) Snapshot() []MetricValue {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MetricValue, 0, len(m.order))
	for _, name := range m.order {
		out = append(out, MetricValue{Name: name, Value: m.vals[name], Help: m.help[name]})
	}
	return out
}

// SnapshotHistograms returns every histogram in registration order.
func (m *Metrics) SnapshotHistograms() []HistogramValue {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]HistogramValue, 0, len(m.histOrder))
	for _, name := range m.histOrder {
		h := m.hists[name]
		out = append(out, HistogramValue{
			Name:   name,
			Help:   h.help,
			Bounds: append([]int64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
			Sum:    h.sum,
			Count:  h.count,
		})
	}
	return out
}

// WritePrometheus renders the registry in Prometheus text exposition
// format: counters and gauges first (untyped, with optional HELP lines),
// then histograms as cumulative _bucket/_sum/_count series. Output order
// is registration order, so a deterministic workload exports
// byte-identical text.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	for _, mv := range m.Snapshot() {
		name := sanitizeMetricName(mv.Name)
		if mv.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, mv.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, mv.Value); err != nil {
			return err
		}
	}
	for _, hv := range m.SnapshotHistograms() {
		name := sanitizeMetricName(hv.Name)
		if hv.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, hv.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := int64(0)
		for i, b := range hv.Bounds {
			cum += hv.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, hv.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n", name, hv.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n", name, hv.Count); err != nil {
			return err
		}
	}
	return nil
}

// sanitizeMetricName maps arbitrary registry names onto the Prometheus
// identifier charset.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}
