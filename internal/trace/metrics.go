package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Metrics is an ordered counter/gauge registry — the same primitive the
// tracer's counter tracks are built from, reused by the dist fabric's
// /metrics endpoint. Names are registered on first touch and snapshots
// preserve registration order, so exported text is deterministic for a
// deterministic workload.
type Metrics struct {
	mu    sync.Mutex
	order []string
	vals  map[string]int64
	help  map[string]string
}

// MetricValue is one named value in a snapshot.
type MetricValue struct {
	Name  string
	Value int64
	Help  string
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{vals: make(map[string]int64), help: make(map[string]string)}
}

// Describe attaches help text to a metric (registering it at zero if
// new). First call per name wins.
func (m *Metrics) Describe(name, help string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.touch(name)
	if m.help[name] == "" {
		m.help[name] = help
	}
}

func (m *Metrics) touch(name string) {
	if _, ok := m.vals[name]; !ok {
		m.vals[name] = 0
		m.order = append(m.order, name)
	}
}

// Inc adds delta to the named counter.
func (m *Metrics) Inc(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.touch(name)
	m.vals[name] += delta
	m.mu.Unlock()
}

// Set stores an absolute gauge value.
func (m *Metrics) Set(name string, v int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.touch(name)
	m.vals[name] = v
	m.mu.Unlock()
}

// Get reads the named value (0 if never touched or on nil).
func (m *Metrics) Get(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.vals[name]
}

// Snapshot returns every value in registration order.
func (m *Metrics) Snapshot() []MetricValue {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MetricValue, 0, len(m.order))
	for _, name := range m.order {
		out = append(out, MetricValue{Name: name, Value: m.vals[name], Help: m.help[name]})
	}
	return out
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (untyped metrics with optional HELP lines).
func (m *Metrics) WritePrometheus(w io.Writer) error {
	for _, mv := range m.Snapshot() {
		name := sanitizeMetricName(mv.Name)
		if mv.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, mv.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, mv.Value); err != nil {
			return err
		}
	}
	return nil
}

// sanitizeMetricName maps arbitrary registry names onto the Prometheus
// identifier charset.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}
