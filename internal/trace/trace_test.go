package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNilTracerIsSafe pins the disabled state: every method on a nil
// *Tracer is a no-op, which is what lets emit sites skip any guard
// beyond the pointer itself.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.SetNow(5)
	tr.Span("c", "n", 1, 1, 0, 10)
	tr.Instant("c", "n", 1, 1, 3)
	tr.InstantNow("c", "n", 1, 1)
	tr.Counter("n", 1, 3, Arg{Key: "v", Value: 1})
	tr.NameProcess(1, "p")
	tr.NameThread(1, 1, "t")
	if tr.Len() != 0 || tr.NowPs() != 0 {
		t.Fatalf("nil tracer reported state: len=%d now=%d", tr.Len(), tr.NowPs())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer JSON invalid: %v", err)
	}
	if !strings.Contains(tr.Summary(), "disabled") {
		t.Fatalf("nil tracer summary = %q", tr.Summary())
	}
}

func sampleTracer() *Tracer {
	tr := New()
	tr.NameProcess(PidMachine, "scheduler")
	tr.NameThread(PidMachine, CoreTid(0), "core 0")
	tr.NameThread(PidMachine, TidKernel, "kernel")
	tr.Span("sched", "burst", PidMachine, CoreTid(0), 1_000_000, 3_000_000,
		Arg{Key: "pid", Value: 7}, Arg{Key: "ipc", Value: 1.25})
	tr.SetNow(2_500_000)
	tr.InstantNow("place", "decide", PidTasks, 7, Arg{Key: "choice", Value: "fast"})
	tr.Counter("runnable", PidMachine, 3_000_000, Arg{Key: "total", Value: 4})
	tr.Instant("sched", "timer", PidMachine, TidKernel, 3_000_000)
	return tr
}

// TestWriteJSONShape validates the exported document against the
// trace-event schema essentials: every event has name/ph/ts/pid/tid,
// spans carry dur, and metadata rows come first.
func TestWriteJSONShape(t *testing.T) {
	tr := sampleTracer()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 7 { // 3 metadata + 4 events
		t.Fatalf("got %d events, want 7", len(doc.TraceEvents))
	}
	for i := 0; i < 3; i++ {
		if doc.TraceEvents[i]["ph"] != "M" {
			t.Fatalf("event %d: metadata rows must come first, got %v", i, doc.TraceEvents[i])
		}
	}
	for i, e := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := e[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, e)
			}
		}
		if e["ph"] == "X" {
			if _, ok := e["dur"]; !ok {
				t.Fatalf("span %d missing dur: %v", i, e)
			}
		}
	}
	// The burst span is stamped at 1 µs with 2 µs duration.
	span := doc.TraceEvents[3]
	if span["ts"] != 1.0 || span["dur"] != 2.0 {
		t.Fatalf("span ts/dur = %v/%v, want 1/2", span["ts"], span["dur"])
	}
	args := span["args"].(map[string]any)
	if args["pid"] != 7.0 || args["ipc"] != 1.25 {
		t.Fatalf("span args = %v", args)
	}
	// InstantNow picked up SetNow's stamp.
	if doc.TraceEvents[4]["ts"] != 2.5 {
		t.Fatalf("instant ts = %v, want 2.5", doc.TraceEvents[4]["ts"])
	}
}

// TestWriteJSONDeterministic pins byte-stable output for identical
// event sequences.
func TestWriteJSONDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := sampleTracer().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := sampleTracer().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same events produced different bytes:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestPsToUsec(t *testing.T) {
	cases := map[int64]string{
		0:             "0.000000",
		1:             "0.000001",
		1_000_000:     "1.000000",
		2_500_000:     "2.500000",
		1_234_567_890: "1234.567890",
	}
	for ps, want := range cases {
		if got := psToUsec(ps); got != want {
			t.Errorf("psToUsec(%d) = %q, want %q", ps, got, want)
		}
	}
}

func TestSummary(t *testing.T) {
	s := sampleTracer().Summary()
	for _, want := range []string{"core 0", "sched/burst", "place/decide", "counter/runnable"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestMetrics(t *testing.T) {
	var nilM *Metrics
	nilM.Inc("x", 1)
	nilM.Set("x", 2)
	if nilM.Get("x") != 0 || nilM.Snapshot() != nil {
		t.Fatal("nil Metrics reported state")
	}

	m := NewMetrics()
	m.Describe("commits_total", "specs committed")
	m.Inc("leases_granted", 2)
	m.Inc("commits_total", 1)
	m.Set("workers", 3)
	m.Inc("leases_granted", 1)

	snap := m.Snapshot()
	wantOrder := []string{"commits_total", "leases_granted", "workers"}
	if len(snap) != len(wantOrder) {
		t.Fatalf("snapshot len = %d, want %d", len(snap), len(wantOrder))
	}
	for i, name := range wantOrder {
		if snap[i].Name != name {
			t.Fatalf("snapshot[%d] = %q, want %q (registration order)", i, snap[i].Name, name)
		}
	}
	if m.Get("leases_granted") != 3 || m.Get("workers") != 3 {
		t.Fatalf("values: leases=%d workers=%d", m.Get("leases_granted"), m.Get("workers"))
	}

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"# HELP commits_total specs committed", "commits_total 1", "leases_granted 3", "workers 3"} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus text missing %q:\n%s", want, text)
		}
	}
}

func TestSanitizeMetricName(t *testing.T) {
	if got := sanitizeMetricName("lease.expired-total"); got != "lease_expired_total" {
		t.Fatalf("sanitize = %q", got)
	}
	if got := sanitizeMetricName("9lives"); got != "_lives" {
		t.Fatalf("sanitize leading digit = %q", got)
	}
}
