// Package trace is the deterministic observability layer for the
// simulator stack. A Tracer collects spans, instant events, and counter
// samples stamped in simulated picoseconds — never wall-clock — and
// exports them as Chrome/Perfetto trace-event JSON plus a plain-text
// timeline summary.
//
// The contract that makes this safe to thread through the scheduler is
// zero perturbation: a nil *Tracer is the disabled state, every method
// is a no-op on nil, and no emit site reads tracer state back into a
// decision. A traced run therefore produces bit-identical Results to an
// untraced one (pinned by TestTraceByteIdentity at the repo root).
//
// Timestamps come from the simulation clock. The kernel calls SetNow as
// it advances, so layers without their own notion of time (the placement
// engine, the tuner) stamp events at NowPs. Because the kernel is
// single-threaded per run, events for one run arrive in a deterministic
// order; the mutex only guards against accidental sharing across runs.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Track layout: one synthetic "process" per viewpoint so Perfetto groups
// rows sensibly. Core rows live under PidMachine (tid = CoreTid(core)),
// kernel-level events (timers, balance passes, counters) on TidKernel,
// and per-task rows under PidTasks keyed by the task's scheduler PID.
const (
	PidMachine = 1 // scheduler view: one row per core + the kernel row
	PidTasks   = 2 // task view: one row per task PID
	TidKernel  = 0 // kernel row within PidMachine
)

// CoreTid maps a core index to its thread row under PidMachine,
// offset past TidKernel.
func CoreTid(core int) int { return core + 1 }

// Arg is one key/value pair of event metadata. Args are a slice, not a
// map, so the exported JSON field order is deterministic.
type Arg struct {
	Key   string
	Value any
}

type event struct {
	ph    byte // 'X' span, 'i' instant, 'C' counter
	cat   string
	name  string
	pid   int
	tid   int
	tsPs  int64
	durPs int64
	args  []Arg
}

type threadName struct {
	pid, tid int
	name     string
}

// Tracer is a deterministic event sink. The zero value is not used
// directly: a nil *Tracer means tracing is disabled and every method is
// a cheap no-op, so call sites guard nothing beyond the pointer itself.
type Tracer struct {
	mu       sync.Mutex
	nowPs    int64
	events   []event
	procs    []Arg // pid -> process name, insertion order
	threads  []threadName
	seenProc map[int]bool
	seenThrd map[int]map[int]bool
}

// New returns an enabled Tracer.
func New() *Tracer {
	return &Tracer{
		seenProc: make(map[int]bool),
		seenThrd: make(map[int]map[int]bool),
	}
}

// SetNow advances the tracer's view of simulated time. The scheduler
// kernel calls this as its event loop advances so that layers without a
// clock of their own can stamp events with NowPs.
func (t *Tracer) SetNow(ps int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.nowPs = ps
	t.mu.Unlock()
}

// NowPs reports the last simulated time seen via SetNow (0 on nil).
func (t *Tracer) NowPs() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nowPs
}

// NameProcess labels a pid group in the exported trace (metadata event).
// First call per pid wins.
func (t *Tracer) NameProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seenProc[pid] {
		return
	}
	t.seenProc[pid] = true
	t.procs = append(t.procs, Arg{Key: name, Value: pid})
}

// NameThread labels a (pid, tid) row in the exported trace. First call
// per row wins.
func (t *Tracer) NameThread(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seenThrd[pid] == nil {
		t.seenThrd[pid] = make(map[int]bool)
	}
	if t.seenThrd[pid][tid] {
		return
	}
	t.seenThrd[pid][tid] = true
	t.threads = append(t.threads, threadName{pid: pid, tid: tid, name: name})
}

// Span records a complete ('X') event covering [startPs, endPs].
func (t *Tracer) Span(cat, name string, pid, tid int, startPs, endPs int64, args ...Arg) {
	if t == nil {
		return
	}
	if endPs < startPs {
		endPs = startPs
	}
	t.mu.Lock()
	t.events = append(t.events, event{ph: 'X', cat: cat, name: name, pid: pid, tid: tid, tsPs: startPs, durPs: endPs - startPs, args: args})
	t.mu.Unlock()
}

// Instant records a point ('i') event at atPs.
func (t *Tracer) Instant(cat, name string, pid, tid int, atPs int64, args ...Arg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, event{ph: 'i', cat: cat, name: name, pid: pid, tid: tid, tsPs: atPs, args: args})
	t.mu.Unlock()
}

// InstantNow records a point event stamped at the tracer's current
// simulated time — for layers that do not carry the clock themselves.
func (t *Tracer) InstantNow(cat, name string, pid, tid int, args ...Arg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	now := t.nowPs
	t.events = append(t.events, event{ph: 'i', cat: cat, name: name, pid: pid, tid: tid, tsPs: now, args: args})
	t.mu.Unlock()
}

// Counter records a counter ('C') sample: one track named name whose
// series are the args (e.g. runnable depth per core type).
func (t *Tracer) Counter(name string, pid int, atPs int64, series ...Arg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, event{ph: 'C', cat: "counter", name: name, pid: pid, tid: TidKernel, tsPs: atPs, args: series})
	t.mu.Unlock()
}

// Len reports the number of recorded events (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// psToUsec renders a picosecond stamp as the microsecond string the
// trace-event format wants. Fixed six decimals keeps full ps precision
// and byte-stable output.
func psToUsec(ps int64) string {
	neg := ps < 0
	if neg {
		ps = -ps
	}
	whole, frac := ps/1e6, ps%1e6
	s := strconv.FormatInt(whole, 10) + "." + fmt.Sprintf("%06d", frac)
	if neg {
		s = "-" + s
	}
	return s
}

// writeValue marshals an arg value deterministically. Floats use the
// shortest round-trip form; everything else defers to encoding/json.
func writeValue(b *strings.Builder, v any) error {
	switch x := v.(type) {
	case float64:
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
		return nil
	case float32:
		b.WriteString(strconv.FormatFloat(float64(x), 'g', -1, 32))
		return nil
	case int:
		b.WriteString(strconv.Itoa(x))
		return nil
	case int64:
		b.WriteString(strconv.FormatInt(x, 10))
		return nil
	case uint64:
		b.WriteString(strconv.FormatUint(x, 10))
		return nil
	case bool:
		b.WriteString(strconv.FormatBool(x))
		return nil
	}
	blob, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b.Write(blob)
	return nil
}

func writeArgs(b *strings.Builder, args []Arg) error {
	b.WriteString("{")
	for i, a := range args {
		if i > 0 {
			b.WriteString(",")
		}
		key, err := json.Marshal(a.Key)
		if err != nil {
			return err
		}
		b.Write(key)
		b.WriteString(":")
		if err := writeValue(b, a.Value); err != nil {
			return err
		}
	}
	b.WriteString("}")
	return nil
}

// WriteJSON exports the trace in Chrome trace-event format
// ({"traceEvents":[...]}): metadata names first, then events in the
// order they were recorded. Output is byte-stable for a given run.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "{\"traceEvents\":[]}\n")
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	b.WriteString("{\"traceEvents\":[")
	first := true
	sep := func() {
		if !first {
			b.WriteString(",\n")
		} else {
			b.WriteString("\n")
		}
		first = false
	}
	for _, p := range t.procs {
		sep()
		name, _ := json.Marshal(p.Key)
		fmt.Fprintf(&b, `{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`, p.Value, name)
	}
	for _, th := range t.threads {
		sep()
		name, _ := json.Marshal(th.name)
		fmt.Fprintf(&b, `{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`, th.pid, th.tid, name)
	}
	for _, e := range t.events {
		sep()
		name, err := json.Marshal(e.name)
		if err != nil {
			return err
		}
		cat, err := json.Marshal(e.cat)
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, `{"name":%s,"cat":%s,"ph":"%c","ts":%s,`, name, cat, e.ph, psToUsec(e.tsPs))
		if e.ph == 'X' {
			fmt.Fprintf(&b, `"dur":%s,`, psToUsec(e.durPs))
		}
		if e.ph == 'i' {
			b.WriteString(`"s":"t",`)
		}
		fmt.Fprintf(&b, `"pid":%d,"tid":%d,"args":`, e.pid, e.tid)
		if err := writeArgs(&b, e.args); err != nil {
			return err
		}
		b.WriteString("}")
	}
	b.WriteString("\n]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteFile exports the trace to path (created or truncated).
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Summary renders a plain-text timeline: per-core busy fraction bars
// over the traced span, then event counts by category. It reads only
// span events under PidMachine for the bars, so it works on any trace
// the scheduler kernel produced.
func (t *Tracer) Summary() string {
	if t == nil {
		return "trace: disabled\n"
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) == 0 {
		return "trace: no events\n"
	}
	var minPs, maxPs int64
	minPs = int64(1<<62 - 1)
	for _, e := range t.events {
		if e.tsPs < minPs {
			minPs = e.tsPs
		}
		if end := e.tsPs + e.durPs; end > maxPs {
			maxPs = end
		}
	}
	span := maxPs - minPs
	if span <= 0 {
		span = 1
	}

	const cols = 60
	shade := []rune(" ░▒▓█")
	// Per-core busy accumulation into fixed-width buckets.
	busy := map[int][]float64{}
	var cores []int
	for _, e := range t.events {
		if e.ph != 'X' || e.pid != PidMachine || e.tid == TidKernel {
			continue
		}
		if busy[e.tid] == nil {
			busy[e.tid] = make([]float64, cols)
			cores = append(cores, e.tid)
		}
		start, end := e.tsPs-minPs, e.tsPs-minPs+e.durPs
		for c := 0; c < cols; c++ {
			bs := minI64(span*int64(c)/cols, span)
			be := span * int64(c+1) / cols
			lo, hi := maxI64(start, bs), minI64(end, be)
			if hi > lo && be > bs {
				busy[e.tid][c] += float64(hi-lo) / float64(be-bs)
			}
		}
	}
	sort.Ints(cores)

	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events over %.3f ms simulated\n", len(t.events), float64(span)/1e9)
	for _, tid := range cores {
		fmt.Fprintf(&b, "  core %-3d |", tid-1)
		for _, f := range busy[tid] {
			if f > 1 {
				f = 1
			}
			b.WriteRune(shade[int(f*float64(len(shade)-1)+0.5)])
		}
		b.WriteString("|\n")
	}

	counts := map[string]int{}
	var cats []string
	for _, e := range t.events {
		key := e.cat + "/" + e.name
		if counts[key] == 0 {
			cats = append(cats, key)
		}
		counts[key]++
	}
	sort.Strings(cats)
	b.WriteString("  events by kind:\n")
	for _, c := range cats {
		fmt.Fprintf(&b, "    %-24s %d\n", c, counts[c])
	}
	return b.String()
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
