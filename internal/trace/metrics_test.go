package trace

import (
	"strings"
	"testing"
)

// TestHistogramBucketing pins the bucket math: upper-inclusive bounds,
// overflow slot, and exact sum/count accumulation.
func TestHistogramBucketing(t *testing.T) {
	m := NewMetrics()
	m.DescribeHistogram("lat_us", "latency", []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 5000, 7000} {
		m.Observe("lat_us", v)
	}
	hs := m.SnapshotHistograms()
	if len(hs) != 1 {
		t.Fatalf("histograms = %d, want 1", len(hs))
	}
	h := hs[0]
	// Buckets: le=10 gets {1,10}; le=100 gets {11,100}; le=1000 empty;
	// overflow gets {5000,7000}.
	want := []int64{2, 2, 0, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bucket[%d] = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.Count != 6 || h.Sum != 1+10+11+100+5000+7000 {
		t.Errorf("count/sum = %d/%d", h.Count, h.Sum)
	}
}

// TestHistogramDeterministicRegistration pins first-call-wins bounds,
// defensive sorting, and the no-op on unregistered names.
func TestHistogramDeterministicRegistration(t *testing.T) {
	m := NewMetrics()
	m.DescribeHistogram("h", "first", []int64{300, 100, 200}) // unsorted on purpose
	m.DescribeHistogram("h", "second", []int64{1})            // ignored: first call wins
	m.Observe("never_described", 42)                          // no-op, not a panic
	m.Observe("h", 150)
	h := m.SnapshotHistograms()[0]
	if h.Help != "first" || len(h.Bounds) != 3 || h.Bounds[0] != 100 {
		t.Errorf("registration not first-wins/sorted: %+v", h)
	}
	if h.Counts[1] != 1 {
		t.Errorf("150 not in (100,200] bucket: %v", h.Counts)
	}
	var nilM *Metrics
	nilM.DescribeHistogram("x", "", nil) // nil registry is inert
	nilM.Observe("x", 1)
	if nilM.SnapshotHistograms() != nil {
		t.Error("nil registry returned histograms")
	}
}

// TestHistogramPrometheusExport pins the text exposition: cumulative
// _bucket lines, the +Inf bucket, _sum and _count, after the counters.
func TestHistogramPrometheusExport(t *testing.T) {
	m := NewMetrics()
	m.Inc("events_total", 3)
	m.DescribeHistogram("rt_us", "round trip", []int64{10, 100})
	m.Observe("rt_us", 5)
	m.Observe("rt_us", 50)
	m.Observe("rt_us", 500)
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	wantOrder := []string{
		"events_total 3",
		"# HELP rt_us round trip",
		"# TYPE rt_us histogram",
		`rt_us_bucket{le="10"} 1`,
		`rt_us_bucket{le="100"} 2`,
		`rt_us_bucket{le="+Inf"} 3`,
		"rt_us_sum 555",
		"rt_us_count 3",
	}
	at := 0
	for _, want := range wantOrder {
		i := strings.Index(out[at:], want)
		if i < 0 {
			t.Fatalf("export missing (or out of order) %q:\n%s", want, out)
		}
		at += i + len(want)
	}
	// Determinism: a second export is byte-identical.
	var sb2 strings.Builder
	if err := m.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("repeated export not byte-identical")
	}
}
