package osched

import (
	"testing"

	"phasetune/internal/amp"
	"phasetune/internal/exec"
)

// TestNoOverlappingBursts replays the regression that motivated arrival
// events: a single process must never occupy two cores in overlapping
// simulated intervals, even while its affinity ping-pongs.
func TestNoOverlappingBursts(t *testing.T) {
	k := newKernel(t)
	img := markedImage(t, k)
	hook := &pingPongHook{masks: []uint64{0b0001, 0b0100}}
	p := exec.NewProcess(k.NextPID(), img, &k.Cost, 1, hook)
	k.Spawn(p, "pingpong", -1, 0)

	type burst struct{ start, end int64 }
	var bursts []burst
	k.TraceBurst = func(core int, task *Task, cycles, startPs, endPs int64) {
		bursts = append(bursts, burst{startPs, endPs})
	}
	if err := k.RunUntilDone(1e6); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(bursts); i++ {
		if bursts[i].start < bursts[i-1].end {
			t.Fatalf("burst %d starts at %d before burst %d ends at %d",
				i, bursts[i].start, i-1, bursts[i-1].end)
		}
	}
	if len(bursts) < 100 {
		t.Fatalf("only %d bursts traced", len(bursts))
	}
}

// TestTimeConservation: a task's completion time equals the sum of its burst
// durations plus queueing gaps; with a single task there are no gaps beyond
// spawn, so wall time equals busy time.
func TestTimeConservation(t *testing.T) {
	k := newKernel(t)
	task := spawnProg(t, k, computeProgram(2000), 1)
	var busyPs int64
	k.TraceBurst = func(core int, tk *Task, cycles, startPs, endPs int64) {
		busyPs += endPs - startPs
	}
	if err := k.RunUntilDone(1e6); err != nil {
		t.Fatal(err)
	}
	wall := task.CompletionPs - task.ArrivalPs
	if wall != busyPs {
		t.Errorf("wall %d != busy %d for a lone task", wall, busyPs)
	}
}

// TestKernelInstructionConservation: the kernel's cumulative instruction
// counter equals the sum of per-process counters.
func TestKernelInstructionConservation(t *testing.T) {
	k := newKernel(t)
	var tasks []*Task
	for i := 0; i < 6; i++ {
		tasks = append(tasks, spawnProg(t, k, memoryProgram(200), uint64(i+1)))
	}
	if err := k.RunUntilDone(1e7); err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, task := range tasks {
		sum += task.Proc.Counters.Instructions
	}
	if sum != k.TotalInstructions() {
		t.Errorf("kernel total %d != task sum %d", k.TotalInstructions(), sum)
	}
}

// TestAffinityAlwaysRespected: with tracing, every burst of an affinity-
// restricted task must run on an allowed core.
func TestAffinityAlwaysRespected(t *testing.T) {
	k := newKernel(t)
	img, err := exec.NewImage(computeProgram(3000), nil, k.Cost)
	if err != nil {
		t.Fatal(err)
	}
	p := exec.NewProcess(k.NextPID(), img, &k.Cost, 1, nil)
	pinned := k.Spawn(p, "pinned", -1, 0b1010)
	for i := 0; i < 5; i++ {
		spawnProg(t, k, computeProgram(3000), uint64(i+10))
	}
	k.TraceBurst = func(core int, task *Task, cycles, startPs, endPs int64) {
		if task == pinned && (0b1010&(1<<uint(core))) == 0 {
			t.Fatalf("pinned task ran on disallowed core %d", core)
		}
	}
	if err := k.RunUntilDone(1e7); err != nil {
		t.Fatal(err)
	}
}

// overcommitKernel builds a quad kernel with the proportional-share
// overcommit dispatcher enabled.
func overcommitKernel(t *testing.T) *Kernel {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Overcommit.Enabled = true
	k, err := NewKernel(amp.Quad2Fast2Slow(), exec.DefaultCostModel(), cfg)
	if err != nil {
		t.Fatalf("NewKernel: %v", err)
	}
	return k
}

// TestOvercommitNoCoreRunsTwoTasks: under heavy oversubscription with
// shortened slices, each core's bursts must still never overlap in
// simulated time — time multiplexing shares the core, it never doubles it.
func TestOvercommitNoCoreRunsTwoTasks(t *testing.T) {
	k := overcommitKernel(t)
	for i := 0; i < 16; i++ {
		spawnProg(t, k, computeProgram(800), uint64(i+1))
	}
	lastEnd := map[int]int64{}
	k.TraceBurst = func(core int, task *Task, cycles, startPs, endPs int64) {
		if startPs < lastEnd[core] {
			t.Fatalf("core %d burst starts at %d before previous ends at %d",
				core, startPs, lastEnd[core])
		}
		lastEnd[core] = endPs
	}
	if err := k.RunUntilDone(1e7); err != nil {
		t.Fatal(err)
	}
	if k.OvercommitSlices() == 0 {
		t.Error("16 tasks on 4 cores produced no shortened slices")
	}
}

// TestOvercommitEveryJobCompletesUnderCapacity: jobs arriving under total
// capacity (staggered admissions, short programs) must all run to
// completion — overcommit time-multiplexes transients, it never starves.
func TestOvercommitEveryJobCompletesUnderCapacity(t *testing.T) {
	k := overcommitKernel(t)
	var tasks []*Task
	for i := 0; i < 10; i++ {
		i := i
		k.At(SecToPs(float64(i)*0.002), func(k *Kernel) {
			img, err := exec.NewImage(computeProgram(400), nil, k.Cost)
			if err != nil {
				t.Error(err)
				return
			}
			proc := exec.NewProcess(k.NextPID(), img, &k.Cost, uint64(i+1), nil)
			tasks = append(tasks, k.Spawn(proc, "staggered", i, 0))
		})
	}
	k.Run(0.05) // fire all admission timers
	if err := k.RunUntilDone(1e7); err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 10 {
		t.Fatalf("admitted %d tasks, want 10", len(tasks))
	}
	for i, task := range tasks {
		if task.State != TaskExited {
			t.Errorf("task %d state = %v, want exited", i, task.State)
		}
	}
	if k.PeakLive() < 5 {
		t.Errorf("peak live %d never exceeded the 4 cores", k.PeakLive())
	}
}

// TestOvercommitScaleInvariant: the per-type scale factor stays in (0, 1],
// and whenever a type is oversubscribed, demand × scale never exceeds its
// core count — the proportional-share capacity invariant, checked at every
// burst boundary of a loaded run.
func TestOvercommitScaleInvariant(t *testing.T) {
	k := overcommitKernel(t)
	for i := 0; i < 12; i++ {
		spawnProg(t, k, memoryProgram(120), uint64(i+1))
	}
	types := len(k.Machine.Types)
	k.TraceBurst = func(core int, task *Task, cycles, startPs, endPs int64) {
		for typ := 0; typ < types; typ++ {
			f := k.OvercommitScale(amp.CoreTypeID(typ))
			if !(f > 0 && f <= 1) {
				t.Fatalf("type %d scale %g out of (0,1]", typ, f)
			}
			demand := k.RunnableOfType(amp.CoreTypeID(typ))
			capacity := len(k.Machine.CoresOfType(amp.CoreTypeID(typ)))
			if shares := float64(demand) * f; shares > float64(capacity)+1e-9 {
				t.Fatalf("type %d: %d runnable × scale %g = %g shares on %d cores",
					typ, demand, f, shares, capacity)
			}
		}
	}
	if err := k.RunUntilDone(1e7); err != nil {
		t.Fatal(err)
	}
}

// TestOvercommitDisabledChargesNothing: with the dispatcher off, the same
// oversubscribed workload must shorten zero slices — the config gate, and
// the guarantee that closed-system runs are untouched by the subsystem.
func TestOvercommitDisabledChargesNothing(t *testing.T) {
	k := newKernel(t)
	for i := 0; i < 12; i++ {
		spawnProg(t, k, computeProgram(400), uint64(i+1))
	}
	if err := k.RunUntilDone(1e7); err != nil {
		t.Fatal(err)
	}
	if n := k.OvercommitSlices(); n != 0 {
		t.Errorf("disabled overcommit shortened %d slices", n)
	}
	if k.PeakLive() != 12 {
		t.Errorf("peak live %d, want 12", k.PeakLive())
	}
}

// TestExitDuringMonitoring: a process that dies while its tuner holds an
// event set must release it (failure-injection for the OnExit path).
func TestCacheOccupancyBalanced(t *testing.T) {
	// After a full run, every L2 group must be back to zero occupants.
	k := newKernel(t)
	for i := 0; i < 6; i++ {
		spawnProg(t, k, memoryProgram(150), uint64(i+1))
	}
	if err := k.RunUntilDone(1e7); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 2; g++ {
		if n := k.Cache.Occupants(g); n != 0 {
			t.Errorf("L2 group %d still has %d occupants after drain", g, n)
		}
	}
}
