package osched

import (
	"testing"

	"phasetune/internal/amp"
	"phasetune/internal/exec"
	"phasetune/internal/isa"
	"phasetune/internal/prog"
)

// loopProgram builds a long-running straight-line loop.
func loopProgram(t *testing.T, trips int32) *prog.Program {
	t.Helper()
	p := &prog.Program{
		Name: "loop",
		Procs: []*prog.Procedure{{
			Name: "main",
			Instrs: []isa.Instruction{
				{Op: isa.IntALU}, {Op: isa.IntALU}, {Op: isa.IntALU},
				{Op: isa.Branch, Target: 0, TripCount: trips, TakenProb: 0.99},
				{Op: isa.Ret},
			},
		}},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

type tickCounter struct {
	ticks int
	atPs  []int64
}

func (c *tickCounter) OnTick(k *Kernel, atPs int64) {
	c.ticks++
	c.atPs = append(c.atPs, atPs)
}

// TestMonitorTickPeriod checks the monitor hook fires at its own period,
// independent of sampling and balancing.
func TestMonitorTickPeriod(t *testing.T) {
	machine := amp.Quad2Fast2Slow()
	cm := exec.DefaultCostModel()
	cfg := DefaultConfig()
	cfg.MonitorIntervalSec = 0.5
	k, err := NewKernel(machine, cm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mon := &tickCounter{}
	k.Monitor = mon

	img, err := exec.NewImage(loopProgram(t, 2_000_000), nil, cm)
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn(exec.NewProcess(k.NextPID(), img, &cm, 1, nil), "loop", -1, 0)
	k.Run(5.0)

	if mon.ticks < 9 || mon.ticks > 10 {
		t.Fatalf("monitor ticked %d times over 5s at 0.5s period, want 9-10", mon.ticks)
	}
	for i := 1; i < len(mon.atPs); i++ {
		if d := mon.atPs[i] - mon.atPs[i-1]; d != SecToPs(0.5) {
			t.Fatalf("tick %d interval %d ps, want %d", i, d, SecToPs(0.5))
		}
	}
}

// TestMonitorDisabledWithoutMonitor checks no monitor events fire when no
// monitor is installed (the zero-cost default for every non-dynamic run).
func TestMonitorDisabledWithoutMonitor(t *testing.T) {
	machine := amp.Quad2Fast2Slow()
	cm := exec.DefaultCostModel()
	k, err := NewKernel(machine, cm, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	img, err := exec.NewImage(loopProgram(t, 100_000), nil, cm)
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn(exec.NewProcess(k.NextPID(), img, &cm, 1, nil), "loop", -1, 0)
	k.Run(2.0) // would panic dereferencing a nil monitor if events fired
}

// affinitySetter pins the first task to the last core at the first tick.
type affinitySetter struct {
	applied bool
	mask    uint64
}

func (a *affinitySetter) OnTick(k *Kernel, atPs int64) {
	if a.applied {
		return
	}
	for _, task := range k.Tasks() {
		if task.State != TaskExited {
			k.SetAffinity(task, a.mask)
			a.applied = true
			return
		}
	}
}

// TestSetAffinityFromMonitor checks an external SetAffinity moves the task:
// after the monitor pins it to one core, every later burst runs there, and
// the move is charged as a migration.
func TestSetAffinityFromMonitor(t *testing.T) {
	machine := amp.Quad2Fast2Slow()
	cm := exec.DefaultCostModel()
	cfg := DefaultConfig()
	cfg.MonitorIntervalSec = 0.2
	k, err := NewKernel(machine, cm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	target := machine.NumCores() - 1
	setter := &affinitySetter{mask: amp.CoreMask(target)}
	k.Monitor = setter

	var afterPin []int
	pinnedAt := int64(-1)
	k.TraceBurst = func(core int, task *Task, cycles, startPs, endPs int64) {
		if pinnedAt >= 0 && startPs > pinnedAt {
			afterPin = append(afterPin, core)
		}
	}

	img, err := exec.NewImage(loopProgram(t, 3_000_000), nil, cm)
	if err != nil {
		t.Fatal(err)
	}
	task := k.Spawn(exec.NewProcess(k.NextPID(), img, &cm, 1, nil), "loop", -1, 0)
	k.Run(0.21)
	if !setter.applied {
		t.Fatal("monitor never fired")
	}
	pinnedAt = k.NowPs()
	k.Run(3.0)

	if task.Affinity != setter.mask {
		t.Fatalf("affinity %b, want %b", task.Affinity, setter.mask)
	}
	if task.Migrations == 0 {
		t.Fatal("external reassignment did not count a migration")
	}
	if len(afterPin) == 0 {
		t.Fatal("no bursts observed after pinning")
	}
	for _, core := range afterPin {
		if core != target {
			t.Fatalf("burst ran on core %d after pinning to %d", core, target)
		}
	}
}

// TestPenalizeChargesCycles checks Penalize slows the task down by exactly
// the charged cycles without touching its virtualized counters.
func TestPenalizeChargesCycles(t *testing.T) {
	machine := amp.Quad2Fast2Slow()
	cm := exec.DefaultCostModel()

	runWith := func(charge int64) (completionPs int64, instrs uint64) {
		k, err := NewKernel(machine, cm, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		img, err := exec.NewImage(loopProgram(t, 50_000), nil, cm)
		if err != nil {
			t.Fatal(err)
		}
		task := k.Spawn(exec.NewProcess(k.NextPID(), img, &cm, 1, nil), "loop", -1, amp.CoreMask(0))
		if charge > 0 {
			k.Penalize(task, charge)
		}
		if err := k.RunUntilDone(1e6); err != nil {
			t.Fatal(err)
		}
		return task.CompletionPs, task.Proc.Counters.Instructions
	}

	base, baseInstr := runWith(0)
	charged, chargedInstr := runWith(1000)
	if chargedInstr != baseInstr {
		t.Fatalf("penalty changed virtualized counters: %d vs %d instructions", chargedInstr, baseInstr)
	}
	extra := charged - base
	want := 1000 * machine.Types[0].PsPerCycle()
	if extra != want {
		t.Fatalf("penalty cost %d ps, want %d", extra, want)
	}
}
