package osched

import (
	"runtime"
	"testing"
)

// TestDispatchAllocationSteadyState pins the allocation-free hot path: once
// a kernel reaches steady state (queues sized, monitor buffers grown,
// ledger segments recycled), continued dispatching must not allocate per
// burst. The typed event heap regression this guards: the old
// container/heap interface boxed every pushed event into an `any`,
// allocating on each of the several pushes a single dispatch performs.
func TestDispatchAllocationSteadyState(t *testing.T) {
	k := newKernel(t)
	// Loop trip counts large enough that no task exits within the window;
	// mixed personalities keep every core busy and both queues hot.
	spawnProg(t, k, computeProgram(5e7), 1)
	spawnProg(t, k, memoryProgram(5e7), 2)
	spawnProg(t, k, computeProgram(5e7), 3)
	spawnProg(t, k, memoryProgram(5e7), 4)
	spawnProg(t, k, computeProgram(5e7), 5)
	spawnProg(t, k, memoryProgram(5e7), 6)

	// Warm up past slice growth and first-touch allocations.
	k.Run(2.0)
	if k.Live() != 6 {
		t.Fatalf("%d tasks exited during warmup; raise trip counts", 6-k.Live())
	}

	const windowSec = 4.0
	dispatches := int64(windowSec / k.Config.TimesliceSec * float64(len(k.Params())))

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	k.Run(2.0 + windowSec)
	runtime.ReadMemStats(&after)

	if k.Live() != 6 {
		t.Fatalf("%d tasks exited during the measured window; raise trip counts", 6-k.Live())
	}
	mallocs := int64(after.Mallocs - before.Mallocs)
	perDispatch := float64(mallocs) / float64(dispatches)
	t.Logf("%d mallocs over ~%d dispatches (%.3f/dispatch)", mallocs, dispatches, perDispatch)
	// The old boxing heap alone cost several allocations per dispatch
	// (timer push, burst-end push, arrival pushes). Steady state today is
	// ~0; 1.0 leaves room for incidental runtime allocation noise.
	if perDispatch > 1.0 {
		t.Errorf("hot path allocates %.2f objects per dispatch, want ~0 (heap boxing regression?)", perDispatch)
	}
}
