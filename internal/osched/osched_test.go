package osched

import (
	"testing"

	"phasetune/internal/amp"
	"phasetune/internal/exec"
	"phasetune/internal/instrument"
	"phasetune/internal/isa"
	"phasetune/internal/prog"
)

func computeProgram(trips float64) *prog.Program {
	b := prog.NewBuilder("compute")
	b.Proc("main").Loop(trips, func(pb *prog.ProcBuilder) {
		pb.Straight(prog.BlockMix{IntALU: 16, IntMul: 4})
	}).Ret()
	return b.MustBuild()
}

func memoryProgram(trips float64) *prog.Program {
	b := prog.NewBuilder("memory")
	b.Proc("main").Loop(trips, func(pb *prog.ProcBuilder) {
		pb.Straight(prog.BlockMix{Load: 14, Store: 6, IntALU: 2, WorkingSetKB: 256 * 1024, Locality: 0.2})
	}).Ret()
	return b.MustBuild()
}

func newKernel(t *testing.T) *Kernel {
	t.Helper()
	k, err := NewKernel(amp.Quad2Fast2Slow(), exec.DefaultCostModel(), DefaultConfig())
	if err != nil {
		t.Fatalf("NewKernel: %v", err)
	}
	return k
}

func spawnProg(t *testing.T, k *Kernel, p *prog.Program, seed uint64) *Task {
	t.Helper()
	img, err := exec.NewImage(p, nil, k.Cost)
	if err != nil {
		t.Fatal(err)
	}
	proc := exec.NewProcess(k.NextPID(), img, &k.Cost, seed, nil)
	return k.Spawn(proc, p.Name, -1, 0)
}

func TestSingleTaskRunsToCompletion(t *testing.T) {
	k := newKernel(t)
	task := spawnProg(t, k, computeProgram(500), 1)
	if err := k.RunUntilDone(1e6); err != nil {
		t.Fatalf("RunUntilDone: %v", err)
	}
	if task.State != TaskExited {
		t.Fatalf("task state = %v, want exited", task.State)
	}
	if task.CompletionPs <= task.ArrivalPs {
		t.Errorf("completion %d <= arrival %d", task.CompletionPs, task.ArrivalPs)
	}
	if k.Live() != 0 {
		t.Errorf("live = %d, want 0", k.Live())
	}
	if k.TotalInstructions() != task.Proc.Counters.Instructions {
		t.Errorf("kernel instr %d != process instr %d", k.TotalInstructions(), task.Proc.Counters.Instructions)
	}
}

func TestManyTasksAllComplete(t *testing.T) {
	k := newKernel(t)
	var tasks []*Task
	for i := 0; i < 12; i++ {
		var p *prog.Program
		if i%2 == 0 {
			p = computeProgram(300)
		} else {
			p = memoryProgram(300)
		}
		tasks = append(tasks, spawnProg(t, k, p, uint64(i+1)))
	}
	if err := k.RunUntilDone(1e7); err != nil {
		t.Fatalf("RunUntilDone: %v", err)
	}
	for i, task := range tasks {
		if task.State != TaskExited {
			t.Errorf("task %d did not exit", i)
		}
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() []int64 {
		k := newKernel(t)
		var tasks []*Task
		for i := 0; i < 8; i++ {
			tasks = append(tasks, spawnProg(t, k, memoryProgram(200), uint64(i+1)))
		}
		if err := k.RunUntilDone(1e7); err != nil {
			t.Fatal(err)
		}
		var out []int64
		for _, task := range tasks {
			out = append(out, task.CompletionPs)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("completion %d differs across identical runs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestAffinityRestrictsPlacement(t *testing.T) {
	k := newKernel(t)
	img, err := exec.NewImage(computeProgram(500), nil, k.Cost)
	if err != nil {
		t.Fatal(err)
	}
	// Pin to slow cores only (mask 0b1100).
	proc := exec.NewProcess(k.NextPID(), img, &k.Cost, 1, nil)
	task := k.Spawn(proc, "pinned", -1, 0b1100)
	if err := k.RunUntilDone(1e6); err != nil {
		t.Fatal(err)
	}
	_ = task
	// With only slow cores allowed, runtime must match the slow-core clock:
	// compare against an unpinned copy that lands on fast core 0.
	k2 := newKernel(t)
	proc2 := exec.NewProcess(k2.NextPID(), img, &k2.Cost, 1, nil)
	free := k2.Spawn(proc2, "free", -1, 0)
	if err := k2.RunUntilDone(1e6); err != nil {
		t.Fatal(err)
	}
	pinnedTime := task.CompletionPs - task.ArrivalPs
	freeTime := free.CompletionPs - free.ArrivalPs
	ratio := float64(pinnedTime) / float64(freeTime)
	if ratio < 1.4 || ratio > 1.6 {
		t.Errorf("slow-pinned/free time ratio = %.3f, want about 1.5", ratio)
	}
}

func TestLoadBalancingSpreadsTasks(t *testing.T) {
	k := newKernel(t)
	for i := 0; i < 8; i++ {
		spawnProg(t, k, computeProgram(3000), uint64(i+1))
	}
	k.Run(5)
	// After several balance intervals, no core should hold more than half
	// the live tasks while another sits empty.
	lens := k.QueueLengths()
	max, min := 0, 1<<30
	for _, l := range lens {
		if l > max {
			max = l
		}
		if l < min {
			min = l
		}
	}
	if max-min > 2 {
		t.Errorf("queue imbalance %v after balancing", lens)
	}
}

func TestThroughputSamples(t *testing.T) {
	k := newKernel(t)
	for i := 0; i < 4; i++ {
		spawnProg(t, k, computeProgram(40000), uint64(i+1))
	}
	k.Run(5)
	samples := k.Samples()
	if len(samples) < 3 {
		t.Fatalf("got %d samples over 5s with 1s interval", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Instructions < samples[i-1].Instructions {
			t.Error("cumulative instruction samples decreased")
		}
		if samples[i].AtPs <= samples[i-1].AtPs {
			t.Error("sample timestamps not increasing")
		}
	}
}

func TestOnExitSpawnsNextJob(t *testing.T) {
	k := newKernel(t)
	img, err := exec.NewImage(computeProgram(100), nil, k.Cost)
	if err != nil {
		t.Fatal(err)
	}
	spawned := 0
	k.OnExit = func(k *Kernel, done *Task) {
		if spawned < 3 {
			spawned++
			proc := exec.NewProcess(k.NextPID(), img, &k.Cost, uint64(spawned+10), nil)
			k.Spawn(proc, "next", done.Slot, 0)
		}
	}
	proc := exec.NewProcess(k.NextPID(), img, &k.Cost, 1, nil)
	k.Spawn(proc, "first", 0, 0)
	if err := k.RunUntilDone(1e6); err != nil {
		t.Fatal(err)
	}
	if spawned != 3 {
		t.Errorf("chained spawns = %d, want 3", spawned)
	}
	if len(k.Tasks()) != 4 {
		t.Errorf("total tasks = %d, want 4", len(k.Tasks()))
	}
	// Arrivals must be non-decreasing.
	tasks := k.Tasks()
	for i := 1; i < len(tasks); i++ {
		if tasks[i].ArrivalPs < tasks[i-1].ArrivalPs {
			t.Error("later spawn has earlier arrival")
		}
	}
}

func TestBalancerPullsFromBackloggedCore(t *testing.T) {
	// Spawn one unpinned task (lands on core 0), one unpinned (core 1),
	// then two tasks pinned to core 0: its queue reaches 3 while cores 2-3
	// sit empty. The balancer must pull the movable task off core 0.
	k := newKernel(t)
	img, err := exec.NewImage(computeProgram(30000), nil, k.Cost)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, affinity uint64, seed uint64) *Task {
		p := exec.NewProcess(k.NextPID(), img, &k.Cost, seed, nil)
		return k.Spawn(p, name, -1, affinity)
	}
	free := mk("free", 0, 1)
	mk("other", 0, 2)
	mk("pin1", 0b0001, 3)
	mk("pin2", 0b0001, 4)
	k.Run(2)
	if free.Migrations == 0 {
		t.Error("movable task never pulled from the backlogged core")
	}
	if free.core == 0 {
		t.Error("movable task still on the backlogged core")
	}
}

// pingPongHook alternates affinity between core sets on every mark.
type pingPongHook struct {
	masks []uint64
	i     int
}

func (h *pingPongHook) OnMark(p *exec.Process, markID, coreID int) exec.MarkAction {
	h.i++
	return exec.MarkAction{Mask: h.masks[h.i%len(h.masks)]}
}
func (h *pingPongHook) OnExit(p *exec.Process) {}

// markedProgram hand-crafts an instrumented image: a loop whose body starts
// with a phase mark, so the hook fires every iteration.
func markedImage(t *testing.T, k *Kernel) *exec.Image {
	t.Helper()
	p := &prog.Program{
		Name: "marked",
		Procs: []*prog.Procedure{{
			Name: "main",
			Instrs: []isa.Instruction{
				{Op: isa.PhaseMark, MarkID: 0, Bytes: 73},
				{Op: isa.IntALU}, {Op: isa.IntALU}, {Op: isa.IntALU},
				{Op: isa.Branch, Target: 0, TripCount: 400, TakenProb: 0.99},
				{Op: isa.Ret},
			},
		}},
	}
	bin := &instrument.Binary{
		Prog:  p,
		Marks: []instrument.Mark{{ID: 0, Type: 0}},
	}
	img, err := exec.NewImage(p, bin, k.Cost)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestHookMigrationsCountedAndCharged(t *testing.T) {
	k := newKernel(t)
	img := markedImage(t, k)
	hook := &pingPongHook{masks: []uint64{0b0001, 0b0100}}
	p := exec.NewProcess(k.NextPID(), img, &k.Cost, 1, hook)
	task := k.Spawn(p, "pingpong", -1, 0)
	if err := k.RunUntilDone(1e6); err != nil {
		t.Fatal(err)
	}
	// 400 marks alternating between disjoint single-core masks: every mark
	// whose mask excludes the current core forces a migration.
	if task.Migrations < 100 {
		t.Errorf("migrations = %d, want hundreds from ping-pong affinity", task.Migrations)
	}
	// Each migration costs CoreSwitchCycles of wall time; the runtime must
	// exceed the no-switch execution noticeably.
	k2 := newKernel(t)
	img2 := markedImage(t, k2)
	p2 := exec.NewProcess(k2.NextPID(), img2, &k2.Cost, 1, nil)
	ref := k2.Spawn(p2, "ref", -1, 0b0001)
	if err := k2.RunUntilDone(1e6); err != nil {
		t.Fatal(err)
	}
	if task.CompletionPs <= ref.CompletionPs {
		t.Error("ping-pong run not slower than pinned run despite switch costs")
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	k := newKernel(t)
	spawnProg(t, k, computeProgram(1e6), 1) // very long program
	k.Run(2)
	if k.NowSec() > 2.3 {
		t.Errorf("clock ran to %.2fs past the 2s horizon", k.NowSec())
	}
	if k.Live() != 1 {
		t.Errorf("long task finished unexpectedly")
	}
}

func TestFastCoreFinishesFirst(t *testing.T) {
	// Two identical compute tasks, one pinned fast, one pinned slow.
	k := newKernel(t)
	img, err := exec.NewImage(computeProgram(2000), nil, k.Cost)
	if err != nil {
		t.Fatal(err)
	}
	pf := exec.NewProcess(k.NextPID(), img, &k.Cost, 5, nil)
	fastTask := k.Spawn(pf, "fast", -1, 0b0001)
	ps := exec.NewProcess(k.NextPID(), img, &k.Cost, 5, nil)
	slowTask := k.Spawn(ps, "slow", -1, 0b0100)
	if err := k.RunUntilDone(1e6); err != nil {
		t.Fatal(err)
	}
	if fastTask.CompletionPs >= slowTask.CompletionPs {
		t.Errorf("fast-pinned task (%d) not earlier than slow-pinned (%d)",
			fastTask.CompletionPs, slowTask.CompletionPs)
	}
}

func TestSecPsConversions(t *testing.T) {
	if SecToPs(1.5) != 1500000000000 {
		t.Errorf("SecToPs(1.5) = %d", SecToPs(1.5))
	}
	if PsToSec(2e12) != 2 {
		t.Errorf("PsToSec(2e12) = %g", PsToSec(2e12))
	}
}
