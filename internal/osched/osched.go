// Package osched simulates the operating-system layer: per-core run queues,
// fixed time slices, periodic load balancing, and the process-affinity API.
//
// The baseline scheduler mirrors what the paper compares against — the stock
// Linux 2.6.22 O(1) scheduler (§IV-A1): strictly asymmetry-unaware, it
// balances run-queue lengths across cores and otherwise leaves processes
// where they are. Phase-based tuning runs *on top of* this scheduler, just
// as in the paper: instrumented processes call the affinity API from their
// phase marks, and the kernel honors affinity masks at enqueue, dispatch,
// and balance time. Core switches cost ~1000 cycles (paper §IV-B3).
//
// The simulation is discrete-event: each core processes run bursts (up to
// one time slice of basic-block steps), and balancing/sampling fire on their
// own periodic events. Time is int64 picoseconds; every run is a
// deterministic function of its inputs.
package osched

import (
	"fmt"
	"math"

	"phasetune/internal/amp"
	"phasetune/internal/cache"
	"phasetune/internal/exec"
	"phasetune/internal/ledger"
	"phasetune/internal/perfcnt"
	"phasetune/internal/trace"
)

// PsPerSec converts simulated seconds to picoseconds.
const PsPerSec = 1e12

// SecToPs converts seconds to picoseconds, saturating at half the int64
// range so arithmetic on horizons cannot overflow.
func SecToPs(s float64) int64 {
	const maxPs = math.MaxInt64 / 2
	ps := s * PsPerSec
	if ps >= maxPs {
		return maxPs
	}
	return int64(ps)
}

// PsToSec converts picoseconds to seconds.
func PsToSec(ps int64) float64 { return float64(ps) / PsPerSec }

// Config holds scheduler constants.
type Config struct {
	// TimesliceSec is the scheduling quantum (Linux O(1) default ~100 ms).
	TimesliceSec float64
	// BalanceIntervalSec is the period of the load balancer.
	BalanceIntervalSec float64
	// SampleIntervalSec is the period of throughput sampling.
	SampleIntervalSec float64
	// MonitorIntervalSec is the period of the task monitor (Kernel.Monitor);
	// non-positive disables the monitor event even when a monitor is set.
	// The online phase-detection runtime observes per-process counters on
	// this tick (§V's dynamic competitor); it is distinct from throughput
	// sampling so detection cadence can be tuned without touching metrics.
	MonitorIntervalSec float64
	// CoreSwitchCycles is charged to a process when it migrates between
	// cores (the paper measures ~1000 cycles per switch, §IV-B3).
	CoreSwitchCycles int64
	// ContextSwitchCycles is charged when a core switches between tasks.
	ContextSwitchCycles int64
	// CounterSlots bounds concurrently active performance-counter event
	// sets (0 = unlimited). PAPI virtualizes counters per thread — the
	// kernel saves and restores counter state at context switches — so
	// concurrent per-process event sets are effectively unbounded; the
	// bounded mode exists for the counter-contention ablation.
	CounterSlots int
	// Overcommit configures the proportional-share dispatcher used by
	// open-system serving runs, where runnable tasks can exceed cores.
	Overcommit OvercommitConfig
}

// OvercommitConfig parameterizes the proportional-share dispatcher — the
// hypervisor-scheduler two-phase idiom adapted to the O(1) kernel. Phase 1
// computes a demand/capacity scale factor per core type (Kernel.
// OvercommitScale): with d runnable tasks contending for c cores of a
// type, each task's fair share of a scheduling round is c/d of a full
// timeslice. Phase 2 turns the fractional share into a concrete bounded
// execution slice at dispatch time: the quantum shrinks to
// TimesliceSec * c/d (floored at MinSliceSec), so d tasks time-multiplex
// through c cores with per-type shares summing to exactly the type's
// capacity. Placement policies compose unchanged — overcommit only
// shortens slices, never overrides affinity — and the extra slice
// boundaries charge context-switch cost through the existing
// Config.ContextSwitchCycles path, so "overcommit costs switching time"
// is part of the simulation.
type OvercommitConfig struct {
	// Enabled turns on slice scaling. Off, the kernel behaves exactly as
	// before: oversubscribed cores round-robin full timeslices.
	Enabled bool
	// MinSliceSec floors the scaled slice so extreme overcommit cannot
	// degenerate into pure context-switch thrash. Non-positive defaults to
	// TimesliceSec/8.
	MinSliceSec float64
}

// DefaultConfig returns the configuration used by the experiments.
//
// Switch costs are scaled: the paper measures ~1000 cycles per core switch
// (§IV-B3) against code sections of ~10^10 cycles (Fig. 5). Under the
// simulation's 1/20 time scale sections are 20x shorter, so preserving the
// paper's amortization ratios requires scaling the switch micro-costs by
// the same divisor: 1000/20 = 50 cycles per core switch. The switch-cost
// experiment reports both the simulated and the descaled equivalent value.
func DefaultConfig() Config {
	return Config{
		TimesliceSec:        0.1,
		BalanceIntervalSec:  0.25,
		SampleIntervalSec:   1.0,
		MonitorIntervalSec:  0.1,
		CoreSwitchCycles:    50,
		ContextSwitchCycles: 40,
		CounterSlots:        0,
	}
}

// TaskState is a task's lifecycle state.
type TaskState uint8

const (
	// TaskReady means queued on some core.
	TaskReady TaskState = iota
	// TaskRunning means currently in a run burst.
	TaskRunning
	// TaskExited means the program terminated.
	TaskExited
)

// Task is the kernel's per-process bookkeeping.
type Task struct {
	// Proc is the executing process.
	Proc *exec.Process
	// Name labels the task (benchmark name).
	Name string
	// Slot is workload bookkeeping (which job queue the task came from);
	// -1 when unused.
	Slot int
	// Affinity is the current mask; the kernel only places the task on
	// allowed cores.
	Affinity uint64
	// ArrivalPs and CompletionPs are arrival/completion timestamps
	// (CompletionPs is -1 until exit).
	ArrivalPs, CompletionPs int64
	// Migrations counts cross-core moves (the paper's "core switches").
	Migrations int
	// State is the lifecycle state.
	State TaskState

	core          int   // current core (queue membership or running)
	pendingCycles int64 // penalty cycles charged at next run (switch costs)
	pendMonitor   int64 // portion of pendingCycles that is monitoring cost (Penalize)
	lastQueuedPs  int64 // when the task last became queued (ledger queue-wait accounting)
	arriveHead    bool  // enqueue at the head on next arrival (mid-slice migration)
	memBound      bool  // image working set stresses the shared L2 (cache stats)
}

// Core returns the core the task is queued on or running on (-1 after
// exit). For an in-flight task it is the core the current burst runs on.
func (t *Task) Core() int { return t.core }

// TaskMonitor observes the machine at a fixed period (the kernel's
// Config.MonitorIntervalSec). It is the OS-level hook the online
// phase-detection runtime hangs off: at every tick it may read any task's
// virtualized counters, charge monitoring cost (Penalize), and reassign
// tasks (SetAffinity). Ticks run synchronously inside the event loop, so a
// monitor needs no locking of kernel state.
type TaskMonitor interface {
	// OnTick fires once per monitor interval with the simulated timestamp.
	OnTick(k *Kernel, atPs int64)
}

// Sample is one throughput observation.
type Sample struct {
	// AtPs is the sample timestamp.
	AtPs int64
	// Instructions is the cumulative committed-instruction count across all
	// tasks at the sample time (phase-mark instructions included, as in the
	// paper's throughput measurement).
	Instructions uint64
}

// event kinds.
type evKind uint8

const (
	evDispatch evKind = iota
	evArrive
	evBalance
	evSample
	evMonitor
	evTimer
)

type event struct {
	ps   int64
	seq  uint64
	kind evKind
	core int
	task *Task
	fn   func(*Kernel) // evTimer callback
}

// eventHeap is a binary min-heap ordered by (ps, seq) with its own typed
// sift operations. container/heap's interface (Push(x any) / Pop() any)
// boxes every event into a heap allocation on the simulator's hottest
// path; the typed version keeps events in the backing array end to end.
// An allocs-per-dispatch regression test pins this property.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].ps != h[j].ps {
		return h[i].ps < h[j].ps
	}
	return h[i].seq < h[j].seq
}

// push inserts an event and sifts it up.
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the minimum event. Callers peek first, so pop is
// never called on an empty heap.
func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // drop the task/fn pointers so the GC can reclaim them
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && s.less(r, l) {
			c = r
		}
		if !s.less(c, i) {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	return top
}

func (h eventHeap) Peek() (event, bool) {
	if len(h) == 0 {
		return event{}, false
	}
	return h[0], true
}

type coreState struct {
	id       int
	typ      amp.CoreTypeID
	l2       int
	queue    []*Task
	busy     bool // a dispatch event is in flight for this core
	lastTask *Task
}

// Kernel is the simulated machine plus operating system.
type Kernel struct {
	// Machine is the hardware description.
	Machine *amp.Machine
	// Cost is the shared cost model.
	Cost exec.CostModel
	// Config holds scheduler constants.
	Config Config
	// Hardware is the performance-counter pool the tuning runtime draws on.
	Hardware *perfcnt.Hardware
	// Cache tracks shared-L2 occupancy.
	Cache *cache.Model
	// OnExit, when set, fires after a task completes (workloads use it to
	// start the next job in the slot queue).
	OnExit func(k *Kernel, t *Task)
	// OnSample, when set, fires at every throughput sampling event (run
	// drivers use it for progress reporting).
	OnSample func(k *Kernel, atPs int64)
	// Monitor, when set, receives periodic OnTick callbacks every
	// Config.MonitorIntervalSec (the online phase-detection runtime).
	// It must be set before the first Run* call.
	Monitor TaskMonitor
	// TraceBurst, when set, fires after every run burst (diagnostics).
	TraceBurst func(core int, t *Task, cycles, startPs, endPs int64)
	// Trace, when set, receives scheduler events (burst spans, migrations,
	// timers, runnable-depth counters). Nil disables tracing; emit sites
	// never read tracer state back, so a traced run is bit-identical to an
	// untraced one.
	Trace *trace.Tracer
	// Ledger, when set, receives conserved cycle-attribution charges at
	// every dispatch-slice boundary. Like the tracer it is nil-safe and
	// write-only from the kernel's perspective, so a ledgered run is
	// bit-identical to an unledgered one. Spawn attaches a step-attribution
	// accumulator (ledger.Work) to each process it admits.
	Ledger *ledger.Collector
	// Memo, when set, caches segment outcomes so repeated executions replay
	// in O(1) (exec.SegmentMemo). It must be set before the first Spawn.
	// Memoization is invisible to every observer — marks, monitor windows,
	// ledger charges, traces — so a memoized run is byte-identical to an
	// unmemoized one; the memo may be shared across concurrent kernels.
	Memo *exec.SegmentMemo

	params  []exec.CoreParams
	fastPs  int64
	cores   []coreState
	events  eventHeap
	seq     uint64
	nowPs   int64
	tasks   []*Task
	live    int
	nextPID int

	memStats   *CacheStats // per-group residency accounting (nil = off)
	memBoundKB float64     // working-set threshold classifying tasks as memory-bound

	typeCores []int // cores per core type (overcommit capacity)
	runnable  []int // live tasks per core type (queued or in a burst)
	peakLive  int
	ocSlices  uint64

	totalInstr uint64
	samples    []Sample
	sampling   bool
	balancing  bool
	monitoring bool
	traceNamed bool
}

// NewKernel boots a kernel on the machine.
func NewKernel(m *amp.Machine, cost exec.CostModel, cfg Config) (*Kernel, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	k := &Kernel{
		Machine:  m,
		Cost:     cost,
		Config:   cfg,
		Hardware: perfcnt.NewHardware(cfg.CounterSlots),
		Cache:    cache.New(m),
		params:   exec.ParamsFor(cost, m),
	}
	k.typeCores = make([]int, len(m.Types))
	k.runnable = make([]int, len(m.Types))
	for _, c := range m.Cores {
		k.cores = append(k.cores, coreState{id: c.ID, typ: c.Type, l2: c.L2})
		k.typeCores[c.Type]++
	}
	// Fastest clock: prices the ledger's useful-work counterfactual and
	// keys memo lanes (ledgered and unledgered runs must share lanes).
	k.fastPs = k.params[0].PsPerCycle
	for _, p := range k.params[1:] {
		if p.PsPerCycle < k.fastPs {
			k.fastPs = p.PsPerCycle
		}
	}
	return k, nil
}

// CacheStats is the kernel's per-cache-group residency map: how the busy
// time of memory-bound tasks — those whose image working set stresses the
// shared L2 — distributed over the machine's cache groups. It is the
// observable behind the contention experiments: an antagonist fleet herded
// onto one group concentrates GroupMemPs there; contention-priced placement
// spreads it. Collection is off unless EnableCacheStats was called; the
// dispatch hot path reads one nil check when off, and the stats are
// write-only from the kernel's perspective, so an instrumented run is
// byte-identical to an uninstrumented one apart from the stats themselves.
type CacheStats struct {
	// GroupBusyPs is total busy core-picoseconds per L2 group.
	GroupBusyPs []int64 `json:"group_busy_ps"`
	// GroupMemPs is busy core-picoseconds of memory-bound tasks per group.
	GroupMemPs []int64 `json:"group_mem_ps"`
	// MemTasks counts tasks classified memory-bound at spawn.
	MemTasks int `json:"mem_tasks"`
}

// EnableCacheStats turns on per-group residency accounting. Must be called
// before the first Spawn (classification happens at spawn time). Tasks are
// memory-bound when their image's aggregate working set is at least half
// the largest shared L2 — crowding such tasks measurably moves their miss
// ratio, which is exactly the population contention pricing separates.
func (k *Kernel) EnableCacheStats() {
	k.memStats = &CacheStats{
		GroupBusyPs: make([]int64, len(k.Machine.L2s)),
		GroupMemPs:  make([]int64, len(k.Machine.L2s)),
	}
	maxKB := 0.0
	for _, g := range k.Machine.L2s {
		if g.SizeKB > maxKB {
			maxKB = g.SizeKB
		}
	}
	k.memBoundKB = maxKB / 2
}

// CacheStats returns the residency map (nil unless EnableCacheStats).
func (k *Kernel) CacheStats() *CacheStats { return k.memStats }

// NowPs returns the simulated clock.
func (k *Kernel) NowPs() int64 { return k.nowPs }

// NowSec returns the simulated clock in seconds.
func (k *Kernel) NowSec() float64 { return PsToSec(k.nowPs) }

// Tasks returns all tasks ever spawned, in spawn order.
func (k *Kernel) Tasks() []*Task { return k.tasks }

// Live returns the number of non-exited tasks.
func (k *Kernel) Live() int { return k.live }

// TotalInstructions returns cumulative committed instructions.
func (k *Kernel) TotalInstructions() uint64 { return k.totalInstr }

// Samples returns the throughput samples recorded so far.
func (k *Kernel) Samples() []Sample { return k.samples }

// Params returns the per-core-type execution parameters.
func (k *Kernel) Params() []exec.CoreParams { return k.params }

// push schedules an event.
func (k *Kernel) push(ps int64, kind evKind, core int) {
	k.seq++
	k.events.push(event{ps: ps, seq: k.seq, kind: kind, core: core})
}

// pushArrive schedules a task arrival: the task is in flight (its burst
// occupies the simulated interval up to ps) and joins the core's queue only
// when the clock reaches ps. Routing every requeue through an arrival event
// is what keeps a task from being visible in two places at once.
func (k *Kernel) pushArrive(ps int64, t *Task, core int) {
	k.seq++
	k.events.push(event{ps: ps, seq: k.seq, kind: evArrive, core: core, task: t})
}

// Spawn creates a task for the process and enqueues it. The affinity mask 0
// means "all cores". Spawn may be called from OnExit callbacks.
func (k *Kernel) Spawn(p *exec.Process, name string, slot int, affinity uint64) *Task {
	if affinity == 0 {
		affinity = k.Machine.AllMask()
	}
	t := &Task{
		Proc:         p,
		Name:         name,
		Slot:         slot,
		Affinity:     affinity,
		ArrivalPs:    k.nowPs,
		CompletionPs: -1,
		State:        TaskReady,
		core:         -1,
		lastQueuedPs: k.nowPs,
	}
	k.tasks = append(k.tasks, t)
	if k.memStats != nil && p.Img != nil {
		if sig := p.Img.MemSignature(); sig.L2RefsPerInstr > 0 && sig.Profile.WorkingSetKB >= k.memBoundKB {
			t.memBound = true
			k.memStats.MemTasks++
		}
	}
	if k.Ledger != nil {
		k.Ledger.AddTask(p.PID, name)
		if p.Work == nil {
			p.Work = k.Ledger.Work()
		}
	}
	if k.Memo != nil {
		// Arm before the first step: the memo's incremental state hashes
		// must cover the process's whole execution.
		p.EnableMemo()
	}
	k.live++
	if k.live > k.peakLive {
		k.peakLive = k.live
	}
	k.enqueue(t, k.pickCore(t, -1))
	if k.Trace != nil {
		k.Trace.NameThread(trace.PidTasks, p.PID, fmt.Sprintf("task %d (%s)", p.PID, name))
		k.Trace.Instant("sched", "spawn", trace.PidTasks, p.PID, k.nowPs,
			trace.Arg{Key: "name", Value: name},
			trace.Arg{Key: "slot", Value: slot},
			trace.Arg{Key: "core", Value: t.core})
		k.traceRunnable()
	}
	return t
}

// pickCore selects the least-loaded allowed core (wake balancing), with an
// optional core to exclude. Ties break toward lower core IDs.
func (k *Kernel) pickCore(t *Task, exclude int) int {
	best, bestLoad := -1, int(^uint(0)>>1)
	for i := range k.cores {
		if i == exclude || t.Affinity&(1<<uint(i)) == 0 {
			continue
		}
		// Queue length is the nr_running proxy: dispatch handlers requeue
		// the running task synchronously, so between events every live task
		// sits in exactly one queue (busy only means a dispatch is pending).
		load := len(k.cores[i].queue)
		if load < bestLoad {
			best, bestLoad = i, load
		}
	}
	if best == -1 {
		// Affinity excludes every core (including exclude); fall back to any
		// allowed core, or core 0 for an empty mask.
		for i := range k.cores {
			if t.Affinity&(1<<uint(i)) != 0 {
				return i
			}
		}
		return 0
	}
	return best
}

// enqueue adds the task to a core's run queue, waking the core if idle.
// Tasks that migrated mid-quantum enter at the head: the O(1) scheduler
// keeps a migrated task's remaining timeslice and dynamic priority, so it
// resumes promptly on the target core instead of waiting a full queue round.
func (k *Kernel) enqueue(t *Task, core int) {
	// The mask may have moved while the task was in flight (an external
	// SetAffinity from the monitor): land on an allowed core instead,
	// charging the switch like any other migration.
	if t.Affinity&(1<<uint(core)) == 0 {
		target := k.pickCore(t, core)
		if target != core {
			t.Migrations++
			t.pendingCycles += k.Config.CoreSwitchCycles
			core = target
		}
	}
	// Per-type runnable accounting (overcommit demand). Every placement
	// change funnels through enqueue, so moving the count with the task
	// keeps runnable[typ] equal to the live tasks queued on or running on
	// cores of that type.
	if t.core >= 0 {
		k.runnable[k.cores[t.core].typ]--
	}
	k.runnable[k.cores[core].typ]++
	t.core = core
	// A running task re-entering a queue starts a fresh queue wait; a task
	// merely moved between queues (balance, SetAffinity) keeps the wait it
	// already accumulated, so per-task queue time tiles the sojourn exactly.
	if t.State == TaskRunning {
		t.lastQueuedPs = k.nowPs
	}
	t.State = TaskReady
	cs := &k.cores[core]
	if t.arriveHead {
		t.arriveHead = false
		// Shift in place rather than rebuilding the slice: queues keep
		// their capacity, so steady-state enqueueing never allocates.
		cs.queue = append(cs.queue, nil)
		copy(cs.queue[1:], cs.queue)
		cs.queue[0] = t
	} else {
		cs.queue = append(cs.queue, t)
	}
	if !cs.busy {
		cs.busy = true
		k.push(k.nowPs, evDispatch, core)
	}
}

// Run advances the simulation until the event queue drains or the clock
// passes untilSec (exclusive horizon; pending later events remain queued).
func (k *Kernel) Run(untilSec float64) {
	k.RunCancellable(untilSec, nil)
}

// cancelCheckEvents is how many events are handled between cancellation
// checks. Checking per event would put a closure call on the hottest loop in
// the simulator; a few thousand events span well under a simulated second.
const cancelCheckEvents = 4096

// RunCancellable advances the simulation up to untilSec simulated seconds,
// polling cancelled (when non-nil) every few thousand events. It reports
// whether the run was cut short by cancellation.
func (k *Kernel) RunCancellable(untilSec float64, cancelled func() bool) bool {
	horizon := SecToPs(untilSec)
	k.ensurePeriodicEvents()
	countdown := cancelCheckEvents
	for {
		e, ok := k.events.Peek()
		if !ok || e.ps > horizon {
			return false
		}
		if cancelled != nil {
			if countdown--; countdown <= 0 {
				countdown = cancelCheckEvents
				if cancelled() {
					return true
				}
			}
		}
		k.events.pop()
		if e.ps > k.nowPs {
			k.nowPs = e.ps
		}
		k.handle(e)
	}
}

// RunUntilDone advances the simulation until every task has exited (or the
// safety horizon passes). Used for isolation runs.
func (k *Kernel) RunUntilDone(maxSec float64) error {
	horizon := SecToPs(maxSec)
	k.ensurePeriodicEvents()
	for k.live > 0 {
		e, ok := k.events.Peek()
		if !ok {
			return fmt.Errorf("osched: %d tasks live but no events pending", k.live)
		}
		if e.ps > horizon {
			return fmt.Errorf("osched: horizon %.1fs exceeded with %d tasks live", maxSec, k.live)
		}
		k.events.pop()
		if e.ps > k.nowPs {
			k.nowPs = e.ps
		}
		k.handle(e)
	}
	return nil
}

// handle processes one event.
func (k *Kernel) handle(e event) {
	if k.Trace != nil {
		// Keep the tracer's clock in lockstep with the kernel's so layers
		// without their own clock (placement engine, tuner) stamp correctly.
		k.Trace.SetNow(k.nowPs)
	}
	switch e.kind {
	case evDispatch:
		k.dispatch(e.core)
	case evArrive:
		k.enqueue(e.task, e.core)
	case evBalance:
		k.balance()
		k.push(k.nowPs+SecToPs(k.Config.BalanceIntervalSec), evBalance, -1)
	case evSample:
		k.samples = append(k.samples, Sample{AtPs: k.nowPs, Instructions: k.totalInstr})
		k.traceRunnable()
		if k.OnSample != nil {
			k.OnSample(k, k.nowPs)
		}
		k.push(k.nowPs+SecToPs(k.Config.SampleIntervalSec), evSample, -1)
	case evMonitor:
		if k.Monitor != nil {
			k.Monitor.OnTick(k, k.nowPs)
		}
		k.push(k.nowPs+SecToPs(k.Config.MonitorIntervalSec), evMonitor, -1)
	case evTimer:
		if k.Trace != nil {
			k.Trace.Instant("sched", "timer", trace.PidMachine, trace.TidKernel, k.nowPs)
		}
		if e.fn != nil {
			e.fn(k)
		}
	}
}

// traceRunnable emits the runnable-depth counter track: live task demand
// per core type plus the total, the overcommit dispatcher's input.
func (k *Kernel) traceRunnable() {
	if k.Trace == nil {
		return
	}
	series := make([]trace.Arg, 0, len(k.runnable)+1)
	total := 0
	for typ, n := range k.runnable {
		series = append(series, trace.Arg{Key: k.Machine.Types[typ].Name, Value: n})
		total += n
	}
	series = append(series, trace.Arg{Key: "total", Value: total})
	k.Trace.Counter("runnable", trace.PidMachine, k.nowPs, series...)
}

// At schedules fn to run inside the event loop at the given simulated
// time (clamped to now if in the past). Timers interleave with kernel
// events deterministically through the (time, sequence) heap order, and
// the clock is advanced before the callback fires, so a Spawn from a timer
// stamps the task's arrival at exactly the timer's instant — which is how
// open-system run drivers admit jobs (sim's arrival schedule). Pending
// timers do not count as live tasks: RunUntilDone returns once tasks are
// drained even if future timers remain queued.
func (k *Kernel) At(ps int64, fn func(*Kernel)) {
	if ps < k.nowPs {
		ps = k.nowPs
	}
	k.seq++
	k.events.push(event{ps: ps, seq: k.seq, kind: evTimer, fn: fn})
}

// ensurePeriodicEvents seeds the balance and sample events once.
func (k *Kernel) ensurePeriodicEvents() {
	if k.Trace != nil && !k.traceNamed {
		k.traceNamed = true
		k.Trace.NameProcess(trace.PidMachine, "scheduler: "+k.Machine.Name)
		k.Trace.NameProcess(trace.PidTasks, "tasks")
		k.Trace.NameThread(trace.PidMachine, trace.TidKernel, "kernel")
		for i := range k.cores {
			typ := k.Machine.Types[k.cores[i].typ].Name
			k.Trace.NameThread(trace.PidMachine, trace.CoreTid(i), fmt.Sprintf("core %d (%s)", i, typ))
		}
	}
	if !k.balancing {
		k.balancing = true
		k.push(k.nowPs+SecToPs(k.Config.BalanceIntervalSec), evBalance, -1)
	}
	if !k.sampling {
		k.sampling = true
		k.push(k.nowPs+SecToPs(k.Config.SampleIntervalSec), evSample, -1)
	}
	if !k.monitoring && k.Monitor != nil && k.Config.MonitorIntervalSec > 0 {
		k.monitoring = true
		k.push(k.nowPs+SecToPs(k.Config.MonitorIntervalSec), evMonitor, -1)
	}
}

// dispatch runs one burst on a core.
func (k *Kernel) dispatch(core int) {
	cs := &k.cores[core]
	if len(cs.queue) == 0 {
		cs.busy = false
		return
	}
	t := cs.queue[0]
	// Pop by shifting down, not by reslicing off the front: reslicing
	// strands the popped slot's capacity, so every queue would reallocate
	// on append at a steady cadence. Shifting keeps the buffer anchored
	// and the hot loop allocation-free; queues are a handful of tasks, so
	// the copy is cheaper than the allocs it avoids.
	n := copy(cs.queue, cs.queue[1:])
	cs.queue[n] = nil
	cs.queue = cs.queue[:n]
	t.State = TaskRunning
	queueWaitPs := k.nowPs - t.lastQueuedPs

	par := &k.params[cs.typ]
	sliceCycles := int64(k.Config.TimesliceSec * par.CyclesPerSec)
	ocScale := 1.0
	if k.Config.Overcommit.Enabled {
		// Phase 2 of the overcommit dispatcher: turn the fractional share
		// into a bounded execution slice. The shortened quantum produces
		// more slice boundaries, each charging ContextSwitchCycles below —
		// the switching cost of time-multiplexing is paid, not assumed away.
		if f := k.OvercommitScale(cs.typ); f < 1 {
			minSec := k.Config.Overcommit.MinSliceSec
			if minSec <= 0 {
				minSec = k.Config.TimesliceSec / 8
			}
			scaled := int64(float64(sliceCycles) * f)
			if min := int64(minSec * par.CyclesPerSec); scaled < min {
				scaled = min
			}
			if scaled < 1 {
				scaled = 1
			}
			sliceCycles = scaled
			ocScale = f
			k.ocSlices++
		}
	}

	var used int64
	// Switch penalties accrued earlier (migration) and context switching.
	// They consume core time but stay out of the process's virtualized
	// counters: under the scaled clock a monitored section is ~10^4 cycles
	// where the paper's are ~10^10 (Fig. 5), so penalty cycles that are
	// noise on real hardware would dominate simulated IPC measurements.
	var migrateCycles, monitorCycles, ctxCycles int64
	if t.pendingCycles > 0 {
		monitorCycles = t.pendMonitor
		migrateCycles = t.pendingCycles - monitorCycles
		used += t.pendingCycles
		t.pendingCycles, t.pendMonitor = 0, 0
	}
	if cs.lastTask != t && cs.lastTask != nil {
		ctxCycles = k.Config.ContextSwitchCycles
		used += ctxCycles
	}
	cs.lastTask = t

	instrBefore := t.Proc.Counters.Instructions
	k.Cache.Attach(cs.l2)
	// The effective share is constant for the whole burst: Attach/Detach
	// bracket the loop and no other handler runs in between, so hoisting
	// the lookup out of the step loop is exact — and it is what lets the
	// memo key a lane on the share.
	share := k.Cache.ShareKB(cs.l2)
	var lane *exec.Lane
	if k.Memo != nil {
		lane = k.Memo.LaneFor(t.Proc, par, share, k.fastPs)
	}

	exited := false
	migrate := false
	for used < sliceCycles {
		var res exec.StepResult
		if lane != nil {
			if adv := t.Proc.Advance(lane, sliceCycles-used); adv > 0 {
				used += adv
				continue
			}
			res = t.Proc.StepLane(lane, core)
		} else {
			res = t.Proc.Step(par, core, share)
		}
		used += res.Cycles
		if res.Exited {
			exited = true
			break
		}
		if res.WantMask != 0 && res.WantMask != t.Affinity {
			t.Affinity = res.WantMask
			if res.WantMask&(1<<uint(core)) == 0 {
				migrate = true
				break
			}
		}
	}
	// A slice boundary is observer-visible: close any open recording.
	t.Proc.EndSlice()

	k.Cache.Detach(cs.l2)
	k.totalInstr += t.Proc.Counters.Instructions - instrBefore

	// End-of-quantum hook: bounded monitoring windows (exec.QuantumHook).
	if !exited && !migrate {
		if qh, ok := t.Proc.Hook.(exec.QuantumHook); ok {
			act := qh.OnQuantum(t.Proc, core)
			if act.Mask != 0 && act.Mask != t.Affinity {
				t.Affinity = act.Mask
				if act.Mask&(1<<uint(core)) == 0 {
					migrate = true
				}
			}
		}
	}

	elapsed := used * par.PsPerCycle
	end := k.nowPs + elapsed
	if k.memStats != nil {
		k.memStats.GroupBusyPs[cs.l2] += elapsed
		if t.memBound {
			k.memStats.GroupMemPs[cs.l2] += elapsed
		}
	}
	if k.Ledger != nil {
		// Charge the burst: every category is an integer multiple of this
		// core's PsPerCycle and used = penalties + ctx + Σ step cycles, so
		// the categories tile [nowPs, end] exactly (elapsed distributes over
		// the integer summands of used).
		var segs []ledger.Segment
		if t.Proc.Work != nil {
			segs = t.Proc.Work.Drain()
		}
		k.Ledger.Charge(ledger.Burst{
			Core:          core,
			PID:           t.Proc.PID,
			PsPerCycle:    par.PsPerCycle,
			StartPs:       k.nowPs,
			EndPs:         end,
			QueuePs:       queueWaitPs,
			MigrateCycles: migrateCycles,
			MonitorCycles: monitorCycles,
			CtxCycles:     ctxCycles,
			Sliced:        ocScale < 1,
			Segs:          segs,
		})
		if t.Proc.Work != nil {
			// Charge copies what it needs; hand the segment storage back so
			// the next burst appends in place instead of allocating.
			t.Proc.Work.Recycle(segs)
		}
	}
	if k.TraceBurst != nil {
		k.TraceBurst(core, t, used, k.nowPs, end)
	}
	if k.Trace != nil {
		reason := "slice"
		if exited {
			reason = "exit"
		} else if migrate {
			reason = "migrate"
		}
		args := []trace.Arg{
			{Key: "task", Value: t.Proc.PID},
			{Key: "name", Value: t.Name},
			{Key: "cycles", Value: used},
			{Key: "end", Value: reason},
		}
		if ocScale < 1 {
			args = append(args, trace.Arg{Key: "oc_scale", Value: ocScale})
		}
		k.Trace.Span("sched", "burst", trace.PidMachine, trace.CoreTid(core), k.nowPs, end, args...)
	}

	switch {
	case exited:
		t.State = TaskExited
		t.CompletionPs = end
		k.runnable[cs.typ]--
		t.core = -1
		k.live--
		if k.Trace != nil {
			k.Trace.Instant("sched", "exit", trace.PidTasks, t.Proc.PID, end,
				trace.Arg{Key: "migrations", Value: t.Migrations},
				trace.Arg{Key: "sojourn_ps", Value: end - t.ArrivalPs})
			k.traceRunnable()
		}
		if k.OnExit != nil {
			// The callback may Spawn; advance the clock first so arrivals
			// stamp correctly.
			saved := k.nowPs
			k.nowPs = end
			k.OnExit(k, t)
			k.nowPs = saved
		}
	case migrate:
		t.Migrations++
		t.pendingCycles += k.Config.CoreSwitchCycles
		t.arriveHead = true
		target := k.pickCore(t, core)
		if k.Trace != nil {
			k.Trace.Instant("sched", "migrate", trace.PidTasks, t.Proc.PID, end,
				trace.Arg{Key: "from", Value: core},
				trace.Arg{Key: "to", Value: target})
		}
		k.pushArrive(end, t, target)
	default:
		// Slice expired: round-robin on the same core (or follow affinity if
		// it moved under us without excluding this core). The task stays in
		// flight until the burst's end.
		k.pushArrive(end, t, core)
	}

	k.push(end, evDispatch, core)
}

// balance is the periodic load balancer: queue-length equalization honoring
// affinity, the asymmetry-oblivious behavior of the stock scheduler.
func (k *Kernel) balance() {
	for pass := 0; pass < 2*len(k.cores); pass++ {
		src, dst := -1, -1
		srcLoad, dstLoad := -1, int(^uint(0)>>1)
		for i := range k.cores {
			load := len(k.cores[i].queue)
			if load > srcLoad {
				src, srcLoad = i, load
			}
			if load < dstLoad {
				dst, dstLoad = i, load
			}
		}
		if src == -1 || dst == -1 || srcLoad-dstLoad <= 1 {
			return
		}
		// Pull the most recently queued task allowed on dst (O(1) scheduler
		// pulls from the expired tail).
		q := k.cores[src].queue
		moved := false
		for i := len(q) - 1; i >= 0; i-- {
			t := q[i]
			if t.Affinity&(1<<uint(dst)) == 0 {
				continue
			}
			k.cores[src].queue = append(q[:i], q[i+1:]...)
			t.Migrations++
			t.pendingCycles += k.Config.CoreSwitchCycles
			if k.Trace != nil {
				k.Trace.Instant("sched", "balance.move", trace.PidMachine, trace.TidKernel, k.nowPs,
					trace.Arg{Key: "task", Value: t.Proc.PID},
					trace.Arg{Key: "from", Value: src},
					trace.Arg{Key: "to", Value: dst})
			}
			k.enqueue(t, dst)
			moved = true
			break
		}
		if !moved {
			return
		}
	}
}

// SetAffinity changes a task's affinity mask from outside the dispatch path
// (the simulated kernel-side sched_setaffinity the online reassignment
// policies call; processes themselves request masks through phase marks).
// A mask of 0 means "all cores". A queued task whose current core becomes
// disallowed migrates immediately; a task whose burst is in flight lands on
// an allowed core when it arrives (the enqueue path re-checks the mask), so
// external reassignment takes effect within one scheduling quantum.
func (k *Kernel) SetAffinity(t *Task, mask uint64) {
	if mask == 0 {
		mask = k.Machine.AllMask()
	}
	if t.Affinity == mask || t.State == TaskExited {
		t.Affinity = mask
		return
	}
	t.Affinity = mask
	if t.State != TaskReady || mask&(1<<uint(t.core)) != 0 {
		return
	}
	k.removeFromQueue(t)
	t.Migrations++
	t.pendingCycles += k.Config.CoreSwitchCycles
	k.enqueue(t, k.pickCore(t, t.core))
}

// removeFromQueue detaches a ready task from its core's run queue.
func (k *Kernel) removeFromQueue(t *Task) {
	q := k.cores[t.core].queue
	for i, qt := range q {
		if qt == t {
			k.cores[t.core].queue = append(q[:i], q[i+1:]...)
			return
		}
	}
}

// Penalize charges cycles to a task's next run burst without advancing its
// virtualized counters — monitoring overhead, modeled exactly like the
// switch micro-costs (the online runtime charges its per-window sampling
// work here, so "dynamic detection costs time" is part of the simulation).
func (k *Kernel) Penalize(t *Task, cycles int64) {
	if cycles > 0 && t.State != TaskExited {
		t.pendingCycles += cycles
		t.pendMonitor += cycles
	}
}

// OvercommitScale is phase 1 of the proportional-share dispatcher: the
// demand/capacity scale factor for a core type. With d runnable (live,
// non-exited) tasks on cores of the type and c cores of the type, the
// factor is min(1, c/d): each task's fair share of a scheduling round.
// Scaled shares sum to min(d, c) full-core equivalents, so per-type shares
// never exceed the type's capacity.
func (k *Kernel) OvercommitScale(typ amp.CoreTypeID) float64 {
	demand := k.runnable[typ]
	capacity := k.typeCores[typ]
	if demand <= capacity || demand == 0 {
		return 1
	}
	return float64(capacity) / float64(demand)
}

// RunnableOfType returns the live tasks currently queued on or running on
// cores of the type — the demand side of OvercommitScale.
func (k *Kernel) RunnableOfType(typ amp.CoreTypeID) int { return k.runnable[typ] }

// PeakLive returns the maximum number of simultaneously live tasks seen so
// far — the "max runnable" the serving experiments use to demonstrate a
// run actually exercised overcommit (peak > cores).
func (k *Kernel) PeakLive() int { return k.peakLive }

// OvercommitSlices returns how many dispatch slices were shortened by the
// overcommit dispatcher.
func (k *Kernel) OvercommitSlices() uint64 { return k.ocSlices }

// QueueLengths returns per-core run-queue lengths (diagnostics).
func (k *Kernel) QueueLengths() []int {
	out := make([]int, len(k.cores))
	for i := range k.cores {
		out[i] = len(k.cores[i].queue)
	}
	return out
}

// NextPID returns a fresh process ID.
func (k *Kernel) NextPID() int {
	k.nextPID++
	return k.nextPID
}
