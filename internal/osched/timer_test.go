package osched

import (
	"bytes"
	"testing"

	"phasetune/internal/trace"
)

// TestAtTimerTieBreakRegistrationOrder pins the determinism contract for
// same-instant timers: ties on the picosecond break by heap sequence
// number, i.e. registration order.
func TestAtTimerTieBreakRegistrationOrder(t *testing.T) {
	k := newKernel(t)
	at := SecToPs(0.5)
	var fired []string
	k.At(at, func(*Kernel) { fired = append(fired, "a") })
	k.At(at, func(*Kernel) { fired = append(fired, "b") })
	k.At(at, func(*Kernel) {
		fired = append(fired, "c")
		// A same-instant timer registered from inside a callback still
		// fires this instant, after everything already queued.
		k.At(at, func(*Kernel) { fired = append(fired, "d") })
	})
	k.Run(1.0)
	want := []string{"a", "b", "c", "d"}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v (registration order)", fired, want)
		}
	}
}

// TestAtTimerVsSampleSamePicosecond pins the interleaving of At timers
// with the periodic OnSample event when both land on the same
// picosecond: whichever was pushed onto the event heap first wins.
// Timers registered before the first Run* call precede the sample event
// (seeded inside Run); timers registered after the run started follow it.
func TestAtTimerVsSampleSamePicosecond(t *testing.T) {
	k := newKernel(t)
	k.Config.SampleIntervalSec = 1.0
	samplePs := SecToPs(1.0)

	var order []string
	k.OnSample = func(_ *Kernel, atPs int64) {
		if atPs == samplePs {
			order = append(order, "sample")
		}
	}
	// Registered before Run: seq precedes the sample event seeded by
	// ensurePeriodicEvents, so it must fire first.
	k.At(samplePs, func(kk *Kernel) {
		order = append(order, "timer-before")
		// Registered mid-run for the same instant: seq follows the sample
		// event, so it must fire after.
		kk.At(samplePs, func(*Kernel) { order = append(order, "timer-after") })
	})
	k.Run(1.5)

	want := []string{"timer-before", "sample", "timer-after"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}

	// The same schedule replays identically: determinism of the tie-break.
	k2 := newKernel(t)
	k2.Config.SampleIntervalSec = 1.0
	var order2 []string
	k2.OnSample = func(_ *Kernel, atPs int64) {
		if atPs == samplePs {
			order2 = append(order2, "sample")
		}
	}
	k2.At(samplePs, func(kk *Kernel) {
		order2 = append(order2, "timer-before")
		kk.At(samplePs, func(*Kernel) { order2 = append(order2, "timer-after") })
	})
	k2.Run(1.5)
	for i := range order {
		if order2[i] != order[i] {
			t.Fatalf("replay diverged: %v vs %v", order2, order)
		}
	}
}

// TestKernelTraceEvents checks the kernel's emit sites end to end: a
// traced run produces burst spans on core rows, spawn/exit instants on
// task rows, a runnable counter track, and identical task outcomes to an
// untraced run; two traced runs export byte-identical JSON.
func TestKernelTraceEvents(t *testing.T) {
	run := func(tr *trace.Tracer) *Kernel {
		k := newKernel(t)
		k.Trace = tr
		spawnProg(t, k, computeProgram(2000), 1)
		spawnProg(t, k, memoryProgram(1500), 2)
		if err := k.RunUntilDone(1e6); err != nil {
			t.Fatal(err)
		}
		return k
	}

	tr := trace.New()
	traced := run(tr)
	plain := run(nil)

	// Zero perturbation: same completions, instructions, migrations.
	if traced.TotalInstructions() != plain.TotalInstructions() {
		t.Fatalf("traced instructions %d != untraced %d", traced.TotalInstructions(), plain.TotalInstructions())
	}
	for i, tk := range traced.Tasks() {
		pk := plain.Tasks()[i]
		if tk.CompletionPs != pk.CompletionPs || tk.Migrations != pk.Migrations {
			t.Fatalf("task %d diverged: traced (%d, %d) vs untraced (%d, %d)",
				i, tk.CompletionPs, tk.Migrations, pk.CompletionPs, pk.Migrations)
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"burst"`, `"spawn"`, `"exit"`, `"runnable"`, `"thread_name"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("trace JSON missing %s", want)
		}
	}

	tr2 := trace.New()
	run(tr2)
	var buf2 bytes.Buffer
	if err := tr2.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("two identical traced runs exported different bytes")
	}
}
