package isa

import "testing"

func TestOpClassPredicates(t *testing.T) {
	if !Load.IsMemory() || !Store.IsMemory() || IntALU.IsMemory() {
		t.Error("IsMemory wrong")
	}
	if !FPAdd.IsFloat() || !FPDiv.IsFloat() || Load.IsFloat() {
		t.Error("IsFloat wrong")
	}
	for _, c := range []OpClass{Branch, Jump, Call, Ret} {
		if !c.IsControl() {
			t.Errorf("%v not control", c)
		}
	}
	if Syscall.IsControl() {
		t.Error("syscall is not a control transfer")
	}
	if !Syscall.EndsBlock() || !Call.EndsBlock() || IntALU.EndsBlock() {
		t.Error("EndsBlock wrong")
	}
}

func TestSizes(t *testing.T) {
	in := Instruction{Op: IntALU}
	if in.SizeBytes() != DefaultSize(IntALU) || in.SizeBytes() <= 0 {
		t.Errorf("IntALU size = %d", in.SizeBytes())
	}
	// Explicit size override (phase marks).
	mark := Instruction{Op: PhaseMark, Bytes: 73}
	if mark.SizeBytes() != 73 {
		t.Errorf("mark size = %d, want 73", mark.SizeBytes())
	}
	// Every regular class has a positive default encoding.
	for c := IntALU; c < PhaseMark; c++ {
		if DefaultSize(c) <= 0 {
			t.Errorf("class %v has default size %d", c, DefaultSize(c))
		}
	}
}

func TestStrings(t *testing.T) {
	if IntALU.String() != "intalu" || PhaseMark.String() != "phasemark" {
		t.Error("mnemonics wrong")
	}
	if OpClass(200).String() == "" {
		t.Error("unknown class renders empty")
	}
}

func TestMix(t *testing.T) {
	var m Mix
	m.Add(Load)
	m.Add(Load)
	m.Add(Store)
	m.Add(FPAdd)
	m.Add(IntALU)
	if m.Total() != 5 {
		t.Errorf("Total = %d", m.Total())
	}
	if m.MemOps() != 3 {
		t.Errorf("MemOps = %d", m.MemOps())
	}
	if m.FloatOps() != 1 {
		t.Errorf("FloatOps = %d", m.FloatOps())
	}
}
