// Package isa defines the synthetic instruction set used by the phase-based
// tuning reproduction.
//
// The paper (Sondag & Rajan, CGO 2011) instruments x86 binaries produced from
// the SPEC CPU 2000/2006 suites. Real x86 binaries are not available in this
// environment, so the whole toolchain — CFG construction, phase typing,
// transition marking, instrumentation, and execution — operates on this
// synthetic ISA instead. The ISA keeps exactly the properties the technique
// consumes:
//
//   - a static instruction *mix* per basic block (integer, floating point,
//     memory, control), which drives the paper's block-typing features;
//   - variable encoded instruction *sizes*, so space-overhead measurements
//     (paper Fig. 3) are byte-accurate;
//   - explicit control flow (conditional branches, jumps, calls, returns),
//     so basic blocks, intervals, and loops are real program structure;
//   - per-reference memory locality descriptors, from which the reuse-distance
//     cache model (paper §II-A3) derives expected miss ratios.
package isa

import "fmt"

// OpClass is the class of an instruction. Classes are deliberately coarse:
// the paper's static block typing uses "a combination of instruction types"
// (§II-A3), not exact opcodes.
type OpClass uint8

const (
	// IntALU is a simple integer ALU operation (add, sub, logic, shift).
	IntALU OpClass = iota
	// IntMul is an integer multiply.
	IntMul
	// IntDiv is an integer divide.
	IntDiv
	// FPAdd is a floating-point add/sub/compare.
	FPAdd
	// FPMul is a floating-point multiply.
	FPMul
	// FPDiv is a floating-point divide or square root.
	FPDiv
	// Load reads memory.
	Load
	// Store writes memory.
	Store
	// Branch is a conditional branch: taken -> Target, else fall through.
	Branch
	// Jump is an unconditional intra-procedural jump to Target.
	Jump
	// Call invokes procedure index Target; control returns to the next
	// instruction.
	Call
	// Ret returns from the current procedure (or terminates the program when
	// the call stack is empty in the entry procedure).
	Ret
	// Syscall models an operating-system request; it forms its own special
	// CFG node (the paper's S nodes).
	Syscall
	// Nop does nothing; used as padding.
	Nop
	// PhaseMark is the pseudo-instruction inserted by the instrumentation
	// framework at phase-transition points. It never appears in original
	// binaries. MarkID selects the mark's metadata in the instrumented
	// binary's mark table.
	PhaseMark

	// NumOpClasses is the number of instruction classes, for sizing tables.
	NumOpClasses = int(PhaseMark) + 1
)

var opNames = [NumOpClasses]string{
	"intalu", "intmul", "intdiv", "fpadd", "fpmul", "fpdiv",
	"load", "store", "branch", "jump", "call", "ret", "syscall", "nop",
	"phasemark",
}

// String returns the mnemonic for the class.
func (c OpClass) String() string {
	if int(c) < len(opNames) {
		return opNames[c]
	}
	return fmt.Sprintf("opclass(%d)", uint8(c))
}

// IsMemory reports whether the class references data memory.
func (c OpClass) IsMemory() bool { return c == Load || c == Store }

// IsFloat reports whether the class is a floating-point operation.
func (c OpClass) IsFloat() bool { return c == FPAdd || c == FPMul || c == FPDiv }

// IsControl reports whether the class transfers control.
func (c OpClass) IsControl() bool {
	switch c {
	case Branch, Jump, Call, Ret:
		return true
	}
	return false
}

// EndsBlock reports whether an instruction of this class terminates a basic
// block. Calls and syscalls end blocks because the CFG represents them as
// special nodes (paper §II-A1a: N = B̄ ∪ S).
func (c OpClass) EndsBlock() bool { return c.IsControl() || c == Syscall }

// encodedSize is the default encoded size in bytes per class, loosely modeled
// on common x86-64 encodings. PhaseMark has no default: instrumentation sets
// the exact mark size explicitly (paper: "each phase mark is at most 78
// bytes").
var encodedSize = [NumOpClasses]int{
	IntALU:    3,
	IntMul:    4,
	IntDiv:    3,
	FPAdd:     4,
	FPMul:     4,
	FPDiv:     4,
	Load:      4,
	Store:     4,
	Branch:    2,
	Jump:      5,
	Call:      5,
	Ret:       1,
	Syscall:   2,
	Nop:       1,
	PhaseMark: 0,
}

// MemRef describes the temporal and spatial locality of a memory-referencing
// instruction. It is the static stand-in for the address stream the paper's
// reuse-distance estimate (§II-A3, citing Beyls & D'Hollander) is computed
// from.
type MemRef struct {
	// WorkingSetKB is the footprint, in KiB, over which this reference's
	// reuse distances are spread. Large working sets overflow caches.
	WorkingSetKB float64
	// Locality is the fraction of dynamic references absorbed by the
	// (per-core, private) L1 cache, in [0, 1]. It models short reuse
	// distances: register-adjacent stack traffic, immediate re-reads.
	Locality float64
	// StrideB is the access stride in bytes; informational (used by the
	// static reuse estimate to refine the working-set footprint).
	StrideB int
}

// Instruction is one synthetic instruction.
//
// Branch/Jump targets are instruction indices within the same procedure.
// Call targets are procedure indices within the program.
type Instruction struct {
	// Op is the instruction class.
	Op OpClass
	// Target is the branch/jump destination (instruction index in the
	// procedure) or the callee (procedure index) for Call.
	Target int
	// TakenProb is the probability a Branch is taken. It is behavioral
	// metadata consumed only by the interpreter, never by static analysis —
	// the analog of program input in the paper's setting.
	TakenProb float64
	// TripCount, when positive, makes a Branch a *counted* loop back edge:
	// the branch is taken TripCount-1 consecutive times, then falls through
	// once, and the cycle repeats. Counted branches make loop-dominated
	// programs' runtimes deterministic instead of exponentially spread
	// (behavioral metadata, interpreter-only, like TakenProb).
	TripCount int32
	// Mem describes locality for Load/Store instructions.
	Mem MemRef
	// MarkID identifies the phase mark (index into the binary's mark table)
	// for PhaseMark instructions.
	MarkID int
	// Bytes overrides the encoded size when positive. Instrumentation uses
	// it to give each inserted phase mark its exact size.
	Bytes int
}

// SizeBytes returns the encoded size of the instruction in bytes.
func (in Instruction) SizeBytes() int {
	if in.Bytes > 0 {
		return in.Bytes
	}
	return encodedSize[in.Op]
}

// DefaultSize returns the default encoded size for a class.
func DefaultSize(c OpClass) int { return encodedSize[c] }

// Mix is a static instruction-class histogram, the raw material of the
// paper's block-typing features.
type Mix struct {
	Counts [NumOpClasses]int
}

// Add accumulates one instruction into the mix.
func (m *Mix) Add(c OpClass) { m.Counts[c]++ }

// Total returns the number of instructions in the mix.
func (m Mix) Total() int {
	t := 0
	for _, n := range m.Counts {
		t += n
	}
	return t
}

// MemOps returns the number of memory-referencing instructions.
func (m Mix) MemOps() int { return m.Counts[Load] + m.Counts[Store] }

// FloatOps returns the number of floating-point instructions.
func (m Mix) FloatOps() int {
	return m.Counts[FPAdd] + m.Counts[FPMul] + m.Counts[FPDiv]
}
