// Package transition computes phase-transition points — the control-flow
// edges where the phase type of the executing code is likely to change — and
// produces the marking plan consumed by the instrumentation framework.
//
// The paper evaluates three granularities (§II-A1, §II-A2): basic blocks,
// Allen intervals, and inter-procedural loops. All three reduce to the same
// scheme: assign every CFG node to a *region* with a summarized phase type,
// then mark region-crossing edges whose source and target types differ.
// Regions are single blocks (BB technique), intervals (interval technique),
// or surviving loops from the loop type map T plus call nodes typed by their
// callee's summary (loop technique).
//
// Two mark-reduction devices from the paper are implemented:
//
//   - minimum section size: sections smaller than Params.MinSize are left
//     untyped and never attract marks;
//   - lookahead (BB technique): an edge is marked only when the majority of
//     the target's successors up to a fixed depth share the target's type.
package transition

import (
	"fmt"
	"sort"

	"phasetune/internal/cfg"
	"phasetune/internal/phase"
	"phasetune/internal/prog"
	"phasetune/internal/summarize"
)

// Technique selects the section granularity.
type Technique int

const (
	// BasicBlock is the paper's BB[minSize, lookahead] family.
	BasicBlock Technique = iota
	// Interval is the paper's Int[minSize] family.
	Interval
	// Loop is the paper's Loop[minSize] family (inter-procedural).
	Loop
)

// String returns the paper's name for the technique.
func (t Technique) String() string {
	switch t {
	case BasicBlock:
		return "BB"
	case Interval:
		return "Int"
	case Loop:
		return "Loop"
	}
	return fmt.Sprintf("technique(%d)", int(t))
}

// Params configures plan computation.
type Params struct {
	// Technique is the section granularity.
	Technique Technique
	// MinSize is the minimum section size in instructions (blocks for BB —
	// paper uses 10/15/20; intervals and loops — paper uses 30/45/60).
	MinSize int
	// Lookahead is the BB-technique successor lookahead depth (0 disables).
	Lookahead int
	// PropagateThroughUntyped controls whether the effective source type of
	// an edge is propagated through untyped (small) sections. When false,
	// only edges between two typed sections are considered — the paper's
	// naive reading. Propagation reduces redundant marks and is the default
	// used by the experiments; the ablation benchmark compares both.
	PropagateThroughUntyped bool
}

// Name renders the paper-style variant name, e.g. "BB[15,1]" or "Loop[45]".
func (p Params) Name() string {
	if p.Technique == BasicBlock {
		return fmt.Sprintf("BB[%d,%d]", p.MinSize, p.Lookahead)
	}
	return fmt.Sprintf("%s[%d]", p.Technique, p.MinSize)
}

// MarkSite is one phase mark: control flowing across the edge From -> To
// (block IDs in procedure Proc) enters a section of phase type Type.
type MarkSite struct {
	Proc     int
	From, To int
	// Fallthrough reports whether the edge is the layout fallthrough edge
	// (To starts where From ends); instrumentation inserts inline marks for
	// fallthrough edges and jump stubs otherwise.
	Fallthrough bool
	// Type is the phase type of the section being entered.
	Type phase.Type
}

// Plan is the full set of mark sites for a program under one parameterer
// setting, plus summary statistics.
type Plan struct {
	Params Params
	Sites  []MarkSite
	// RegionTypes records the computed per-block section types (diagnostic).
	RegionTypes map[phase.BlockKey]phase.Type
	// SuppressedProcs marks procedures whose internal marks were eliminated
	// because every call site sits in a region of the callee's own type
	// (loop technique's inter-procedural elimination).
	SuppressedProcs []bool
}

// NumMarks returns the number of mark sites.
func (p *Plan) NumMarks() int { return len(p.Sites) }

// ComputePlan derives the marking plan for a program.
//
// The summary argument is required for the Interval and Loop techniques and
// ignored for BasicBlock (may be nil).
func ComputePlan(pr *prog.Program, graphs []*cfg.Graph, cg *cfg.CallGraph, typing *phase.Typing, sum *summarize.Summary, params Params) (*Plan, error) {
	if typing == nil {
		return nil, fmt.Errorf("transition: nil typing")
	}
	if params.Technique == Loop && sum == nil {
		return nil, fmt.Errorf("transition: loop technique requires a summary")
	}
	plan := &Plan{
		Params:          params,
		RegionTypes:     map[phase.BlockKey]phase.Type{},
		SuppressedProcs: make([]bool, len(graphs)),
	}

	// Per-procedure region assignment: region[b] is a region ID (-1 none),
	// rtype[b] the region's phase type.
	for pi, g := range graphs {
		region, rtype := assignRegions(pi, g, typing, sum, params)
		for b := range g.Blocks {
			plan.RegionTypes[phase.BlockKey{Proc: pi, Block: b}] = rtype[b]
		}
		eff := effectiveTypes(g, region, rtype, params)
		for _, e := range g.Edges {
			if region[e.From] == region[e.To] && region[e.From] != -1 {
				continue // intra-region edge
			}
			tgt := rtype[e.To]
			if tgt == phase.Untyped {
				continue
			}
			src := eff[e.From]
			if src == tgt {
				continue
			}
			if !params.PropagateThroughUntyped && src == phase.Untyped {
				continue
			}
			if params.Technique == BasicBlock && params.Lookahead > 0 &&
				!lookaheadMajority(g, pi, e.To, tgt, typing, params) {
				continue
			}
			plan.Sites = append(plan.Sites, MarkSite{
				Proc:        pi,
				From:        e.From,
				To:          e.To,
				Fallthrough: g.Blocks[e.From].End == g.Blocks[e.To].Start,
				Type:        tgt,
			})
		}
	}

	if params.Technique == Loop && sum != nil {
		suppressCalleeMarks(plan, graphs, cg, sum)
	}

	sort.Slice(plan.Sites, func(a, b int) bool {
		sa, sb := plan.Sites[a], plan.Sites[b]
		if sa.Proc != sb.Proc {
			return sa.Proc < sb.Proc
		}
		if sa.To != sb.To {
			return sa.To < sb.To
		}
		return sa.From < sb.From
	})
	return plan, nil
}

// assignRegions computes, for each block of one procedure, a region ID and
// the region's phase type under the configured technique.
func assignRegions(pi int, g *cfg.Graph, typing *phase.Typing, sum *summarize.Summary, params Params) (region []int, rtype []phase.Type) {
	n := len(g.Blocks)
	region = make([]int, n)
	rtype = make([]phase.Type, n)
	for i := range rtype {
		rtype[i] = phase.Untyped
	}

	blockType := func(b *cfg.Block) phase.Type {
		if b.Kind != cfg.KindNormal || b.NumInstrs() < params.MinSize {
			return phase.Untyped
		}
		return typing.TypeOf(phase.BlockKey{Proc: pi, Block: b.ID})
	}

	switch params.Technique {
	case BasicBlock:
		for i, b := range g.Blocks {
			region[i] = i
			rtype[i] = blockType(b)
		}

	case Interval:
		ivs := g.Intervals()
		infos := summarize.SummarizeIntervals(g, pi, typing, summarize.DefaultWeights(), ivs)
		of := cfg.IntervalOf(g, ivs)
		for i := range g.Blocks {
			region[i] = of[i]
			if of[i] == -1 {
				continue
			}
			iv := ivs[of[i]]
			if iv.NumInstrs(g) < params.MinSize {
				continue
			}
			rtype[i] = infos[of[i]].Type
		}

	case Loop:
		// Start from singleton regions typed at block granularity with a
		// modest block threshold (loops are the marking unit; stray large
		// blocks outside loops still provide type context).
		for i, b := range g.Blocks {
			region[i] = i
			rtype[i] = blockType(b)
			// Call nodes adopt their callee's summarized type so that
			// transitions across calls are handled (inter-procedural).
			if b.Kind == cfg.KindCall && b.CalleeProc >= 0 && sum != nil {
				ps := sum.Procs[b.CalleeProc]
				if ps.Weight >= float64(params.MinSize) {
					rtype[i] = ps.Info.Type
				}
			}
		}
		if sum != nil {
			// Surviving T-loops override, innermost-last so outer loops are
			// painted first and inner surviving loops (different type) win.
			loops := sum.Loops[pi]
			order := make([]int, 0, len(loops))
			for id, li := range loops {
				if li.InT && li.Loop.NumInstrs(g) >= params.MinSize && li.Info.Type != phase.Untyped {
					order = append(order, id)
				}
			}
			sort.Slice(order, func(a, b int) bool {
				return len(loops[order[a]].Loop.Blocks) > len(loops[order[b]].Loop.Blocks)
			})
			base := len(g.Blocks)
			for _, id := range order {
				li := loops[id]
				for _, b := range li.Loop.Blocks {
					region[b] = base + id
					rtype[b] = li.Info.Type
				}
			}
		}
	}
	return region, rtype
}

// effectiveTypes computes, per block, the phase type that execution carries
// when *leaving* the block: the block's own region type if typed, otherwise
// (with propagation enabled) the unique type flowing in from its
// predecessors, or Untyped when predecessors disagree or none is typed.
func effectiveTypes(g *cfg.Graph, region []int, rtype []phase.Type, params Params) []phase.Type {
	n := len(g.Blocks)
	eff := make([]phase.Type, n)
	copy(eff, rtype)
	if !params.PropagateThroughUntyped {
		return eff
	}
	// Forward propagation to a fixpoint over forward edges; loops over
	// untyped blocks converge because types only move from unknown to known
	// or to a conflict sentinel.
	const conflict = phase.Type(-2)
	for changed := true; changed; {
		changed = false
		for _, bid := range g.RPO() {
			if rtype[bid] != phase.Untyped {
				continue
			}
			var in phase.Type = phase.Untyped
			for _, p := range g.Blocks[bid].Preds {
				t := eff[p]
				if t == phase.Untyped {
					continue
				}
				if in == phase.Untyped {
					in = t
				} else if in != t {
					in = conflict
					break
				}
			}
			if in == conflict {
				in = phase.Untyped
			}
			if in != eff[bid] {
				eff[bid] = in
				changed = true
			}
		}
	}
	return eff
}

// lookaheadMajority implements the BB lookahead filter: walk forward from
// block v up to depth levels and require a strict majority of the typed
// blocks encountered to share type want.
func lookaheadMajority(g *cfg.Graph, pi, v int, want phase.Type, typing *phase.Typing, params Params) bool {
	type item struct{ b, d int }
	queue := []item{{v, 0}}
	seen := map[int]bool{v: true}
	match, typed := 0, 0
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if it.d > 0 { // the target itself does not vote
			b := g.Blocks[it.b]
			if b.Kind == cfg.KindNormal && b.NumInstrs() >= params.MinSize {
				t := typing.TypeOf(phase.BlockKey{Proc: pi, Block: it.b})
				if t != phase.Untyped {
					typed++
					if t == want {
						match++
					}
				}
			}
		}
		if it.d == params.Lookahead {
			continue
		}
		for _, s := range g.Blocks[it.b].Succs {
			if !seen[s] {
				seen[s] = true
				queue = append(queue, item{s, it.d + 1})
			}
		}
	}
	if typed == 0 {
		return true
	}
	return 2*match > typed
}

// suppressCalleeMarks removes marks inside procedures all of whose call
// sites lie in regions matching the callee's dominant type — the paper's
// elimination of "phase marks in functions that are called inside of loops".
func suppressCalleeMarks(plan *Plan, graphs []*cfg.Graph, cg *cfg.CallGraph, sum *summarize.Summary) {
	n := len(graphs)
	for q := 0; q < n; q++ {
		qi := sum.Procs[q].Info
		if qi.Type == phase.Untyped {
			continue
		}
		sites := 0
		agree := true
		for _, cs := range cg.Sites {
			if cs.Callee != q {
				continue
			}
			sites++
			ctx := plan.RegionTypes[phase.BlockKey{Proc: cs.CallerProc, Block: cs.Block}]
			if ctx != qi.Type {
				agree = false
				break
			}
		}
		if sites == 0 || !agree {
			continue
		}
		plan.SuppressedProcs[q] = true
	}
	if !anySuppressed(plan.SuppressedProcs) {
		return
	}
	kept := plan.Sites[:0]
	for _, s := range plan.Sites {
		if !plan.SuppressedProcs[s.Proc] {
			kept = append(kept, s)
		}
	}
	plan.Sites = kept
}

func anySuppressed(s []bool) bool {
	for _, v := range s {
		if v {
			return true
		}
	}
	return false
}
