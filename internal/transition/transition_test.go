package transition

import (
	"testing"

	"phasetune/internal/cfg"
	"phasetune/internal/phase"
	"phasetune/internal/prog"
	"phasetune/internal/summarize"
)

// fixture: compute loop then memory loop in main, memory helper called from
// the memory loop. Blocks >= 5 instructions are typed by memory ops.
func fixture(t *testing.T) (*prog.Program, []*cfg.Graph, *cfg.CallGraph, *phase.Typing, *summarize.Summary) {
	t.Helper()
	b := prog.NewBuilder("fix")
	helper := b.Proc("helper")
	helper.Straight(prog.BlockMix{Load: 12, Store: 4, WorkingSetKB: 32768, Locality: 0.3}).Ret()

	main := b.Proc("main")
	b.SetEntry("main")
	main.Straight(prog.BlockMix{IntALU: 16})
	main.Loop(40, func(pb *prog.ProcBuilder) {
		pb.Straight(prog.BlockMix{IntALU: 30, IntMul: 10})
	})
	main.Loop(40, func(pb *prog.ProcBuilder) {
		pb.Straight(prog.BlockMix{Load: 24, Store: 10, IntALU: 6, WorkingSetKB: 32768, Locality: 0.3})
		pb.CallProc("helper")
	})
	// Second compute phase so the plan contains transitions in both
	// directions (memory -> compute and compute -> memory).
	main.Loop(40, func(pb *prog.ProcBuilder) {
		pb.Straight(prog.BlockMix{IntALU: 26, IntMul: 8})
	})
	main.Ret()
	p := b.MustBuild()
	graphs, err := cfg.BuildAll(p)
	if err != nil {
		t.Fatalf("BuildAll: %v", err)
	}
	cg := cfg.BuildCallGraph(p, graphs)
	ty := &phase.Typing{K: 2, Types: map[phase.BlockKey]phase.Type{}}
	for pi, g := range graphs {
		for _, blk := range g.Blocks {
			if blk.Kind != cfg.KindNormal || blk.NumInstrs() < 5 {
				continue
			}
			if blk.Mix().MemOps() > 0 {
				ty.Types[phase.BlockKey{Proc: pi, Block: blk.ID}] = 1
			} else {
				ty.Types[phase.BlockKey{Proc: pi, Block: blk.ID}] = 0
			}
		}
	}
	sum := summarize.SummarizeLoops(p, graphs, cg, ty, summarize.DefaultWeights())
	return p, graphs, cg, ty, sum
}

func planFor(t *testing.T, params Params) (*Plan, []*cfg.Graph) {
	t.Helper()
	p, graphs, cg, ty, sum := fixture(t)
	_ = p
	plan, err := ComputePlan(p, graphs, cg, ty, sum, params)
	if err != nil {
		t.Fatalf("ComputePlan(%v): %v", params.Name(), err)
	}
	return plan, graphs
}

func TestBasicBlockPlanFindsTransition(t *testing.T) {
	plan, graphs := planFor(t, Params{Technique: BasicBlock, MinSize: 10, PropagateThroughUntyped: true})
	if plan.NumMarks() == 0 {
		t.Fatal("no marks for a program with two phases")
	}
	// Both phase types must appear as mark targets.
	seen := map[phase.Type]bool{}
	for _, s := range plan.Sites {
		seen[s.Type] = true
		// Every mark's target block must carry the mark's type.
		if got := plan.RegionTypes[phase.BlockKey{Proc: s.Proc, Block: s.To}]; got != s.Type {
			t.Errorf("mark at %d->%d types %d but region type is %d", s.From, s.To, s.Type, got)
		}
	}
	if !seen[0] || !seen[1] {
		t.Errorf("mark target types = %v, want both 0 and 1", seen)
	}
	_ = graphs
}

func TestMarksOnlyOnTypeChanges(t *testing.T) {
	plan, _ := planFor(t, Params{Technique: BasicBlock, MinSize: 10, PropagateThroughUntyped: true})
	for _, s := range plan.Sites {
		src := plan.RegionTypes[phase.BlockKey{Proc: s.Proc, Block: s.From}]
		if src == s.Type && src != phase.Untyped {
			t.Errorf("mark on non-transition edge %d->%d (both type %d)", s.From, s.To, src)
		}
	}
}

func TestMinSizeReducesMarks(t *testing.T) {
	small, _ := planFor(t, Params{Technique: BasicBlock, MinSize: 5, PropagateThroughUntyped: true})
	large, _ := planFor(t, Params{Technique: BasicBlock, MinSize: 100, PropagateThroughUntyped: true})
	if large.NumMarks() > small.NumMarks() {
		t.Errorf("min size 100 yields %d marks > min size 5 yields %d", large.NumMarks(), small.NumMarks())
	}
}

func TestLookaheadNeverAddsMarks(t *testing.T) {
	for depth := 1; depth <= 3; depth++ {
		base, _ := planFor(t, Params{Technique: BasicBlock, MinSize: 10, PropagateThroughUntyped: true})
		la, _ := planFor(t, Params{Technique: BasicBlock, MinSize: 10, Lookahead: depth, PropagateThroughUntyped: true})
		if la.NumMarks() > base.NumMarks() {
			t.Errorf("lookahead %d yields %d marks > naive %d", depth, la.NumMarks(), base.NumMarks())
		}
	}
}

func TestIntervalPlan(t *testing.T) {
	plan, graphs := planFor(t, Params{Technique: Interval, MinSize: 30, PropagateThroughUntyped: true})
	if plan.NumMarks() == 0 {
		t.Fatal("interval technique produced no marks")
	}
	// Interval marks must never land inside a loop body: the paper's point
	// is that intervals capture small loops whole. Every mark target that is
	// a loop block must be the loop header.
	for _, s := range plan.Sites {
		g := graphs[s.Proc]
		for _, l := range g.NaturalLoops() {
			if l.Contains(s.To) && s.To != l.Header && l.Contains(s.From) {
				t.Errorf("interval mark inside loop: edge %d->%d in loop headed %d", s.From, s.To, l.Header)
			}
		}
	}
}

func TestLoopPlanMarksLoopBoundaries(t *testing.T) {
	plan, graphs := planFor(t, Params{Technique: Loop, MinSize: 30, PropagateThroughUntyped: true})
	if plan.NumMarks() == 0 {
		t.Fatal("loop technique produced no marks")
	}
	// No mark may sit on an edge wholly inside one marked loop.
	for _, s := range plan.Sites {
		g := graphs[s.Proc]
		for _, l := range g.NaturalLoops() {
			if l.Contains(s.From) && l.Contains(s.To) && s.To != l.Header {
				t.Errorf("loop-technique mark inside loop body: %d->%d", s.From, s.To)
			}
		}
	}
}

func TestLoopRequiresSummary(t *testing.T) {
	p, graphs, cg, ty, _ := fixture(t)
	if _, err := ComputePlan(p, graphs, cg, ty, nil, Params{Technique: Loop, MinSize: 30}); err == nil {
		t.Error("loop technique accepted nil summary")
	}
}

func TestNilTypingRejected(t *testing.T) {
	p, graphs, cg, _, sum := fixture(t)
	if _, err := ComputePlan(p, graphs, cg, nil, sum, Params{Technique: BasicBlock, MinSize: 10}); err == nil {
		t.Error("nil typing accepted")
	}
}

func TestParamsName(t *testing.T) {
	cases := []struct {
		p    Params
		want string
	}{
		{Params{Technique: BasicBlock, MinSize: 15, Lookahead: 2}, "BB[15,2]"},
		{Params{Technique: Interval, MinSize: 45}, "Int[45]"},
		{Params{Technique: Loop, MinSize: 60}, "Loop[60]"},
	}
	for _, c := range cases {
		if got := c.p.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestFallthroughFlag(t *testing.T) {
	plan, graphs := planFor(t, Params{Technique: BasicBlock, MinSize: 10, PropagateThroughUntyped: true})
	for _, s := range plan.Sites {
		g := graphs[s.Proc]
		isFall := g.Blocks[s.From].End == g.Blocks[s.To].Start
		if s.Fallthrough != isFall {
			t.Errorf("site %d->%d fallthrough = %v, layout says %v", s.From, s.To, s.Fallthrough, isFall)
		}
	}
}

func TestDeterministicSiteOrder(t *testing.T) {
	a, _ := planFor(t, Params{Technique: BasicBlock, MinSize: 10, PropagateThroughUntyped: true})
	b, _ := planFor(t, Params{Technique: BasicBlock, MinSize: 10, PropagateThroughUntyped: true})
	if len(a.Sites) != len(b.Sites) {
		t.Fatalf("site counts differ: %d vs %d", len(a.Sites), len(b.Sites))
	}
	for i := range a.Sites {
		if a.Sites[i] != b.Sites[i] {
			t.Fatalf("site %d differs: %+v vs %+v", i, a.Sites[i], b.Sites[i])
		}
	}
}

func TestPropagationReducesOrEqualMarks(t *testing.T) {
	with, _ := planFor(t, Params{Technique: BasicBlock, MinSize: 10, PropagateThroughUntyped: true})
	without, _ := planFor(t, Params{Technique: BasicBlock, MinSize: 10, PropagateThroughUntyped: false})
	// Without propagation, untyped-source edges are skipped entirely, so
	// the count can only be <=.
	if without.NumMarks() > with.NumMarks() {
		t.Errorf("no-propagation marks %d > propagation marks %d", without.NumMarks(), with.NumMarks())
	}
}

func TestTechniqueString(t *testing.T) {
	if BasicBlock.String() != "BB" || Interval.String() != "Int" || Loop.String() != "Loop" {
		t.Error("technique names wrong")
	}
}
