package serve

import (
	"math"
	"testing"

	"phasetune/internal/amp"
	"phasetune/internal/metrics"
	"phasetune/internal/sim"
	"phasetune/internal/workload"
)

func TestCapacityQuad(t *testing.T) {
	// 2×2.4 GHz + 2×1.6 GHz = 2 + 2×(1.6/2.4) = 10/3 fast-core equivalents.
	got := Capacity(amp.Quad2Fast2Slow())
	if math.Abs(got-10.0/3.0) > 1e-9 {
		t.Errorf("quad capacity = %g, want %g", got, 10.0/3.0)
	}
	// A symmetric machine's capacity is its core count.
	if got := Capacity(amp.Symmetric(4, 2.0)); math.Abs(got-4) > 1e-9 {
		t.Errorf("symmetric capacity = %g, want 4", got)
	}
}

func TestOfferedRateScalesWithLoad(t *testing.T) {
	m := amp.Quad2Fast2Slow()
	r1 := OfferedRate(m, 1.0)
	if want := Capacity(m) / workload.ServingMeanServiceSec(); math.Abs(r1-want) > 1e-9 {
		t.Errorf("rate at 1.0x = %g, want %g", r1, want)
	}
	if r2 := OfferedRate(m, 2.0); math.Abs(r2-2*r1) > 1e-9 {
		t.Errorf("rate not linear in load: %g vs 2×%g", r2, r1)
	}
}

func TestArrivalsSpecWiring(t *testing.T) {
	m := amp.Quad2Fast2Slow()
	arr := Arrivals(m, workload.Bursty, 1.25, 30)
	if arr.Kind != workload.Bursty || arr.HorizonSec != 30 {
		t.Errorf("Arrivals = %+v", arr)
	}
	if want := OfferedRate(m, 1.25); arr.RatePerSec != want {
		t.Errorf("rate %g, want %g", arr.RatePerSec, want)
	}
	if err := arr.Validate(); err != nil {
		t.Errorf("built spec invalid: %v", err)
	}
}

func TestSummarize(t *testing.T) {
	res := &sim.Result{
		Tasks: []metrics.TaskStat{
			{Name: "a", ArrivalSec: 0, CompletionSec: 1},  // sojourn 1
			{Name: "b", ArrivalSec: 1, CompletionSec: 4},  // sojourn 3
			{Name: "c", ArrivalSec: 2, CompletionSec: 10}, // sojourn 8
			{Name: "d", ArrivalSec: 3, CompletionSec: -1}, // in flight
		},
		PeakRunnable:     7,
		OvercommitSlices: 42,
	}
	st := Summarize(res)
	if st.Admitted != 4 || st.Completed != 3 {
		t.Errorf("admitted/completed = %d/%d", st.Admitted, st.Completed)
	}
	if st.P50 != 3 || st.P999 != 8 || st.MaxSojournSec != 8 {
		t.Errorf("quantiles p50=%g p999=%g max=%g", st.P50, st.P999, st.MaxSojournSec)
	}
	if math.Abs(st.MeanSojournSec-4) > 1e-9 {
		t.Errorf("mean = %g, want 4", st.MeanSojournSec)
	}
	if st.PeakRunnable != 7 || st.OvercommitSlices != 42 {
		t.Errorf("overcommit evidence lost: %+v", st)
	}
	if st.Empty() {
		t.Errorf("summary with %d completions reported Empty", st.Completed)
	}
	// No completions: every latency field is NaN — never silent zeros —
	// and counts are still reported. Empty() is the branch-before-format
	// guard for consumers.
	empty := Summarize(&sim.Result{Tasks: []metrics.TaskStat{{Name: "x", CompletionSec: -1}}})
	if empty.Admitted != 1 || empty.Completed != 0 {
		t.Errorf("empty summary counts = %+v", empty)
	}
	if !empty.Empty() {
		t.Error("zero-completion summary not Empty")
	}
	for name, v := range map[string]float64{
		"p50": empty.P50, "p95": empty.P95, "p99": empty.P99, "p999": empty.P999,
		"mean": empty.MeanSojournSec, "max": empty.MaxSojournSec,
	} {
		if !math.IsNaN(v) {
			t.Errorf("empty summary %s = %g, want NaN", name, v)
		}
	}
}
