// Package serve is the open-system serving layer's front door: it relates
// offered load to machine capacity and summarizes serving runs into
// latency statistics.
//
// The pieces of the open-system model live where they belong — arrival
// processes in internal/workload (ArrivalSpec, Spec.MaterializeOpen), the
// proportional-share overcommit dispatcher in internal/osched
// (OvercommitConfig, Kernel.OvercommitScale), per-job sojourn accounting
// in internal/sim and internal/metrics — and this package ties them
// together with the two calculations every serving experiment needs:
//
//   - Capacity: a machine's processing rate in fast-core equivalents, so
//     "offered load 1.0×" means "arrival work equals what the whole
//     asymmetric machine can retire";
//   - offered rate: the arrival rate (jobs/sec) that realizes a target
//     load multiple against the serving fleet's mean service time.
//
// Load is the experiment's x-axis: below 1× every admitted job should
// complete (the overcommit invariant tests pin this); at and above 1×
// queues grow, runnable tasks exceed cores, and the policies separate on
// the sojourn-time tail rather than on throughput.
package serve

import (
	"math"

	"phasetune/internal/amp"
	"phasetune/internal/metrics"
	"phasetune/internal/osched"
	"phasetune/internal/sim"
	"phasetune/internal/workload"
)

// Capacity returns the machine's processing rate in fast-core
// equivalents: each core contributes its scaled clock relative to the
// fast (first) type. The paper's quad (2×2.4 GHz + 2×1.6 GHz) has
// capacity 2 + 2×(1.6/2.4) ≈ 3.33 — less than its four cores, which is
// exactly the asymmetry serving policies exploit.
func Capacity(m *amp.Machine) float64 {
	fast := m.Types[0].CyclesPerSec
	total := 0.0
	for _, c := range m.Cores {
		total += m.Types[c.Type].CyclesPerSec / fast
	}
	return total
}

// OfferedRate returns the arrival rate (jobs per simulated second) that
// realizes the given load multiple of machine capacity: load × capacity
// fast-core equivalents divided by the serving fleet's mean fast-core
// service time. At load 1.0 the arriving work per second equals what the
// machine can retire per second.
func OfferedRate(m *amp.Machine, load float64) float64 {
	return load * Capacity(m) / workload.ServingMeanServiceSec()
}

// Arrivals builds the arrival spec realizing a load multiple on the
// machine over the given admission horizon. Runs should use a duration
// comfortably past the horizon so admitted jobs can drain.
func Arrivals(m *amp.Machine, kind workload.ArrivalKind, load, horizonSec float64) workload.ArrivalSpec {
	return workload.ArrivalSpec{
		Kind:       kind,
		RatePerSec: OfferedRate(m, load),
		HorizonSec: horizonSec,
	}
}

// Stats summarizes one serving run: admission and completion counts,
// exact sojourn-time quantiles over completed jobs, and the overcommit
// evidence (peak runnable, shortened slices).
type Stats struct {
	// Admitted and Completed count jobs; Admitted - Completed were still
	// in the system at the run horizon.
	Admitted, Completed int
	// MeanSojournSec and MaxSojournSec summarize completed-job latency.
	// NaN when no job completed — an overloaded run with an empty
	// completed set must not masquerade as one with zero latency (the hex
	// 1.5× oracle run finishes 86 of 301 jobs; a run finishing zero would
	// otherwise look perfect). Use Empty to branch before formatting.
	MeanSojournSec, MaxSojournSec float64
	// P50, P95, P99, P999 are exact nearest-rank sojourn quantiles in
	// seconds (NaN when no job completed).
	P50, P95, P99, P999 float64
	// PeakRunnable is the maximum simultaneously live task count; above
	// the core count, the run exercised overcommit.
	PeakRunnable int
	// OvercommitSlices counts dispatch slices the proportional-share
	// dispatcher shortened.
	OvercommitSlices uint64
	// HasLedger reports whether the run carried a cycle ledger, making the
	// sojourn decomposition below meaningful (all three are zero without
	// one).
	HasLedger bool
	// QueueingSec, ServiceSec, and SlicingSec decompose where admitted
	// jobs' time went, summed across tasks in simulated seconds: waiting in
	// run queues, occupying a core (useful work plus asymmetry/spill loss
	// plus monitoring/migration/switch overheads), and paying the
	// overcommit dispatcher's slicing tax. A queueing-dominated run is one
	// the machine lost to convoys, not to slow execution.
	QueueingSec, ServiceSec, SlicingSec float64
}

// Empty reports whether the summary has no completed jobs, i.e. every
// latency field is NaN.
func (s Stats) Empty() bool { return s.Completed == 0 }

// Summarize condenses a serving run result. With no completed jobs the
// latency fields (mean, max, and every quantile) are NaN, matching
// metrics.Quantile's empty-set convention — never silent zeros.
func Summarize(res *sim.Result) Stats {
	soj := metrics.SojournTimes(res.Tasks)
	qs := metrics.Quantiles(soj, 0.50, 0.95, 0.99, 0.999)
	st := Stats{
		Admitted:         len(res.Tasks),
		Completed:        len(soj),
		MeanSojournSec:   math.NaN(),
		MaxSojournSec:    math.NaN(),
		P50:              qs[0],
		P95:              qs[1],
		P99:              qs[2],
		P999:             qs[3],
		PeakRunnable:     res.PeakRunnable,
		OvercommitSlices: res.OvercommitSlices,
	}
	if len(soj) > 0 {
		st.MeanSojournSec = metrics.Mean(soj)
		max := soj[0]
		for _, v := range soj {
			if v > max {
				max = v
			}
		}
		st.MaxSojournSec = max
	}
	if res.Ledger != nil {
		st.HasLedger = true
		var queuePs, busyPs, slicePs int64
		for _, t := range res.Ledger.PerTask {
			queuePs += t.QueuePs
			busyPs += t.BusyPs()
			slicePs += t.SlicingPs
		}
		st.QueueingSec = osched.PsToSec(queuePs)
		st.ServiceSec = osched.PsToSec(busyPs - slicePs)
		st.SlicingSec = osched.PsToSec(slicePs)
	}
	return st
}
