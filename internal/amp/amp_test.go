package amp

import (
	"math"
	"testing"
)

func TestPresetsValid(t *testing.T) {
	for _, m := range []*Machine{Quad2Fast2Slow(), ThreeCore2Fast1Slow(), Hex2Big2Medium2Little(), Symmetric(4, 2.0), Symmetric(3, 1.6)} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestQuadShape(t *testing.T) {
	m := Quad2Fast2Slow()
	if m.NumCores() != 4 {
		t.Fatalf("cores = %d, want 4", m.NumCores())
	}
	fast := m.CoresOfType(FastType)
	slow := m.CoresOfType(SlowType)
	if len(fast) != 2 || len(slow) != 2 {
		t.Fatalf("fast %v slow %v, want 2 each", fast, slow)
	}
	// Same-frequency pairs share an L2 (paper §IV-A1).
	if m.Cores[fast[0]].L2 != m.Cores[fast[1]].L2 {
		t.Error("fast cores do not share an L2")
	}
	if m.Cores[slow[0]].L2 != m.Cores[slow[1]].L2 {
		t.Error("slow cores do not share an L2")
	}
	if m.Cores[fast[0]].L2 == m.Cores[slow[0]].L2 {
		t.Error("fast and slow cores share an L2")
	}
	// 1.5x frequency ratio.
	r := m.Types[FastType].FreqGHz / m.Types[SlowType].FreqGHz
	if math.Abs(r-1.5) > 1e-12 {
		t.Errorf("frequency ratio = %g, want 1.5", r)
	}
}

func TestHexShape(t *testing.T) {
	m := Hex2Big2Medium2Little()
	if m.NumCores() != 6 {
		t.Fatalf("cores = %d, want 6", m.NumCores())
	}
	if len(m.Types) != 3 {
		t.Fatalf("types = %d, want 3", len(m.Types))
	}
	for ty := 0; ty < 3; ty++ {
		ids := m.CoresOfType(CoreTypeID(ty))
		if len(ids) != 2 {
			t.Fatalf("type %d has cores %v, want 2", ty, ids)
		}
		// Same-type pairs share an L2, and no pair shares with another.
		if m.Cores[ids[0]].L2 != m.Cores[ids[1]].L2 {
			t.Errorf("type %d cores do not share an L2", ty)
		}
	}
	// Clocks strictly descend big > medium > little, so IPC ordering and
	// Algorithm 2's frequency tie-break stay well-defined over 3 types.
	for i := 1; i < len(m.Types); i++ {
		if m.Types[i].FreqGHz >= m.Types[i-1].FreqGHz {
			t.Errorf("type %d clock %.2f not below type %d clock %.2f",
				i, m.Types[i].FreqGHz, i-1, m.Types[i-1].FreqGHz)
		}
	}
}

func TestScaledClockPreservesRatio(t *testing.T) {
	m := Quad2Fast2Slow()
	nominal := m.Types[0].FreqGHz / m.Types[1].FreqGHz
	scaled := m.Types[0].CyclesPerSec / m.Types[1].CyclesPerSec
	if math.Abs(nominal-scaled) > 1e-12 {
		t.Errorf("scaled ratio %g != nominal %g", scaled, nominal)
	}
}

func TestMasks(t *testing.T) {
	m := Quad2Fast2Slow()
	if m.AllMask() != 0b1111 {
		t.Errorf("AllMask = %b, want 1111", m.AllMask())
	}
	if m.TypeMask(FastType) != 0b0011 {
		t.Errorf("fast mask = %b, want 0011", m.TypeMask(FastType))
	}
	if m.TypeMask(SlowType) != 0b1100 {
		t.Errorf("slow mask = %b, want 1100", m.TypeMask(SlowType))
	}
	if CoreMask(2) != 0b100 {
		t.Errorf("CoreMask(2) = %b", CoreMask(2))
	}
	cores := MaskCores(0b1010, 4)
	if len(cores) != 2 || cores[0] != 1 || cores[1] != 3 {
		t.Errorf("MaskCores(1010) = %v", cores)
	}
}

func TestPsPerCycle(t *testing.T) {
	m := Quad2Fast2Slow()
	fast := m.Types[FastType]
	// 240,000 cycles/sec -> 1/240000 s/cycle ~ 4.1667e6 ps.
	want := 1e12 / fast.CyclesPerSec
	got := float64(fast.PsPerCycle())
	if math.Abs(got-want) > 1 {
		t.Errorf("PsPerCycle = %g, want about %g", got, want)
	}
}

func TestValidateRejectsBadMachines(t *testing.T) {
	cases := map[string]*Machine{
		"no cores": {Name: "x", Types: []CoreType{{Name: "a", FreqGHz: 1, CyclesPerSec: 1}}},
		"bad type": {
			Name:  "x",
			Types: []CoreType{{Name: "a", FreqGHz: 1, CyclesPerSec: 1}},
			Cores: []Core{{ID: 0, Type: 5, L2: 0}},
			L2s:   []L2Group{{SizeKB: 64, Cores: []int{0}}},
		},
		"bad l2": {
			Name:  "x",
			Types: []CoreType{{Name: "a", FreqGHz: 1, CyclesPerSec: 1}},
			Cores: []Core{{ID: 0, Type: 0, L2: 3}},
			L2s:   []L2Group{{SizeKB: 64, Cores: []int{0}}},
		},
		"ratio mismatch": {
			Name: "x",
			Types: []CoreType{
				{Name: "a", FreqGHz: 2, CyclesPerSec: 200},
				{Name: "b", FreqGHz: 1, CyclesPerSec: 150},
			},
			Cores: []Core{{ID: 0, Type: 0, L2: 0}, {ID: 1, Type: 1, L2: 0}},
			L2s:   []L2Group{{SizeKB: 64, Cores: []int{0, 1}}},
		},
		"zero freq": {
			Name:  "x",
			Types: []CoreType{{Name: "a", FreqGHz: 0, CyclesPerSec: 0}},
			Cores: []Core{{ID: 0, Type: 0, L2: 0}},
			L2s:   []L2Group{{SizeKB: 64, Cores: []int{0}}},
		},
		"l2 membership mismatch": {
			Name:  "x",
			Types: []CoreType{{Name: "a", FreqGHz: 1, CyclesPerSec: 1}},
			Cores: []Core{{ID: 0, Type: 0, L2: 0}, {ID: 1, Type: 0, L2: 1}},
			L2s:   []L2Group{{SizeKB: 64, Cores: []int{0, 1}}, {SizeKB: 64}},
		},
	}
	for name, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid machine", name)
		}
	}
}

func TestSymmetricShape(t *testing.T) {
	m := Symmetric(6, 2.0)
	if m.NumCores() != 6 || len(m.L2s) != 3 {
		t.Errorf("cores=%d l2s=%d, want 6, 3", m.NumCores(), len(m.L2s))
	}
	if len(m.Types) != 1 {
		t.Errorf("types = %d, want 1", len(m.Types))
	}
}

func TestThreeCoreShape(t *testing.T) {
	m := ThreeCore2Fast1Slow()
	if len(m.CoresOfType(FastType)) != 2 || len(m.CoresOfType(SlowType)) != 1 {
		t.Error("3-core preset shape wrong")
	}
}
