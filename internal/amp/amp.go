// Package amp describes performance-asymmetric multicore machines.
//
// The paper's evaluation platform (§IV-A1) is an Intel Core 2 Quad at
// 2.4 GHz with two cores underclocked to 1.6 GHz; the two cores running at
// the same frequency share an L2 cache. All cores execute the same ISA and
// share one microarchitecture — the asymmetry is purely clock frequency,
// which is exactly what this model captures: identical per-class CPI, but
// memory stalls priced in nanoseconds cost 1.5x more *cycles* on the fast
// cores. That asymmetry is what makes IPC (instructions per cycle) a
// discriminating signal: memory-bound code shows higher IPC on slow cores,
// compute-bound code shows equal IPC but finishes faster on fast cores.
//
// Simulation clock scaling: experiments use a scaled clock (CyclesPerSec)
// so that whole workloads simulate in seconds of wall time. FreqGHz remains
// the *nominal* frequency used to convert nanosecond latencies to cycles, so
// all cycle-level ratios match the real machine; only absolute durations are
// scaled (uniformly), which preserves every relative quantity the paper
// reports. See DESIGN.md §15.
package amp

import (
	"fmt"
	"math"
)

// CoreTypeID indexes Machine.Types.
type CoreTypeID int

// CoreType describes one class of core.
type CoreType struct {
	// Name is a human-readable label ("fast", "slow").
	Name string
	// FreqGHz is the nominal clock frequency in GHz, used to price
	// nanosecond memory latencies in cycles.
	FreqGHz float64
	// CyclesPerSec is the scaled simulation clock: how many cycles this
	// core retires per simulated second. Ratios between core types must
	// match FreqGHz ratios.
	CyclesPerSec float64
}

// PsPerCycle returns the simulated picoseconds one cycle takes.
func (t CoreType) PsPerCycle() int64 {
	return int64(math.Round(1e12 / t.CyclesPerSec))
}

// Core is one core instance.
type Core struct {
	// ID is the core's index in Machine.Cores.
	ID int
	// Type indexes Machine.Types.
	Type CoreTypeID
	// L2 indexes Machine.L2s, the shared cache group this core belongs to.
	L2 int
}

// L2Group is a shared last-level cache and the cores behind it.
type L2Group struct {
	// SizeKB is the cache capacity in KiB.
	SizeKB float64
	// Cores lists member core IDs.
	Cores []int
}

// Machine is a complete asymmetric multicore description.
type Machine struct {
	// Name labels the configuration.
	Name string
	// Types lists the distinct core types (paper §VI-C: grouping cores into
	// a small number of types keeps the technique scalable).
	Types []CoreType
	// Cores lists the core instances.
	Cores []Core
	// L2s lists the shared cache groups.
	L2s []L2Group
}

// NumCores returns the core count.
func (m *Machine) NumCores() int { return len(m.Cores) }

// CoresOfType returns the IDs of cores of type t, ascending.
func (m *Machine) CoresOfType(t CoreTypeID) []int {
	var out []int
	for _, c := range m.Cores {
		if c.Type == t {
			out = append(out, c.ID)
		}
	}
	return out
}

// TypeMask returns the affinity bit mask selecting all cores of type t.
func (m *Machine) TypeMask(t CoreTypeID) uint64 {
	var mask uint64
	for _, c := range m.Cores {
		if c.Type == t {
			mask |= 1 << uint(c.ID)
		}
	}
	return mask
}

// AllMask returns the affinity mask selecting every core.
func (m *Machine) AllMask() uint64 {
	return (uint64(1) << uint(len(m.Cores))) - 1
}

// CoreMask returns the mask selecting a single core.
func CoreMask(id int) uint64 { return 1 << uint(id) }

// Validate checks structural consistency.
func (m *Machine) Validate() error {
	if len(m.Cores) == 0 {
		return fmt.Errorf("amp: machine %q has no cores", m.Name)
	}
	if len(m.Cores) > 64 {
		return fmt.Errorf("amp: machine %q has %d cores; affinity masks support at most 64", m.Name, len(m.Cores))
	}
	if len(m.Types) == 0 {
		return fmt.Errorf("amp: machine %q has no core types", m.Name)
	}
	for i, t := range m.Types {
		if t.FreqGHz <= 0 || t.CyclesPerSec <= 0 {
			return fmt.Errorf("amp: machine %q type %d has non-positive clock", m.Name, i)
		}
	}
	// Scaled clocks must preserve nominal frequency ratios.
	t0 := m.Types[0]
	for i, t := range m.Types[1:] {
		nominal := t.FreqGHz / t0.FreqGHz
		scaled := t.CyclesPerSec / t0.CyclesPerSec
		if math.Abs(nominal-scaled) > 1e-9 {
			return fmt.Errorf("amp: machine %q type %d: scaled clock ratio %.6f != nominal %.6f",
				m.Name, i+1, scaled, nominal)
		}
	}
	seen := map[int]bool{}
	for i, c := range m.Cores {
		if c.ID != i {
			return fmt.Errorf("amp: machine %q core %d has ID %d", m.Name, i, c.ID)
		}
		if int(c.Type) < 0 || int(c.Type) >= len(m.Types) {
			return fmt.Errorf("amp: machine %q core %d has invalid type %d", m.Name, i, c.Type)
		}
		if c.L2 < 0 || c.L2 >= len(m.L2s) {
			return fmt.Errorf("amp: machine %q core %d has invalid L2 group %d", m.Name, i, c.L2)
		}
		seen[c.ID] = true
	}
	for gi, g := range m.L2s {
		if g.SizeKB <= 0 {
			return fmt.Errorf("amp: machine %q L2 group %d has non-positive size", m.Name, gi)
		}
		for _, cid := range g.Cores {
			if cid < 0 || cid >= len(m.Cores) {
				return fmt.Errorf("amp: machine %q L2 group %d lists invalid core %d", m.Name, gi, cid)
			}
			if m.Cores[cid].L2 != gi {
				return fmt.Errorf("amp: machine %q core %d listed in L2 group %d but assigned to %d",
					m.Name, cid, gi, m.Cores[cid].L2)
			}
		}
	}
	return nil
}

// DefaultTimeScale converts nominal GHz to the scaled simulation clock:
// cycles per simulated second = FreqGHz * 1e9 * DefaultTimeScale. The
// default 1e-4 turns 2.4 GHz into 240,000 cycles per simulated second, which
// lets an 800-simulated-second workload of dozens of processes run in
// seconds of wall time while preserving all cycle-level ratios.
const DefaultTimeScale = 1e-4

// scaled converts GHz to the scaled CyclesPerSec.
func scaled(ghz float64) float64 { return ghz * 1e9 * DefaultTimeScale }

// FastType and SlowType are the conventional type IDs of the presets: the
// fast type is always type 0.
const (
	FastType CoreTypeID = 0
	SlowType CoreTypeID = 1
)

// Quad2Fast2Slow is the paper's evaluation machine: four cores, two at
// 2.4 GHz and two underclocked to 1.6 GHz; same-frequency pairs share a
// 4 MiB L2 (§IV-A1).
func Quad2Fast2Slow() *Machine {
	m := &Machine{
		Name: "quad-2f2s",
		Types: []CoreType{
			{Name: "fast", FreqGHz: 2.4, CyclesPerSec: scaled(2.4)},
			{Name: "slow", FreqGHz: 1.6, CyclesPerSec: scaled(1.6)},
		},
		Cores: []Core{
			{ID: 0, Type: FastType, L2: 0},
			{ID: 1, Type: FastType, L2: 0},
			{ID: 2, Type: SlowType, L2: 1},
			{ID: 3, Type: SlowType, L2: 1},
		},
		L2s: []L2Group{
			{SizeKB: 4096, Cores: []int{0, 1}},
			{SizeKB: 4096, Cores: []int{2, 3}},
		},
	}
	return m
}

// ThreeCore2Fast1Slow is the additional configuration from the paper's
// future-work discussion (§VII): three cores, two fast and one slow.
func ThreeCore2Fast1Slow() *Machine {
	return &Machine{
		Name: "tri-2f1s",
		Types: []CoreType{
			{Name: "fast", FreqGHz: 2.4, CyclesPerSec: scaled(2.4)},
			{Name: "slow", FreqGHz: 1.6, CyclesPerSec: scaled(1.6)},
		},
		Cores: []Core{
			{ID: 0, Type: FastType, L2: 0},
			{ID: 1, Type: FastType, L2: 0},
			{ID: 2, Type: SlowType, L2: 1},
		},
		L2s: []L2Group{
			{SizeKB: 4096, Cores: []int{0, 1}},
			{SizeKB: 2048, Cores: []int{2}},
		},
	}
}

// Hex2Big2Medium2Little is the three-type generalization the paper leaves
// to future work (§VI-C argues the technique scales by grouping cores into
// a small number of types): six cores in big/medium/little pairs, each
// pair sharing an L2. Frequencies follow the paper's underclocking
// methodology — one microarchitecture, three clocks — so IPC keeps its
// discriminating role and Algorithm 2's Select generalizes unchanged over
// the third type. The little pair gets a half-size L2, matching the
// tri-core preset's slow core.
func Hex2Big2Medium2Little() *Machine {
	return &Machine{
		Name: "hex-2b2m2l",
		Types: []CoreType{
			{Name: "big", FreqGHz: 2.4, CyclesPerSec: scaled(2.4)},
			{Name: "medium", FreqGHz: 2.0, CyclesPerSec: scaled(2.0)},
			{Name: "little", FreqGHz: 1.6, CyclesPerSec: scaled(1.6)},
		},
		Cores: []Core{
			{ID: 0, Type: 0, L2: 0},
			{ID: 1, Type: 0, L2: 0},
			{ID: 2, Type: 1, L2: 1},
			{ID: 3, Type: 1, L2: 1},
			{ID: 4, Type: 2, L2: 2},
			{ID: 5, Type: 2, L2: 2},
		},
		L2s: []L2Group{
			{SizeKB: 4096, Cores: []int{0, 1}},
			{SizeKB: 4096, Cores: []int{2, 3}},
			{SizeKB: 2048, Cores: []int{4, 5}},
		},
	}
}

// Symmetric builds an n-core symmetric machine at the given frequency, each
// pair sharing an L2 — the control configuration.
func Symmetric(n int, ghz float64) *Machine {
	m := &Machine{
		Name:  fmt.Sprintf("sym-%dx%.1f", n, ghz),
		Types: []CoreType{{Name: "core", FreqGHz: ghz, CyclesPerSec: scaled(ghz)}},
	}
	groups := (n + 1) / 2
	for g := 0; g < groups; g++ {
		m.L2s = append(m.L2s, L2Group{SizeKB: 4096})
	}
	for i := 0; i < n; i++ {
		g := i / 2
		m.Cores = append(m.Cores, Core{ID: i, Type: 0, L2: g})
		m.L2s[g].Cores = append(m.L2s[g].Cores, i)
	}
	return m
}

// MaskCores expands an affinity mask into core IDs, ascending.
func MaskCores(mask uint64, numCores int) []int {
	var out []int
	for i := 0; i < numCores; i++ {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}
