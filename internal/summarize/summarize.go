// Package summarize computes dominant phase types for program regions
// larger than basic blocks: Allen intervals (paper §II-A1b) and
// inter-procedural loops (paper §II-A1c, Algorithm 1).
//
// Both analyses fold the block-level typing produced by package phase into a
// weighted type map M : Π → ℝ per region and pick the dominant type
// π = argmax M together with a strength σ = M(π)/ΣM. Loops are summarized
// bottom-up over the call graph, so calls made inside loops contribute their
// callee's summary, and nested loops whose types agree with their parent are
// eliminated from the loop type map T so that no phase mark lands inside a
// hot iteration space.
package summarize

import (
	"math"
	"sort"

	"phasetune/internal/cfg"
	"phasetune/internal/phase"
	"phasetune/internal/prog"
)

// Weights configures the node-weight function ϕ and the nesting-level weight
// function wn of Algorithm 1.
type Weights struct {
	// NestBase is the base of the nesting weight wn(λ) = NestBase^λ: nodes
	// in inner loops count geometrically more ("nodes which belong to inner
	// loops are given a higher weight"). Must be >= 1.
	NestBase float64
	// CycleBoost multiplies the weight of interval nodes that lie on a cycle
	// ("those within cycles are given a higher weight"). Must be >= 1.
	CycleBoost float64
}

// DefaultWeights mirrors the constants used throughout the experiments.
func DefaultWeights() Weights { return Weights{NestBase: 4, CycleBoost: 8} }

func (w Weights) nest(level int) float64 {
	if w.NestBase <= 1 {
		return 1
	}
	return math.Pow(w.NestBase, float64(level))
}

// TypeInfo is a summarized region type with its strength.
type TypeInfo struct {
	// Type is the dominant phase type, or phase.Untyped when the region
	// contains no typed node.
	Type phase.Type
	// Strength is M(π) over the sum of all type weights, in [0, 1].
	Strength float64
}

// typeMap is the paper's M : Π → ℝ.
type typeMap map[phase.Type]float64

// add implements M ⊕ {π ↦ M(π) + w}.
func (m typeMap) add(t phase.Type, w float64) {
	if t == phase.Untyped || w <= 0 {
		return
	}
	m[t] += w
}

// dominant picks argmax M with a deterministic tie-break (smaller type ID —
// the paper allows "a simple heuristic" for ties).
func (m typeMap) dominant() TypeInfo {
	if len(m) == 0 {
		return TypeInfo{Type: phase.Untyped}
	}
	types := make([]phase.Type, 0, len(m))
	total := 0.0
	for t, w := range m {
		types = append(types, t)
		total += w
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	best := types[0]
	for _, t := range types[1:] {
		if m[t] > m[best] {
			best = t
		}
	}
	return TypeInfo{Type: best, Strength: m[best] / total}
}

// nodeWeight is ϕ(η): the instruction count of the block.
func nodeWeight(b *cfg.Block) float64 { return float64(b.NumInstrs()) }

// SummarizeIntervals computes the dominant type of every interval of g via
// the weighted traversal of §II-A1b: walk the interval from its entry node
// ignoring backward edges, accumulating each node's weight into the type
// map, with nodes inside cycles boosted.
func SummarizeIntervals(g *cfg.Graph, procIndex int, typing *phase.Typing, w Weights, ivs []*cfg.Interval) map[int]TypeInfo {
	loops := g.NaturalLoops()
	depth := cfg.LoopDepth(g, loops)
	out := make(map[int]TypeInfo, len(ivs))
	for _, iv := range ivs {
		m := typeMap{}
		// Depth-first from the header ignoring back edges; since weights
		// simply accumulate, iteration order does not change the sum, but we
		// honor the traversal so only forward-reachable members count.
		visited := map[int]bool{}
		stack := []int{iv.Header}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if visited[n] || !iv.Contains(n) {
				continue
			}
			visited[n] = true
			b := g.Blocks[n]
			wt := nodeWeight(b)
			if depth[n] > 0 {
				wt *= w.CycleBoost
			}
			m.add(typing.TypeOf(phase.BlockKey{Proc: procIndex, Block: n}), wt)
			for _, s := range g.ForwardSuccs(n) {
				stack = append(stack, s)
			}
		}
		out[iv.ID] = m.dominant()
	}
	return out
}

// LoopInfo is the summarized type of one natural loop.
type LoopInfo struct {
	// Proc is the procedure index; Loop the loop within its CFG forest.
	Proc int
	Loop *cfg.Loop
	// Info is the dominant type and strength (σ).
	Info TypeInfo
	// InT reports whether the loop survives in the loop type map T after
	// nested-loop elimination — i.e., whether it is a marking unit.
	InT bool
}

// ProcSummary is the whole-procedure summary used at call sites.
type ProcSummary struct {
	// Info is the dominant type over all blocks of the procedure, loops
	// weighted by nesting.
	Info TypeInfo
	// Weight is the total accumulated ϕ weight, used as the contribution
	// weight of a call node.
	Weight float64
}

// Summary is the result of the inter-procedural loop analysis.
type Summary struct {
	// Procs holds per-procedure summaries, indexed by procedure.
	Procs []ProcSummary
	// Loops holds per-procedure loop summaries, indexed by procedure then
	// loop ID (matching cfg.NaturalLoops order).
	Loops [][]LoopInfo
	// LoopForest caches each procedure's natural-loop forest.
	LoopForest [][]*cfg.Loop
}

// recursionRounds bounds the fixpoint iteration for recursive call graphs
// (paper: "in the case of indirect recursion ... analyze all procedures
// again until a fixpoint is reached").
const recursionRounds = 8

// SummarizeLoops runs the paper's Algorithm 1 over the whole program,
// bottom-up with respect to the call graph.
func SummarizeLoops(p *prog.Program, graphs []*cfg.Graph, cg *cfg.CallGraph, typing *phase.Typing, w Weights) *Summary {
	n := len(graphs)
	s := &Summary{
		Procs:      make([]ProcSummary, n),
		Loops:      make([][]LoopInfo, n),
		LoopForest: make([][]*cfg.Loop, n),
	}
	for i, g := range graphs {
		s.LoopForest[i] = g.NaturalLoops()
	}

	order := cg.BottomUpOrder()
	// Fixpoint over the whole order handles recursion: non-recursive
	// programs converge after the first round because callees precede
	// callers.
	for round := 0; round < recursionRounds; round++ {
		changed := false
		for _, pi := range order {
			if s.summarizeProc(pi, graphs[pi], typing, w) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return s
}

// contribution returns the (type, weight) a CFG node contributes: blocks use
// their typing and instruction count; call nodes use the callee's summary.
func (s *Summary) contribution(procIndex int, b *cfg.Block, typing *phase.Typing) (phase.Type, float64) {
	if b.Kind == cfg.KindCall && b.CalleeProc >= 0 {
		ps := s.Procs[b.CalleeProc]
		return ps.Info.Type, ps.Weight
	}
	return typing.TypeOf(phase.BlockKey{Proc: procIndex, Block: b.ID}), nodeWeight(b)
}

// summarizeProc recomputes one procedure's loop summaries, loop type map
// membership, and procedure summary. It reports whether the procedure
// summary changed (for the recursion fixpoint).
func (s *Summary) summarizeProc(pi int, g *cfg.Graph, typing *phase.Typing, w Weights) bool {
	loops := s.LoopForest[pi]
	infos := make([]LoopInfo, len(loops))

	// λ(η) relative to loop l is the number of loops strictly inside l that
	// contain η; absolute loop depth gives it after subtracting l's depth.
	depth := cfg.LoopDepth(g, loops)

	// Inner-most first: sort loop IDs by ascending block count.
	byInner := make([]int, len(loops))
	for i := range byInner {
		byInner[i] = i
	}
	sort.Slice(byInner, func(a, b int) bool {
		la, lb := loops[byInner[a]], loops[byInner[b]]
		if len(la.Blocks) != len(lb.Blocks) {
			return len(la.Blocks) < len(lb.Blocks)
		}
		return la.ID < lb.ID
	})

	for _, li := range byInner {
		l := loops[li]
		m := typeMap{}
		// Breadth-first traversal from the header ignoring back edges,
		// restricted to loop members (Algorithm 1's BFS(l)).
		visited := map[int]bool{}
		queue := []int{l.Header}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			if visited[n] || !l.Contains(n) {
				continue
			}
			visited[n] = true
			b := g.Blocks[n]
			lam := depth[n] - l.Depth - 1 // nesting level within l: 0 for l's own body
			if lam < 0 {
				lam = 0
			}
			t, wt := s.contribution(pi, b, typing)
			m.add(t, w.nest(lam)*wt)
			for _, succ := range g.ForwardSuccs(n) {
				queue = append(queue, succ)
			}
		}
		infos[li] = LoopInfo{Proc: pi, Loop: l, Info: m.dominant()}
	}

	applyElimination(loops, infos)

	// Procedure summary: all blocks, weighted by absolute nesting depth.
	m := typeMap{}
	weight := 0.0
	for _, b := range g.Blocks {
		t, wt := s.contribution(pi, b, typing)
		wFull := w.nest(depth[b.ID]) * wt
		m.add(t, wFull)
		weight += wt
	}
	info := m.dominant()
	old := s.Procs[pi]
	s.Procs[pi] = ProcSummary{Info: info, Weight: weight}
	s.Loops[pi] = infos
	return old.Info.Type != info.Type || math.Abs(old.Info.Strength-info.Strength) > 1e-9 || old.Weight != weight
}

// applyElimination computes loop-type-map membership (InT) per Algorithm 1.
// Processing runs inner-most first; when an outer loop subsumes its direct
// children, the children leave T.
//
// Faithful to the paper's three cases, generalized to any number of direct
// children: with a single child, the outer loop subsumes it when the child
// is in T and either shares the outer type or is weaker (σ' < σ); with
// multiple disjoint children, the outer loop subsumes them only when all are
// in T and all share the outer loop's type; with no children the loop simply
// joins T.
func applyElimination(loops []*cfg.Loop, infos []LoopInfo) {
	if len(loops) == 0 {
		return
	}
	order := make([]int, len(loops))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := loops[order[a]], loops[order[b]]
		if len(la.Blocks) != len(lb.Blocks) {
			return len(la.Blocks) < len(lb.Blocks)
		}
		return la.ID < lb.ID
	})

	for _, li := range order {
		l := loops[li]
		info := &infos[li]
		if info.Info.Type == phase.Untyped {
			info.InT = false
			continue
		}
		children := l.Children
		switch {
		case len(children) == 0:
			info.InT = true
		case len(children) == 1:
			c := &infos[children[0]]
			if c.InT && (c.Info.Type == info.Info.Type || c.Info.Strength < info.Info.Strength) {
				info.InT = true
				c.InT = false
			}
		default:
			all := true
			for _, ci := range children {
				c := &infos[ci]
				if !c.InT || c.Info.Type != info.Info.Type {
					all = false
					break
				}
			}
			if all {
				info.InT = true
				for _, ci := range children {
					infos[ci].InT = false
				}
			}
		}
	}
}

// MarkingLoops returns the loops surviving in T for a procedure, the units
// the loop-level marking technique places phase marks around.
func (s *Summary) MarkingLoops(proc int) []LoopInfo {
	var out []LoopInfo
	for _, li := range s.Loops[proc] {
		if li.InT {
			out = append(out, li)
		}
	}
	return out
}
