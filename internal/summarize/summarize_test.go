package summarize

import (
	"testing"

	"phasetune/internal/cfg"
	"phasetune/internal/phase"
	"phasetune/internal/prog"
)

// fixture builds a program with a compute loop, a memory loop, and a helper
// procedure called from the memory loop, plus the CFGs, call graph, and a
// hand-made typing (compute blocks type 0, memory blocks type 1).
func fixture(t *testing.T) (*prog.Program, []*cfg.Graph, *cfg.CallGraph, *phase.Typing) {
	t.Helper()
	b := prog.NewBuilder("fix")
	helper := b.Proc("helper")
	helper.Straight(prog.BlockMix{Load: 12, Store: 4, WorkingSetKB: 32768, Locality: 0.3}).Ret()

	main := b.Proc("main")
	b.SetEntry("main")
	main.Loop(40, func(pb *prog.ProcBuilder) {
		pb.Straight(prog.BlockMix{IntALU: 18, IntMul: 4})
	})
	main.Loop(40, func(pb *prog.ProcBuilder) {
		pb.Straight(prog.BlockMix{Load: 10, Store: 4, IntALU: 2, WorkingSetKB: 32768, Locality: 0.3})
		pb.CallProc("helper")
	})
	main.Ret()
	p := b.MustBuild()
	graphs, err := cfg.BuildAll(p)
	if err != nil {
		t.Fatalf("BuildAll: %v", err)
	}
	cg := cfg.BuildCallGraph(p, graphs)

	// Type by inspection: memory-op blocks -> 1, pure compute -> 0.
	ty := &phase.Typing{K: 2, Types: map[phase.BlockKey]phase.Type{}}
	for pi, g := range graphs {
		for _, blk := range g.Blocks {
			if blk.Kind != cfg.KindNormal || blk.NumInstrs() < 5 {
				continue
			}
			m := blk.Mix()
			if m.MemOps() > 0 {
				ty.Types[phase.BlockKey{Proc: pi, Block: blk.ID}] = 1
			} else {
				ty.Types[phase.BlockKey{Proc: pi, Block: blk.ID}] = 0
			}
		}
	}
	return p, graphs, cg, ty
}

func TestTypeMapDominant(t *testing.T) {
	m := typeMap{}
	m.add(0, 5)
	m.add(1, 15)
	info := m.dominant()
	if info.Type != 1 {
		t.Errorf("dominant = %d, want 1", info.Type)
	}
	if info.Strength != 0.75 {
		t.Errorf("strength = %g, want 0.75", info.Strength)
	}
}

func TestTypeMapDominantEmpty(t *testing.T) {
	if info := (typeMap{}).dominant(); info.Type != phase.Untyped {
		t.Errorf("empty map dominant = %d, want Untyped", info.Type)
	}
}

func TestTypeMapIgnoresUntypedAndNonPositive(t *testing.T) {
	m := typeMap{}
	m.add(phase.Untyped, 100)
	m.add(0, 0)
	m.add(0, -5)
	if len(m) != 0 {
		t.Errorf("map accumulated invalid entries: %v", m)
	}
}

func TestTypeMapTieBreaksDeterministically(t *testing.T) {
	m := typeMap{}
	m.add(1, 10)
	m.add(0, 10)
	if info := m.dominant(); info.Type != 0 {
		t.Errorf("tie broken to %d, want 0 (smaller ID)", info.Type)
	}
}

func TestSummarizeIntervalsTypesLoops(t *testing.T) {
	_, graphs, _, ty := fixture(t)
	g := graphs[1] // main
	ivs := g.Intervals()
	infos := SummarizeIntervals(g, 1, ty, DefaultWeights(), ivs)
	// Every interval containing a typed loop body must carry that type.
	loops := g.NaturalLoops()
	of := cfg.IntervalOf(g, ivs)
	for _, l := range loops {
		want := ty.TypeOf(phase.BlockKey{Proc: 1, Block: l.Header})
		if want == phase.Untyped {
			continue
		}
		iv := of[l.Header]
		if iv == -1 {
			t.Fatalf("loop header %d not in an interval", l.Header)
		}
		if got := infos[iv].Type; got != want {
			t.Errorf("interval %d (loop header %d) typed %d, want %d", iv, l.Header, got, want)
		}
	}
}

func TestSummarizeLoopsTypes(t *testing.T) {
	p, graphs, cg, ty := fixture(t)
	sum := SummarizeLoops(p, graphs, cg, ty, DefaultWeights())
	mainLoops := sum.Loops[1]
	if len(mainLoops) != 2 {
		t.Fatalf("main has %d summarized loops, want 2", len(mainLoops))
	}
	types := map[phase.Type]int{}
	for _, li := range mainLoops {
		types[li.Info.Type]++
		if !li.InT {
			t.Errorf("top-level loop (header %d) not in T", li.Loop.Header)
		}
		if li.Info.Strength <= 0.5 {
			t.Errorf("loop strength = %g, want > 0.5 for homogeneous loops", li.Info.Strength)
		}
	}
	if types[0] != 1 || types[1] != 1 {
		t.Errorf("loop types = %v, want one compute and one memory", types)
	}
}

func TestProcSummaryUsesCalleeAtCallSites(t *testing.T) {
	p, graphs, cg, ty := fixture(t)
	sum := SummarizeLoops(p, graphs, cg, ty, DefaultWeights())
	// helper is pure memory: its summary must be type 1.
	if got := sum.Procs[0].Info.Type; got != 1 {
		t.Errorf("helper summary type = %d, want 1", got)
	}
	if sum.Procs[0].Weight <= 0 {
		t.Error("helper weight not positive")
	}
	// main mixes both but the memory loop contains a call to a memory
	// helper, weighting type 1 above type 0 at equal nesting.
	if got := sum.Procs[1].Info.Type; got != 1 {
		t.Errorf("main summary type = %d, want 1 (memory loop + callee dominate)", got)
	}
}

// nestedFixture builds same-type nested loops to exercise elimination.
func nestedFixture(t *testing.T, innerType, outerType phase.Type) ([]*cfg.Graph, *Summary) {
	t.Helper()
	b := prog.NewBuilder("nest")
	main := b.Proc("main")
	mixFor := func(ty phase.Type) prog.BlockMix {
		if ty == 0 {
			return prog.BlockMix{IntALU: 10}
		}
		return prog.BlockMix{Load: 10, WorkingSetKB: 32768, Locality: 0.3}
	}
	main.Loop(10, func(pb *prog.ProcBuilder) {
		pb.Straight(mixFor(outerType))
		pb.Loop(30, func(pb *prog.ProcBuilder) {
			pb.Straight(mixFor(innerType))
			pb.Straight(mixFor(innerType)) // weight the inner loop heavily
		})
	})
	main.Ret()
	p := b.MustBuild()
	graphs, err := cfg.BuildAll(p)
	if err != nil {
		t.Fatal(err)
	}
	cg := cfg.BuildCallGraph(p, graphs)
	ty := &phase.Typing{K: 2, Types: map[phase.BlockKey]phase.Type{}}
	for pi, g := range graphs {
		for _, blk := range g.Blocks {
			if blk.Kind != cfg.KindNormal || blk.NumInstrs() < 5 {
				continue
			}
			if blk.Mix().MemOps() > 0 {
				ty.Types[phase.BlockKey{Proc: pi, Block: blk.ID}] = 1
			} else {
				ty.Types[phase.BlockKey{Proc: pi, Block: blk.ID}] = 0
			}
		}
	}
	return graphs, SummarizeLoops(p, graphs, cg, ty, DefaultWeights())
}

func TestEliminationMergesSameTypeNest(t *testing.T) {
	_, sum := nestedFixture(t, 1, 1)
	var inT, notInT int
	for _, li := range sum.Loops[0] {
		if li.InT {
			inT++
			if li.Loop.Parent != -1 {
				t.Error("inner loop survived elimination despite same-type parent")
			}
		} else {
			notInT++
		}
	}
	if inT != 1 || notInT != 1 {
		t.Errorf("inT=%d notInT=%d, want outer only in T", inT, notInT)
	}
}

func TestEliminationKeepsDifferentTypeNest(t *testing.T) {
	_, sum := nestedFixture(t, 1, 0)
	// Inner loop is heavily weighted memory; outer's dominant type is the
	// inner's (nesting weights), so elimination may still merge. What must
	// hold: at least one loop remains in T and the inner loop's type is 1.
	innerSeen := false
	for _, li := range sum.Loops[0] {
		if li.Loop.Parent != -1 {
			innerSeen = true
			if li.Info.Type != 1 {
				t.Errorf("inner loop type = %d, want 1", li.Info.Type)
			}
		}
	}
	if !innerSeen {
		t.Fatal("no nested loop summarized")
	}
	if len(sum.MarkingLoops(0)) == 0 {
		t.Error("no loops survive in T")
	}
}

func TestMarkingLoops(t *testing.T) {
	p, graphs, cg, ty := fixture(t)
	sum := SummarizeLoops(p, graphs, cg, ty, DefaultWeights())
	marking := sum.MarkingLoops(1)
	if len(marking) != 2 {
		t.Errorf("MarkingLoops(main) = %d loops, want 2", len(marking))
	}
	_ = graphs
	_ = p
}

func TestRecursiveProgramConverges(t *testing.T) {
	b := prog.NewBuilder("rec")
	f := b.Proc("f")
	g := b.Proc("g")
	b.SetEntry("f")
	f.Loop(5, func(pb *prog.ProcBuilder) {
		pb.Straight(prog.BlockMix{IntALU: 10})
		pb.IfElse(0.3, func(pb *prog.ProcBuilder) { pb.CallProc("g") }, nil)
	})
	f.Ret()
	g.Straight(prog.BlockMix{Load: 10, WorkingSetKB: 16384, Locality: 0.4})
	g.CallProc("f")
	g.Ret()
	p := b.MustBuild()
	graphs, err := cfg.BuildAll(p)
	if err != nil {
		t.Fatal(err)
	}
	cg := cfg.BuildCallGraph(p, graphs)
	ty := &phase.Typing{K: 2, Types: map[phase.BlockKey]phase.Type{}}
	for pi, gg := range graphs {
		for _, blk := range gg.Blocks {
			if blk.Kind != cfg.KindNormal || blk.NumInstrs() < 3 {
				continue
			}
			if blk.Mix().MemOps() > 0 {
				ty.Types[phase.BlockKey{Proc: pi, Block: blk.ID}] = 1
			} else {
				ty.Types[phase.BlockKey{Proc: pi, Block: blk.ID}] = 0
			}
		}
	}
	sum := SummarizeLoops(p, graphs, cg, ty, DefaultWeights())
	for pi := range graphs {
		if sum.Procs[pi].Weight <= 0 {
			t.Errorf("proc %d has non-positive weight", pi)
		}
	}
}

func TestWeightsNest(t *testing.T) {
	w := DefaultWeights()
	if w.nest(0) != 1 {
		t.Errorf("nest(0) = %g, want 1", w.nest(0))
	}
	if w.nest(2) != 16 {
		t.Errorf("nest(2) = %g, want 16 with base 4", w.nest(2))
	}
	flat := Weights{NestBase: 1}
	if flat.nest(3) != 1 {
		t.Errorf("base-1 nest(3) = %g, want 1", flat.nest(3))
	}
}

func TestStrengthRange(t *testing.T) {
	_, graphs, cg, ty := fixture(t)
	_ = cg
	for pi, g := range graphs {
		ivs := g.Intervals()
		for _, info := range SummarizeIntervals(g, pi, ty, DefaultWeights(), ivs) {
			if info.Type == phase.Untyped {
				continue
			}
			if info.Strength < 0 || info.Strength > 1 {
				t.Errorf("strength %g outside [0,1]", info.Strength)
			}
		}
	}
}
