// Contention pricing: the shared memory hierarchy joins the loss function.
//
// Algorithm 2 and the capacity arbitration price placements by core-type
// IPC alone, and the breakdown map's hex panel showed what that misses: two
// DRAM-bound tasks herd onto one cache group because nothing charges for
// shared-hierarchy pressure. Each task's flat IPC profile sends it to the
// slowest type (Select ties break toward cheap capacity), the type's demand
// sits inside quota+band, and the quota loop never fires — so both tasks
// thrash one L2 while a same-size cache one group over sits idle.
//
// This file adds the missing term. A Decision may carry MemStats — the
// phase's shared-cache reference density and reuse profile — and when the
// engine's Config.Contention is non-nil, arbitration prices every
// (claim, type) pair by its *adjusted* rate: the measured instruction rate
// degraded by the marginal DRAM stall the claim would suffer at the type's
// projected cache-group occupancy, scaled by a machine-level DRAM-bandwidth
// overdraft factor. Two passes consume the adjusted rates:
//
//   - the quota spill loop prices loss as the adjusted-rate difference at the
//     projected occupancies, so a memory phase spilling onto a crowded
//     group is no longer "free";
//   - a relief pass then moves memory-priced claims whose adjusted rate
//     improves by more than ReliefMargin onto types with spare quota —
//     the move that actually separates antagonists, since herding never
//     trips the quota loop in the first place.
//
// Determinism contract: a nil Config.Contention leaves every code path —
// Decide, Arbitrate, AssignRanked — bit-identical to the unpriced engine,
// MemStats included (the engine never reads Decision.Mem when pricing is
// off). The priced pass itself is a pure function of its inputs: fixed
// iteration order, float arithmetic only, no maps.
package place

import (
	"phasetune/internal/amp"
	"phasetune/internal/reuse"
	"phasetune/internal/trace"
)

// Contention pricing defaults.
const (
	// DefaultMissNs mirrors exec.CostModel.MemLatencyNS: the DRAM miss
	// latency in nanoseconds the marginal-stall term is priced with.
	DefaultMissNs = 83.0
	// DefaultBandwidthWeight scales the bandwidth-overdraft multiplier.
	DefaultBandwidthWeight = 1.0
	// DefaultReliefMargin is the relative adjusted-rate gain a relief move
	// must clear, damping moves inside estimate noise.
	DefaultReliefMargin = 0.05
	// DefaultBudgetFrac derives the DRAM budget from machine capacity when
	// ContentionConfig.DRAMBudget is zero: budget = frac × total cycles/sec
	// (one miss per 50 cycles machine-wide before the overdraft factor
	// starts inflating marginal stalls).
	DefaultBudgetFrac = 0.02
)

// ContentionConfig prices shared-L2 occupancy and DRAM bandwidth into the
// engine's arbitration. The zero/negative convention matches Config: a zero
// field takes its default, a negative value selects the literal zero
// operating point. The struct travels on the dist wire inside place.Config;
// a nil pointer (the default) keeps both the wire encoding and the engine's
// behavior byte-identical to unpriced builds.
type ContentionConfig struct {
	// MissNs is the DRAM miss latency in nanoseconds used to price the
	// marginal stall of cache-group crowding. 0 = default (83, matching
	// the cost model's MemLatencyNS).
	MissNs float64 `json:"miss_ns,omitempty"`
	// DRAMBudget is the machine-wide DRAM bandwidth budget in shared-cache
	// misses per simulated second. 0 = derived from machine capacity
	// (DefaultBudgetFrac × total cycles/sec); negative = no budget (the
	// overdraft factor stays 1).
	DRAMBudget float64 `json:"dram_budget,omitempty"`
	// BandwidthWeight scales the overdraft multiplier applied to marginal
	// stalls when projected miss traffic exceeds DRAMBudget.
	// 0 = default (1); negative = bandwidth term disabled.
	BandwidthWeight float64 `json:"bandwidth_weight,omitempty"`
	// ReliefMargin is the relative adjusted-rate gain a relief move must
	// clear before a claim migrates to a roomier type.
	// 0 = default (0.05); negative = no margin.
	ReliefMargin float64 `json:"relief_margin,omitempty"`
}

// Normalized fills zero fields from the defaults and folds the negative
// "explicitly zero" sentinels, mirroring Config.Normalized.
func (c ContentionConfig) Normalized() ContentionConfig {
	switch {
	case c.MissNs == 0:
		c.MissNs = DefaultMissNs
	case c.MissNs < 0:
		c.MissNs = 0
	}
	// DRAMBudget: 0 means "derive from capacity" at pricing time (the
	// config does not know the machine); negative means no budget.
	if c.DRAMBudget < 0 {
		c.DRAMBudget = -1
	}
	switch {
	case c.BandwidthWeight == 0:
		c.BandwidthWeight = DefaultBandwidthWeight
	case c.BandwidthWeight < 0:
		c.BandwidthWeight = 0
	}
	switch {
	case c.ReliefMargin == 0:
		c.ReliefMargin = DefaultReliefMargin
	case c.ReliefMargin < 0:
		c.ReliefMargin = 0
	}
	return c
}

// MemStats is a phase's shared-cache pressure signature, attached to a
// Decision by the consumer that fixed it (all three runtimes derive it from
// the image's MemSignature). The engine reads it only under contention
// pricing; decisions without it are treated as cache-neutral.
type MemStats struct {
	// L2RefsPerInstr is the expected number of references per retired
	// instruction that miss the private L1 and reach the shared cache.
	L2RefsPerInstr float64 `json:"l2_refs_per_instr"`
	// Profile is the phase's aggregate reuse profile; its miss ratio at
	// the effective per-occupant share prices group crowding.
	Profile reuse.Profile `json:"profile"`
}

// typeGroups is the cache-group topology of one core type: how the type's
// cores split across shared-L2 groups, which is what turns a type-level
// demand count into a per-group occupancy projection.
type typeGroups struct {
	// groupKB is the smallest L2 size among groups holding this type's
	// cores (conservative when a type spans unequal groups).
	groupKB float64
	// numGroups counts distinct groups holding this type's cores.
	numGroups int
	// coresPerGroup is the largest same-type core count in one group —
	// the occupancy ceiling per group.
	coresPerGroup int
}

// groupsOf derives the per-type cache-group topology.
func groupsOf(m *amp.Machine) []typeGroups {
	out := make([]typeGroups, len(m.Types))
	for ti := range m.Types {
		perGroup := make([]int, len(m.L2s))
		for _, core := range m.Cores {
			if int(core.Type) == ti {
				perGroup[core.L2]++
			}
		}
		tg := &out[ti]
		for gi, n := range perGroup {
			if n == 0 {
				continue
			}
			tg.numGroups++
			if kb := m.L2s[gi].SizeKB; tg.groupKB == 0 || kb < tg.groupKB {
				tg.groupKB = kb
			}
			if n > tg.coresPerGroup {
				tg.coresPerGroup = n
			}
		}
	}
	return out
}

// GroupKB returns the (smallest) shared-L2 size backing cores of type t,
// in KiB — the solo-occupant cache share contention pricing compares
// crowded shares against.
func (c *Capacity) GroupKB(t amp.CoreTypeID) float64 { return c.groups[t].groupKB }

// EffectiveShareKB projects the per-task cache share on type t when demand
// tasks of that type run concurrently: demand spreads evenly over the
// type's cache groups (the scheduler balances queues), each group's
// occupancy is capped at its same-type core count, and the group size is
// divided by the projected occupancy. demand <= 1 returns the solo share.
func (c *Capacity) EffectiveShareKB(t amp.CoreTypeID, demand int) float64 {
	tg := c.groups[t]
	if tg.numGroups == 0 || tg.groupKB <= 0 {
		return 0
	}
	occ := (demand + tg.numGroups - 1) / tg.numGroups
	if occ < 1 {
		occ = 1
	}
	if occ > tg.coresPerGroup {
		occ = tg.coresPerGroup
	}
	return tg.groupKB / float64(occ)
}

// missSecPerRef is the simulated seconds one DRAM miss stalls a core of
// type t: MissNs nanoseconds priced in nominal-frequency cycles, then
// divided by the scaled clock. Because scaled clocks preserve nominal
// frequency ratios (amp.Machine.Validate), the value is type-invariant —
// DRAM latency is wall-clock, not core-clock.
func missSecPerRef(missNs float64, ty amp.CoreType) float64 {
	return missNs * ty.FreqGHz / ty.CyclesPerSec
}

// adjustedRate is the contention-priced instruction rate of one decision on
// type t at the given projected type demand: the measured rate degraded by
// the marginal stall of sharing the type's cache group. The marginal term
// is the *extra* misses per instruction versus running solo on the group —
// so a solo task, a compute task (tiny L2RefsPerInstr), or an L2-resident
// task (miss ratio flat in the share) all price at their raw rate.
func (e *Engine) adjustedRate(dec *Decision, t int, demand int, bw float64) float64 {
	r := dec.Rates[t]
	if e.cc == nil || dec.Mem == nil || r <= 0 {
		return r
	}
	ct := amp.CoreTypeID(t)
	share := e.capacity.EffectiveShareKB(ct, demand)
	solo := e.capacity.GroupKB(ct)
	extra := dec.Mem.L2RefsPerInstr * (dec.Mem.Profile.MissRatio(share) - dec.Mem.Profile.MissRatio(solo))
	if extra <= 0 {
		return r
	}
	stall := extra * missSecPerRef(e.cc.MissNs, e.capacity.machine.Types[t]) * bw
	// r instructions/sec at 1/r sec/instr picks up `stall` extra seconds
	// per instruction: rate' = 1 / (1/r + stall).
	return r / (1 + r*stall)
}

// AdjustedRate exposes the contention-priced rate of a decision on type t
// at the given projected demand (bandwidth overdraft factor 1). It is the
// unit the showdown's contention column and the engine's own tests reason
// in; with pricing disabled it returns the raw measured rate.
func (e *Engine) AdjustedRate(dec *Decision, t amp.CoreTypeID, demand int) float64 {
	return e.adjustedRate(dec, int(t), demand, 1)
}

// bwFactor projects the machine-wide DRAM miss traffic of the claims at
// their current demands and converts budget overdraft into a marginal-stall
// multiplier: 1 while traffic fits the budget, growing linearly with the
// overshoot beyond it. Computed once per arbitration pass from the initial
// assignment so every candidate move is priced against one consistent
// bandwidth picture.
func (e *Engine) bwFactor(claims []Claim, demand []int) float64 {
	cc := e.cc
	if cc == nil || cc.BandwidthWeight <= 0 {
		return 1
	}
	budget := cc.DRAMBudget
	if budget == 0 {
		budget = DefaultBudgetFrac * e.capacity.totalCps
	}
	if budget <= 0 {
		return 1
	}
	total := 0.0
	for i := range claims {
		dec := claims[i].Dec
		if dec.Mem == nil {
			continue
		}
		t := int(dec.Choice)
		share := e.capacity.EffectiveShareKB(dec.Choice, demand[t])
		total += dec.Rates[t] * dec.Mem.L2RefsPerInstr * dec.Mem.Profile.MissRatio(share)
	}
	if total <= budget {
		return 1
	}
	return 1 + cc.BandwidthWeight*(total/budget-1)
}

// relieve is the contention relief pass: after the quota loop, repeatedly
// apply the single best move of a memory-priced claim onto a type with
// spare quota, as long as the adjusted-rate gain clears ReliefMargin
// (plus the hysteresis discount when the claim would leave its previous
// assignment). Targets stay strictly inside quota+band, so relief never
// re-creates the oversubscription the quota loop just resolved, and each
// accepted move strictly improves the moved claim's adjusted rate — the
// pass terminates well inside its round bound. Ties resolve to the lowest
// claim index, then the lowest target type: deterministic.
func (e *Engine) relieve(claims []Claim, assigned []amp.CoreTypeID, demand, quota []int, bw float64) {
	nTypes := e.capacity.NumTypes()
	band := e.cfg.Band
	margin := e.cc.ReliefMargin
	for round := 0; round < len(claims)*nTypes; round++ {
		bestI, bestT, bestGain := -1, -1, 0.0
		for i := range claims {
			dec := claims[i].Dec
			if dec.Mem == nil {
				continue
			}
			cur := int(assigned[i])
			curRate := e.adjustedRate(dec, cur, demand[cur], bw)
			thr := margin
			if claims[i].HasPrev && int(claims[i].Prev) == cur {
				thr += e.cfg.Hysteresis
			}
			for t := 0; t < nTypes; t++ {
				if t == cur || demand[t] >= quota[t]+band {
					continue
				}
				gain := e.adjustedRate(dec, t, demand[t]+1, bw) - curRate*(1+thr)
				if gain > bestGain {
					bestI, bestT, bestGain = i, t, gain
				}
			}
		}
		if bestI == -1 {
			break
		}
		from := int(assigned[bestI])
		if e.tr != nil {
			e.tr.InstantNow("place", "relief", trace.PidMachine, trace.TidKernel,
				trace.Arg{Key: "claim", Value: bestI},
				trace.Arg{Key: "from", Value: e.capacity.machine.Types[from].Name},
				trace.Arg{Key: "to", Value: e.capacity.machine.Types[bestT].Name},
				trace.Arg{Key: "gain", Value: bestGain},
				trace.Arg{Key: "bw", Value: bw})
		}
		assigned[bestI] = amp.CoreTypeID(bestT)
		demand[from]--
		demand[bestT]++
	}
}
