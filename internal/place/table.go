package place

import (
	"math"

	"phasetune/internal/amp"
)

// Table is the per-phase decision table every placement consumer
// accumulates into: running per-(phase, core-type) IPC means plus the fixed
// Decision once enough evidence exists. Phases are opaque small integers —
// the static runtime keys by phase.Type, the online runtimes by cluster or
// mark-declared phase index.
type Table struct {
	numTypes int
	rows     map[int]*tableRow
}

// tableRow is one phase's accumulation state.
type tableRow struct {
	sum []float64
	n   []int
	dec *Decision
	// decMeans snapshots the per-type IPC means the decision was fixed
	// from, so Drift can price how far later windows have moved them.
	decMeans []float64
}

// NewTable builds a table for a machine with numTypes core types.
func NewTable(numTypes int) *Table {
	return &Table{numTypes: numTypes, rows: map[int]*tableRow{}}
}

// row returns (allocating) a phase's row.
func (t *Table) row(phase int) *tableRow {
	r, ok := t.rows[phase]
	if !ok {
		r = &tableRow{sum: make([]float64, t.numTypes), n: make([]int, t.numTypes)}
		t.rows[phase] = r
	}
	return r
}

// Add records one IPC sample for a phase on a core type.
func (t *Table) Add(phase int, ct amp.CoreTypeID, ipc float64) {
	r := t.row(phase)
	r.sum[ct] += ipc
	r.n[ct]++
}

// Count returns a phase's sample count on a core type.
func (t *Table) Count(phase int, ct amp.CoreTypeID) int {
	r, ok := t.rows[phase]
	if !ok {
		return 0
	}
	return r.n[ct]
}

// Ready reports whether every core type has at least k samples for a phase.
func (t *Table) Ready(phase, k int) bool {
	r, ok := t.rows[phase]
	if !ok {
		return false
	}
	for _, n := range r.n {
		if n < k {
			return false
		}
	}
	return true
}

// Means returns the per-type IPC means of a phase (0 for unsampled types).
func (t *Table) Means(phase int) []float64 {
	out := make([]float64, t.numTypes)
	r, ok := t.rows[phase]
	if !ok {
		return out
	}
	for i := range out {
		if r.n[i] > 0 {
			out[i] = r.sum[i] / float64(r.n[i])
		}
	}
	return out
}

// LeastMeasured returns the core type with the fewest samples for a phase,
// breaking ties round-robin from a caller-supplied offset so concurrent
// probers spread across core types instead of all probing type 0 first.
func (t *Table) LeastMeasured(phase, offset int) amp.CoreTypeID {
	start := offset % t.numTypes
	if start < 0 {
		start = 0
	}
	r := t.row(phase)
	best, bestN := start, int(^uint(0)>>1)
	for i := 0; i < t.numTypes; i++ {
		ct := (start + i) % t.numTypes
		if r.n[ct] < bestN {
			best, bestN = ct, r.n[ct]
		}
	}
	return amp.CoreTypeID(best)
}

// SetDecision fixes (or refreshes) a phase's decision, snapshotting the
// current means as the drift baseline.
func (t *Table) SetDecision(phase int, dec Decision) {
	r := t.row(phase)
	r.dec = &dec
	r.decMeans = t.Means(phase)
}

// Drift returns the relative movement of a phase's per-type IPC means
// since its decision was last fixed: the largest per-type |now-then| over
// the larger of the two values. A drift-damped consumer re-enters Decide
// only when this exceeds its ε — the hybrid's re-decision damping knob.
// Undecided phases report +Inf (any evidence warrants the first decision).
func (t *Table) Drift(phase int) float64 {
	r, ok := t.rows[phase]
	if !ok || r.dec == nil || r.decMeans == nil {
		return math.Inf(1)
	}
	now := t.Means(phase)
	worst := 0.0
	for i := range now {
		ref := now[i]
		if r.decMeans[i] > ref {
			ref = r.decMeans[i]
		}
		if ref <= 0 {
			continue
		}
		d := (now[i] - r.decMeans[i]) / ref
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// DecisionOf returns a phase's fixed decision, or nil while undecided.
func (t *Table) DecisionOf(phase int) *Decision {
	r, ok := t.rows[phase]
	if !ok {
		return nil
	}
	return r.dec
}
