package place

import (
	"reflect"
	"testing"

	"phasetune/internal/amp"
	"phasetune/internal/reuse"
)

// antagonist MemStats: a DRAM streamer whose working set covers a whole L2
// group, with most references reaching the shared cache.
func antMem() *MemStats {
	return &MemStats{L2RefsPerInstr: 0.25, Profile: reuse.Profile{WorkingSetKB: 3072, Locality: 0.9}}
}

// flatDec is a decision with near-flat rates (Select tie-breaks to the big
// type on a flat IPC vector; callers override Choice as needed).
func flatDec(e *Engine, mem *MemStats) Decision {
	dec := e.Decide([]float64{0.9, 0.9, 0.9})
	dec.Mem = mem
	return dec
}

// --- ContentionConfig.Normalized -------------------------------------------

func TestContentionConfigNormalizedDefaults(t *testing.T) {
	n := ContentionConfig{}.Normalized()
	if n.MissNs != DefaultMissNs {
		t.Errorf("MissNs = %v, want default %v", n.MissNs, DefaultMissNs)
	}
	if n.DRAMBudget != 0 {
		t.Errorf("DRAMBudget = %v, want 0 (derive from capacity)", n.DRAMBudget)
	}
	if n.BandwidthWeight != DefaultBandwidthWeight {
		t.Errorf("BandwidthWeight = %v, want default %v", n.BandwidthWeight, DefaultBandwidthWeight)
	}
	if n.ReliefMargin != DefaultReliefMargin {
		t.Errorf("ReliefMargin = %v, want default %v", n.ReliefMargin, DefaultReliefMargin)
	}
}

func TestContentionConfigNormalizedExplicitZero(t *testing.T) {
	n := ContentionConfig{MissNs: -1, DRAMBudget: -5, BandwidthWeight: -1, ReliefMargin: -1}.Normalized()
	if n.MissNs != 0 {
		t.Errorf("negative MissNs folds to %v, want 0", n.MissNs)
	}
	if n.DRAMBudget != -1 {
		t.Errorf("negative DRAMBudget folds to %v, want -1 (no budget)", n.DRAMBudget)
	}
	if n.BandwidthWeight != 0 {
		t.Errorf("negative BandwidthWeight folds to %v, want 0", n.BandwidthWeight)
	}
	if n.ReliefMargin != 0 {
		t.Errorf("negative ReliefMargin folds to %v, want 0", n.ReliefMargin)
	}
}

func TestConfigNormalizedCopiesContention(t *testing.T) {
	cc := &ContentionConfig{}
	cfg := Config{Contention: cc}.Normalized()
	if cfg.Contention == cc {
		t.Fatal("Normalized shares the caller's ContentionConfig pointer")
	}
	if cc.MissNs != 0 {
		t.Errorf("Normalized mutated the caller's config: MissNs = %v", cc.MissNs)
	}
	if cfg.Contention.MissNs != DefaultMissNs {
		t.Errorf("normalized copy MissNs = %v, want %v", cfg.Contention.MissNs, DefaultMissNs)
	}
}

// --- Cache-group topology ---------------------------------------------------

func TestEffectiveShareKBHexTopology(t *testing.T) {
	c := NewCapacity(hex())
	// Each hex type owns one 2-core group: big/medium 4096 KB, little 2048.
	wantSolo := []float64{4096, 4096, 2048}
	for ti, solo := range wantSolo {
		ty := amp.CoreTypeID(ti)
		if got := c.GroupKB(ty); got != solo {
			t.Errorf("type %d GroupKB = %v, want %v", ti, got, solo)
		}
		if got := c.EffectiveShareKB(ty, 0); got != solo {
			t.Errorf("type %d share at demand 0 = %v, want solo %v", ti, got, solo)
		}
		if got := c.EffectiveShareKB(ty, 1); got != solo {
			t.Errorf("type %d share at demand 1 = %v, want solo %v", ti, got, solo)
		}
		if got := c.EffectiveShareKB(ty, 2); got != solo/2 {
			t.Errorf("type %d share at demand 2 = %v, want %v", ti, got, solo/2)
		}
		// Occupancy caps at the group's core count: more demand than cores
		// time-multiplexes, it does not shrink the concurrent share further.
		if got := c.EffectiveShareKB(ty, 5); got != solo/2 {
			t.Errorf("type %d share at demand 5 = %v, want capped %v", ti, got, solo/2)
		}
	}
}

func TestEffectiveShareKBQuadSpreadsOverGroups(t *testing.T) {
	c := NewCapacity(quad())
	// Quad fast type: one 4096 KB group with 2 cores.
	if got := c.EffectiveShareKB(amp.FastType, 2); got != 2048 {
		t.Errorf("fast share at demand 2 = %v, want 2048", got)
	}
}

// --- adjustedRate -----------------------------------------------------------

func TestAdjustedRateComputeNeutral(t *testing.T) {
	e := NewEngine(hex(), 0.15, Config{Contention: &ContentionConfig{}})
	dec := e.Decide([]float64{0.9, 0.9, 0.9})
	// No Mem: pricing must return the raw measured rate at any demand.
	for d := 0; d <= 4; d++ {
		for ty := 0; ty < 3; ty++ {
			if got := e.AdjustedRate(&dec, amp.CoreTypeID(ty), d); got != dec.Rates[ty] {
				t.Fatalf("compute claim priced: type %d demand %d rate %v != raw %v",
					ty, d, got, dec.Rates[ty])
			}
		}
	}
	// L2-resident working set: crowding halves the share but the miss ratio
	// barely moves, so the adjusted rate stays within a hair of raw.
	dec.Mem = &MemStats{L2RefsPerInstr: 0.25, Profile: reuse.Profile{WorkingSetKB: 64, Locality: 0.9}}
	got := e.AdjustedRate(&dec, 0, 2)
	if got < dec.Rates[0]*0.999 {
		t.Errorf("L2-resident claim priced hard: %v vs raw %v", got, dec.Rates[0])
	}
}

func TestAdjustedRateMonotoneInDemand(t *testing.T) {
	e := NewEngine(hex(), 0.15, Config{Contention: &ContentionConfig{}})
	dec := flatDec(e, antMem())
	solo := e.AdjustedRate(&dec, 0, 1)
	crowded := e.AdjustedRate(&dec, 0, 2)
	if solo != dec.Rates[0] {
		t.Errorf("solo occupancy priced: %v vs raw %v", solo, dec.Rates[0])
	}
	if crowded >= solo {
		t.Errorf("crowded rate %v not below solo %v", crowded, solo)
	}
	// Crowding the half-size little group is priced too.
	littleSolo := e.AdjustedRate(&dec, 2, 1)
	littleCrowded := e.AdjustedRate(&dec, 2, 2)
	if littleCrowded >= littleSolo {
		t.Errorf("little crowded rate %v not below solo %v", littleCrowded, littleSolo)
	}
}

// --- nil-Contention determinism contract ------------------------------------

func TestArbitrateUnpricedIgnoresMemStats(t *testing.T) {
	e := NewEngine(hex(), 0.15, Config{})
	mkClaims := func(withMem bool) []Claim {
		var claims []Claim
		for i := 0; i < 6; i++ {
			dec := e.Decide([]float64{0.9, 0.7, 0.5})
			if withMem && i%2 == 0 {
				dec.Mem = antMem()
			}
			claims = append(claims, Claim{Dec: &dec})
		}
		return claims
	}
	plain := e.Arbitrate(mkClaims(false))
	withMem := e.Arbitrate(mkClaims(true))
	if !reflect.DeepEqual(plain, withMem) {
		t.Errorf("unpriced engine read Decision.Mem: %v vs %v", plain, withMem)
	}
}

// --- relief: the herding fix ------------------------------------------------

// herdClaims is the hex herding scenario: three DRAM antagonists whose flat
// IPC sends Select to the little type (cheap capacity tie-break loses to
// frequency — flat vectors tie-break to big; force little like a measured
// memory phase would land), plus three compute claims on big.
func herdClaims(e *Engine) []Claim {
	var claims []Claim
	for i := 0; i < 3; i++ {
		// Memory phase: IPC rises toward the slow clock, gap > δ.
		dec := e.Decide([]float64{0.4, 0.55, 0.8})
		dec.Mem = antMem()
		claims = append(claims, Claim{Dec: &dec})
	}
	for i := 0; i < 3; i++ {
		dec := e.Decide([]float64{0.9, 0.9, 0.9})
		claims = append(claims, Claim{Dec: &dec})
	}
	return claims
}

func TestArbitrateUnpricedHerdsAntagonists(t *testing.T) {
	e := NewEngine(hex(), 0.15, Config{})
	assigned := e.Arbitrate(herdClaims(e))
	little := 0
	for i := 0; i < 3; i++ {
		if assigned[i] == 2 {
			little++
		}
	}
	// Quotas on 6 claims are 2/2/2 with band 1: 3 antagonists on little sit
	// inside quota+band, the loop never fires, and they thrash the half-size
	// group together — the phenomenon pricing exists to fix.
	if little != 3 {
		t.Fatalf("unpriced hex arbitration did not herd: %d/3 antagonists on little (%v)",
			little, assigned)
	}
}

func TestArbitratePricedSeparatesAntagonists(t *testing.T) {
	e := NewEngine(hex(), 0.15, Config{Contention: &ContentionConfig{}})
	assigned := e.Arbitrate(herdClaims(e))
	perType := make([]int, 3)
	for i := 0; i < 3; i++ {
		perType[assigned[i]]++
	}
	if perType[2] >= 3 {
		t.Fatalf("priced arbitration left all antagonists on little: %v", assigned)
	}
	used := 0
	for _, n := range perType {
		if n > 0 {
			used++
		}
	}
	if used < 2 {
		t.Errorf("antagonists on %d type(s), want spread over >= 2: %v", used, assigned)
	}
}

func TestRelieveRespectsQuotaBand(t *testing.T) {
	e := NewEngine(hex(), 0.15, Config{Contention: &ContentionConfig{}})
	claims := herdClaims(e)
	assigned := e.Arbitrate(claims)
	quota := e.Capacity().Quotas(len(claims))
	demand := make([]int, 3)
	for _, a := range assigned {
		demand[a]++
	}
	for ti, d := range demand {
		if d > quota[ti]+1 { // band 1 (default)
			t.Errorf("relief oversubscribed type %d: demand %d > quota %d + band 1",
				ti, d, quota[ti])
		}
	}
}

func TestArbitratePricedDeterministic(t *testing.T) {
	e := NewEngine(hex(), 0.15, Config{Contention: &ContentionConfig{}})
	claims := herdClaims(e)
	first := e.Arbitrate(claims)
	for i := 0; i < 5; i++ {
		if got := e.Arbitrate(claims); !reflect.DeepEqual(got, first) {
			t.Fatalf("pass %d diverged: %v vs %v", i, got, first)
		}
	}
}

func TestArbitratePricedStableUnderReassignment(t *testing.T) {
	// Feeding an arbitration's output back as Prev must not move anything:
	// relief gains are measured against margin + hysteresis, so a converged
	// assignment is a fixed point, not an oscillator.
	e := NewEngine(hex(), 0.15, Config{Contention: &ContentionConfig{}})
	claims := herdClaims(e)
	assigned := e.Arbitrate(claims)
	for i := range claims {
		claims[i].Prev, claims[i].HasPrev = assigned[i], true
	}
	again := e.Arbitrate(claims)
	if !reflect.DeepEqual(assigned, again) {
		t.Errorf("re-arbitration moved converged claims: %v vs %v", assigned, again)
	}
}

// --- bandwidth overdraft ----------------------------------------------------

func TestBwFactorOverdraft(t *testing.T) {
	e := NewEngine(hex(), 0.15, Config{Contention: &ContentionConfig{}})
	mem := antMem()
	var claims []Claim
	demand := make([]int, 3)
	for i := 0; i < 4; i++ {
		dec := e.Decide([]float64{0.4, 0.55, 0.8})
		dec.Mem = mem
		claims = append(claims, Claim{Dec: &dec})
		demand[dec.Choice]++
	}
	over := e.bwFactor(claims, demand)
	if over <= 1 {
		t.Errorf("four antagonists within budget: bwFactor = %v, want > 1", over)
	}
	// A sky-high explicit budget absorbs the same traffic.
	e2 := NewEngine(hex(), 0.15, Config{Contention: &ContentionConfig{DRAMBudget: 1e18}})
	if got := e2.bwFactor(claims, demand); got != 1 {
		t.Errorf("bwFactor under huge budget = %v, want 1", got)
	}
	// Budget disabled: factor pinned to 1 regardless of traffic.
	e3 := NewEngine(hex(), 0.15, Config{Contention: &ContentionConfig{DRAMBudget: -1}})
	if got := e3.bwFactor(claims, demand); got != 1 {
		t.Errorf("bwFactor with budget disabled = %v, want 1", got)
	}
	// Higher overdraft prices crowding harder than factor 1.
	dec := e.Decide([]float64{0.4, 0.55, 0.8})
	dec.Mem = mem
	at1 := e.adjustedRate(&dec, 2, 2, 1)
	atOver := e.adjustedRate(&dec, 2, 2, over)
	if atOver >= at1 {
		t.Errorf("overdraft did not deepen the stall: %v vs %v", atOver, at1)
	}
}

// --- engine-level integration ----------------------------------------------

func TestEngineEnterLeavePriced(t *testing.T) {
	e := NewEngine(hex(), 0.15, Config{Contention: &ContentionConfig{}})
	for id := 0; id < 3; id++ {
		dec := e.Decide([]float64{0.4, 0.55, 0.8})
		dec.Mem = antMem()
		e.Enter(id, dec)
	}
	m := e.Capacity().Machine()
	littleMask := m.TypeMask(2)
	onLittle := 0
	for id := 0; id < 3; id++ {
		if e.MaskFor(id) == littleMask {
			onLittle++
		}
	}
	if onLittle >= 3 {
		t.Errorf("priced engine kept all 3 antagonist claims on little")
	}
	for id := 0; id < 3; id++ {
		e.Leave(id)
	}
	if got := e.MaskFor(0); got != 0 {
		t.Errorf("MaskFor after Leave = %#x, want 0", got)
	}
}
