package place

import (
	"math"
	"testing"

	"phasetune/internal/amp"
	"phasetune/internal/rng"
)

func quad() *amp.Machine { return amp.Quad2Fast2Slow() }
func hex() *amp.Machine  { return amp.Hex2Big2Medium2Little() }

// --- Select (Algorithm 2) --------------------------------------------------

func TestSelectMemoryBoundPicksSlow(t *testing.T) {
	// f[fast]=0.4, f[slow]=0.7: gap 0.3 > δ=0.15 -> slow.
	if got := Select(quad(), []float64{0.4, 0.7}, 0.15); got != amp.SlowType {
		t.Errorf("Select = %d, want slow", got)
	}
}

func TestSelectComputeBoundTiePicksFast(t *testing.T) {
	if got := Select(quad(), []float64{0.9, 0.9}, 0.15); got != amp.FastType {
		t.Errorf("Select = %d, want fast on IPC tie", got)
	}
}

func TestSelectSmallGapStays(t *testing.T) {
	if got := Select(quad(), []float64{0.8, 0.9}, 0.15); got != amp.FastType {
		t.Errorf("Select = %d, want fast (gap 0.1 < 0.15)", got)
	}
}

func TestSelectThreeTypes(t *testing.T) {
	m := hex()
	// Monotone gaps above δ walk all the way to the little type.
	if got := Select(m, []float64{0.3, 0.5, 0.8}, 0.1); got != amp.CoreTypeID(2) {
		t.Errorf("Select = %d, want little (2)", got)
	}
	// Flat IPC: tie-break lands on the fastest type.
	if got := Select(m, []float64{0.9, 0.9, 0.9}, 0.1); got != amp.CoreTypeID(0) {
		t.Errorf("Select = %d, want big (0) on flat IPC", got)
	}
}

// --- Capacity --------------------------------------------------------------

func TestCapacityQuotasSumNearTotal(t *testing.T) {
	for _, m := range []*amp.Machine{quad(), hex(), amp.ThreeCore2Fast1Slow()} {
		c := NewCapacity(m)
		for n := 1; n <= 24; n++ {
			sum := 0
			for _, q := range c.Quotas(n) {
				sum += q
			}
			// Nearest-rounding can drift by at most one per type.
			if diff := sum - n; diff < -len(m.Types) || diff > len(m.Types) {
				t.Fatalf("%s: quotas for %d tasks sum to %d", m.Name, n, sum)
			}
		}
	}
}

func TestCapacityFastQuotaClampsToFastCores(t *testing.T) {
	c := NewCapacity(quad())
	// 2 fast cores: even a 1-task ranking grants at most n, and small
	// rankings fill the fast cores before pinning anything slow.
	if q := c.FastQuota(1); q != 1 {
		t.Errorf("FastQuota(1) = %d, want 1", q)
	}
	if q := c.FastQuota(2); q != 2 {
		t.Errorf("FastQuota(2) = %d, want 2", q)
	}
	if q := c.FastQuota(10); q != 6 { // share 0.6
		t.Errorf("FastQuota(10) = %d, want 6", q)
	}
}

// --- Arbitration -----------------------------------------------------------

// randomClaims draws n claims with random per-type rates; choice follows the
// best rate so preferences are internally consistent.
func randomClaims(r *rng.Source, m *amp.Machine, n int) []Claim {
	claims := make([]Claim, n)
	for i := range claims {
		rates := make([]float64, len(m.Types))
		best := 0
		for t := range rates {
			rates[t] = 1e5 + float64(r.Uint64()%200000)
			if rates[t] > rates[best] {
				best = t
			}
		}
		claims[i] = Claim{Dec: &Decision{Choice: amp.CoreTypeID(best), Rates: rates}}
	}
	return claims
}

func TestArbitratePureAndDeterministic(t *testing.T) {
	r := rng.New(7)
	for _, m := range []*amp.Machine{quad(), hex()} {
		e := NewEngine(m, 0.06, Config{})
		for trial := 0; trial < 20; trial++ {
			claims := randomClaims(r, m, 1+int(r.Uint64()%12))
			snapshot := make([]Claim, len(claims))
			copy(snapshot, claims)
			a := e.Arbitrate(claims)
			b := e.Arbitrate(claims)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s trial %d: repeated arbitration differs at %d: %d vs %d", m.Name, trial, i, a[i], b[i])
				}
				if claims[i].Dec.Choice != snapshot[i].Dec.Choice {
					t.Fatalf("%s trial %d: arbitration mutated its input", m.Name, trial)
				}
			}
		}
	}
}

func TestArbitrateReachesCapacityFixpoint(t *testing.T) {
	r := rng.New(11)
	for _, m := range []*amp.Machine{quad(), hex()} {
		e := NewEngine(m, 0.06, Config{})
		cap := e.Capacity()
		for trial := 0; trial < 50; trial++ {
			claims := randomClaims(r, m, 2+int(r.Uint64()%16))
			assigned := e.Arbitrate(claims)
			quota := cap.Quotas(len(claims))
			demand := make([]int, cap.NumTypes())
			for _, a := range assigned {
				demand[a]++
			}
			over, under := false, false
			for i := range demand {
				if demand[i] > quota[i]+1 {
					over = true
				}
				if demand[i] < quota[i] {
					under = true
				}
			}
			if over && under {
				t.Fatalf("%s trial %d: arbitration left demand %v against quota %v (over and under coexist)",
					m.Name, trial, demand, quota)
			}
		}
	}
}

func TestArbitrateSpillsCheapestFromHerd(t *testing.T) {
	// Four memory-bound tasks all herd onto the slow pair of the quad.
	// Quota (share 0.6/0.4 of 4) is fast 2 / slow 2 with a one-task band,
	// so arbitration spills until the slow pair holds quota+band = 3 —
	// and the task it moves must be the one with the smallest
	// fast-vs-slow rate loss.
	m := quad()
	e := NewEngine(m, 0.06, Config{})
	mk := func(fastRate, slowRate float64) Claim {
		return Claim{Dec: &Decision{Choice: amp.SlowType, Rates: []float64{fastRate, slowRate}}}
	}
	claims := []Claim{
		mk(90_000, 100_000), // loses 10k on fast — the cheapest spill
		mk(40_000, 100_000), // loses 60k
		mk(85_000, 100_000), // loses 15k
		mk(30_000, 100_000), // loses 70k
	}
	assigned := e.Arbitrate(claims)
	want := []amp.CoreTypeID{amp.FastType, amp.SlowType, amp.SlowType, amp.SlowType}
	for i := range want {
		if assigned[i] != want[i] {
			t.Fatalf("assigned %v, want %v (cheapest-loss spill within the band)", assigned, want)
		}
	}
}

// --- Cross-path parity -----------------------------------------------------

// TestCrossPathPlacementParity is the unification property this package
// exists for: the static (spill), dynamic (probe), and hybrid runtimes
// differ only in how IPC tables are measured — fed *identical* per-(phase,
// core-type) IPC tables, every consumer shape of the shared engine must
// produce identical placements.
//
//   - dynamic shape: per-tick slice arbitration (Manager.probeRebalance);
//   - static shape:  claims registered per process in PID order, masks
//     read back at marks (Tuner.maskFor via Enter/MaskFor);
//   - hybrid shape:  claims registered at boundaries in first-mark order,
//     masks re-read on the monitor tick (Hybrid.OnTick).
func TestCrossPathPlacementParity(t *testing.T) {
	r := rng.New(42)
	for _, m := range []*amp.Machine{quad(), amp.ThreeCore2Fast1Slow(), hex()} {
		for trial := 0; trial < 25; trial++ {
			nTasks := 1 + int(r.Uint64()%14)
			// One IPC table per task (its current phase's row).
			tables := make([][]float64, nTasks)
			for i := range tables {
				tables[i] = make([]float64, len(m.Types))
				for ct := range tables[i] {
					tables[i][ct] = 0.2 + float64(r.Uint64()%200)/100
				}
			}

			// Every path derives decisions through the one Decide.
			dynamic := NewEngine(m, 0.06, Config{})
			claims := make([]Claim, nTasks)
			for i, f := range tables {
				dec := dynamic.Decide(f)
				claims[i] = Claim{Dec: &dec}
			}
			wantTypes := dynamic.Arbitrate(claims)

			static := NewEngine(m, 0.06, Config{})
			for i, f := range tables {
				static.Enter(i+1, static.Decide(f)) // PIDs 1..n
			}
			hybrid := NewEngine(m, 0.06, Config{})
			for i, f := range tables {
				hybrid.Enter(i+1, hybrid.Decide(f))
			}

			for i := range tables {
				want := m.TypeMask(wantTypes[i])
				if got := static.MaskFor(i + 1); got != want {
					t.Fatalf("%s trial %d task %d: static path mask %b != dynamic path %b",
						m.Name, trial, i, got, want)
				}
				if got := hybrid.MaskFor(i + 1); got != want {
					t.Fatalf("%s trial %d task %d: hybrid path mask %b != dynamic path %b",
						m.Name, trial, i, got, want)
				}
			}

			// And the decision itself is the chooser shared with non-spill
			// static: Decide's choice == Select on the same table.
			for i, f := range tables {
				if claims[i].Dec.Choice != Select(m, f, 0.06) {
					t.Fatalf("%s: Decide choice diverged from Select for table %v", m.Name, f)
				}
			}
		}
	}
}

// --- Registered-claim lifecycle -------------------------------------------

func TestEngineClaimLifecycle(t *testing.T) {
	m := quad()
	e := NewEngine(m, 0.06, Config{})
	if mask := e.MaskFor(1); mask != 0 {
		t.Fatalf("mask for unregistered claim = %b, want 0", mask)
	}
	dec := e.Decide([]float64{1.5, 1.0})
	e.Enter(1, dec)
	if mask := e.MaskFor(1); mask != m.TypeMask(amp.FastType) {
		t.Fatalf("single fast-preferring claim mask = %b, want fast", mask)
	}
	e.Leave(1)
	if mask := e.MaskFor(1); mask != 0 {
		t.Fatalf("mask after Leave = %b, want 0", mask)
	}
	// Leave of an unknown id is a no-op.
	e.Leave(99)
}

// TestEngineImplementsPlacer pins the interface contract at compile time.
func TestEngineImplementsPlacer(t *testing.T) {
	var _ Placer = NewEngine(quad(), 0.06, Config{})
}

// TestTableDriftTracksDecisionBaseline pins the drift metric the hybrid's
// re-decision damping reads: undecided phases report infinite drift, a
// fresh decision snapshots the means (drift 0), and later samples move the
// drift by the relative change of the worst core type.
func TestTableDriftTracksDecisionBaseline(t *testing.T) {
	tbl := NewTable(2)
	if !math.IsInf(tbl.Drift(0), 1) {
		t.Fatalf("undecided drift = %g, want +Inf", tbl.Drift(0))
	}
	tbl.Add(0, 0, 1.0)
	tbl.Add(0, 1, 0.5)
	tbl.SetDecision(0, Decision{Choice: 0, Rates: []float64{1, 1}})
	if d := tbl.Drift(0); d != 0 {
		t.Fatalf("drift right after decision = %g, want 0", d)
	}
	// A second identical sample leaves the means unchanged.
	tbl.Add(0, 0, 1.0)
	if d := tbl.Drift(0); d != 0 {
		t.Fatalf("drift after identical sample = %g, want 0", d)
	}
	// A diverging sample on type 1 moves its mean 0.5 -> 0.75: relative
	// drift 0.25/0.75 = 1/3 against the larger value.
	tbl.Add(0, 1, 1.0)
	if d := tbl.Drift(0); math.Abs(d-1.0/3) > 1e-12 {
		t.Fatalf("drift after diverging sample = %g, want 1/3", d)
	}
	// Re-fixing the decision resets the baseline.
	tbl.SetDecision(0, Decision{Choice: 0, Rates: []float64{1, 1}})
	if d := tbl.Drift(0); d != 0 {
		t.Fatalf("drift after refreshed decision = %g, want 0", d)
	}
}
