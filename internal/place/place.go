// Package place is the unified placement engine: the single implementation
// of the paper's Algorithm 2 core-type chooser, the core-type capacity
// model, and the capacity-aware spill arbitration that every placement
// consumer in the system shares.
//
// Three runtimes make placement decisions — the static phase-mark runtime
// (internal/tuning), the online phase detector (internal/online), and the
// marks+windows hybrid (online.Hybrid) — and they differ only in *how* the
// per-(phase, core-type) IPC estimates are obtained: representative-section
// sampling at marks, windowed counter sampling on ticks, or marks for
// boundaries with windows for refresh. What they do with those estimates is
// one algorithm, and it lives here:
//
//	IPC per core type ──Decide──▶ Decision{Choice, Rates}
//	                                    │ (per-task claims)
//	       claims ──Arbitrate──▶ per-task core types under capacity quotas
//
// Decide is Algorithm 2 (Select) plus the per-type instruction rates the
// arbitration prices spills with. Arbitrate treats per-task choices as
// demands and spills overflow beyond a core type's cycle-capacity share —
// cheapest task first, where "cheap" is the measured rate lost by running on
// the spill target (a DRAM-bound task loses ~nothing on a fast core, so
// memory phases spill to idle fast cores first). Feeding identical IPC
// tables through any consumer therefore produces identical placements — the
// property internal/place/place_test.go pins down.
//
// Table is the shared per-phase decision table behind the consumers'
// estimates: running per-(phase, core-type) IPC means plus the fixed
// Decision. It snapshots the means each decision was fixed from, and
// Table.Drift prices how far later samples have moved them — the signal
// the hybrid's re-decision damping (online.HybridConfig.Drift) thresholds
// so estimate jitter refreshes data without re-entering Decide.
//
// The package is pure decision math over an amp.Machine: it has no
// dependency on the simulator, scheduler, or counter layers, which is what
// lets both mark hooks and kernel monitors share one Engine instance.
package place

import (
	"sort"

	"phasetune/internal/amp"
	"phasetune/internal/trace"
)

// Config parameterizes the arbitration (the Algorithm 2 threshold δ is a
// separate Engine argument because each runtime carries its own δ knob).
// Zero fields take defaults; a negative value selects the literal zero
// operating point (no band / no hysteresis) — the same convention as
// online.Config.SampleCycles.
type Config struct {
	// Band is the per-type oversubscription tolerance in tasks: a type may
	// exceed its capacity quota by Band before arbitration spills from it,
	// so a task sitting exactly at a quota boundary does not flap.
	// 0 = default (1); negative = strict quotas (band 0).
	Band int `json:"band,omitempty"`
	// Hysteresis discounts the spill loss of a task already placed on the
	// spill target, so marginal spill choices stick across passes.
	// 0 = default (0.05); negative = no damping.
	Hysteresis float64 `json:"hysteresis,omitempty"`
	// Contention, when non-nil, prices shared-L2 occupancy and DRAM
	// bandwidth into arbitration (see contention.go). Nil — the default —
	// keeps both the wire encoding and every engine code path
	// byte-identical to unpriced builds.
	Contention *ContentionConfig `json:"contention,omitempty"`
}

// DefaultConfig is the operating point every runtime uses.
func DefaultConfig() Config {
	return Config{Band: 1, Hysteresis: 0.05}
}

// Normalized fills zero fields from DefaultConfig and folds the negative
// "explicitly zero" sentinels to 0.
func (c Config) Normalized() Config {
	d := DefaultConfig()
	switch {
	case c.Band == 0:
		c.Band = d.Band
	case c.Band < 0:
		c.Band = 0
	}
	switch {
	case c.Hysteresis == 0:
		c.Hysteresis = d.Hysteresis
	case c.Hysteresis < 0:
		c.Hysteresis = 0
	}
	if c.Contention != nil {
		cc := c.Contention.Normalized()
		c.Contention = &cc
	}
	return c
}

// tieEps is the relative IPC difference below which two measurements are
// treated as a tie when ordering candidates in Select. Measured IPC carries
// sampling noise (branch-variant mix, mark payloads); without an epsilon,
// compute-bound phases — whose true IPC is core-invariant — would start from
// an arbitrary candidate. Memory-phase gaps are tens of percent relative, so
// 3% never masks a real difference.
const tieEps = 0.03

// Select is the paper's Algorithm 2 generalized over core *types* (§VI-C
// reduces many-core machines to a few types): sort candidates by measured
// IPC ascending; start from the lowest; step to the next candidate only when
// the consecutive IPC gap exceeds delta. Ties (within tieEps relative) place
// faster (higher-frequency) types first, so compute-bound phases — whose IPC
// is core-invariant — default to fast cores.
func Select(machine *amp.Machine, f []float64, delta float64) amp.CoreTypeID {
	n := len(f)
	if n == 0 {
		return 0
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := order[a], order[b]
		hi := f[ca]
		if f[cb] > hi {
			hi = f[cb]
		}
		if d := f[ca] - f[cb]; d > tieEps*hi || d < -tieEps*hi {
			return f[ca] < f[cb]
		}
		// Tie: faster type first.
		return machine.Types[ca].FreqGHz > machine.Types[cb].FreqGHz
	})
	d := order[0]
	for i := 0; i+1 < n; i++ {
		theta := f[order[i+1]] - f[order[i]]
		if theta > delta && f[order[i+1]] > f[d] {
			d = order[i+1]
		}
	}
	return amp.CoreTypeID(d)
}

// Capacity is the core-type capacity model of one machine: per-type cycle
// capacity, capacity shares, and the quota arithmetic arbitration runs on.
type Capacity struct {
	machine  *amp.Machine
	typeCps  []float64 // summed CyclesPerSec of the cores of each type
	totalCps float64
	fastType amp.CoreTypeID
	slowType amp.CoreTypeID
	numFast  int
	groups   []typeGroups // per-type shared-L2 topology (contention pricing)
}

// NewCapacity builds the capacity model for a machine.
func NewCapacity(m *amp.Machine) *Capacity {
	c := &Capacity{machine: m, typeCps: make([]float64, len(m.Types)), groups: groupsOf(m)}
	for i, t := range m.Types {
		if t.CyclesPerSec > m.Types[c.fastType].CyclesPerSec {
			c.fastType = amp.CoreTypeID(i)
		}
		if t.CyclesPerSec < m.Types[c.slowType].CyclesPerSec {
			c.slowType = amp.CoreTypeID(i)
		}
	}
	for _, core := range m.Cores {
		cps := m.Types[core.Type].CyclesPerSec
		c.typeCps[core.Type] += cps
		c.totalCps += cps
		if core.Type == c.fastType {
			c.numFast++
		}
	}
	return c
}

// Machine returns the described machine.
func (c *Capacity) Machine() *amp.Machine { return c.machine }

// NumTypes returns the core-type count.
func (c *Capacity) NumTypes() int { return len(c.typeCps) }

// FastType returns the highest-clocked type; SlowType the lowest.
func (c *Capacity) FastType() amp.CoreTypeID { return c.fastType }

// SlowType returns the lowest-clocked core type.
func (c *Capacity) SlowType() amp.CoreTypeID { return c.slowType }

// FastShare returns the fast type's fraction of machine cycle capacity.
func (c *Capacity) FastShare() float64 {
	if c.totalCps == 0 {
		return 0
	}
	return c.typeCps[c.fastType] / c.totalCps
}

// Quotas returns each type's capacity share of n tasks, rounded to nearest:
// the demand level above which arbitration treats the type as oversubscribed.
func (c *Capacity) Quotas(n int) []int {
	out := make([]int, len(c.typeCps))
	if c.totalCps == 0 {
		return out
	}
	for i, cps := range c.typeCps {
		out[i] = int(float64(n)*cps/c.totalCps + 0.5)
	}
	return out
}

// FastQuota returns how many of n utility-ranked tasks belong on the fast
// type: its cycle-capacity share, but never below one task per fast core
// while fast cores are undersubscribed (on an idle machine every task
// belongs on a fast core; pinning the lower ranks to slow cores would only
// idle capacity).
func (c *Capacity) FastQuota(n int) int {
	quota := int(float64(n)*c.FastShare() + 0.5)
	if quota < c.numFast {
		quota = c.numFast
		if quota > n {
			quota = n
		}
	}
	return quota
}

// Decision is one phase's fixed placement: the Algorithm 2 choice plus the
// measured per-type instruction rates (IPC × clock) arbitration uses to
// price spilling the task onto another type.
type Decision struct {
	// Choice is the Algorithm 2 core type.
	Choice amp.CoreTypeID
	// Rates is instructions per simulated second on each core type.
	Rates []float64
	// Mem is the phase's shared-cache pressure signature, set by the
	// consumer that fixed the decision. The engine reads it only under
	// contention pricing (Config.Contention non-nil); it is inert — and
	// placements are bit-identical with or without it — otherwise.
	Mem *MemStats
}

// Claim is one task's input to an arbitration pass.
type Claim struct {
	// Dec is the task's current phase decision.
	Dec *Decision
	// Prev is the core type the task was last assigned (hysteresis);
	// meaningful only when HasPrev.
	Prev amp.CoreTypeID
	// HasPrev reports whether Prev carries a previous type-level assignment.
	HasPrev bool
}

// Placer is the placement-engine interface shared by the static marks
// runtime, the online detector, and the hybrid policy: fix per-phase
// decisions from measured IPC, register per-task claims, and read arbitrated
// affinity masks. Engine is the only implementation; the interface exists so
// runtimes depend on the contract, not the struct.
type Placer interface {
	// Decide fixes a phase's placement from per-core-type IPC.
	Decide(ipc []float64) Decision
	// Enter registers (or refreshes) a task's active decision under id.
	Enter(id int, dec Decision)
	// Leave withdraws a task's claim (process exit, phase under probe).
	Leave(id int)
	// MaskFor returns the arbitrated affinity mask for a registered task
	// (0 when the id holds no claim).
	MaskFor(id int) uint64
}

// claim is one registered task's arbitration state.
type claim struct {
	dec      Decision
	assigned amp.CoreTypeID
	placed   bool
}

// Engine is the shared placement engine: Algorithm 2 decisions plus
// registered-claim capacity arbitration. It is not safe for concurrent use;
// every consumer runs inside the kernel's single-threaded event loop.
type Engine struct {
	capacity *Capacity
	cfg      Config
	cc       *ContentionConfig // cfg.Contention (normalized); nil = unpriced
	delta    float64

	claims map[int]*claim
	order  []int // claim ids in registration order (deterministic passes)
	dirty  bool

	tr *trace.Tracer
}

// NewEngine builds an engine for one machine. delta is the runtime's
// Algorithm 2 threshold; cfg parameterizes arbitration (zero fields take
// defaults).
func NewEngine(m *amp.Machine, delta float64, cfg Config) *Engine {
	e := &Engine{
		capacity: NewCapacity(m),
		cfg:      cfg.Normalized(),
		delta:    delta,
		claims:   map[int]*claim{},
	}
	e.cc = e.cfg.Contention
	return e
}

// Capacity returns the engine's capacity model.
func (e *Engine) Capacity() *Capacity { return e.capacity }

// SetTracer attaches a trace sink to the engine. Decisions and spill
// moves are emitted stamped at the tracer's simulated clock (the kernel
// keeps it current); a nil tracer disables emission. The engine never
// reads tracer state, so placements are identical with or without it.
func (e *Engine) SetTracer(tr *trace.Tracer) { e.tr = tr }

// Decide implements Placer: Algorithm 2 over the measured IPC vector plus
// the per-type instruction rates arbitration prices spills with.
func (e *Engine) Decide(ipc []float64) Decision {
	rates := make([]float64, len(ipc))
	for i := range ipc {
		rates[i] = ipc[i] * e.capacity.machine.Types[i].CyclesPerSec
	}
	dec := Decision{Choice: Select(e.capacity.machine, ipc, e.delta), Rates: rates}
	if e.tr != nil {
		e.tr.InstantNow("place", "decide", trace.PidMachine, trace.TidKernel,
			trace.Arg{Key: "ipc", Value: append([]float64(nil), ipc...)},
			trace.Arg{Key: "rates", Value: append([]float64(nil), rates...)},
			trace.Arg{Key: "choice", Value: e.capacity.machine.Types[dec.Choice].Name},
			trace.Arg{Key: "delta", Value: e.delta},
			trace.Arg{Key: "claims", Value: len(e.claims)})
	}
	return dec
}

// Enter implements Placer. A refreshed decision with an unchanged
// Algorithm 2 choice updates the spill-pricing rates in place without
// forcing a global re-arbitration: window-refreshed estimates drift a
// little every sample, and re-arbitrating on each drift would churn
// assignments machine-wide (the updated rates price the next natural
// arbitration pass instead).
func (e *Engine) Enter(id int, dec Decision) {
	if c, ok := e.claims[id]; ok {
		if c.dec.Choice != dec.Choice {
			e.dirty = true
		}
		c.dec = dec
		return
	}
	e.claims[id] = &claim{dec: dec}
	e.order = append(e.order, id)
	e.dirty = true
}

// Leave implements Placer.
func (e *Engine) Leave(id int) {
	if _, ok := e.claims[id]; !ok {
		return
	}
	delete(e.claims, id)
	for i, oid := range e.order {
		if oid == id {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
	e.dirty = true
}

// MaskFor implements Placer: the arbitrated type-level affinity mask of a
// registered task, re-running arbitration first if claims changed.
func (e *Engine) MaskFor(id int) uint64 {
	c, ok := e.claims[id]
	if !ok {
		return 0
	}
	if e.dirty {
		e.rebalance()
	}
	return e.capacity.machine.TypeMask(c.assigned)
}

// rebalance arbitrates all registered claims in registration order.
func (e *Engine) rebalance() {
	e.dirty = false
	if len(e.order) == 0 {
		return
	}
	claims := make([]Claim, len(e.order))
	for i, id := range e.order {
		c := e.claims[id]
		claims[i] = Claim{Dec: &c.dec, Prev: c.assigned, HasPrev: c.placed}
	}
	assigned := e.Arbitrate(claims)
	for i, id := range e.order {
		e.claims[id].assigned = assigned[i]
		e.claims[id].placed = true
	}
}

// Arbitrate places every claim, honoring measured preferences under the
// capacity constraint. Per-task Algorithm 2 choices alone herd: a workload
// dominated by memory-bound jobs would pile every task onto the slow cores
// while fast cores idle. So preferences are demands, and overflow beyond a
// type's capacity share spills the cheapest tasks — loss is priced from the
// phase's measured per-type instruction rates, and a DRAM-bound task costs
// ~nothing to run on a fast core (fixed wall-clock memory latency), so
// memory phases spill to idle fast cores first. The pass is a pure function
// of its inputs: identical claims always produce identical assignments.
func (e *Engine) Arbitrate(claims []Claim) []amp.CoreTypeID {
	nTypes := e.capacity.NumTypes()
	assigned := make([]amp.CoreTypeID, len(claims))
	for i, c := range claims {
		assigned[i] = c.Dec.Choice
	}
	if nTypes < 2 || len(claims) == 0 {
		return assigned
	}

	quota := e.capacity.Quotas(len(claims))
	demand := make([]int, nTypes)
	for i := range claims {
		demand[int(assigned[i])]++
	}
	if e.tr != nil {
		e.tr.InstantNow("place", "arbitrate", trace.PidMachine, trace.TidKernel,
			trace.Arg{Key: "claims", Value: len(claims)},
			trace.Arg{Key: "demand", Value: append([]int(nil), demand...)},
			trace.Arg{Key: "quota", Value: append([]int(nil), quota...)},
			trace.Arg{Key: "band", Value: e.cfg.Band})
	}

	// Contention pricing: one bandwidth-overdraft factor per pass, computed
	// from the initial (preference) assignment so every candidate move is
	// priced against a consistent machine-wide bandwidth picture. bw stays
	// 1 — and adjustedRate returns raw rates — when pricing is off.
	bw := 1.0
	if e.cc != nil {
		bw = e.bwFactor(claims, demand)
	}

	band := e.cfg.Band
	for round := 0; round < len(claims)*nTypes; round++ {
		// Most oversubscribed type, most undersubscribed type.
		over, under := -1, -1
		for i := 0; i < nTypes; i++ {
			if demand[i] > quota[i]+band && (over == -1 || demand[i]-quota[i] > demand[over]-quota[over]) {
				over = i
			}
			if demand[i] < quota[i] && (under == -1 || quota[i]-demand[i] > quota[under]-demand[under]) {
				under = i
			}
		}
		if over == -1 || under == -1 {
			break
		}
		// Spill the claim whose measured rate loses least on the target
		// type; prefer claims already assigned there (no new switch).
		// Under contention pricing the loss compares *adjusted* rates at
		// the projected occupancies — source crowded as-is, target with
		// the spilled task added — so a memory phase leaving a thrashing
		// group can price as a gain, not a loss.
		best, bestLoss := -1, 0.0
		for i := range claims {
			if int(assigned[i]) != over {
				continue
			}
			var loss float64
			if e.cc != nil {
				loss = e.adjustedRate(claims[i].Dec, over, demand[over], bw) -
					e.adjustedRate(claims[i].Dec, under, demand[under]+1, bw)
			} else {
				loss = claims[i].Dec.Rates[over] - claims[i].Dec.Rates[under]
			}
			if claims[i].HasPrev && int(claims[i].Prev) == under {
				loss -= claims[i].Dec.Rates[over] * e.cfg.Hysteresis
			}
			if best == -1 || loss < bestLoss {
				best, bestLoss = i, loss
			}
		}
		if best == -1 {
			break
		}
		if e.tr != nil {
			e.tr.InstantNow("place", "spill", trace.PidMachine, trace.TidKernel,
				trace.Arg{Key: "claim", Value: best},
				trace.Arg{Key: "from", Value: e.capacity.machine.Types[over].Name},
				trace.Arg{Key: "to", Value: e.capacity.machine.Types[under].Name},
				trace.Arg{Key: "loss", Value: bestLoss})
		}
		assigned[best] = amp.CoreTypeID(under)
		demand[over]--
		demand[under]++
	}
	if e.cc != nil {
		e.relieve(claims, assigned, demand, quota, bw)
	}
	return assigned
}

// AssignRanked places n utility-ranked tasks (index 0 = highest fast-core
// marginal utility) across the fast and slow types: the fast type's
// capacity share goes to the top of the ranking, the rest to the slowest
// type. A Band-position hysteresis window keeps tasks at the quota boundary
// from flapping between types every pass; inside the window a task with a
// previous fast/slow assignment keeps its side, and an unplaced task takes
// the raw quota cut — so the quota fills from a cold start even when it is
// no larger than the band. Claims carry only Prev/HasPrev; Dec is unused.
func (e *Engine) AssignRanked(claims []Claim) []amp.CoreTypeID {
	c := e.capacity
	out := make([]amp.CoreTypeID, len(claims))
	quota := c.FastQuota(len(claims))
	band := e.cfg.Band
	for i := range claims {
		switch {
		case i < quota-band:
			out[i] = c.fastType
		case i >= quota+band:
			out[i] = c.slowType
		case claims[i].HasPrev && (claims[i].Prev == c.fastType || claims[i].Prev == c.slowType):
			out[i] = claims[i].Prev
		case i < quota:
			out[i] = c.fastType
		default:
			out[i] = c.slowType
		}
	}
	return out
}
