package place

// Surface tests for the engine's smaller contract points: capacity
// accessors, config sentinel folding, the ranked-assignment path, the
// claim-refresh fast path, trace emission neutrality, and the decision
// table's query methods. These pin behaviors the big arbitration property
// tests route around.

import (
	"reflect"
	"testing"

	"phasetune/internal/amp"
	"phasetune/internal/trace"
)

func TestCapacityAccessors(t *testing.T) {
	for _, m := range []*amp.Machine{quad(), hex()} {
		c := NewCapacity(m)
		if c.Machine() != m {
			t.Errorf("%s: Machine() did not return the described machine", m.Name)
		}
		fast, slow := c.FastType(), c.SlowType()
		if m.Types[fast].FreqGHz <= m.Types[slow].FreqGHz {
			t.Errorf("%s: fast type %s not faster than slow type %s",
				m.Name, m.Types[fast].Name, m.Types[slow].Name)
		}
		// FastShare must equal the fast type's summed core clock over the
		// machine total, recomputed here from the core list.
		perType := make([]float64, len(m.Types))
		total := 0.0
		for _, core := range m.Cores {
			perType[core.Type] += m.Types[core.Type].CyclesPerSec
			total += m.Types[core.Type].CyclesPerSec
		}
		want := perType[fast] / total
		if got := c.FastShare(); got != want {
			t.Errorf("%s: FastShare = %v, want %v", m.Name, got, want)
		}
		if got := c.FastShare(); got <= 0 || got >= 1 {
			t.Errorf("%s: FastShare = %v outside (0,1)", m.Name, got)
		}
	}
}

func TestConfigNormalizedSentinels(t *testing.T) {
	d := Config{}.Normalized()
	if d.Band != DefaultConfig().Band || d.Hysteresis != DefaultConfig().Hysteresis {
		t.Errorf("zero config normalized to %+v, want defaults %+v", d, DefaultConfig())
	}
	z := Config{Band: -1, Hysteresis: -1}.Normalized()
	if z.Band != 0 || z.Hysteresis != 0 {
		t.Errorf("negative sentinels normalized to %+v, want explicit zeros", z)
	}
}

func TestAssignRankedQuotaSplit(t *testing.T) {
	for _, m := range []*amp.Machine{quad(), hex()} {
		// Band -1 = strict quotas: the split must be exactly FastQuota.
		e := NewEngine(m, 0.06, Config{Band: -1})
		c := e.Capacity()
		n := 8
		out := e.AssignRanked(make([]Claim, n))
		quota := c.FastQuota(n)
		for i, ct := range out {
			want := c.FastType()
			if i >= quota {
				want = c.SlowType()
			}
			if ct != want {
				t.Errorf("%s: rank %d assigned %s, want %s (quota %d)",
					m.Name, i, m.Types[ct].Name, m.Types[want].Name, quota)
			}
		}
	}
}

func TestAssignRankedHysteresisBand(t *testing.T) {
	m := quad()
	e := NewEngine(m, 0.06, Config{Band: 1})
	c := e.Capacity()
	n := 8
	quota := c.FastQuota(n)

	// Cold start (no previous assignment): the band positions take the raw
	// quota cut, so the quota fills even when it is no larger than the band.
	cold := e.AssignRanked(make([]Claim, n))
	for i, ct := range cold {
		want := c.FastType()
		if i >= quota {
			want = c.SlowType()
		}
		if ct != want {
			t.Errorf("cold rank %d assigned %s, want raw quota cut %s",
				i, m.Types[ct].Name, m.Types[want].Name)
		}
	}

	// Inside the band, a task with a previous fast/slow assignment keeps
	// its side instead of flapping.
	claims := make([]Claim, n)
	band := []int{quota - 1, quota} // both strictly inside quota±1
	claims[band[0]] = Claim{Prev: c.SlowType(), HasPrev: true}
	claims[band[1]] = Claim{Prev: c.FastType(), HasPrev: true}
	out := e.AssignRanked(claims)
	if out[band[0]] != c.SlowType() {
		t.Errorf("band rank %d flapped to %s despite previous slow assignment",
			band[0], m.Types[out[band[0]]].Name)
	}
	if out[band[1]] != c.FastType() {
		t.Errorf("band rank %d flapped to %s despite previous fast assignment",
			band[1], m.Types[out[band[1]]].Name)
	}
	// Outside the band the quota cut is unconditional.
	if out[0] != c.FastType() || out[n-1] != c.SlowType() {
		t.Errorf("ranks outside the band ignored the quota cut: %v", out)
	}
}

// TestTracedEngineIdenticalPlacements pins trace neutrality: an engine with
// a tracer attached makes bit-identical decisions and arbitrations to an
// untraced one (the tracer is written to, never read).
func TestTracedEngineIdenticalPlacements(t *testing.T) {
	m := hex()
	plain := NewEngine(m, 0.06, Config{Contention: &ContentionConfig{}})
	traced := NewEngine(m, 0.06, Config{Contention: &ContentionConfig{}})
	traced.SetTracer(trace.New())

	claims := herdClaims(plain)
	tc := herdClaims(traced)
	for i := range claims {
		if !reflect.DeepEqual(*claims[i].Dec, *tc[i].Dec) {
			t.Fatalf("claim %d: traced Decide diverged: %+v vs %+v", i, tc[i].Dec, claims[i].Dec)
		}
	}
	if got, want := traced.Arbitrate(tc), plain.Arbitrate(claims); !reflect.DeepEqual(got, want) {
		t.Errorf("traced arbitration %v differs from untraced %v", got, want)
	}
}

// TestEnterRefreshKeepsPlacement pins the refresh fast path: re-entering a
// claim with an unchanged Algorithm 2 choice updates rates in place without
// re-arbitrating, so the task's mask is stable; a changed choice dirties
// the engine and the mask follows the new decision.
func TestEnterRefreshKeepsPlacement(t *testing.T) {
	m := quad()
	e := NewEngine(m, 0.06, Config{})
	dec := e.Decide([]float64{0.4, 0.9})
	e.Enter(1, dec)
	before := e.MaskFor(1)
	if before == 0 {
		t.Fatal("registered claim has zero mask")
	}

	// Refresh: same choice, drifted rates.
	refreshed := dec
	refreshed.Rates = append([]float64(nil), dec.Rates...)
	refreshed.Rates[int(dec.Choice)] *= 1.01
	e.Enter(1, refreshed)
	if got := e.MaskFor(1); got != before {
		t.Errorf("rate-only refresh moved the mask: %#x -> %#x", before, got)
	}

	// Changed choice: the mask must follow the new decision.
	flipped := e.Decide([]float64{0.9, 0.9})
	if flipped.Choice == dec.Choice {
		t.Fatalf("test IPC vectors map to one choice %v; cannot exercise the flip", dec.Choice)
	}
	e.Enter(1, flipped)
	if got, want := e.MaskFor(1), m.TypeMask(flipped.Choice); got != want {
		t.Errorf("after choice flip mask = %#x, want %#x", got, want)
	}
}

func TestTableQueries(t *testing.T) {
	tab := NewTable(2)
	if tab.Count(0, 0) != 0 {
		t.Error("empty table reports samples")
	}
	if tab.Ready(0, 1) {
		t.Error("empty table reports ready")
	}
	if tab.DecisionOf(0) != nil {
		t.Error("empty table reports a decision")
	}

	tab.Add(0, 0, 0.5)
	tab.Add(0, 0, 0.7)
	if got := tab.Count(0, 0); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
	if tab.Ready(0, 1) {
		t.Error("phase ready with an unsampled type")
	}
	tab.Add(0, 1, 0.9)
	if !tab.Ready(0, 1) {
		t.Error("phase not ready with every type sampled")
	}
	if tab.Ready(0, 2) {
		t.Error("phase ready at k=2 with a single-sample type")
	}

	// LeastMeasured prefers the unsampled type, round-robin from offset.
	if got := tab.LeastMeasured(0, 0); got != 1 {
		t.Errorf("LeastMeasured = %v, want the single-sample type 1", got)
	}
	// A fresh phase has all-zero counts: the offset breaks the tie.
	if got := tab.LeastMeasured(7, 1); got != 1 {
		t.Errorf("LeastMeasured tie from offset 1 = %v, want 1", got)
	}
	if got := tab.LeastMeasured(7, -3); got != 0 {
		t.Errorf("LeastMeasured with negative offset = %v, want 0", got)
	}

	dec := Decision{Choice: 1, Rates: []float64{1, 2}}
	tab.SetDecision(0, dec)
	got := tab.DecisionOf(0)
	if got == nil || got.Choice != dec.Choice {
		t.Errorf("DecisionOf = %+v, want choice %v", got, dec.Choice)
	}
}
