package cfg

import (
	"fmt"
	"sort"

	"phasetune/internal/prog"
)

// CallSite is one call instruction, located by its containing block.
type CallSite struct {
	// CallerProc and Block locate the KindCall node.
	CallerProc, Block int
	// Callee is the called procedure's index.
	Callee int
}

// CallGraph is the program's call graph with recursion (SCC) structure.
type CallGraph struct {
	// NumProcs is the number of procedures.
	NumProcs int
	// Callees[p] lists procedures called by p (deduplicated, sorted).
	Callees [][]int
	// Callers[p] lists procedures calling p (deduplicated, sorted).
	Callers [][]int
	// Sites lists every call site.
	Sites []CallSite
	// SCC[p] is the strongly-connected-component ID of procedure p.
	// Components are numbered in reverse topological order: callees'
	// components come before callers' (SCC IDs ascend bottom-up).
	SCC []int
	// NumSCCs is the number of components.
	NumSCCs int
}

// BuildAll constructs the CFG of every procedure in the program.
func BuildAll(p *prog.Program) ([]*Graph, error) {
	graphs := make([]*Graph, len(p.Procs))
	for i, pr := range p.Procs {
		g, err := Build(pr, i)
		if err != nil {
			return nil, fmt.Errorf("cfg: %s: %w", p.Name, err)
		}
		graphs[i] = g
	}
	return graphs, nil
}

// BuildCallGraph derives the call graph from per-procedure CFGs.
func BuildCallGraph(p *prog.Program, graphs []*Graph) *CallGraph {
	n := len(p.Procs)
	cg := &CallGraph{
		NumProcs: n,
		Callees:  make([][]int, n),
		Callers:  make([][]int, n),
	}
	calleeSet := make([]map[int]bool, n)
	callerSet := make([]map[int]bool, n)
	for i := 0; i < n; i++ {
		calleeSet[i] = map[int]bool{}
		callerSet[i] = map[int]bool{}
	}
	for pi, g := range graphs {
		for _, b := range g.Blocks {
			if b.Kind != KindCall {
				continue
			}
			cg.Sites = append(cg.Sites, CallSite{CallerProc: pi, Block: b.ID, Callee: b.CalleeProc})
			calleeSet[pi][b.CalleeProc] = true
			callerSet[b.CalleeProc][pi] = true
		}
	}
	for i := 0; i < n; i++ {
		cg.Callees[i] = setToSorted(calleeSet[i])
		cg.Callers[i] = setToSorted(callerSet[i])
	}
	cg.computeSCCs()
	return cg
}

func setToSorted(s map[int]bool) []int {
	out := make([]int, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// computeSCCs runs Tarjan's algorithm over the call graph. Tarjan emits
// components in reverse topological order, which is exactly the bottom-up
// order the paper's inter-procedural loop typing needs ("a bottom-up typing
// is performed with respect to the call graph", §II-A1c).
func (cg *CallGraph) computeSCCs() {
	n := cg.NumProcs
	cg.SCC = make([]int, n)
	for i := range cg.SCC {
		cg.SCC[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0

	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range cg.Callees[v] {
			if index[w] == -1 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				cg.SCC[w] = cg.NumSCCs
				if w == v {
					break
				}
			}
			cg.NumSCCs++
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			strongconnect(v)
		}
	}
}

// BottomUpOrder returns procedure indices so that, recursion aside, every
// callee precedes its callers (ascending SCC ID, then procedure index for
// determinism).
func (cg *CallGraph) BottomUpOrder() []int {
	order := make([]int, cg.NumProcs)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := order[a], order[b]
		if cg.SCC[pa] != cg.SCC[pb] {
			return cg.SCC[pa] < cg.SCC[pb]
		}
		return pa < pb
	})
	return order
}

// Recursive reports whether procedure p participates in recursion (its SCC
// has more than one member, or it calls itself).
func (cg *CallGraph) Recursive(p int) bool {
	for _, c := range cg.Callees[p] {
		if c == p {
			return true
		}
	}
	n := 0
	for q := 0; q < cg.NumProcs; q++ {
		if cg.SCC[q] == cg.SCC[p] {
			n++
			if n > 1 {
				return true
			}
		}
	}
	return false
}
