package cfg

import "sort"

// Interval is Allen's interval: "the maximal, single entry subgraph for which
// h is the entry node and in which all closed paths contain h" (Allen 1970,
// quoted in the paper §II-A1b).
type Interval struct {
	// ID indexes the interval in the partition.
	ID int
	// Header is the interval's entry block.
	Header int
	// Blocks is the member set, sorted ascending; the header is included.
	Blocks []int

	member map[int]bool
}

// Contains reports whether block b belongs to the interval.
func (iv *Interval) Contains(b int) bool { return iv.member[b] }

// NumInstrs returns the total instruction count of the interval.
func (iv *Interval) NumInstrs(g *Graph) int {
	n := 0
	for _, b := range iv.Blocks {
		n += g.Blocks[b].NumInstrs()
	}
	return n
}

// Intervals computes the unique partition of the reachable blocks into
// intervals using Allen's classic worklist algorithm:
//
//	H := {entry}
//	for each unprocessed h in H:
//	    I(h) := {h}
//	    add to I(h) any node whose predecessors all lie in I(h)
//	    add to H any node not yet in an interval with a predecessor in I(h)
//
// Every reachable block lands in exactly one interval.
func (g *Graph) Intervals() []*Interval {
	reachable := make([]bool, len(g.Blocks))
	for _, b := range g.RPO() {
		reachable[b] = true
	}

	inInterval := make([]bool, len(g.Blocks))
	isHeader := make([]bool, len(g.Blocks))
	var headers []int
	push := func(h int) {
		if !isHeader[h] {
			isHeader[h] = true
			headers = append(headers, h)
		}
	}
	push(g.Entry)

	var out []*Interval
	for qi := 0; qi < len(headers); qi++ {
		h := headers[qi]
		member := map[int]bool{h: true}
		inInterval[h] = true
		// Grow: add nodes all of whose predecessors are inside.
		for changed := true; changed; {
			changed = false
			for b := range g.Blocks {
				if !reachable[b] || member[b] || inInterval[b] || isHeader[b] {
					continue
				}
				preds := g.Blocks[b].Preds
				if len(preds) == 0 {
					continue
				}
				all := true
				for _, p := range preds {
					if !member[p] {
						all = false
						break
					}
				}
				if all {
					member[b] = true
					inInterval[b] = true
					changed = true
				}
			}
		}
		// New headers: nodes outside all intervals with a predecessor inside.
		for b := range g.Blocks {
			if !reachable[b] || inInterval[b] || isHeader[b] {
				continue
			}
			for _, p := range g.Blocks[b].Preds {
				if member[p] {
					push(b)
					break
				}
			}
		}
		blocks := make([]int, 0, len(member))
		for b := range member {
			blocks = append(blocks, b)
		}
		sort.Ints(blocks)
		out = append(out, &Interval{ID: len(out), Header: h, Blocks: blocks, member: member})
	}
	return out
}

// IntervalOf returns, for each block, the ID of its interval (or -1 for
// unreachable blocks).
func IntervalOf(g *Graph, ivs []*Interval) []int {
	of := make([]int, len(g.Blocks))
	for i := range of {
		of[i] = -1
	}
	for _, iv := range ivs {
		for _, b := range iv.Blocks {
			of[b] = iv.ID
		}
	}
	return of
}

// IntervalGraph is the derived (higher-order) graph whose nodes are the
// intervals of the underlying graph. Iterating the derivation yields Allen's
// interval sequence; a graph whose derivation reaches a single node is
// reducible. The paper's interval technique operates on the first-order
// graph, but the derived sequence is exposed for analysis and tests.
type IntervalGraph struct {
	// Intervals are the nodes.
	Intervals []*Interval
	// Succs and Preds are adjacency lists over interval IDs.
	Succs, Preds [][]int
	// Entry is the interval containing the original entry block.
	Entry int
}

// DeriveIntervalGraph builds the interval graph of g.
func DeriveIntervalGraph(g *Graph) *IntervalGraph {
	ivs := g.Intervals()
	of := IntervalOf(g, ivs)
	ig := &IntervalGraph{
		Intervals: ivs,
		Succs:     make([][]int, len(ivs)),
		Preds:     make([][]int, len(ivs)),
	}
	seen := map[[2]int]bool{}
	for _, e := range g.Edges {
		fi, ti := of[e.From], of[e.To]
		if fi == -1 || ti == -1 || fi == ti {
			continue
		}
		k := [2]int{fi, ti}
		if seen[k] {
			continue
		}
		seen[k] = true
		ig.Succs[fi] = append(ig.Succs[fi], ti)
		ig.Preds[ti] = append(ig.Preds[ti], fi)
	}
	for i := range ig.Succs {
		sort.Ints(ig.Succs[i])
		sort.Ints(ig.Preds[i])
	}
	ig.Entry = of[g.Entry]
	return ig
}

// Order returns the number of derivation steps needed to reduce g to a single
// interval, or -1 if the sequence stops shrinking first (irreducible graph).
// The first-order interval count is also returned.
func IntervalOrder(g *Graph) (order, firstOrderCount int) {
	ig := DeriveIntervalGraph(g)
	firstOrderCount = len(ig.Intervals)
	order = 1
	n := len(ig.Intervals)
	for n > 1 {
		next := deriveFromIntervalGraph(ig)
		if len(next.Intervals) == n {
			return -1, firstOrderCount
		}
		ig = next
		n = len(ig.Intervals)
		order++
	}
	return order, firstOrderCount
}

// deriveFromIntervalGraph applies one more interval derivation to an interval
// graph, treating intervals as atomic nodes.
func deriveFromIntervalGraph(ig *IntervalGraph) *IntervalGraph {
	// Build a temporary Graph shape with one synthetic block per interval.
	n := len(ig.Intervals)
	g := &Graph{Blocks: make([]*Block, n), Entry: ig.Entry}
	for i := 0; i < n; i++ {
		g.Blocks[i] = &Block{ID: i, CalleeProc: -1}
	}
	for from, succs := range ig.Succs {
		for _, to := range succs {
			g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
			g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
			g.Edges = append(g.Edges, Edge{From: from, To: to})
		}
	}
	return DeriveIntervalGraph(g)
}
