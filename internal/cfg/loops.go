package cfg

import "sort"

// Loop is a natural loop: the set of blocks on closed paths through a header
// reached by one or more back edges.
type Loop struct {
	// ID indexes the loop within the graph's loop forest.
	ID int
	// Header is the loop-header block ID (the target of the back edges).
	Header int
	// Blocks is the set of member block IDs, sorted ascending.
	Blocks []int
	// Parent is the ID of the innermost enclosing loop, or -1.
	Parent int
	// Children lists directly nested loops.
	Children []int
	// Depth is the nesting depth (outermost loops have depth 0).
	Depth int

	member map[int]bool
}

// Contains reports whether block b belongs to the loop.
func (l *Loop) Contains(b int) bool { return l.member[b] }

// NumInstrs returns the total instruction count of the loop body.
func (l *Loop) NumInstrs(g *Graph) int {
	n := 0
	for _, b := range l.Blocks {
		n += g.Blocks[b].NumInstrs()
	}
	return n
}

// NaturalLoops finds all natural loops of the graph using the classic
// back-edge algorithm (Muchnick §7.4): for each back edge u->h, the loop with
// header h includes h, u, and every block that reaches u without passing
// through h. Loops sharing a header are merged. The returned forest is sorted
// so that enclosing loops precede their children.
func (g *Graph) NaturalLoops() []*Loop {
	bodies := map[int]map[int]bool{} // header -> member set
	for _, e := range g.Edges {
		if !e.Back {
			continue
		}
		h, u := e.To, e.From
		body := bodies[h]
		if body == nil {
			body = map[int]bool{h: true}
			bodies[h] = body
		}
		// Backward flood from u, stopping at h.
		stack := []int{u}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if body[x] {
				continue
			}
			body[x] = true
			for _, p := range g.Blocks[x].Preds {
				if !body[p] {
					stack = append(stack, p)
				}
			}
		}
	}

	headers := make([]int, 0, len(bodies))
	for h := range bodies {
		headers = append(headers, h)
	}
	sort.Ints(headers)

	loops := make([]*Loop, 0, len(headers))
	for _, h := range headers {
		body := bodies[h]
		blocks := make([]int, 0, len(body))
		for b := range body {
			blocks = append(blocks, b)
		}
		sort.Ints(blocks)
		loops = append(loops, &Loop{
			ID:     len(loops),
			Header: h,
			Blocks: blocks,
			Parent: -1,
			member: body,
		})
	}

	// Nesting: loop A is nested in B when A's blocks are a subset of B's and
	// A != B. With merged headers, subset ordering is a forest. The innermost
	// strict superset is the parent.
	for _, a := range loops {
		best := -1
		for _, b := range loops {
			if a == b || len(b.Blocks) <= len(a.Blocks) {
				continue
			}
			if !subset(a.member, b.member) {
				continue
			}
			if best == -1 || len(loops[best].Blocks) > len(b.Blocks) {
				best = b.ID
			}
		}
		a.Parent = best
	}
	for _, l := range loops {
		if l.Parent != -1 {
			loops[l.Parent].Children = append(loops[l.Parent].Children, l.ID)
		}
	}
	// Depths, outside-in.
	var setDepth func(id, d int)
	setDepth = func(id, d int) {
		loops[id].Depth = d
		for _, c := range loops[id].Children {
			setDepth(c, d+1)
		}
	}
	for _, l := range loops {
		if l.Parent == -1 {
			setDepth(l.ID, 0)
		}
	}
	return loops
}

// subset reports whether a ⊆ b.
func subset(a, b map[int]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// LoopDepth returns, for each block, the number of loops containing it
// (0 for blocks outside all loops).
func LoopDepth(g *Graph, loops []*Loop) []int {
	depth := make([]int, len(g.Blocks))
	for _, l := range loops {
		for _, b := range l.Blocks {
			depth[b]++
		}
	}
	return depth
}

// InnermostLoop returns, for each block, the ID of the innermost loop
// containing it, or -1.
func InnermostLoop(g *Graph, loops []*Loop) []int {
	inner := make([]int, len(g.Blocks))
	for i := range inner {
		inner[i] = -1
	}
	for _, l := range loops {
		for _, b := range l.Blocks {
			cur := inner[b]
			if cur == -1 || len(loops[cur].Blocks) > len(l.Blocks) {
				inner[b] = l.ID
			}
		}
	}
	return inner
}
