package cfg

import (
	"testing"

	"phasetune/internal/isa"
	"phasetune/internal/prog"
)

// buildProc builds a CFG directly from raw instructions.
func buildProc(t *testing.T, instrs []isa.Instruction) *Graph {
	t.Helper()
	g, err := Build(&prog.Procedure{Name: "p", Instrs: instrs}, 0)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// loopProc is a classic while-loop shape:
//
//	0: intalu            (B0: preheader)
//	1: intalu            (B1: loop header/body start)
//	2: load
//	3: branch -> 1       (back edge)
//	4: intalu            (B2: exit)
//	5: ret
func loopProc(t *testing.T) *Graph {
	return buildProc(t, []isa.Instruction{
		{Op: isa.IntALU},
		{Op: isa.IntALU},
		{Op: isa.Load},
		{Op: isa.Branch, Target: 1, TakenProb: 0.9},
		{Op: isa.IntALU},
		{Op: isa.Ret},
	})
}

func TestBasicBlockBoundaries(t *testing.T) {
	g := loopProc(t)
	if len(g.Blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(g.Blocks))
	}
	wantRanges := [][2]int{{0, 1}, {1, 4}, {4, 6}}
	for i, w := range wantRanges {
		if g.Blocks[i].Start != w[0] || g.Blocks[i].End != w[1] {
			t.Errorf("block %d = [%d,%d), want [%d,%d)", i, g.Blocks[i].Start, g.Blocks[i].End, w[0], w[1])
		}
	}
}

func TestEdgesAndBackEdgeClassification(t *testing.T) {
	g := loopProc(t)
	// B0->B1 forward, B1->B1 back, B1->B2 forward.
	if !g.BackEdge(1, 1) {
		t.Error("self loop edge not classified as back edge")
	}
	if g.BackEdge(0, 1) {
		t.Error("entry edge misclassified as back edge")
	}
	if g.BackEdge(1, 2) {
		t.Error("exit edge misclassified as back edge")
	}
}

func TestDominators(t *testing.T) {
	g := loopProc(t)
	idom := g.Idom()
	if idom[0] != 0 {
		t.Errorf("idom[entry] = %d, want entry", idom[0])
	}
	if idom[1] != 0 || idom[2] != 1 {
		t.Errorf("idom = %v, want [0 0 1]", idom)
	}
	if !g.Dominates(0, 2) || !g.Dominates(1, 2) || g.Dominates(2, 1) {
		t.Error("Dominates relation incorrect")
	}
}

// diamond builds an if/else diamond:
//
//	0: branch -> 3   (B0)
//	1: intalu        (B1: else)
//	2: jump -> 4
//	3: fpadd         (B2: then)
//	4: intalu        (B3: join)
//	5: ret
func diamond(t *testing.T) *Graph {
	return buildProc(t, []isa.Instruction{
		{Op: isa.Branch, Target: 3, TakenProb: 0.5},
		{Op: isa.IntALU},
		{Op: isa.Jump, Target: 4},
		{Op: isa.FPAdd},
		{Op: isa.IntALU},
		{Op: isa.Ret},
	})
}

func TestDiamondDominators(t *testing.T) {
	g := diamond(t)
	if len(g.Blocks) != 4 {
		t.Fatalf("got %d blocks, want 4", len(g.Blocks))
	}
	idom := g.Idom()
	// Join block (B3) is dominated by the branch (B0), not by either arm.
	if idom[3] != 0 {
		t.Errorf("idom[join] = %d, want 0", idom[3])
	}
	for _, e := range g.Edges {
		if e.Back {
			t.Errorf("diamond has no back edges, found %v", e)
		}
	}
}

func TestCallMakesSpecialNode(t *testing.T) {
	g := buildProc(t, []isa.Instruction{
		{Op: isa.IntALU},
		{Op: isa.Call, Target: 0},
		{Op: isa.IntALU},
		{Op: isa.Ret},
	})
	if len(g.Blocks) != 3 {
		t.Fatalf("got %d blocks, want 3 (normal, call, normal)", len(g.Blocks))
	}
	if g.Blocks[1].Kind != KindCall || g.Blocks[1].NumInstrs() != 1 {
		t.Errorf("call block kind=%v size=%d, want call node of size 1", g.Blocks[1].Kind, g.Blocks[1].NumInstrs())
	}
	if g.Blocks[1].CalleeProc != 0 {
		t.Errorf("CalleeProc = %d, want 0", g.Blocks[1].CalleeProc)
	}
	if g.Blocks[0].Kind != KindNormal || g.Blocks[2].Kind != KindNormal {
		t.Error("non-call blocks misclassified")
	}
}

func TestSyscallMakesSpecialNode(t *testing.T) {
	g := buildProc(t, []isa.Instruction{
		{Op: isa.Syscall},
		{Op: isa.Ret},
	})
	if g.Blocks[0].Kind != KindSyscall {
		t.Errorf("kind = %v, want syscall", g.Blocks[0].Kind)
	}
}

func TestRPOStartsAtEntry(t *testing.T) {
	g := diamond(t)
	rpo := g.RPO()
	if rpo[0] != g.Entry {
		t.Errorf("RPO[0] = %d, want entry %d", rpo[0], g.Entry)
	}
	if len(rpo) != len(g.Blocks) {
		t.Errorf("RPO covers %d blocks, want %d", len(rpo), len(g.Blocks))
	}
}

func TestNaturalLoopsSimple(t *testing.T) {
	g := loopProc(t)
	loops := g.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != 1 {
		t.Errorf("loop header = %d, want 1", l.Header)
	}
	if len(l.Blocks) != 1 || l.Blocks[0] != 1 {
		t.Errorf("loop blocks = %v, want [1]", l.Blocks)
	}
	if l.Parent != -1 || l.Depth != 0 {
		t.Errorf("loop nesting = parent %d depth %d, want -1, 0", l.Parent, l.Depth)
	}
}

// nestedLoops builds two nested loops via the builder.
func nestedLoops(t *testing.T) *Graph {
	t.Helper()
	b := prog.NewBuilder("nest")
	main := b.Proc("main")
	main.Loop(5, func(pb *prog.ProcBuilder) {
		pb.Straight(prog.BlockMix{IntALU: 2})
		pb.Loop(20, func(pb *prog.ProcBuilder) {
			pb.Straight(prog.BlockMix{Load: 3, WorkingSetKB: 512, Locality: 0.4})
		})
		pb.Straight(prog.BlockMix{IntALU: 1})
	})
	main.Ret()
	p := b.MustBuild()
	g, err := Build(p.Procs[0], 0)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestNestedLoopForest(t *testing.T) {
	g := nestedLoops(t)
	loops := g.NaturalLoops()
	if len(loops) != 2 {
		t.Fatalf("got %d loops, want 2", len(loops))
	}
	var outer, inner *Loop
	for _, l := range loops {
		if len(l.Blocks) > 1 {
			outer = l
		} else {
			inner = l
		}
	}
	if outer == nil || inner == nil {
		t.Fatalf("could not identify outer/inner loops: %+v", loops)
	}
	if inner.Parent != outer.ID {
		t.Errorf("inner.Parent = %d, want %d", inner.Parent, outer.ID)
	}
	if inner.Depth != 1 || outer.Depth != 0 {
		t.Errorf("depths inner=%d outer=%d, want 1, 0", inner.Depth, outer.Depth)
	}
	for _, b := range inner.Blocks {
		if !outer.Contains(b) {
			t.Errorf("inner block %d not contained in outer loop", b)
		}
	}
}

func TestLoopDepthAndInnermost(t *testing.T) {
	g := nestedLoops(t)
	loops := g.NaturalLoops()
	depth := LoopDepth(g, loops)
	inner := InnermostLoop(g, loops)
	maxDepth := 0
	for _, d := range depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth != 2 {
		t.Errorf("max loop depth = %d, want 2", maxDepth)
	}
	for b, l := range inner {
		if depth[b] == 0 && l != -1 {
			t.Errorf("block %d outside loops has innermost loop %d", b, l)
		}
		if depth[b] > 0 && l == -1 {
			t.Errorf("block %d inside loops has no innermost loop", b)
		}
	}
}

func TestIntervalsPartition(t *testing.T) {
	for name, g := range map[string]*Graph{
		"loop":    loopProc(t),
		"diamond": diamond(t),
		"nested":  nestedLoops(t),
	} {
		ivs := g.Intervals()
		seen := map[int]int{}
		for _, iv := range ivs {
			for _, b := range iv.Blocks {
				seen[b]++
			}
		}
		for _, b := range g.RPO() {
			if seen[b] != 1 {
				t.Errorf("%s: block %d appears in %d intervals, want exactly 1", name, b, seen[b])
			}
		}
	}
}

func TestIntervalSingleEntry(t *testing.T) {
	g := nestedLoops(t)
	ivs := g.Intervals()
	for _, iv := range ivs {
		// No member other than the header may have a predecessor outside the
		// interval.
		for _, b := range iv.Blocks {
			if b == iv.Header {
				continue
			}
			for _, p := range g.Blocks[b].Preds {
				if !iv.Contains(p) {
					t.Errorf("interval %d: non-header block %d has external pred %d", iv.ID, b, p)
				}
			}
		}
	}
}

func TestIntervalCapturesLoop(t *testing.T) {
	// In a while loop, the interval headed at the loop header contains the
	// whole loop body (paper: "even with 1st order interval graphs, the
	// intervals frequently capture small loops").
	g := loopProc(t)
	ivs := g.Intervals()
	of := IntervalOf(g, ivs)
	if of[1] == -1 {
		t.Fatal("loop body not in any interval")
	}
}

func TestReducibleGraphReducesToOneInterval(t *testing.T) {
	for name, g := range map[string]*Graph{
		"loop":    loopProc(t),
		"diamond": diamond(t),
		"nested":  nestedLoops(t),
	} {
		order, _ := IntervalOrder(g)
		if order < 1 {
			t.Errorf("%s: interval order = %d, want >= 1 (reducible)", name, order)
		}
	}
}

func TestCallGraph(t *testing.T) {
	b := prog.NewBuilder("cg")
	leaf := b.Proc("leaf")
	leaf.Straight(prog.BlockMix{IntALU: 1}).Ret()
	mid := b.Proc("mid")
	mid.CallProc("leaf").Ret()
	main := b.Proc("main")
	b.SetEntry("main")
	main.CallProc("mid").CallProc("leaf").Ret()
	p := b.MustBuild()

	graphs, err := BuildAll(p)
	if err != nil {
		t.Fatalf("BuildAll: %v", err)
	}
	cg := BuildCallGraph(p, graphs)
	if len(cg.Sites) != 3 {
		t.Errorf("got %d call sites, want 3", len(cg.Sites))
	}
	mainIdx, midIdx, leafIdx := 2, 1, 0
	order := cg.BottomUpOrder()
	pos := map[int]int{}
	for i, pi := range order {
		pos[pi] = i
	}
	if pos[leafIdx] > pos[midIdx] || pos[midIdx] > pos[mainIdx] {
		t.Errorf("bottom-up order %v does not place callees first", order)
	}
	if cg.Recursive(mainIdx) || cg.Recursive(leafIdx) {
		t.Error("non-recursive procedures reported recursive")
	}
}

func TestCallGraphRecursion(t *testing.T) {
	b := prog.NewBuilder("rec")
	even := b.Proc("even")
	odd := b.Proc("odd")
	b.SetEntry("even")
	even.IfElse(0.5,
		func(pb *prog.ProcBuilder) { pb.CallProc("odd") },
		func(pb *prog.ProcBuilder) { pb.Straight(prog.BlockMix{IntALU: 1}) },
	)
	even.Ret()
	odd.CallProc("even").Ret()
	p := b.MustBuild()
	graphs, err := BuildAll(p)
	if err != nil {
		t.Fatalf("BuildAll: %v", err)
	}
	cg := BuildCallGraph(p, graphs)
	if !cg.Recursive(0) || !cg.Recursive(1) {
		t.Error("mutual recursion not detected")
	}
	if cg.SCC[0] != cg.SCC[1] {
		t.Errorf("mutually recursive procs in different SCCs: %v", cg.SCC)
	}
}

func TestPredsSuccsConsistent(t *testing.T) {
	g := nestedLoops(t)
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			found := false
			for _, p := range g.Blocks[s].Preds {
				if p == b.ID {
					found = true
				}
			}
			if !found {
				t.Errorf("edge %d->%d missing from Preds", b.ID, s)
			}
		}
	}
	if len(g.Edges) == 0 {
		t.Error("no edges recorded")
	}
}

func TestBlockOf(t *testing.T) {
	g := loopProc(t)
	for _, b := range g.Blocks {
		for i := b.Start; i < b.End; i++ {
			if g.BlockOf(i) != b.ID {
				t.Errorf("BlockOf(%d) = %d, want %d", i, g.BlockOf(i), b.ID)
			}
		}
	}
}

func TestMixAndSize(t *testing.T) {
	g := loopProc(t)
	m := g.Blocks[1].Mix()
	if m.Counts[isa.Load] != 1 || m.Counts[isa.Branch] != 1 || m.Counts[isa.IntALU] != 1 {
		t.Errorf("block mix wrong: %+v", m.Counts)
	}
	if g.SizeBytes() != 3+3+4+2+3+1 {
		t.Errorf("SizeBytes = %d", g.SizeBytes())
	}
}
