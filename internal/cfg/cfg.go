// Package cfg builds and analyzes control-flow graphs over program images.
//
// It provides the static program structure the paper's phase-transition
// analysis (§II-A) is defined on: basic blocks with one entry and one exit
// (Allen's classic definition), special nodes for calls and syscalls,
// forward/backward edge classification, dominators, natural loops with their
// nesting forest, Allen's interval partition, and the inter-procedural call
// graph.
package cfg

import (
	"fmt"

	"phasetune/internal/isa"
	"phasetune/internal/prog"
)

// BlockKind distinguishes ordinary basic blocks from the special CFG nodes
// the paper ranges over with S (procedure invocations and system calls).
type BlockKind uint8

const (
	// KindNormal is an ordinary basic block.
	KindNormal BlockKind = iota
	// KindCall is a special node holding exactly one Call instruction.
	KindCall
	// KindSyscall is a special node holding exactly one Syscall instruction.
	KindSyscall
)

func (k BlockKind) String() string {
	switch k {
	case KindNormal:
		return "normal"
	case KindCall:
		return "call"
	case KindSyscall:
		return "syscall"
	}
	return fmt.Sprintf("blockkind(%d)", uint8(k))
}

// Block is a node of the intra-procedural CFG.
type Block struct {
	// ID is the block's index in Graph.Blocks.
	ID int
	// Kind classifies the node (normal, call, syscall).
	Kind BlockKind
	// Start and End delimit the instruction range [Start, End) in the
	// procedure's instruction array.
	Start, End int
	// Instrs is the instruction slice (a view into the procedure).
	Instrs []isa.Instruction
	// Succs and Preds list successor and predecessor block IDs in
	// deterministic order.
	Succs, Preds []int
	// CalleeProc is the callee procedure index for KindCall blocks, else -1.
	CalleeProc int
}

// NumInstrs returns the number of instructions in the block.
func (b *Block) NumInstrs() int { return b.End - b.Start }

// SizeBytes returns the encoded size of the block.
func (b *Block) SizeBytes() int {
	n := 0
	for _, in := range b.Instrs {
		n += in.SizeBytes()
	}
	return n
}

// Mix returns the instruction-class histogram of the block.
func (b *Block) Mix() isa.Mix {
	var m isa.Mix
	for _, in := range b.Instrs {
		m.Add(in.Op)
	}
	return m
}

// Edge is a directed control-flow edge. Back reports the paper's b/f edge
// attribute: an edge is backward when its target dominates its source
// (equivalently, when it closes a natural loop in a reducible graph).
type Edge struct {
	From, To int
	Back     bool
}

// Graph is an attributed intra-procedural control-flow graph.
type Graph struct {
	// ProcIndex is the procedure's index within its program.
	ProcIndex int
	// ProcName is the procedure's name, for diagnostics.
	ProcName string
	// Blocks lists the nodes; Blocks[i].ID == i.
	Blocks []*Block
	// Entry is the entry block ID (always 0: the block at instruction 0).
	Entry int
	// Edges lists all edges with their back/forward classification.
	Edges []Edge

	instrToBlock []int // instruction index -> block ID
	idom         []int // immediate dominators, computed lazily
	rpo          []int // reverse postorder, computed lazily
}

// Build constructs the CFG of a procedure.
//
// Leader rules: instruction 0; any branch/jump target; any instruction
// following a control transfer or syscall. Call and Syscall instructions
// additionally form their own single-instruction special nodes.
func Build(p *prog.Procedure, procIndex int) (*Graph, error) {
	n := len(p.Instrs)
	if n == 0 {
		return nil, fmt.Errorf("cfg: procedure %q is empty", p.Name)
	}
	leader := make([]bool, n)
	leader[0] = true
	for i, in := range p.Instrs {
		switch in.Op {
		case isa.Branch, isa.Jump:
			if in.Target < 0 || in.Target >= n {
				return nil, fmt.Errorf("cfg: %s+%d: target %d out of range", p.Name, i, in.Target)
			}
			leader[in.Target] = true
			if i+1 < n {
				leader[i+1] = true
			}
		case isa.Call, isa.Syscall:
			// Special nodes: the call itself starts a block, and so does the
			// instruction after it.
			leader[i] = true
			if i+1 < n {
				leader[i+1] = true
			}
		case isa.Ret:
			if i+1 < n {
				leader[i+1] = true
			}
		}
	}

	g := &Graph{ProcIndex: procIndex, ProcName: p.Name, instrToBlock: make([]int, n)}
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || leader[i] {
			b := &Block{
				ID:         len(g.Blocks),
				Start:      start,
				End:        i,
				Instrs:     p.Instrs[start:i],
				CalleeProc: -1,
			}
			switch p.Instrs[start].Op {
			case isa.Call:
				b.Kind = KindCall
				b.CalleeProc = p.Instrs[start].Target
			case isa.Syscall:
				b.Kind = KindSyscall
			}
			g.Blocks = append(g.Blocks, b)
			for j := start; j < i; j++ {
				g.instrToBlock[j] = b.ID
			}
			start = i
		}
	}

	// Successor edges. Fallthrough first, then the taken target, so the
	// interpreter's "not taken" path is Succs[0] for branch-terminated blocks.
	for _, b := range g.Blocks {
		last := b.Instrs[len(b.Instrs)-1]
		switch last.Op {
		case isa.Branch:
			if b.End < n {
				g.addEdge(b.ID, g.instrToBlock[b.End])
			}
			g.addEdge(b.ID, g.instrToBlock[last.Target])
		case isa.Jump:
			g.addEdge(b.ID, g.instrToBlock[last.Target])
		case isa.Ret:
			// No intra-procedural successor.
		default:
			// Fallthrough (including after Call/Syscall special nodes).
			if b.End < n {
				g.addEdge(b.ID, g.instrToBlock[b.End])
			}
		}
	}

	g.classifyEdges()
	return g, nil
}

// addEdge appends an edge, deduplicating parallel edges (a branch whose taken
// and fallthrough targets coincide).
func (g *Graph) addEdge(from, to int) {
	for _, s := range g.Blocks[from].Succs {
		if s == to {
			return
		}
	}
	g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
	g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
	g.Edges = append(g.Edges, Edge{From: from, To: to})
}

// BlockOf returns the block ID containing instruction index i.
func (g *Graph) BlockOf(i int) int { return g.instrToBlock[i] }

// RPO returns the reverse postorder of blocks reachable from the entry.
func (g *Graph) RPO() []int {
	if g.rpo != nil {
		return g.rpo
	}
	seen := make([]bool, len(g.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(u int) {
		seen[u] = true
		for _, v := range g.Blocks[u].Succs {
			if !seen[v] {
				dfs(v)
			}
		}
		post = append(post, u)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	g.rpo = post
	return post
}

// Reachable reports whether block b is reachable from the entry.
func (g *Graph) Reachable(b int) bool {
	for _, u := range g.RPO() {
		if u == b {
			return true
		}
	}
	return false
}

// Idom returns the immediate-dominator array: Idom()[b] is the immediate
// dominator of block b, with Idom()[entry] == entry and -1 for unreachable
// blocks. Uses the Cooper-Harvey-Kennedy iterative algorithm.
func (g *Graph) Idom() []int {
	if g.idom != nil {
		return g.idom
	}
	rpo := g.RPO()
	order := make([]int, len(g.Blocks)) // block -> RPO position
	for i := range order {
		order[i] = -1
	}
	for i, b := range rpo {
		order[b] = i
	}
	idom := make([]int, len(g.Blocks))
	for i := range idom {
		idom[i] = -1
	}
	idom[g.Entry] = g.Entry

	intersect := func(a, b int) int {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == g.Entry {
				continue
			}
			newIdom := -1
			for _, p := range g.Blocks[b].Preds {
				if idom[p] == -1 {
					continue // unreachable or not yet processed
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	g.idom = idom
	return idom
}

// Dominates reports whether block a dominates block b.
func (g *Graph) Dominates(a, b int) bool {
	idom := g.Idom()
	if idom[b] == -1 {
		return false
	}
	for {
		if b == a {
			return true
		}
		if b == g.Entry {
			return false
		}
		b = idom[b]
	}
}

// classifyEdges sets Edge.Back for edges whose target dominates their source.
func (g *Graph) classifyEdges() {
	for i := range g.Edges {
		e := &g.Edges[i]
		if g.Reachable(e.From) && g.Dominates(e.To, e.From) {
			e.Back = true
		}
	}
}

// BackEdge reports whether the edge from -> to is a back edge.
func (g *Graph) BackEdge(from, to int) bool {
	for _, e := range g.Edges {
		if e.From == from && e.To == to {
			return e.Back
		}
	}
	return false
}

// ForwardSuccs returns the successors of b reachable via forward edges, in
// deterministic order.
func (g *Graph) ForwardSuccs(b int) []int {
	var out []int
	for _, s := range g.Blocks[b].Succs {
		if !g.BackEdge(b, s) {
			out = append(out, s)
		}
	}
	return out
}

// SizeBytes returns the encoded size of all blocks.
func (g *Graph) SizeBytes() int {
	n := 0
	for _, b := range g.Blocks {
		n += b.SizeBytes()
	}
	return n
}
