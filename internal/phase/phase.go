// Package phase assigns phase types to basic blocks.
//
// A phase type (the paper's π ∈ Π) is a label suggesting that two sections
// of code are likely to exhibit similar runtime characteristics. The paper's
// proof-of-concept static typing (§II-A3) places each block in a
// two-dimensional space — a combination of instruction types on one axis and
// a rough estimate of cache behavior from reuse distances on the other — and
// groups blocks with k-means. This package implements that typing, plus:
//
//   - an "oracle" typing built from observed per-core-type IPC profiles with
//     an IPC threshold, mirroring the paper's evaluation setup ("to determine
//     basic block types for our static analysis with little to no error, we
//     use an execution profile from each core", §IV-A1);
//   - controlled clustering-error injection, used by the Fig. 7 experiment
//     ("a percentage of blocks were randomly selected and placed into the
//     opposite cluster").
package phase

import (
	"fmt"

	"phasetune/internal/cfg"
	"phasetune/internal/cluster"
	"phasetune/internal/isa"
	"phasetune/internal/prog"
	"phasetune/internal/reuse"
	"phasetune/internal/rng"
)

// Type is a phase type. Valid types are >= 0; Untyped marks blocks excluded
// from typing (too small, or unknown targets per §II-A1a).
type Type int

// Untyped marks a block with no phase type.
const Untyped Type = -1

// BlockKey identifies a basic block program-wide.
type BlockKey struct {
	// Proc is the procedure index, Block the block ID within its CFG.
	Proc, Block int
}

// Features is the paper's two-dimensional feature space for a block.
type Features struct {
	// MemIntensity is the fraction of instructions referencing memory,
	// summarizing the block's instruction-type composition.
	MemIntensity float64
	// CacheBadness estimates how badly the block's references behave in a
	// reference-sized cache: L1-miss fraction times the expected miss ratio
	// of a nominal shared cache, from the reuse-distance model.
	CacheBadness float64
}

// ReferenceCacheKB is the nominal cache size the static cache-behavior
// estimate is evaluated against. The value matches the per-pair L2 of the
// paper's evaluation machine (Core 2 Quad: 4 MiB per core pair).
const ReferenceCacheKB = 4096

// BlockFeatures extracts the feature vector of one block.
func BlockFeatures(b *cfg.Block) Features {
	m := b.Mix()
	total := m.Total()
	if total == 0 {
		return Features{}
	}
	memOps := m.MemOps()
	prof := BlockProfile(b)
	badness := prof.L1MissFraction() * prof.MissRatio(ReferenceCacheKB)
	return Features{
		MemIntensity: float64(memOps) / float64(total),
		CacheBadness: badness,
	}
}

// BlockProfile aggregates the locality descriptors of a block's memory
// instructions into a single reuse profile.
func BlockProfile(b *cfg.Block) reuse.Profile {
	var prof reuse.Profile
	n := 0
	for _, in := range b.Instrs {
		if !in.Op.IsMemory() {
			continue
		}
		p := reuse.Profile{WorkingSetKB: in.Mem.WorkingSetKB, Locality: in.Mem.Locality}
		prof = reuse.Combine(prof, n, p, 1)
		n++
	}
	return prof
}

// Typing maps blocks to phase types.
type Typing struct {
	// K is the number of phase types.
	K int
	// Types maps each block to its type; blocks absent from the map are
	// untyped.
	Types map[BlockKey]Type
}

// TypeOf returns the block's phase type, or Untyped.
func (t *Typing) TypeOf(k BlockKey) Type {
	if ty, ok := t.Types[k]; ok {
		return ty
	}
	return Untyped
}

// Clone returns a deep copy.
func (t *Typing) Clone() *Typing {
	c := &Typing{K: t.K, Types: make(map[BlockKey]Type, len(t.Types))}
	for k, v := range t.Types {
		c.Types[k] = v
	}
	return c
}

// Options configures ClusterBlocks.
type Options struct {
	// K is the number of phase types (clusters). The paper notes two core
	// types suffice in practice (§VI-C); K defaults to 2.
	K int
	// MinBlockInstrs excludes blocks smaller than this from typing (the
	// paper's threshold-size filter, Fig. 1 step 2). Zero types every block.
	MinBlockInstrs int
	// Seed drives k-means seeding.
	Seed uint64
	// MergeEps collapses clusters whose centroids are closer than this
	// Euclidean distance in feature space. Programs with genuinely uniform
	// behavior (the paper's zero-switch benchmarks: 459.GemsFDTD, 473.astar)
	// must end up with a single phase type rather than an arbitrary split of
	// near-identical blocks. Negative disables; zero uses DefaultMergeEps.
	MergeEps float64
}

// DefaultMergeEps is the default centroid-merge distance. Features live in
// [0,1]^2; genuinely distinct behaviors (compute vs. memory) sit >= 0.3
// apart, while k-means splits of a single behavioral cloud land around
// 0.1-0.15, so 0.18 separates the two regimes.
const DefaultMergeEps = 0.18

// ClusterBlocks performs the paper's static block typing: extract features
// for every sufficiently large block and cluster them with k-means.
func ClusterBlocks(p *prog.Program, graphs []*cfg.Graph, opts Options) (*Typing, error) {
	if opts.K <= 0 {
		opts.K = 2
	}
	var keys []BlockKey
	var pts []cluster.Point
	for pi, g := range graphs {
		for _, b := range g.Blocks {
			if b.NumInstrs() < opts.MinBlockInstrs {
				continue
			}
			if b.Kind != cfg.KindNormal {
				continue // call/syscall special nodes carry no mix of their own
			}
			f := BlockFeatures(b)
			keys = append(keys, BlockKey{Proc: pi, Block: b.ID})
			pts = append(pts, cluster.Point{f.MemIntensity, f.CacheBadness})
		}
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("phase: program %q has no blocks of at least %d instructions", p.Name, opts.MinBlockInstrs)
	}
	k := opts.K
	if k > len(pts) {
		k = len(pts)
	}
	res, err := cluster.KMeans(pts, k, rng.New(opts.Seed), 0)
	if err != nil {
		return nil, fmt.Errorf("phase: clustering %q: %w", p.Name, err)
	}
	// Collapse behaviorally indistinguishable clusters.
	eps := opts.MergeEps
	if eps == 0 {
		eps = DefaultMergeEps
	}
	assign, centroids := mergeClose(res.Assign, res.Centroids, eps)
	// Canonicalize labels so type IDs are stable across runs and machines:
	// order clusters by ascending centroid memory intensity (type 0 =
	// compute-leaning, higher types = memory-leaning).
	relabel := canonicalOrder(centroids)
	effK := len(centroids)
	ty := &Typing{K: effK, Types: make(map[BlockKey]Type, len(keys))}
	for i, key := range keys {
		ty.Types[key] = Type(relabel[assign[i]])
	}
	return ty, nil
}

// mergeClose unions clusters whose centroids lie within eps of each other
// and compacts labels, returning the new assignment and centroid list.
func mergeClose(assign []int, centroids []cluster.Point, eps float64) ([]int, []cluster.Point) {
	if eps <= 0 || len(centroids) < 2 {
		return assign, centroids
	}
	k := len(centroids)
	parent := make([]int, k)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	dist2 := func(a, b cluster.Point) float64 {
		s := 0.0
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return s
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if dist2(centroids[i], centroids[j]) <= eps*eps {
				parent[find(j)] = find(i)
			}
		}
	}
	// Compact roots to 0..m-1.
	compact := map[int]int{}
	var merged []cluster.Point
	for i := 0; i < k; i++ {
		r := find(i)
		if _, ok := compact[r]; !ok {
			compact[r] = len(merged)
			merged = append(merged, centroids[r])
		}
	}
	out := make([]int, len(assign))
	for i, a := range assign {
		out[i] = compact[find(a)]
	}
	return out, merged
}

// canonicalOrder returns a relabeling old->new ordering clusters by centroid
// (memory intensity, then cache badness).
func canonicalOrder(centroids []cluster.Point) []int {
	n := len(centroids)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := centroids[order[i]], centroids[order[j]]
			if b[0] < a[0] || (b[0] == a[0] && b[1] < a[1]) {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	relabel := make([]int, n)
	for newID, oldID := range order {
		relabel[oldID] = newID
	}
	return relabel
}

// InjectError returns a copy of the typing with a fraction of typed blocks
// moved to a different (cyclically next) type — the paper's Fig. 7
// clustering-error protocol. frac is clamped to [0, 1].
func (t *Typing) InjectError(frac float64, r *rng.Source) *Typing {
	if frac < 0 {
		frac = 0
	} else if frac > 1 {
		frac = 1
	}
	c := t.Clone()
	if c.K < 2 {
		return c
	}
	// Deterministic order over map keys.
	keys := make([]BlockKey, 0, len(c.Types))
	for k := range c.Types {
		keys = append(keys, k)
	}
	sortKeys(keys)
	n := int(frac * float64(len(keys)))
	perm := r.Perm(len(keys))
	for i := 0; i < n; i++ {
		k := keys[perm[i]]
		c.Types[k] = (c.Types[k] + 1) % Type(c.K)
	}
	return c
}

// sortKeys orders BlockKeys lexicographically.
func sortKeys(keys []BlockKey) {
	// Insertion-free: simple sort via the standard library would need a
	// comparator closure; keep it explicit.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && less(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

func less(a, b BlockKey) bool {
	if a.Proc != b.Proc {
		return a.Proc < b.Proc
	}
	return a.Block < b.Block
}

// OracleTyping builds a typing from observed per-core-type IPC, the paper's
// low-error evaluation configuration: blocks whose IPC difference between
// core types exceeds ipcThreshold are typed by which core type favors them;
// the rest are typed by their better core with type 0.
//
// ipcByType maps each block to its measured IPC per core type (outer index:
// core type). Blocks missing from the map are left untyped.
func OracleTyping(ipcByType map[BlockKey][]float64, ipcThreshold float64) *Typing {
	ty := &Typing{K: 2, Types: map[BlockKey]Type{}}
	for k, ipcs := range ipcByType {
		if len(ipcs) < 2 {
			continue
		}
		// Type 0: compute-leaning (fast core at least as good: IPC gap below
		// threshold). Type 1: memory-leaning (slower core wins by more than
		// the threshold). Core type 0 is the fast type by amp convention.
		if ipcs[1]-ipcs[0] > ipcThreshold {
			ty.Types[k] = 1
		} else {
			ty.Types[k] = 0
		}
	}
	return ty
}

// Stats summarizes a typing for reporting.
type Stats struct {
	// TypedBlocks counts blocks with a type.
	TypedBlocks int
	// PerType counts blocks per type.
	PerType []int
}

// ComputeStats tallies a typing.
func ComputeStats(t *Typing) Stats {
	s := Stats{PerType: make([]int, t.K)}
	for _, ty := range t.Types {
		if ty >= 0 && int(ty) < t.K {
			s.PerType[ty]++
			s.TypedBlocks++
		}
	}
	return s
}

// Agreement returns the fraction of blocks typed identically by a and b,
// over blocks typed in both (used by the §II-A3 typing-accuracy experiment:
// "this technique miss-classifies only about 15% of loops").
func Agreement(a, b *Typing) float64 {
	common, agree := 0, 0
	for k, ta := range a.Types {
		tb, ok := b.Types[k]
		if !ok {
			continue
		}
		common++
		if ta == tb {
			agree++
		}
	}
	if common == 0 {
		return 0
	}
	return float64(agree) / float64(common)
}

// FeatureSpace returns the feature vectors of all typed blocks, for
// diagnostics and tests.
func FeatureSpace(graphs []*cfg.Graph, minInstrs int) map[BlockKey]Features {
	out := map[BlockKey]Features{}
	for pi, g := range graphs {
		for _, b := range g.Blocks {
			if b.Kind != cfg.KindNormal || b.NumInstrs() < minInstrs {
				continue
			}
			out[BlockKey{Proc: pi, Block: b.ID}] = BlockFeatures(b)
		}
	}
	return out
}

// MixSummary renders a block mix compactly for diagnostics.
func MixSummary(m isa.Mix) string {
	return fmt.Sprintf("mem=%d fp=%d total=%d", m.MemOps(), m.FloatOps(), m.Total())
}
