package phase

import (
	"math"
	"testing"

	"phasetune/internal/cfg"
	"phasetune/internal/prog"
	"phasetune/internal/rng"
)

// phasedProgram builds a program with a clearly compute-bound region and a
// clearly memory-bound region.
func phasedProgram(t *testing.T) (*prog.Program, []*cfg.Graph) {
	t.Helper()
	b := prog.NewBuilder("phased")
	main := b.Proc("main")
	// Compute phase: big integer blocks, no memory.
	main.Loop(50, func(pb *prog.ProcBuilder) {
		pb.Straight(prog.BlockMix{IntALU: 20, IntMul: 4})
	})
	// Memory phase: load-heavy blocks with a working set far beyond cache.
	main.Loop(50, func(pb *prog.ProcBuilder) {
		pb.Straight(prog.BlockMix{Load: 14, Store: 6, IntALU: 4, WorkingSetKB: 64 * 1024, Locality: 0.2})
	})
	main.Ret()
	p := b.MustBuild()
	graphs, err := cfg.BuildAll(p)
	if err != nil {
		t.Fatalf("BuildAll: %v", err)
	}
	return p, graphs
}

func TestBlockFeaturesSeparate(t *testing.T) {
	_, graphs := phasedProgram(t)
	g := graphs[0]
	var comp, mem *cfg.Block
	for _, blk := range g.Blocks {
		m := blk.Mix()
		if m.Total() < 10 {
			continue
		}
		if m.MemOps() == 0 {
			comp = blk
		} else {
			mem = blk
		}
	}
	if comp == nil || mem == nil {
		t.Fatal("fixture did not produce both block kinds")
	}
	fc, fm := BlockFeatures(comp), BlockFeatures(mem)
	if fc.MemIntensity >= fm.MemIntensity {
		t.Errorf("mem intensity: compute %g >= memory %g", fc.MemIntensity, fm.MemIntensity)
	}
	if fc.CacheBadness >= fm.CacheBadness {
		t.Errorf("cache badness: compute %g >= memory %g", fc.CacheBadness, fm.CacheBadness)
	}
}

func TestClusterBlocksSeparatesPhases(t *testing.T) {
	p, graphs := phasedProgram(t)
	ty, err := ClusterBlocks(p, graphs, Options{K: 2, MinBlockInstrs: 10, Seed: 1})
	if err != nil {
		t.Fatalf("ClusterBlocks: %v", err)
	}
	if ty.K != 2 {
		t.Fatalf("K = %d, want 2", ty.K)
	}
	// The compute block must be type 0 (canonical order: lower memory
	// intensity first) and the memory block type 1.
	g := graphs[0]
	for _, blk := range g.Blocks {
		m := blk.Mix()
		if m.Total() < 10 {
			continue
		}
		got := ty.TypeOf(BlockKey{Proc: 0, Block: blk.ID})
		want := Type(0)
		if m.MemOps() > 0 {
			want = 1
		}
		if got != want {
			t.Errorf("block %d (mem ops %d) typed %d, want %d", blk.ID, m.MemOps(), got, want)
		}
	}
}

func TestMinBlockSizeExcludes(t *testing.T) {
	p, graphs := phasedProgram(t)
	ty, err := ClusterBlocks(p, graphs, Options{K: 2, MinBlockInstrs: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for key := range ty.Types {
		blk := graphs[key.Proc].Blocks[key.Block]
		if blk.NumInstrs() < 10 {
			t.Errorf("block %v with %d instrs typed despite min size 10", key, blk.NumInstrs())
		}
	}
}

func TestTypeOfUntyped(t *testing.T) {
	ty := &Typing{K: 2, Types: map[BlockKey]Type{{0, 1}: 1}}
	if got := ty.TypeOf(BlockKey{0, 99}); got != Untyped {
		t.Errorf("TypeOf(absent) = %d, want Untyped", got)
	}
	if got := ty.TypeOf(BlockKey{0, 1}); got != 1 {
		t.Errorf("TypeOf(present) = %d, want 1", got)
	}
}

func TestInjectErrorFraction(t *testing.T) {
	ty := &Typing{K: 2, Types: map[BlockKey]Type{}}
	for i := 0; i < 100; i++ {
		ty.Types[BlockKey{0, i}] = Type(i % 2)
	}
	for _, frac := range []float64{0, 0.1, 0.2, 0.3, 1} {
		inj := ty.InjectError(frac, rng.New(42))
		flipped := 0
		for k, v := range ty.Types {
			if inj.Types[k] != v {
				flipped++
			}
		}
		want := int(frac * 100)
		if flipped != want {
			t.Errorf("frac %g: flipped %d blocks, want %d", frac, flipped, want)
		}
	}
}

func TestInjectErrorClampsAndPreservesOriginal(t *testing.T) {
	ty := &Typing{K: 2, Types: map[BlockKey]Type{{0, 0}: 0, {0, 1}: 1}}
	orig := ty.Clone()
	_ = ty.InjectError(2.0, rng.New(1)) // clamped to 1, must not touch ty
	for k, v := range orig.Types {
		if ty.Types[k] != v {
			t.Error("InjectError mutated the receiver")
		}
	}
	inj := ty.InjectError(-1, rng.New(1))
	for k, v := range ty.Types {
		if inj.Types[k] != v {
			t.Error("negative fraction flipped blocks")
		}
	}
}

func TestInjectErrorSingleType(t *testing.T) {
	ty := &Typing{K: 1, Types: map[BlockKey]Type{{0, 0}: 0}}
	inj := ty.InjectError(1, rng.New(1))
	if inj.Types[BlockKey{0, 0}] != 0 {
		t.Error("single-type typing changed by error injection")
	}
}

func TestOracleTyping(t *testing.T) {
	ipc := map[BlockKey][]float64{
		{0, 0}: {1.0, 1.0},  // equal IPC -> compute type 0
		{0, 1}: {0.3, 0.6},  // slow core much better -> memory type 1
		{0, 2}: {0.9, 0.95}, // below threshold -> type 0
	}
	ty := OracleTyping(ipc, 0.2)
	if ty.TypeOf(BlockKey{0, 0}) != 0 {
		t.Error("equal-IPC block not typed 0")
	}
	if ty.TypeOf(BlockKey{0, 1}) != 1 {
		t.Error("slow-favored block not typed 1")
	}
	if ty.TypeOf(BlockKey{0, 2}) != 0 {
		t.Error("sub-threshold block not typed 0")
	}
	if ty.TypeOf(BlockKey{0, 3}) != Untyped {
		t.Error("missing block not untyped")
	}
}

func TestAgreement(t *testing.T) {
	a := &Typing{K: 2, Types: map[BlockKey]Type{{0, 0}: 0, {0, 1}: 1, {0, 2}: 0}}
	b := &Typing{K: 2, Types: map[BlockKey]Type{{0, 0}: 0, {0, 1}: 0, {0, 2}: 0, {0, 3}: 1}}
	got := Agreement(a, b)
	if math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Agreement = %g, want 2/3", got)
	}
	if Agreement(&Typing{Types: map[BlockKey]Type{}}, b) != 0 {
		t.Error("Agreement with no common blocks should be 0")
	}
}

func TestComputeStats(t *testing.T) {
	ty := &Typing{K: 2, Types: map[BlockKey]Type{{0, 0}: 0, {0, 1}: 1, {0, 2}: 1}}
	s := ComputeStats(ty)
	if s.TypedBlocks != 3 || s.PerType[0] != 1 || s.PerType[1] != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestClusterBlocksErrors(t *testing.T) {
	p, graphs := phasedProgram(t)
	if _, err := ClusterBlocks(p, graphs, Options{K: 2, MinBlockInstrs: 10000}); err == nil {
		t.Error("impossible min size accepted")
	}
}

func TestClusterBlocksDeterministic(t *testing.T) {
	p, graphs := phasedProgram(t)
	a, err := ClusterBlocks(p, graphs, Options{K: 2, MinBlockInstrs: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClusterBlocks(p, graphs, Options{K: 2, MinBlockInstrs: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Types {
		if b.Types[k] != v {
			t.Fatalf("typing differs at %v", k)
		}
	}
}
