// Package prog defines the program-image representation analyzed,
// instrumented, and executed by the phase-based tuning pipeline.
//
// A Program is the synthetic analog of a compiled binary: a set of
// procedures, each a flat array of isa.Instructions with intra-procedural
// branch targets expressed as instruction indices. Static analysis sees only
// this structure (plus the locality descriptors on memory instructions);
// behavioral metadata such as branch probabilities is consumed exclusively by
// the interpreter, playing the role of program inputs in the paper's setup.
package prog

import (
	"fmt"

	"phasetune/internal/isa"
)

// Procedure is a single procedure: a named, flat instruction array.
type Procedure struct {
	// Name is the procedure's symbol name, unique within its program.
	Name string
	// Instrs is the instruction array. Branch and Jump targets index into
	// this slice; Call targets index Program.Procs.
	Instrs []isa.Instruction
}

// SizeBytes returns the encoded size of the procedure.
func (p *Procedure) SizeBytes() int {
	n := 0
	for _, in := range p.Instrs {
		n += in.SizeBytes()
	}
	return n
}

// Program is a complete program image.
type Program struct {
	// Name identifies the program (benchmark name in the suite).
	Name string
	// Procs lists the procedures. Call instructions address them by index.
	Procs []*Procedure
	// Entry is the index of the entry procedure.
	Entry int
}

// SizeBytes returns the total encoded size of the program, the denominator
// of the paper's space-overhead measurements (Fig. 3).
func (p *Program) SizeBytes() int {
	n := 0
	for _, pr := range p.Procs {
		n += pr.SizeBytes()
	}
	return n
}

// NumInstrs returns the total static instruction count.
func (p *Program) NumInstrs() int {
	n := 0
	for _, pr := range p.Procs {
		n += len(pr.Instrs)
	}
	return n
}

// ProcByName returns the procedure with the given name, or nil.
func (p *Program) ProcByName(name string) *Procedure {
	for _, pr := range p.Procs {
		if pr.Name == name {
			return pr
		}
	}
	return nil
}

// Clone returns a deep copy of the program. Instrumentation clones before
// rewriting so the original image remains available for comparison.
func (p *Program) Clone() *Program {
	cp := &Program{Name: p.Name, Entry: p.Entry, Procs: make([]*Procedure, len(p.Procs))}
	for i, pr := range p.Procs {
		instrs := make([]isa.Instruction, len(pr.Instrs))
		copy(instrs, pr.Instrs)
		cp.Procs[i] = &Procedure{Name: pr.Name, Instrs: instrs}
	}
	return cp
}

// Validate checks structural well-formedness: non-empty procedures, branch
// and jump targets within their procedure, call targets within the program,
// probabilities within [0, 1], and a final instruction that cannot fall off
// the end of its procedure.
func (p *Program) Validate() error {
	if len(p.Procs) == 0 {
		return fmt.Errorf("program %q: no procedures", p.Name)
	}
	if p.Entry < 0 || p.Entry >= len(p.Procs) {
		return fmt.Errorf("program %q: entry index %d out of range [0,%d)", p.Name, p.Entry, len(p.Procs))
	}
	seen := make(map[string]bool, len(p.Procs))
	for pi, pr := range p.Procs {
		if pr.Name == "" {
			return fmt.Errorf("program %q: proc %d has empty name", p.Name, pi)
		}
		if seen[pr.Name] {
			return fmt.Errorf("program %q: duplicate procedure name %q", p.Name, pr.Name)
		}
		seen[pr.Name] = true
		if len(pr.Instrs) == 0 {
			return fmt.Errorf("program %q: proc %q is empty", p.Name, pr.Name)
		}
		for ii, in := range pr.Instrs {
			switch in.Op {
			case isa.Branch, isa.Jump:
				if in.Target < 0 || in.Target >= len(pr.Instrs) {
					return fmt.Errorf("%s/%s+%d: %v target %d out of range [0,%d)",
						p.Name, pr.Name, ii, in.Op, in.Target, len(pr.Instrs))
				}
				if in.Op == isa.Branch && (in.TakenProb < 0 || in.TakenProb > 1) {
					return fmt.Errorf("%s/%s+%d: branch probability %g outside [0,1]",
						p.Name, pr.Name, ii, in.TakenProb)
				}
			case isa.Call:
				if in.Target < 0 || in.Target >= len(p.Procs) {
					return fmt.Errorf("%s/%s+%d: call target %d out of range [0,%d)",
						p.Name, pr.Name, ii, in.Target, len(p.Procs))
				}
			case isa.Load, isa.Store:
				if in.Mem.Locality < 0 || in.Mem.Locality > 1 {
					return fmt.Errorf("%s/%s+%d: memory locality %g outside [0,1]",
						p.Name, pr.Name, ii, in.Mem.Locality)
				}
				if in.Mem.WorkingSetKB < 0 {
					return fmt.Errorf("%s/%s+%d: negative working set %g",
						p.Name, pr.Name, ii, in.Mem.WorkingSetKB)
				}
			}
		}
		last := pr.Instrs[len(pr.Instrs)-1]
		switch last.Op {
		case isa.Ret, isa.Jump:
			// Cannot fall off the end.
		default:
			return fmt.Errorf("program %q: proc %q ends with %v, want ret or jump",
				p.Name, pr.Name, last.Op)
		}
	}
	return nil
}
