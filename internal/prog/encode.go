package prog

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"phasetune/internal/isa"
)

// This file implements a textual image format so program binaries exist as
// on-disk artifacts: cmd/benchgen can dump the generated suite and
// cmd/phasemark can analyze saved images, mirroring how the paper's
// framework consumes binaries produced elsewhere.
//
// Format (line-oriented, '#' comments):
//
//	program <name> entry=<procIndex>
//	proc <name>
//	<mnemonic> [key=value]...
//	end
//
// Instruction attributes: target (branch/jump instruction index, call
// procedure index), p (branch taken probability), trips (counted-branch
// trip count), ws/loc/stride (memory locality descriptor), mark (phase-mark
// ID), bytes (encoded-size override).

// Encode writes the program image to w.
func Encode(w io.Writer, p *Program) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "program %s entry=%d\n", p.Name, p.Entry)
	for _, proc := range p.Procs {
		fmt.Fprintf(bw, "proc %s\n", proc.Name)
		for _, in := range proc.Instrs {
			bw.WriteString(encodeInstr(in))
			bw.WriteByte('\n')
		}
		bw.WriteString("end\n")
	}
	return bw.Flush()
}

// encodeInstr renders one instruction.
func encodeInstr(in isa.Instruction) string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	switch in.Op {
	case isa.Branch:
		fmt.Fprintf(&b, " target=%d", in.Target)
		if in.TripCount > 0 {
			fmt.Fprintf(&b, " trips=%d", in.TripCount)
		} else {
			fmt.Fprintf(&b, " p=%g", in.TakenProb)
		}
	case isa.Jump, isa.Call:
		fmt.Fprintf(&b, " target=%d", in.Target)
	case isa.Load, isa.Store:
		fmt.Fprintf(&b, " ws=%g loc=%g", in.Mem.WorkingSetKB, in.Mem.Locality)
		if in.Mem.StrideB != 0 {
			fmt.Fprintf(&b, " stride=%d", in.Mem.StrideB)
		}
	case isa.PhaseMark:
		fmt.Fprintf(&b, " mark=%d", in.MarkID)
	}
	if in.Bytes > 0 {
		fmt.Fprintf(&b, " bytes=%d", in.Bytes)
	}
	return b.String()
}

// mnemonics maps instruction names back to classes.
var mnemonics = func() map[string]isa.OpClass {
	m := map[string]isa.OpClass{}
	for c := 0; c < isa.NumOpClasses; c++ {
		m[isa.OpClass(c).String()] = isa.OpClass(c)
	}
	return m
}()

// Decode parses a program image from r and validates it.
func Decode(r io.Reader) (*Program, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var p *Program
	var cur *Procedure
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "program":
			if p != nil {
				return nil, decodeErr(line, "duplicate program header")
			}
			if len(fields) < 3 {
				return nil, decodeErr(line, "program header needs name and entry")
			}
			entry, err := intAttr(fields[2], "entry")
			if err != nil {
				return nil, decodeErr(line, err.Error())
			}
			p = &Program{Name: fields[1], Entry: entry}
		case "proc":
			if p == nil {
				return nil, decodeErr(line, "proc before program header")
			}
			if cur != nil {
				return nil, decodeErr(line, "proc inside proc (missing end)")
			}
			if len(fields) != 2 {
				return nil, decodeErr(line, "proc needs exactly one name")
			}
			cur = &Procedure{Name: fields[1]}
		case "end":
			if cur == nil {
				return nil, decodeErr(line, "end outside proc")
			}
			p.Procs = append(p.Procs, cur)
			cur = nil
		default:
			if cur == nil {
				return nil, decodeErr(line, "instruction outside proc")
			}
			in, err := decodeInstr(fields)
			if err != nil {
				return nil, decodeErr(line, err.Error())
			}
			cur.Instrs = append(cur.Instrs, in)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("prog: empty image")
	}
	if cur != nil {
		return nil, fmt.Errorf("prog: unterminated proc %q", cur.Name)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func decodeErr(line int, msg string) error {
	return fmt.Errorf("prog: line %d: %s", line, msg)
}

// decodeInstr parses one instruction line.
func decodeInstr(fields []string) (isa.Instruction, error) {
	op, ok := mnemonics[fields[0]]
	if !ok {
		return isa.Instruction{}, fmt.Errorf("unknown mnemonic %q", fields[0])
	}
	in := isa.Instruction{Op: op}
	for _, f := range fields[1:] {
		key, val, found := strings.Cut(f, "=")
		if !found {
			return in, fmt.Errorf("malformed attribute %q", f)
		}
		switch key {
		case "target":
			v, err := strconv.Atoi(val)
			if err != nil {
				return in, fmt.Errorf("bad target %q", val)
			}
			in.Target = v
		case "p":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return in, fmt.Errorf("bad probability %q", val)
			}
			in.TakenProb = v
		case "trips":
			v, err := strconv.Atoi(val)
			if err != nil || v < 1 {
				return in, fmt.Errorf("bad trip count %q", val)
			}
			in.TripCount = int32(v)
			if in.TakenProb == 0 {
				in.TakenProb = 1 - 1/float64(v)
			}
		case "ws":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return in, fmt.Errorf("bad working set %q", val)
			}
			in.Mem.WorkingSetKB = v
		case "loc":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return in, fmt.Errorf("bad locality %q", val)
			}
			in.Mem.Locality = v
		case "stride":
			v, err := strconv.Atoi(val)
			if err != nil {
				return in, fmt.Errorf("bad stride %q", val)
			}
			in.Mem.StrideB = v
		case "mark":
			v, err := strconv.Atoi(val)
			if err != nil {
				return in, fmt.Errorf("bad mark ID %q", val)
			}
			in.MarkID = v
		case "bytes":
			v, err := strconv.Atoi(val)
			if err != nil || v < 0 {
				return in, fmt.Errorf("bad byte size %q", val)
			}
			in.Bytes = v
		default:
			return in, fmt.Errorf("unknown attribute %q", key)
		}
	}
	return in, nil
}

// intAttr parses "key=value" asserting the key.
func intAttr(s, key string) (int, error) {
	k, v, found := strings.Cut(s, "=")
	if !found || k != key {
		return 0, fmt.Errorf("expected %s=<int>, got %q", key, s)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s value %q", key, v)
	}
	return n, nil
}
