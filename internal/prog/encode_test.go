package prog

import (
	"bytes"
	"strings"
	"testing"

	"phasetune/internal/isa"
)

// roundTrip encodes and decodes a program, failing on error.
func roundTrip(t *testing.T, p *Program) *Program {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, p); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v\nimage:\n%s", err, buf.String())
	}
	return got
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := NewBuilder("rt")
	helper := b.Proc("helper")
	helper.Straight(BlockMix{Load: 3, Store: 1, WorkingSetKB: 512, Locality: 0.9, StrideB: 16}).Ret()
	main := b.Proc("main")
	b.SetEntry("main")
	main.Straight(BlockMix{IntALU: 4, FPMul: 2})
	main.Loop(12, func(pb *ProcBuilder) {
		pb.CallProc("helper")
	})
	main.IfElse(0.25,
		func(pb *ProcBuilder) { pb.Straight(BlockMix{IntDiv: 1}) },
		func(pb *ProcBuilder) { pb.Syscall() },
	)
	main.Ret()
	p := b.MustBuild()

	got := roundTrip(t, p)
	if got.Name != p.Name || got.Entry != p.Entry || len(got.Procs) != len(p.Procs) {
		t.Fatalf("header mismatch: %s/%d/%d vs %s/%d/%d",
			got.Name, got.Entry, len(got.Procs), p.Name, p.Entry, len(p.Procs))
	}
	for pi := range p.Procs {
		if got.Procs[pi].Name != p.Procs[pi].Name {
			t.Errorf("proc %d name %q vs %q", pi, got.Procs[pi].Name, p.Procs[pi].Name)
		}
		if len(got.Procs[pi].Instrs) != len(p.Procs[pi].Instrs) {
			t.Fatalf("proc %d: %d instrs vs %d", pi, len(got.Procs[pi].Instrs), len(p.Procs[pi].Instrs))
		}
		for ii, want := range p.Procs[pi].Instrs {
			if got.Procs[pi].Instrs[ii] != want {
				t.Errorf("proc %d instr %d: %+v vs %+v", pi, ii, got.Procs[pi].Instrs[ii], want)
			}
		}
	}
}

func TestEncodeDecodePhaseMarks(t *testing.T) {
	p := &Program{
		Name: "marked",
		Procs: []*Procedure{{
			Name: "main",
			Instrs: []isa.Instruction{
				{Op: isa.PhaseMark, MarkID: 3, Bytes: 73},
				{Op: isa.IntALU},
				{Op: isa.Ret},
			},
		}},
	}
	got := roundTrip(t, p)
	in := got.Procs[0].Instrs[0]
	if in.Op != isa.PhaseMark || in.MarkID != 3 || in.Bytes != 73 {
		t.Errorf("mark round-trip = %+v", in)
	}
}

func TestDecodeCommentsAndBlanks(t *testing.T) {
	img := `
# a comment
program demo entry=0

proc main
  # body
  intalu
  ret
end
`
	p, err := Decode(strings.NewReader(img))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if p.Name != "demo" || len(p.Procs[0].Instrs) != 2 {
		t.Errorf("parsed %+v", p)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"empty":              "",
		"no header":          "proc main\nret\nend\n",
		"instr outside proc": "program x entry=0\nintalu\n",
		"unterminated proc":  "program x entry=0\nproc main\nret\n",
		"unknown mnemonic":   "program x entry=0\nproc main\nfrobnicate\nend\n",
		"bad attribute":      "program x entry=0\nproc main\nintalu foo\nend\n",
		"unknown attribute":  "program x entry=0\nproc main\nintalu color=red\nend\n",
		"bad entry":          "program x entry=nine\nproc main\nret\nend\n",
		"invalid program":    "program x entry=0\nproc main\nintalu\nend\n", // falls off end
		"nested proc":        "program x entry=0\nproc a\nproc b\nend\nend\n",
		"dup header":         "program x entry=0\nprogram y entry=0\n",
		"end outside proc":   "program x entry=0\nend\n",
		"bad trips":          "program x entry=0\nproc main\nbranch target=0 trips=zero\nret\nend\n",
	}
	for name, img := range cases {
		if _, err := Decode(strings.NewReader(img)); err == nil {
			t.Errorf("%s: Decode accepted invalid image", name)
		}
	}
}

func TestDecodeCountedBranchDerivesProbability(t *testing.T) {
	img := "program x entry=0\nproc main\nintalu\nbranch target=0 trips=10\nret\nend\n"
	p, err := Decode(strings.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	br := p.Procs[0].Instrs[1]
	if br.TripCount != 10 {
		t.Errorf("trips = %d", br.TripCount)
	}
	if br.TakenProb <= 0.89 || br.TakenProb >= 0.91 {
		t.Errorf("derived probability = %g, want 0.9", br.TakenProb)
	}
}

func TestEncodeStable(t *testing.T) {
	b := NewBuilder("stable")
	b.Proc("main").Straight(BlockMix{IntALU: 2, Load: 1, WorkingSetKB: 64, Locality: 0.5}).Ret()
	p := b.MustBuild()
	var b1, b2 bytes.Buffer
	if err := Encode(&b1, p); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b2, p); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("encoding not deterministic")
	}
}
