package prog

import (
	"testing"

	"phasetune/internal/isa"
)

// testProgram builds a small two-procedure program with a loop and a call.
func testProgram(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("test")
	helper := b.Proc("helper")
	helper.Straight(BlockMix{FPAdd: 4, Load: 2, WorkingSetKB: 256, Locality: 0.5}).Ret()

	main := b.Proc("main")
	b.SetEntry("main")
	main.Straight(BlockMix{IntALU: 8})
	main.Loop(10, func(pb *ProcBuilder) {
		pb.Straight(BlockMix{IntALU: 6, Load: 2, WorkingSetKB: 16, Locality: 0.9})
		pb.CallProc("helper")
	})
	main.Ret()

	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuilderProducesValidProgram(t *testing.T) {
	p := testProgram(t)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.Procs[p.Entry].Name != "main" {
		t.Errorf("entry proc = %q, want main", p.Procs[p.Entry].Name)
	}
}

func TestLoopBranchTargetsHead(t *testing.T) {
	p := testProgram(t)
	main := p.ProcByName("main")
	var branch *isa.Instruction
	for i := range main.Instrs {
		if main.Instrs[i].Op == isa.Branch {
			branch = &main.Instrs[i]
		}
	}
	if branch == nil {
		t.Fatal("no branch emitted for loop")
	}
	// The loop head is right after the 8 straight IntALU instructions.
	if branch.Target != 8 {
		t.Errorf("loop branch target = %d, want 8", branch.Target)
	}
	wantP := 1 - 1.0/10
	if branch.TakenProb != wantP {
		t.Errorf("loop branch probability = %g, want %g", branch.TakenProb, wantP)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := testProgram(t)
	c := p.Clone()
	c.Procs[0].Instrs[0].Op = isa.Nop
	if p.Procs[0].Instrs[0].Op == isa.Nop {
		t.Error("Clone shares instruction storage with original")
	}
}

func TestValidateCatchesBadBranchTarget(t *testing.T) {
	p := &Program{
		Name: "bad",
		Procs: []*Procedure{{
			Name: "main",
			Instrs: []isa.Instruction{
				{Op: isa.Branch, Target: 99, TakenProb: 0.5},
				{Op: isa.Ret},
			},
		}},
	}
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted out-of-range branch target")
	}
}

func TestValidateCatchesBadCallTarget(t *testing.T) {
	p := &Program{
		Name: "bad",
		Procs: []*Procedure{{
			Name: "main",
			Instrs: []isa.Instruction{
				{Op: isa.Call, Target: 5},
				{Op: isa.Ret},
			},
		}},
	}
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted out-of-range call target")
	}
}

func TestValidateCatchesFallOffEnd(t *testing.T) {
	p := &Program{
		Name: "bad",
		Procs: []*Procedure{{
			Name:   "main",
			Instrs: []isa.Instruction{{Op: isa.IntALU}},
		}},
	}
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted procedure that falls off the end")
	}
}

func TestValidateCatchesDuplicateProcNames(t *testing.T) {
	p := &Program{
		Name: "bad",
		Procs: []*Procedure{
			{Name: "f", Instrs: []isa.Instruction{{Op: isa.Ret}}},
			{Name: "f", Instrs: []isa.Instruction{{Op: isa.Ret}}},
		},
	}
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted duplicate procedure names")
	}
}

func TestValidateCatchesBadProbability(t *testing.T) {
	p := &Program{
		Name: "bad",
		Procs: []*Procedure{{
			Name: "main",
			Instrs: []isa.Instruction{
				{Op: isa.Branch, Target: 0, TakenProb: 1.5},
				{Op: isa.Ret},
			},
		}},
	}
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted probability > 1")
	}
}

func TestIfElseShape(t *testing.T) {
	b := NewBuilder("ifelse")
	main := b.Proc("main")
	main.IfElse(0.3,
		func(pb *ProcBuilder) { pb.Straight(BlockMix{IntALU: 3}) },
		func(pb *ProcBuilder) { pb.Straight(BlockMix{FPAdd: 2}) },
	)
	main.Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Exactly one branch and one jump.
	var branches, jumps int
	for _, in := range p.Procs[0].Instrs {
		switch in.Op {
		case isa.Branch:
			branches++
		case isa.Jump:
			jumps++
		}
	}
	if branches != 1 || jumps != 1 {
		t.Errorf("got %d branches, %d jumps; want 1, 1", branches, jumps)
	}
}

func TestUnboundLabelFails(t *testing.T) {
	b := NewBuilder("bad")
	main := b.Proc("main")
	l := main.NewLabel()
	main.JumpTo(l)
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted unbound label")
	}
}

func TestImplicitRet(t *testing.T) {
	b := NewBuilder("implicit")
	b.Proc("main").Straight(BlockMix{IntALU: 1})
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	last := p.Procs[0].Instrs[len(p.Procs[0].Instrs)-1]
	if last.Op != isa.Ret {
		t.Errorf("final op = %v, want ret appended implicitly", last.Op)
	}
}

func TestSizeBytesCountsEncodings(t *testing.T) {
	b := NewBuilder("size")
	b.Proc("main").Straight(BlockMix{IntALU: 2, Load: 1}).Ret()
	p := b.MustBuild()
	want := 2*isa.DefaultSize(isa.IntALU) + isa.DefaultSize(isa.Load) + isa.DefaultSize(isa.Ret)
	if got := p.SizeBytes(); got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
}

func TestMixAccounting(t *testing.T) {
	mix := BlockMix{IntALU: 3, FPMul: 2, Load: 4, Store: 1}
	if mix.Total() != 10 {
		t.Errorf("Total = %d, want 10", mix.Total())
	}
	b := NewBuilder("mix")
	b.Proc("main").Straight(mix).Ret()
	p := b.MustBuild()
	var m isa.Mix
	for _, in := range p.Procs[0].Instrs {
		m.Add(in.Op)
	}
	if m.Counts[isa.Load] != 4 || m.Counts[isa.Store] != 1 || m.MemOps() != 5 {
		t.Errorf("mem ops = %d (load %d store %d), want 5 (4, 1)",
			m.MemOps(), m.Counts[isa.Load], m.Counts[isa.Store])
	}
}
