package prog

import (
	"fmt"

	"phasetune/internal/isa"
)

// Builder constructs Programs from structured control flow. The workload
// generator and tests use it to express code shapes ("a loop of memory-bound
// blocks nested in a compute phase") without hand-computing branch targets.
type Builder struct {
	name    string
	procs   []*ProcBuilder
	byName  map[string]int
	entry   string
	errs    []error
	nextSeq int
}

// NewBuilder returns a Builder for a program called name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, byName: map[string]int{}}
}

// Proc starts (or returns the existing) procedure builder named name. The
// first procedure declared becomes the program entry unless SetEntry is
// called.
func (b *Builder) Proc(name string) *ProcBuilder {
	if i, ok := b.byName[name]; ok {
		return b.procs[i]
	}
	pb := &ProcBuilder{b: b, name: name, index: len(b.procs)}
	b.byName[name] = len(b.procs)
	b.procs = append(b.procs, pb)
	if b.entry == "" {
		b.entry = name
	}
	return pb
}

// SetEntry selects the entry procedure by name.
func (b *Builder) SetEntry(name string) { b.entry = name }

// errorf records a construction error, reported by Build.
func (b *Builder) errorf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Build finalizes the program, resolving labels and call targets, and
// validates the result.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	p := &Program{Name: b.name}
	for _, pb := range b.procs {
		proc, err := pb.finish()
		if err != nil {
			return nil, err
		}
		p.Procs = append(p.Procs, proc)
	}
	entry, ok := b.byName[b.entry]
	if !ok {
		return nil, fmt.Errorf("builder %q: entry procedure %q not defined", b.name, b.entry)
	}
	p.Entry = entry
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("builder %q: %w", b.name, err)
	}
	return p, nil
}

// MustBuild is Build that panics on error, for tests and generators whose
// inputs are statically known to be valid.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Label marks an instruction position to branch to.
type Label struct {
	id int
}

// BlockMix specifies the straight-line instruction mix emitted by Straight.
// Zero fields emit nothing of that class.
type BlockMix struct {
	IntALU, IntMul, IntDiv int
	FPAdd, FPMul, FPDiv    int
	Load, Store            int
	// WorkingSetKB and Locality describe the locality of all memory
	// references emitted for this mix (isa.MemRef).
	WorkingSetKB float64
	Locality     float64
	// StrideB is the access stride; defaults to 8 bytes when zero.
	StrideB int
}

// Total returns the number of instructions the mix expands to.
func (m BlockMix) Total() int {
	return m.IntALU + m.IntMul + m.IntDiv + m.FPAdd + m.FPMul + m.FPDiv + m.Load + m.Store
}

// ProcBuilder accumulates instructions for one procedure.
type ProcBuilder struct {
	b        *Builder
	name     string
	index    int
	instrs   []isa.Instruction
	labels   map[int]int // label id -> instruction index
	patches  []patch
	retDone  bool
	nextLbl  int
	finished bool
}

type patch struct {
	instr int // index of instruction whose Target needs the label address
	label int
}

// Index returns the procedure's index within the program under construction.
func (pb *ProcBuilder) Index() int { return pb.index }

// Emit appends a raw instruction.
func (pb *ProcBuilder) Emit(in isa.Instruction) *ProcBuilder {
	pb.instrs = append(pb.instrs, in)
	return pb
}

// NewLabel allocates an unbound label.
func (pb *ProcBuilder) NewLabel() Label {
	if pb.labels == nil {
		pb.labels = map[int]int{}
	}
	id := pb.nextLbl
	pb.nextLbl++
	pb.labels[id] = -1
	return Label{id: id}
}

// Bind binds a label to the current position.
func (pb *ProcBuilder) Bind(l Label) *ProcBuilder {
	if pb.labels[l.id] != -1 {
		pb.b.errorf("proc %q: label bound twice", pb.name)
		return pb
	}
	pb.labels[l.id] = len(pb.instrs)
	return pb
}

// Here returns a label bound to the current position.
func (pb *ProcBuilder) Here() Label {
	l := pb.NewLabel()
	pb.Bind(l)
	return l
}

// BranchTo emits a conditional branch to label l, taken with probability p.
func (pb *ProcBuilder) BranchTo(l Label, p float64) *ProcBuilder {
	pb.patches = append(pb.patches, patch{instr: len(pb.instrs), label: l.id})
	return pb.Emit(isa.Instruction{Op: isa.Branch, TakenProb: p})
}

// BranchCounted emits a counted loop back edge to label l: taken trips-1
// consecutive times, then falling through once.
func (pb *ProcBuilder) BranchCounted(l Label, trips int) *ProcBuilder {
	if trips < 1 {
		pb.b.errorf("proc %q: counted branch trips %d < 1", pb.name, trips)
		trips = 1
	}
	pb.patches = append(pb.patches, patch{instr: len(pb.instrs), label: l.id})
	return pb.Emit(isa.Instruction{
		Op:        isa.Branch,
		TakenProb: 1 - 1/float64(trips),
		TripCount: int32(trips),
	})
}

// JumpTo emits an unconditional jump to label l.
func (pb *ProcBuilder) JumpTo(l Label) *ProcBuilder {
	pb.patches = append(pb.patches, patch{instr: len(pb.instrs), label: l.id})
	return pb.Emit(isa.Instruction{Op: isa.Jump})
}

// Straight emits the straight-line expansion of mix: integer ops, FP ops,
// then interleaved loads/stores carrying the mix's locality descriptor.
func (pb *ProcBuilder) Straight(mix BlockMix) *ProcBuilder {
	stride := mix.StrideB
	if stride == 0 {
		stride = 8
	}
	mem := isa.MemRef{WorkingSetKB: mix.WorkingSetKB, Locality: mix.Locality, StrideB: stride}
	emitN := func(n int, op isa.OpClass) {
		for i := 0; i < n; i++ {
			pb.Emit(isa.Instruction{Op: op})
		}
	}
	emitN(mix.IntALU, isa.IntALU)
	emitN(mix.IntMul, isa.IntMul)
	emitN(mix.IntDiv, isa.IntDiv)
	emitN(mix.FPAdd, isa.FPAdd)
	emitN(mix.FPMul, isa.FPMul)
	emitN(mix.FPDiv, isa.FPDiv)
	// Interleave loads and stores so blocks do not end with a long pure-store
	// tail, which would be an unrealistic address stream.
	ld, st := mix.Load, mix.Store
	for ld > 0 || st > 0 {
		if ld > 0 {
			pb.Emit(isa.Instruction{Op: isa.Load, Mem: mem})
			ld--
		}
		if st > 0 {
			pb.Emit(isa.Instruction{Op: isa.Store, Mem: mem})
			st--
		}
	}
	return pb
}

// Loop emits a bottom-tested counted loop running round(trips) iterations
// exactly. Use LoopGeometric for probabilistic trip counts.
func (pb *ProcBuilder) Loop(trips float64, body func(*ProcBuilder)) *ProcBuilder {
	n := int(trips + 0.5)
	if n < 1 {
		n = 1
	}
	head := pb.Here()
	body(pb)
	pb.BranchCounted(head, n)
	return pb
}

// LoopGeometric emits a bottom-tested loop whose iteration count is
// geometric with the given mean: body; branch back with probability
// 1-1/meanTrips. Runtimes of programs dominated by a single geometric loop
// are exponentially spread around the mean.
func (pb *ProcBuilder) LoopGeometric(meanTrips float64, body func(*ProcBuilder)) *ProcBuilder {
	if meanTrips < 1 {
		pb.b.errorf("proc %q: loop mean trip count %g < 1", pb.name, meanTrips)
		meanTrips = 1
	}
	head := pb.Here()
	body(pb)
	pb.BranchTo(head, 1-1/meanTrips)
	return pb
}

// IfElse emits a two-armed conditional: then runs with probability pThen.
func (pb *ProcBuilder) IfElse(pThen float64, then, els func(*ProcBuilder)) *ProcBuilder {
	// branch (taken -> then) over the else arm.
	thenL := pb.NewLabel()
	doneL := pb.NewLabel()
	pb.BranchTo(thenL, pThen)
	if els != nil {
		els(pb)
	}
	pb.JumpTo(doneL)
	pb.Bind(thenL)
	then(pb)
	pb.Bind(doneL)
	// A label at the very end of a procedure must precede the final ret;
	// callers are expected to emit more code (at least Ret).
	return pb
}

// CallProc emits a call to the named procedure (declared before Build).
func (pb *ProcBuilder) CallProc(name string) *ProcBuilder {
	callee := pb.b.Proc(name)
	return pb.Emit(isa.Instruction{Op: isa.Call, Target: callee.index})
}

// Syscall emits a syscall instruction.
func (pb *ProcBuilder) Syscall() *ProcBuilder {
	return pb.Emit(isa.Instruction{Op: isa.Syscall})
}

// Ret emits a return.
func (pb *ProcBuilder) Ret() *ProcBuilder {
	pb.retDone = true
	return pb.Emit(isa.Instruction{Op: isa.Ret})
}

// finish resolves patches and returns the completed procedure.
func (pb *ProcBuilder) finish() (*Procedure, error) {
	if pb.finished {
		return nil, fmt.Errorf("proc %q: finished twice", pb.name)
	}
	pb.finished = true
	if !pb.retDone {
		pb.Emit(isa.Instruction{Op: isa.Ret})
	}
	for _, pt := range pb.patches {
		pos, ok := pb.labels[pt.label]
		if !ok || pos == -1 {
			return nil, fmt.Errorf("proc %q: unbound label in %v at +%d", pb.name, pb.instrs[pt.instr].Op, pt.instr)
		}
		pb.instrs[pt.instr].Target = pos
	}
	return &Procedure{Name: pb.name, Instrs: pb.instrs}, nil
}
