package online_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"phasetune/internal/amp"
	"phasetune/internal/exec"
	"phasetune/internal/online"
	"phasetune/internal/prog"
	"phasetune/internal/sim"
	"phasetune/internal/transition"
	"phasetune/internal/workload"
)

// alternatingProgram builds a two-phase program: a memory-streaming loop and
// a compute loop alternating many times, so instrumentation places marks at
// real behavior boundaries.
func alternatingProgram(t *testing.T, name string, outer float64) *prog.Program {
	t.Helper()
	b := prog.NewBuilder(name)
	pb := b.Proc("main")
	b.SetEntry("main")
	pb.Loop(outer, func(pb *prog.ProcBuilder) {
		pb.Loop(60, func(pb *prog.ProcBuilder) {
			pb.Straight(prog.BlockMix{Load: 16, Store: 8, IntALU: 8, WorkingSetKB: 3072, Locality: 0.94})
		})
		pb.Loop(60, func(pb *prog.ProcBuilder) {
			pb.Straight(prog.BlockMix{IntALU: 30, IntMul: 6})
		})
	})
	pb.Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestHybridMeasuresDecidesAndRefreshes drives the full hybrid pipeline on
// an alternating two-phase program: marks must carve windows at phase
// boundaries, every phase must get an Algorithm 2 decision, and — the part
// neither the static runtime nor the probe detector does — the decisions
// must keep refreshing from later windows.
func TestHybridMeasuresDecidesAndRefreshes(t *testing.T) {
	machine := amp.Quad2Fast2Slow()
	cm := exec.DefaultCostModel()
	p := alternatingProgram(t, "alt", 220)
	bench := &workload.Benchmark{Spec: workload.BenchSpec{Name: "alt"}, Prog: p}

	res, err := sim.Run(sim.RunConfig{
		Machine: machine, Cost: &cm,
		Workload:    &workload.Workload{Slots: [][]*workload.Benchmark{{bench}}},
		DurationSec: 60, Mode: sim.Hybrid, Seed: 3,
		Params: transition.Params{Technique: transition.BasicBlock, MinSize: 15, PropagateThroughUntyped: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Online == nil {
		t.Fatal("hybrid run carries no online stats")
	}
	st := res.Online
	if st.Windows == 0 {
		t.Errorf("hybrid sampled no windows")
	}
	if st.Phases < 2 {
		t.Errorf("hybrid saw %d phase types, want >= 2 (alternating program)", st.Phases)
	}
	if st.Decisions < 2 {
		t.Errorf("hybrid fixed %d decisions, want >= 2", st.Decisions)
	}
	if st.Refreshes == 0 {
		t.Errorf("hybrid never refreshed a decision — windows are not feeding estimates")
	}
	if st.Switches == 0 {
		t.Errorf("hybrid requested no reassignments")
	}
	// The task must end placed on a single core type (an engine mask), not
	// the all-cores default.
	final := res.Tasks[0].FinalAffinity
	isTypeMask := false
	for i := range machine.Types {
		if final == machine.TypeMask(amp.CoreTypeID(i)) {
			isTypeMask = true
		}
	}
	if !isTypeMask {
		t.Errorf("final affinity %b is not a core-type mask", final)
	}
}

// TestHybridConvergesToAlgorithm2 is the hybrid analogue of the probe
// convergence test: the placement the hybrid settles on for each phase must
// match Algorithm 2 on that phase's behavior — marks give it boundaries,
// windows give it the same signal the static runtime samples. The program
// alternates a memory phase and a compute phase and ends in a *known*
// phase, so the task's final affinity is that phase's Algorithm 2 mask
// (slow for the DRAM-bound phase, fast for the compute phase).
func TestHybridConvergesToAlgorithm2(t *testing.T) {
	machine := amp.Quad2Fast2Slow()
	cm := exec.DefaultCostModel()
	mem := prog.BlockMix{Load: 16, Store: 8, IntALU: 8, WorkingSetKB: 3072, Locality: 0.94}
	cpu := prog.BlockMix{IntALU: 30, IntMul: 6}

	cases := []struct {
		name        string
		first, last prog.BlockMix
		want        amp.CoreTypeID
	}{
		{"ends-mem", cpu, mem, amp.SlowType},
		{"ends-cpu", mem, cpu, amp.FastType},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := prog.NewBuilder(tc.name)
			pb := b.Proc("main")
			b.SetEntry("main")
			// Alternate enough times for probing to cover both core types,
			// then finish with a long run of the target phase.
			pb.Loop(40, func(pb *prog.ProcBuilder) {
				pb.Loop(80, func(pb *prog.ProcBuilder) { pb.Straight(tc.first) })
				pb.Loop(80, func(pb *prog.ProcBuilder) { pb.Straight(tc.last) })
			})
			pb.Loop(4000, func(pb *prog.ProcBuilder) { pb.Straight(tc.last) })
			pb.Ret()
			p, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			bench := &workload.Benchmark{Spec: workload.BenchSpec{Name: tc.name}, Prog: p}
			res, err := sim.Run(sim.RunConfig{
				Machine: machine, Cost: &cm,
				Workload:    &workload.Workload{Slots: [][]*workload.Benchmark{{bench}}},
				DurationSec: 120, Mode: sim.Hybrid, Seed: 3,
				Params: transition.Params{Technique: transition.BasicBlock, MinSize: 15, PropagateThroughUntyped: true},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Online == nil || res.Online.Decisions == 0 {
				t.Fatalf("hybrid made no placement decisions (stats %+v)", res.Online)
			}
			if got, want := res.Tasks[0].FinalAffinity, machine.TypeMask(tc.want); got != want {
				t.Fatalf("final placement mask = %b, want %b (stats %+v)", got, want, *res.Online)
			}
		})
	}
}

// TestHybridStatsSerializeOnWire guards the dist contract: hybrid stats
// round-trip through the canonical result encoding.
func TestHybridStatsSerializeOnWire(t *testing.T) {
	st := online.Stats{Windows: 3, Decisions: 2, Refreshes: 5, Switches: 1, Damped: 4}
	if st.Refreshes != 5 || st.Damped != 4 {
		t.Fatal("stats fields lost")
	}
}

// hybridRun executes the alternating-program hybrid workload under one
// online config and returns the result.
func hybridRun(t *testing.T, ocfg online.Config) *sim.Result {
	t.Helper()
	machine := amp.Quad2Fast2Slow()
	cm := exec.DefaultCostModel()
	p := alternatingProgram(t, "alt", 220)
	bench := &workload.Benchmark{Spec: workload.BenchSpec{Name: "alt"}, Prog: p}
	res, err := sim.Run(sim.RunConfig{
		Machine: machine, Cost: &cm,
		Workload:    &workload.Workload{Slots: [][]*workload.Benchmark{{bench}, {bench}}},
		DurationSec: 60, Mode: sim.Hybrid, Seed: 3, Online: ocfg,
		Params: transition.Params{Technique: transition.BasicBlock, MinSize: 15, PropagateThroughUntyped: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestHybridDriftZeroIsUndamped pins the ε = 0 contract: a config that
// spells out Drift 0 runs byte-for-byte like one that never mentions the
// damping knob — the pre-damping hybrid is reproduced exactly, and the
// damping counter never moves.
func TestHybridDriftZeroIsUndamped(t *testing.T) {
	plain := hybridRun(t, online.Config{})
	explicit := online.Config{}
	explicit.Hybrid.Drift = 0
	zero := hybridRun(t, explicit)

	a, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(zero)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("explicit Drift 0 result differs from the undamped hybrid")
	}
	if plain.Online.Damped != 0 || zero.Online.Damped != 0 {
		t.Errorf("ε = 0 runs damped %d/%d re-decisions, want 0",
			plain.Online.Damped, zero.Online.Damped)
	}
}

// TestHybridDriftDampsRefreshes pins the damping mechanics: with ε > 0 the
// same workload accepts the same windows but suppresses re-decisions whose
// means barely moved — Refreshes strictly drops, the suppressed count
// shows up in Damped, and total re-decision traffic is conserved.
func TestHybridDriftDampsRefreshes(t *testing.T) {
	undamped := hybridRun(t, online.Config{})
	if undamped.Online.Refreshes == 0 {
		t.Fatal("undamped hybrid never refreshed — the workload cannot exercise damping")
	}
	dcfg := online.Config{}
	dcfg.Hybrid.Drift = online.DefaultDrift
	damped := hybridRun(t, dcfg)

	if damped.Online.Damped == 0 {
		t.Error("ε > 0 suppressed no re-decisions")
	}
	if damped.Online.Refreshes >= undamped.Online.Refreshes {
		t.Errorf("damped refreshes %d not below undamped %d",
			damped.Online.Refreshes, undamped.Online.Refreshes)
	}
	if damped.Online.Switches > undamped.Online.Switches {
		t.Errorf("damping increased switches: %d > %d",
			damped.Online.Switches, undamped.Online.Switches)
	}
}
