package online

import (
	"sort"

	"phasetune/internal/amp"
	"phasetune/internal/osched"
	"phasetune/internal/perfcnt"
	"phasetune/internal/tuning"
)

// taskState is the detector's per-process bookkeeping.
type taskState struct {
	task *osched.Task
	cls  *Classifier

	// Open window: counter snapshot plus the migration count at open, so a
	// window spanning a core switch can be discarded (its IPC would blend
	// two core types).
	es       perfcnt.EventSet
	open     bool
	openMigr int
	windows  uint64
	// phase is the last classified phase (-1 before the first window).
	phase int
	// ipcEWMA is the greedy policy's smoothed IPC estimate.
	ipcEWMA float64
	// decisions holds the probe policy's fixed per-phase measurements.
	decisions map[int]*phaseDecision
	// probing is true while the probe policy is steering this task to an
	// unmeasured core type; the placement pass leaves probing tasks alone.
	probing bool
	// wantMask is the mask this manager last requested for the task (0 =
	// never reassigned), used to count real switches and damp flapping.
	wantMask uint64
}

// phaseDecision is a probe-policy placement, fixed once every core type has
// been measured for the phase: the Algorithm 2 choice plus the measured
// per-type instruction rates (IPC x clock) the capacity-aware placement
// pass uses to price spilling the task onto another type.
type phaseDecision struct {
	choice amp.CoreTypeID
	rates  []float64 // instructions per simulated second, per core type
}

// Manager is the online phase-detection runtime: it implements
// osched.TaskMonitor, sampling every live task's virtualized counters in
// fixed instruction windows, classifying window signatures into phases, and
// driving the configured reassignment policy. One Manager serves one kernel
// (one run); it is not safe for concurrent use, matching the kernel's
// single-threaded event loop.
type Manager struct {
	cfg     Config
	machine *amp.Machine
	hw      *perfcnt.Hardware

	seen  int // cursor into kernel.Tasks()
	live  []*taskState
	stats Stats

	// fastShare is the fraction of machine cycle capacity on the fastest
	// core type, the greedy policy's fast-slot quota.
	fastShare float64
	fastType  amp.CoreTypeID
	slowType  amp.CoreTypeID
}

// NewManager builds the runtime for one kernel. The hardware pool should be
// the kernel's own (kernel.Hardware) so counter contention with any other
// monitoring stays modeled.
func NewManager(cfg Config, machine *amp.Machine, hw *perfcnt.Hardware) *Manager {
	cfg = cfg.Normalized()
	m := &Manager{cfg: cfg, machine: machine, hw: hw}
	fastCps, totalCps := 0.0, 0.0
	m.fastType, m.slowType = 0, 0
	for i, t := range machine.Types {
		if t.CyclesPerSec > machine.Types[m.fastType].CyclesPerSec {
			m.fastType = amp.CoreTypeID(i)
		}
		if t.CyclesPerSec < machine.Types[m.slowType].CyclesPerSec {
			m.slowType = amp.CoreTypeID(i)
		}
	}
	for _, c := range machine.Cores {
		cps := machine.Types[c.Type].CyclesPerSec
		totalCps += cps
		if c.Type == m.fastType {
			fastCps += cps
		}
	}
	if totalCps > 0 {
		m.fastShare = fastCps / totalCps
	}
	return m
}

// Config returns the effective (default-filled) configuration.
func (m *Manager) Config() Config { return m.cfg }

// Stats returns the aggregate monitoring statistics.
func (m *Manager) Stats() Stats { return m.stats }

// PhasesOf returns the classifier of a task (nil if the task was never
// monitored) — test and diagnostic access.
func (m *Manager) PhasesOf(t *osched.Task) *Classifier {
	for _, ts := range m.live {
		if ts.task == t {
			return ts.cls
		}
	}
	return nil
}

// OnTick implements osched.TaskMonitor: adopt newly spawned tasks, retire
// exited ones, close matured windows, and apply the reassignment policy.
func (m *Manager) OnTick(k *osched.Kernel, atPs int64) {
	// Adopt tasks spawned since the last tick (kernel task list is
	// append-only).
	tasks := k.Tasks()
	for ; m.seen < len(tasks); m.seen++ {
		t := tasks[m.seen]
		if t.State == osched.TaskExited {
			continue
		}
		m.live = append(m.live, &taskState{
			task:      t,
			cls:       NewClassifier(m.cfg.ClassifyEps, m.cfg.MaxPhases, len(m.machine.Types)),
			phase:     -1,
			decisions: map[int]*phaseDecision{},
		})
	}

	// Sample, releasing state for exited tasks in place.
	kept := m.live[:0]
	for _, ts := range m.live {
		if ts.task.State == osched.TaskExited {
			if ts.open {
				m.hw.Release()
				ts.open = false
			}
			continue
		}
		m.sample(k, ts)
		kept = append(kept, ts)
	}
	m.live = kept

	switch m.cfg.Policy {
	case Greedy:
		m.greedyRebalance(k)
	case Probe:
		m.probeRebalance(k)
	}
}

// sample advances one task's windowing: close a matured window (classify,
// run the per-task policy) and open the next. Opening draws an event set
// from the bounded counter pool; when none is free the attempt is deferred
// to the next tick (perfcnt counts the contention).
func (m *Manager) sample(k *osched.Kernel, ts *taskState) {
	t := ts.task
	if ts.open {
		instrs, cycles, memRefs := ts.es.StopFull(&t.Proc.Counters)
		if instrs < m.cfg.WindowInstrs {
			return // window still filling
		}
		// Close: the counter read and classification are charged to the
		// monitored task — the overhead the paper says dynamic schemes
		// cannot avoid.
		m.hw.Release()
		ts.open = false
		if m.cfg.SampleCycles > 0 {
			k.Penalize(t, m.cfg.SampleCycles)
			m.stats.ChargedCycles += uint64(m.cfg.SampleCycles)
		}

		if cycles == 0 || t.Migrations != ts.openMigr || t.Core() < 0 {
			m.stats.Discarded++
		} else {
			sig := Signature{
				IPC:     perfcnt.IPC(instrs, cycles),
				MemFrac: float64(memRefs) / float64(instrs),
			}
			coreType := m.machine.Cores[t.Core()].Type
			phase, founded := ts.cls.Classify(sig, coreType)
			ts.phase = phase
			ts.windows++
			m.stats.Windows++
			if founded {
				m.stats.Phases++
			}
			a := m.cfg.IPCSmoothing
			if ts.windows == 1 {
				ts.ipcEWMA = sig.IPC
			} else {
				ts.ipcEWMA += a * (sig.IPC - ts.ipcEWMA)
			}
			if m.cfg.Policy == Probe {
				m.probe(k, ts)
			}
		}
	}
	if !ts.open && m.hw.TryAcquire() {
		ts.es = perfcnt.Start(&t.Proc.Counters)
		ts.openMigr = t.Migrations
		ts.open = true
	}
}

// probe drives the sampling policy for one task after a window closed on
// phase ts.phase: steer the task toward the least-measured core type until
// every type has ProbeWindows accepted windows, then fix the phase's
// placement with Algorithm 2. Decided tasks are placed by probeRebalance.
func (m *Manager) probe(k *osched.Kernel, ts *taskState) {
	phase := ts.phase
	if _, ok := ts.decisions[phase]; ok {
		ts.probing = false
		return
	}
	// Find the least-measured core type; decide once all are covered.
	probeType, probeN := amp.CoreTypeID(0), int(^uint(0)>>1)
	done := true
	for i := range m.machine.Types {
		_, n := ts.cls.TypeIPC(phase, amp.CoreTypeID(i))
		if n < m.cfg.ProbeWindows {
			done = false
		}
		if n < probeN {
			probeType, probeN = amp.CoreTypeID(i), n
		}
	}
	if !done {
		ts.probing = true
		m.apply(k, ts, m.machine.TypeMask(probeType))
		return
	}
	f := make([]float64, len(m.machine.Types))
	rates := make([]float64, len(m.machine.Types))
	for i := range f {
		f[i], _ = ts.cls.TypeIPC(phase, amp.CoreTypeID(i))
		rates[i] = f[i] * m.machine.Types[i].CyclesPerSec
	}
	ts.decisions[phase] = &phaseDecision{choice: tuning.Select(m.machine, f, m.cfg.Delta), rates: rates}
	ts.probing = false
	m.stats.Decisions++
}

// probeRebalance places every decided task, honoring measured preferences
// under a capacity constraint. Per-phase Algorithm 2 choices alone herd
// tasks: a workload dominated by memory-bound jobs would pile every task
// onto the slow pair while fast cores idle. So preferences are demands, and
// overflow beyond a type's capacity share spills the cheapest tasks — loss
// is priced from the phase's measured per-type instruction rates, and a
// DRAM-bound task costs ~nothing to run on a fast core (fixed wall-clock
// memory latency), so memory phases spill to idle fast cores first.
func (m *Manager) probeRebalance(k *osched.Kernel) {
	nTypes := len(m.machine.Types)
	if nTypes < 2 {
		return
	}
	type placed struct {
		ts  *taskState
		dec *phaseDecision
		typ amp.CoreTypeID
	}
	var tasks []placed
	for _, ts := range m.live {
		if ts.probing || ts.phase < 0 {
			continue
		}
		dec, ok := ts.decisions[ts.phase]
		if !ok {
			continue
		}
		tasks = append(tasks, placed{ts: ts, dec: dec, typ: dec.choice})
	}
	if len(tasks) == 0 {
		return
	}

	// Capacity quota per type: cycle-capacity share of the decided tasks,
	// with a one-task band so a task at the boundary does not flap.
	demand := make([]int, nTypes)
	quota := make([]int, nTypes)
	totalCps := 0.0
	for _, c := range m.machine.Cores {
		totalCps += m.machine.Types[c.Type].CyclesPerSec
	}
	for i := range quota {
		typCps := 0.0
		for _, c := range m.machine.Cores {
			if int(c.Type) == i {
				typCps += m.machine.Types[c.Type].CyclesPerSec
			}
		}
		quota[i] = int(float64(len(tasks))*typCps/totalCps + 0.5)
	}
	for i := range tasks {
		demand[int(tasks[i].typ)]++
	}

	const band = 1
	for round := 0; round < len(tasks)*nTypes; round++ {
		// Most oversubscribed type, most undersubscribed type.
		over, under := -1, -1
		for i := 0; i < nTypes; i++ {
			if demand[i] > quota[i]+band && (over == -1 || demand[i]-quota[i] > demand[over]-quota[over]) {
				over = i
			}
			if demand[i] < quota[i] && (under == -1 || quota[i]-demand[i] > quota[under]-demand[under]) {
				under = i
			}
		}
		if over == -1 || under == -1 {
			break
		}
		// Spill the task whose measured rate loses least on the target
		// type; prefer tasks already spilled there (no new switch).
		best, bestLoss := -1, 0.0
		for i := range tasks {
			if int(tasks[i].typ) != over {
				continue
			}
			loss := tasks[i].dec.rates[over] - tasks[i].dec.rates[under]
			if tasks[i].ts.wantMask == m.machine.TypeMask(amp.CoreTypeID(under)) {
				loss -= tasks[i].dec.rates[over] * hysteresisBonus
			}
			if best == -1 || loss < bestLoss {
				best, bestLoss = i, loss
			}
		}
		if best == -1 {
			break
		}
		tasks[best].typ = amp.CoreTypeID(under)
		demand[over]--
		demand[under]++
	}

	for _, p := range tasks {
		m.apply(k, p.ts, m.machine.TypeMask(p.typ))
	}
}

// hysteresisBonus discounts the spill loss of a task already placed on the
// spill target, so marginal spill choices stick across ticks.
const hysteresisBonus = 0.05

// apply requests an affinity mask for a task, counting only real changes.
func (m *Manager) apply(k *osched.Kernel, ts *taskState, mask uint64) {
	if mask == 0 || mask == ts.wantMask {
		return
	}
	ts.wantMask = mask
	if ts.task.Affinity != mask {
		m.stats.Switches++
		k.SetAffinity(ts.task, mask)
	}
}

// greedyRebalance ranks scored tasks by smoothed IPC and grants the fast
// type's capacity share to the top of the ranking, the rest to the slowest
// type. A one-position hysteresis band keeps tasks at the quota boundary
// from flapping between masks every tick.
func (m *Manager) greedyRebalance(k *osched.Kernel) {
	if m.fastType == m.slowType {
		return // symmetric machine: nothing to place
	}
	scored := make([]*taskState, 0, len(m.live))
	for _, ts := range m.live {
		if ts.windows > 0 {
			scored = append(scored, ts)
		}
	}
	if len(scored) == 0 {
		return
	}
	sort.SliceStable(scored, func(a, b int) bool {
		return scored[a].ipcEWMA > scored[b].ipcEWMA
	})
	// Fast-slot quota: the fast type's cycle-capacity share of the ranked
	// tasks — but never below one task per fast core while fast cores are
	// undersubscribed (on an idle machine every task belongs on a fast
	// core; pinning the lower ranks to slow cores would only idle capacity).
	quota := int(float64(len(scored))*m.fastShare + 0.5)
	if nFast := len(m.machine.CoresOfType(m.fastType)); quota < nFast {
		quota = nFast
		if quota > len(scored) {
			quota = len(scored)
		}
	}
	const band = 1
	fastMask := m.machine.TypeMask(m.fastType)
	slowMask := m.machine.TypeMask(m.slowType)
	for i, ts := range scored {
		// Clear of the boundary band, the quota decides; inside the band an
		// already-placed task keeps its side (hysteresis) and an unplaced
		// task takes the raw quota cut — so the quota fills from a cold
		// start even when it is no larger than the band.
		var mask uint64
		switch {
		case i < quota-band:
			mask = fastMask
		case i >= quota+band:
			mask = slowMask
		case ts.wantMask == fastMask || ts.wantMask == slowMask:
			mask = ts.wantMask
		case i < quota:
			mask = fastMask
		default:
			mask = slowMask
		}
		m.apply(k, ts, mask)
	}
}
