package online

import (
	"sort"

	"phasetune/internal/amp"
	"phasetune/internal/osched"
	"phasetune/internal/perfcnt"
	"phasetune/internal/place"
	"phasetune/internal/trace"
)

// taskState is the detector's per-process bookkeeping.
type taskState struct {
	task *osched.Task
	cls  *Classifier

	// Open window: counter snapshot plus the migration count at open, so a
	// window spanning a core switch can be discarded (its IPC would blend
	// two core types).
	es       perfcnt.EventSet
	open     bool
	openMigr int
	windows  uint64
	// phase is the last classified phase (-1 before the first window).
	phase int
	// ipcEWMA is the greedy policy's smoothed IPC estimate.
	ipcEWMA float64
	// decisions holds the probe policy's fixed per-phase placements, made
	// by the shared engine (place.Engine.Decide) once every core type has
	// been measured for the phase.
	decisions map[int]*place.Decision
	// probing is true while the probe policy is steering this task to an
	// unmeasured core type; the placement pass leaves probing tasks alone.
	probing bool
	// wantMask is the mask this manager last requested for the task (0 =
	// never reassigned), used to count real switches and damp flapping.
	wantMask uint64
}

// prevType maps a task's last requested mask back to a core type for the
// engine's hysteresis: HasPrev only when the mask is exactly one type's.
func (ts *taskState) prevType(m *amp.Machine) (amp.CoreTypeID, bool) {
	if ts.wantMask == 0 {
		return 0, false
	}
	for i := range m.Types {
		if ts.wantMask == m.TypeMask(amp.CoreTypeID(i)) {
			return amp.CoreTypeID(i), true
		}
	}
	return 0, false
}

// Manager is the online phase-detection runtime: it implements
// osched.TaskMonitor, sampling every live task's virtualized counters in
// fixed instruction windows and classifying window signatures into phases.
// Everything placement — Algorithm 2 decisions, capacity quotas, spill
// arbitration, ranked fast-slot assignment — is delegated to the shared
// placement engine (internal/place); the manager's own job ends at
// producing IPC estimates and handing the engine claims. One Manager serves
// one kernel (one run); it is not safe for concurrent use, matching the
// kernel's single-threaded event loop.
type Manager struct {
	cfg     Config
	machine *amp.Machine
	hw      *perfcnt.Hardware
	engine  *place.Engine

	seen  int // cursor into kernel.Tasks()
	live  []*taskState
	stats Stats
	tr    *trace.Tracer
}

// NewManager builds the runtime for one kernel. The hardware pool should be
// the kernel's own (kernel.Hardware) so counter contention with any other
// monitoring stays modeled. pcfg parameterizes the shared placement
// engine's arbitration (zero value takes defaults).
func NewManager(cfg Config, pcfg place.Config, machine *amp.Machine, hw *perfcnt.Hardware) *Manager {
	cfg = cfg.Normalized()
	return &Manager{
		cfg:     cfg,
		machine: machine,
		hw:      hw,
		engine:  place.NewEngine(machine, cfg.Delta, pcfg),
	}
}

// Config returns the effective (default-filled) configuration.
func (m *Manager) Config() Config { return m.cfg }

// Stats returns the aggregate monitoring statistics.
func (m *Manager) Stats() Stats { return m.stats }

// Engine returns the shared placement engine (test and diagnostic access).
func (m *Manager) Engine() *place.Engine { return m.engine }

// SetTracer attaches a trace sink to the runtime and its placement
// engine: window closes, classifications, and decisions are emitted
// stamped at the kernel's simulated clock. Nil disables tracing.
func (m *Manager) SetTracer(tr *trace.Tracer) {
	m.tr = tr
	m.engine.SetTracer(tr)
}

// PhasesOf returns the classifier of a task (nil if the task was never
// monitored) — test and diagnostic access.
func (m *Manager) PhasesOf(t *osched.Task) *Classifier {
	for _, ts := range m.live {
		if ts.task == t {
			return ts.cls
		}
	}
	return nil
}

// OnTick implements osched.TaskMonitor: adopt newly spawned tasks, retire
// exited ones, close matured windows, and apply the reassignment policy.
func (m *Manager) OnTick(k *osched.Kernel, atPs int64) {
	// Adopt tasks spawned since the last tick (kernel task list is
	// append-only).
	tasks := k.Tasks()
	for ; m.seen < len(tasks); m.seen++ {
		t := tasks[m.seen]
		if t.State == osched.TaskExited {
			continue
		}
		m.live = append(m.live, &taskState{
			task:      t,
			cls:       NewClassifier(m.cfg.ClassifyEps, m.cfg.MaxPhases, len(m.machine.Types)),
			phase:     -1,
			decisions: map[int]*place.Decision{},
		})
	}

	// Sample, releasing state for exited tasks in place.
	kept := m.live[:0]
	for _, ts := range m.live {
		if ts.task.State == osched.TaskExited {
			if ts.open {
				m.hw.Release()
				ts.open = false
			}
			continue
		}
		m.sample(k, ts)
		kept = append(kept, ts)
	}
	m.live = kept

	switch m.cfg.Policy {
	case Greedy:
		m.greedyRebalance(k)
	case Probe:
		m.probeRebalance(k)
	}
}

// sample advances one task's windowing: close a matured window (classify,
// run the per-task policy) and open the next. Opening draws an event set
// from the bounded counter pool; when none is free the attempt is deferred
// to the next tick (perfcnt counts the contention).
func (m *Manager) sample(k *osched.Kernel, ts *taskState) {
	t := ts.task
	if ts.open {
		instrs, cycles, memRefs := ts.es.StopFull(&t.Proc.Counters)
		if instrs < m.cfg.WindowInstrs {
			return // window still filling
		}
		// Close: the counter read and classification are charged to the
		// monitored task — the overhead the paper says dynamic schemes
		// cannot avoid.
		m.hw.Release()
		ts.open = false
		if m.cfg.SampleCycles > 0 {
			k.Penalize(t, m.cfg.SampleCycles)
			m.stats.ChargedCycles += uint64(m.cfg.SampleCycles)
		}

		if cycles == 0 || t.Migrations != ts.openMigr || t.Core() < 0 {
			m.stats.Discarded++
			if m.tr != nil {
				m.tr.InstantNow("online", "window.discard", trace.PidTasks, t.Proc.PID)
			}
		} else {
			sig := Signature{
				IPC:     perfcnt.IPC(instrs, cycles),
				MemFrac: float64(memRefs) / float64(instrs),
			}
			coreType := m.machine.Cores[t.Core()].Type
			phase, founded := ts.cls.Classify(sig, coreType)
			ts.phase = phase
			ts.windows++
			m.stats.Windows++
			if founded {
				m.stats.Phases++
			}
			if m.tr != nil {
				m.tr.InstantNow("online", "window", trace.PidTasks, t.Proc.PID,
					trace.Arg{Key: "phase", Value: phase},
					trace.Arg{Key: "ipc", Value: sig.IPC},
					trace.Arg{Key: "mem_frac", Value: sig.MemFrac},
					trace.Arg{Key: "instrs", Value: instrs},
					trace.Arg{Key: "core_type", Value: m.machine.Types[coreType].Name},
					trace.Arg{Key: "new_phase", Value: founded})
			}
			a := m.cfg.IPCSmoothing
			if ts.windows == 1 {
				ts.ipcEWMA = sig.IPC
			} else {
				ts.ipcEWMA += a * (sig.IPC - ts.ipcEWMA)
			}
			if m.cfg.Policy == Probe {
				m.probe(k, ts)
			}
		}
	}
	if !ts.open && m.hw.TryAcquire() {
		ts.es = perfcnt.Start(&t.Proc.Counters)
		ts.openMigr = t.Migrations
		ts.open = true
	}
}

// probe drives the sampling policy for one task after a window closed on
// phase ts.phase: steer the task toward the least-measured core type until
// every type has ProbeWindows accepted windows, then fix the phase's
// placement with the shared engine's Algorithm 2. Decided tasks are placed
// by probeRebalance.
func (m *Manager) probe(k *osched.Kernel, ts *taskState) {
	phase := ts.phase
	if _, ok := ts.decisions[phase]; ok {
		ts.probing = false
		return
	}
	// Find the least-measured core type; decide once all are covered.
	probeType, probeN := amp.CoreTypeID(0), int(^uint(0)>>1)
	done := true
	for i := range m.machine.Types {
		_, n := ts.cls.TypeIPC(phase, amp.CoreTypeID(i))
		if n < m.cfg.ProbeWindows {
			done = false
		}
		if n < probeN {
			probeType, probeN = amp.CoreTypeID(i), n
		}
	}
	if !done {
		ts.probing = true
		m.apply(k, ts, m.machine.TypeMask(probeType))
		return
	}
	f := make([]float64, len(m.machine.Types))
	for i := range f {
		f[i], _ = ts.cls.TypeIPC(phase, amp.CoreTypeID(i))
	}
	dec := m.engine.Decide(f)
	dec.Mem = memStatsOf(ts.task.Proc.Img)
	ts.decisions[phase] = &dec
	ts.probing = false
	m.stats.Decisions++
	if m.tr != nil {
		m.tr.InstantNow("online", "decision", trace.PidTasks, ts.task.Proc.PID,
			trace.Arg{Key: "phase", Value: phase},
			trace.Arg{Key: "choice", Value: m.machine.Types[dec.Choice].Name})
	}
}

// probeRebalance places every decided task through the shared engine's
// capacity arbitration (place.Engine.Arbitrate): per-phase Algorithm 2
// choices are demands, and overflow beyond a type's cycle-capacity share
// spills the cheapest tasks to undersubscribed types.
func (m *Manager) probeRebalance(k *osched.Kernel) {
	if len(m.machine.Types) < 2 {
		return
	}
	var placed []*taskState
	var claims []place.Claim
	for _, ts := range m.live {
		if ts.probing || ts.phase < 0 {
			continue
		}
		dec, ok := ts.decisions[ts.phase]
		if !ok {
			continue
		}
		prev, hasPrev := ts.prevType(m.machine)
		placed = append(placed, ts)
		claims = append(claims, place.Claim{Dec: dec, Prev: prev, HasPrev: hasPrev})
	}
	if len(claims) == 0 {
		return
	}
	assigned := m.engine.Arbitrate(claims)
	for i, ts := range placed {
		// Ledger attribution: arbitration overriding the task's own
		// Algorithm 2 choice is a knowing spill, not a misprediction.
		ts.task.Proc.SetSpilled(assigned[i] != claims[i].Dec.Choice)
		m.apply(k, ts, m.machine.TypeMask(assigned[i]))
	}
}

// apply requests an affinity mask for a task, counting only real changes.
func (m *Manager) apply(k *osched.Kernel, ts *taskState, mask uint64) {
	if mask == 0 || mask == ts.wantMask {
		return
	}
	ts.wantMask = mask
	if ts.task.Affinity != mask {
		m.stats.Switches++
		k.SetAffinity(ts.task, mask)
	}
}

// greedyRebalance ranks scored tasks by smoothed IPC and hands the ranking
// to the shared engine's fast-slot assignment (place.Engine.AssignRanked):
// the fast type's capacity share goes to the top ranks, the rest to the
// slowest type, with a hysteresis band at the quota boundary.
func (m *Manager) greedyRebalance(k *osched.Kernel) {
	cap := m.engine.Capacity()
	if cap.FastType() == cap.SlowType() {
		return // symmetric machine: nothing to place
	}
	scored := make([]*taskState, 0, len(m.live))
	for _, ts := range m.live {
		if ts.windows > 0 {
			scored = append(scored, ts)
		}
	}
	if len(scored) == 0 {
		return
	}
	sort.SliceStable(scored, func(a, b int) bool {
		return scored[a].ipcEWMA > scored[b].ipcEWMA
	})
	claims := make([]place.Claim, len(scored))
	for i, ts := range scored {
		prev, hasPrev := ts.prevType(m.machine)
		claims[i] = place.Claim{Prev: prev, HasPrev: hasPrev}
	}
	assigned := m.engine.AssignRanked(claims)
	for i, ts := range scored {
		m.apply(k, ts, m.machine.TypeMask(assigned[i]))
	}
}
