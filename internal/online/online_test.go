package online_test

import (
	"testing"

	"phasetune/internal/amp"
	"phasetune/internal/exec"
	"phasetune/internal/online"
	"phasetune/internal/osched"
	"phasetune/internal/perfcnt"
	"phasetune/internal/phase"
	"phasetune/internal/place"
	"phasetune/internal/prog"
	"phasetune/internal/sim"
	"phasetune/internal/transition"
	"phasetune/internal/workload"
)

// --- Classifier -----------------------------------------------------------

func TestClassifierStableSignaturesOneCluster(t *testing.T) {
	cl := online.NewClassifier(0.25, 6, 2)
	for i := 0; i < 50; i++ {
		ph, founded := cl.Classify(online.Signature{IPC: 2.9, MemFrac: 0.16}, amp.FastType)
		if ph != 0 {
			t.Fatalf("window %d classified to phase %d, want 0", i, ph)
		}
		if founded != (i == 0) {
			t.Fatalf("window %d founded=%v", i, founded)
		}
	}
	if cl.NumPhases() != 1 {
		t.Fatalf("NumPhases = %d, want 1", cl.NumPhases())
	}
}

func TestClassifierSeparatesMemFromCompute(t *testing.T) {
	cl := online.NewClassifier(0.25, 6, 2)
	cpu, _ := cl.Classify(online.Signature{IPC: 2.9, MemFrac: 0.16}, amp.FastType)
	mem, _ := cl.Classify(online.Signature{IPC: 0.3, MemFrac: 0.75}, amp.FastType)
	if cpu == mem {
		t.Fatalf("compute and memory signatures merged into one phase")
	}
	// The same phase observed on the other core type with a different IPC
	// must NOT found a new phase: cross-type IPC difference is asymmetry,
	// not phase change.
	mem2, founded := cl.Classify(online.Signature{IPC: 0.45, MemFrac: 0.75}, amp.SlowType)
	if founded || mem2 != mem {
		t.Fatalf("slow-core observation of the memory phase founded a new cluster (phase %d vs %d)", mem2, mem)
	}
	ipcSlow, n := cl.TypeIPC(mem, amp.SlowType)
	if n != 1 || ipcSlow != 0.45 {
		t.Fatalf("slow-type IPC stat = (%v, %d), want (0.45, 1)", ipcSlow, n)
	}
}

func TestClassifierRespectsMaxPhases(t *testing.T) {
	cl := online.NewClassifier(0.01, 3, 2)
	for i := 0; i < 20; i++ {
		cl.Classify(online.Signature{IPC: 0.2 + 0.3*float64(i), MemFrac: 0.05 * float64(i%10)}, amp.FastType)
	}
	if cl.NumPhases() > 3 {
		t.Fatalf("NumPhases = %d exceeds cap 3", cl.NumPhases())
	}
}

// --- Convergence: dynamic placement == static Algorithm 2 -----------------

// stableProgram builds a single-phase program: the same block mix repeated,
// so its runtime behavior is one stable phase.
func stableProgram(t *testing.T, name string, mix prog.BlockMix, trips float64) *prog.Program {
	t.Helper()
	b := prog.NewBuilder(name)
	pb := b.Proc("main")
	b.SetEntry("main")
	pb.Loop(trips, func(pb *prog.ProcBuilder) { pb.Straight(mix) })
	pb.Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// isolatedIPC measures the program's IPC on every core type in isolation —
// the exact input the paper's Algorithm 2 consumes.
func isolatedIPC(t *testing.T, p *prog.Program, cm exec.CostModel, machine *amp.Machine) []float64 {
	t.Helper()
	img, err := exec.NewImage(p, nil, cm)
	if err != nil {
		t.Fatal(err)
	}
	pars := exec.ParamsFor(cm, machine)
	out := make([]float64, len(pars))
	for i := range pars {
		proc := exec.NewProcess(1, img, &cm, 7, nil)
		es := perfcnt.Start(&proc.Counters)
		proc.RunIsolated(&pars[i], machine.CoresOfType(pars[i].Type)[0], machine.L2s[0].SizeKB, 0)
		instrs, cycles := es.Stop(&proc.Counters)
		out[i] = perfcnt.IPC(instrs, cycles)
	}
	return out
}

// TestProbeConvergesToAlgorithm2 is the convergence property the showdown
// rests on: on a phase-stable program, the online probe detector's final
// placement must equal the assignment static Algorithm 2 computes from
// isolated per-core-type IPC.
func TestProbeConvergesToAlgorithm2(t *testing.T) {
	machine := amp.Quad2Fast2Slow()
	cm := exec.DefaultCostModel()
	ocfg := online.DefaultConfig()
	ocfg.Policy = online.Probe

	cases := []struct {
		name string
		mix  prog.BlockMix
	}{
		{"memstable", prog.BlockMix{Load: 16, Store: 8, IntALU: 8, WorkingSetKB: 3072, Locality: 0.94}},
		{"cpustable", prog.BlockMix{IntALU: 30, IntMul: 6}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := stableProgram(t, tc.name, tc.mix, 20000)
			want := machine.TypeMask(place.Select(machine, isolatedIPC(t, p, cm, machine), ocfg.Delta))

			bench := &workload.Benchmark{Spec: workload.BenchSpec{Name: tc.name}, Prog: p}
			w := &workload.Workload{Slots: [][]*workload.Benchmark{{bench}}}
			res, err := sim.Run(sim.RunConfig{
				Machine: machine, Cost: &cm,
				Workload: w, DurationSec: 60, Mode: sim.Dynamic, Online: ocfg, Seed: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Online == nil || res.Online.Decisions == 0 {
				t.Fatalf("online detector made no placement decisions (stats %+v)", res.Online)
			}
			got := res.Tasks[0].FinalAffinity
			if got != want {
				t.Fatalf("final placement mask = %b, want %b (Algorithm 2 on isolated IPC %v)",
					got, want, isolatedIPC(t, p, cm, machine))
			}
		})
	}
}

// --- Counter contention under periodic sampling ---------------------------

// TestBoundedCounterPoolDefersSampling covers the perfcnt Hardware
// contention path under periodic sampling: with fewer event sets than
// monitored tasks, window-open attempts defer (and are counted), the
// detector still makes progress, and the pool never over-releases.
func TestBoundedCounterPoolDefersSampling(t *testing.T) {
	machine := amp.Quad2Fast2Slow()
	cm := exec.DefaultCostModel()
	sched := osched.DefaultConfig()
	sched.CounterSlots = 2

	mix := prog.BlockMix{IntALU: 20, IntMul: 4, Load: 4, Store: 2, WorkingSetKB: 64, Locality: 0.98}
	var slots [][]*workload.Benchmark
	for i := 0; i < 6; i++ {
		name := "contend" + string(rune('a'+i))
		bench := &workload.Benchmark{Spec: workload.BenchSpec{Name: name},
			Prog: stableProgram(t, name, mix, 50000)}
		slots = append(slots, []*workload.Benchmark{bench})
	}
	res, err := sim.Run(sim.RunConfig{
		Machine: machine, Cost: &cm, Sched: &sched,
		Workload:    &workload.Workload{Slots: slots},
		DurationSec: 40, Mode: sim.Dynamic, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CounterDefers == 0 {
		t.Fatalf("expected counter deferrals with 2 event sets and 6 monitored tasks")
	}
	if res.Online == nil || res.Online.Windows == 0 {
		t.Fatalf("detector made no progress under contention (stats %+v)", res.Online)
	}
}

// TestUnboundedPoolNoDefers is the control: with the default unlimited
// pool, periodic sampling never defers.
func TestUnboundedPoolNoDefers(t *testing.T) {
	machine := amp.Quad2Fast2Slow()
	cm := exec.DefaultCostModel()
	mix := prog.BlockMix{IntALU: 20, Load: 4, WorkingSetKB: 64, Locality: 0.98}
	bench := &workload.Benchmark{Spec: workload.BenchSpec{Name: "solo"},
		Prog: stableProgram(t, "solo", mix, 20000)}
	res, err := sim.Run(sim.RunConfig{
		Machine: machine, Cost: &cm,
		Workload:    &workload.Workload{Slots: [][]*workload.Benchmark{{bench}}},
		DurationSec: 30, Mode: sim.Dynamic, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CounterDefers != 0 {
		t.Fatalf("unexpected deferrals %d with an unbounded pool", res.CounterDefers)
	}
}

// --- Oracle ---------------------------------------------------------------

// TestOracleAssignmentsSplitTypes checks the oracle computes opposite
// placements for a memory-bound and a compute-bound phase of an
// alternating benchmark (the discriminating signal of the whole paper).
func TestOracleAssignmentsSplitTypes(t *testing.T) {
	machine := amp.Quad2Fast2Slow()
	cm := exec.DefaultCostModel()
	suite, err := workload.Suite(cm, machine)
	if err != nil {
		t.Fatal(err)
	}
	// 183.equake alternates CPU and DRAM phases: its oracle assignment must
	// use both core types.
	var equake *workload.Benchmark
	for _, b := range suite {
		if b.Name() == "183.equake" {
			equake = b
		}
	}
	topts := phase.Options{K: 2, MinBlockInstrs: 5}
	img, _, err := sim.PrepareImage(equake.Prog,
		transition.Params{Technique: transition.Loop, MinSize: 45, PropagateThroughUntyped: true},
		topts, 0, 1, cm)
	if err != nil {
		t.Fatal(err)
	}
	masks, err := online.OracleAssignments(img, topts, cm, machine, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[uint64]bool{}
	for _, m := range masks {
		distinct[m] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("oracle assignments %v use %d distinct masks, want both core types", masks, len(distinct))
	}
}
