package online

import (
	"phasetune/internal/amp"
	"phasetune/internal/exec"
	"phasetune/internal/osched"
	"phasetune/internal/perfcnt"
	"phasetune/internal/phase"
	"phasetune/internal/place"
	"phasetune/internal/trace"
)

// Hybrid is the marks+windows hybrid runtime — the paper's §VI-B "simple
// feedback mechanism" grown into a full placement policy on top of the
// shared engine (internal/place):
//
//   - phase *boundaries* come from static marks (instrumented binaries), so
//     placement switches exactly where behavior changes — no window-blur
//     misprediction, the static technique's strength;
//   - per-(phase, core-type) IPC *estimates* come from monitor windows that
//     keep refreshing for the lifetime of the process, so a phase whose
//     behavior drifts (input-dependent working sets, cache contention) is
//     re-decided from current evidence — the dynamic technique's strength;
//   - every placement goes through the shared engine: Algorithm 2 fixes
//     each phase's choice, and capacity arbitration spills overflow, so
//     the hybrid herds on neither memory- nor compute-dominant mixes.
//
// The runtime spans both hook planes: a per-process mark hook (Hook) feeds
// boundary transitions and closes measurement windows exactly at phase
// edges, while the kernel-side TaskMonitor tick matures long windows,
// charges monitoring overhead, and re-applies arbitrated masks machine-wide.
// One Hybrid serves one kernel; it is not safe for concurrent use, matching
// the kernel's single-threaded event loop.
type Hybrid struct {
	cfg     Config
	machine *amp.Machine
	hw      *perfcnt.Hardware
	engine  *place.Engine
	stats   Stats

	seen      int // cursor into kernel.Tasks()
	taskByPID map[int]*osched.Task
	states    []*hybridState // first-mark order (deterministic passes)
	byPID     map[int]*hybridState
	tr        *trace.Tracer
}

// hybridState is one process's bookkeeping.
type hybridState struct {
	pid  int
	proc *exec.Process
	task *osched.Task // nil until the first monitor tick after spawn

	// cur is the mark-declared current phase type.
	cur phase.Type
	// table holds the refreshed per-(phase, core-type) IPC estimates and
	// the engine decisions derived from them.
	table *place.Table
	// phases records which phase types were entered at least once.
	phases map[phase.Type]bool

	// Open measurement window (the same discipline as the online manager:
	// a window spanning a migration is discarded).
	es       perfcnt.EventSet
	open     bool
	openMigr int

	probing  bool
	wantMask uint64
	exited   bool
}

// minBoundaryInstrs is the floor below which a boundary-closed window is
// too short to estimate IPC — the same floor the static runtime applies to
// representative sections (tuning MinSectionInstrs).
const minBoundaryInstrs = 200

// NewHybrid builds the hybrid runtime for one kernel. The hardware pool
// should be the kernel's own so counter contention stays modeled; pcfg
// parameterizes the shared engine's capacity arbitration. Of cfg, the
// hybrid consumes WindowInstrs, TickSec, SampleCycles, Delta, ProbeWindows,
// and Hybrid.Drift; the classification knobs are unused (marks classify).
func NewHybrid(cfg Config, pcfg place.Config, machine *amp.Machine, hw *perfcnt.Hardware) *Hybrid {
	cfg = cfg.Normalized()
	return &Hybrid{
		cfg:       cfg,
		machine:   machine,
		hw:        hw,
		engine:    place.NewEngine(machine, cfg.Delta, pcfg),
		taskByPID: map[int]*osched.Task{},
		byPID:     map[int]*hybridState{},
	}
}

// Config returns the effective (default-filled) configuration.
func (m *Hybrid) Config() Config { return m.cfg }

// Stats returns the aggregate monitoring statistics.
func (m *Hybrid) Stats() Stats { return m.stats }

// Engine returns the shared placement engine (test and diagnostic access).
func (m *Hybrid) Engine() *place.Engine { return m.engine }

// SetTracer attaches a trace sink to the runtime and its placement
// engine: boundary window closes, re-decisions, and drift-damped
// refreshes are emitted stamped at the kernel's simulated clock. Nil
// disables tracing.
func (m *Hybrid) SetTracer(tr *trace.Tracer) {
	m.tr = tr
	m.engine.SetTracer(tr)
}

// Hook returns the per-process mark hook of one image's process. The
// simulator installs it on every spawned process of a hybrid run.
func (m *Hybrid) Hook(img *exec.Image) exec.MarkHook {
	return &hybridHook{m: m, img: img}
}

// hybridHook adapts one process's mark stream onto the shared runtime.
type hybridHook struct {
	m   *Hybrid
	img *exec.Image
}

// state returns (creating) the process's runtime state.
func (m *Hybrid) state(p *exec.Process) *hybridState {
	st, ok := m.byPID[p.PID]
	if !ok {
		st = &hybridState{
			pid:    p.PID,
			proc:   p,
			task:   m.taskByPID[p.PID],
			cur:    phase.Untyped,
			table:  place.NewTable(len(m.machine.Types)),
			phases: map[phase.Type]bool{},
		}
		m.byPID[p.PID] = st
		m.states = append(m.states, st)
	}
	return st
}

// OnMark implements exec.MarkHook: a phase boundary. On a real transition
// the measurement window closes exactly at the edge (attributed to the
// phase being exited), and the hook either reads the new phase's
// arbitrated mask from the engine or steers toward the least-measured
// core type while the phase is still unmeasured. A same-phase re-mark
// (mark-dense steady-state loops) leaves the window open: it has no
// cross-phase blur to guard against, and closing there would throttle
// evidence to the boundary-window floor.
func (h *hybridHook) OnMark(p *exec.Process, markID, coreID int) exec.MarkAction {
	m := h.m
	st := m.state(p)
	pt := h.img.MarkType(markID)
	if pt == st.cur {
		return exec.MarkAction{}
	}
	if st.open {
		m.closeWindow(st, coreID, false)
	}
	st.cur = pt
	if pt == phase.Untyped {
		m.engine.Leave(st.pid)
		p.SetSpilled(false)
		st.probing = false
		return exec.MarkAction{}
	}
	if !st.phases[pt] {
		st.phases[pt] = true
		m.stats.Phases++
	}
	if dec := st.table.DecisionOf(int(pt)); dec != nil {
		st.probing = false
		m.engine.Enter(st.pid, *dec)
		mask := m.engine.MaskFor(st.pid)
		// Ledger attribution: the engine parking the task off its chosen
		// type is a knowing spill, not a misprediction.
		p.SetSpilled(mask != m.machine.TypeMask(dec.Choice))
		return m.request(st, mask)
	}
	// Unmeasured phase: probe. Not a capacity claim until decided.
	m.engine.Leave(st.pid)
	p.SetSpilled(false)
	st.probing = true
	ct := st.table.LeastMeasured(int(pt), st.pid)
	mask := m.machine.TypeMask(ct)
	// Reopen immediately when the probe target includes the current core —
	// the window then measures the steered type from its first instruction.
	if !st.open && st.task != nil && mask&(1<<uint(coreID)) != 0 && m.hw.TryAcquire() {
		st.es = perfcnt.Start(&p.Counters)
		st.openMigr = st.task.Migrations
		st.open = true
	}
	return m.request(st, mask)
}

// OnExit implements exec.MarkHook.
func (h *hybridHook) OnExit(p *exec.Process) {
	m := h.m
	st, ok := m.byPID[p.PID]
	if !ok {
		return
	}
	if st.open {
		m.hw.Release()
		st.open = false
	}
	m.engine.Leave(st.pid)
	st.exited = true
}

// request resolves a mark's affinity action, counting only real changes.
func (m *Hybrid) request(st *hybridState, mask uint64) exec.MarkAction {
	if mask == 0 {
		return exec.MarkAction{}
	}
	if mask != st.wantMask {
		st.wantMask = mask
		if st.task == nil || st.task.Affinity != mask {
			m.stats.Switches++
		}
	}
	return exec.MarkAction{Mask: mask}
}

// closeWindow settles one measurement window. atTick windows matured on the
// kernel tick and are charged SampleCycles through the caller; boundary
// windows (atTick false) close inside the mark and ride its payload cost.
// The sample is attributed to the phase the window ran under (st.cur at
// close time) on the core it ran on.
func (m *Hybrid) closeWindow(st *hybridState, coreID int, atTick bool) {
	instrs, cycles := st.es.Stop(&st.proc.Counters)
	m.hw.Release()
	st.open = false
	minInstrs := uint64(minBoundaryInstrs)
	if atTick {
		minInstrs = m.cfg.WindowInstrs
	}
	if st.task == nil || st.task.Migrations != st.openMigr || cycles == 0 ||
		st.cur == phase.Untyped || instrs < minInstrs || coreID < 0 {
		m.stats.Discarded++
		if m.tr != nil {
			m.tr.InstantNow("online", "window.discard", trace.PidTasks, st.pid)
		}
		return
	}
	ct := m.machine.Cores[coreID].Type
	if m.tr != nil {
		m.tr.InstantNow("online", "window", trace.PidTasks, st.pid,
			trace.Arg{Key: "phase", Value: int(st.cur)},
			trace.Arg{Key: "ipc", Value: perfcnt.IPC(instrs, cycles)},
			trace.Arg{Key: "instrs", Value: instrs},
			trace.Arg{Key: "core_type", Value: m.machine.Types[ct].Name},
			trace.Arg{Key: "at_tick", Value: atTick})
	}
	m.record(st, st.cur, ct, perfcnt.IPC(instrs, cycles))
}

// record adds one accepted sample and refreshes the phase's decision: the
// first time every core type is covered the decision is founded; later
// windows keep the estimate current and re-decide from the new means —
// unless drift damping (HybridConfig.Drift) is on and the means have moved
// at most ε since the standing decision, in which case the sample only
// sharpens the estimate and the decision (and its arbitration claim)
// stands untouched. With ε = 0 the damping branch never fires, so the
// undamped hybrid is reproduced bit for bit.
func (m *Hybrid) record(st *hybridState, pt phase.Type, ct amp.CoreTypeID, ipc float64) {
	key := int(pt)
	st.table.Add(key, ct, ipc)
	m.stats.Windows++
	if !st.table.Ready(key, m.cfg.ProbeWindows) {
		return
	}
	first := st.table.DecisionOf(key) == nil
	if !first && m.cfg.Hybrid.Drift > 0 && st.table.Drift(key) <= m.cfg.Hybrid.Drift {
		m.stats.Damped++
		if m.tr != nil {
			m.tr.InstantNow("online", "damped", trace.PidTasks, st.pid,
				trace.Arg{Key: "phase", Value: key},
				trace.Arg{Key: "drift", Value: st.table.Drift(key)},
				trace.Arg{Key: "threshold", Value: m.cfg.Hybrid.Drift})
		}
		if st.cur == pt {
			st.probing = false
			m.engine.Enter(st.pid, *st.table.DecisionOf(key))
		}
		return
	}
	dec := m.engine.Decide(st.table.Means(key))
	dec.Mem = memStatsOf(st.proc.Img)
	st.table.SetDecision(key, dec)
	if first {
		m.stats.Decisions++
	} else {
		m.stats.Refreshes++
	}
	if m.tr != nil {
		name := "decision"
		if !first {
			name = "redecide"
		}
		m.tr.InstantNow("online", name, trace.PidTasks, st.pid,
			trace.Arg{Key: "phase", Value: key},
			trace.Arg{Key: "choice", Value: m.machine.Types[dec.Choice].Name})
	}
	if st.cur == pt {
		st.probing = false
		m.engine.Enter(st.pid, dec)
	}
}

// OnTick implements osched.TaskMonitor: bind freshly spawned tasks, retire
// exited ones, mature long windows, advance probing, and re-apply the
// engine's arbitrated masks machine-wide.
func (m *Hybrid) OnTick(k *osched.Kernel, atPs int64) {
	tasks := k.Tasks()
	for ; m.seen < len(tasks); m.seen++ {
		t := tasks[m.seen]
		m.taskByPID[t.Proc.PID] = t
	}

	kept := m.states[:0]
	for _, st := range m.states {
		if st.task == nil {
			st.task = m.taskByPID[st.pid]
		}
		if st.exited || (st.task != nil && st.task.State == osched.TaskExited) {
			if st.open {
				m.hw.Release()
				st.open = false
			}
			m.engine.Leave(st.pid)
			delete(m.byPID, st.pid)
			continue
		}
		if st.task != nil {
			m.sample(k, st)
		}
		kept = append(kept, st)
	}
	m.states = kept

	// Placement pass: every decided, non-probing task re-reads its
	// arbitrated mask, so boundary decisions made since the last tick
	// propagate to tasks that are between marks.
	for _, st := range m.states {
		if st.task == nil || st.probing || st.cur == phase.Untyped {
			continue
		}
		dec := st.table.DecisionOf(int(st.cur))
		if dec == nil {
			continue
		}
		m.engine.Enter(st.pid, *dec)
		mask := m.engine.MaskFor(st.pid)
		st.proc.SetSpilled(mask != m.machine.TypeMask(dec.Choice))
		m.apply(k, st, mask)
	}
}

// sample matures one task's tick window and keeps probing moving through
// long sections: a window that retired WindowInstrs closes (charged to the
// monitored task, like the online detector's), and an undecided current
// phase is steered to its next unmeasured core type without waiting for
// the next mark.
func (m *Hybrid) sample(k *osched.Kernel, st *hybridState) {
	if st.open {
		instrs, _ := st.es.Stop(&st.proc.Counters)
		if instrs >= m.cfg.WindowInstrs {
			if m.cfg.SampleCycles > 0 {
				k.Penalize(st.task, m.cfg.SampleCycles)
				m.stats.ChargedCycles += uint64(m.cfg.SampleCycles)
			}
			m.closeWindow(st, st.task.Core(), true)
			if st.cur != phase.Untyped && st.table.DecisionOf(int(st.cur)) == nil {
				st.probing = true
				m.apply(k, st, m.machine.TypeMask(st.table.LeastMeasured(int(st.cur), st.pid)))
			}
		}
	}
	if !st.open && st.cur != phase.Untyped && m.hw.TryAcquire() {
		st.es = perfcnt.Start(&st.proc.Counters)
		st.openMigr = st.task.Migrations
		st.open = true
	}
}

// apply requests an affinity mask for a task, counting only real changes.
func (m *Hybrid) apply(k *osched.Kernel, st *hybridState, mask uint64) {
	if mask == 0 || mask == st.wantMask {
		return
	}
	st.wantMask = mask
	if st.task.Affinity != mask {
		m.stats.Switches++
		k.SetAffinity(st.task, mask)
	}
}
