// Package online is the dynamic competitor to the paper's static phase
// marks: a runtime phase-detection subsystem that needs no binary analysis
// and no instrumentation.
//
// The paper (§I, §V) argues that static marks beat purely dynamic phase
// detection on asymmetric multicores because dynamic schemes pay continuous
// monitoring overhead and mispredict at phase boundaries — but offers no
// measured dynamic baseline. This package supplies one, modeled on the two
// standard designs from the literature:
//
//   - interval signatures classified online (Jooya & Analoui, "Classifying
//     Application Phases in Asymmetric Chip Multiprocessors"): per-process
//     performance counters are read in fixed instruction windows; each
//     window's signature (IPC plus an instruction-mix component) is
//     classified with leader-follower threshold clustering into phases;
//   - runtime-guided big/LITTLE placement (Saez et al., "Enabling
//     performance portability of data-parallel OpenMP applications on
//     asymmetric multicore processors"): per-phase speedup estimates drive
//     either a greedy IPC ranking over fast-core slots or a sampling probe
//     that measures each phase on every core type and then applies the
//     paper's own Algorithm 2 (place.Select) — mark-free.
//
// The Manager hangs off the kernel's periodic TaskMonitor hook, draws
// counter event sets from the same bounded perfcnt.Hardware pool as the
// static runtime (so counter contention stays modeled), charges its
// per-window sampling work to the monitored task, and reassigns tasks with
// the kernel-side SetAffinity — every cost the paper attributes to dynamic
// detection is simulated, which is what makes the static-vs-dynamic
// showdown (internal/experiments.Showdown) a fair reproduction of the
// paper's headline claim. Where dynamic detection breaks — the
// alternation-rate × window-size plane mapped quantitatively — is the
// misprediction-cost breakdown (internal/experiments.Breakdown).
//
// The package also houses the two mark-aware runtimes that bracket the
// detector: Hybrid (marks give phase boundaries, windows keep refreshing
// the per-phase IPC estimates; HybridConfig.Drift damps its re-decisions
// to estimate movements above an ε threshold) and the perfect-knowledge
// oracle hook (OracleAssignments), the showdown's upper bound.
package online

import (
	"fmt"

	"phasetune/internal/amp"
)

// PolicyKind selects the dynamic reassignment policy.
type PolicyKind int

const (
	// Greedy ranks runnable tasks by smoothed IPC and grants the fast-core
	// share to the highest ranks. In a frequency-asymmetric machine IPC
	// orders fast-core marginal utility: stall-free code keeps its IPC on
	// the fast clock and gains the full frequency ratio, DRAM-bound code
	// gains almost nothing. The true per-phase IPC ratio across core types
	// is unobservable from a single placement (the miss profile hides
	// behind two counters), so Greedy is the heuristic estimator; Probe
	// measures the ratio instead.
	Greedy PolicyKind = iota
	// Probe steers each newly detected phase across every core type,
	// measures its windowed IPC there, and then fixes the phase's placement
	// with the paper's Algorithm 2 (place.Select) — the mark-free temporal
	// analogue of the static runtime's representative-section sampling.
	Probe
)

// String names the policy.
func (p PolicyKind) String() string {
	switch p {
	case Greedy:
		return "greedy"
	case Probe:
		return "probe"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Config parameterizes the online detector.
type Config struct {
	// Policy selects the reassignment policy.
	Policy PolicyKind
	// WindowInstrs is the detection window: a signature is produced every
	// time a monitored process retires this many instructions.
	WindowInstrs uint64
	// TickSec is the kernel monitor period (osched.Config.MonitorIntervalSec);
	// windows are opened and closed on these ticks.
	TickSec float64
	// SampleCycles is the per-window monitoring overhead charged to the
	// sampled task (counter reads, signature computation, classification).
	// Zero takes the default; a negative value means free monitoring (the
	// no-overhead ablation) and normalizes to an explicit 0.
	SampleCycles int64
	// ClassifyEps is the leader-follower distance threshold: a window
	// signature farther than this from every known phase centroid founds a
	// new phase.
	ClassifyEps float64
	// MaxPhases bounds the phases tracked per process; once reached, outlier
	// windows join the nearest phase instead of founding new ones.
	MaxPhases int
	// Delta is the IPC threshold of Algorithm 2 for the probe policy's
	// placement decisions.
	Delta float64
	// ProbeWindows is how many accepted windows the probe policy measures
	// per (phase, core type) before deciding.
	ProbeWindows int
	// IPCSmoothing is the EWMA weight of the newest window in the greedy
	// policy's per-task IPC estimate, in (0, 1].
	IPCSmoothing float64
	// Hybrid holds the knobs only the marks+windows hybrid runtime reads;
	// the window detector ignores them.
	Hybrid HybridConfig
}

// HybridConfig parameterizes the marks+windows hybrid runtime beyond the
// shared detector knobs.
type HybridConfig struct {
	// Drift is the re-decision damping threshold ε: once a phase's
	// placement is fixed, later windows refresh its per-(phase, core-type)
	// IPC means, but the hybrid re-enters the engine's Decide only when the
	// means have moved more than this relative fraction since the decision
	// (place.Table.Drift). Zero — the default — re-decides on every
	// accepted window, reproducing the undamped hybrid exactly;
	// DefaultDrift is the measured knee of the switch-volume-vs-throughput
	// trade (the showdown's hybrid/damped column).
	Drift float64 `json:"drift,omitempty"`
}

// DefaultDrift is the damped hybrid's operating point: 5% relative
// movement of a phase's IPC means before its placement is re-decided —
// comfortably above per-window sampling noise (branch-variant mix, mark
// payloads; cf. place's 3% tie epsilon) yet far below the tens-of-percent
// shifts a real behavior change produces.
const DefaultDrift = 0.05

// DefaultConfig returns the operating point used by the showdown
// experiments: 0.1 s ticks (one scheduler timeslice), windows of 8000
// instructions (a loaded task closes one every tick or two), and the same
// δ as the static runtime so placement decisions differ only in how the
// IPC samples were obtained.
func DefaultConfig() Config {
	return Config{
		Policy:       Probe,
		WindowInstrs: 8000,
		TickSec:      0.1,
		SampleCycles: 25,
		ClassifyEps:  0.25,
		MaxPhases:    6,
		Delta:        0.06,
		ProbeWindows: 1,
		IPCSmoothing: 0.4,
	}
}

// Normalized fills zero fields from DefaultConfig (the form every consumer
// of a Config should operate on).
func (c Config) Normalized() Config {
	d := DefaultConfig()
	if c.WindowInstrs == 0 {
		c.WindowInstrs = d.WindowInstrs
	}
	if c.TickSec <= 0 {
		c.TickSec = d.TickSec
	}
	if c.SampleCycles == 0 {
		c.SampleCycles = d.SampleCycles
	} else if c.SampleCycles < 0 {
		c.SampleCycles = 0
	}
	if c.ClassifyEps <= 0 {
		c.ClassifyEps = d.ClassifyEps
	}
	if c.MaxPhases <= 0 {
		c.MaxPhases = d.MaxPhases
	}
	if c.Delta == 0 {
		c.Delta = d.Delta
	}
	if c.ProbeWindows <= 0 {
		c.ProbeWindows = d.ProbeWindows
	}
	if c.IPCSmoothing <= 0 || c.IPCSmoothing > 1 {
		c.IPCSmoothing = d.IPCSmoothing
	}
	if c.Hybrid.Drift < 0 {
		c.Hybrid.Drift = 0
	}
	return c
}

// Signature is one detection window's measurement: the runtime analogue of
// the static analysis's per-block feature vector.
type Signature struct {
	// IPC is instructions per cycle over the window.
	IPC float64
	// MemFrac is the fraction of retired instructions referencing memory.
	MemFrac float64
}

// Stats aggregates what the online runtime did during a run — the
// monitoring overhead and switch counts the showdown table reports against
// the static technique's.
type Stats struct {
	// Windows counts accepted detection windows.
	Windows uint64
	// Discarded counts windows dropped because a migration landed mid-window
	// (their IPC would blend two core types) or the cycle delta was empty.
	Discarded uint64
	// ChargedCycles is the total monitoring overhead charged to tasks.
	ChargedCycles uint64
	// Switches counts reassignments that changed a task's affinity mask.
	Switches int
	// Phases counts phase clusters founded across all tasks (hybrid runs:
	// distinct mark-declared phase types entered).
	Phases int
	// Decisions counts placements fixed via Algorithm 2.
	Decisions int
	// Refreshes counts hybrid decision refreshes after the first fix:
	// monitor windows keep updating the per-phase IPC estimates, and each
	// refreshed estimate re-runs Algorithm 2 over current evidence.
	Refreshes int
	// Damped counts hybrid re-decisions suppressed by the drift threshold
	// (HybridConfig.Drift): the window was accepted and the estimate
	// updated, but the means had moved ≤ ε since the standing decision, so
	// Algorithm 2 was not re-entered. Always 0 when Drift is 0.
	Damped int
}

// ipcStat is a running per-core-type IPC mean.
type ipcStat struct {
	mean float64
	n    int
}

// phaseCluster is one leader-follower centroid: the running mean signature
// of a detected phase, with IPC kept per core type (the same phase shows
// different IPC on different core types — that asymmetry is the signal, so
// it must not smear the centroid).
type phaseCluster struct {
	memFrac float64
	ipc     []ipcStat // indexed by core type
	n       int
}

// Classifier assigns window signatures to phases with leader-follower
// threshold clustering: a window joins the nearest centroid within eps, or
// founds a new phase. Centroids update as running means.
type Classifier struct {
	eps      float64
	max      int
	numTypes int
	clusters []*phaseCluster
}

// NewClassifier builds a classifier for a machine with numTypes core types.
func NewClassifier(eps float64, maxPhases, numTypes int) *Classifier {
	return &Classifier{eps: eps, max: maxPhases, numTypes: numTypes}
}

// ipcWeight scales the IPC component of the signature distance relative to
// the mix component (mix is already in [0,1]; IPC distances are relative).
const ipcWeight = 0.5

// distance measures a signature against a centroid for a window observed on
// the given core type. The mix component always contributes; the IPC
// component only when the centroid has been observed on the same core type
// (cross-type IPC differences are asymmetry, not phase change).
func (c *phaseCluster) distance(sig Signature, coreType amp.CoreTypeID) float64 {
	d := sig.MemFrac - c.memFrac
	if d < 0 {
		d = -d
	}
	if st := c.ipc[coreType]; st.n > 0 {
		ref := st.mean
		if sig.IPC > ref {
			ref = sig.IPC
		}
		if ref > 0 {
			di := (sig.IPC - st.mean) / ref
			if di < 0 {
				di = -di
			}
			d += ipcWeight * di
		}
	}
	return d
}

// Classify assigns the window to a phase, updating centroids, and returns
// the phase index plus whether a new phase was founded.
func (cl *Classifier) Classify(sig Signature, coreType amp.CoreTypeID) (phase int, founded bool) {
	best, bestDist := -1, 0.0
	for i, c := range cl.clusters {
		if d := c.distance(sig, coreType); best == -1 || d < bestDist {
			best, bestDist = i, d
		}
	}
	if best == -1 || (bestDist > cl.eps && len(cl.clusters) < cl.max) {
		c := &phaseCluster{memFrac: sig.MemFrac, ipc: make([]ipcStat, cl.numTypes), n: 1}
		c.ipc[coreType] = ipcStat{mean: sig.IPC, n: 1}
		cl.clusters = append(cl.clusters, c)
		return len(cl.clusters) - 1, true
	}
	c := cl.clusters[best]
	c.n++
	c.memFrac += (sig.MemFrac - c.memFrac) / float64(c.n)
	st := &c.ipc[coreType]
	st.n++
	st.mean += (sig.IPC - st.mean) / float64(st.n)
	return best, false
}

// NumPhases returns how many phases have been founded.
func (cl *Classifier) NumPhases() int { return len(cl.clusters) }

// TypeIPC returns the running IPC mean and sample count of a phase on a
// core type.
func (cl *Classifier) TypeIPC(phase int, t amp.CoreTypeID) (mean float64, n int) {
	st := cl.clusters[phase].ipc[t]
	return st.mean, st.n
}

// Centroid returns a phase's centroid signature (IPC averaged over the core
// types it was observed on).
func (cl *Classifier) Centroid(phase int) Signature {
	c := cl.clusters[phase]
	sum, n := 0.0, 0
	for _, st := range c.ipc {
		if st.n > 0 {
			sum += st.mean
			n++
		}
	}
	sig := Signature{MemFrac: c.memFrac}
	if n > 0 {
		sig.IPC = sum / float64(n)
	}
	return sig
}
