package online

import (
	"phasetune/internal/amp"
	"phasetune/internal/exec"
	"phasetune/internal/phase"
	"phasetune/internal/place"
)

// OracleAssignments computes the perfect-knowledge placement for an
// instrumented image: for every phase type, the instruction-weighted mean
// of the static per-block IPC estimate on each core type feeds the paper's
// Algorithm 2, yielding the mask a clairvoyant runtime would pin the phase
// to. The oracle is the upper bound of the showdown: placements are exact
// from the first mark, with zero monitoring overhead and zero misprediction.
//
// The image must have been instrumented under the same typing options with
// no injected clustering error (block typing is re-derived here and must
// match the mark types the instrumenter embedded).
func OracleAssignments(img *exec.Image, topts phase.Options, cm exec.CostModel,
	m *amp.Machine, delta float64) (map[phase.Type]uint64, error) {

	typing, err := phase.ClusterBlocks(img.Prog, img.Graphs, topts)
	if err != nil {
		return nil, err
	}
	pars := exec.ParamsFor(cm, m)
	shareKB := m.L2s[0].SizeKB

	// Per phase type, per core type: instruction-weighted IPC sums.
	type acc struct {
		ipcW []float64
		w    float64
	}
	accs := map[phase.Type]*acc{}
	for pi, g := range img.Graphs {
		for _, blk := range g.Blocks {
			pt := typing.TypeOf(phase.BlockKey{Proc: pi, Block: blk.ID})
			if pt == phase.Untyped {
				continue
			}
			a, ok := accs[pt]
			if !ok {
				a = &acc{ipcW: make([]float64, len(pars))}
				accs[pt] = a
			}
			w := float64(blk.Mix().Total())
			if w <= 0 {
				continue
			}
			for t := range pars {
				a.ipcW[t] += w * exec.BlockIPC(blk, &pars[t], cm, shareKB)
			}
			a.w += w
		}
	}

	out := make(map[phase.Type]uint64, len(accs))
	for pt, a := range accs {
		if a.w <= 0 {
			continue
		}
		f := make([]float64, len(a.ipcW))
		for t := range f {
			f[t] = a.ipcW[t] / a.w
		}
		out[pt] = m.TypeMask(place.Select(m, f, delta))
	}
	return out, nil
}

// OracleHook is the per-process mark hook of oracle runs: every phase mark
// resolves to its precomputed mask instantly — no sampling, no counters, no
// decision latency. It implements exec.MarkHook.
type OracleHook struct {
	img   *exec.Image
	masks map[phase.Type]uint64
	// SwitchRequests counts affinity calls issued (diagnostics).
	SwitchRequests int
}

// NewOracleHook builds the hook from precomputed assignments (one shared
// map serves every process executing the same image).
func NewOracleHook(img *exec.Image, masks map[phase.Type]uint64) *OracleHook {
	return &OracleHook{img: img, masks: masks}
}

// OnMark implements exec.MarkHook.
func (h *OracleHook) OnMark(p *exec.Process, markID, coreID int) exec.MarkAction {
	mask, ok := h.masks[h.img.MarkType(markID)]
	if !ok {
		return exec.MarkAction{}
	}
	h.SwitchRequests++
	return exec.MarkAction{Mask: mask}
}

// OnExit implements exec.MarkHook.
func (h *OracleHook) OnExit(p *exec.Process) {}
