package online

import (
	"phasetune/internal/amp"
	"phasetune/internal/exec"
	"phasetune/internal/phase"
	"phasetune/internal/place"
	"phasetune/internal/reuse"
)

// memStatsOf converts an image's shared-cache signature into the engine's
// MemStats, the form Decision.Mem carries. All three runtime consumers
// (tuner spill, online probe, hybrid refresh) attach it through this one
// helper so the engine prices every policy from the same signature.
func memStatsOf(img *exec.Image) *place.MemStats {
	if img == nil {
		return nil
	}
	sig := img.MemSignature()
	return &place.MemStats{L2RefsPerInstr: sig.L2RefsPerInstr, Profile: sig.Profile}
}

// oracleRow is one phase type's perfect-knowledge estimate: per-core-type
// IPC plus the phase's shared-cache pressure, both instruction-weighted
// over the phase's blocks.
type oracleRow struct {
	ipc []float64
	mem place.MemStats
}

// oracleTables computes the per-phase-type estimates behind both oracle
// forms: for every typed block, the static per-block IPC estimate on each
// core type (exec.BlockIPC at the solo L2 share) and the block's shared-
// cache reference density, instruction-weighted into per-phase rows.
func oracleTables(img *exec.Image, topts phase.Options, cm exec.CostModel,
	m *amp.Machine) (map[phase.Type]*oracleRow, error) {

	typing, err := phase.ClusterBlocks(img.Prog, img.Graphs, topts)
	if err != nil {
		return nil, err
	}
	pars := exec.ParamsFor(cm, m)
	shareKB := m.L2s[0].SizeKB

	// Per phase type, per core type: instruction-weighted IPC sums plus
	// reference-weighted reuse aggregation.
	type acc struct {
		ipcW    []float64
		w       float64
		l2W     float64
		prof    reuse.Profile
		memRefs int
	}
	accs := map[phase.Type]*acc{}
	for pi, g := range img.Graphs {
		for _, blk := range g.Blocks {
			pt := typing.TypeOf(phase.BlockKey{Proc: pi, Block: blk.ID})
			if pt == phase.Untyped {
				continue
			}
			a, ok := accs[pt]
			if !ok {
				a = &acc{ipcW: make([]float64, len(pars))}
				accs[pt] = a
			}
			mix := blk.Mix()
			w := float64(mix.Total())
			if w <= 0 {
				continue
			}
			for t := range pars {
				a.ipcW[t] += w * exec.BlockIPC(blk, &pars[t], cm, shareKB)
			}
			a.w += w
			if memRefs := mix.MemOps(); memRefs > 0 {
				prof := phase.BlockProfile(blk)
				a.l2W += float64(memRefs) * prof.L1MissFraction()
				a.prof = reuse.Combine(a.prof, a.memRefs, prof, memRefs)
				a.memRefs += memRefs
			}
		}
	}

	out := make(map[phase.Type]*oracleRow, len(accs))
	for pt, a := range accs {
		if a.w <= 0 {
			continue
		}
		row := &oracleRow{ipc: make([]float64, len(a.ipcW))}
		for t := range row.ipc {
			row.ipc[t] = a.ipcW[t] / a.w
		}
		row.mem = place.MemStats{L2RefsPerInstr: a.l2W / a.w, Profile: a.prof}
		out[pt] = row
	}
	return out, nil
}

// OracleAssignments computes the perfect-knowledge placement for an
// instrumented image: for every phase type, the instruction-weighted mean
// of the static per-block IPC estimate on each core type feeds the paper's
// Algorithm 2, yielding the mask a clairvoyant runtime would pin the phase
// to. The oracle is the upper bound of the showdown: placements are exact
// from the first mark, with zero monitoring overhead and zero misprediction.
//
// The image must have been instrumented under the same typing options with
// no injected clustering error (block typing is re-derived here and must
// match the mark types the instrumenter embedded).
func OracleAssignments(img *exec.Image, topts phase.Options, cm exec.CostModel,
	m *amp.Machine, delta float64) (map[phase.Type]uint64, error) {

	rows, err := oracleTables(img, topts, cm, m)
	if err != nil {
		return nil, err
	}
	out := make(map[phase.Type]uint64, len(rows))
	for pt, row := range rows {
		out[pt] = m.TypeMask(place.Select(m, row.ipc, delta))
	}
	return out, nil
}

// OracleDecisions is the engine-backed oracle form: the same perfect
// per-phase estimates, fixed into full engine Decisions (Algorithm 2 choice,
// spill-pricing rates, and the phase's *per-phase* shared-cache signature —
// sharper than the image-level aggregate the runtime policies carry, as
// befits a clairvoyant baseline). Contention-priced oracle runs register
// these through a shared engine so even the upper bound pays for cache-group
// crowding; unpriced runs keep the plain mask path (OracleAssignments).
func OracleDecisions(eng *place.Engine, img *exec.Image, topts phase.Options,
	cm exec.CostModel, m *amp.Machine) (map[phase.Type]place.Decision, error) {

	rows, err := oracleTables(img, topts, cm, m)
	if err != nil {
		return nil, err
	}
	out := make(map[phase.Type]place.Decision, len(rows))
	for pt, row := range rows {
		dec := eng.Decide(row.ipc)
		mem := row.mem
		dec.Mem = &mem
		out[pt] = dec
	}
	return out, nil
}

// OracleHook is the per-process mark hook of oracle runs: every phase mark
// resolves to its precomputed mask instantly — no sampling, no counters, no
// decision latency. It implements exec.MarkHook.
type OracleHook struct {
	img   *exec.Image
	masks map[phase.Type]uint64
	// SwitchRequests counts affinity calls issued (diagnostics).
	SwitchRequests int
}

// NewOracleHook builds the hook from precomputed assignments (one shared
// map serves every process executing the same image).
func NewOracleHook(img *exec.Image, masks map[phase.Type]uint64) *OracleHook {
	return &OracleHook{img: img, masks: masks}
}

// OnMark implements exec.MarkHook.
func (h *OracleHook) OnMark(p *exec.Process, markID, coreID int) exec.MarkAction {
	mask, ok := h.masks[h.img.MarkType(markID)]
	if !ok {
		return exec.MarkAction{}
	}
	h.SwitchRequests++
	return exec.MarkAction{Mask: mask}
}

// OnExit implements exec.MarkHook.
func (h *OracleHook) OnExit(p *exec.Process) {}

// OracleEngineHook is the contention-priced oracle's mark hook: phase marks
// register the precomputed Decision as a capacity claim on one engine
// shared by every process of the run, and the affinity mask comes out of
// the engine's arbitration — quota spills, contention pricing, and relief
// included. It implements exec.MarkHook.
type OracleEngineHook struct {
	eng  *place.Engine
	img  *exec.Image
	decs map[phase.Type]place.Decision
	// SwitchRequests counts affinity calls issued (diagnostics).
	SwitchRequests int
}

// NewOracleEngineHook builds the engine-backed hook; decs is the image's
// OracleDecisions table (shared across the image's processes), eng the
// run-wide oracle engine.
func NewOracleEngineHook(eng *place.Engine, img *exec.Image, decs map[phase.Type]place.Decision) *OracleEngineHook {
	return &OracleEngineHook{eng: eng, img: img, decs: decs}
}

// OnMark implements exec.MarkHook.
func (h *OracleEngineHook) OnMark(p *exec.Process, markID, coreID int) exec.MarkAction {
	dec, ok := h.decs[h.img.MarkType(markID)]
	if !ok {
		return exec.MarkAction{}
	}
	h.eng.Enter(p.PID, dec)
	mask := h.eng.MaskFor(p.PID)
	// Ledger attribution: arbitration overriding the oracle's own choice
	// is a knowing spill, not a misprediction.
	p.SetSpilled(mask != h.eng.Capacity().Machine().TypeMask(dec.Choice))
	h.SwitchRequests++
	return exec.MarkAction{Mask: mask}
}

// OnExit implements exec.MarkHook: withdraw the process's capacity claim.
func (h *OracleEngineHook) OnExit(p *exec.Process) {
	h.eng.Leave(p.PID)
	p.SetSpilled(false)
}
