// Package ledger is the conserved cycle-accounting subsystem: it decomposes
// every simulated core-picosecond into an exhaustive set of categories and
// proves to itself that nothing leaked (Verify). Where the tracer answers
// "what happened when", the ledger answers "where did the cycles go" — the
// white-box decomposition behind the paper's §V argument that tuning wins
// equal asymmetry exploited minus monitoring, misprediction, and migration
// overheads.
//
// The currency is int64 simulated picoseconds, the same unit as the kernel
// clock, so every charge is exact integer arithmetic. The accounting has
// two layers:
//
//   - per-step attribution (Work): the interpreter splits each executed
//     block into the time the block would have taken at the machine's
//     fastest clock (useful work) and the surplus burned by running on a
//     slower type (asymmetry loss — or capacity-spill loss when the
//     placement engine knowingly spilled the task off its chosen type).
//     The split leans on the cost model's one asymmetry source: DRAM
//     latency is wall-clock-fixed, so a step's memory picoseconds are the
//     same on every core type and only the compute portion rescales.
//     Phase-mark payloads are charged to their own category.
//   - per-burst attribution (Collector.Charge): the kernel charges the
//     scheduler-level costs it alone can see — migration and monitoring
//     penalties drained into the burst, context-switch cost (reclassified
//     as overcommit slicing when the proportional-share dispatcher
//     shortened the slice), and the task's queue wait before dispatch.
//
// Conservation is structural, not statistical: each burst's categories sum
// to exactly its wall-clock span because they are computed by distributing
// the burst's integer cycle count (elapsed = used × psPerCycle distributes
// over the integer summands of used), and each core's idle time is defined
// as the horizon minus its busy time. Σ categories == cores × horizon is
// therefore an integer identity, checked by Verify on every policy, both
// machines' run modes, and across the sharded fabric (the ledger is plain
// data inside Result, so byte-identical merge extends to it for free).
//
// The ledger is nil-safe and byte-identical-off, exactly like the tracer:
// a run with the ledger enabled produces the same Result bytes (once the
// Ledger field is stripped) as a run without it, because charge sites never
// read ledger state back.
package ledger

import (
	"fmt"
	"sort"
)

// PhaseUntyped marks work executed outside any phase: before the first
// phase mark, or by uninstrumented processes (baseline and dynamic modes).
const PhaseUntyped = -1

// Breakdown is one scope's cycle decomposition in simulated picoseconds.
// For per-core and total scopes the nine categories are exhaustive: they
// sum exactly to the scope's wall-clock span (Verify checks the integer
// identity). Per-task scopes have no idle; per-phase scopes carry only the
// step-attributable categories (useful, asymmetry, spill, marks).
type Breakdown struct {
	// UsefulPs is execution time at the machine's fastest clock: the time
	// the executed work would have cost with perfect placement.
	UsefulPs int64 `json:"useful_ps"`
	// AsymmetryPs is the surplus burned by running compute on a slower
	// core type than the fastest — the loss placement policies exist to
	// reclaim.
	AsymmetryPs int64 `json:"asymmetry_ps"`
	// SpillPs is asymmetry loss incurred while the placement engine had
	// knowingly spilled the task off its chosen type (capacity
	// arbitration), separating "policy chose wrong" from "policy chose
	// right but the type was full".
	SpillPs int64 `json:"spill_ps"`
	// MarksPs is phase-mark payload execution (the static technique's
	// distributed instrumentation cost).
	MarksPs int64 `json:"marks_ps"`
	// MonitorPs is monitoring overhead charged through Penalize (the
	// dynamic detector's and hybrid's per-window sampling cost).
	MonitorPs int64 `json:"monitor_ps"`
	// MigrationPs is core-switch cost (enqueue re-targets, mid-slice
	// migrations, balancer moves, external SetAffinity).
	MigrationPs int64 `json:"migration_ps"`
	// CtxSwitchPs is context-switch cost at full-slice boundaries.
	CtxSwitchPs int64 `json:"ctx_switch_ps"`
	// SlicingPs is context-switch cost on overcommit-shortened slices —
	// the time-multiplexing tax of the proportional-share dispatcher.
	SlicingPs int64 `json:"slicing_ps"`
	// IdlePs is core time with no burst in flight (horizon minus busy;
	// zero in per-task and per-phase scopes).
	IdlePs int64 `json:"idle_ps"`
}

// Categories lists the category names in display order, matching Values.
func Categories() []string {
	return []string{"useful", "asymmetry", "spill", "marks", "monitor",
		"migration", "ctx-switch", "slicing", "idle"}
}

// Values returns the breakdown's picosecond values in Categories order.
func (b Breakdown) Values() []int64 {
	return []int64{b.UsefulPs, b.AsymmetryPs, b.SpillPs, b.MarksPs,
		b.MonitorPs, b.MigrationPs, b.CtxSwitchPs, b.SlicingPs, b.IdlePs}
}

// Total returns the sum of every category including idle.
func (b Breakdown) Total() int64 {
	return b.BusyPs() + b.IdlePs
}

// BusyPs returns the sum of every category except idle.
func (b Breakdown) BusyPs() int64 {
	return b.UsefulPs + b.AsymmetryPs + b.SpillPs + b.MarksPs +
		b.MonitorPs + b.MigrationPs + b.CtxSwitchPs + b.SlicingPs
}

// add accumulates o into b.
func (b *Breakdown) add(o Breakdown) {
	b.UsefulPs += o.UsefulPs
	b.AsymmetryPs += o.AsymmetryPs
	b.SpillPs += o.SpillPs
	b.MarksPs += o.MarksPs
	b.MonitorPs += o.MonitorPs
	b.MigrationPs += o.MigrationPs
	b.CtxSwitchPs += o.CtxSwitchPs
	b.SlicingPs += o.SlicingPs
	b.IdlePs += o.IdlePs
}

// TaskLedger is one task's rollup, in spawn order. Queue time is not a
// core-cycle category (a queued task occupies no core) and is reported
// beside the breakdown: for a completed task, QueuePs plus the breakdown's
// busy sum equals its sojourn time exactly.
type TaskLedger struct {
	// PID is the kernel-assigned process ID.
	PID int `json:"pid"`
	// Name labels the task (benchmark name).
	Name string `json:"name"`
	// QueuePs is time spent queued waiting for dispatch (closed queue
	// intervals only: a wait still open at the horizon is not counted).
	QueuePs int64 `json:"queue_ps"`
	Breakdown
}

// PhaseLedger is one phase type's rollup across every task, carrying the
// step-attributable categories (scheduler-level costs are burst-scoped,
// not phase-scoped). Phase PhaseUntyped collects unphased work.
type PhaseLedger struct {
	// Phase is the phase type (PhaseUntyped for unphased work).
	Phase int `json:"phase"`
	Breakdown
}

// Ledger is a finalized run's complete accounting.
type Ledger struct {
	// HorizonPs is the accounting horizon: the latest instant any core's
	// burst or the kernel clock reached. Every core's categories sum to
	// exactly this span.
	HorizonPs int64 `json:"horizon_ps"`
	// Cores is the machine's core count.
	Cores int `json:"cores"`
	// Total is the machine-wide decomposition; it sums to
	// Cores × HorizonPs exactly.
	Total Breakdown `json:"total"`
	// PerCore is the per-core decomposition, indexed by core ID.
	PerCore []Breakdown `json:"per_core"`
	// PerTask is the per-task decomposition in spawn order.
	PerTask []TaskLedger `json:"per_task"`
	// PerPhase is the per-phase decomposition, sorted by phase.
	PerPhase []PhaseLedger `json:"per_phase"`
}

// Verify checks the conservation identities exactly (integer equality):
// every core's categories sum to the horizon, the total equals the sum of
// the cores (hence Cores × HorizonPs), the per-task busy time equals the
// machine's busy time, and the per-phase rollup equals the machine's
// step-attributed time.
func (l *Ledger) Verify() error {
	if l.Cores != len(l.PerCore) {
		return fmt.Errorf("ledger: %d cores but %d per-core rows", l.Cores, len(l.PerCore))
	}
	var sum Breakdown
	for i, c := range l.PerCore {
		if got := c.Total(); got != l.HorizonPs {
			return fmt.Errorf("ledger: core %d categories sum to %d ps, horizon is %d ps", i, got, l.HorizonPs)
		}
		sum.add(c)
	}
	if sum != l.Total {
		return fmt.Errorf("ledger: total %+v != per-core sum %+v", l.Total, sum)
	}
	if got, want := l.Total.Total(), int64(l.Cores)*l.HorizonPs; got != want {
		return fmt.Errorf("ledger: total %d ps != cores x horizon %d ps", got, want)
	}
	var taskBusy int64
	for _, t := range l.PerTask {
		if t.IdlePs != 0 {
			return fmt.Errorf("ledger: task %d carries idle time", t.PID)
		}
		taskBusy += t.BusyPs()
	}
	if taskBusy != l.Total.BusyPs() {
		return fmt.Errorf("ledger: per-task busy %d ps != machine busy %d ps", taskBusy, l.Total.BusyPs())
	}
	var phaseStep, coreStep int64
	for _, p := range l.PerPhase {
		phaseStep += p.UsefulPs + p.AsymmetryPs + p.SpillPs + p.MarksPs
	}
	coreStep = l.Total.UsefulPs + l.Total.AsymmetryPs + l.Total.SpillPs + l.Total.MarksPs
	if phaseStep != coreStep {
		return fmt.Errorf("ledger: per-phase step time %d ps != machine step time %d ps", phaseStep, coreStep)
	}
	return nil
}

// Segment is one uncommitted run of per-step attribution under a constant
// (phase, spilled) context, drained by the kernel at burst boundaries.
type Segment struct {
	// Phase is the phase type the steps executed in (PhaseUntyped before
	// the first mark).
	Phase int
	// Spilled reports whether the placement engine had spilled the task
	// off its chosen type while these steps ran.
	Spilled bool
	// ActualPs is block-body execution time at the current core's clock.
	ActualPs int64
	// IdealPs estimates the same work's cost at the fastest clock with
	// unchanged memory-stall time. Integer picoseconds, truncated per block
	// by the interpreter: per-block truncation makes the accumulated value
	// independent of how a run of steps is grouped, which the segment memo
	// depends on (replaying a cached chunk adds one precomputed sum). It is
	// clamped into [0, ActualPs] at charge time, so conservation never
	// depends on it.
	IdealPs int64
	// MarkPs is phase-mark payload time.
	MarkPs int64
}

// Work is a process's step-attribution accumulator. The interpreter adds
// each executed block's cost; the kernel drains accumulated segments when
// it charges the enclosing burst. Work never feeds back into execution, so
// attaching it cannot perturb a run.
type Work struct {
	fastPs  int64
	phase   int
	spilled bool
	segs    []Segment
}

// FastPs returns the machine's fastest per-cycle cost in picoseconds (the
// "native rate" useful work is priced at).
func (w *Work) FastPs() int64 { return w.fastPs }

// SetPhase records a phase boundary: subsequent steps attribute to phase.
func (w *Work) SetPhase(phase int) { w.phase = phase }

// SetSpilled records whether the placement engine currently holds the
// process off its chosen core type; subsequent asymmetry loss is charged
// to the spill category instead.
func (w *Work) SetSpilled(s bool) { w.spilled = s }

// seg returns the open segment for the current (phase, spilled) context.
func (w *Work) seg() *Segment {
	if n := len(w.segs); n > 0 {
		if s := &w.segs[n-1]; s.Phase == w.phase && s.Spilled == w.spilled {
			return s
		}
	}
	w.segs = append(w.segs, Segment{Phase: w.phase, Spilled: w.spilled})
	return &w.segs[len(w.segs)-1]
}

// Add charges one block body: actualPs at the current clock, idealPs the
// fastest-clock counterfactual (already truncated to integer picoseconds
// by the caller).
func (w *Work) Add(actualPs, idealPs int64) {
	s := w.seg()
	s.ActualPs += actualPs
	s.IdealPs += idealPs
}

// AddMark charges one phase-mark payload.
func (w *Work) AddMark(ps int64) {
	w.seg().MarkPs += ps
}

// Drain returns the accumulated segments and resets the accumulator. The
// returned slice is owned by the caller; hand it back with Recycle once
// charged to avoid reallocating every burst.
func (w *Work) Drain() []Segment {
	segs := w.segs
	w.segs = nil
	return segs
}

// Recycle returns a drained slice's storage to the accumulator so the next
// burst appends into it instead of allocating. Only hand back a slice the
// caller has finished reading.
func (w *Work) Recycle(segs []Segment) {
	if w.segs == nil && cap(segs) > 0 {
		w.segs = segs[:0]
	}
}

// Burst is one dispatch slice's ledger charge, assembled by the kernel.
type Burst struct {
	// Core is the core the burst ran on.
	Core int
	// PID is the running process.
	PID int
	// PsPerCycle is the core's cycle cost.
	PsPerCycle int64
	// StartPs and EndPs bound the burst's wall-clock span.
	StartPs, EndPs int64
	// QueuePs is how long the task waited queued before this dispatch.
	QueuePs int64
	// MigrateCycles and MonitorCycles split the task's drained penalty
	// cycles into migration tax and monitoring overhead.
	MigrateCycles, MonitorCycles int64
	// CtxCycles is the context-switch charge of this burst.
	CtxCycles int64
	// Sliced reports an overcommit-shortened slice: the context-switch
	// charge reclassifies as slicing tax.
	Sliced bool
	// Segs is the process's drained step attribution.
	Segs []Segment
}

// Collector accumulates charges during a run and finalizes into a Ledger.
// It is single-writer by construction (the kernel's event loop), so it
// needs no locking, and charge order is deterministic, so two runs of the
// same configuration build byte-identical ledgers.
type Collector struct {
	fastPs  int64
	cores   []Breakdown
	coreEnd []int64
	tasks   []TaskLedger
	taskIdx map[int]int
	phases  map[int]*Breakdown
}

// NewCollector creates a collector for a machine with the given core count
// and fastest per-cycle cost in picoseconds.
func NewCollector(cores int, fastPs int64) *Collector {
	return &Collector{
		fastPs:  fastPs,
		cores:   make([]Breakdown, cores),
		coreEnd: make([]int64, cores),
		taskIdx: map[int]int{},
		phases:  map[int]*Breakdown{},
	}
}

// Work returns a fresh step-attribution accumulator for a process.
func (c *Collector) Work() *Work {
	return &Work{fastPs: c.fastPs, phase: PhaseUntyped}
}

// AddTask registers a task at spawn so per-task rows come out in spawn
// order regardless of charge order.
func (c *Collector) AddTask(pid int, name string) {
	c.taskIdx[pid] = len(c.tasks)
	c.tasks = append(c.tasks, TaskLedger{PID: pid, Name: name})
}

// phase returns the rollup row for a phase type.
func (c *Collector) phase(p int) *Breakdown {
	b, ok := c.phases[p]
	if !ok {
		b = &Breakdown{}
		c.phases[p] = b
	}
	return b
}

// Charge books one burst. The burst's categories sum exactly to
// EndPs − StartPs when the process carried a Work accumulator; a process
// without one (kernel-level tests) charges its step time wholly to the
// useful category so conservation still holds.
func (c *Collector) Charge(b Burst) {
	var d Breakdown
	d.MigrationPs = b.MigrateCycles * b.PsPerCycle
	d.MonitorPs = b.MonitorCycles * b.PsPerCycle
	ctxPs := b.CtxCycles * b.PsPerCycle
	if b.Sliced {
		d.SlicingPs = ctxPs
	} else {
		d.CtxSwitchPs = ctxPs
	}
	for _, s := range b.Segs {
		useful := s.IdealPs
		if useful > s.ActualPs {
			useful = s.ActualPs
		}
		if useful < 0 {
			useful = 0
		}
		loss := s.ActualPs - useful
		d.UsefulPs += useful
		if s.Spilled {
			d.SpillPs += loss
		} else {
			d.AsymmetryPs += loss
		}
		d.MarksPs += s.MarkPs

		ph := c.phase(s.Phase)
		ph.UsefulPs += useful
		if s.Spilled {
			ph.SpillPs += loss
		} else {
			ph.AsymmetryPs += loss
		}
		ph.MarksPs += s.MarkPs
	}
	// A Work-less process's step time is unattributed; book the residual
	// as unphased useful work so the burst still tiles its span.
	if residual := (b.EndPs - b.StartPs) - d.BusyPs(); residual > 0 {
		d.UsefulPs += residual
		c.phase(PhaseUntyped).UsefulPs += residual
	}

	c.cores[b.Core].add(d)
	if b.EndPs > c.coreEnd[b.Core] {
		c.coreEnd[b.Core] = b.EndPs
	}
	if i, ok := c.taskIdx[b.PID]; ok {
		c.tasks[i].add(d)
		c.tasks[i].QueuePs += b.QueuePs
	}
}

// Finalize closes the accounting at the later of nowPs and the last burst
// end (bursts dispatched before the horizon may end after it) and returns
// the run's ledger. The collector can keep accumulating afterwards, but a
// typical run finalizes once.
func (c *Collector) Finalize(nowPs int64) *Ledger {
	horizon := nowPs
	for _, end := range c.coreEnd {
		if end > horizon {
			horizon = end
		}
	}
	l := &Ledger{
		HorizonPs: horizon,
		Cores:     len(c.cores),
		PerCore:   make([]Breakdown, len(c.cores)),
		PerTask:   append([]TaskLedger(nil), c.tasks...),
	}
	for i, core := range c.cores {
		core.IdlePs = horizon - core.BusyPs()
		l.PerCore[i] = core
		l.Total.add(core)
	}
	phases := make([]int, 0, len(c.phases))
	for p := range c.phases {
		phases = append(phases, p)
	}
	sort.Ints(phases)
	for _, p := range phases {
		l.PerPhase = append(l.PerPhase, PhaseLedger{Phase: p, Breakdown: *c.phases[p]})
	}
	return l
}
