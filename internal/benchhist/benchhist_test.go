package benchhist

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestAppendRoundTripsMixedKinds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.json")
	if err := Append(path, Entry{
		GoVersion:  "go-test",
		Benchmarks: []Benchmark{{Name: "grid", NsPerOp: 123, Reps: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, Entry{
		Kind: KindLedger,
		Ledger: []LedgerRow{{
			Machine: "hex-2b2m2l", Policy: "hybrid",
			UsefulPct: 61.5, AsymmetryPct: 10.25, SpillPct: 3,
			OverheadPct: 0.25, IdlePct: 25,
		}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, Entry{
		Kind: KindBreakdown,
		Breakdown: []Breakdown{{
			Machine:         "quad-2f2s",
			Alternations:    []int{4, 4096},
			Rates:           []float64{100, 102400},
			WindowInstrs:    []uint64{2000, 32000},
			DeltaPct:        [][]float64{{1, 0.5}, {-3, -8}},
			BreakEvenWindow: []uint64{32000, 0},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	h := Load(path)
	if h.Schema != HistorySchema || len(h.Entries) != 3 {
		t.Fatalf("loaded %d entries under schema %q", len(h.Entries), h.Schema)
	}
	if h.Entries[0].Kind != KindBench || len(h.Entries[0].Benchmarks) != 1 {
		t.Errorf("timing entry mangled: %+v", h.Entries[0])
	}
	lg := h.Entries[1]
	if lg.Kind != KindLedger || len(lg.Ledger) != 1 {
		t.Fatalf("ledger entry mangled: %+v", lg)
	}
	if row := lg.Ledger[0]; row.Policy != "hybrid" || row.UsefulPct != 61.5 || row.IdlePct != 25 {
		t.Errorf("ledger payload mangled: %+v", row)
	}
	bd := h.Entries[2]
	if bd.Kind != KindBreakdown || len(bd.Breakdown) != 1 {
		t.Fatalf("breakdown entry mangled: %+v", bd)
	}
	if bd.Breakdown[0].DeltaPct[1][1] != -8 || bd.Breakdown[0].BreakEvenWindow[0] != 32000 {
		t.Errorf("breakdown payload mangled: %+v", bd.Breakdown[0])
	}
}

// TestUnknownKindSurvivesAppend pins the forward-compatibility contract
// on Kind: an entry recorded by a newer producer under a kind this build
// does not know must ride through Load/Append untouched, not be dropped
// or re-labeled.
func TestUnknownKindSurvivesAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.json")
	if err := Append(path, Entry{Kind: "future-thing", GoVersion: "go-next"}); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, Entry{Benchmarks: []Benchmark{{Name: "grid", NsPerOp: 7, Reps: 1}}}); err != nil {
		t.Fatal(err)
	}
	h := Load(path)
	if len(h.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(h.Entries))
	}
	if h.Entries[0].Kind != "future-thing" || h.Entries[0].GoVersion != "go-next" {
		t.Errorf("unknown-kind entry mangled: %+v", h.Entries[0])
	}
}

func TestLoadAbsorbsLegacyReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.json")
	legacy := `{"schema":"phasetune-bench/v1","go_version":"go-old","gomaxprocs":1,` +
		`"benchmarks":[{"name":"grid_sequential","ns_per_op":42,"reps":3}]}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	h := Load(path)
	if len(h.Entries) != 1 || h.Entries[0].Schema != LegacySchema {
		t.Fatalf("legacy report not absorbed: %+v", h)
	}
	if h.Entries[0].Benchmarks[0].NsPerOp != 42 {
		t.Errorf("legacy benchmark lost")
	}
}

func TestLoadMissingOrGarbageStartsFresh(t *testing.T) {
	dir := t.TempDir()
	if h := Load(filepath.Join(dir, "absent.json")); len(h.Entries) != 0 {
		t.Errorf("missing file produced entries")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if h := Load(bad); len(h.Entries) != 0 {
		t.Errorf("garbage file produced entries")
	}
}

func TestSanitizeNaNs(t *testing.T) {
	nan := math.NaN()
	got := SanitizeNaNs([]float64{1.5, nan, 0, nan})
	want := []float64{1.5, NoData, 0, NoData}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("SanitizeNaNs[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if SanitizeNaNs(nil) != nil {
		t.Error("nil slice not preserved")
	}
	// The point of the sentinel: a sanitized serving entry must marshal.
	e := Entry{Kind: KindServing, Serving: []Serving{{
		Machine: "quad", P50Sec: [][]float64{SanitizeNaNs([]float64{nan})},
	}}}
	if _, err := json.Marshal(e); err != nil {
		t.Errorf("sanitized entry failed to marshal: %v", err)
	}
}
