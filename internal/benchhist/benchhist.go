// Package benchhist is the schema and I/O for the repository's
// machine-readable measurement history (BENCH_sweep.json). The file is an
// append-only log: every producer — cmd/benchjson's benchmark timings,
// cmd/experiments' breakdown-map summaries — appends one typed entry per
// invocation, and cmd/benchjson -history renders the accumulated
// trajectory. Keeping the schema here, instead of private to one command,
// is what lets several producers share one history without drifting.
package benchhist

import (
	"encoding/json"
	"math"
	"os"
)

// Schema identifiers of the on-disk formats.
const (
	// HistorySchema identifies the append-only history file.
	HistorySchema = "phasetune-bench-history/v1"
	// LegacySchema identifies the pre-history single-report file, absorbed
	// as the first entry on load.
	LegacySchema = "phasetune-bench/v1"
)

// Entry kinds. An empty Kind means benchmark timings (the original entry
// form, kept unnamed for backward compatibility with recorded histories).
const (
	// KindBench marks a benchmark-timing entry ("" on the wire).
	KindBench = ""
	// KindBreakdown marks a misprediction-cost breakdown-map entry.
	KindBreakdown = "breakdown"
	// KindServing marks an open-system serving latency entry.
	KindServing = "serving"
	// KindLedger marks a cycle-attribution entry.
	KindLedger = "ledger"
	// KindContention marks a shared-cache contention (antagonist herding)
	// entry.
	KindContention = "contention"
)

// Benchmark is one recorded timing measurement.
type Benchmark struct {
	Name    string             `json:"name"`
	NsPerOp int64              `json:"ns_per_op"`
	Reps    int                `json:"reps"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Breakdown is one machine's misprediction-cost map summary: the
// dynamic-vs-static throughput delta over the (alternation rate × window)
// grid plus the break-even frontier (experiments.Breakdown).
type Breakdown struct {
	// Machine is the machine name.
	Machine string `json:"machine"`
	// Alternations and Rates are the rate axis (per billion instructions).
	Alternations []int     `json:"alternations"`
	Rates        []float64 `json:"rates_per_b_instr"`
	// WindowInstrs is the window axis.
	WindowInstrs []uint64 `json:"window_instrs"`
	// DeltaPct is dynamic−static throughput delta in percentage points,
	// indexed [rate][window].
	DeltaPct [][]float64 `json:"delta_pct"`
	// BreakEvenWindow is, per rate, the largest window where dynamic still
	// held within the tolerance (0 = dynamic fell past it everywhere).
	BreakEvenWindow []uint64 `json:"break_even_window"`
	// TolerancePct is the break-even tolerance the frontier was cut with,
	// in throughput percentage points.
	TolerancePct float64 `json:"tolerance_pct,omitempty"`
}

// NoData marks a latency cell with no completed jobs in recorded quantile
// matrices. The in-memory convention for an empty completed set is NaN
// (metrics.Quantile, serve.Summarize), but JSON cannot carry NaN —
// json.Marshal rejects it — so producers rewrite NaN cells through
// SanitizeNaNs before appending. Consumers must treat negative latencies
// as absent data, not as measurements.
const NoData = -1

// SanitizeNaNs returns a copy of vs with every NaN replaced by NoData,
// making a quantile row safe to marshal. A nil slice stays nil.
func SanitizeNaNs(vs []float64) []float64 {
	if vs == nil {
		return nil
	}
	out := make([]float64, len(vs))
	for i, v := range vs {
		if math.IsNaN(v) {
			out[i] = NoData
		} else {
			out[i] = v
		}
	}
	return out
}

// Serving is one machine's open-system latency summary: exact sojourn
// quantiles over the (offered load × placement policy) grid
// (experiments.Serving). Latency entries are data, not timings: the
// -history regression gate compares benchmark timings only and must never
// trip on a serving entry.
type Serving struct {
	// Machine is the machine name.
	Machine string `json:"machine"`
	// Loads is the offered-load axis in multiples of machine capacity.
	Loads []float64 `json:"loads"`
	// Policies is the placement-policy axis, in column order.
	Policies []string `json:"policies"`
	// P50Sec, P99Sec, and P999Sec are sojourn-time quantiles in seconds,
	// indexed [load][policy].
	P50Sec  [][]float64 `json:"p50_sec"`
	P99Sec  [][]float64 `json:"p99_sec"`
	P999Sec [][]float64 `json:"p999_sec"`
	// PeakRunnable is the maximum simultaneously live task count per load
	// (max across policies and seeds) — the overcommit evidence.
	PeakRunnable []int `json:"peak_runnable"`
}

// LedgerRow is one (machine, policy) cycle-attribution rollup recorded by
// `cmd/experiments -run showdown -ledger -benchout`: the showdown cell's
// total machine time (cores × horizon) decomposed in percent, averaged
// over the campaign seeds. The five columns sum to 100 up to rounding, so
// history renderers can draw each row as one stacked bar.
type LedgerRow struct {
	// Machine is the machine name.
	Machine string `json:"machine"`
	// Policy is the placement-policy column name.
	Policy string `json:"policy"`
	// UsefulPct is work at the machine's fastest clock.
	UsefulPct float64 `json:"useful_pct"`
	// AsymmetryPct is loss to mispredicted slow-core placement.
	AsymmetryPct float64 `json:"asymmetry_pct"`
	// SpillPct is loss while knowingly spilled by capacity arbitration.
	SpillPct float64 `json:"spill_pct"`
	// OverheadPct sums the instrumentation taxes: marks, monitoring,
	// migration, context switch, overcommit slicing.
	OverheadPct float64 `json:"overhead_pct"`
	// IdlePct is unclaimed core time.
	IdlePct float64 `json:"idle_pct"`
}

// ContentionRow is one (machine, policy, priced) cell of the shared-cache
// herding campaign recorded by `cmd/experiments -run contention -benchout`
// (experiments.Contention). Contention rows are data, not timings: the
// -history regression gate compares benchmark timings only and must never
// trip on a contention entry.
type ContentionRow struct {
	// Machine is the machine name.
	Machine string `json:"machine"`
	// Policy is the placement-policy column name.
	Policy string `json:"policy"`
	// Priced reports whether the engine ran contention-priced.
	Priced bool `json:"priced"`
	// Throughput is mean committed instructions per second.
	Throughput float64 `json:"throughput"`
	// ThroughputPct is the improvement over the machine's unpriced stock
	// row, in percent.
	ThroughputPct float64 `json:"throughput_pct"`
	// MemShare is the per-cache-group share of memory-bound core time in
	// machine group order (Σ = 1 when any antagonist ran).
	MemShare []float64 `json:"mem_share"`
	// MaxMemShare is the hottest group's share — the herding signature
	// (1.0 = fully herded, 1/groups = perfect spread).
	MaxMemShare float64 `json:"max_mem_share"`
	// GroupsUsed is the mean number of cache groups hosting memory-bound
	// time.
	GroupsUsed float64 `json:"groups_used"`
	// MemTasks is the mean number of tasks classified memory-bound.
	MemTasks float64 `json:"mem_tasks"`
}

// Entry is one producer invocation.
type Entry struct {
	Schema string `json:"schema,omitempty"`
	// Kind discriminates the payload: "" = benchmark timings (Benchmarks,
	// Derived), "breakdown" = breakdown maps (Breakdown), "serving" =
	// serving latency summaries (Serving), "ledger" = cycle-attribution
	// rollups (Ledger), "contention" = shared-cache herding rows
	// (Contention). Consumers must treat unknown kinds as data to be
	// surfaced, not silently dropped.
	Kind       string             `json:"kind,omitempty"`
	Timestamp  string             `json:"timestamp,omitempty"`
	GoVersion  string             `json:"go_version,omitempty"`
	MaxProcs   int                `json:"gomaxprocs,omitempty"`
	Shards     int                `json:"shards,omitempty"`
	Benchmarks []Benchmark        `json:"benchmarks,omitempty"`
	Derived    map[string]float64 `json:"derived,omitempty"`
	Breakdown  []Breakdown        `json:"breakdown,omitempty"`
	Serving    []Serving          `json:"serving,omitempty"`
	Ledger     []LedgerRow        `json:"ledger,omitempty"`
	Contention []ContentionRow    `json:"contention,omitempty"`
}

// History is the file format: one entry per invocation, oldest first.
type History struct {
	Schema  string  `json:"schema"`
	Entries []Entry `json:"entries"`
}

// Load reads a history file, absorbing a legacy single-report file as the
// first entry. Unreadable or unrecognized content starts a fresh history —
// the file is a derived artifact, never a source of truth.
func Load(path string) History {
	h := History{Schema: HistorySchema}
	data, err := os.ReadFile(path)
	if err != nil {
		return h
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if json.Unmarshal(data, &probe) != nil {
		return h
	}
	switch probe.Schema {
	case HistorySchema:
		var old History
		if json.Unmarshal(data, &old) == nil {
			h.Entries = old.Entries
		}
	case LegacySchema:
		var legacy Entry
		if json.Unmarshal(data, &legacy) == nil {
			legacy.Schema = LegacySchema
			h.Entries = []Entry{legacy}
		}
	}
	return h
}

// Append loads path, appends the entry, and writes the history back.
func Append(path string, e Entry) error {
	h := Load(path)
	h.Entries = append(h.Entries, e)
	return Save(path, h)
}

// Save writes the history to path.
func Save(path string, h History) error {
	data, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
