package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// The HTTP protocol is four POST endpoints mirroring Transport, plus a
// read-only status endpoint, all JSON. Protocol errors (unknown worker,
// bad index) come back as 400 with {"error": "..."}; transport-level
// failures are whatever net/http surfaces.

// RegisterRequest is the /v1/register payload. Version is the worker's
// wire-format version (SpecVersion); a worker from an older build omits
// the field, decodes as 0, and is rejected — the version gate must hold in
// both directions, because an old worker would silently drop new Spec
// fields (or run an unknown Mode as baseline) and commit divergent bytes.
type RegisterRequest struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
}

// LeaseRequest is the /v1/lease payload.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
}

// HeartbeatRequest is the /v1/heartbeat payload.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
}

// httpError is the error envelope.
type httpError struct {
	Error string `json:"error"`
}

// handlePost decodes a JSON request, applies f, and encodes the reply.
func handlePost[Req, Reply any](mux *http.ServeMux, path string, f func(Req) (Reply, error)) {
	mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req Req
		if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf("decode: %v", err)})
			return
		}
		reply, err := f(req)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, reply)
	})
}

// writeJSON encodes one reply.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// NewHandler serves a coordinator over HTTP/JSON.
func NewHandler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	handlePost(mux, "/v1/register", func(req RegisterRequest) (*RegisterReply, error) {
		return c.Register(req.Name, req.Version)
	})
	handlePost(mux, "/v1/lease", func(req LeaseRequest) (*LeaseReply, error) {
		return c.Lease(req.WorkerID)
	})
	handlePost(mux, "/v1/commit", func(req CommitRequest) (*CommitReply, error) {
		return c.Commit(req)
	})
	handlePost(mux, "/v1/heartbeat", func(req HeartbeatRequest) (*HeartbeatReply, error) {
		return c.Heartbeat(req.WorkerID)
	})
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Progress())
	})
	// Fabric introspection: /status is the human/script-facing JSON view
	// (progress plus per-worker rows), /metrics the Prometheus text view
	// of the same counters. Both are read-only snapshots.
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Status())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = c.WriteMetrics(w)
	})
	return mux
}

// Client speaks the coordinator protocol over HTTP; it implements
// Transport for worker processes.
type Client struct {
	// BaseURL is the coordinator root, e.g. "http://127.0.0.1:7077".
	BaseURL string
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
	// RegisterWait bounds how long Register retries while the coordinator
	// socket is not up yet — workers routinely start before the
	// coordinator finishes binding (default 30s; negative disables
	// retries).
	RegisterWait time.Duration
}

// client returns the effective http.Client.
func (c *Client) client() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// post sends one request and decodes the reply into out.
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	url := strings.TrimRight(c.BaseURL, "/") + path
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var he httpError
		if json.Unmarshal(data, &he) == nil && he.Error != "" {
			return fmt.Errorf("dist: %s: %s", path, he.Error)
		}
		return fmt.Errorf("dist: %s: HTTP %d", path, resp.StatusCode)
	}
	return json.Unmarshal(data, out)
}

// Register implements Transport, retrying connection-level failures for
// up to RegisterWait so worker processes can start before the coordinator.
func (c *Client) Register(ctx context.Context, name string) (*RegisterReply, error) {
	wait := c.RegisterWait
	if wait == 0 {
		wait = 30 * time.Second
	}
	deadline := time.Now().Add(wait)
	for {
		var reply RegisterReply
		err := c.post(ctx, "/v1/register", RegisterRequest{Name: name, Version: SpecVersion}, &reply)
		if err == nil {
			return &reply, nil
		}
		// Protocol-level rejections are final; only keep retrying what
		// looks like the socket not being up yet.
		if strings.HasPrefix(err.Error(), "dist: ") || time.Now().After(deadline) {
			return nil, err
		}
		if serr := sleep(ctx, 200*time.Millisecond); serr != nil {
			return nil, serr
		}
	}
}

// Lease implements Transport.
func (c *Client) Lease(ctx context.Context, workerID string) (*LeaseReply, error) {
	var reply LeaseReply
	if err := c.post(ctx, "/v1/lease", LeaseRequest{WorkerID: workerID}, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Commit implements Transport.
func (c *Client) Commit(ctx context.Context, req CommitRequest) (*CommitReply, error) {
	var reply CommitReply
	if err := c.post(ctx, "/v1/commit", req, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Heartbeat implements Transport.
func (c *Client) Heartbeat(ctx context.Context, workerID string) (*HeartbeatReply, error) {
	var reply HeartbeatReply
	if err := c.post(ctx, "/v1/heartbeat", HeartbeatRequest{WorkerID: workerID}, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}
