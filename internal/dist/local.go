package dist

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"phasetune/internal/sim"
)

// LocalOptions configures an in-process fabric run.
type LocalOptions struct {
	// Workers is the in-process worker count (<=0 uses GOMAXPROCS).
	Workers int
	// ChunkSize is the lease chunk size (default 1).
	ChunkSize int
	// LeaseTTL is the lease lifetime (default DefaultLeaseTTL).
	LeaseTTL time.Duration
	// OnResult streams completions (see Options.OnResult).
	OnResult func(index int, res *sim.Result)
}

// RunLocal executes a campaign on an in-process fabric: one coordinator
// plus n workers in goroutines over LocalTransport. Every run still
// crosses the wire format — wire specs in, canonical JSON results out —
// so the merged output is byte-identical to the HTTP fabric's and to a
// sequential execution of the same grid; only the sockets are elided.
// Each worker keeps its own artifact cache, exactly as separate worker
// processes would.
func RunLocal(ctx context.Context, camp Campaign, opts LocalOptions) ([]*sim.Result, error) {
	coord, err := NewCoordinator(camp, Options{
		ChunkSize: opts.ChunkSize,
		LeaseTTL:  opts.LeaseTTL,
		OnResult:  opts.OnResult,
	})
	if err != nil {
		return nil, err
	}
	n := opts.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > len(camp.Specs) && len(camp.Specs) > 0 {
		n = len(camp.Specs)
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	workerErrs := make(chan error, n)
	for i := 0; i < n; i++ {
		w := &Worker{Name: fmt.Sprintf("local-%d", i), Transport: LocalTransport{coord}}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Run failures abort the campaign through the commit protocol;
			// anything else (an encode failure, a protocol bug) is collected
			// below so an all-workers-dead campaign fails instead of hanging.
			workerErrs <- w.Run(wctx)
		}()
	}
	go func() {
		wg.Wait()
		close(workerErrs)
		first := fmt.Errorf("dist: all workers exited with work outstanding")
		for err := range workerErrs {
			if err != nil && !errors.Is(err, context.Canceled) {
				first = err
				break
			}
		}
		coord.Abort(first) // no-op when the campaign already finished
	}()
	results, err := coord.Wait(ctx)
	cancel()
	wg.Wait()
	return results, err
}
