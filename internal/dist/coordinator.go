package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"phasetune/internal/sim"
	"phasetune/internal/trace"
)

// Status is a lease poll outcome.
type Status string

const (
	// StatusLease grants a chunk of specs.
	StatusLease Status = "lease"
	// StatusWait means no work is available right now; poll again.
	StatusWait Status = "wait"
	// StatusDone means the campaign is finished (or aborted); the worker
	// should exit.
	StatusDone Status = "done"
)

// CommitStatus is a commit outcome.
type CommitStatus string

const (
	// CommitOK accepted the result.
	CommitOK CommitStatus = "ok"
	// CommitDuplicate rejected the result because the spec index was
	// already committed (at-most-once per index; the payloads are
	// byte-identical by construction, so rejection is benign).
	CommitDuplicate CommitStatus = "duplicate"
)

// RegisterReply answers a worker registration.
type RegisterReply struct {
	// WorkerID is the coordinator-assigned identity for all later calls.
	WorkerID string `json:"worker_id"`
	// Env is the campaign environment the worker rebuilds its stack from.
	Env EnvSpec `json:"env"`
	// TotalSpecs is the campaign grid size (progress reporting).
	TotalSpecs int `json:"total_specs"`
	// LeaseTTLSec is the lease lifetime; workers should heartbeat at a
	// fraction of it.
	LeaseTTLSec float64 `json:"lease_ttl_sec"`
}

// LeaseReply answers a lease poll.
type LeaseReply struct {
	// Status says whether work was granted.
	Status Status `json:"status"`
	// LeaseID identifies the lease on commit (StatusLease only).
	LeaseID string `json:"lease_id,omitempty"`
	// Indices are the granted spec indices in the campaign grid.
	Indices []int `json:"indices,omitempty"`
	// Specs are the corresponding wire specs, parallel to Indices.
	Specs []Spec `json:"specs,omitempty"`
	// RetrySec suggests a poll delay (StatusWait only).
	RetrySec float64 `json:"retry_sec,omitempty"`
}

// CommitRequest reports one finished run (or a deterministic failure).
type CommitRequest struct {
	// WorkerID identifies the committing worker.
	WorkerID string `json:"worker_id"`
	// LeaseID is the lease the index was granted under.
	LeaseID string `json:"lease_id"`
	// Index is the spec index in the campaign grid.
	Index int `json:"index"`
	// Result is the canonical encoding of the run result (EncodeResult).
	Result json.RawMessage `json:"result,omitempty"`
	// Error, when non-empty, reports a run failure; it aborts the campaign
	// (runs are deterministic, so a retry would fail identically).
	Error string `json:"error,omitempty"`
}

// CommitReply answers a commit.
type CommitReply struct {
	// Status reports acceptance or duplicate rejection.
	Status CommitStatus `json:"status"`
}

// HeartbeatReply answers a heartbeat.
type HeartbeatReply struct {
	// Done tells the worker the campaign has finished.
	Done bool `json:"done"`
}

// Progress is a coordinator state snapshot (the /v1/status payload).
type Progress struct {
	// Total, Done, Queued, and Leased partition the campaign grid
	// (Done + Queued + Leased == Total while healthy).
	Total, Done, Queued, Leased int
	// Workers counts registered workers.
	Workers int
	// ExpiredLeases counts leases reclaimed after missed heartbeats.
	ExpiredLeases int
	// DuplicateCommits counts commits rejected as duplicates.
	DuplicateCommits int
	// Failed reports a campaign abort.
	Failed bool
}

// Options configures a coordinator.
type Options struct {
	// ChunkSize is how many specs one lease grants (default 1 — runs are
	// heavy relative to a round-trip, so fine-grained leases balance best).
	ChunkSize int
	// LeaseTTL is how long a lease lives without a heartbeat before its
	// uncommitted indices are re-dispatched (default 30s).
	LeaseTTL time.Duration
	// Clock overrides time.Now (tests drive expiry with a fake clock).
	Clock func() time.Time
	// OnResult, when set, streams each accepted commit (decoded) as it
	// lands, with the spec's grid index. It fires from the committing
	// request's goroutine, outside the coordinator lock.
	OnResult func(index int, res *sim.Result)
}

// DefaultLeaseTTL is the lease lifetime when Options.LeaseTTL is zero.
const DefaultLeaseTTL = 30 * time.Second

// lease is one outstanding grant.
type lease struct {
	worker   string
	pending  map[int]bool // granted indices not yet committed
	deadline time.Time
}

// workerState tracks one registered worker for fabric introspection: when
// it joined, when it was last heard from (any authenticated call counts as
// a liveness proof, not just heartbeats), how many results it committed,
// and whether it has been told the campaign is done.
type workerState struct {
	registeredAt time.Time
	lastSeen     time.Time
	commits      int
	released     bool
}

// Coordinator owns a campaign: it chunks the grid into leases, tracks
// worker liveness, re-dispatches expired leases, enforces at-most-once
// commit per spec index, and merges results in grid order. All methods
// are safe for concurrent use; LocalTransport and the HTTP handler call
// the same entry points.
type Coordinator struct {
	env   EnvSpec
	specs []Spec
	opts  Options

	// met counts fabric events (registrations, leases, commits, expiries)
	// on the shared trace.Metrics primitive; WriteMetrics exports it.
	met *trace.Metrics

	mu         sync.Mutex
	queue      []int // spec indices awaiting dispatch
	grantedAt  map[int]time.Time
	results    []json.RawMessage
	remaining  int
	leases     map[string]*lease
	workers    map[string]*workerState
	nextWorker int
	nextLease  int
	expired    int
	duplicates int
	failErr    error
	failIndex  int
	done       chan struct{}
	doneClosed bool
}

// NewCoordinator validates the campaign and builds a coordinator with the
// whole grid queued.
func NewCoordinator(camp Campaign, opts Options) (*Coordinator, error) {
	if err := camp.Env.Validate(); err != nil {
		return nil, err
	}
	if opts.ChunkSize <= 0 {
		opts.ChunkSize = 1
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	c := &Coordinator{
		env:       camp.Env,
		specs:     camp.Specs,
		opts:      opts,
		met:       trace.NewMetrics(),
		results:   make([]json.RawMessage, len(camp.Specs)),
		remaining: len(camp.Specs),
		queue:     make([]int, len(camp.Specs)),
		grantedAt: map[int]time.Time{},
		leases:    map[string]*lease{},
		workers:   map[string]*workerState{},
		failIndex: len(camp.Specs),
		done:      make(chan struct{}),
	}
	c.describeMetrics()
	for i := range camp.Specs {
		c.queue[i] = i
	}
	if c.remaining == 0 {
		c.closeDoneLocked()
	}
	return c, nil
}

// finishedLocked reports campaign completion (success or abort).
func (c *Coordinator) finishedLocked() bool {
	return c.remaining == 0 || c.failErr != nil
}

// closeDoneLocked releases Wait exactly once.
func (c *Coordinator) closeDoneLocked() {
	if !c.doneClosed {
		c.doneClosed = true
		close(c.done)
	}
}

// failLocked records a run failure (lowest index wins, like sim.Sweep) and
// aborts the campaign.
func (c *Coordinator) failLocked(index int, err error) {
	if c.failErr == nil || index < c.failIndex {
		c.failErr, c.failIndex = err, index
	}
	c.closeDoneLocked()
}

// expireLocked reclaims leases whose deadline passed, returning their
// uncommitted indices to the queue in ascending order.
func (c *Coordinator) expireLocked(now time.Time) {
	for id, l := range c.leases {
		if !now.After(l.deadline) {
			continue
		}
		var back []int
		for idx := range l.pending {
			back = append(back, idx)
		}
		sort.Ints(back)
		c.queue = append(c.queue, back...)
		delete(c.leases, id)
		c.expired++
		c.met.Inc("expired_leases_total", 1)
	}
}

// Register admits a worker and hands it the campaign environment. The
// worker's wire version must match this build's: an older worker would
// silently drop newer Spec fields and commit divergent bytes, breaking
// the deterministic-merge contract.
func (c *Coordinator) Register(name string, version int) (*RegisterReply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if version != SpecVersion {
		return nil, fmt.Errorf("dist: worker %q speaks wire version %d, coordinator speaks %d", name, version, SpecVersion)
	}
	c.nextWorker++
	id := fmt.Sprintf("w%d", c.nextWorker)
	if name != "" {
		id = fmt.Sprintf("%s-%s", id, name)
	}
	now := c.opts.Clock()
	c.workers[id] = &workerState{registeredAt: now, lastSeen: now}
	c.met.Inc("workers_registered_total", 1)
	return &RegisterReply{
		WorkerID:    id,
		Env:         c.env,
		TotalSpecs:  len(c.specs),
		LeaseTTLSec: c.opts.LeaseTTL.Seconds(),
	}, nil
}

// Lease grants the next chunk of pending specs, or reports wait/done.
func (c *Coordinator) Lease(workerID string) (*LeaseReply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws, ok := c.workers[workerID]
	if !ok {
		return nil, fmt.Errorf("dist: unknown worker %q", workerID)
	}
	now := c.opts.Clock()
	ws.lastSeen = now
	c.expireLocked(now)
	if c.finishedLocked() {
		ws.released = true
		return &LeaseReply{Status: StatusDone}, nil
	}
	if len(c.queue) == 0 {
		retry := c.opts.LeaseTTL.Seconds() / 10
		if retry > 0.5 {
			retry = 0.5
		}
		c.met.Inc("lease_waits_total", 1)
		return &LeaseReply{Status: StatusWait, RetrySec: retry}, nil
	}
	n := c.opts.ChunkSize
	if n > len(c.queue) {
		n = len(c.queue)
	}
	indices := append([]int(nil), c.queue[:n]...)
	c.queue = c.queue[n:]
	c.nextLease++
	id := fmt.Sprintf("l%d", c.nextLease)
	l := &lease{worker: workerID, pending: map[int]bool{}, deadline: now.Add(c.opts.LeaseTTL)}
	for _, idx := range indices {
		l.pending[idx] = true
		// Stamp the grant for the commit round-trip histogram; a re-grant
		// after expiry restarts the clock, so the histogram measures the
		// grant that actually produced the committed result.
		c.grantedAt[idx] = now
	}
	c.leases[id] = l
	c.met.Inc("leases_granted_total", 1)
	specs := make([]Spec, len(indices))
	for i, idx := range indices {
		specs[i] = c.specs[idx]
	}
	return &LeaseReply{Status: StatusLease, LeaseID: id, Indices: indices, Specs: specs}, nil
}

// Commit records one run result. The first commit for a spec index wins —
// even from an expired lease (the straggler's result is byte-identical to
// any re-dispatched execution); later commits are rejected as duplicates.
func (c *Coordinator) Commit(req CommitRequest) (*CommitReply, error) {
	c.mu.Lock()
	ws, ok := c.workers[req.WorkerID]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("dist: unknown worker %q", req.WorkerID)
	}
	if req.Index < 0 || req.Index >= len(c.specs) {
		c.mu.Unlock()
		return nil, fmt.Errorf("dist: commit index %d out of range [0,%d)", req.Index, len(c.specs))
	}
	now := c.opts.Clock()
	ws.lastSeen = now
	c.expireLocked(now)
	if req.Error != "" {
		c.met.Inc("failed_commits_total", 1)
		c.failLocked(req.Index, fmt.Errorf("dist: spec %d failed on %s: %s", req.Index, req.WorkerID, req.Error))
		c.mu.Unlock()
		return &CommitReply{Status: CommitOK}, nil
	}
	if len(req.Result) == 0 {
		c.mu.Unlock()
		return nil, fmt.Errorf("dist: commit for spec %d carries no result", req.Index)
	}
	if c.results[req.Index] != nil {
		c.duplicates++
		c.met.Inc("duplicate_commits_total", 1)
		c.mu.Unlock()
		return &CommitReply{Status: CommitDuplicate}, nil
	}
	c.results[req.Index] = append(json.RawMessage(nil), req.Result...)
	c.remaining--
	ws.commits++
	c.met.Inc("commits_total", 1)
	if granted, ok := c.grantedAt[req.Index]; ok {
		c.met.Observe("commit_roundtrip_us", now.Sub(granted).Microseconds())
		delete(c.grantedAt, req.Index)
	}
	// Retire the index everywhere it may still be scheduled: its own
	// lease, any re-dispatched lease, and the pending queue.
	for id, l := range c.leases {
		delete(l.pending, req.Index)
		if len(l.pending) == 0 {
			delete(c.leases, id)
		}
	}
	for i, idx := range c.queue {
		if idx == req.Index {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			break
		}
	}
	if c.remaining == 0 {
		c.closeDoneLocked()
	}
	onResult := c.opts.OnResult
	raw := c.results[req.Index]
	c.mu.Unlock()

	if onResult != nil {
		if res, err := DecodeResult(raw); err == nil {
			onResult(req.Index, res)
		}
	}
	return &CommitReply{Status: CommitOK}, nil
}

// Abort fails the campaign (releasing Wait with err) unless it already
// finished. RunLocal uses it when every worker has exited with work still
// outstanding — without it, Wait would block on results no one can commit.
func (c *Coordinator) Abort(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finishedLocked() {
		return
	}
	c.failLocked(len(c.specs), err)
}

// Heartbeat extends the deadlines of the worker's live leases.
func (c *Coordinator) Heartbeat(workerID string) (*HeartbeatReply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws, ok := c.workers[workerID]
	if !ok {
		return nil, fmt.Errorf("dist: unknown worker %q", workerID)
	}
	now := c.opts.Clock()
	ws.lastSeen = now
	c.met.Inc("heartbeats_total", 1)
	c.expireLocked(now)
	for _, l := range c.leases {
		if l.worker == workerID {
			l.deadline = now.Add(c.opts.LeaseTTL)
		}
	}
	return &HeartbeatReply{Done: c.finishedLocked()}, nil
}

// Progress snapshots coordinator state.
func (c *Coordinator) Progress() Progress {
	c.mu.Lock()
	defer c.mu.Unlock()
	leased := 0
	for _, l := range c.leases {
		leased += len(l.pending)
	}
	return Progress{
		Total:            len(c.specs),
		Done:             len(c.specs) - c.remaining,
		Queued:           len(c.queue),
		Leased:           leased,
		Workers:          len(c.workers),
		ExpiredLeases:    c.expired,
		DuplicateCommits: c.duplicates,
		Failed:           c.failErr != nil,
	}
}

// Quiesced reports whether every registered worker has been told the
// campaign is done — the point at which a server can stop listening
// without stranding workers mid-poll.
func (c *Coordinator) Quiesced() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.finishedLocked() {
		return false
	}
	for _, ws := range c.workers {
		if !ws.released {
			return false
		}
	}
	return true
}

// RawResults returns the committed result encodings in grid order. It
// errors unless the campaign completed successfully.
func (c *Coordinator) RawResults() ([]json.RawMessage, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failErr != nil {
		return nil, c.failErr
	}
	if c.remaining != 0 {
		return nil, fmt.Errorf("dist: campaign incomplete (%d of %d specs outstanding)", c.remaining, len(c.specs))
	}
	out := make([]json.RawMessage, len(c.results))
	for i, raw := range c.results {
		out[i] = append(json.RawMessage(nil), raw...)
	}
	return out, nil
}

// Wait blocks until the campaign completes (or ctx fires) and returns the
// decoded results in grid order — the deterministic merge: the slice is
// bit-identical to running every spec sequentially in one process.
func (c *Coordinator) Wait(ctx context.Context) ([]*sim.Result, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.done:
	}
	raws, err := c.RawResults()
	if err != nil {
		return nil, err
	}
	out := make([]*sim.Result, len(raws))
	for i, raw := range raws {
		res, err := DecodeResult(raw)
		if err != nil {
			return nil, fmt.Errorf("dist: spec %d: %w", i, err)
		}
		out[i] = res
	}
	return out, nil
}
