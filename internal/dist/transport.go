package dist

import "context"

// Transport is a worker's view of a coordinator. The same four calls are
// served in-process (LocalTransport) and over HTTP/JSON (Client), so every
// worker behavior — leasing, committing, heartbeating, retiring — is
// testable without sockets.
type Transport interface {
	// Register admits the worker and returns its identity plus the
	// campaign environment.
	Register(ctx context.Context, name string) (*RegisterReply, error)
	// Lease polls for the next chunk of work.
	Lease(ctx context.Context, workerID string) (*LeaseReply, error)
	// Commit reports one finished run (or a deterministic failure).
	Commit(ctx context.Context, req CommitRequest) (*CommitReply, error)
	// Heartbeat keeps the worker's leases alive.
	Heartbeat(ctx context.Context, workerID string) (*HeartbeatReply, error)
}

// LocalTransport calls a coordinator in-process: no sockets, no protocol
// envelope — but results still travel as canonical JSON, so the
// determinism contract exercised is identical to the HTTP path.
type LocalTransport struct {
	// C is the coordinator.
	C *Coordinator
}

// Register implements Transport. In-process workers are the same build as
// the coordinator by construction, so they register with this build's
// version.
func (t LocalTransport) Register(_ context.Context, name string) (*RegisterReply, error) {
	return t.C.Register(name, SpecVersion)
}

// Lease implements Transport.
func (t LocalTransport) Lease(_ context.Context, workerID string) (*LeaseReply, error) {
	return t.C.Lease(workerID)
}

// Commit implements Transport.
func (t LocalTransport) Commit(_ context.Context, req CommitRequest) (*CommitReply, error) {
	return t.C.Commit(req)
}

// Heartbeat implements Transport.
func (t LocalTransport) Heartbeat(_ context.Context, workerID string) (*HeartbeatReply, error) {
	return t.C.Heartbeat(workerID)
}
