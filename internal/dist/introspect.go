package dist

import (
	"io"
	"sort"
)

// Fabric introspection: the coordinator's live view of its workers and
// counters, served by NewHandler as GET /status (JSON) and GET /metrics
// (Prometheus text). Both are read-only snapshots built on the same
// trace.Metrics primitive the tracer's counter tracks use — one counting
// substrate for in-sim and in-fabric observability.

// WorkerStatus is one registered worker's live state.
type WorkerStatus struct {
	// ID is the coordinator-assigned worker identity.
	ID string `json:"id"`
	// HeartbeatAgeSec is the time since the worker was last heard from
	// (any authenticated call counts, not just heartbeats).
	HeartbeatAgeSec float64 `json:"heartbeat_age_sec"`
	// Commits counts results this worker committed (accepted only).
	Commits int `json:"commits"`
	// ThroughputPerSec is commits divided by time since registration.
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	// Done reports the worker has been told the campaign finished.
	Done bool `json:"done"`
}

// StatusReport is the GET /status payload: campaign progress plus one row
// per registered worker, sorted by worker ID.
type StatusReport struct {
	Progress Progress       `json:"progress"`
	Workers  []WorkerStatus `json:"workers"`
}

// Status snapshots the coordinator for the /status endpoint.
func (c *Coordinator) Status() StatusReport {
	rep := StatusReport{Progress: c.Progress()}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Clock()
	for id, ws := range c.workers {
		row := WorkerStatus{
			ID:              id,
			HeartbeatAgeSec: now.Sub(ws.lastSeen).Seconds(),
			Commits:         ws.commits,
			Done:            ws.released,
		}
		if up := now.Sub(ws.registeredAt).Seconds(); up > 0 {
			row.ThroughputPerSec = float64(ws.commits) / up
		}
		rep.Workers = append(rep.Workers, row)
	}
	sort.Slice(rep.Workers, func(i, j int) bool { return rep.Workers[i].ID < rep.Workers[j].ID })
	return rep
}

// describeMetrics registers the fabric counters up front so the /metrics
// export lists every metric (at zero) from the first scrape, in a fixed
// order.
func (c *Coordinator) describeMetrics() {
	for _, d := range []struct{ name, help string }{
		{"workers_registered_total", "workers admitted to the campaign"},
		{"leases_granted_total", "spec chunks granted to workers"},
		{"lease_waits_total", "lease polls answered with wait (no work queued)"},
		{"commits_total", "results accepted"},
		{"duplicate_commits_total", "commits rejected as duplicates (at-most-once per index)"},
		{"failed_commits_total", "commits reporting a deterministic run failure"},
		{"expired_leases_total", "leases reclaimed after missed heartbeats"},
		{"heartbeats_total", "heartbeats received"},
		{"specs_total", "campaign grid size"},
		{"specs_done", "specs with a committed result"},
		{"specs_queued", "specs awaiting dispatch"},
		{"specs_leased", "specs granted and not yet committed"},
		{"leases_in_flight", "outstanding leases"},
	} {
		c.met.Describe(d.name, d.help)
	}
	// Fixed bounds keep the exported bucket lines identical across runs;
	// they span the fabric's realistic grant-to-commit range, from a local
	// transport round-trip (sub-millisecond) to a lease-TTL straggler.
	c.met.DescribeHistogram("commit_roundtrip_us",
		"microseconds from lease grant to accepted commit, per spec",
		[]int64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 60_000_000})
}

// WriteMetrics exports the fabric counters in Prometheus text format (the
// GET /metrics payload), refreshing the state gauges first.
func (c *Coordinator) WriteMetrics(w io.Writer) error {
	c.mu.Lock()
	leased := 0
	for _, l := range c.leases {
		leased += len(l.pending)
	}
	c.met.Set("specs_total", int64(len(c.specs)))
	c.met.Set("specs_done", int64(len(c.specs)-c.remaining))
	c.met.Set("specs_queued", int64(len(c.queue)))
	c.met.Set("specs_leased", int64(leased))
	c.met.Set("leases_in_flight", int64(len(c.leases)))
	c.mu.Unlock()
	return c.met.WritePrometheus(w)
}
