package dist

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"phasetune/internal/exec"
	"phasetune/internal/sim"
	"phasetune/internal/workload"
)

// errCrashed reports a test-hook-induced worker loss.
var errCrashed = errors.New("dist: worker crashed (test hook)")

// Worker executes leases from a coordinator. It registers once, rebuilds
// the session environment from the coordinator's EnvSpec (suite generation
// included), and then loops: lease, run, commit. One artifact cache and one
// segment memo live for the worker's whole lifetime, so each distinct
// (benchmark, technique) image is prepared once per worker no matter how
// many leases touch it, and segment outcomes recorded by one lease replay
// in later ones — the warm-cache property that makes long campaigns cheap.
// Both are strictly worker-local: memoization is invisible to results
// (DESIGN.md §13), so sharded merges stay byte-identical without the memo
// ever crossing the wire.
type Worker struct {
	// Name labels the worker at registration (shows up in worker IDs).
	Name string
	// Transport connects to the coordinator.
	Transport Transport
	// RetryWait overrides the poll delay while the coordinator has no
	// work and suggests none (default 100ms).
	RetryWait time.Duration

	// crashAfter, when positive, makes the worker exit without committing
	// after completing that many runs — a test hook simulating worker loss
	// mid-lease (the completed-but-uncommitted run must be re-dispatched).
	crashAfter int
}

// Run drives the worker until the campaign completes, the context fires,
// or a run fails. Run failures are reported to the coordinator (aborting
// the campaign — runs are deterministic, retries would fail identically)
// and returned.
func (w *Worker) Run(ctx context.Context) error {
	reg, err := w.Transport.Register(ctx, w.Name)
	if err != nil {
		return fmt.Errorf("dist: register: %w", err)
	}
	if err := reg.Env.Validate(); err != nil {
		return err
	}
	suite, err := reg.Env.Suite()
	if err != nil {
		return fmt.Errorf("dist: rebuild suite: %w", err)
	}
	cache := sim.NewImageCache()
	memo := exec.NewSegmentMemo(0)

	// Heartbeat at a third of the lease TTL for as long as the worker
	// lives, so healthy-but-slow runs never lose their lease.
	hctx, stopHeartbeats := context.WithCancel(ctx)
	defer stopHeartbeats()
	if ttl := time.Duration(reg.LeaseTTLSec * float64(time.Second)); ttl > 0 {
		go w.heartbeats(hctx, reg.WorkerID, ttl/3)
	}

	runs := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lr, err := retryTransient(ctx, func() (*LeaseReply, error) {
			return w.Transport.Lease(ctx, reg.WorkerID)
		})
		if err != nil {
			return fmt.Errorf("dist: lease: %w", err)
		}
		switch lr.Status {
		case StatusDone:
			return nil
		case StatusWait:
			if err := sleep(ctx, w.pollDelay(lr)); err != nil {
				return err
			}
		case StatusLease:
			if len(lr.Specs) != len(lr.Indices) {
				return fmt.Errorf("dist: lease %s: %d specs for %d indices", lr.LeaseID, len(lr.Specs), len(lr.Indices))
			}
			if err := w.runLease(ctx, reg, suite, cache, memo, lr, &runs); err != nil {
				return err
			}
		default:
			return fmt.Errorf("dist: lease: unknown status %q", lr.Status)
		}
	}
}

// runLease executes and commits one lease's specs in order.
func (w *Worker) runLease(ctx context.Context, reg *RegisterReply, suite []*workload.Benchmark,
	cache *sim.ImageCache, memo *exec.SegmentMemo, lr *LeaseReply, runs *int) error {

	for k, idx := range lr.Indices {
		cfg, rerr := reg.Env.RunConfig(lr.Specs[k], suite, cache)
		cfg.Memo = memo
		var res *sim.Result
		if rerr == nil {
			res, rerr = sim.RunContext(ctx, cfg)
		}
		if rerr != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			_, _ = w.Transport.Commit(ctx, CommitRequest{
				WorkerID: reg.WorkerID, LeaseID: lr.LeaseID, Index: idx, Error: rerr.Error(),
			})
			return fmt.Errorf("dist: spec %d: %w", idx, rerr)
		}
		*runs++
		if w.crashAfter > 0 && *runs >= w.crashAfter {
			return errCrashed
		}
		raw, err := EncodeResult(res)
		if err != nil {
			return fmt.Errorf("dist: spec %d: %w", idx, err)
		}
		// A duplicate reply is benign: another worker (or our own expired
		// lease's re-dispatch) committed the byte-identical result first.
		// Commits retry on transient transport failure — safe because a
		// commit that did land makes the retry a rejected duplicate.
		if _, err := retryTransient(ctx, func() (*CommitReply, error) {
			return w.Transport.Commit(ctx, CommitRequest{
				WorkerID: reg.WorkerID, LeaseID: lr.LeaseID, Index: idx, Result: raw,
			})
		}); err != nil {
			return fmt.Errorf("dist: commit spec %d: %w", idx, err)
		}
	}
	return nil
}

// pollDelay picks the wait before the next lease poll.
func (w *Worker) pollDelay(lr *LeaseReply) time.Duration {
	if lr.RetrySec > 0 {
		return time.Duration(lr.RetrySec * float64(time.Second))
	}
	if w.RetryWait > 0 {
		return w.RetryWait
	}
	return 100 * time.Millisecond
}

// heartbeats pings the coordinator until the campaign reports done or the
// context fires. Transient failures are ignored — one dropped ping must
// not silence a healthy worker's liveness for the rest of the campaign —
// and the main loop ends the goroutine via ctx when the worker exits.
func (w *Worker) heartbeats(ctx context.Context, workerID string, period time.Duration) {
	if period <= 0 {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if hb, err := w.Transport.Heartbeat(ctx, workerID); err == nil && hb.Done {
				return
			}
		}
	}
}

// retryTransient runs one transport call, retrying transport-level
// failures (dropped connections, timeouts) with backoff. Protocol-level
// rejections — the coordinator answered and said no, always "dist:"-
// prefixed — are final immediately.
func retryTransient[T any](ctx context.Context, f func() (T, error)) (T, error) {
	var zero T
	backoff := 200 * time.Millisecond
	for attempt := 0; ; attempt++ {
		v, err := f()
		if err == nil {
			return v, nil
		}
		if attempt >= 3 || ctx.Err() != nil || strings.HasPrefix(err.Error(), "dist: ") {
			return zero, err
		}
		if serr := sleep(ctx, backoff); serr != nil {
			return zero, serr
		}
		backoff *= 2
	}
}

// sleep waits d, honoring ctx.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
