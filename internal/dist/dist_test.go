package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"phasetune/internal/amp"
	"phasetune/internal/exec"
	"phasetune/internal/online"
	"phasetune/internal/osched"
	"phasetune/internal/phase"
	"phasetune/internal/sim"
	"phasetune/internal/transition"
	"phasetune/internal/tuning"
	"phasetune/internal/workload"
)

// testCampaign is a small but representative grid: baseline, static-tuned,
// dynamic, hybrid, and oracle cells across two seeds on the quad AMP —
// plus one alternation-axis cell and one drift-damped hybrid cell, so the
// v3 wire fields cross the fabric in every determinism test — with tiny
// workloads so the whole suite stays fast.
func testCampaign() Campaign {
	env := EnvSpec{
		Version: SpecVersion,
		Machine: *amp.Quad2Fast2Slow(),
		Cost:    exec.DefaultCostModel(),
		Sched:   osched.DefaultConfig(),
		Typing:  phase.Options{K: 2, MinBlockInstrs: 5},
	}
	loop45 := transition.Params{Technique: transition.Loop, MinSize: 45, PropagateThroughUntyped: true}
	tcfg := tuning.DefaultConfig()
	var specs []Spec
	for _, seed := range []uint64{1, 2} {
		q := workload.Spec{Slots: 2, QueueLen: 2, Seed: seed}
		specs = append(specs,
			Spec{Queues: q, DurationSec: 2, Mode: sim.Baseline, Tuning: tcfg, Seed: seed},
			Spec{Queues: q, DurationSec: 2, Mode: sim.Tuned, Params: loop45, Tuning: tcfg, Seed: seed},
			Spec{Queues: q, DurationSec: 2, Mode: sim.Dynamic, Tuning: tcfg, Online: online.DefaultConfig(), Seed: seed},
			Spec{Queues: q, DurationSec: 2, Mode: sim.Hybrid, Params: loop45, Tuning: tcfg, Online: online.DefaultConfig(), Seed: seed},
			Spec{Queues: q, DurationSec: 2, Mode: sim.Oracle, Params: loop45, Tuning: tcfg, Seed: seed},
		)
	}
	damped := online.DefaultConfig()
	damped.Hybrid.Drift = online.DefaultDrift
	altQ := workload.Spec{Slots: 2, QueueLen: 2, Seed: 1, Alternations: 64}
	specs = append(specs,
		Spec{Queues: altQ, DurationSec: 2, Mode: sim.Dynamic, Tuning: tcfg, Online: online.DefaultConfig(), Seed: 1},
		Spec{Queues: workload.Spec{Slots: 2, QueueLen: 2, Seed: 1}, DurationSec: 2,
			Mode: sim.Hybrid, Params: loop45, Tuning: tcfg, Online: damped, Seed: 1},
	)
	return Campaign{Env: env, Specs: specs}
}

// sequentialRaw executes the campaign one spec at a time in-process and
// returns the canonical encodings — the reference the fabric must match
// byte for byte.
func sequentialRaw(t testing.TB, camp Campaign) []json.RawMessage {
	t.Helper()
	suite, err := camp.Env.Suite()
	if err != nil {
		t.Fatalf("suite: %v", err)
	}
	cache := sim.NewImageCache()
	out := make([]json.RawMessage, len(camp.Specs))
	for i, sp := range camp.Specs {
		cfg, err := camp.Env.RunConfig(sp, suite, cache)
		if err != nil {
			t.Fatalf("sequential spec %d: %v", i, err)
		}
		res, err := sim.RunContext(context.Background(), cfg)
		if err != nil {
			t.Fatalf("sequential spec %d: %v", i, err)
		}
		raw, err := EncodeResult(res)
		if err != nil {
			t.Fatalf("encode spec %d: %v", i, err)
		}
		out[i] = raw
	}
	return out
}

// requireIdentical compares fabric results against the sequential
// reference byte for byte.
func requireIdentical(t *testing.T, label string, want []json.RawMessage, got []*sim.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i, res := range got {
		raw, err := EncodeResult(res)
		if err != nil {
			t.Fatalf("%s: encode %d: %v", label, i, err)
		}
		if !bytes.Equal(raw, want[i]) {
			t.Errorf("%s: spec %d differs from sequential run", label, i)
		}
	}
}

// TestSpecRoundTrip pins the wire contract: a campaign survives JSON
// serialization exactly, so coordinator and workers agree on every run.
func TestSpecRoundTrip(t *testing.T) {
	camp := testCampaign()
	blob, err := json.Marshal(camp)
	if err != nil {
		t.Fatal(err)
	}
	var back Campaign
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	blob2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Error("campaign JSON does not round-trip byte-identically")
	}
	if err := back.Env.Validate(); err != nil {
		t.Errorf("round-tripped env invalid: %v", err)
	}
}

// TestShardedByteIdenticalToSequential is the fabric's core property: for
// any shard count, RunLocal's merged results are byte-identical to running
// the grid sequentially in one process.
func TestShardedByteIdenticalToSequential(t *testing.T) {
	camp := testCampaign()
	want := sequentialRaw(t, camp)
	for _, shards := range []int{1, 2, 3, 5} {
		got, err := RunLocal(context.Background(), camp, LocalOptions{Workers: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		requireIdentical(t, fmt.Sprintf("shards=%d", shards), want, got)
	}
}

// TestShardedChunkSizesByteIdentical varies the lease chunking, which
// changes scheduling but must not change output.
func TestShardedChunkSizesByteIdentical(t *testing.T) {
	camp := testCampaign()
	want := sequentialRaw(t, camp)
	for _, chunk := range []int{2, 3, len(camp.Specs)} {
		got, err := RunLocal(context.Background(), camp, LocalOptions{Workers: 2, ChunkSize: chunk})
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		requireIdentical(t, fmt.Sprintf("chunk=%d", chunk), want, got)
	}
}

// fakeClock drives lease expiry deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// TestCrashedWorkerWorkIsRedispatched injects a worker crash mid-lease:
// the worker completes one run but exits before committing anything else,
// its lease expires, a second worker re-runs the lost specs, and the
// merged output is still byte-identical to the sequential reference.
func TestCrashedWorkerWorkIsRedispatched(t *testing.T) {
	camp := testCampaign()
	want := sequentialRaw(t, camp)
	clock := newFakeClock()
	ttl := 30 * time.Second
	coord, err := NewCoordinator(camp, Options{ChunkSize: 3, LeaseTTL: ttl, Clock: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	tr := LocalTransport{coord}

	crasher := &Worker{Name: "crasher", Transport: tr, crashAfter: 2}
	if err := crasher.Run(context.Background()); err != errCrashed {
		t.Fatalf("crasher returned %v, want errCrashed", err)
	}
	if p := coord.Progress(); p.Done >= p.Total {
		t.Fatalf("crasher finished the campaign alone: %+v", p)
	}

	// The crasher's lease is still live; a healthy worker must make
	// progress only once the lease expires.
	clock.Advance(ttl + time.Second)
	healthy := &Worker{Name: "healthy", Transport: tr}
	if err := healthy.Run(context.Background()); err != nil {
		t.Fatalf("healthy worker: %v", err)
	}

	got, err := coord.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "crash/retry", want, got)
	if p := coord.Progress(); p.ExpiredLeases == 0 {
		t.Errorf("no lease expired: %+v", p)
	}
}

// oneSpecCoordinator builds a 1-spec campaign with two registered workers
// both holding the same spec index (the second via lease expiry).
func oneSpecCoordinator(t *testing.T) (*Coordinator, *fakeClock, *LeaseReply, *LeaseReply, string, string) {
	t.Helper()
	camp := testCampaign()
	camp.Specs = camp.Specs[:1]
	clock := newFakeClock()
	coord, err := NewCoordinator(camp, Options{LeaseTTL: 10 * time.Second, Clock: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := coord.Register("w1", SpecVersion)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := coord.Register("w2", SpecVersion)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := coord.Lease(r1.WorkerID)
	if err != nil || l1.Status != StatusLease {
		t.Fatalf("w1 lease: %v %+v", err, l1)
	}
	// w2 sees no work while w1's lease is live...
	if lr, err := coord.Lease(r2.WorkerID); err != nil || lr.Status != StatusWait {
		t.Fatalf("w2 lease while live = %+v, %v; want wait", lr, err)
	}
	// ...and inherits the spec once the lease expires.
	clock.Advance(11 * time.Second)
	l2, err := coord.Lease(r2.WorkerID)
	if err != nil || l2.Status != StatusLease || len(l2.Indices) != 1 || l2.Indices[0] != 0 {
		t.Fatalf("w2 lease after expiry = %+v, %v; want index 0", l2, err)
	}
	return coord, clock, l1, l2, r1.WorkerID, r2.WorkerID
}

// runSpecRaw executes one spec of the campaign directly.
func runSpecRaw(t *testing.T, camp Campaign, idx int) json.RawMessage {
	t.Helper()
	suite, err := camp.Env.Suite()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := camp.Env.RunConfig(camp.Specs[idx], suite, sim.NewImageCache())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestHeartbeatKeepsLeaseAlive pins the liveness rule: a heartbeating
// worker never loses its lease, no matter how long the run takes.
func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	camp := testCampaign()
	camp.Specs = camp.Specs[:1]
	clock := newFakeClock()
	coord, err := NewCoordinator(camp, Options{LeaseTTL: 10 * time.Second, Clock: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := coord.Register("w1", SpecVersion)
	r2, _ := coord.Register("w2", SpecVersion)
	if lr, _ := coord.Lease(r1.WorkerID); lr.Status != StatusLease {
		t.Fatalf("w1 got %+v", lr)
	}
	for i := 0; i < 5; i++ {
		clock.Advance(8 * time.Second)
		if _, err := coord.Heartbeat(r1.WorkerID); err != nil {
			t.Fatal(err)
		}
	}
	if lr, _ := coord.Lease(r2.WorkerID); lr.Status != StatusWait {
		t.Fatalf("heartbeated lease was lost: w2 got %+v", lr)
	}
	if p := coord.Progress(); p.ExpiredLeases != 0 {
		t.Errorf("expired leases = %d, want 0", p.ExpiredLeases)
	}
}

// TestStragglerCommitWinsAndDuplicateRejected covers at-most-once commit:
// after re-dispatch, whichever worker commits a spec first wins — here the
// expired straggler — and the loser's commit is rejected as a duplicate.
func TestStragglerCommitWinsAndDuplicateRejected(t *testing.T) {
	coord, _, l1, l2, w1, w2 := oneSpecCoordinator(t)
	camp := Campaign{Env: coord.env, Specs: coord.specs}
	raw := runSpecRaw(t, camp, 0)

	// The straggler (expired lease) commits first: accepted.
	cr, err := coord.Commit(CommitRequest{WorkerID: w1, LeaseID: l1.LeaseID, Index: 0, Result: raw})
	if err != nil || cr.Status != CommitOK {
		t.Fatalf("straggler commit = %+v, %v; want ok", cr, err)
	}
	// The re-dispatched worker commits second: duplicate.
	cr, err = coord.Commit(CommitRequest{WorkerID: w2, LeaseID: l2.LeaseID, Index: 0, Result: raw})
	if err != nil || cr.Status != CommitDuplicate {
		t.Fatalf("duplicate commit = %+v, %v; want duplicate", cr, err)
	}
	p := coord.Progress()
	if p.Done != 1 || p.DuplicateCommits != 1 {
		t.Errorf("progress = %+v; want 1 done, 1 duplicate", p)
	}
	results, err := coord.Wait(context.Background())
	if err != nil || len(results) != 1 {
		t.Fatalf("wait: %v (%d results)", err, len(results))
	}
}

// TestCommitValidation covers the protocol's rejection paths.
func TestCommitValidation(t *testing.T) {
	camp := testCampaign()
	coord, err := NewCoordinator(camp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Lease("nobody"); err == nil {
		t.Error("lease from unregistered worker accepted")
	}
	r, _ := coord.Register("w", SpecVersion)
	l, _ := coord.Lease(r.WorkerID)
	if _, err := coord.Commit(CommitRequest{WorkerID: r.WorkerID, LeaseID: l.LeaseID, Index: len(camp.Specs)}); err == nil {
		t.Error("out-of-range commit accepted")
	}
	if _, err := coord.Commit(CommitRequest{WorkerID: r.WorkerID, LeaseID: l.LeaseID, Index: 0}); err == nil {
		t.Error("empty commit accepted")
	}
}

// TestRunFailureAbortsCampaign: a reported run failure fails Wait.
func TestRunFailureAbortsCampaign(t *testing.T) {
	camp := testCampaign()
	coord, err := NewCoordinator(camp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := coord.Register("w", SpecVersion)
	l, _ := coord.Lease(r.WorkerID)
	if _, err := coord.Commit(CommitRequest{
		WorkerID: r.WorkerID, LeaseID: l.LeaseID, Index: l.Indices[0], Error: "boom",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Wait(context.Background()); err == nil {
		t.Fatal("Wait succeeded after a reported failure")
	}
	// Workers are released so they can exit.
	if lr, _ := coord.Lease(r.WorkerID); lr.Status != StatusDone {
		t.Errorf("post-abort lease = %+v, want done", lr)
	}
}

// TestAbortReleasesWait: Abort fails an unfinished campaign (the
// all-workers-dead path) but never overrides a completed one.
func TestAbortReleasesWait(t *testing.T) {
	camp := testCampaign()
	coord, err := NewCoordinator(camp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	coord.Abort(fmt.Errorf("all workers gone"))
	if _, err := coord.Wait(context.Background()); err == nil {
		t.Fatal("Wait succeeded after Abort")
	}

	// A finished campaign ignores Abort.
	camp.Specs = camp.Specs[:1]
	done, err := NewCoordinator(camp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := done.Register("w", SpecVersion)
	l, _ := done.Lease(r.WorkerID)
	raw := runSpecRaw(t, camp, 0)
	if _, err := done.Commit(CommitRequest{WorkerID: r.WorkerID, LeaseID: l.LeaseID, Index: 0, Result: raw}); err != nil {
		t.Fatal(err)
	}
	done.Abort(fmt.Errorf("late abort"))
	if _, err := done.Wait(context.Background()); err != nil {
		t.Fatalf("Abort overrode a completed campaign: %v", err)
	}
}

// flakyTransport fails each call's first attempt with a transport-level
// error; retries must absorb it.
type flakyTransport struct {
	LocalTransport
	mu     sync.Mutex
	failed map[string]bool
}

func (t *flakyTransport) flake(key string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.failed == nil {
		t.failed = map[string]bool{}
	}
	if !t.failed[key] {
		t.failed[key] = true
		return fmt.Errorf("connection reset (injected)")
	}
	return nil
}

func (t *flakyTransport) Lease(ctx context.Context, workerID string) (*LeaseReply, error) {
	if err := t.flake("lease-" + workerID); err != nil {
		return nil, err
	}
	return t.LocalTransport.Lease(ctx, workerID)
}

func (t *flakyTransport) Commit(ctx context.Context, req CommitRequest) (*CommitReply, error) {
	if err := t.flake(fmt.Sprintf("commit-%d", req.Index)); err != nil {
		return nil, err
	}
	return t.LocalTransport.Commit(ctx, req)
}

// TestWorkerSurvivesTransientTransportFailures: one dropped lease poll and
// one dropped commit per spec must not kill the worker or the campaign.
func TestWorkerSurvivesTransientTransportFailures(t *testing.T) {
	camp := testCampaign()
	camp.Specs = camp.Specs[:2]
	want := sequentialRaw(t, camp)
	coord, err := NewCoordinator(camp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := &Worker{Name: "flaky", Transport: &flakyTransport{LocalTransport: LocalTransport{coord}}}
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("worker died on transient failures: %v", err)
	}
	got, err := coord.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "flaky", want, got)
}

// TestHTTPFabricByteIdentical runs the full protocol over loopback HTTP —
// two workers against an httptest server — and demands byte-identical
// output again.
func TestHTTPFabricByteIdentical(t *testing.T) {
	camp := testCampaign()
	want := sequentialRaw(t, camp)
	coord, err := NewCoordinator(camp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(coord))
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		w := &Worker{
			Name:      fmt.Sprintf("http-%d", i),
			Transport: &Client{BaseURL: srv.URL, HTTPClient: srv.Client()},
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Run(context.Background())
		}(i)
	}
	got, err := coord.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, werr := range errs {
		if werr != nil {
			t.Errorf("worker %d: %v", i, werr)
		}
	}
	requireIdentical(t, "http", want, got)
	if !coord.Quiesced() {
		t.Error("coordinator not quiesced after workers exited")
	}
}

// TestEmptyCampaign completes immediately.
func TestEmptyCampaign(t *testing.T) {
	camp := testCampaign()
	camp.Specs = nil
	results, err := RunLocal(context.Background(), camp, LocalOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("%d results from empty campaign", len(results))
	}
}

// TestRegisterRejectsWireVersionMismatch pins the two-way version gate: a
// worker from another wire generation (an old build omits the field and
// decodes as 0) must fail registration instead of being handed specs it
// would silently misinterpret.
func TestRegisterRejectsWireVersionMismatch(t *testing.T) {
	coord, err := NewCoordinator(testCampaign(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Register("old-build", 0); err == nil {
		t.Error("coordinator admitted a version-0 worker")
	}
	if _, err := coord.Register("future-build", SpecVersion+1); err == nil {
		t.Error("coordinator admitted a future-version worker")
	}
	if _, err := coord.Register("same-build", SpecVersion); err != nil {
		t.Errorf("coordinator rejected a matching worker: %v", err)
	}
}
