// Package dist is the distributed sweep fabric: it shards an experiment
// campaign — a grid of run specifications sharing one environment — across
// worker processes and merges the results deterministically.
//
// The design leans entirely on the property the sweep engine already
// guarantees: every run is a pure function of its RunConfig, and both the
// configuration and the result are plain data. The fabric therefore never
// moves programs, images, or simulator state between processes; it moves
// *recipes*. A Campaign carries the serialized environment (machine, cost
// model, scheduler, typing — EnvSpec) plus one wire Spec per run (workload
// construction parameters, mode, technique, tuning, online config, seed).
// A worker rebuilds the benchmark suite from the environment — suite
// generation is deterministic in (cost, machine), and the synthetic
// alternation-rate workloads of the breakdown map regenerate the same way
// (workload.Spec.Materialize) — executes its leased specs, and commits
// each result in a canonical encoding. Merging is then trivially
// deterministic: results are keyed by spec index, and any two successful
// executions of the same index commit identical bytes, so the coordinator
// can accept the first commit and reject duplicates without ever comparing
// payloads.
//
// The failure model is crash-stop workers with at-most-once commit per
// spec index: leases expire when a worker stops heartbeating, expired
// indices are re-dispatched, and a straggler that commits after its lease
// expired still wins if it commits first (its result is byte-identical to
// the re-dispatched worker's by construction). A run that fails
// deterministically aborts the whole campaign, mirroring sim.Sweep.
//
// Two transports serve the same protocol: LocalTransport calls the
// coordinator in-process (the whole fabric is unit-testable without
// sockets), and Client/NewHandler speak HTTP/JSON for real multi-process
// deployments (cmd/sweepd).
package dist

import (
	"encoding/json"
	"fmt"

	"phasetune/internal/amp"
	"phasetune/internal/exec"
	"phasetune/internal/online"
	"phasetune/internal/osched"
	"phasetune/internal/phase"
	"phasetune/internal/place"
	"phasetune/internal/sim"
	"phasetune/internal/transition"
	"phasetune/internal/tuning"
	"phasetune/internal/workload"
)

// SpecVersion is the fabric wire-format version. Byte-identical merge only
// holds when every worker runs the same decision code as the coordinator,
// so the version is bumped whenever the wire form or run semantics change
// and checked at registration — a stale worker fails fast instead of
// committing divergent bytes. History: v1 was the PR-3 format (no
// placement engine); v2 added Spec.Placement and the hybrid mode; v3 added
// the alternation-rate workload axis (workload.Spec.Alternations) and the
// hybrid's drift-damping knob (online.HybridConfig.Drift), both of which
// change run results and result encodings (online.Stats.Damped); v4 added
// the open-system serving form (workload.Spec.Arrivals lowering to a
// stream run, osched.Config.Overcommit in the environment) and the
// overcommit fields in result encodings (sim.Result.PeakRunnable,
// OvercommitSlices); v5 added campaign-wide cycle accounting
// (EnvSpec.Ledger lowering to sim.RunConfig.Ledger) and the ledger
// rollup in result encodings (sim.Result.Ledger), which must merge
// byte-identically like every other Result field; v6 added contention
// pricing (place.Config.Contention inside Spec.Placement), the
// memory-antagonist fleet axis (workload.Spec.Fleet), and per-group
// cache residency stats (Spec.CacheStats lowering to
// sim.RunConfig.CacheStats, sim.Result.CacheStats in result encodings)
// — all omitempty, so specs and results not using them encode
// byte-identically to v5 payloads, but run semantics diverge whenever
// they are set, hence the bump.
const SpecVersion = 6

// EnvSpec is the serialized session environment: everything a worker needs
// to rebuild the simulation stack that is shared by every run of a
// campaign. Per-run knobs travel in each Spec instead. All fields are
// plain data and JSON round-trips are exact (counters stay far below 2^53;
// floats use Go's shortest round-trip encoding).
type EnvSpec struct {
	// Version is the wire-format version (SpecVersion); mismatched peers
	// reject the campaign at validation.
	Version int `json:"version"`
	// Machine is the hardware description.
	Machine amp.Machine `json:"machine"`
	// Cost is the shared cost model.
	Cost exec.CostModel `json:"cost"`
	// Sched is the scheduler configuration.
	Sched osched.Config `json:"sched"`
	// Typing configures static block typing.
	Typing phase.Options `json:"typing"`
	// Ledger enables conserved cycle accounting on every run of the
	// campaign (sim.RunConfig.Ledger). Campaign-wide rather than per-spec:
	// attribution columns only mean something when every cell of a grid
	// carries them.
	Ledger bool `json:"ledger,omitempty"`
}

// Validate checks the environment is structurally sound and speaks this
// build's wire version.
func (e *EnvSpec) Validate() error {
	if e.Version != SpecVersion {
		return fmt.Errorf("dist: env: wire version %d, this build speaks %d", e.Version, SpecVersion)
	}
	if err := e.Machine.Validate(); err != nil {
		return fmt.Errorf("dist: env: %w", err)
	}
	return nil
}

// Suite rebuilds the benchmark suite for this environment. Suite
// generation is a pure function of (cost, machine), so every worker
// regenerates programs bit-identical to the coordinator's.
func (e *EnvSpec) Suite() ([]*workload.Benchmark, error) {
	m := e.Machine
	return workload.Suite(e.Cost, &m)
}

// Spec is one run of a campaign in wire form: sim.RunConfig minus the
// shared environment and minus anything process-local (built workloads,
// caches, hooks). The workload travels as its construction parameters
// (workload.Spec); together with an EnvSpec it lowers to a RunConfig.
type Spec struct {
	// Queues describes the workload by construction — a suite draw; the
	// synthetic alternation-rate axis when Queues.Alternations > 0; or the
	// open-system serving form when Queues.Arrivals is set (the worker
	// regenerates the alternator fleet, serving fleet, and arrival
	// schedule from the environment's cost model and machine exactly as it
	// regenerates the suite).
	Queues workload.Spec `json:"queues"`
	// DurationSec is the run length in simulated seconds.
	DurationSec float64 `json:"duration_sec"`
	// Mode selects baseline/tuned/overhead/dynamic/oracle execution.
	Mode sim.Mode `json:"mode"`
	// Params is the marking technique for instrumented modes.
	Params transition.Params `json:"params"`
	// Tuning configures the static-mark runtime.
	Tuning tuning.Config `json:"tuning"`
	// Online configures the dynamic detector (Mode == Dynamic or Hybrid).
	Online online.Config `json:"online"`
	// Placement configures the shared placement engine's arbitration
	// (engine-backed modes: Dynamic, Hybrid, Tuned with Tuning.Spill).
	Placement place.Config `json:"placement"`
	// TypingError injects clustering error (Fig. 7 methodology).
	TypingError float64 `json:"typing_error"`
	// Seed drives workload process seeds and error injection.
	Seed uint64 `json:"seed"`
	// CacheStats enables the kernel's per-cache-group residency map for
	// this run (sim.RunConfig.CacheStats; the rollup lands in
	// sim.Result.CacheStats and must merge byte-identically like every
	// other Result field). Per-spec rather than campaign-wide: only the
	// contention cells of a grid read it.
	CacheStats bool `json:"cache_stats,omitempty"`
}

// RunConfig lowers a wire spec onto the environment. The machine, cost,
// and scheduler are copied so the returned config is self-contained; suite
// must be the environment's suite (EnvSpec.Suite or an equal generation).
// Alternation-axis specs regenerate their workload from (cost, machine)
// instead of the suite, which is the only path that can fail.
func (e EnvSpec) RunConfig(sp Spec, suite []*workload.Benchmark, cache *sim.ImageCache) (sim.RunConfig, error) {
	m := e.Machine
	cost := e.Cost
	sched := e.Sched
	var w *workload.Workload
	var stream *workload.Stream
	var err error
	if sp.Queues.Arrivals != nil {
		// Open-system serving spec: the worker regenerates the serving
		// fleet and the arrival schedule from (cost, machine, spec, seed),
		// both pure functions, exactly as it regenerates the suite.
		stream, err = sp.Queues.MaterializeOpen(cost, &m)
	} else {
		w, err = sp.Queues.Materialize(suite, cost, &m)
	}
	if err != nil {
		return sim.RunConfig{}, fmt.Errorf("dist: materialize workload: %w", err)
	}
	return sim.RunConfig{
		Machine: &m, Cost: &cost, Sched: &sched,
		Workload:    w,
		Stream:      stream,
		DurationSec: sp.DurationSec,
		Mode:        sp.Mode,
		Params:      sp.Params,
		Tuning:      sp.Tuning,
		Online:      sp.Online,
		Placement:   sp.Placement,
		TypingOpts:  e.Typing,
		TypingError: sp.TypingError,
		Seed:        sp.Seed,
		Cache:       cache,
		Ledger:      e.Ledger,
		CacheStats:  sp.CacheStats,
	}, nil
}

// Campaign is a complete distributable sweep: one environment plus the run
// grid. Results are always reported in grid order, regardless of how the
// fabric schedules the work.
type Campaign struct {
	// Env is the shared environment.
	Env EnvSpec `json:"env"`
	// Specs is the run grid.
	Specs []Spec `json:"specs"`
}

// EncodeResult canonically encodes a run result for commit. The encoding
// is deterministic (encoding/json sorts map keys) and lossless for every
// Result field, which is what makes "byte-identical" a meaningful
// cross-process contract: any two successful executions of the same spec
// commit the same bytes.
func EncodeResult(res *sim.Result) (json.RawMessage, error) {
	return json.Marshal(res)
}

// DecodeResult inverts EncodeResult.
func DecodeResult(raw json.RawMessage) (*sim.Result, error) {
	var r sim.Result
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("dist: decode result: %w", err)
	}
	return &r, nil
}
