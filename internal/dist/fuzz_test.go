package dist_test

// Native fuzz targets for the fabric wire format. The wire is the trust
// boundary of the distributed sweep: coordinators accept campaign uploads
// and workers accept spec leases from the network, so decoding must never
// panic on arbitrary bytes, and anything that decodes must re-encode
// canonically — Marshal(Unmarshal(x)) must be a fixed point, because the
// byte-identical merge contract keys dedup on encoded bytes. The seed
// corpus covers every campaign family (showdown, technique grid, window,
// breakdown, serving, contention), so structural drift in any spec shape
// immediately joins the fuzz frontier.

import (
	"bytes"
	"encoding/json"
	"testing"

	"phasetune/internal/amp"
	"phasetune/internal/dist"
	"phasetune/internal/experiments"
)

// corpusSpecs cuts representative wire specs from every campaign family at
// tiny scale (the fuzz engine mutates them; they never run).
func corpusSpecs(f *testing.F) []dist.Campaign {
	f.Helper()
	cfg, err := experiments.Default()
	if err != nil {
		f.Fatal(err)
	}
	cfg = cfg.Scale(2, 10, []uint64{1})
	hex := amp.Hex2Big2Medium2Little()
	return []dist.Campaign{
		experiments.ShowdownCampaign(cfg, amp.Quad2Fast2Slow()),
		experiments.TechniqueCampaign(cfg),
		experiments.WindowCampaign(cfg, nil, nil),
		experiments.BreakdownCampaign(cfg, hex, nil, nil),
		experiments.ServingCampaign(cfg, hex),
		experiments.ContentionCampaign(cfg, hex),
	}
}

// roundTrip checks the fixed-point property for a decodable payload: decode,
// re-encode, decode again, re-encode again — the two encodings must match
// byte for byte (the first decode may legitimately normalize unknown fields
// away; the second round must be stable).
func roundTrip[T any](t *testing.T, data []byte) {
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		return // undecodable input is fine; panicking is not
	}
	enc1, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("re-encode after decode failed: %v", err)
	}
	var v2 T
	if err := json.Unmarshal(enc1, &v2); err != nil {
		t.Fatalf("canonical encoding does not decode: %v\n%s", err, enc1)
	}
	enc2, err := json.Marshal(v2)
	if err != nil {
		t.Fatalf("second re-encode failed: %v", err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("encoding is not a fixed point:\n%s\nvs\n%s", enc1, enc2)
	}
}

func FuzzSpecDecode(f *testing.F) {
	for _, camp := range corpusSpecs(f) {
		for _, sp := range camp.Specs {
			blob, err := json.Marshal(sp)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(blob)
		}
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"queues":{"slots":-1},"seed":18446744073709551615}`))
	f.Add([]byte(`{"placement":{"contention":{"miss_ns":-1e308}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		roundTrip[dist.Spec](t, data)
	})
}

func FuzzEnvSpecDecode(f *testing.F) {
	for _, camp := range corpusSpecs(f) {
		blob, err := json.Marshal(camp.Env)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":-9,"machine":{"cores":null}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var env dist.EnvSpec
		if err := json.Unmarshal(data, &env); err != nil {
			return
		}
		// Validate must classify, never panic, on any decodable environment.
		_ = env.Validate()
		roundTrip[dist.EnvSpec](t, data)
	})
}
