package dist

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestStatusReportsWorkerRows pins the introspection snapshot: per-worker
// heartbeat age, commit count, throughput, and ID-sorted row order.
func TestStatusReportsWorkerRows(t *testing.T) {
	camp := testCampaign()
	camp.Specs = camp.Specs[:2]
	clock := newFakeClock()
	coord, err := NewCoordinator(camp, Options{LeaseTTL: time.Minute, Clock: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := coord.Register("alpha", SpecVersion)
	rb, _ := coord.Register("beta", SpecVersion)

	lr, err := coord.Lease(ra.WorkerID)
	if err != nil || lr.Status != StatusLease {
		t.Fatalf("lease = %+v, %v", lr, err)
	}
	clock.Advance(10 * time.Second)
	raw := runSpecRaw(t, camp, lr.Indices[0])
	if _, err := coord.Commit(CommitRequest{WorkerID: ra.WorkerID, LeaseID: lr.LeaseID, Index: lr.Indices[0], Result: raw}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(5 * time.Second)

	rep := coord.Status()
	if len(rep.Workers) != 2 {
		t.Fatalf("worker rows = %d, want 2", len(rep.Workers))
	}
	if rep.Workers[0].ID != ra.WorkerID || rep.Workers[1].ID != rb.WorkerID {
		t.Errorf("rows not ID-sorted: %q, %q", rep.Workers[0].ID, rep.Workers[1].ID)
	}
	a, b := rep.Workers[0], rep.Workers[1]
	if a.Commits != 1 || b.Commits != 0 {
		t.Errorf("commits = %d/%d, want 1/0", a.Commits, b.Commits)
	}
	// alpha was last seen at its commit (5s ago), beta at registration (15s).
	if a.HeartbeatAgeSec != 5 || b.HeartbeatAgeSec != 15 {
		t.Errorf("heartbeat ages = %g/%g, want 5/15", a.HeartbeatAgeSec, b.HeartbeatAgeSec)
	}
	// 1 commit over 15s of registered lifetime.
	if want := 1.0 / 15.0; a.ThroughputPerSec != want {
		t.Errorf("throughput = %g, want %g", a.ThroughputPerSec, want)
	}
	if rep.Progress.Done != 1 || rep.Progress.Total != 2 {
		t.Errorf("progress = %+v", rep.Progress)
	}
}

// TestWriteMetricsCountsFabricEvents pins the Prometheus export: event
// counters advance with fabric activity and gauges reflect current state.
func TestWriteMetricsCountsFabricEvents(t *testing.T) {
	camp := testCampaign()
	camp.Specs = camp.Specs[:1]
	clock := newFakeClock()
	coord, err := NewCoordinator(camp, Options{LeaseTTL: 10 * time.Second, Clock: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := coord.Register("w", SpecVersion)
	lr, _ := coord.Lease(r1.WorkerID)
	if _, err := coord.Heartbeat(r1.WorkerID); err != nil {
		t.Fatal(err)
	}
	// Expire the lease, re-lease, then commit twice (second is duplicate).
	clock.Advance(11 * time.Second)
	lr2, _ := coord.Lease(r1.WorkerID)
	clock.Advance(2 * time.Second)
	raw := runSpecRaw(t, camp, 0)
	if rep, _ := coord.Commit(CommitRequest{WorkerID: r1.WorkerID, LeaseID: lr2.LeaseID, Index: 0, Result: raw}); rep.Status != CommitOK {
		t.Fatalf("commit = %+v", rep)
	}
	if rep, _ := coord.Commit(CommitRequest{WorkerID: r1.WorkerID, LeaseID: lr.LeaseID, Index: 0, Result: raw}); rep.Status != CommitDuplicate {
		t.Fatalf("second commit = %+v", rep)
	}

	var sb strings.Builder
	if err := coord.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"workers_registered_total 1",
		"leases_granted_total 2",
		"expired_leases_total 1",
		"commits_total 1",
		"duplicate_commits_total 1",
		"heartbeats_total 1",
		"specs_total 1",
		"specs_done 1",
		"# HELP commits_total",
		// The accepted commit landed 2s (2e6 µs) after its re-grant, so it
		// falls in the (1e6, 1e7] bucket; the duplicate observes nothing.
		"# TYPE commit_roundtrip_us histogram",
		`commit_roundtrip_us_bucket{le="1000000"} 0`,
		`commit_roundtrip_us_bucket{le="10000000"} 1`,
		`commit_roundtrip_us_bucket{le="+Inf"} 1`,
		"commit_roundtrip_us_sum 2000000",
		"commit_roundtrip_us_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics export missing %q:\n%s", want, out)
		}
	}
}

// TestHTTPIntrospectionEndpoints serves /status and /metrics over a real
// HTTP handler and checks both views are live.
func TestHTTPIntrospectionEndpoints(t *testing.T) {
	camp := testCampaign()
	camp.Specs = camp.Specs[:1]
	coord, err := NewCoordinator(camp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Register("probe", SpecVersion); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(coord))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep StatusReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Workers) != 1 || !strings.Contains(rep.Workers[0].ID, "probe") {
		t.Errorf("/status workers = %+v", rep.Workers)
	}
	if rep.Progress.Total != 1 {
		t.Errorf("/status progress = %+v", rep.Progress)
	}

	resp2, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(body), "workers_registered_total 1") {
		t.Errorf("/metrics missing worker counter:\n%s", body)
	}
	if ct := resp2.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
}
