// Package instrument rewrites program images, inserting phase marks at the
// sites chosen by the transition analysis. It is the synthetic counterpart
// of the paper's GNU-Binutils-based static instrumentation framework (§III).
//
// Like the paper's framework, it modifies binaries directly (no compiler or
// OS involvement), places marks so that only the marked control-flow edge
// pays for them, and never changes the target of any indirect transfer:
//
//   - fallthrough edges get the mark inserted *inline* between source and
//     target; branches that jump straight to the target are remapped past
//     the mark, so only the falling-through path executes it;
//   - taken-branch edges are retargeted to a *stub* appended at the end of
//     the procedure: the mark followed by a jump to the original target.
//
// Each mark occupies at most 78 bytes (paper §IV-B1): 73 bytes of
// save/analyze/switch/restore payload, plus a 5-byte jump for stubs.
package instrument

import (
	"fmt"
	"sort"

	"phasetune/internal/cfg"
	"phasetune/internal/isa"
	"phasetune/internal/phase"
	"phasetune/internal/prog"
	"phasetune/internal/transition"
)

// Mark byte sizes (paper: "each phase mark is at most 78 bytes").
const (
	// InlineMarkBytes is the encoded size of an inline phase mark.
	InlineMarkBytes = 73
	// StubJumpBytes is the extra unconditional jump a stub mark needs.
	StubJumpBytes = 5
)

// Mark is the metadata of one inserted phase mark.
type Mark struct {
	// ID is the mark's index in the binary's mark table; PhaseMark
	// instructions carry it.
	ID int
	// Type is the phase type of the section the mark announces.
	Type phase.Type
	// Site is the transition site the mark implements.
	Site transition.MarkSite
	// Stub reports whether the mark lives in an appended stub (taken-branch
	// edge) rather than inline (fallthrough edge).
	Stub bool
}

// Binary is an instrumented program image.
type Binary struct {
	// Prog is the rewritten program.
	Prog *prog.Program
	// Marks is the mark table, indexed by Mark.ID.
	Marks []Mark
	// OrigBytes and NewBytes are the encoded sizes before and after
	// rewriting.
	OrigBytes, NewBytes int
	// Plan is the marking plan that produced this binary.
	Plan *transition.Plan
}

// SpaceOverhead returns the fractional size increase, the quantity of the
// paper's Fig. 3 (e.g. 0.04 for 4%).
func (b *Binary) SpaceOverhead() float64 {
	if b.OrigBytes == 0 {
		return 0
	}
	return float64(b.NewBytes-b.OrigBytes) / float64(b.OrigBytes)
}

// NumMarks returns the number of inserted marks.
func (b *Binary) NumMarks() int { return len(b.Marks) }

// Apply instruments a program according to plan. The input program is not
// modified. Block IDs in the plan refer to the CFGs of the *original*
// program, which callers must have built with identical cfg semantics.
//
// The blockStart function maps (proc, block) to the block's first
// instruction index and blockEnd to one past its last; they come from the
// CFGs the plan was computed on.
func Apply(p *prog.Program, plan *transition.Plan, blockStart, blockEnd func(proc, block int) int) (*Binary, error) {
	out := p.Clone()
	bin := &Binary{Prog: out, OrigBytes: p.SizeBytes(), Plan: plan}

	// Group sites per procedure.
	perProc := map[int][]transition.MarkSite{}
	for _, s := range plan.Sites {
		perProc[s.Proc] = append(perProc[s.Proc], s)
	}

	for _, ps := range sortedProcs(perProc) {
		if err := rewriteProc(bin, out, ps.proc, ps.sites, blockStart, blockEnd); err != nil {
			return nil, err
		}
	}
	bin.NewBytes = out.SizeBytes()
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("instrument: rewritten program invalid: %w", err)
	}
	return bin, nil
}

// ApplyWithGraphs is Apply with block accessors derived from the program's
// CFGs (the graphs the plan was computed on).
func ApplyWithGraphs(p *prog.Program, plan *transition.Plan, graphs []*cfg.Graph) (*Binary, error) {
	start := func(proc, block int) int { return graphs[proc].Blocks[block].Start }
	end := func(proc, block int) int { return graphs[proc].Blocks[block].End }
	return Apply(p, plan, start, end)
}

type procSites struct {
	proc  int
	sites []transition.MarkSite
}

// sortedProcs yields per-procedure site groups in ascending procedure order
// for deterministic mark IDs.
func sortedProcs(m map[int][]transition.MarkSite) []procSites {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]procSites, 0, len(keys))
	for _, k := range keys {
		out = append(out, procSites{proc: k, sites: m[k]})
	}
	return out
}

// rewriteProc rewrites one procedure: inline insertions at fallthrough mark
// sites, stubs for taken-edge mark sites, and target remapping.
func rewriteProc(bin *Binary, p *prog.Program, pi int, sites []transition.MarkSite, blockStart, blockEnd func(proc, block int) int) error {
	proc := p.Procs[pi]
	n := len(proc.Instrs)

	// Inline marks keyed by target instruction index. Multiple fallthrough
	// marks cannot share a target (a block has one layout predecessor), but
	// be defensive and stack them.
	inline := map[int][]transition.MarkSite{}
	// Stubs keyed by (source block end-1: the branch instruction index,
	// target instruction index).
	type stubKey struct{ branchInstr, target int }
	stubs := map[stubKey]transition.MarkSite{}

	for _, s := range sites {
		tgt := blockStart(s.Proc, s.To)
		if tgt < 0 || tgt >= n {
			return fmt.Errorf("instrument: proc %d: mark target instr %d out of range", pi, tgt)
		}
		if s.Fallthrough {
			inline[tgt] = append(inline[tgt], s)
			continue
		}
		// Taken edge: the source block's terminating branch/jump.
		bEnd := blockEnd(s.Proc, s.From) - 1
		if bEnd < 0 || bEnd >= n {
			return fmt.Errorf("instrument: proc %d: mark source instr %d out of range", pi, bEnd)
		}
		term := proc.Instrs[bEnd]
		if term.Op != isa.Branch && term.Op != isa.Jump {
			// A non-branch region crossing marked as non-fallthrough cannot
			// be instrumented on the taken path; treat as inline at target.
			inline[tgt] = append(inline[tgt], s)
			continue
		}
		stubs[stubKey{branchInstr: bEnd, target: tgt}] = s
	}

	// Build the new instruction stream with an index remap. Branches that
	// target a position with inline marks skip past them: remap[i] points at
	// the original instruction's new position.
	remap := make([]int, n+1)
	var instrs []isa.Instruction
	for i := 0; i < n; i++ {
		for _, s := range inline[i] {
			instrs = append(instrs, isa.Instruction{
				Op:     isa.PhaseMark,
				MarkID: len(bin.Marks),
				Bytes:  InlineMarkBytes,
			})
			bin.Marks = append(bin.Marks, Mark{ID: len(bin.Marks), Type: s.Type, Site: s})
		}
		remap[i] = len(instrs)
		instrs = append(instrs, proc.Instrs[i])
	}
	remap[n] = len(instrs)

	// Append stubs and note retarget instructions. Deterministic order.
	type stubFix struct {
		branchInstr int // original index of branch to retarget
		stubPos     int // new index of stub entry
	}
	var fixes []stubFix
	skeys := make([]stubKey, 0, len(stubs))
	for k := range stubs {
		skeys = append(skeys, k)
	}
	sort.Slice(skeys, func(a, b int) bool {
		if skeys[a].branchInstr != skeys[b].branchInstr {
			return skeys[a].branchInstr < skeys[b].branchInstr
		}
		return skeys[a].target < skeys[b].target
	})
	for _, k := range skeys {
		s := stubs[k]
		stubPos := len(instrs)
		instrs = append(instrs, isa.Instruction{
			Op:     isa.PhaseMark,
			MarkID: len(bin.Marks),
			Bytes:  InlineMarkBytes,
		})
		bin.Marks = append(bin.Marks, Mark{ID: len(bin.Marks), Type: s.Type, Site: s, Stub: true})
		// Jump back to the (remapped) original target, past any inline marks.
		instrs = append(instrs, isa.Instruction{Op: isa.Jump, Target: remap[k.target], Bytes: StubJumpBytes})
		fixes = append(fixes, stubFix{branchInstr: k.branchInstr, stubPos: stubPos})
	}

	// Remap branch/jump targets of original instructions.
	for i := 0; i < n; i++ {
		ni := remap[i]
		switch instrs[ni].Op {
		case isa.Branch, isa.Jump:
			instrs[ni].Target = remap[instrs[ni].Target]
		}
	}
	// Retarget stub-marked branches to their stubs (after generic remap so
	// the stub target wins).
	for _, f := range fixes {
		ni := remap[f.branchInstr]
		instrs[ni].Target = f.stubPos
	}

	p.Procs[pi] = &prog.Procedure{Name: proc.Name, Instrs: instrs}
	return nil
}
