package instrument

import (
	"testing"

	"phasetune/internal/cfg"
	"phasetune/internal/isa"
	"phasetune/internal/phase"
	"phasetune/internal/prog"
	"phasetune/internal/summarize"
	"phasetune/internal/transition"
)

// fixture returns a two-phase program, its graphs, and a BB-technique plan.
func fixture(t *testing.T, params transition.Params) (*prog.Program, []*cfg.Graph, *transition.Plan) {
	t.Helper()
	b := prog.NewBuilder("fix")
	helper := b.Proc("helper")
	helper.Straight(prog.BlockMix{Load: 12, Store: 4, WorkingSetKB: 32768, Locality: 0.3}).Ret()
	main := b.Proc("main")
	b.SetEntry("main")
	main.Straight(prog.BlockMix{IntALU: 16})
	main.Loop(40, func(pb *prog.ProcBuilder) {
		pb.Straight(prog.BlockMix{IntALU: 30, IntMul: 10})
	})
	main.Loop(40, func(pb *prog.ProcBuilder) {
		pb.Straight(prog.BlockMix{Load: 24, Store: 10, IntALU: 6, WorkingSetKB: 32768, Locality: 0.3})
		pb.CallProc("helper")
	})
	main.Ret()
	p := b.MustBuild()
	graphs, err := cfg.BuildAll(p)
	if err != nil {
		t.Fatalf("BuildAll: %v", err)
	}
	cg := cfg.BuildCallGraph(p, graphs)
	ty := &phase.Typing{K: 2, Types: map[phase.BlockKey]phase.Type{}}
	for pi, g := range graphs {
		for _, blk := range g.Blocks {
			if blk.Kind != cfg.KindNormal || blk.NumInstrs() < 5 {
				continue
			}
			if blk.Mix().MemOps() > 0 {
				ty.Types[phase.BlockKey{Proc: pi, Block: blk.ID}] = 1
			} else {
				ty.Types[phase.BlockKey{Proc: pi, Block: blk.ID}] = 0
			}
		}
	}
	sum := summarize.SummarizeLoops(p, graphs, cg, ty, summarize.DefaultWeights())
	plan, err := transition.ComputePlan(p, graphs, cg, ty, sum, params)
	if err != nil {
		t.Fatalf("ComputePlan: %v", err)
	}
	return p, graphs, plan
}

func apply(t *testing.T, p *prog.Program, graphs []*cfg.Graph, plan *transition.Plan) *Binary {
	t.Helper()
	bin, err := ApplyWithGraphs(p, plan, graphs)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	return bin
}

func TestInstrumentedProgramValid(t *testing.T) {
	for _, params := range []transition.Params{
		{Technique: transition.BasicBlock, MinSize: 10, PropagateThroughUntyped: true},
		{Technique: transition.BasicBlock, MinSize: 10, Lookahead: 2, PropagateThroughUntyped: true},
		{Technique: transition.Interval, MinSize: 30, PropagateThroughUntyped: true},
		{Technique: transition.Loop, MinSize: 30, PropagateThroughUntyped: true},
	} {
		p, graphs, plan := fixture(t, params)
		bin := apply(t, p, graphs, plan)
		if err := bin.Prog.Validate(); err != nil {
			t.Errorf("%s: instrumented program invalid: %v", params.Name(), err)
		}
		if bin.NumMarks() != plan.NumMarks() {
			t.Errorf("%s: %d marks inserted, plan has %d", params.Name(), bin.NumMarks(), plan.NumMarks())
		}
	}
}

func TestOriginalProgramUntouched(t *testing.T) {
	p, graphs, plan := fixture(t, transition.Params{Technique: transition.BasicBlock, MinSize: 10, PropagateThroughUntyped: true})
	before := p.NumInstrs()
	apply(t, p, graphs, plan)
	if p.NumInstrs() != before {
		t.Error("Apply mutated the input program")
	}
	for _, pr := range p.Procs {
		for _, in := range pr.Instrs {
			if in.Op == isa.PhaseMark {
				t.Fatal("phase mark leaked into original program")
			}
		}
	}
}

func TestSpaceOverheadAccounting(t *testing.T) {
	p, graphs, plan := fixture(t, transition.Params{Technique: transition.BasicBlock, MinSize: 10, PropagateThroughUntyped: true})
	bin := apply(t, p, graphs, plan)
	if bin.OrigBytes != p.SizeBytes() {
		t.Errorf("OrigBytes = %d, want %d", bin.OrigBytes, p.SizeBytes())
	}
	if bin.NewBytes != bin.Prog.SizeBytes() {
		t.Errorf("NewBytes = %d, want %d", bin.NewBytes, bin.Prog.SizeBytes())
	}
	// Every mark adds at most 78 bytes (paper §IV-B1).
	added := bin.NewBytes - bin.OrigBytes
	if added > bin.NumMarks()*(InlineMarkBytes+StubJumpBytes) {
		t.Errorf("added %d bytes for %d marks, exceeds 78/mark", added, bin.NumMarks())
	}
	if bin.NumMarks() > 0 && added < bin.NumMarks()*InlineMarkBytes {
		t.Errorf("added %d bytes for %d marks, below 73/mark", added, bin.NumMarks())
	}
	if bin.SpaceOverhead() <= 0 {
		t.Error("space overhead not positive despite inserted marks")
	}
}

func TestMarkTableConsistent(t *testing.T) {
	p, graphs, plan := fixture(t, transition.Params{Technique: transition.BasicBlock, MinSize: 10, PropagateThroughUntyped: true})
	bin := apply(t, p, graphs, plan)
	found := map[int]int{}
	for _, pr := range bin.Prog.Procs {
		for _, in := range pr.Instrs {
			if in.Op == isa.PhaseMark {
				found[in.MarkID]++
			}
		}
	}
	if len(found) != len(bin.Marks) {
		t.Fatalf("%d distinct mark IDs in code, table has %d", len(found), len(bin.Marks))
	}
	for id, n := range found {
		if n != 1 {
			t.Errorf("mark %d appears %d times", id, n)
		}
		if id < 0 || id >= len(bin.Marks) {
			t.Errorf("mark ID %d outside table", id)
		}
	}
	for i, m := range bin.Marks {
		if m.ID != i {
			t.Errorf("mark table entry %d has ID %d", i, m.ID)
		}
		if m.Type == phase.Untyped {
			t.Errorf("mark %d has no type", i)
		}
	}
}

func TestInstrumentedCFGStillBuilds(t *testing.T) {
	p, graphs, plan := fixture(t, transition.Params{Technique: transition.Loop, MinSize: 30, PropagateThroughUntyped: true})
	bin := apply(t, p, graphs, plan)
	newGraphs, err := cfg.BuildAll(bin.Prog)
	if err != nil {
		t.Fatalf("CFG of instrumented program: %v", err)
	}
	// Same number of procedures; each still has one entry.
	if len(newGraphs) != len(graphs) {
		t.Fatalf("instrumented program has %d procs, want %d", len(newGraphs), len(graphs))
	}
}

func TestBranchTargetsRemappedPastInlineMarks(t *testing.T) {
	// Hand-build: B0 branches to B2; B1 falls through to B2. Mark only the
	// fallthrough edge B1->B2. The branch from B0 must skip the mark.
	p := &prog.Program{
		Name: "remap",
		Procs: []*prog.Procedure{{
			Name: "main",
			Instrs: []isa.Instruction{
				{Op: isa.Branch, Target: 3, TakenProb: 0.5}, // B0 -> B2(taken) or B1
				{Op: isa.IntALU}, // B1
				{Op: isa.IntALU}, //   falls to B2? no: next is 3
				{Op: isa.Load},   // B2 (target)
				{Op: isa.Ret},
			},
		}},
	}
	graphs, err := cfg.BuildAll(p)
	if err != nil {
		t.Fatal(err)
	}
	g := graphs[0]
	b2 := g.BlockOf(3)
	b1 := g.BlockOf(1)
	plan := &transition.Plan{
		Params: transition.Params{Technique: transition.BasicBlock},
		Sites: []transition.MarkSite{{
			Proc: 0, From: b1, To: b2, Fallthrough: true, Type: 1,
		}},
		RegionTypes: map[phase.BlockKey]phase.Type{},
	}
	bin, err := ApplyWithGraphs(p, plan, graphs)
	if err != nil {
		t.Fatal(err)
	}
	instrs := bin.Prog.Procs[0].Instrs
	// Find the mark and the branch.
	markIdx, branchIdx, loadIdx := -1, -1, -1
	for i, in := range instrs {
		switch {
		case in.Op == isa.PhaseMark:
			markIdx = i
		case in.Op == isa.Branch:
			branchIdx = i
		case in.Op == isa.Load:
			loadIdx = i
		}
	}
	if markIdx == -1 || branchIdx == -1 || loadIdx == -1 {
		t.Fatalf("missing instructions after rewrite: %v", instrs)
	}
	if markIdx != loadIdx-1 {
		t.Errorf("mark at %d not immediately before load at %d", markIdx, loadIdx)
	}
	if instrs[branchIdx].Target != loadIdx {
		t.Errorf("branch target = %d, want %d (skipping the mark)", instrs[branchIdx].Target, loadIdx)
	}
}

func TestStubForTakenEdge(t *testing.T) {
	// B0 ends with branch taken to B2; mark the taken edge. A stub must be
	// appended and the branch retargeted to it.
	p := &prog.Program{
		Name: "stub",
		Procs: []*prog.Procedure{{
			Name: "main",
			Instrs: []isa.Instruction{
				{Op: isa.Branch, Target: 2, TakenProb: 0.5}, // B0
				{Op: isa.IntALU}, // B1 (fallthrough)
				{Op: isa.Load},   // B2 (taken target)
				{Op: isa.Ret},
			},
		}},
	}
	graphs, err := cfg.BuildAll(p)
	if err != nil {
		t.Fatal(err)
	}
	g := graphs[0]
	plan := &transition.Plan{
		Params: transition.Params{Technique: transition.BasicBlock},
		Sites: []transition.MarkSite{{
			Proc: 0, From: g.BlockOf(0), To: g.BlockOf(2), Fallthrough: false, Type: 1,
		}},
		RegionTypes: map[phase.BlockKey]phase.Type{},
	}
	bin, err := ApplyWithGraphs(p, plan, graphs)
	if err != nil {
		t.Fatal(err)
	}
	instrs := bin.Prog.Procs[0].Instrs
	// Expect: original 4 instructions + [PhaseMark, Jump] stub.
	if len(instrs) != 6 {
		t.Fatalf("got %d instructions, want 6: %v", len(instrs), instrs)
	}
	branch := instrs[0]
	if branch.Op != isa.Branch {
		t.Fatalf("first instr is %v, want branch", branch.Op)
	}
	stubStart := branch.Target
	if instrs[stubStart].Op != isa.PhaseMark {
		t.Errorf("branch targets %v, want phase mark stub", instrs[stubStart].Op)
	}
	jmp := instrs[stubStart+1]
	if jmp.Op != isa.Jump {
		t.Fatalf("stub not followed by jump: %v", jmp.Op)
	}
	if bin.Prog.Procs[0].Instrs[jmp.Target].Op != isa.Load {
		t.Errorf("stub jump targets %v, want the load", instrs[jmp.Target].Op)
	}
	if jmp.SizeBytes() != StubJumpBytes {
		t.Errorf("stub jump size = %d, want %d", jmp.SizeBytes(), StubJumpBytes)
	}
	// Stub mark flagged.
	if !bin.Marks[0].Stub {
		t.Error("stub mark not flagged as stub")
	}
}

func TestEmptyPlanIsIdentity(t *testing.T) {
	p, graphs, _ := fixture(t, transition.Params{Technique: transition.BasicBlock, MinSize: 10, PropagateThroughUntyped: true})
	empty := &transition.Plan{Params: transition.Params{}, RegionTypes: map[phase.BlockKey]phase.Type{}}
	bin, err := ApplyWithGraphs(p, empty, graphs)
	if err != nil {
		t.Fatal(err)
	}
	if bin.NumMarks() != 0 || bin.SpaceOverhead() != 0 {
		t.Errorf("empty plan produced %d marks, overhead %g", bin.NumMarks(), bin.SpaceOverhead())
	}
	if bin.NewBytes != bin.OrigBytes {
		t.Errorf("sizes differ: %d vs %d", bin.NewBytes, bin.OrigBytes)
	}
}
