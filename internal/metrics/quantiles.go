package metrics

import (
	"math"
	"sort"
)

// Quantile returns the exact q-quantile of xs under the nearest-rank
// definition: the smallest element whose rank is at least ceil(q*n). For
// the job counts serving runs produce (hundreds to tens of thousands) this
// is the standard exact percentile — no interpolation, every returned
// value is an observed sojourn time. q <= 0 returns the minimum, q >= 1
// the maximum; an empty input returns NaN. (BoxStats keeps its separate
// interpolating quantile: box plots follow the paper's figure convention.)
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// Quantiles returns the nearest-rank quantile for each q, sorting once.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// SojournTimes returns the sojourn (flow) time of every completed task, in
// task order — the latency sample serving experiments feed to Quantiles.
// Incomplete tasks are excluded: they have no completion time, and the
// serving protocol bounds their effect by draining admissions before the
// run horizon.
func SojournTimes(tasks []TaskStat) []float64 {
	var out []float64
	for _, t := range tasks {
		if t.Completed() {
			out = append(out, t.FlowSec())
		}
	}
	return out
}
