package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMaxFlow(t *testing.T) {
	stats := []TaskStat{
		{Name: "a", ArrivalSec: 0, CompletionSec: 10},
		{Name: "b", ArrivalSec: 5, CompletionSec: 30}, // flow 25
		{Name: "c", ArrivalSec: 0, CompletionSec: -1}, // unfinished: ignored
	}
	if got := MaxFlow(stats); got != 25 {
		t.Errorf("MaxFlow = %g, want 25", got)
	}
	if MaxFlow(nil) != 0 {
		t.Error("empty MaxFlow != 0")
	}
}

func TestMaxStretch(t *testing.T) {
	stats := []TaskStat{
		{Name: "a", ArrivalSec: 0, CompletionSec: 10}, // stretch 5
		{Name: "b", ArrivalSec: 0, CompletionSec: 12}, // stretch 3
	}
	iso := map[string]float64{"a": 2, "b": 4}
	got, err := MaxStretch(stats, iso)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("MaxStretch = %g, want 5", got)
	}
	if _, err := MaxStretch(stats, map[string]float64{"a": 2}); err == nil {
		t.Error("missing isolation time accepted")
	}
}

func TestAvgProcessTime(t *testing.T) {
	stats := []TaskStat{
		{ArrivalSec: 0, CompletionSec: 10},
		{ArrivalSec: 10, CompletionSec: 30},
		{ArrivalSec: 0, CompletionSec: -1},
	}
	if got := AvgProcessTime(stats); got != 15 {
		t.Errorf("AvgProcessTime = %g, want 15", got)
	}
	if AvgProcessTime(nil) != 0 {
		t.Error("empty avg != 0")
	}
	if CompletedCount(stats) != 2 {
		t.Errorf("CompletedCount = %d, want 2", CompletedCount(stats))
	}
}

func TestPercentChange(t *testing.T) {
	if got := PercentDecrease(100, 64); got != 36 {
		t.Errorf("PercentDecrease = %g, want 36 (the paper's headline)", got)
	}
	if got := PercentIncrease(100, 110); got != 10 {
		t.Errorf("PercentIncrease = %g, want 10", got)
	}
	if PercentDecrease(0, 5) != 0 || PercentIncrease(0, 5) != 0 {
		t.Error("zero base not handled")
	}
}

func TestThroughputOver(t *testing.T) {
	samples := []ThroughputSample{
		{AtSec: 0, Instructions: 0},
		{AtSec: 1, Instructions: 1000},
		{AtSec: 2, Instructions: 3000},
	}
	if got := ThroughputOver(samples, 0, 2); got != 1500 {
		t.Errorf("ThroughputOver = %g, want 1500", got)
	}
	// Interpolated half-window.
	if got := ThroughputOver(samples, 1, 2); got != 2000 {
		t.Errorf("ThroughputOver(1,2) = %g, want 2000", got)
	}
	if ThroughputOver(samples, 2, 2) != 0 {
		t.Error("empty window != 0")
	}
	if ThroughputOver(samples[:1], 0, 1) != 0 {
		t.Error("single sample != 0")
	}
}

func TestBoxStats(t *testing.T) {
	b := BoxStats([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.Q1 != 2 || b.Q3 != 4 {
		t.Errorf("box = %+v", b)
	}
	if b.N != 5 {
		t.Errorf("N = %d", b.N)
	}
	single := BoxStats([]float64{7})
	if single.Min != 7 || single.Max != 7 || single.Median != 7 {
		t.Errorf("single box = %+v", single)
	}
	if BoxStats(nil) != (Box{}) {
		t.Error("empty box not zero")
	}
}

func TestBoxStatsOrderInvariant(t *testing.T) {
	err := quick.Check(func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := BoxStats(xs)
		rev := make([]float64, len(xs))
		for i, x := range xs {
			rev[len(xs)-1-i] = x
		}
		b := BoxStats(rev)
		return a == b && a.Min <= a.Q1 && a.Q1 <= a.Median && a.Median <= a.Q3 && a.Q3 <= a.Max
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBoxDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	BoxStats(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("BoxStats sorted the caller's slice")
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty Mean != 0")
	}
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean = %g, want 2", g)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("GeoMean with negative != 0")
	}
}

func TestFlowSecAndCompleted(t *testing.T) {
	ts := TaskStat{ArrivalSec: 3, CompletionSec: 10}
	if ts.FlowSec() != 7 || !ts.Completed() {
		t.Error("FlowSec/Completed wrong")
	}
	if (TaskStat{CompletionSec: -1}).Completed() {
		t.Error("unfinished task reported completed")
	}
}
