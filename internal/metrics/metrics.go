// Package metrics computes the evaluation metrics of the paper's §IV:
// throughput (instructions committed over an interval), the fairness
// metrics max-flow and max-stretch of Bender et al. ("Flow and stretch
// metrics for scheduling continuous job streams"), average process time,
// and box-plot statistics for the overhead figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// TaskStat is the per-process record the metrics are computed from.
type TaskStat struct {
	// Name is the benchmark name.
	Name string
	// Slot is the workload slot the job ran in.
	Slot int
	// ArrivalSec and CompletionSec are in simulated seconds; CompletionSec
	// is negative for jobs still running when the experiment ended.
	ArrivalSec, CompletionSec float64
	// Migrations counts core switches.
	Migrations int
	// Instructions and Cycles are final counter values.
	Instructions, Cycles uint64
	// MarksExecuted counts dynamic phase-mark executions.
	MarksExecuted uint64
	// FinalAffinity is the task's affinity mask when the run ended — the
	// placement the tuning or online runtime left it with (0 when the
	// kernel predates affinity assignment; all-cores masks are recorded
	// explicitly).
	FinalAffinity uint64
}

// Completed reports whether the job finished.
func (t TaskStat) Completed() bool { return t.CompletionSec >= 0 }

// FlowSec returns the flow time F = C - a (Bender et al.).
func (t TaskStat) FlowSec() float64 { return t.CompletionSec - t.ArrivalSec }

// MaxFlow returns max_j F_j over completed jobs — "basically the longest
// measured execution time. If even one process is starving, this number will
// increase significantly" (§IV-D).
func MaxFlow(stats []TaskStat) float64 {
	max := 0.0
	for _, t := range stats {
		if t.Completed() && t.FlowSec() > max {
			max = t.FlowSec()
		}
	}
	return max
}

// MaxStretch returns max_j F_j / t_j, the largest slowdown of any completed
// job relative to its isolation processing time. isolationSec maps benchmark
// name to t_j.
func MaxStretch(stats []TaskStat, isolationSec map[string]float64) (float64, error) {
	max := 0.0
	for _, t := range stats {
		if !t.Completed() {
			continue
		}
		iso, ok := isolationSec[t.Name]
		if !ok || iso <= 0 {
			return 0, fmt.Errorf("metrics: no isolation time for %q", t.Name)
		}
		if s := t.FlowSec() / iso; s > max {
			max = s
		}
	}
	return max, nil
}

// AvgProcessTime returns the mean flow time of completed jobs, the paper's
// "average process time".
func AvgProcessTime(stats []TaskStat) float64 {
	sum, n := 0.0, 0
	for _, t := range stats {
		if t.Completed() {
			sum += t.FlowSec()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// CompletedCount returns the number of finished jobs.
func CompletedCount(stats []TaskStat) int {
	n := 0
	for _, t := range stats {
		if t.Completed() {
			n++
		}
	}
	return n
}

// PercentDecrease returns how much v improved (decreased) relative to base,
// in percent: positive is better, matching the paper's Table 2 ("% decrease
// over standard Linux").
func PercentDecrease(base, v float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - v) / base * 100
}

// PercentIncrease returns the relative increase of v over base in percent,
// used for throughput improvement (Figs. 6-7).
func PercentIncrease(base, v float64) float64 {
	if base == 0 {
		return 0
	}
	return (v - base) / base * 100
}

// ThroughputSample mirrors osched.Sample without importing it (cumulative
// committed instructions at a timestamp).
type ThroughputSample struct {
	AtSec        float64
	Instructions uint64
}

// ThroughputOver returns committed instructions per second over the window
// [fromSec, toSec], interpolating between the nearest samples.
func ThroughputOver(samples []ThroughputSample, fromSec, toSec float64) float64 {
	if toSec <= fromSec || len(samples) < 2 {
		return 0
	}
	at := func(sec float64) float64 {
		// Clamp to sample range, then linear interpolation.
		if sec <= samples[0].AtSec {
			return float64(samples[0].Instructions)
		}
		last := samples[len(samples)-1]
		if sec >= last.AtSec {
			return float64(last.Instructions)
		}
		i := sort.Search(len(samples), func(i int) bool { return samples[i].AtSec >= sec })
		a, b := samples[i-1], samples[i]
		f := (sec - a.AtSec) / (b.AtSec - a.AtSec)
		return float64(a.Instructions) + f*(float64(b.Instructions)-float64(a.Instructions))
	}
	return (at(toSec) - at(fromSec)) / (toSec - fromSec)
}

// Box is a five-number summary for box plots (paper Fig. 3: "the box
// represents the two inner quartiles and the line extends to the minimum and
// maximum points").
type Box struct {
	Min, Q1, Median, Q3, Max float64
	N                        int
}

// BoxStats computes the summary of a sample. An empty sample yields zeros.
func BoxStats(xs []float64) Box {
	if len(xs) == 0 {
		return Box{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Box{
		Min:    s[0],
		Q1:     quantile(s, 0.25),
		Median: quantile(s, 0.5),
		Q3:     quantile(s, 0.75),
		Max:    s[len(s)-1],
		N:      len(s),
	}
}

// quantile returns the q-quantile of sorted data via linear interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	f := pos - float64(lo)
	return sorted[lo]*(1-f) + sorted[hi]*f
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values (0 if any value is
// non-positive or the input is empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
