package metrics

import (
	"math"
	"testing"
)

// TestQuantileGolden pins the nearest-rank definition on a known stream:
// 1..100 has exact percentiles with no interpolation ambiguity.
func TestQuantileGolden(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(100 - i) // unsorted input: Quantile must sort
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 50},
		{0.95, 95},
		{0.99, 99},
		{0.999, 100},
		{0, 1},
		{1, 100},
	} {
		if got := Quantile(xs, tc.q); got != tc.want {
			t.Errorf("Quantile(1..100, %g) = %g, want %g", tc.q, got, tc.want)
		}
	}
}

func TestQuantilesMatchesSingleCalls(t *testing.T) {
	xs := []float64{3.5, 1.25, 9, 2, 7.75}
	qs := []float64{0.1, 0.5, 0.9, 0.999}
	got := Quantiles(xs, qs...)
	for i, q := range qs {
		if want := Quantile(xs, q); got[i] != want {
			t.Errorf("Quantiles[%d] = %g, Quantile(%g) = %g", i, got[i], q, want)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty Quantile is not NaN")
	}
	for _, v := range Quantiles(nil, 0.5, 0.99) {
		if !math.IsNaN(v) {
			t.Error("empty Quantiles element is not NaN")
		}
	}
	if got := Quantile([]float64{42}, 0.999); got != 42 {
		t.Errorf("single-element quantile = %g", got)
	}
}

func TestSojournTimes(t *testing.T) {
	tasks := []TaskStat{
		{Name: "a", ArrivalSec: 0, CompletionSec: 10},  // sojourn 10
		{Name: "b", ArrivalSec: 5, CompletionSec: 30},  // sojourn 25
		{Name: "c", ArrivalSec: 10, CompletionSec: -1}, // unfinished: dropped
	}
	soj := SojournTimes(tasks)
	if len(soj) != 2 || soj[0] != 10 || soj[1] != 25 {
		t.Errorf("SojournTimes = %v, want [10 25]", soj)
	}
	if got := SojournTimes(nil); len(got) != 0 {
		t.Errorf("empty SojournTimes = %v", got)
	}
}
