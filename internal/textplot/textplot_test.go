package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignsAndPads(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("short", "1")
	tb.AddRow("a-much-longer-name", "22")
	tb.AddRow("padded") // short row gets padded
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5 (header, rule, 3 rows)", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("rule line = %q", lines[1])
	}
	// All lines equal width for the first column block.
	if !strings.Contains(out, "a-much-longer-name") {
		t.Error("long cell missing")
	}
}

func TestBoxPlotMarksQuartiles(t *testing.T) {
	out := BoxPlot([]string{"x"}, []float64{0}, []float64{1}, []float64{2}, []float64{3}, []float64{4}, 40)
	if !strings.Contains(out, "M") {
		t.Error("median marker missing")
	}
	if !strings.Contains(out, "=") {
		t.Error("inter-quartile box missing")
	}
	if !strings.Contains(out, "min=0.000") {
		t.Error("min label missing")
	}
}

func TestBoxPlotDegenerate(t *testing.T) {
	// All-equal values must not panic or divide by zero.
	out := BoxPlot([]string{"flat"}, []float64{1}, []float64{1}, []float64{1}, []float64{1}, []float64{1}, 20)
	if out == "" {
		t.Error("empty output for degenerate box")
	}
}

func TestQuantileStripMarksAndOrder(t *testing.T) {
	out := QuantileStrip([]string{"dyn"}, []float64{1}, []float64{2}, []float64{3}, []float64{4}, 40)
	for _, marker := range []string{"M", "o", "*", "#"} {
		if !strings.Contains(out, marker) {
			t.Errorf("marker %q missing in %q", marker, out)
		}
	}
	if strings.Index(out, "M") > strings.Index(out, "#") {
		t.Errorf("p50 marker right of p999 in %q", out)
	}
	if !strings.Contains(out, "p999=4.00") {
		t.Errorf("p999 label missing in %q", out)
	}
}

func TestQuantileStripNoSamples(t *testing.T) {
	nan := math.NaN()
	out := QuantileStrip([]string{"empty", "ok"},
		[]float64{nan, 1}, []float64{nan, 1}, []float64{nan, 1}, []float64{nan, 1}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "(no samples)") {
		t.Errorf("NaN row = %q", lines[0])
	}
	// Degenerate all-equal quantiles coincide; the p999 marker, drawn
	// last, is what survives.
	if !strings.Contains(lines[1], "#") {
		t.Errorf("degenerate single-value row lost its markers: %q", lines[1])
	}
}

func TestLogBars(t *testing.T) {
	out := LogBars([]string{"a", "b", "zero"}, []float64{10, 1000000, 0}, 30)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if strings.Count(lines[1], "#") <= strings.Count(lines[0], "#") {
		t.Error("larger value does not have longer bar")
	}
	if strings.Contains(lines[2], "#") {
		t.Error("zero value has a bar")
	}
}

func TestSeries(t *testing.T) {
	out := Series("x", "y", []float64{1, 2, 3}, []float64{0, 5, 10}, 20)
	if !strings.Contains(out, "x") || !strings.Contains(out, "y") {
		t.Error("labels missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if strings.Count(lines[3], "*") <= strings.Count(lines[2], "*") {
		t.Error("bars not increasing with values")
	}
}

func TestPct(t *testing.T) {
	if Pct(1.5) != "+1.50%" {
		t.Errorf("Pct = %q", Pct(1.5))
	}
	if Pct(-2) != "-2.00%" {
		t.Errorf("Pct = %q", Pct(-2))
	}
}

func TestHeatmap(t *testing.T) {
	out := Heatmap("rate\\win",
		[]string{"r1", "r2"},
		[]string{"2000", "8000", "32000"},
		[][]float64{{2.5, 0.4, -1.2}, {-1.0, -2.0, -4.0}}, 0.5)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 2 rows + legend
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "8000") {
		t.Error("column labels missing")
	}
	// Row 1 falls off the break-even band between 8000 (within tol) and
	// 32000 (below −tol): the last holding cell carries the frontier mark,
	// and the strong-positive cell shades '#'.
	if !strings.Contains(lines[1], "+0.4|") {
		t.Errorf("frontier mark missing in %q", lines[1])
	}
	if !strings.Contains(lines[1], "+2.5#") {
		t.Errorf("strong-positive shade missing in %q", lines[1])
	}
	// Row 2 never holds: no frontier mark, negative shades throughout.
	if strings.Contains(lines[2], "|") || strings.Contains(lines[2], "=") {
		t.Errorf("unexpected hold marks in %q", lines[2])
	}
	if !strings.Contains(lines[2], "-4.0.") {
		t.Errorf("strong-negative shade missing in %q", lines[2])
	}
	if !strings.Contains(lines[3], "legend") {
		t.Error("legend missing")
	}
}
