// Package textplot renders experiment results as ASCII tables, box plots,
// and log-scale bar charts for terminal output and EXPERIMENTS.md.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Table renders rows with left-aligned first column and right-aligned rest.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.header) {
		cells = append(cells, "")
	}
	t.rows = append(t.rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", width[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", width[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// BoxPlot renders horizontal five-number-summary boxes on a shared axis.
//
//	name  |----[==|==]------|  min q1 med q3 max
func BoxPlot(names []string, mins, q1s, meds, q3s, maxs []float64, width int) string {
	if width <= 0 {
		width = 50
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range names {
		lo = math.Min(lo, mins[i])
		hi = math.Max(hi, maxs[i])
	}
	if !(hi > lo) {
		hi = lo + 1
	}
	scale := func(v float64) int {
		p := int(float64(width-1) * (v - lo) / (hi - lo))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	nameW := 0
	for _, n := range names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	var b strings.Builder
	for i, n := range names {
		line := make([]byte, width)
		for j := range line {
			line[j] = ' '
		}
		pMin, pQ1, pMed, pQ3, pMax := scale(mins[i]), scale(q1s[i]), scale(meds[i]), scale(q3s[i]), scale(maxs[i])
		for j := pMin; j <= pMax; j++ {
			line[j] = '-'
		}
		for j := pQ1; j <= pQ3; j++ {
			line[j] = '='
		}
		line[pMin] = '|'
		line[pMax] = '|'
		line[pMed] = 'M'
		fmt.Fprintf(&b, "%-*s %s  min=%.3f med=%.3f max=%.3f\n", nameW, n, string(line), mins[i], meds[i], maxs[i])
	}
	return b.String()
}

// QuantileStrip renders latency quantiles on a shared horizontal axis, one
// row per name: a '-' run from p50 to p999 with markers M (p50), o (p95),
// * (p99), and # (p999). NaN rows (no completed jobs) render "(no samples)".
//
//	name  M---o--*------#  p50=1.20 p99=4.51 p999=7.80
func QuantileStrip(names []string, p50s, p95s, p99s, p999s []float64, width int) string {
	if width <= 0 {
		width = 50
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range names {
		if math.IsNaN(p50s[i]) {
			continue
		}
		lo = math.Min(lo, p50s[i])
		hi = math.Max(hi, p999s[i])
	}
	if !(hi > lo) {
		hi = lo + 1
	}
	scale := func(v float64) int {
		p := int(float64(width-1) * (v - lo) / (hi - lo))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	nameW := 0
	for _, n := range names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	var b strings.Builder
	for i, n := range names {
		if math.IsNaN(p50s[i]) {
			fmt.Fprintf(&b, "%-*s %-*s\n", nameW, n, width, "(no samples)")
			continue
		}
		line := make([]byte, width)
		for j := range line {
			line[j] = ' '
		}
		p50, p95, p99, p999 := scale(p50s[i]), scale(p95s[i]), scale(p99s[i]), scale(p999s[i])
		for j := p50; j <= p999; j++ {
			line[j] = '-'
		}
		line[p50] = 'M'
		line[p95] = 'o'
		line[p99] = '*'
		line[p999] = '#'
		fmt.Fprintf(&b, "%-*s %s  p50=%.2f p99=%.2f p999=%.2f\n",
			nameW, n, string(line), p50s[i], p99s[i], p999s[i])
	}
	return b.String()
}

// Bars renders a linear-scale horizontal bar chart, scaled to the maximum
// value. Zero or negative values render as an empty bar.
func Bars(names []string, values []float64, width int) string {
	if width <= 0 {
		width = 50
	}
	maxV := 0.0
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	nameW := 0
	for _, n := range names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	var b strings.Builder
	for i, n := range names {
		bar := ""
		if values[i] > 0 {
			bar = strings.Repeat("#", int(float64(width)*values[i]/maxV))
		}
		fmt.Fprintf(&b, "%-*s %-*s %.3g\n", nameW, n, width, bar, values[i])
	}
	return b.String()
}

// LogBars renders a log10-scale horizontal bar chart (Fig. 5 style). Zero
// or negative values render as an empty bar.
func LogBars(names []string, values []float64, width int) string {
	if width <= 0 {
		width = 50
	}
	maxLog := 0.0
	for _, v := range values {
		if v > 0 {
			if l := math.Log10(v); l > maxLog {
				maxLog = l
			}
		}
	}
	if maxLog == 0 {
		maxLog = 1
	}
	nameW := 0
	for _, n := range names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	var b strings.Builder
	for i, n := range names {
		bar := ""
		label := "0"
		if values[i] > 0 {
			l := math.Log10(values[i])
			if l < 0 {
				l = 0
			}
			bar = strings.Repeat("#", int(float64(width)*l/maxLog))
			label = fmt.Sprintf("%.3g", values[i])
		}
		fmt.Fprintf(&b, "%-*s %-*s %s\n", nameW, n, width, bar, label)
	}
	return b.String()
}

// Series renders an x/y sweep as aligned columns with a small bar.
func Series(xLabel, yLabel string, xs, ys []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, y := range ys {
		lo = math.Min(lo, y)
		hi = math.Max(hi, y)
	}
	if !(hi > lo) {
		hi = lo + 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10s  %10s\n", xLabel, yLabel)
	for i := range xs {
		n := int(float64(width) * (ys[i] - lo) / (hi - lo))
		fmt.Fprintf(&b, "%10.3g  %10.3g  %s\n", xs[i], ys[i], strings.Repeat("*", n))
	}
	return b.String()
}

// Heatmap renders a labeled grid of signed values (rows × cols) with each
// cell's number followed by a shade glyph. tol is the break-even
// tolerance: cells within ±tol render '=' — the visible break-even band —
// and a '|' replaces the glyph where a row falls out of the hold zone
// (current cell ≥ −tol, next cell < −tol). Cells clearly above shade
// '+'/'#' by magnitude, cells clearly below ':'/'.', so the band
// structure reads at a glance even where the numbers are small. vals must
// be rectangular: len(vals) == len(rowLabels), len(vals[r]) ==
// len(colLabels). tol <= 0 means a strict zero break-even.
func Heatmap(corner string, rowLabels, colLabels []string, vals [][]float64, tol float64) string {
	shade := func(v float64) byte {
		switch {
		case v >= -tol && v <= tol:
			return '='
		case v > 4*tol:
			return '#'
		case v > 0:
			return '+'
		case v < -4*tol:
			return '.'
		}
		return ':'
	}

	rowW := len(corner)
	for _, l := range rowLabels {
		if len(l) > rowW {
			rowW = len(l)
		}
	}
	const cellW = 8 // "%+6.1f" + shade glyph + space
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s", rowW, corner)
	for _, l := range colLabels {
		fmt.Fprintf(&b, " %*s", cellW-1, l)
	}
	b.WriteByte('\n')
	for r, row := range vals {
		fmt.Fprintf(&b, "%-*s", rowW, rowLabels[r])
		for c, v := range row {
			glyph := shade(v)
			if v >= -tol && c+1 < len(row) && row[c+1] < -tol {
				glyph = '|'
			}
			fmt.Fprintf(&b, " %+6.1f%c", v, glyph)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "legend: '=' break-even (within ±%.1f), +/# above, :/. below; '|' marks where a row falls off the break-even band\n", tol)
	return b.String()
}

// Waterfall renders signed per-category deltas as bars around a shared
// zero axis — the where-did-the-difference-go view of a run diff. Negative
// deltas extend left with '<', positive right with '>', all on one scale
// (the largest magnitude fills half the width).
//
//	useful     <<<<<<<|        -123.4 ms
//	asymmetry         |>>>      +56.7 ms
func Waterfall(labels []string, deltas []float64, unit string, width int) string {
	if width <= 0 {
		width = 60
	}
	half := width / 2
	if half < 1 {
		half = 1
	}
	maxAbs := 0.0
	for _, d := range deltas {
		if a := math.Abs(d); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	for i, l := range labels {
		line := make([]byte, 2*half+1)
		for j := range line {
			line[j] = ' '
		}
		line[half] = '|'
		n := int(math.Round(float64(half) * math.Abs(deltas[i]) / maxAbs))
		switch {
		case deltas[i] < 0:
			for j := half - n; j < half; j++ {
				line[j] = '<'
			}
		case deltas[i] > 0:
			for j := half + 1; j <= half+n; j++ {
				line[j] = '>'
			}
		}
		fmt.Fprintf(&b, "%-*s %s  %+.4g %s\n", labelW, l, string(line), deltas[i], unit)
	}
	return b.String()
}

// stackGlyphs is the segment palette shared by every stacked bar: segment
// k renders glyph k (wrapping past the palette end).
const stackGlyphs = "#=+o*:~@."

// StackedBars renders one composition bar per row: each row's segment
// values (all non-negative) tile a bar in segment order, every bar on a
// shared scale (the largest row total fills the width). A trailing legend
// maps glyphs to segment names. vals must be rectangular:
// len(vals) == len(rows), len(vals[r]) == len(segments).
//
//	static  ####===+oo  12.3
//	hybrid  #####==+o   11.8
//	legend: '#' useful  '=' asymmetry  ...
func StackedBars(rows, segments []string, vals [][]float64, width int) string {
	if width <= 0 {
		width = 60
	}
	maxTotal := 0.0
	for _, row := range vals {
		total := 0.0
		for _, v := range row {
			if v > 0 {
				total += v
			}
		}
		if total > maxTotal {
			maxTotal = total
		}
	}
	if maxTotal == 0 {
		maxTotal = 1
	}
	rowW := 0
	for _, r := range rows {
		if len(r) > rowW {
			rowW = len(r)
		}
	}
	var b strings.Builder
	for r, name := range rows {
		total := 0.0
		var bar []byte
		// Tile by cumulative position so rounding never over- or
		// under-fills: segment k ends at round(width x cum_k / maxTotal).
		for s, v := range vals[r] {
			if v <= 0 {
				continue
			}
			total += v
			end := int(math.Round(float64(width) * total / maxTotal))
			for len(bar) < end {
				bar = append(bar, stackGlyphs[s%len(stackGlyphs)])
			}
		}
		fmt.Fprintf(&b, "%-*s %-*s %.4g\n", rowW, name, width, string(bar), total)
	}
	b.WriteString("legend:")
	for s, seg := range segments {
		fmt.Fprintf(&b, " '%c' %s", stackGlyphs[s%len(stackGlyphs)], seg)
	}
	b.WriteByte('\n')
	return b.String()
}

// Pct formats a percentage with sign.
func Pct(v float64) string { return fmt.Sprintf("%+.2f%%", v) }
