package workload

import (
	"encoding/json"
	"hash/fnv"
	"math"
	"testing"

	"phasetune/internal/amp"
	"phasetune/internal/exec"
)

func openSpec(kind ArrivalKind) Spec {
	return Spec{Seed: 7, Arrivals: &ArrivalSpec{
		Kind: kind, RatePerSec: 3.0, HorizonSec: 40,
	}}
}

// arrivalsHash canonically encodes a stream's arrival schedule and fleet
// names and hashes the bytes — the identity the golden test pins.
func arrivalsHash(t *testing.T, s *Stream) uint64 {
	t.Helper()
	var names []string
	for _, b := range s.Fleet {
		names = append(names, b.Name())
	}
	blob, err := json.Marshal(struct {
		Fleet    []string
		Arrivals []Arrival
	}{names, s.Arrivals})
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	h.Write(blob)
	return h.Sum64()
}

func TestMaterializeOpenDeterministic(t *testing.T) {
	cm := exec.DefaultCostModel()
	m := amp.Quad2Fast2Slow()
	for _, kind := range []ArrivalKind{Poisson, Bursty, Diurnal} {
		a, err := openSpec(kind).MaterializeOpen(cm, m)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		b, err := openSpec(kind).MaterializeOpen(cm, m)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if ha, hb := arrivalsHash(t, a), arrivalsHash(t, b); ha != hb {
			t.Errorf("%s: same (spec, seed) produced different streams: %x vs %x", kind, ha, hb)
		}
		// Fleet programs must regenerate bit-identically too (the fabric's
		// cross-process contract).
		for i := range a.Fleet {
			if a.Fleet[i].Prog.NumInstrs() != b.Fleet[i].Prog.NumInstrs() {
				t.Errorf("%s: fleet member %d differs across materializations", kind, i)
			}
		}
	}
}

func TestMaterializeOpenSeedSensitive(t *testing.T) {
	cm := exec.DefaultCostModel()
	m := amp.Quad2Fast2Slow()
	a, err := openSpec(Poisson).MaterializeOpen(cm, m)
	if err != nil {
		t.Fatal(err)
	}
	other := openSpec(Poisson)
	other.Seed = 8
	b, err := other.MaterializeOpen(cm, m)
	if err != nil {
		t.Fatal(err)
	}
	if arrivalsHash(t, a) == arrivalsHash(t, b) {
		t.Error("different seeds produced identical arrival schedules")
	}
}

// TestArrivalStreamGolden pins the exact bytes of one stream. If this
// breaks, the arrival generator changed semantics: recorded campaigns no
// longer reproduce, and dist.SpecVersion must be bumped alongside fixing
// this constant.
func TestArrivalStreamGolden(t *testing.T) {
	cm := exec.DefaultCostModel()
	m := amp.Quad2Fast2Slow()
	s, err := openSpec(Poisson).MaterializeOpen(cm, m)
	if err != nil {
		t.Fatal(err)
	}
	const want = 0x2648e9699bc8b14a // pinned from the first green run
	if got := arrivalsHash(t, s); got != want {
		t.Errorf("arrival stream hash = %#x, want %#x", got, want)
	}
}

func TestArrivalScheduleShape(t *testing.T) {
	cm := exec.DefaultCostModel()
	m := amp.Quad2Fast2Slow()
	for _, kind := range []ArrivalKind{Poisson, Bursty, Diurnal} {
		s, err := openSpec(kind).MaterializeOpen(cm, m)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(s.Fleet) != len(ServingSpecs()) {
			t.Fatalf("%s: fleet size %d", kind, len(s.Fleet))
		}
		prev := 0.0
		for i, a := range s.Arrivals {
			if a.AtSec < prev {
				t.Fatalf("%s: arrival %d at %gs before predecessor at %gs", kind, i, a.AtSec, prev)
			}
			prev = a.AtSec
			if a.AtSec > 40 {
				t.Fatalf("%s: arrival %d at %gs past the 40s horizon", kind, i, a.AtSec)
			}
			if a.Fleet < 0 || a.Fleet >= len(s.Fleet) {
				t.Fatalf("%s: arrival %d fleet index %d", kind, i, a.Fleet)
			}
		}
		// Long-run rate within 4 sigma of 3 jobs/s over 40s (mean 120).
		mean := 3.0 * 40
		if n := float64(len(s.Arrivals)); math.Abs(n-mean) > 4*math.Sqrt(mean)+0.1*mean {
			t.Errorf("%s: %0.f arrivals, want about %.0f", kind, n, mean)
		}
	}
}

func TestArrivalSpecValidate(t *testing.T) {
	good := ArrivalSpec{Kind: Poisson, RatePerSec: 1, HorizonSec: 10}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	for name, bad := range map[string]ArrivalSpec{
		"zero rate":     {Kind: Poisson, RatePerSec: 0, HorizonSec: 10},
		"negative rate": {Kind: Poisson, RatePerSec: -1, HorizonSec: 10},
		"zero horizon":  {Kind: Poisson, RatePerSec: 1, HorizonSec: 0},
		"bad kind":      {Kind: ArrivalKind(99), RatePerSec: 1, HorizonSec: 10},
		"inf rate":      {Kind: Poisson, RatePerSec: math.Inf(1), HorizonSec: 10},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestParseArrivalKind(t *testing.T) {
	for name, want := range map[string]ArrivalKind{
		"poisson": Poisson, "bursty": Bursty, "diurnal": Diurnal,
	} {
		got, err := ParseArrivalKind(name)
		if err != nil || got != want {
			t.Errorf("ParseArrivalKind(%q) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), name)
		}
	}
	if _, err := ParseArrivalKind("weird"); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestServingFleetMeanServiceTime(t *testing.T) {
	specs := ServingSpecs()
	sum := 0.0
	for _, sp := range specs {
		sum += sp.TargetSec
	}
	if got, want := ServingMeanServiceSec(), sum/float64(len(specs)); math.Abs(got-want) > 1e-12 {
		t.Errorf("ServingMeanServiceSec = %g, want %g", got, want)
	}
}
