// Package workload provides the synthetic SPEC-like benchmark suite and the
// constant-size workload construction of the paper's evaluation (§IV-A2).
//
// Real SPEC CPU 2000/2006 binaries are unavailable here; each suite member
// is a generated program whose *personality* — phase structure, memory vs.
// compute balance, and relative length — matches the corresponding benchmark
// as characterized by the paper's Table 1 (switch counts and isolation
// runtimes). Benchmarks with a single behavior (459.GemsFDTD, 473.astar)
// produce zero phase transitions; heavy phase-alternators (183.equake,
// 401.bzip2, 171.swim, 172.mgrid) alternate compute- and memory-bound loops
// many times. Every program also carries a few thousand instructions of
// cold startup/utility code so static measurements (space overhead, Fig. 3)
// are taken against realistically sized binaries.
//
// Time scale: isolation runtimes follow the paper's Table 1 divided by
// ScaleDivisor (bwaves capped), under the scaled simulation clock of
// package amp; phase alternation counts follow the paper's switch counts
// under the same divisor. Uniform scaling preserves every relative quantity
// (see DESIGN.md §9).
package workload

import (
	"fmt"
	"math"

	"phasetune/internal/amp"
	"phasetune/internal/exec"
	"phasetune/internal/isa"
	"phasetune/internal/prog"
	"phasetune/internal/reuse"
	"phasetune/internal/rng"
)

// ScaleDivisor divides the paper's Table 1 isolation runtimes (and switch
// counts) to keep simulations tractable.
const ScaleDivisor = 20

// PhaseKind is the behavioral class of one phase.
type PhaseKind int

const (
	// CPUPhase is integer-compute-bound: high IPC on every core, 1.5x
	// faster wall clock on fast cores.
	CPUPhase PhaseKind = iota
	// FPPhase is floating-point-compute-bound.
	FPPhase
	// MemPhase streams a working set overflowing the L2 into DRAM: higher
	// IPC on slow cores, little wall-clock gain from fast ones.
	MemPhase
	// MemLightPhase streams an L2-resident working set: memory-intensive by
	// instruction mix, but the on-die cache absorbs it, so IPC is core-type
	// invariant and the phase stays on fast cores.
	MemLightPhase
	// MixedPhase is in between; programs made only of it have one phase
	// type and never switch.
	MixedPhase
)

// String names the kind.
func (k PhaseKind) String() string {
	switch k {
	case CPUPhase:
		return "cpu"
	case FPPhase:
		return "fp"
	case MemPhase:
		return "mem"
	case MemLightPhase:
		return "memlight"
	case MixedPhase:
		return "mixed"
	}
	return fmt.Sprintf("phasekind(%d)", int(k))
}

// variants returns the block mixes of one phase-body iteration: a main
// block plus two alternates the body picks between at run time. All three
// share the kind's behavior (one phase type) while giving the binary static
// diversity.
func (k PhaseKind) variants() [3]prog.BlockMix {
	switch k {
	case CPUPhase:
		return [3]prog.BlockMix{
			{IntALU: 26, IntMul: 6, Load: 4, Store: 2, WorkingSetKB: 16, Locality: 0.99},
			{IntALU: 18, IntMul: 2, Load: 2, WorkingSetKB: 16, Locality: 0.99},
			{IntALU: 14, IntMul: 4, Store: 2, WorkingSetKB: 16, Locality: 0.99},
		}
	case FPPhase:
		return [3]prog.BlockMix{
			{FPAdd: 12, FPMul: 10, IntALU: 8, Load: 5, Store: 2, WorkingSetKB: 32, Locality: 0.99},
			{FPAdd: 8, FPMul: 6, IntALU: 4, Load: 3, WorkingSetKB: 32, Locality: 0.99},
			{FPAdd: 6, FPMul: 8, IntALU: 6, Store: 2, WorkingSetKB: 32, Locality: 0.99},
		}
	case MemPhase:
		return [3]prog.BlockMix{
			{Load: 16, Store: 8, IntALU: 8, WorkingSetKB: 3072, Locality: 0.94},
			{Load: 12, Store: 4, IntALU: 4, WorkingSetKB: 4096, Locality: 0.93},
			{Load: 10, Store: 6, IntALU: 6, WorkingSetKB: 2048, Locality: 0.95},
		}
	case MemLightPhase:
		return [3]prog.BlockMix{
			{Load: 16, Store: 8, IntALU: 8, WorkingSetKB: 512, Locality: 0.96},
			{Load: 12, Store: 4, IntALU: 4, WorkingSetKB: 384, Locality: 0.96},
			{Load: 10, Store: 6, IntALU: 6, WorkingSetKB: 640, Locality: 0.97},
		}
	case MixedPhase:
		return [3]prog.BlockMix{
			{IntALU: 14, FPAdd: 4, Load: 8, Store: 3, WorkingSetKB: 512, Locality: 0.97},
			{IntALU: 10, FPAdd: 2, Load: 6, Store: 2, WorkingSetKB: 512, Locality: 0.97},
			{IntALU: 8, FPAdd: 4, Load: 5, Store: 3, WorkingSetKB: 512, Locality: 0.97},
		}
	}
	return [3]prog.BlockMix{{IntALU: 10}, {IntALU: 8}, {IntALU: 6}}
}

// PhaseSpec is one phase of a benchmark.
type PhaseSpec struct {
	// Kind selects the behavior.
	Kind PhaseKind
	// Share is this phase's fraction of the benchmark's total cycles.
	Share float64
	// Helper places the phase body in a separate procedure called from the
	// loop, exercising the inter-procedural analysis.
	Helper bool
}

// BenchSpec describes one suite member.
type BenchSpec struct {
	// Name is the SPEC-style benchmark name.
	Name string
	// PaperRuntimeSec and PaperSwitches record the paper's Table 1 row this
	// personality models (0 switches means single-phase).
	PaperRuntimeSec float64
	PaperSwitches   int
	// TargetSec is the designed isolation runtime on a fast core under the
	// scaled clock.
	TargetSec float64
	// Alternations is the exact number of outer-loop repetitions of the
	// phase sequence; 1 means the phases run once, in order.
	Alternations int
	// StaticInstrs is the approximate cold startup/utility code size,
	// giving the binary realistic static bulk.
	StaticInstrs int
}

// Phases derives the per-iteration phase sequence from the personality
// table.
func (s BenchSpec) Phases() []PhaseSpec { return phaseTable[s.Name] }

// phaseTable maps benchmark names to phase sequences.
var phaseTable = map[string][]PhaseSpec{
	"401.bzip2":    {{Kind: CPUPhase, Share: 0.55}, {Kind: MemPhase, Share: 0.45}},
	"410.bwaves":   {{Kind: FPPhase, Share: 0.45}, {Kind: MemPhase, Share: 0.55, Helper: true}},
	"429.mcf":      {{Kind: MemPhase, Share: 0.55}, {Kind: CPUPhase, Share: 0.1}, {Kind: MemPhase, Share: 0.35}},
	"459.GemsFDTD": {{Kind: MemPhase, Share: 1}},
	"470.lbm":      {{Kind: MemPhase, Share: 0.8}, {Kind: FPPhase, Share: 0.2}},
	"473.astar":    {{Kind: MixedPhase, Share: 1}},
	"188.ammp":     {{Kind: FPPhase, Share: 0.4}, {Kind: MemPhase, Share: 0.3}, {Kind: FPPhase, Share: 0.3}},
	"173.applu":    {{Kind: FPPhase, Share: 0.6}, {Kind: MemPhase, Share: 0.4, Helper: true}},
	"179.art":      {{Kind: MemPhase, Share: 0.8}, {Kind: CPUPhase, Share: 0.2}},
	"183.equake":   {{Kind: CPUPhase, Share: 0.5}, {Kind: MemPhase, Share: 0.5}},
	"164.gzip":     {{Kind: CPUPhase, Share: 0.7}, {Kind: MemPhase, Share: 0.3}},
	"181.mcf":      {{Kind: MemPhase, Share: 0.6}, {Kind: CPUPhase, Share: 0.15}, {Kind: MemPhase, Share: 0.25}},
	"172.mgrid":    {{Kind: FPPhase, Share: 0.5}, {Kind: MemPhase, Share: 0.5}},
	"171.swim":     {{Kind: MemPhase, Share: 0.45}, {Kind: FPPhase, Share: 0.55}},
	"175.vpr":      {{Kind: CPUPhase, Share: 0.35}, {Kind: MemPhase, Share: 0.35}, {Kind: CPUPhase, Share: 0.3}},
}

// Benchmark is a generated suite member.
type Benchmark struct {
	// Spec is the personality that generated the program.
	Spec BenchSpec
	// Prog is the generated program image.
	Prog *prog.Program
}

// Name returns the benchmark name.
func (b *Benchmark) Name() string { return b.Spec.Name }

// mixCycles estimates the isolation cycle cost of executing one block of
// mix m on a fast core with the full reference L2, mirroring the exec
// timing model (control-flow cost excluded).
func mixCycles(cm exec.CostModel, machine *amp.Machine, m prog.BlockMix) float64 {
	c := float64(m.IntALU)*cm.CPI[isa.IntALU] +
		float64(m.IntMul)*cm.CPI[isa.IntMul] +
		float64(m.IntDiv)*cm.CPI[isa.IntDiv] +
		float64(m.FPAdd)*cm.CPI[isa.FPAdd] +
		float64(m.FPMul)*cm.CPI[isa.FPMul] +
		float64(m.FPDiv)*cm.CPI[isa.FPDiv] +
		float64(m.Load)*cm.CPI[isa.Load] +
		float64(m.Store)*cm.CPI[isa.Store]
	mem := m.Load + m.Store
	if mem > 0 {
		par := exec.ParamsFor(cm, machine)[0]
		prof := reuse.Profile{WorkingSetKB: m.WorkingSetKB, Locality: m.Locality}
		l1miss := float64(mem) * prof.L1MissFraction()
		share := machine.L2s[0].SizeKB
		c += l1miss * (par.L2HitCycles + prof.MissRatio(share)*par.MemCycles)
	}
	return c
}

// emitPhaseBody emits one iteration of a phase body (main variant plus a
// random alternate) and returns its expected cycle cost.
func emitPhaseBody(pb *prog.ProcBuilder, kind PhaseKind, cm exec.CostModel, machine *amp.Machine) float64 {
	vs := kind.variants()
	pb.Straight(vs[0])
	pb.IfElse(0.5,
		func(pb *prog.ProcBuilder) { pb.Straight(vs[1]) },
		func(pb *prog.ProcBuilder) { pb.Straight(vs[2]) },
	)
	cost := mixCycles(cm, machine, vs[0]) +
		0.5*(mixCycles(cm, machine, vs[1])+mixCycles(cm, machine, vs[2])) +
		cm.CPI[isa.Branch] + 0.5*cm.CPI[isa.Jump]
	return cost
}

// emitStartup emits the cold startup/utility code: a chain of conditional
// straight blocks whose mixes are perturbed versions of the benchmark's own
// phase kinds (so single-behavior benchmarks stay single-typed), plus a few
// utility procedures called once.
func emitStartup(b *prog.Builder, spec BenchSpec, r *rng.Source) {
	phases := spec.Phases()
	kinds := make([]PhaseKind, 0, len(phases))
	for _, ph := range phases {
		kinds = append(kinds, ph.Kind)
	}
	perturb := func(m prog.BlockMix) prog.BlockMix {
		scale := func(n int) int {
			if n == 0 {
				return 0
			}
			v := n + r.Intn(n+1) - n/2 // n +/- n/2
			if v < 1 {
				v = 1
			}
			return v
		}
		m.IntALU = scale(m.IntALU)
		m.IntMul = scale(m.IntMul)
		m.FPAdd = scale(m.FPAdd)
		m.FPMul = scale(m.FPMul)
		m.Load = scale(m.Load)
		m.Store = scale(m.Store)
		return m
	}
	blockOf := func() prog.BlockMix {
		kind := kinds[r.Intn(len(kinds))]
		vs := kind.variants()
		return perturb(vs[r.Intn(3)])
	}

	// Utility procedures (~1/4 of the static budget).
	nUtil := 2 + r.Intn(3)
	utilBudget := spec.StaticInstrs / 4
	perUtil := utilBudget / nUtil
	utilNames := make([]string, nUtil)
	for u := 0; u < nUtil; u++ {
		name := fmt.Sprintf("util%d", u)
		utilNames[u] = name
		up := b.Proc(name)
		emitted := 0
		for emitted < perUtil {
			m := blockOf()
			up.Straight(m)
			emitted += m.Total()
			if r.Float64() < 0.4 && emitted < perUtil {
				m2 := blockOf()
				up.IfElse(0.5,
					func(pb *prog.ProcBuilder) { pb.Straight(m2) },
					nil,
				)
				emitted += m2.Total()
			}
		}
		up.Ret()
	}

	sp := b.Proc("startup")
	emitted := 0
	budget := spec.StaticInstrs - utilBudget
	for emitted < budget {
		m1, m2 := blockOf(), blockOf()
		sp.IfElse(0.5,
			func(pb *prog.ProcBuilder) { pb.Straight(m1) },
			func(pb *prog.ProcBuilder) { pb.Straight(m2) },
		)
		emitted += m1.Total() + m2.Total()
	}
	for _, name := range utilNames {
		sp.CallProc(name)
	}
	sp.Ret()
}

// Generate builds the benchmark program for a spec.
func Generate(spec BenchSpec, cm exec.CostModel, machine *amp.Machine) (*Benchmark, error) {
	if spec.TargetSec <= 0 {
		return nil, fmt.Errorf("workload: %s: non-positive target runtime", spec.Name)
	}
	phases := spec.Phases()
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: %s: unknown personality", spec.Name)
	}
	alts := spec.Alternations
	if alts < 1 {
		alts = 1
	}
	totalShare := 0.0
	for _, ph := range phases {
		totalShare += ph.Share
	}
	if totalShare <= 0 {
		return nil, fmt.Errorf("workload: %s: zero total phase share", spec.Name)
	}

	fastCPS := machine.Types[0].CyclesPerSec
	totalCycles := spec.TargetSec * fastCPS

	b := prog.NewBuilder(spec.Name)
	main := b.Proc("main")
	b.SetEntry("main")

	// Cold code first: startup chain and utility procedures.
	r := rng.New(hashName(spec.Name))
	if spec.StaticInstrs > 0 {
		emitStartup(b, spec, r)
	}

	// Helper procedures for Helper phases, with their per-call cost.
	helperCost := map[int]float64{}
	for pi, ph := range phases {
		if !ph.Helper {
			continue
		}
		name := fmt.Sprintf("phase%d_%s", pi, ph.Kind)
		hp := b.Proc(name)
		helperCost[pi] = emitPhaseBody(hp, ph.Kind, cm, machine) +
			cm.CPI[isa.Call] + cm.CPI[isa.Ret]
		hp.Ret()
	}

	if spec.StaticInstrs > 0 {
		main.CallProc("startup")
	}

	emitPhases := func(pb *prog.ProcBuilder, cyclesBudget float64) {
		for pi, ph := range phases {
			phaseCycles := cyclesBudget * ph.Share / totalShare
			if ph.Helper {
				perIter := helperCost[pi] + cm.CPI[isa.Branch]
				trips := math.Max(1, phaseCycles/perIter)
				name := fmt.Sprintf("phase%d_%s", pi, ph.Kind)
				pb.Loop(trips, func(pb *prog.ProcBuilder) {
					pb.CallProc(name)
				})
				continue
			}
			// Inline body: emit once into the loop, sizing the trip count
			// from the expected cost returned by the emitter.
			head := pb.Here()
			cost := emitPhaseBody(pb, ph.Kind, cm, machine) + cm.CPI[isa.Branch]
			trips := int(math.Max(1, phaseCycles/cost) + 0.5)
			pb.BranchCounted(head, trips)
		}
	}

	if alts > 1 {
		main.Loop(float64(alts), func(pb *prog.ProcBuilder) {
			// A small preamble block keeps the alternation loop's header
			// distinct from the first phase loop's header; natural loops
			// sharing a header would be merged by the CFG analysis and the
			// phase structure would disappear into one region.
			pb.Straight(prog.BlockMix{IntALU: 3})
			emitPhases(pb, totalCycles/float64(alts))
		})
	} else {
		emitPhases(main, totalCycles)
	}
	main.Ret()

	p, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", spec.Name, err)
	}
	return &Benchmark{Spec: spec, Prog: p}, nil
}

// hashName derives a stable per-benchmark seed.
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// scale converts a paper Table 1 runtime to the scaled target, capping very
// long benchmarks so no single job dominates wall-clock time.
func scale(paperSec float64) float64 {
	s := paperSec / ScaleDivisor
	return math.Min(s, 300)
}

// Specs returns the 15 suite personalities modeled on the paper's Table 1.
// Alternation counts follow the paper's switch counts / (2 * ScaleDivisor):
// each alternation of a two-phase benchmark causes two switches.
func Specs() []BenchSpec {
	mk := func(name string, paperSec float64, paperSw, alts, static int) BenchSpec {
		return BenchSpec{
			Name:            name,
			PaperRuntimeSec: paperSec,
			PaperSwitches:   paperSw,
			TargetSec:       scale(paperSec),
			Alternations:    alts,
			StaticInstrs:    static,
		}
	}
	return []BenchSpec{
		mk("401.bzip2", 364, 4837, 120, 4000),
		mk("410.bwaves", 33636, 205, 6, 6000),
		mk("429.mcf", 872, 15, 1, 3000),
		mk("459.GemsFDTD", 3327, 0, 1, 8000),
		mk("470.lbm", 1123, 99, 3, 3000),
		mk("473.astar", 55, 0, 1, 3500),
		mk("188.ammp", 67, 3, 1, 5000),
		mk("173.applu", 3414, 205, 6, 5500),
		mk("179.art", 46, 3, 1, 2500),
		mk("183.equake", 62, 7715, 190, 3000),
		mk("164.gzip", 23, 3, 1, 2000),
		mk("181.mcf", 58, 6, 1, 2500),
		mk("172.mgrid", 172, 2005, 50, 3500),
		mk("171.swim", 5720, 3204, 80, 4500),
		mk("175.vpr", 46, 6, 1, 4000),
	}
}

// Suite generates the full benchmark suite deterministically.
func Suite(cm exec.CostModel, machine *amp.Machine) ([]*Benchmark, error) {
	specs := Specs()
	out := make([]*Benchmark, 0, len(specs))
	for _, s := range specs {
		b, err := Generate(s, cm, machine)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// Workload is the paper's constant-size workload: a fixed number of slots,
// each with its own queue of randomly selected benchmarks. Upon completion
// of a job, the next job in its slot's queue starts immediately (§IV-A2).
type Workload struct {
	// Slots holds one job queue per slot.
	Slots [][]*Benchmark
}

// BuildWorkload draws queueLen random benchmarks per slot. The same seed
// reproduces the same queues, so compared techniques run identical work —
// exactly the paper's protocol ("when comparing two techniques, the same
// queues were used for each experiment").
func BuildWorkload(suite []*Benchmark, slots, queueLen int, seed uint64) *Workload {
	r := rng.New(seed)
	w := &Workload{Slots: make([][]*Benchmark, slots)}
	for s := 0; s < slots; s++ {
		q := make([]*Benchmark, queueLen)
		for i := range q {
			q[i] = suite[r.Intn(len(suite))]
		}
		w.Slots[s] = q
	}
	return w
}

// NumSlots returns the slot count.
func (w *Workload) NumSlots() int { return len(w.Slots) }

// Spec describes a workload by its construction parameters instead of a
// built queue set. BuildWorkload is deterministic, so a Spec is the
// serializable identity of a workload: any process holding the same suite
// rebuilds bit-identical queues from it — which is what lets run
// specifications cross process boundaries in the distributed sweep fabric.
type Spec struct {
	// Slots is the constant workload size.
	Slots int `json:"slots"`
	// QueueLen is the per-slot queue length.
	QueueLen int `json:"queue_len"`
	// Seed drives the random benchmark draw.
	Seed uint64 `json:"seed"`
}

// Build materializes the workload against a suite.
func (s Spec) Build(suite []*Benchmark) *Workload {
	return BuildWorkload(suite, s.Slots, s.QueueLen, s.Seed)
}
